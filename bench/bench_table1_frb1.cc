// Reproduces paper Table 1 (FRB1, 63 rules) and renders the resulting FLC1
// control surface so the table's effect is visible: Cv over the Sp x An
// grid for each service size.
#include <cstdio>
#include <iostream>

#include "cac/facs_flc.h"
#include "fuzzy/rule.h"

int main() {
  using namespace facsp;
  using namespace facsp::cac;

  std::cout << "=== Table 1 reproduction: FRB1 (63 rules) ===\n\n";
  const auto flc1 = make_flc1();
  const auto& rules = flc1->rules();

  // Print the rule base exactly as the paper tabulates it.
  std::printf("%-5s %-4s %-4s %-4s %-4s\n", "Rule", "Sp", "An", "Sr", "Cv");
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const auto& rule = rules.rule(r);
    std::printf("%-5zu %-4s %-4s %-4s %-4s\n", r,
                flc1->input(0).term(rule.antecedents[0]).name.c_str(),
                flc1->input(1).term(rule.antecedents[1]).name.c_str(),
                flc1->input(2).term(rule.antecedents[2]).name.c_str(),
                flc1->output().term(rule.consequent).name.c_str());
  }

  // Verify against the paper's transcription.
  const auto& expected = frb1_consequents();
  bool verbatim = rules.size() == expected.size();
  for (std::size_t r = 0; verbatim && r < rules.size(); ++r)
    verbatim = flc1->output().term(rules.rule(r).consequent).name ==
               expected[r];
  std::cout << "\nrule count: " << rules.size()
            << "  complete: " << (rules.is_complete() ? "yes" : "no")
            << "  conflict-free: "
            << (rules.conflicts().empty() ? "yes" : "no")
            << "  matches paper Table 1: " << (verbatim ? "yes" : "NO")
            << "\n\n";

  // Control surface: crisp Cv on a Sp x An grid, one block per request size.
  for (double sr : {1.0, 5.0, 10.0}) {
    std::printf("FLC1 surface, Sr = %.0f BU (Cv x 100):\n        ", sr);
    for (int an = -180; an <= 180; an += 45) std::printf("%7d", an);
    std::printf("   <- An (deg)\n");
    for (double sp : {0.0, 30.0, 60.0, 90.0, 120.0}) {
      std::printf("Sp=%4.0f ", sp);
      for (int an = -180; an <= 180; an += 45) {
        const double cv =
            flc1->evaluate({sp, static_cast<double>(an), sr});
        std::printf("%7.0f", 100.0 * cv);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::cout << "(surface peaks at An=0 and grows with speed — the rule "
               "base rewards predictable, inbound users)\n";
  return verbatim ? 0 : 1;
}
