// Validation bench: the simulator against closed-form teletraffic theory.
//
// With mobility off, complete sharing on a 40-BU cell offered the paper's
// 70/20/10 mix is a multi-rate Erlang loss system; the Kaufman-Roberts
// recursion gives its exact stationary acceptance.  This bench sweeps the
// offered load and prints simulated vs analytic acceptance side by side —
// the strongest end-to-end correctness evidence the repository has.
#include "bench_common.h"

#include "cellular/erlang.h"

int main() {
  using namespace facsp;
  using namespace facsp::bench;

  std::cout << "=== Validation: simulator vs Kaufman-Roberts ===\n";
  auto scenario = core::paper_scenario(404);
  scenario.enable_mobility = false;
  scenario.traffic.arrival_window_s = 6000.0;  // quasi-stationary
  scenario.traffic.mean_holding_s = 300.0;

  core::SweepConfig sweep;
  sweep.n_values = {40, 80, 120, 160, 200, 240, 280, 320};
  sweep.replications = replications();

  core::Experiment exp(scenario, core::make_complete_sharing_factory(), "CS");
  const auto sim_result = exp.run(sweep);

  sim::Figure fig("simulated vs analytic acceptance (complete sharing)",
                  "N", "percentage of accepted calls");
  auto& sim_series = fig.add_series("simulated");
  auto& kr_series = fig.add_series("Kaufman-Roberts");
  double worst_gap = 0.0;
  for (const auto& point : sim_result.points) {
    const double lambda =
        point.n / scenario.traffic.arrival_window_s;
    const auto kr = cellular::KaufmanRoberts::for_paper_mix(
        40, scenario.traffic.mix, lambda, scenario.traffic.mean_holding_s);
    sim_series.add(point.n, point.acceptance_percent.mean(),
                   point.acceptance_percent.ci_half_width());
    kr_series.add(point.n, kr.acceptance_percent());
    worst_gap = std::max(worst_gap,
                         std::abs(point.acceptance_percent.mean() -
                                  kr.acceptance_percent()));
  }

  std::vector<core::ShapeCheck> checks;
  {
    core::ShapeCheck c;
    c.description =
        "simulated acceptance within 5 points of theory at every load";
    // Cold-start bias bound: holding/window = 5%.
    c.passed = worst_gap < 5.0 + 1.0;
    c.details = "worst |sim - theory| = " + std::to_string(worst_gap);
    checks.push_back(c);
  }
  {
    // Erlang-B single-class spot check.
    const double b = cellular::erlang_b(52.5, 40);
    core::ShapeCheck c;
    c.description = "Erlang-B(52.5 erl, 40 servers) sanity";
    c.passed = b > 0.2 && b < 0.3;
    c.details = "B = " + std::to_string(b);
    checks.push_back(c);
  }

  return finish(fig, "validation_kaufman_roberts.csv", checks);
}
