// Decision-server benchmarks (google-benchmark) plus a steady-state
// allocation audit.
//
// BM_ServerDecideLoop measures end-to-end serving throughput: the live
// workload generator feeding the batched decide_batch admission path,
// telemetry accumulation included — the number that must stay above the
// 1M decisions/s line on the 1-core CI container.  BM_ServerReplayLoop
// is the same loop fed from a pre-recorded trace (no generation cost).
//
// The allocation audit replaces global operator new with a counting
// version (same idiom as tests/fuzzy/test_zero_alloc.cc, and the reason
// this lives in its own binary) and runs the server twice on a saturated
// no-churn scenario — call holding times far longer than the run, so the
// cell fills in the first second and every later second only blocks.
// Setup and warm-up allocate identically in both runs; the runs differ
// only in how many steady-state seconds they serve.  Equal allocation
// counts therefore prove those extra seconds allocated nothing.
#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::size_t> g_alloc_count{0};

}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include <benchmark/benchmark.h>

#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/decision_loop.h"
#include "workload/catalog.h"

namespace {

using namespace facsp;

serve::ServerConfig live_config() {
  serve::ServerConfig config;
  config.scenario = workload::catalog_scenario("paper-grid");
  config.scenario.seed = 42;
  config.duration_s = 2;
  config.requests_per_s = 50000;
  config.shards = 4;
  config.threads = 1;
  return config;
}

void BM_ServerDecideLoop(benchmark::State& state) {
  const serve::ServerConfig config = live_config();
  std::int64_t decisions = 0;
  for (auto _ : state) {
    serve::DecisionServer server(config);
    const serve::ServerResult result = server.run();
    decisions += result.total_decisions;
    benchmark::DoNotOptimize(result.total_admitted);
  }
  state.SetItemsProcessed(decisions);
}
BENCHMARK(BM_ServerDecideLoop)->Unit(benchmark::kMillisecond);

void BM_ServerReplayLoop(benchmark::State& state) {
  const serve::ServerConfig config = live_config();
  const std::vector<serve::StampedRequest> trace = serve::record_trace(config);
  std::int64_t decisions = 0;
  for (auto _ : state) {
    serve::DecisionServer server(config, trace);
    const serve::ServerResult result = server.run();
    decisions += result.total_decisions;
    benchmark::DoNotOptimize(result.total_admitted);
  }
  state.SetItemsProcessed(decisions);
}
BENCHMARK(BM_ServerReplayLoop)->Unit(benchmark::kMillisecond);

std::size_t allocations_for_duration(std::int64_t duration_s) {
  serve::ServerConfig config = live_config();
  // No churn: holding times of ~115 days against a <=16 s run mean no call
  // ever releases, so after the first second fills the 40 BU cell every
  // later second is pure blocked-decision steady state.
  config.scenario.traffic.mean_holding_s = 1e7;
  config.requests_per_s = 20000;
  config.shards = 1;
  config.duration_s = duration_s;
  serve::DecisionServer server(config);
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  const serve::ServerResult result = server.run();
  benchmark::DoNotOptimize(result.total_decisions);
  return g_alloc_count.load(std::memory_order_relaxed) - before;
}

// Returns 0 when the extra steady-state seconds allocated nothing.  Runs
// the 8 s / 16 s pair twice: once with observability off (the default
// serving configuration) and once with metrics + tracing enabled — span
// recording and metric updates must also add exactly zero steady-state
// allocations.  The obs warm-up run before the enabled pair absorbs the
// one-time registration costs (registry entries, the thread's trace ring)
// so both measured runs see an identical warm observability layer.
int audit_pair(const char* label) {
  const std::size_t short_run = allocations_for_duration(8);
  const std::size_t long_run = allocations_for_duration(16);
  if (long_run != short_run) {
    std::fprintf(stderr,
                 "steady-state allocation audit (%s) FAILED: 8 s run made "
                 "%zu allocations, 16 s run made %zu — the extra seconds "
                 "allocated %zu times\n",
                 label, short_run, long_run, long_run - short_run);
    return 1;
  }
  std::fprintf(stderr,
               "steady-state allocation audit (%s) ok: 8 s and 16 s runs "
               "both made %zu allocations (steady seconds allocate "
               "nothing)\n",
               label, short_run);
  return 0;
}

int steady_state_allocation_audit() {
  int failures = audit_pair("observability off");

  obs::set_metrics_enabled(true);
  obs::Tracer::start();
  (void)allocations_for_duration(2);  // warm-up: registers metrics + ring
  failures += audit_pair("metrics + tracing on");
  obs::Tracer::clear();
  obs::set_metrics_enabled(false);

  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (steady_state_allocation_audit() != 0) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
