// Micro-benchmarks (google-benchmark): throughput of the fuzzy pipeline —
// membership evaluation, FLC1/FLC2 inference, the full two-stage admission
// decision, and one simulated replication.  The paper motivates triangular
// and trapezoidal membership functions as "suitable for real-time
// operation"; these numbers quantify that.
#include <benchmark/benchmark.h>

#include "cac/facs.h"
#include "cac/facs_p.h"
#include "cac/scc.h"
#include "core/experiment.h"
#include "core/paper.h"
#include "sim/rng.h"

namespace {

using namespace facsp;

void BM_MembershipGrade(benchmark::State& state) {
  const auto mf = fuzzy::MembershipFunction::triangular(60.0, 60.0, 60.0);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mf.grade(x));
    x += 0.37;
    if (x > 120.0) x = 0.0;
  }
}
BENCHMARK(BM_MembershipGrade);

void BM_Flc1Evaluate(benchmark::State& state) {
  const auto flc1 = cac::make_flc1();
  sim::RandomStream rng(1);
  std::vector<std::array<double, 3>> inputs(256);
  for (auto& in : inputs)
    in = {rng.uniform(0.0, 120.0), rng.uniform(-180.0, 180.0),
          rng.uniform(0.0, 10.0)};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& in = inputs[i++ & 255];
    benchmark::DoNotOptimize(flc1->evaluate({in[0], in[1], in[2]}));
  }
}
BENCHMARK(BM_Flc1Evaluate);

void BM_Flc2Evaluate(benchmark::State& state) {
  const auto flc2 = cac::make_flc2();
  sim::RandomStream rng(2);
  std::vector<std::array<double, 3>> inputs(256);
  for (auto& in : inputs)
    in = {rng.uniform(0.0, 1.0), rng.uniform(0.0, 10.0),
          rng.uniform(0.0, 40.0)};
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& in = inputs[i++ & 255];
    benchmark::DoNotOptimize(flc2->evaluate({in[0], in[1], in[2]}));
  }
}
BENCHMARK(BM_Flc2Evaluate);

void BM_Flc1EvaluateBatch(benchmark::State& state) {
  const auto flc1 = cac::make_flc1();
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  sim::RandomStream rng(1);
  std::vector<double> inputs(rows * 3);
  for (std::size_t r = 0; r < rows; ++r) {
    inputs[r * 3 + 0] = rng.uniform(0.0, 120.0);
    inputs[r * 3 + 1] = rng.uniform(-180.0, 180.0);
    inputs[r * 3 + 2] = rng.uniform(0.0, 10.0);
  }
  std::vector<double> out(rows);
  for (auto _ : state) {
    flc1->evaluate_batch(inputs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_Flc1EvaluateBatch)->Arg(256);

void BM_Flc2EvaluateByResolution(benchmark::State& state) {
  cac::Flc2Params params;
  const auto flc2 = cac::make_flc2(
      params, {},
      fuzzy::Defuzzifier(fuzzy::DefuzzMethod::kCentroid,
                         static_cast<int>(state.range(0))));
  for (auto _ : state)
    benchmark::DoNotOptimize(flc2->evaluate({0.4, 5.0, 17.0}));
}
BENCHMARK(BM_Flc2EvaluateByResolution)->Arg(64)->Arg(256)->Arg(1024);

void BM_FacsPDecide(benchmark::State& state) {
  cac::FacsPPolicy policy;
  cellular::BaseStation bs(0, {0, 0}, {0.0, 0.0}, 40.0);
  cac::AdmissionRequest req;
  req.id = 1;
  req.service = cellular::ServiceClass::kVoice;
  req.bandwidth = 5.0;
  req.speed_kmh = 60.0;
  req.angle_deg = 20.0;
  for (auto _ : state) benchmark::DoNotOptimize(policy.decide(req, bs));
}
BENCHMARK(BM_FacsPDecide);

void BM_DecisionBatch(benchmark::State& state) {
  cac::FacsPPolicy policy;
  cellular::BaseStation bs(0, {0, 0}, {0.0, 0.0}, 40.0);
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  sim::RandomStream rng(3);
  std::vector<cac::AdmissionRequest> reqs(rows);
  std::vector<cac::AdmissionDecision> out(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    reqs[i].id = static_cast<cellular::ConnectionId>(i + 1);
    reqs[i].service = cellular::ServiceClass::kVoice;
    reqs[i].bandwidth = 5.0;
    reqs[i].speed_kmh = rng.uniform(0.0, 120.0);
    reqs[i].angle_deg = rng.uniform(-180.0, 180.0);
  }
  for (auto _ : state) {
    policy.decide_batch(reqs, bs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_DecisionBatch)->Arg(256);

void BM_SccDecide(benchmark::State& state) {
  cellular::CellularNetwork net(1, 2000.0, 40.0);
  cac::SccPolicy policy(net);
  // Populate the shadow ledger with a realistic number of actives.
  for (cellular::ConnectionId id = 1; id <= 12; ++id) {
    cac::AdmissionRequest a;
    a.id = id;
    a.bandwidth = 2.7;
    a.mobile = {{100.0 * id, 50.0 * id}, 40.0, 30.0 * id};
    policy.on_admitted(a, net.center());
  }
  cac::AdmissionRequest req;
  req.id = 99;
  req.service = cellular::ServiceClass::kVoice;
  req.bandwidth = 5.0;
  req.mobile = {{0.0, 0.0}, 60.0, 0.0};
  for (auto _ : state)
    benchmark::DoNotOptimize(policy.decide(req, net.center()));
}
BENCHMARK(BM_SccDecide);

void BM_FullReplication(benchmark::State& state) {
  const auto scenario = core::paper_scenario();
  const auto factory = core::make_facs_p_factory();
  const int n = static_cast<int>(state.range(0));
  std::uint64_t rep = 0;
  for (auto _ : state) {
    core::Experiment exp(scenario, factory, "FACS-P");
    benchmark::DoNotOptimize(exp.run_single(n, rep++));
  }
  state.SetLabel("requests=" + std::to_string(n));
}
BENCHMARK(BM_FullReplication)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
