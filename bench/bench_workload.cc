// Workload-generation bench: request throughput per arrival process, plus a
// steady-state allocation audit of the default path.
//
// A replacement global operator new counts every heap allocation (the same
// harness as tests/fuzzy/test_zero_alloc.cc); after a warm-up batch the
// default conditioned-uniform (Poisson) path must generate batches with
// ZERO further allocations — the binary fails loudly otherwise.  The other
// processes are measured for throughput only (they keep per-batch scratch:
// phase paths, rejection sampling).
//
// Committed numbers live in BENCH_workload.json.  Overrides:
//   FACSP_BENCH_BATCHES   batches per process timing loop (default 2000)
#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::size_t> g_alloc_count{0};

}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cellular/traffic.h"
#include "workload/arrival.h"

using namespace facsp;

namespace {

int batches() {
  if (const char* env = std::getenv("FACSP_BENCH_BATCHES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 2000;
}

cellular::TrafficGenerator make_generator(workload::ArrivalKind kind,
                                          const cellular::HexLayout& layout) {
  cellular::TrafficConfig cfg;  // paper defaults
  cfg.arrival.kind = kind;
  return cellular::TrafficGenerator(cfg, layout, cellular::HexCoord{0, 0},
                                    cellular::Point{0.0, 0.0},
                                    sim::RandomStream(42));
}

}  // namespace

int main() {
  const cellular::HexLayout layout(2000.0);
  constexpr int kBatchN = 100;  // the paper grid's heaviest point
  const int kBatches = batches();

  std::printf("=== Workload generation: %d-request batches x %d ===\n\n",
              kBatchN, kBatches);
  std::printf("  %-10s %14s %16s\n", "process", "Mreq/s", "allocs/batch");

  std::string json = "{";
  int failures = 0;
  for (const workload::ArrivalKind kind :
       {workload::ArrivalKind::kConditionedUniform,
        workload::ArrivalKind::kOnOff, workload::ArrivalKind::kDiurnal,
        workload::ArrivalKind::kFlashCrowd}) {
    auto gen = make_generator(kind, layout);
    std::vector<cellular::CallRequest> out;
    gen.generate_into(kBatchN, 0.0, out);  // size every buffer

    const std::size_t alloc_before =
        g_alloc_count.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    for (int b = 0; b < kBatches; ++b)
      gen.generate_into(kBatchN, b * 1000.0, out);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double allocs_per_batch =
        static_cast<double>(g_alloc_count.load(std::memory_order_relaxed) -
                            alloc_before) /
        kBatches;
    const double mreq_s =
        static_cast<double>(kBatchN) * kBatches / secs / 1e6;

    const std::string name(workload::arrival_kind_name(kind));
    std::printf("  %-10s %14.2f %16.2f\n", name.c_str(), mreq_s,
                allocs_per_batch);
    json += (json.size() > 1 ? ", " : "") + std::string("\"") + name +
            "_mreq_s\": " + std::to_string(mreq_s) + ", \"" + name +
            "_allocs_per_batch\": " + std::to_string(allocs_per_batch);

    // The default (Poisson/conditioned-uniform) path is the one every
    // paper-grid replication runs: it must stay allocation-free once warm.
    if (kind == workload::ArrivalKind::kConditionedUniform &&
        allocs_per_batch != 0.0) {
      std::fprintf(stderr,
                   "FAIL: default arrival path allocated %.2f times per "
                   "steady-state batch (expected 0)\n",
                   allocs_per_batch);
      ++failures;
    }
  }
  json += "}";
  std::printf("\n  json: %s\n", json.c_str());
  return failures == 0 ? 0 : 1;
}
