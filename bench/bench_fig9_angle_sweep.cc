// Reproduces paper Fig. 9: FACS-P acceptance vs number of requesting
// connections for fixed user angles 0, 30, 50, 60, 90 degrees.
//
// Paper shape: angle 0 (heading straight at the BS) is accepted most;
// acceptance decreases as the angle grows, and beyond 90 degrees it is
// "almost zero" (those users are leaving — allocating to them is waste).
#include "bench_common.h"

int main() {
  using namespace facsp;
  using namespace facsp::bench;

  std::cout << "=== Fig. 9 reproduction: FACS-P, angle as a parameter ===\n";
  const double angles[] = {0.0, 30.0, 50.0, 60.0, 90.0};
  const auto sweep = core::SweepConfig::paper_grid(replications());

  sim::Figure fig("Fig. 9 — acceptance vs N for different angles (FACS-P)",
                  "N", "percentage of accepted calls");
  std::vector<sim::Series> series;
  for (double a : angles) {
    const auto scenario = core::paper_scenario_fixed_angle(a);
    core::Experiment exp(scenario, core::make_facs_p_factory(),
                         "angle=" + std::to_string(static_cast<int>(a)));
    const auto s = exp.run(sweep).acceptance_series();
    auto& dst = fig.add_series(s.name());
    for (std::size_t i = 0; i < s.size(); ++i)
      dst.add(s.x(i), s.y(i), s.ci(i).value_or(0.0));
    series.push_back(s);
    std::cerr << "  [" << s.name() << "] done\n";
  }

  std::vector<core::ShapeCheck> checks;
  for (double probe : {40.0, 80.0}) {
    core::ShapeCheck c;
    c.description = "angle 0 has the highest acceptance at N=" +
                    std::to_string(static_cast<int>(probe));
    c.passed = true;
    for (std::size_t i = 1; i < series.size(); ++i)
      c.passed = c.passed &&
                 series[0].y_at(probe) >= series[i].y_at(probe) - 2.0;
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description = "acceptance ordered by angle at N=50 (within noise)";
    c.passed = core::ordered_at({&series[4], &series[3], &series[2],
                                 &series[1], &series[0]},
                                50.0, 6.0);
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description = "angle 90 well below angle 0 at heavy load";
    c.passed = series[4].y_at(100) < series[0].y_at(100) - 10.0;
    c.details = std::to_string(series[4].y_at(100)) + "% vs " +
                std::to_string(series[0].y_at(100)) + "%";
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description = "every angle's curve declines with load";
    c.passed = true;
    for (const auto& s : series)
      c.passed = c.passed && core::is_non_increasing(s, 8.0);
    checks.push_back(c);
  }

  return finish(fig, "fig9_angle_sweep.csv", checks);
}
