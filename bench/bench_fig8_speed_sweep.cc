// Reproduces paper Fig. 8: FACS-P acceptance vs number of requesting
// connections for fixed user speeds 4, 10, 30, 60 km/h.
//
// Paper shape: higher speed => higher acceptance at every load level (fast
// users' directions are predictable, so the controller allocates resources
// to users who actually stay useful to the cell).
#include "bench_common.h"

int main() {
  using namespace facsp;
  using namespace facsp::bench;

  std::cout << "=== Fig. 8 reproduction: FACS-P, speed as a parameter ===\n";
  const double speeds[] = {4.0, 10.0, 30.0, 60.0};
  const auto sweep = core::SweepConfig::paper_grid(replications());

  sim::Figure fig("Fig. 8 — acceptance vs N for different speeds (FACS-P)",
                  "N", "percentage of accepted calls");
  std::vector<sim::Series> series;
  for (double v : speeds) {
    const auto scenario = core::paper_scenario_fixed_speed(v);
    core::Experiment exp(scenario, core::make_facs_p_factory(),
                         std::to_string(static_cast<int>(v)) + " km/h");
    const auto s = exp.run(sweep).acceptance_series();
    auto& dst = fig.add_series(s.name());
    for (std::size_t i = 0; i < s.size(); ++i)
      dst.add(s.x(i), s.y(i), s.ci(i).value_or(0.0));
    series.push_back(s);
    std::cerr << "  [" << s.name() << "] done\n";
  }

  std::vector<core::ShapeCheck> checks;
  for (double probe : {40.0, 70.0, 100.0}) {
    core::ShapeCheck c;
    c.description = "acceptance ordered by speed at N=" +
                    std::to_string(static_cast<int>(probe));
    c.passed = core::ordered_at(
        {&series[0], &series[1], &series[2], &series[3]}, probe, 4.0);
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description = "60 km/h clearly above 4 km/h at heavy load";
    c.passed = series[3].y_at(100) > series[0].y_at(100) + 10.0;
    c.details = std::to_string(series[3].y_at(100)) + "% vs " +
                std::to_string(series[0].y_at(100)) + "%";
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description = "every speed's curve declines with load";
    c.passed = true;
    for (const auto& s : series)
      c.passed = c.passed && core::is_non_increasing(s, 8.0);
    checks.push_back(c);
  }

  return finish(fig, "fig8_speed_sweep.csv", checks);
}
