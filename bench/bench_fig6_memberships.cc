// Reproduces paper Fig. 6: the membership functions of FLC2 (Cv, Rq, Cs,
// A/R), printed as sampled curves and ASCII sparklines.
#include <cstdio>
#include <iostream>

#include "cac/facs_flc.h"

namespace {

void dump_variable(const facsp::fuzzy::LinguisticVariable& v, int samples) {
  std::printf("-- %s over [%g, %g] --\n", v.name().c_str(), v.universe_lo(),
              v.universe_hi());
  std::printf("%-6s", "x:");
  for (int i = 0; i < samples; ++i) {
    const double x = v.universe_lo() +
                     (v.universe_hi() - v.universe_lo()) * i / (samples - 1);
    std::printf("%7.2f", x);
  }
  std::printf("\n");
  for (std::size_t t = 0; t < v.term_count(); ++t) {
    std::printf("%-6s", v.term(t).name.c_str());
    for (int i = 0; i < samples; ++i) {
      const double x =
          v.universe_lo() +
          (v.universe_hi() - v.universe_lo()) * i / (samples - 1);
      std::printf("%7.2f", v.grade(t, x));
    }
    std::printf("   ");
    static const char* kLevels = " .:-=+*#";
    for (int i = 0; i < 48; ++i) {
      const double x = v.universe_lo() +
                       (v.universe_hi() - v.universe_lo()) * i / 47.0;
      const int level = static_cast<int>(v.grade(t, x) * 7.0 + 0.5);
      std::printf("%c", kLevels[level]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace facsp::cac;
  std::cout << "=== Fig. 6 reproduction: FLC2 membership functions ===\n\n";
  dump_variable(make_correction_input_variable(), 9);  // (a) Cv: Bd/No/Go
  dump_variable(make_request_type_variable(), 11);     // (b) Rq: Tx/Vo/Vi
  dump_variable(make_counter_state_variable(), 9);     // (c) Cs: Sa/Md/Fu
  dump_variable(make_accept_reject_variable(), 9);     // (d) A/R: R..A
  std::cout << "(breakpoints match the tick marks of paper Fig. 6: Cv "
               "0.5/1, Rq 5/10, Cs 20/40, A/R multiples of 0.3)\n";
  return 0;
}
