// Reproduces paper Table 2 (FRB2, 27 rules) and renders the FLC2 decision
// surface: crisp A/R over the Cv x Cs grid for each request type.
#include <cstdio>
#include <iostream>

#include "cac/facs_flc.h"
#include "fuzzy/rule.h"

int main() {
  using namespace facsp;
  using namespace facsp::cac;

  std::cout << "=== Table 2 reproduction: FRB2 (27 rules) ===\n\n";
  const auto flc2 = make_flc2();
  const auto& rules = flc2->rules();

  std::printf("%-5s %-4s %-4s %-4s %-5s\n", "Rule", "Cv", "Rq", "Cs", "A/R");
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const auto& rule = rules.rule(r);
    std::printf("%-5zu %-4s %-4s %-4s %-5s\n", r,
                flc2->input(0).term(rule.antecedents[0]).name.c_str(),
                flc2->input(1).term(rule.antecedents[1]).name.c_str(),
                flc2->input(2).term(rule.antecedents[2]).name.c_str(),
                flc2->output().term(rule.consequent).name.c_str());
  }

  const auto& expected = frb2_consequents();
  bool verbatim = rules.size() == expected.size();
  for (std::size_t r = 0; verbatim && r < rules.size(); ++r)
    verbatim = flc2->output().term(rules.rule(r).consequent).name ==
               expected[r];
  std::cout << "\nrule count: " << rules.size()
            << "  complete: " << (rules.is_complete() ? "yes" : "no")
            << "  conflict-free: "
            << (rules.conflicts().empty() ? "yes" : "no")
            << "  matches paper Table 2: " << (verbatim ? "yes" : "NO")
            << "\n\n";

  // Decision surface per request type: A/R x 100 over Cv x Cs.
  const char* req_names[] = {"text (1 BU)", "voice (5 BU)", "video (10 BU)"};
  const double req_sizes[] = {1.0, 5.0, 10.0};
  for (int k = 0; k < 3; ++k) {
    std::printf("FLC2 surface, Rq = %s (A/R x 100; >0 leans accept):\n       ",
                req_names[k]);
    for (int cs = 0; cs <= 40; cs += 5) std::printf("%6d", cs);
    std::printf("   <- Cs (BU)\n");
    for (double cv : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      std::printf("Cv=%.2f", cv);
      for (int cs = 0; cs <= 40; cs += 5) {
        const double ar =
            flc2->evaluate({cv, req_sizes[k], static_cast<double>(cs)});
        std::printf("%6.0f", 100.0 * ar);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::cout << "(decisions soften from Accept to Reject as the cell fills; "
               "wide requests are cut first)\n";
  return verbatim ? 0 : 1;
}
