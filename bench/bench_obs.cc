// Observability-layer micro-benchmarks: what a span, a counter bump and a
// histogram record cost on both sides of the global switches.
//
// The numbers that matter:
//
//   * BM_SpanDisabled — the price every instrumented hot path pays when
//     observability is off (the default).  Two relaxed loads + branches;
//     must stay in the low single-digit ns or the "disabled is free" claim
//     in src/obs/trace.h is broken.  Guarded by check_bench_regression.py
//     against BENCH_obs.json.
//   * BM_SpanTraced / BM_SpanHistogram — the enabled cost: two clock reads
//     plus a ring write and/or histogram record.  Bounds the overhead of a
//     traced run (also regression-guarded).
//   * BM_CounterAdd / BM_HistogramRecord / BM_TracerRecord — the primitive
//     recording operations in isolation (no clock reads).
//
// The disabled-path claim is additionally enforced end to end: CI re-runs
// the BM_FacsPDecide and BM_ServerDecideLoop regression gates (1.25x
// budgets) on the instrumented tree, so a disabled-path slowdown in
// decide_batch or the serving loop fails those long-standing guards too.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace facsp;

/// Every bench leaves the process the way it found it (switches off, tracer
/// cleared) so registration order can't bleed between benchmarks.
void obs_all_off() {
  obs::Tracer::clear();
  obs::set_metrics_enabled(false);
}

void BM_SpanDisabled(benchmark::State& state) {
  obs_all_off();
  for (auto _ : state) {
    obs::ScopedSpan span("bench", "disabled");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanTraced(benchmark::State& state) {
  obs_all_off();
  obs::Tracer::start();
  for (auto _ : state) {
    obs::ScopedSpan span("bench", "traced");
    benchmark::DoNotOptimize(&span);
  }
  obs_all_off();
}
BENCHMARK(BM_SpanTraced);

void BM_SpanHistogram(benchmark::State& state) {
  // Metrics-only mode: the span mirrors its duration into a histogram, the
  // tracer stays off (no ring write).
  obs_all_off();
  obs::set_metrics_enabled(true);
  obs::Histogram& hist =
      obs::Registry::instance().histogram("bench.span_ns");
  for (auto _ : state) {
    obs::ScopedSpan span("bench", "hist", obs::Tracer::kNoArg, &hist);
    benchmark::DoNotOptimize(&span);
  }
  obs_all_off();
}
BENCHMARK(BM_SpanHistogram);

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter& counter = obs::Registry::instance().counter("bench.counter");
  for (auto _ : state) {
    counter.add(1);
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram& hist = obs::Registry::instance().histogram("bench.hist");
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.record(v);
    v = (v * 3 + 7) & 0xffffff;  // exercise different buckets
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_TracerRecord(benchmark::State& state) {
  // The raw ring write, timestamps precomputed — isolates the buffer cost
  // from the clock reads a ScopedSpan adds on top.
  obs_all_off();
  obs::Tracer::start();
  std::uint64_t ts = 0;
  for (auto _ : state) {
    obs::Tracer::record("bench", "event", ts, 1);
    ++ts;
  }
  obs_all_off();
}
BENCHMARK(BM_TracerRecord);

}  // namespace

BENCHMARK_MAIN();
