// Future-work bench: the paper's closing sentence — "in the future, we
// would like to consider also the priority of requesting connections" —
// realised as FACS-PR and measured.
//
// Reports per-priority acceptance under FACS-PR vs the priority-blind
// FACS-P on the paper's scenario (20% low / 60% normal / 20% high
// requesting-priority mix).  Expected shape: high-priority acceptance
// stays near FACS-P's aggregate while low-priority acceptance is
// sacrificed under load; the overall curve stays close to FACS-P's.
#include "bench_common.h"

int main() {
  using namespace facsp;
  using namespace facsp::bench;

  std::cout << "=== Future work: priority of requesting connections ===\n";
  const auto scenario = core::paper_scenario();
  core::SweepConfig sweep = core::SweepConfig::paper_grid(replications());

  // Per-priority acceptance needs run_single (the sweep aggregates only
  // the headline metric), so collect manually.
  sim::Figure fig("FACS-PR per-priority acceptance vs N", "N",
                  "percentage of accepted calls");
  auto& s_high = fig.add_series("high (FACS-PR)");
  auto& s_norm = fig.add_series("normal (FACS-PR)");
  auto& s_low = fig.add_series("low (FACS-PR)");
  auto& s_blind = fig.add_series("any (FACS-P)");

  core::Experiment pr(scenario, core::make_facs_pr_factory(), "FACS-PR");
  core::Experiment fp(scenario, core::make_facs_p_factory(), "FACS-P");

  double overall_gap_sum = 0.0;
  for (int n : sweep.n_values) {
    sim::SummaryStats high, norm, low, pr_all, fp_all;
    for (int rep = 0; rep < sweep.replications; ++rep) {
      const auto run = pr.run_single(n, rep);
      high.add(run.metrics.acceptance_percent(cellular::UserPriority::kHigh));
      norm.add(
          run.metrics.acceptance_percent(cellular::UserPriority::kNormal));
      low.add(run.metrics.acceptance_percent(cellular::UserPriority::kLow));
      pr_all.add(run.metrics.acceptance_percent());
      fp_all.add(fp.run_single(n, rep).metrics.acceptance_percent());
    }
    s_high.add(n, high.mean(), high.ci_half_width());
    s_norm.add(n, norm.mean(), norm.ci_half_width());
    s_low.add(n, low.mean(), low.ci_half_width());
    s_blind.add(n, fp_all.mean(), fp_all.ci_half_width());
    overall_gap_sum += std::abs(pr_all.mean() - fp_all.mean());
    std::cerr << "  N=" << n << " done\n";
  }

  std::vector<core::ShapeCheck> checks;
  for (double probe : {50.0, 100.0}) {
    core::ShapeCheck c;
    c.description = "acceptance ordered high >= normal >= low at N=" +
                    std::to_string(static_cast<int>(probe));
    c.passed = s_high.y_at(probe) >= s_norm.y_at(probe) - 3.0 &&
               s_norm.y_at(probe) >= s_low.y_at(probe) - 3.0;
    c.details = std::to_string(s_high.y_at(probe)) + " / " +
                std::to_string(s_norm.y_at(probe)) + " / " +
                std::to_string(s_low.y_at(probe));
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description =
        "high-priority users keep most of their light-load service level "
        "at N=100";
    c.passed = s_high.y_at(100) > s_low.y_at(100) + 10.0;
    c.details = "high " + std::to_string(s_high.y_at(100)) + "% vs low " +
                std::to_string(s_low.y_at(100)) + "%";
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description =
        "aggregate acceptance stays close to priority-blind FACS-P";
    c.passed = overall_gap_sum / sweep.n_values.size() < 8.0;
    c.details = "mean |FACS-PR - FACS-P| = " +
                std::to_string(overall_gap_sum / sweep.n_values.size());
    checks.push_back(c);
  }

  return finish(fig, "future_work_priority.csv", checks);
}
