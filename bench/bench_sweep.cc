// Multi-axis sweep benchmark: a policy x scenario x N grid through the
// declarative SweepRunner at several thread counts, reporting cells/sec.
//
// Two guarantees are exercised at once:
//   * correctness — every thread count's ResultTable must serialise
//     byte-for-byte identically (CSV and JSON) to the single-thread run;
//     the binary fails loudly otherwise;
//   * throughput — wall-clock and cells/sec per thread count.
//
// Committed numbers live in BENCH_sweep.json.  Overrides:
//   FACSP_BENCH_REPS     replications per cell   (default 16)
//   FACSP_BENCH_THREADS  comma list of counts    (default "1,2,4,8")
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/config_io.h"
#include "core/report.h"
#include "core/sweep.h"

using namespace facsp;

namespace {

std::vector<int> thread_counts() {
  std::vector<int> out;
  const char* env = std::getenv("FACSP_BENCH_THREADS");
  for (const std::string& tok :
       core::split_fields(env != nullptr ? env : "1,2,4,8", ','))
    if (const int t = std::atoi(tok.c_str()); t > 0) out.push_back(t);
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

core::SweepSpec grid_spec(int replications, int threads) {
  core::SweepSpec spec;
  spec.replications = replications;
  spec.threads = threads;
  spec.policy_axis({"facs-p", "facs", "gc"});
  spec.scenario_axis({"paper-grid", "bursty-onoff"});
  spec.n_axis({20, 40, 60});
  return spec;
}

}  // namespace

int main() {
  const int reps = bench::replications();
  const core::SweepRunner reference(grid_spec(reps, 1));
  std::printf(
      "=== Declarative sweep: policy x scenario x N grid, %zu cells x %d "
      "reps ===\n",
      reference.grid_size(), reps);

  const auto t_serial = std::chrono::steady_clock::now();
  const core::ResultTable serial = reference.run();
  const double serial_ms = elapsed_ms(t_serial);
  const std::string serial_csv = core::result_csv_string(serial);
  const std::string serial_json = core::result_json_string(serial);
  const double total_cells = static_cast<double>(reference.cell_count());
  std::printf("  1 thread  %10.1f ms  %8.1f cells/s\n", serial_ms,
              1000.0 * total_cells / serial_ms);

  int failures = 0;
  std::printf("\n  %-8s %12s %12s %9s %14s\n", "threads", "wall ms",
              "cells/s", "speedup", "byte-identical");
  std::vector<std::pair<int, double>> timings;
  for (const int threads : thread_counts()) {
    const core::SweepRunner runner(grid_spec(reps, threads));
    const auto t0 = std::chrono::steady_clock::now();
    const core::ResultTable table = runner.run();
    const double ms = elapsed_ms(t0);
    const bool identical = core::result_csv_string(table) == serial_csv &&
                           core::result_json_string(table) == serial_json;
    if (!identical) ++failures;
    timings.emplace_back(threads, ms);
    std::printf("  %-8d %12.1f %12.1f %8.2fx %14s\n", threads, ms,
                1000.0 * total_cells / ms, serial_ms / ms,
                identical ? "yes" : "NO — BUG");
  }

  std::printf("\n  json: {\"cells\": %.0f, \"serial_ms\": %.1f", total_cells,
              serial_ms);
  for (const auto& [threads, ms] : timings)
    std::printf(", \"threads_%d_ms\": %.1f, \"threads_%d_cells_per_s\": %.1f",
                threads, ms, threads, 1000.0 * total_cells / ms);
  std::printf("}\n");

  if (failures != 0) {
    std::fprintf(stderr,
                 "FAIL: %d thread configuration(s) diverged from the "
                 "single-thread ResultTable\n",
                 failures);
    return 1;
  }
  return 0;
}
