// Reproduces paper Fig. 10: "Performance of proposed FACS-P with FACS" —
// the headline result.
//
// Paper shape: FACS-P above FACS while N < ~25; beyond that the proposed
// system accepts fewer new connections because the RTC/NRTC priority
// weighting protects the QoS of on-going calls.  At N=100 the paper reads
// ~52% (proposed) vs ~63% (previous).
#include "bench_common.h"

int main() {
  using namespace facsp;
  using namespace facsp::bench;

  std::cout << "=== Fig. 10 reproduction: FACS-P vs FACS ===\n";
  const auto scenario = core::paper_scenario();
  std::vector<sim::Series> series;
  const auto fig = run_acceptance_figure(
      "Fig. 10 — Performance of proposed FACS-P with FACS", scenario,
      {{"FACS-P (proposed)", core::make_facs_p_factory()},
       {"FACS (previous)", core::make_facs_factory()}},
      &series);

  const auto& fp = series[0];
  const auto& f = series[1];
  std::vector<core::ShapeCheck> checks;
  checks.push_back({"FACS-P at least on par with FACS at N=10", false, ""});
  checks.back().passed = fp.y_at(10) >= f.y_at(10) - 2.0;
  checks.back().details = std::to_string(fp.y_at(10)) + "% vs " +
                          std::to_string(f.y_at(10)) + "%";

  checks.push_back({"FACS-P at least on par with FACS at N=20", false, ""});
  checks.back().passed = fp.y_at(20) >= f.y_at(20) - 2.0;

  const auto cross = core::crossover_x(fp, f);
  checks.push_back(
      {"FACS-P crosses below FACS near N=25 (paper: 25)", false, ""});
  if (cross) {
    checks.back().passed = *cross >= 15.0 && *cross <= 50.0;
    checks.back().details = "crossover at N=" + std::to_string(*cross);
  } else {
    checks.back().details = "no crossover detected";
  }

  checks.push_back(
      {"FACS-P accepts fewer new calls at N=100 (QoS protection)", false,
       ""});
  checks.back().passed = fp.y_at(100) < f.y_at(100);
  checks.back().details = std::to_string(fp.y_at(100)) + "% vs " +
                          std::to_string(f.y_at(100)) + "%";

  checks.push_back({"both curves non-increasing with load", false, ""});
  checks.back().passed =
      core::is_non_increasing(fp, 6.0) && core::is_non_increasing(f, 6.0);

  // Extended metric backing the paper's claim: on-going-call protection.
  {
    core::SweepConfig heavy;
    heavy.n_values = {80};
    heavy.replications = replications();
    const auto drops_fp =
        core::Experiment(scenario, core::make_facs_p_factory(), "FACS-P")
            .run(heavy)
            .dropping_series();
    const auto drops_f =
        core::Experiment(scenario, core::make_facs_factory(), "FACS")
            .run(heavy)
            .dropping_series();
    core::ShapeCheck c;
    c.description =
        "FACS-P handoff dropping <= FACS at heavy load (on-going QoS)";
    c.passed = drops_fp.y_at(80) <= drops_f.y_at(80) + 1.0;
    c.details = std::to_string(drops_fp.y_at(80)) + "% vs " +
                std::to_string(drops_f.y_at(80)) + "%";
    checks.push_back(c);
  }

  return finish(fig, "fig10_facsp_vs_facs.csv", checks);
}
