// Shared plumbing for the figure-reproduction benches: run the paper's
// sweep for a set of policies, print the figure as an aligned table, write
// the CSV next to the binary, and evaluate the paper-vs-measured shape
// checks.
#pragma once

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/paper.h"
#include "core/report.h"
#include "sim/timeseries.h"

namespace facsp::bench {

/// Replications per (policy, N) cell.  Figure benches favour smooth curves;
/// override with FACSP_BENCH_REPS for quick runs.
inline int replications() {
  if (const char* env = std::getenv("FACSP_BENCH_REPS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 16;
}

struct NamedPolicy {
  std::string name;
  core::PolicyFactory factory;
};

/// Run the full paper sweep for every policy and collect the acceptance
/// series into a figure.
inline sim::Figure run_acceptance_figure(
    const std::string& title, const core::ScenarioConfig& scenario,
    const std::vector<NamedPolicy>& policies,
    std::vector<sim::Series>* series_out = nullptr) {
  const auto sweep = core::SweepConfig::paper_grid(replications());
  sim::Figure fig(title, "N", "percentage of accepted calls");
  for (const auto& p : policies) {
    const auto t0 = std::chrono::steady_clock::now();
    core::Experiment exp(scenario, p.factory, p.name);
    const auto series = exp.run(sweep).acceptance_series();
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::cerr << "  [" << p.name << "] sweep done in " << ms << " ms\n";
    auto& dst = fig.add_series(p.name);
    for (std::size_t i = 0; i < series.size(); ++i)
      dst.add(series.x(i), series.y(i), series.ci(i).value_or(0.0));
    if (series_out != nullptr) series_out->push_back(series);
  }
  return fig;
}

/// Print the figure, write its CSV, print shape checks; returns 0/1 exit
/// status (shape-check failures are reported but do not fail the binary —
/// they are stochastic at low replication counts).
inline int finish(const sim::Figure& fig, const std::string& csv_name,
                  const std::vector<core::ShapeCheck>& checks) {
  fig.print_table(std::cout);
  std::cout << '\n';
  try {
    core::write_csv(fig, csv_name);
    std::cout << "(csv written to " << csv_name << ")\n";
  } catch (const std::exception& e) {
    std::cout << "(csv not written: " << e.what() << ")\n";
  }
  core::print_shape_checks(std::cout, checks);
  return 0;
}

}  // namespace facsp::bench
