// Parallel sweep benchmark: the whole paper grid (10 N-values x R
// replications x 7 policies) through ParallelSweepRunner at several thread
// counts, against the serial Experiment::run baseline.
//
// Two guarantees are exercised at once:
//   * correctness — every parallel result is checked bit-identical to the
//     serial sweep before its timing is reported (the binary fails loudly
//     otherwise);
//   * throughput — wall-clock per thread count, with speedup vs serial.
//
// Committed numbers live in BENCH_parallel_sweep.json.  Overrides:
//   FACSP_BENCH_REPS     replications per cell   (default 16)
//   FACSP_BENCH_THREADS  comma list of counts    (default "1,2,4,8")
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/parallel_sweep.h"
#include "core/paper.h"

using namespace facsp;

namespace {

std::vector<int> thread_counts() {
  std::vector<int> out;
  const char* env = std::getenv("FACSP_BENCH_THREADS");
  std::string spec = env != nullptr ? env : "1,2,4,8";
  for (std::size_t pos = 0; pos < spec.size();) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (const int t = std::atoi(tok.c_str()); t > 0) out.push_back(t);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out = {1, 2, 4, 8};
  return out;
}

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool bit_identical(const core::SweepResult& a, const core::SweepResult& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const core::SweepPoint& pa = a.points[i];
    const core::SweepPoint& pb = b.points[i];
    const std::pair<const sim::SummaryStats*, const sim::SummaryStats*>
        stats[] = {
            {&pa.acceptance_percent, &pb.acceptance_percent},
            {&pa.dropping_percent, &pb.dropping_percent},
            {&pa.utilization_percent, &pb.utilization_percent},
            {&pa.completion_percent, &pb.completion_percent},
        };
    if (pa.n != pb.n) return false;
    for (const auto& [sa, sb] : stats)
      if (sa->count() != sb->count() || sa->mean() != sb->mean() ||
          sa->variance() != sb->variance() ||
          sa->ci_half_width() != sb->ci_half_width())
        return false;
  }
  return true;
}

}  // namespace

int main() {
  const auto scen = core::paper_scenario();
  const std::vector<bench::NamedPolicy> policies = {
      {"FACS-P", core::make_facs_p_factory()},
      {"FACS-PR", core::make_facs_pr_factory()},
      {"FACS", core::make_facs_factory()},
      {"SCC", core::make_scc_factory()},
      {"GC", core::make_guard_channel_factory(8.0)},
      {"FGC", core::make_fractional_guard_factory(8.0)},
      {"CS", core::make_complete_sharing_factory()},
  };
  core::SweepConfig sweep = core::SweepConfig::paper_grid(bench::replications());

  std::printf("=== Parallel sweep: paper grid, %zu policies, %d reps ===\n",
              policies.size(), sweep.replications);

  // Serial baseline (the reference results for the bit-identity check).
  std::vector<core::SweepResult> serial;
  const auto t_serial = std::chrono::steady_clock::now();
  for (const auto& p : policies)
    serial.push_back(core::Experiment(scen, p.factory, p.name).run(sweep));
  const double serial_ms = elapsed_ms(t_serial);
  std::printf("  serial Experiment::run          %8.1f ms\n", serial_ms);

  int failures = 0;
  std::printf("\n  %-8s %12s %9s %14s\n", "threads", "wall ms", "speedup",
              "bit-identical");
  std::vector<std::pair<int, double>> timings;
  for (const int threads : thread_counts()) {
    sweep.threads = threads;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<core::SweepResult> parallel;
    for (const auto& p : policies)
      parallel.push_back(
          core::ParallelSweepRunner(scen, p.factory, p.name).run(sweep));
    const double ms = elapsed_ms(t0);
    bool identical = true;
    for (std::size_t i = 0; i < policies.size(); ++i)
      identical = identical && bit_identical(serial[i], parallel[i]);
    if (!identical) ++failures;
    timings.emplace_back(threads, ms);
    std::printf("  %-8d %12.1f %8.2fx %14s\n", threads, ms, serial_ms / ms,
                identical ? "yes" : "NO — BUG");
  }

  std::printf("\n  json: {\"serial_ms\": %.1f", serial_ms);
  for (const auto& [threads, ms] : timings)
    std::printf(", \"threads_%d_ms\": %.1f", threads, ms);
  std::printf("}\n");

  if (failures != 0) {
    std::fprintf(stderr,
                 "FAIL: %d thread configuration(s) diverged from serial\n",
                 failures);
    return 1;
  }
  return 0;
}
