// Reproduces paper Fig. 7: "Performance of FACS and SCC" — percentage of
// accepted calls vs number of requesting connections for the previous FACS
// and the Shadow Cluster Concept baseline.
//
// Paper shape: both near 100% at small N; FACS above SCC while N < ~50;
// SCC's over-reservation makes its curve flat, ending ~70% at N=100 while
// FACS ends ~63%.
#include "bench_common.h"

int main() {
  using namespace facsp;
  using namespace facsp::bench;

  std::cout << "=== Fig. 7 reproduction: FACS vs SCC ===\n";
  const auto scenario = core::paper_scenario();
  std::vector<sim::Series> series;
  const auto fig = run_acceptance_figure(
      "Fig. 7 — Performance of FACS and SCC", scenario,
      {{"FACS", core::make_facs_factory()},
       {"SCC", core::make_scc_factory()}},
      &series);

  const auto& facs = series[0];
  const auto& scc = series[1];
  std::vector<core::ShapeCheck> checks;
  checks.push_back({"both policies accept >85% at N=10", true, ""});
  checks.back().passed = facs.y_at(10) > 85.0 && scc.y_at(10) > 85.0;

  checks.push_back({"FACS at least on par with SCC at N=10", true, ""});
  checks.back().passed = facs.y_at(10) >= scc.y_at(10) - 2.0;

  const auto cross = core::crossover_x(facs, scc);
  checks.push_back(
      {"FACS crosses below SCC in the mid range (paper: ~N=50)", false, ""});
  if (cross) {
    checks.back().passed = *cross >= 20.0 && *cross <= 80.0;
    checks.back().details = "crossover at N=" + std::to_string(*cross);
  } else {
    checks.back().details = "no crossover detected";
  }

  checks.push_back({"SCC above FACS at N=100 (paper: ~70% vs ~63%)", false,
                    ""});
  checks.back().passed = scc.y_at(100) > facs.y_at(100);
  checks.back().details =
      "SCC=" + std::to_string(scc.y_at(100)) +
      "%, FACS=" + std::to_string(facs.y_at(100)) + "%";

  checks.push_back({"SCC's curve is flatter than FACS's", false, ""});
  checks.back().passed =
      (scc.y_at(10) - scc.y_at(100)) < (facs.y_at(10) - facs.y_at(100));

  checks.push_back({"both curves non-increasing with load", false, ""});
  checks.back().passed =
      core::is_non_increasing(facs, 6.0) && core::is_non_increasing(scc, 6.0);

  return finish(fig, "fig7_facs_vs_scc.csv", checks);
}
