// Ablation A2: sensitivity of the headline result to the defuzzification
// method.  Runs the Fig. 10 scenario with FACS-P under centroid, bisector,
// mean-of-maximum and weighted-average defuzzifiers.
#include "bench_common.h"

#include "fuzzy/defuzzifier.h"

int main() {
  using namespace facsp;
  using namespace facsp::bench;

  std::cout << "=== Ablation: defuzzification method (FACS-P) ===\n";
  const auto scenario = core::paper_scenario();
  const auto sweep = core::SweepConfig::paper_grid(replications());

  const fuzzy::DefuzzMethod methods[] = {
      fuzzy::DefuzzMethod::kCentroid,
      fuzzy::DefuzzMethod::kBisector,
      fuzzy::DefuzzMethod::kMeanOfMaximum,
      fuzzy::DefuzzMethod::kWeightedAverage,
  };

  sim::Figure fig("A2 — acceptance vs N per defuzzification method", "N",
                  "percentage of accepted calls");
  std::vector<sim::Series> acc;
  for (auto m : methods) {
    cac::FacsPConfig cfg;
    cfg.defuzz_method = m;
    const std::string label = fuzzy::to_string(m);
    core::Experiment exp(scenario, core::make_facs_p_factory(cfg), label);
    const auto s = exp.run(sweep).acceptance_series();
    auto& dst = fig.add_series(label);
    for (std::size_t i = 0; i < s.size(); ++i)
      dst.add(s.x(i), s.y(i), s.ci(i).value_or(0.0));
    acc.push_back(s);
    std::cerr << "  [" << label << "] done\n";
  }

  std::vector<core::ShapeCheck> checks;
  {
    // Point-wise gaps between centroid and bisector can spike: tiny score
    // differences flip borderline admissions whose held bandwidth then
    // feeds back into later decisions.  The curve-wide mean is the stable
    // comparison.
    core::ShapeCheck c;
    c.description =
        "centroid and bisector agree on average across the sweep";
    double gap = 0.0;
    for (std::size_t i = 0; i < acc[0].size(); ++i)
      gap += std::abs(acc[0].y(i) - acc[1].y_at(acc[0].x(i)));
    gap /= static_cast<double>(acc[0].size());
    c.passed = gap < 10.0;
    c.details = "mean |centroid - bisector| = " + std::to_string(gap) + "%";
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description = "every method keeps the declining-acceptance shape";
    c.passed = true;
    for (const auto& s : acc)
      c.passed = c.passed && core::is_non_increasing(s, 8.0);
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description =
        "mean-of-maximum is the outlier (hard switching at rule borders)";
    double max_gap = 0.0;
    for (double probe : {30.0, 60.0, 90.0})
      max_gap = std::max(max_gap,
                         std::abs(acc[2].y_at(probe) - acc[0].y_at(probe)));
    c.passed = true;  // informational
    c.details = "max |MOM - centroid| = " + std::to_string(max_gap) + "%";
    checks.push_back(c);
  }

  return finish(fig, "ablation_defuzz.csv", checks);
}
