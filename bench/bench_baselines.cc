// Extension A3: FACS-P against the classical trunk-reservation baselines —
// complete sharing, guard channel and fractional guard channel — on the
// Fig. 7 scenario.  Reports both the new-call acceptance (the paper's
// metric) and the handoff-dropping probability (the QoS the guards buy).
#include "bench_common.h"

int main() {
  using namespace facsp;
  using namespace facsp::bench;

  std::cout << "=== Extension: FACS-P vs classical baselines ===\n";
  // Background traffic in every cell so handoffs actually contend — the
  // dropping comparison is the point of this bench.
  auto scenario = core::paper_scenario();
  scenario.spatial.kind = workload::SpatialKind::kUniform;
  const auto sweep = core::SweepConfig::paper_grid(replications());

  const std::vector<NamedPolicy> policies = {
      {"FACS-P", core::make_facs_p_factory()},
      {"CS", core::make_complete_sharing_factory()},
      {"GC(8)", core::make_guard_channel_factory(8.0)},
      {"FGC(8)", core::make_fractional_guard_factory(8.0)},
  };

  sim::Figure acc_fig("A3 — acceptance vs N, FACS-P vs classical CAC", "N",
                      "percentage of accepted calls");
  sim::Figure drop_fig("A3b — handoff dropping vs N", "N",
                       "dropping probability (%)");
  std::vector<sim::Series> acc, drops;
  for (const auto& p : policies) {
    core::Experiment exp(scenario, p.factory, p.name);
    const auto result = exp.run(sweep);
    const auto a = result.acceptance_series();
    const auto d = result.dropping_series();
    auto& adst = acc_fig.add_series(p.name);
    for (std::size_t i = 0; i < a.size(); ++i)
      adst.add(a.x(i), a.y(i), a.ci(i).value_or(0.0));
    auto& ddst = drop_fig.add_series(p.name);
    for (std::size_t i = 0; i < d.size(); ++i) ddst.add(d.x(i), d.y(i));
    acc.push_back(a);
    drops.push_back(d);
    std::cerr << "  [" << p.name << "] done\n";
  }

  std::vector<core::ShapeCheck> checks;
  {
    core::ShapeCheck c;
    c.description = "complete sharing accepts the most new calls";
    c.passed = true;
    for (std::size_t i = 0; i < acc.size(); ++i)
      if (policies[i].name != "CS")
        c.passed = c.passed && acc[1].y_at(100) >= acc[i].y_at(100) - 2.0;
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description = "guard channel drops fewer handoffs than CS";
    c.passed = drops[2].y_at(100) <= drops[1].y_at(100) + 1.0;
    c.details = "GC " + std::to_string(drops[2].y_at(100)) + "% vs CS " +
                std::to_string(drops[1].y_at(100)) + "%";
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description = "FGC sits between CS and GC in new-call acceptance";
    const double fgc = acc[3].y_at(100);
    c.passed = fgc <= acc[1].y_at(100) + 2.0 && fgc >= acc[2].y_at(100) - 2.0;
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description =
        "FACS-P trades new-call acceptance for on-going-call protection";
    c.passed = acc[0].y_at(100) <= acc[1].y_at(100) &&
               drops[0].y_at(100) <= drops[1].y_at(100) + 1.0;
    checks.push_back(c);
  }

  acc_fig.print_table(std::cout);
  std::cout << '\n';
  drop_fig.print_table(std::cout);
  std::cout << '\n';
  core::write_csv(acc_fig, "baselines_acceptance.csv");
  core::write_csv(drop_fig, "baselines_dropping.csv");
  core::print_shape_checks(std::cout, checks);
  return 0;
}
