// Socket front-end benchmarks (google-benchmark) plus the steady-state
// allocation audit for the socket serve path.
//
// BM_FrameDecodeRequest / BM_FrameEncodeResponse price the wire format
// itself — a handful of nanoseconds per frame, no allocation.
// BM_NetLoopbackDecide is the end-to-end number: a real client streaming
// length-prefixed frames over loopback TCP into the event loop, through
// AdmissionService batching into decide_batch, responses framed back.
//
// The allocation audit replaces global operator new with a counting
// version (same idiom as bench_server.cc, and the reason this lives in
// its own binary).  After a warm-up pass that absorbs every one-time cost
// (connection slot, fd tables, poller event arrays, response routing map),
// it streams the same synthetic load for N and then 2N simulated seconds
// over a persistent connection and requires IDENTICAL allocation counts:
// the extra N seconds of accept/read/decode/batch/decide/encode/write
// must not allocate a single time on either side of the socket.
#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::size_t> g_alloc_count{0};

}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include <benchmark/benchmark.h>
#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "workload/catalog.h"

namespace {

using namespace facsp;

serve::ServerConfig serve_config() {
  serve::ServerConfig config;
  config.scenario = workload::catalog_scenario("paper-grid");
  config.scenario.seed = 42;
  config.shards = 4;
  config.threads = 1;
  return config;
}

serve::StampedRequest sample_request(double t, std::uint64_t id) {
  serve::StampedRequest r;
  r.req.now = t;
  r.req.id = id;
  r.req.bandwidth = 1.0;
  r.req.speed_kmh = 40.0;
  r.req.angle_deg = 12.0;
  r.req.distance_m = 250.0;
  r.req.mobile.position.x = 50.0;
  r.req.mobile.position.y = 80.0;
  r.req.mobile.heading_deg = 90.0;
  r.req.mobile.speed_kmh = 40.0;
  r.holding_s = 90.0;
  return r;
}

void BM_FrameDecodeRequest(benchmark::State& state) {
  std::uint8_t buf[net::kRequestPayloadSize];
  net::encode_request(sample_request(1.5, 7), buf);
  serve::StampedRequest out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::decode_request(buf, sizeof buf, out));
    benchmark::DoNotOptimize(out.req.id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FrameDecodeRequest);

void BM_FrameEncodeResponse(benchmark::State& state) {
  cac::AdmissionDecision d;
  d.admitted = true;
  d.score = 0.42;
  d.verdict = static_cast<cac::Verdict>(4);
  std::uint8_t buf[net::kResponsePayloadSize];
  for (auto _ : state) {
    net::encode_response(99, d, buf);
    benchmark::DoNotOptimize(buf[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FrameEncodeResponse);

/// Encode `count` requests at `rate` req/s starting at `t0` into a frame
/// stream, FLUSH-terminated.
std::vector<std::uint8_t> encode_stream(double t0, std::size_t count,
                                        double rate) {
  std::vector<std::uint8_t> out(count * net::kRequestFrameSize +
                                net::kFlushFrameSize);
  std::uint8_t* w = out.data();
  for (std::size_t i = 0; i < count; ++i) {
    net::encode_header({static_cast<std::uint32_t>(net::kRequestPayloadSize),
                        net::FrameType::kRequest, net::kProtocolVersion, 0},
                       w);
    net::encode_request(
        sample_request(t0 + static_cast<double>(i) / rate, i + 1),
        w + net::kHeaderSize);
    w += net::kRequestFrameSize;
  }
  net::encode_header({0, net::FrameType::kFlush, net::kProtocolVersion, 0}, w);
  return out;
}

/// Write the stream while draining responses (fixed stack buffers, no
/// allocation), until the FLUSH echo.  Returns the response count.
///
/// The fd must be non-blocking and the loop poll-driven: a blocking
/// client that alternates write/read deadlocks whenever a chunk ends
/// before any batch closes (the server rightly has nothing to say yet,
/// and its read timeout would eventually drop the stalled connection).
std::size_t pump(int fd, const std::uint8_t* out, std::size_t out_len) {
  std::size_t sent = 0;
  std::uint8_t in[64 * 1024];
  std::size_t in_len = 0;
  std::size_t responses = 0;
  bool flushed = false;
  while (!flushed) {
    pollfd p{fd, POLLIN, 0};
    if (sent < out_len) p.events |= POLLOUT;
    if (::poll(&p, 1, 30000) <= 0) {
      std::fprintf(stderr, "pump: poll stalled: %s\n", std::strerror(errno));
      std::exit(1);
    }
    if ((p.revents & POLLOUT) != 0 && sent < out_len) {
      const std::size_t chunk = std::min<std::size_t>(out_len - sent, 65536);
      const ssize_t w = ::write(fd, out + sent, chunk);
      if (w > 0) {
        sent += static_cast<std::size_t>(w);
      } else if (w < 0 && errno != EINTR && errno != EAGAIN) {
        std::fprintf(stderr, "pump: write failed: %s\n", std::strerror(errno));
        std::exit(1);
      }
    }
    const ssize_t r = ::read(fd, in + in_len, sizeof in - in_len);
    if (r > 0) {
      in_len += static_cast<std::size_t>(r);
    } else if (r == 0) {
      std::fprintf(stderr, "pump: server closed the connection mid-stream\n");
      std::exit(1);
    } else if (errno != EINTR && errno != EAGAIN) {
      std::fprintf(stderr, "pump: read failed: %s\n", std::strerror(errno));
      std::exit(1);
    }
    std::size_t off = 0;
    while (in_len - off >= net::kHeaderSize) {
      const net::FrameHeader h = net::decode_header(in + off);
      if (in_len - off < net::kHeaderSize + h.len) break;
      if (h.type == net::FrameType::kError) {
        net::ErrorFrame e;
        net::decode_error(in + off + net::kHeaderSize, h.len, e);
        std::fprintf(stderr, "pump: server error frame: %s (detail %u)\n",
                     net::wire_error_name(e.code), e.detail);
        std::exit(1);
      }
      if (h.type == net::FrameType::kResponse) ++responses;
      if (h.type == net::FrameType::kFlush) flushed = true;
      off += net::kHeaderSize + h.len;
    }
    if (off > 0) {
      std::memmove(in, in + off, in_len - off);
      in_len -= off;
    }
  }
  return responses;
}

class LoopbackServer {
 public:
  LoopbackServer() : server_(make_server()) {
    thread_ = std::thread([this] { server_->run(); });
  }
  ~LoopbackServer() {
    server_->request_stop();
    thread_.join();
    delete server_;
  }
  std::uint16_t port() const { return server_->admission_port(); }

 private:
  static net::NetServer* make_server() {
    net::NetConfig cfg;
    cfg.port = 0;
    cfg.flush_idle_s = 3600.0;  // only FLUSH frames close tail batches
    cfg.pending_cap = 1 << 16;
    return new net::NetServer(serve_config(), cfg);
  }
  net::NetServer* server_;
  std::thread thread_;
};

void BM_NetLoopbackDecide(benchmark::State& state) {
  LoopbackServer server;
  net::UniqueFd fd = net::connect_tcp("127.0.0.1", server.port());
  net::set_nonblocking(fd.get());
  constexpr std::size_t kBatch = 4096;
  constexpr double kRate = 50000.0;
  std::vector<std::uint8_t> stream = encode_stream(0.0, kBatch, kRate);
  double base = kBatch / kRate + 1.0;
  std::int64_t decisions = 0;
  for (auto _ : state) {
    // Re-stamp arrival times so simulated time keeps advancing across
    // iterations (the server enforces nondecreasing arrivals).
    std::uint8_t* w = stream.data();
    for (std::size_t i = 0; i < kBatch; ++i) {
      const double t = base + static_cast<double>(i) / kRate;
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(t);
      for (int b = 0; b < 8; ++b)
        w[net::kHeaderSize + b] = static_cast<std::uint8_t>(bits >> (8 * b));
      w += net::kRequestFrameSize;
    }
    base += kBatch / kRate + 1.0;
    decisions +=
        static_cast<std::int64_t>(pump(fd.get(), stream.data(), stream.size()));
  }
  state.SetItemsProcessed(decisions);
}
BENCHMARK(BM_NetLoopbackDecide)->Unit(benchmark::kMillisecond);

// --- steady-state allocation audit -----------------------------------------

/// Stream `seconds` of synthetic load over `fd` starting at simulated time
/// `t0`; the stream is pre-encoded OUTSIDE the counted window.  Returns
/// allocations made (both threads) while the wire was active.
std::size_t stream_allocs(int fd, double t0, std::int64_t seconds) {
  constexpr double kRate = 2000.0;
  const std::size_t count =
      static_cast<std::size_t>(seconds) * static_cast<std::size_t>(kRate);
  const std::vector<std::uint8_t> stream = encode_stream(t0, count, kRate);
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  const std::size_t responses = pump(fd, stream.data(), stream.size());
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  if (responses != count) {
    std::fprintf(stderr, "audit: %zu responses for %zu requests\n", responses,
                 count);
    std::exit(1);
  }
  return after - before;
}

int audit() {
  LoopbackServer server;
  net::UniqueFd fd = net::connect_tcp("127.0.0.1", server.port());
  net::set_nonblocking(fd.get());
  // Warm-up absorbs every one-time cost: connection slot and buffers, fd
  // tables, poller arrays, response-routing map, registry entries.
  (void)stream_allocs(fd.get(), 0.0, 2);
  const std::size_t short_run = stream_allocs(fd.get(), 10.0, 4);
  const std::size_t long_run = stream_allocs(fd.get(), 20.0, 8);
  if (long_run != short_run) {
    std::fprintf(stderr,
                 "socket steady-state allocation audit FAILED: 4 s streamed "
                 "%zu allocations, 8 s streamed %zu — the extra seconds "
                 "allocated %zu times\n",
                 short_run, long_run, long_run - short_run);
    return 1;
  }
  // stderr so --benchmark_format=json output stays parseable.
  std::fprintf(
      stderr,
      "socket steady-state allocation audit passed: %zu allocations for 4 s "
      "and for 8 s of wire traffic (extra seconds allocated nothing)\n",
      short_run);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A server-side close between our write and read must surface as EPIPE,
  // not kill the process.
  std::signal(SIGPIPE, SIG_IGN);
  if (const int rc = audit(); rc != 0) return rc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
