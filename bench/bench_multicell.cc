// Multi-cell engine bench: sharded-simulation throughput (cells/s, events/s)
// with a built-in bit-identity check across engine thread counts, plus the
// batched-vs-scalar admission path (decide_batch against a decide() loop on
// realistic inter-cell handoff batches) with a steady-state allocation
// audit of the batch path — the same counting-operator-new harness as
// bench_workload / tests/fuzzy/test_zero_alloc.cc.
//
// Committed numbers live in BENCH_multicell.json.  Overrides:
//   FACSP_BENCH_REPS   replications per engine timing loop (default 8)
//   FACSP_BENCH_JSON   also write the json line to this path (CI feeds it
//                      to tools/check_bench_regression.py --rate)
#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::size_t> g_alloc_count{0};

}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cac/policy.h"
#include "core/config_io.h"
#include "core/multicell.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/rng.h"
#include "workload/catalog.h"

using namespace facsp;

namespace {

int reps() {
  if (const char* env = std::getenv("FACSP_BENCH_REPS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct EngineNumbers {
  double runs_s = 0.0;
  double cells_s = 0.0;
  double events_s = 0.0;
  std::uint64_t handoffs = 0;
  std::uint64_t accepted = 0;
};

EngineNumbers time_engine(const core::ScenarioConfig& scen, int n, int k_reps) {
  std::uint64_t events = 0, handoffs = 0, accepted = 0;
  const double t0 = now_s();
  for (int r = 0; r < k_reps; ++r) {
    core::MultiCellEngine engine(scen, core::make_facs_p_factory(),
                                 static_cast<std::uint64_t>(r));
    const core::MultiCellResult result = engine.run(n);
    events += result.aggregate.events;
    handoffs += result.aggregate.metrics.handoff_attempts();
    accepted += result.aggregate.metrics.accepted_new();
  }
  const double secs = now_s() - t0;
  EngineNumbers out;
  out.runs_s = k_reps / secs;
  out.cells_s = k_reps * static_cast<double>(scen.multicell.cells) / secs;
  out.events_s = static_cast<double>(events) / secs;
  out.handoffs = handoffs;
  out.accepted = accepted;
  return out;
}

/// Realistic inter-cell handoff batch: the request mix the engine's drain
/// loop presents to decide_batch.
std::vector<cac::AdmissionRequest> make_batch(std::size_t count) {
  sim::RandomStream rng(7);
  std::vector<cac::AdmissionRequest> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    cac::AdmissionRequest req;
    req.id = 1 + i;
    const auto svc = static_cast<cellular::ServiceClass>(rng.uniform_int(0, 2));
    req.service = svc;
    req.bandwidth = cellular::service_bandwidth(svc);
    req.kind = cellular::RequestKind::kHandoff;
    req.speed_kmh = rng.uniform(0.0, 120.0);
    req.angle_deg = rng.uniform(-60.0, 60.0);
    req.distance_m = 400.0;
    req.mobile.position = {-400.0, 0.0};
    req.mobile.speed_kmh = req.speed_kmh;
    req.mobile.heading_deg = req.angle_deg;
    req.now = 100.0;
    reqs.push_back(req);
  }
  return reqs;
}

}  // namespace

int main() {
  const int kReps = reps();
  int failures = 0;
  std::string json = "{";

  // --- sharded engine throughput ------------------------------------------
  std::printf("=== Multi-cell engine: handover-storm, N=100/cell ===\n\n");
  std::printf("  %-8s %10s %12s %14s\n", "cells", "runs/s", "cells/s",
              "events/s");
  for (const int cells : {1, 7, 19}) {
    core::ScenarioConfig scen =
        workload::catalog_scenario("multicell-handover-storm");
    core::apply_scenario_key(scen, "sim.cells", std::to_string(cells));
    scen.validate();
    const EngineNumbers n = time_engine(scen, 100, kReps);
    std::printf("  %-8d %10.2f %12.2f %14.0f\n", cells, n.runs_s, n.cells_s,
                n.events_s);
    json += (json.size() > 1 ? ", " : "") + std::string("\"cells") +
            std::to_string(cells) + "_runs_s\": " + std::to_string(n.runs_s) +
            ", \"cells" + std::to_string(cells) +
            "_events_s\": " + std::to_string(n.events_s);
  }

  // --- sparse grids: event-driven scheduling ------------------------------
  // City-scale grids with one generating neighbourhood: epoch cost must
  // track ACTIVE shards, not grid size.  events/s here is dominated by how
  // cheaply the engine skips the quiet 99%+ of the grid.
  std::printf("\n=== Sparse grids: workload_cells=1, N=60 ===\n\n");
  std::printf("  %-8s %10s %14s %16s %14s\n", "cells", "runs/s", "events/s",
              "sessions-peak", "drains/epoch");
  for (const int cells : {100, 1000}) {
    core::ScenarioConfig scen =
        workload::catalog_scenario("multicell-handover-storm");
    core::apply_scenario_key(scen, "sim.cells", std::to_string(cells));
    core::apply_scenario_key(scen, "sim.workload_cells", "1");
    scen.validate();
    const int sparse_reps = cells >= 1000 ? std::max(1, kReps / 4) : kReps;
    const EngineNumbers n = time_engine(scen, 60, sparse_reps);

    // One extra observed run for the schedule shape: peak resident sessions
    // and drained shards per barrier (the bulk-synchronous engine would
    // drain `cells` every epoch).
    std::uint64_t sessions_peak = 0, epochs = 0, drains = 0;
    {
      core::MultiCellEngine engine(scen, core::make_facs_p_factory(), 0);
      engine.set_epoch_observer(
          [&](const core::MultiCellEngine::EpochStats& es) {
            ++epochs;
            if (es.active_sessions > sessions_peak)
              sessions_peak = es.active_sessions;
          });
      const std::uint64_t drained0 =
          obs::Registry::instance().counter("engine.shards_drained").value();
      obs::set_metrics_enabled(true);
      engine.run(60);
      obs::set_metrics_enabled(false);
      drains = obs::Registry::instance().counter("engine.shards_drained")
                   .value() -
               drained0;
    }
    const double drains_per_epoch =
        epochs == 0 ? 0.0
                    : static_cast<double>(drains) / static_cast<double>(epochs);
    std::printf("  %-8d %10.2f %14.0f %16llu %14.1f\n", cells, n.runs_s,
                n.events_s, static_cast<unsigned long long>(sessions_peak),
                drains_per_epoch);
    json += ", \"sparse" + std::to_string(cells) +
            "_events_s\": " + std::to_string(n.events_s) + ", \"sparse" +
            std::to_string(cells) +
            "_sessions_peak\": " + std::to_string(sessions_peak);

    // The engine must not sweep the grid: drained shards stay well under
    // 1/10th of the bulk-synchronous cells-per-epoch cost.
    if (drains * 10 > static_cast<std::uint64_t>(cells) * epochs) {
      std::fprintf(stderr,
                   "FAIL: sparse %d-cell grid drained %llu shards over %llu "
                   "epochs (expected <= cells*epochs/10)\n",
                   cells, static_cast<unsigned long long>(drains),
                   static_cast<unsigned long long>(epochs));
      ++failures;
    }
  }

  // --- observer path: steady-state allocation audit -----------------------
  // The epoch observer must not buy per-epoch allocations: EpochStats and
  // its routes buffer persist across barriers, so an observed run may
  // allocate only the one-time buffer growth (geometric, <= ~64 calls)
  // over an unobserved but otherwise identical run.
  {
    core::ScenarioConfig scen =
        workload::catalog_scenario("multicell-handover-storm");
    const auto run_once = [&scen](bool observed) {
      core::MultiCellEngine engine(scen, core::make_facs_p_factory(), 0);
      std::uint64_t sink = 0;
      if (observed)
        engine.set_epoch_observer(
            [&sink](const core::MultiCellEngine::EpochStats& es) {
              sink += es.departures + es.routes.size();
            });
      const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
      engine.run(100);
      return g_alloc_count.load(std::memory_order_relaxed) - before;
    };
    run_once(false);  // warm catalog/config one-time state
    const std::size_t plain = run_once(false);
    const std::size_t observed = run_once(true);
    const std::size_t extra = observed > plain ? observed - plain : 0;
    std::printf(
        "\n  observer-path allocations: %zu observed vs %zu plain "
        "(+%zu, budget 64)\n",
        observed, plain, extra);
    json += ", \"observer_allocs\": " + std::to_string(extra);
    if (extra > 64) {
      std::fprintf(stderr,
                   "FAIL: epoch observer added %zu allocations over an "
                   "unobserved run (expected one-time buffer growth <= 64)\n",
                   extra);
      ++failures;
    }
  }

  // --- bit-identity across engine thread counts ---------------------------
  {
    core::ScenarioConfig scen =
        workload::catalog_scenario("multicell-handover-storm");
    std::vector<core::RunResult> results;
    for (const int threads : {1, 2, 4}) {
      scen.multicell.threads = threads;
      core::MultiCellEngine engine(scen, core::make_facs_p_factory(), 0);
      results.push_back(engine.run(100).aggregate);
    }
    bool identical = true;
    for (std::size_t i = 1; i < results.size(); ++i) {
      identical = identical &&
                  results[i].metrics.accepted_new() ==
                      results[0].metrics.accepted_new() &&
                  results[i].metrics.dropped() == results[0].metrics.dropped() &&
                  results[i].metrics.completed() ==
                      results[0].metrics.completed() &&
                  results[i].metrics.handoff_attempts() ==
                      results[0].metrics.handoff_attempts() &&
                  results[i].events == results[0].events &&
                  results[i].center_utilization ==
                      results[0].center_utilization;
    }
    std::printf("\n  thread bit-identity (1/2/4 workers): %s\n",
                identical ? "OK" : "FAIL");
    if (!identical) ++failures;
  }

  // --- batched vs scalar admission ----------------------------------------
  std::printf("\n=== Admission path: decide() loop vs decide_batch ===\n\n");
  {
    constexpr std::size_t kBatch = 64;
    constexpr int kBatches = 2000;
    const cellular::CellularNetwork network(0, 500.0, 40.0);
    sim::RngFactory rng(42);
    const auto policy = core::make_facs_p_factory()(network, rng);
    const auto reqs = make_batch(kBatch);
    std::vector<cac::AdmissionDecision> out(kBatch);

    // The audit runs with metrics + tracing enabled: the batch path's
    // instrumentation (fuzzy.decide_batch span, fuzzy.decisions counter)
    // must also be allocation-free once warm.  Registration and the
    // thread's trace ring allocate during the warm-up calls below, before
    // the counted region.
    obs::set_metrics_enabled(true);
    obs::Tracer::start();

    // Warm both paths (sizes every internal scratch buffer).
    for (std::size_t i = 0; i < kBatch; ++i)
      out[i] = policy->decide(reqs[i], network.center());
    policy->decide_batch(reqs, network.center(), out);

    double t0 = now_s();
    for (int b = 0; b < kBatches; ++b)
      for (std::size_t i = 0; i < kBatch; ++i)
        out[i] = policy->decide(reqs[i], network.center());
    const double scalar_s = now_s() - t0;

    const std::size_t alloc_before =
        g_alloc_count.load(std::memory_order_relaxed);
    t0 = now_s();
    for (int b = 0; b < kBatches; ++b)
      policy->decide_batch(reqs, network.center(), out);
    const double batch_s = now_s() - t0;
    const double allocs_per_batch =
        static_cast<double>(g_alloc_count.load(std::memory_order_relaxed) -
                            alloc_before) /
        kBatches;
    const std::uint64_t traced = obs::Tracer::recorded_events();
    obs::Tracer::clear();
    obs::set_metrics_enabled(false);

    const double scalar_mdec = kBatch * kBatches / scalar_s / 1e6;
    const double batch_mdec = kBatch * kBatches / batch_s / 1e6;
    std::printf("  scalar decide():   %8.3f Mdecisions/s\n", scalar_mdec);
    std::printf("  decide_batch():    %8.3f Mdecisions/s  (%.2fx)\n",
                batch_mdec, batch_mdec / scalar_mdec);
    std::printf(
        "  allocs per steady-state batch: %.2f  (metrics + tracing on, "
        "%llu spans recorded)\n",
        allocs_per_batch, static_cast<unsigned long long>(traced));
    json += ", \"scalar_mdec_s\": " + std::to_string(scalar_mdec) +
            ", \"batch_mdec_s\": " + std::to_string(batch_mdec) +
            ", \"batch_allocs\": " + std::to_string(allocs_per_batch);

    // The drain loop's admission path must stay allocation-free once warm.
    if (allocs_per_batch != 0.0) {
      std::fprintf(stderr,
                   "FAIL: decide_batch allocated %.2f times per steady-state "
                   "batch (expected 0)\n",
                   allocs_per_batch);
      ++failures;
    }
    // And the audit must not have been vacuous: with tracing enabled every
    // counted decide_batch call records a span.
    if (traced < static_cast<std::uint64_t>(kBatches)) {
      std::fprintf(stderr,
                   "FAIL: expected >= %d traced spans during the audit, "
                   "saw %llu\n",
                   kBatches, static_cast<unsigned long long>(traced));
      ++failures;
    }
  }

  json += "}";
  std::printf("\n  json: %s\n", json.c_str());
  if (const char* path = std::getenv("FACSP_BENCH_JSON")) {
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "FAIL: cannot write FACSP_BENCH_JSON=%s\n", path);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
