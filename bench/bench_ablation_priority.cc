// Ablation A1: where does the Fig. 10 crossover come from?
//
// Sweeps FACS-P's real-time priority weight (1.0 = no priority, i.e. the
// differentiated counters degenerate to plain occupancy) and reports the
// acceptance curve and the handoff-dropping rate.  The paper's crossover
// against FACS should appear as the weight grows and its location should
// move left (earlier) with stronger weighting.
#include "bench_common.h"

int main() {
  using namespace facsp;
  using namespace facsp::bench;

  std::cout << "=== Ablation: FACS-P real-time priority weight ===\n";
  const auto scenario = core::paper_scenario();
  const double weights[] = {1.0, 1.3, 1.6, 2.0};
  const auto sweep = core::SweepConfig::paper_grid(replications());

  sim::Figure fig("A1 — acceptance vs N for priority weights (FACS-P)", "N",
                  "percentage of accepted calls");
  sim::Figure drops("A1b — handoff dropping vs N for priority weights", "N",
                    "dropping probability (%)");
  std::vector<sim::Series> acc;
  const auto facs =
      core::Experiment(scenario, core::make_facs_factory(), "FACS")
          .run(sweep)
          .acceptance_series();

  for (double w : weights) {
    cac::FacsPConfig cfg;
    cfg.weights.real_time = w;
    const std::string label = "w_rt=" + std::to_string(w).substr(0, 3);
    core::Experiment exp(scenario, core::make_facs_p_factory(cfg), label);
    const auto result = exp.run(sweep);
    const auto s = result.acceptance_series();
    const auto d = result.dropping_series();
    auto& dst = fig.add_series(label);
    for (std::size_t i = 0; i < s.size(); ++i)
      dst.add(s.x(i), s.y(i), s.ci(i).value_or(0.0));
    auto& ddst = drops.add_series(label);
    for (std::size_t i = 0; i < d.size(); ++i) ddst.add(d.x(i), d.y(i));
    acc.push_back(s);
    std::cerr << "  [" << label << "] done\n";
  }

  std::vector<core::ShapeCheck> checks;
  {
    core::ShapeCheck c;
    c.description =
        "stronger priority weight lowers heavy-load acceptance (N=100)";
    c.passed = acc.front().y_at(100) >= acc.back().y_at(100) - 1.0;
    c.details = "w=1.0: " + std::to_string(acc.front().y_at(100)) +
                "%, w=2.0: " + std::to_string(acc.back().y_at(100)) + "%";
    checks.push_back(c);
  }
  {
    core::ShapeCheck c;
    c.description = "light load (N=10) barely affected by the weight";
    c.passed =
        std::abs(acc.front().y_at(10) - acc[2].y_at(10)) < 10.0;
    checks.push_back(c);
  }
  {
    const auto cross_default = core::crossover_x(acc[2], facs);
    core::ShapeCheck c;
    c.description =
        "default weight (1.6) reproduces the Fig. 10 crossover vs FACS";
    c.passed = cross_default.has_value() && *cross_default <= 50.0;
    if (cross_default)
      c.details = "crossover at N=" + std::to_string(*cross_default);
    checks.push_back(c);
  }

  fig.print_table(std::cout);
  std::cout << '\n';
  drops.print_table(std::cout);
  std::cout << '\n';
  core::write_csv(fig, "ablation_priority.csv");
  core::print_shape_checks(std::cout, checks);
  return 0;
}
