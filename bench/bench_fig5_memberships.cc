// Reproduces paper Fig. 5: the membership functions of FLC1 (Sp, An, Sr,
// Cv), printed as sampled curves and ASCII sparklines.
#include <cstdio>
#include <iostream>
#include <string>

#include "cac/facs_flc.h"

namespace {

void dump_variable(const facsp::fuzzy::LinguisticVariable& v, int samples) {
  std::printf("-- %s over [%g, %g] --\n", v.name().c_str(), v.universe_lo(),
              v.universe_hi());
  // Header row of sampled x values.
  std::printf("%-6s", "x:");
  for (int i = 0; i < samples; ++i) {
    const double x = v.universe_lo() +
                     (v.universe_hi() - v.universe_lo()) * i / (samples - 1);
    std::printf("%6.0f", x);
  }
  std::printf("\n");
  for (std::size_t t = 0; t < v.term_count(); ++t) {
    std::printf("%-6s", v.term(t).name.c_str());
    for (int i = 0; i < samples; ++i) {
      const double x =
          v.universe_lo() +
          (v.universe_hi() - v.universe_lo()) * i / (samples - 1);
      std::printf("%6.2f", v.grade(t, x));
    }
    // Sparkline for a quick visual of the shape.
    std::printf("   ");
    static const char* kLevels = " .:-=+*#";
    for (int i = 0; i < 48; ++i) {
      const double x = v.universe_lo() +
                       (v.universe_hi() - v.universe_lo()) * i / 47.0;
      const int level =
          static_cast<int>(v.grade(t, x) * 7.0 + 0.5);
      std::printf("%c", kLevels[level]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace facsp::cac;
  std::cout << "=== Fig. 5 reproduction: FLC1 membership functions ===\n\n";
  dump_variable(make_speed_variable(), 9);             // (a) Sp
  dump_variable(make_angle_variable(), 9);             // (b) An
  dump_variable(make_service_request_variable(), 11);  // (c) Sr
  dump_variable(make_correction_output_variable(), 9); // (d) Cv
  std::cout << "(breakpoints match the tick marks of paper Fig. 5: Sp "
               "30/60/120, An multiples of 45, Sr 5/10, Cv uniform over "
               "[0,1])\n";
  return 0;
}
