// Quickstart: build the paper's FACS-P controller, ask it to admit a few
// calls, and peek inside the two-stage fuzzy pipeline.
//
//   $ ./quickstart
//
// Covers the three things every user of the library needs:
//   1. constructing FacsPPolicy (and what its knobs mean),
//   2. forming an AdmissionRequest and reading the AdmissionDecision,
//   3. tracing which fuzzy rules fired via FuzzyController::explain().
#include <cstdio>
#include <iostream>

#include "cac/facs_p.h"
#include "cellular/basestation.h"

using namespace facsp;

namespace {

cac::AdmissionRequest make_request(cellular::ConnectionId id,
                                   cellular::ServiceClass service,
                                   double speed_kmh, double angle_deg) {
  cac::AdmissionRequest req;
  req.id = id;
  req.service = service;
  req.bandwidth = cellular::service_bandwidth(service);
  req.kind = cellular::RequestKind::kNew;
  req.speed_kmh = speed_kmh;
  req.angle_deg = angle_deg;  // 0 = heading straight at the base station
  return req;
}

void decide_and_report(cac::FacsPPolicy& policy, cellular::BaseStation& bs,
                       const cac::AdmissionRequest& req) {
  const auto decision = policy.decide(req, bs);
  std::printf(
      "  %-6s %5.1f km/h  angle %6.1f  ->  score %+5.2f  [%s]  %s\n",
      std::string(cellular::service_name(req.service)).c_str(),
      req.speed_kmh, req.angle_deg, decision.score,
      std::string(to_string(decision.verdict)).c_str(),
      decision.admitted ? "ADMIT" : "reject");
  if (decision.admitted) {
    cellular::Connection conn;
    conn.id = req.id;
    conn.service = req.service;
    conn.bandwidth = req.bandwidth;
    bs.allocate(conn, 0.0);
    policy.on_admitted(req, bs);
  }
}

}  // namespace

int main() {
  std::cout << "FACS-P quickstart\n=================\n\n";

  // One 40-BU cell (the paper's Sec. 4 configuration) and the proposed
  // controller with its default priority weights (real-time ongoing load
  // counts 1.6x, handoff-continuing calls an extra 1.2x).
  cellular::BaseStation bs(/*id=*/0, cellular::HexCoord{0, 0},
                           cellular::Point{0.0, 0.0}, /*capacity=*/40.0);
  cac::FacsPPolicy policy;  // default FacsPConfig

  std::cout << "Empty cell — everything reasonable gets in:\n";
  decide_and_report(policy, bs, make_request(1, cellular::ServiceClass::kVideo,
                                             80.0, 5.0));
  decide_and_report(policy, bs, make_request(2, cellular::ServiceClass::kVoice,
                                             50.0, -30.0));
  decide_and_report(policy, bs, make_request(3, cellular::ServiceClass::kText,
                                             3.0, 120.0));

  std::cout << "\nCell now holds " << bs.used() << "/" << bs.capacity()
            << " BU (RTC=" << policy.counters(bs.id()).rt_bandwidth()
            << " BU, NRTC=" << policy.counters(bs.id()).nrt_bandwidth()
            << " BU)\n\n";

  std::cout << "Load up with more real-time traffic...\n";
  decide_and_report(policy, bs, make_request(4, cellular::ServiceClass::kVideo,
                                             70.0, 0.0));
  decide_and_report(policy, bs, make_request(5, cellular::ServiceClass::kVoice,
                                             60.0, 10.0));

  std::cout << "\nNow the cell is busy (" << bs.used() << "/"
            << bs.capacity() << " BU) and the priority of on-going "
            << "connections kicks in:\n";
  decide_and_report(policy, bs, make_request(6, cellular::ServiceClass::kVideo,
                                             90.0, 60.0));
  decide_and_report(policy, bs, make_request(7, cellular::ServiceClass::kVideo,
                                             90.0, 0.0));
  decide_and_report(policy, bs, make_request(8, cellular::ServiceClass::kText,
                                             20.0, 0.0));

  // Peek inside FLC1 for the straight fast user vs the oblique one.
  std::cout << "\nWhy? Trace FLC1 for a fast user heading straight in:\n";
  const auto ex = policy.flc1().explain(std::vector<double>{90.0, 0.0, 10.0});
  for (std::size_t i = 0; i < ex.fired.size() && i < 4; ++i)
    std::printf("  %.2f  %s\n", ex.fired[i].strength,
                ex.rule_text[i].c_str());
  std::printf("  => correction value Cv = %.2f (1.0 is best)\n", ex.crisp);

  std::cout << "\nDone.  See examples/rule_explorer.cpp to play with the "
               "rule bases interactively.\n";
  return 0;
}
