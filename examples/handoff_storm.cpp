// Handoff storm: a fleet of fast vehicles sweeps across a loaded 19-cell
// network, generating continuous handoff pressure.  Measures how each CAC
// policy protects on-going connections (dropping probability, completion
// ratio) and what that protection costs in new-call acceptance.
//
//   $ ./handoff_storm [N] [replications]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"
#include "core/paper.h"

using namespace facsp;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 50;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 8;

  std::cout << "Handoff storm — " << n
            << " fast connections per cell, 19 cells\n"
            << "==================================================\n\n";

  auto scenario = core::paper_scenario();
  scenario.rings = 2;
  scenario.spatial.kind = workload::SpatialKind::kUniform;
  scenario.traffic.fixed_speed_kmh = 100.0;  // everyone is on the move
  scenario.traffic.mean_holding_s = 360.0;   // long calls -> many handoffs

  struct Candidate {
    const char* label;
    core::PolicyFactory factory;
  };
  const Candidate candidates[] = {
      {"FACS-P", core::make_facs_p_factory()},
      {"FACS", core::make_facs_factory()},
      {"guard channel (8 BU)", core::make_guard_channel_factory(8.0)},
      {"complete sharing", core::make_complete_sharing_factory()},
  };

  std::printf("%-22s %9s %11s %9s %11s\n", "policy", "accept%",
              "handoffs/call", "drop%", "completed%");
  for (const auto& cand : candidates) {
    core::Experiment exp(scenario, cand.factory, cand.label);
    sim::SummaryStats accept, handoffs_per_call, drop, completed;
    for (int rep = 0; rep < reps; ++rep) {
      const auto run = exp.run_single(n, rep);
      accept.add(run.metrics.acceptance_percent());
      if (run.metrics.accepted_new() > 0)
        handoffs_per_call.add(
            static_cast<double>(run.metrics.handoff_attempts()) /
            static_cast<double>(run.metrics.accepted_new()));
      drop.add(100.0 * run.metrics.dropping_probability());
      completed.add(100.0 * run.metrics.completion_ratio());
    }
    std::printf("%-22s %8.1f%% %11.2f %8.2f%% %10.1f%%\n", cand.label,
                accept.mean(), handoffs_per_call.mean(), drop.mean(),
                completed.mean());
  }

  std::cout <<
      "\nReading: the storm exposes the paper's core trade-off.  Complete\n"
      "sharing admits greedily and pays in dropped on-going calls; the\n"
      "guard channel and the fuzzy controllers shift refusals to call\n"
      "setup where they hurt least.  FACS-P's RTC/NRTC priority plus its\n"
      "handoff bonus keep the completion ratio of admitted calls at the\n"
      "top of the table — 'keeping the QoS of on-going connections'.\n";
  return 0;
}
