// Scenario runner: drive any experiment from a plain config file or the
// named scenario catalog — no recompilation, shareable setups.
//
//   $ ./scenario_runner --list-scenarios          # catalog names + blurbs
//   $ ./scenario_runner --dump-default            # print a template config
//   $ ./scenario_runner --dump-scenario highway   # any catalog entry as cfg
//   $ ./scenario_runner my.cfg facs-p 60 16       # file, policy, N, reps
//   $ ./scenario_runner my.cfg facs-p 60 16 8     # ... on 8 worker threads
//   $ ./scenario_runner --scenario bursty-onoff facs-p 60 16
//
// Policies: facs-p | facs | scc | gc | fgc | cs
// The thread count (0 = hardware concurrency) only changes wall-clock time:
// the parallel sweep is bit-identical to the serial run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/config_io.h"
#include "core/parallel_sweep.h"
#include "core/paper.h"
#include "workload/catalog.h"

using namespace facsp;

namespace {

core::PolicyFactory policy_by_name(const std::string& name) {
  if (name == "facs-p") return core::make_facs_p_factory();
  if (name == "facs") return core::make_facs_factory();
  if (name == "scc") return core::make_scc_factory();
  if (name == "gc") return core::make_guard_channel_factory(8.0);
  if (name == "fgc") return core::make_fractional_guard_factory(8.0);
  if (name == "cs") return core::make_complete_sharing_factory();
  throw facsp::ConfigError("unknown policy '" + name +
                    "' (facs-p|facs|scc|gc|fgc|cs)");
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --list-scenarios\n"
               "       %s --dump-default\n"
               "       %s --dump-scenario <name>\n"
               "       %s <config-file> <policy> [N=60] [reps=8] [threads=1]\n"
               "       %s --scenario <name> <policy> [N=60] [reps=8] "
               "[threads=1]\n",
               argv0, argv0, argv0, argv0, argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 2 && std::strcmp(argv[1], "--list-scenarios") == 0) {
      for (const auto& entry : workload::ScenarioCatalog::instance().entries())
        std::printf("%-14s %s\n", entry.name.c_str(),
                    entry.description.c_str());
      return 0;
    }
    if (argc == 2 && std::strcmp(argv[1], "--dump-default") == 0) {
      core::save_scenario(core::paper_scenario(), std::cout);
      return 0;
    }
    if (argc == 3 && std::strcmp(argv[1], "--dump-scenario") == 0) {
      core::save_scenario(workload::catalog_scenario(argv[2]), std::cout);
      return 0;
    }
    if (argc < 3) return usage(argv[0]);

    // Either "--scenario <name>" (catalog) or "<config-file>" selects the
    // scenario; the remaining arguments are identical for both forms.
    core::ScenarioConfig scenario;
    std::string scenario_label;
    int arg = 1;
    if (std::strcmp(argv[1], "--scenario") == 0) {
      if (argc < 4 || argc > 7) return usage(argv[0]);
      scenario_label = argv[2];
      scenario = workload::catalog_scenario(scenario_label);
      arg = 3;
    } else {
      if (argc > 6) return usage(argv[0]);
      scenario_label = argv[1];
      scenario = core::load_scenario_file(scenario_label);
      arg = 2;
    }
    const std::string policy_name = argv[arg];
    const int n = argc > arg + 1 ? std::atoi(argv[arg + 1]) : 60;
    const int reps = argc > arg + 2 ? std::atoi(argv[arg + 2]) : 8;
    const int threads = argc > arg + 3 ? std::atoi(argv[arg + 3]) : 1;

    std::cout << "scenario: " << scenario_label << "  policy: " << policy_name
              << "  N=" << n << "  replications=" << reps
              << "  threads=" << (threads == 0 ? "auto" : std::to_string(threads))
              << "\n\n";

    // The parallel runner fans the replications across workers; per-cell
    // metrics come back in replication order, so the per-rep table and the
    // aggregates read exactly as the serial loop would produce them.
    core::SweepConfig sweep;
    sweep.n_values = {n};
    sweep.replications = reps;
    sweep.threads = threads;
    core::ParallelSweepRunner runner(scenario, policy_by_name(policy_name),
                                     policy_name);
    std::vector<core::CellMetrics> cells;
    const core::SweepResult result = runner.run(sweep, &cells);

    for (const core::CellMetrics& cell : cells)
      std::printf("  rep %2llu: accept %5.1f%%  drop %5.2f%%  util %5.1f%%\n",
                  static_cast<unsigned long long>(cell.replication),
                  cell.acceptance_percent, cell.dropping_percent,
                  cell.utilization_percent);

    const core::SweepPoint& point = result.points.front();
    std::printf(
        "\nmean over %d replications:\n"
        "  acceptance  %5.1f%%  ±%.1f (95%% CI)\n"
        "  dropping    %5.2f%%\n"
        "  utilization %5.1f%%\n",
        reps, point.acceptance_percent.mean(),
        point.acceptance_percent.ci_half_width(), point.dropping_percent.mean(),
        point.utilization_percent.mean());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
