// Scenario runner: drive single runs or declarative multi-axis sweeps from
// the command line — no recompilation, shareable setups, structured output.
//
//   $ ./scenario_runner --list-scenarios
//   $ ./scenario_runner --scenario bursty-onoff facs-p 60 16
//   $ ./scenario_runner --scenario paper-grid --policies facs-p,gc \
//         --sweep n=20,40,60 --sweep traffic.arrival.kind=uniform,onoff \
//         --reps 8 --threads 0 --out curves
//
// The second form runs one cell and prints per-replication metrics; the
// third runs a policy x arrival-kind x N sweep and writes curves.csv +
// curves.json (stable schema, see docs/experiments.md).  Thread count is a
// pure throughput knob: results are bit-identical for every value.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/config_io.h"
#include "core/multicell.h"
#include "core/paper.h"
#include "core/report.h"
#include "core/sweep.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/decision_loop.h"
#include "serve/trace.h"
#include "sim/stats.h"
#include "workload/catalog.h"

using namespace facsp;

namespace {

// The one place every flag is documented.  Keep this in sync with
// docs/experiments.md.
int usage(const char* argv0, FILE* dst) {
  std::fprintf(
      dst,
      "usage: %s [options] [<policy> [N [reps [threads]]]]\n"
      "\n"
      "Catalog and config inspection (print and exit):\n"
      "  --help                  this message\n"
      "  --list-scenarios        catalog names + descriptions\n"
      "  --list-policies         policy registry names\n"
      "  --list-keys             every config key a --sweep axis can set\n"
      "  --dump-default          the paper baseline as a config file\n"
      "  --dump-scenario <name>  any catalog entry as a config file\n"
      "\n"
      "Base scenario (default: the paper Sec. 4 baseline):\n"
      "  --scenario <name>       start from a catalog entry\n"
      "  --config <file>         start from a key=value config file\n"
      "  --seed <u64>            override the scenario seed (reproduce any\n"
      "                          sweep cell in isolation)\n"
      "  --cells <int>           override sim.cells: shard the world into\n"
      "                          that many super-grid cells (multi-cell\n"
      "                          engine; single runs print per-cell rows)\n"
      "  --cell-threads <int>    override sim.threads: workers draining\n"
      "                          shards in parallel, 0 = all cores (pure\n"
      "                          throughput knob, bit-identical results)\n"
      "  --workload-cells <int>  override sim.workload_cells: only the\n"
      "                          first k spiral cells offer fresh traffic\n"
      "                          (sparse grids; 0 = every cell generates)\n"
      "\n"
      "Sweep axes (any of these selects sweep mode):\n"
      "  --policies <p1,p2,...>  policy axis (see --list-policies)\n"
      "  --sweep <axis=v1,v2,..> add an axis; repeatable.  axis is 'n',\n"
      "                          'scenario', or any scenario config key,\n"
      "                          e.g. --sweep traffic.arrival.mean_on_s=30,60\n"
      "\n"
      "Execution and output:\n"
      "  --n <int>               request count when no n axis (default 60)\n"
      "  --reps <int>            replications per cell (default 8)\n"
      "  --threads <int>         worker threads, 0 = all cores (default 1);\n"
      "                          in a multi-cell single run this drives the\n"
      "                          shard workers unless --cell-threads is set\n"
      "  --out <prefix>          write <prefix>.csv and <prefix>.json\n"
      "  --trace <file>          record a Chrome trace-event JSON of the\n"
      "                          run (open in Perfetto / chrome://tracing)\n"
      "  --metrics <file>        write a metrics snapshot after the run\n"
      "                          (.csv suffix -> CSV, otherwise JSON)\n"
      "\n"
      "Decision-server traces (see docs/serving.md):\n"
      "  trace record --out <trace.csv> [--scenario ... --seed ...]\n"
      "  trace replay <trace.csv> [--policy ... --threads ...]\n"
      "  ('%s trace --help' for the full flag list)\n"
      "\n"
      "Single-run mode (no axes): positional <policy> [N [reps [threads]]]\n"
      "prints per-replication metrics, as before; the legacy\n"
      "<config-file> <policy> [N [reps [threads]]] form still works (a\n"
      "first positional that is no policy name is a config file).\n"
      "Policies: facs-p | facs-pr | facs | scc | gc | fgc | cs.\n",
      argv0, argv0);
  return dst == stderr ? 2 : 0;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  for (std::string& tok : core::split_fields(s, ','))
    if (!tok.empty()) out.push_back(std::move(tok));
  return out;
}

int parse_int(const std::string& v, const char* what) {
  try {
    std::size_t used = 0;
    const int x = std::stoi(v, &used);
    if (used != v.size()) throw std::invalid_argument("trailing characters");
    return x;
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad ") + what + " '" + v + "'");
  }
}

std::uint64_t parse_u64(const std::string& v, const char* what) {
  // stoull silently accepts "7abc" and wraps "-1"; a seed typo must not
  // silently reproduce the wrong cell.
  try {
    if (v.empty() || v[0] == '-') throw std::invalid_argument("negative");
    std::size_t used = 0;
    const std::uint64_t x = std::stoull(v, &used);
    if (used != v.size()) throw std::invalid_argument("trailing characters");
    return x;
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad ") + what + " '" + v + "'");
  }
}

struct SweepAxisArg {
  std::string axis;
  std::vector<std::string> values;
};

/// --trace / --metrics lifecycle shared by every subcommand: switch the
/// observability layer on before the run, flush the artifacts after.
struct ObsSession {
  std::string trace_path;
  std::string metrics_path;

  void begin() const {
    if (!metrics_path.empty()) obs::set_metrics_enabled(true);
    if (!trace_path.empty()) obs::Tracer::start();
  }
  void finish() const {
    if (!trace_path.empty()) {
      obs::Tracer::stop();
      obs::Tracer::write_json(trace_path);
      std::printf("wrote trace %s (%llu events)\n", trace_path.c_str(),
                  static_cast<unsigned long long>(
                      obs::Tracer::recorded_events()));
    }
    if (!metrics_path.empty()) {
      obs::write_snapshot(metrics_path);
      std::printf("wrote metrics %s\n", metrics_path.c_str());
    }
  }
};

struct Options {
  std::optional<std::string> scenario_name;
  std::optional<std::string> config_file;
  std::optional<std::uint64_t> seed;
  std::optional<int> cells;
  std::optional<int> cell_threads;
  std::optional<int> workload_cells;
  std::vector<std::string> policies;
  std::vector<SweepAxisArg> sweeps;
  std::optional<std::string> out;
  ObsSession obs;
  std::string policy = "facs-p";
  int n = 60;
  int reps = 8;
  /// Empty = not given (sweeps default to 1; multi-cell single runs fall
  /// back to the scenario's sim.threads).
  std::optional<int> threads;
  bool sweep_mode = false;
};

void print_single_run(const core::ResultTable& table,
                      const std::vector<core::CellMetrics>& cells,
                      const Options& opt, const std::string& scenario_label) {
  const int threads = opt.threads.value_or(1);
  std::printf("scenario: %s  policy: %s  N=%d  replications=%d  threads=%s\n\n",
              scenario_label.c_str(), opt.policy.c_str(), opt.n, opt.reps,
              threads == 0 ? "auto" : std::to_string(threads).c_str());
  for (const core::CellMetrics& cell : cells)
    std::printf("  rep %2llu: accept %5.1f%%  drop %5.2f%%  util %5.1f%%\n",
                static_cast<unsigned long long>(cell.replication),
                cell.acceptance_percent, cell.dropping_percent,
                cell.utilization_percent);
  const core::ResultRow& row = table.rows.front();
  std::printf(
      "\nmean over %d replications:\n"
      "  acceptance  %5.1f%%  ±%.1f (95%% CI)\n"
      "  dropping    %5.2f%%\n"
      "  utilization %5.1f%%\n",
      opt.reps, row.acceptance_percent.mean(),
      row.acceptance_percent.ci_half_width(), row.dropping_percent.mean(),
      row.utilization_percent.mean());
}

void print_sweep(const core::ResultTable& table) {
  std::printf("%zu cells x %d replications\n\n", table.rows.size(),
              table.replications);
  for (const std::string& axis : table.axes) std::printf("%-18s ", axis.c_str());
  std::printf("%10s %9s %8s %8s\n", "accept%", "ci", "drop%", "util%");
  for (const core::ResultRow& row : table.rows) {
    for (const std::string& coord : row.coords)
      std::printf("%-18s ", coord.c_str());
    std::printf("%10.2f ±%-8.2f %8.3f %8.2f\n",
                row.acceptance_percent.mean(),
                row.acceptance_percent.ci_half_width(table.ci_level),
                row.dropping_percent.mean(), row.utilization_percent.mean());
  }
}

// Multi-cell single run: per-replication engine runs, per-cell and
// aggregate rows (CBP = new-call blocking, CDP = handoff dropping — the
// paper's split).  --out writes the same rows as a ResultTable with a
// `cell` coordinate column ("cell0".."cellN", "all").
int run_multicell_single(const core::ScenarioConfig& base, const Options& opt,
                         const std::string& scenario_label) {
  // Same input hygiene as the sweep path (which validates via SweepSpec).
  if (opt.reps < 1) throw ConfigError("replications must be >= 1");
  if (opt.n < 1) throw ConfigError("N must be >= 1");
  const core::PolicyFactory factory = core::policy_factory_by_name(opt.policy);
  const int cells = base.multicell.cells;

  struct Row {
    std::string label;
    core::ResultRow result;
    double ho_in = 0.0, ho_out = 0.0, left = 0.0;  // mean per replication
  };
  std::vector<Row> rows(static_cast<std::size_t>(cells) + 1);
  for (int rep = 0; rep < opt.reps; ++rep) {
    core::MultiCellEngine engine(base, factory,
                                 static_cast<std::uint64_t>(rep));
    const core::MultiCellResult result = engine.run(opt.n);
    // The same per-replication derivation + reduction the sweep layer
    // performs (CellMetrics::from_run, CBP = 100 - acceptance), so this
    // table's digits match a --sweep table of the same runs exactly.
    const auto add = [&](Row& row, const core::RunResult& r) {
      const core::CellMetrics m = core::CellMetrics::from_run(
          opt.n, static_cast<std::uint64_t>(rep), r);
      row.result.acceptance_percent.add(m.acceptance_percent);
      row.result.blocking_percent.add(100.0 - m.acceptance_percent);
      row.result.dropping_percent.add(m.dropping_percent);
      row.result.utilization_percent.add(m.utilization_percent);
      row.result.completion_percent.add(m.completion_percent);
    };
    for (int k = 0; k < cells; ++k) {
      Row& row = rows[static_cast<std::size_t>(k)];
      add(row, result.cells[static_cast<std::size_t>(k)].run);
      row.ho_in += static_cast<double>(
          result.cells[static_cast<std::size_t>(k)].handoffs_in);
      row.ho_out += static_cast<double>(
          result.cells[static_cast<std::size_t>(k)].handoffs_out);
      row.left += static_cast<double>(
          result.cells[static_cast<std::size_t>(k)].left_world);
    }
    add(rows.back(), result.aggregate);
  }
  for (int k = 0; k < cells; ++k) {
    rows[static_cast<std::size_t>(k)].label = "cell" + std::to_string(k);
    Row& row = rows[static_cast<std::size_t>(k)];
    row.ho_in /= opt.reps;
    row.ho_out /= opt.reps;
    row.left /= opt.reps;
  }
  rows.back().label = "all";
  for (Row& row : rows) row.result.n = opt.n;

  std::printf(
      "scenario: %s  policy: %s  N=%d/cell  replications=%d  cells=%d  "
      "cell-threads=%s\n\n",
      scenario_label.c_str(), opt.policy.c_str(), opt.n, opt.reps, cells,
      base.multicell.threads == 0
          ? "auto"
          : std::to_string(base.multicell.threads).c_str());
  std::printf("%-8s %9s %8s %8s %8s %8s %8s %8s\n", "cell", "accept%",
              "CBP%", "CDP%", "util%", "ho_in", "ho_out", "left");
  for (const Row& row : rows) {
    std::printf("%-8s %9.2f %8.2f %8.2f %8.2f", row.label.c_str(),
                row.result.acceptance_percent.mean(),
                row.result.blocking_percent.mean(),
                row.result.dropping_percent.mean(),
                row.result.utilization_percent.mean());
    if (row.label == "all")
      std::printf(" %8s %8s %8s\n", "-", "-", "-");
    else
      std::printf(" %8.1f %8.1f %8.1f\n", row.ho_in, row.ho_out, row.left);
  }
  std::printf(
      "\naggregate over %d replications: accept %.2f%% ±%.2f (95%% CI), "
      "CBP %.2f%%, CDP %.2f%%\n",
      opt.reps, rows.back().result.acceptance_percent.mean(),
      rows.back().result.acceptance_percent.ci_half_width(),
      rows.back().result.blocking_percent.mean(),
      rows.back().result.dropping_percent.mean());

  if (opt.out) {
    core::ResultTable table;
    table.axes = {"policy", "cell", "n"};
    table.replications = opt.reps;
    for (Row& row : rows) {
      row.result.coords = {opt.policy, row.label, std::to_string(opt.n)};
      table.rows.push_back(std::move(row.result));
    }
    core::write_result_csv(table, *opt.out + ".csv");
    core::write_result_json(table, *opt.out + ".json");
    std::printf("\nwrote %s.csv and %s.json\n", opt.out->c_str(),
                opt.out->c_str());
  }
  return 0;
}

int run(const Options& opt) {
  // --- base scenario -------------------------------------------------------
  core::ScenarioConfig base;
  std::string scenario_label = "paper";
  if (opt.scenario_name && opt.config_file)
    throw ConfigError("--scenario and --config are mutually exclusive");
  if (opt.scenario_name) {
    scenario_label = *opt.scenario_name;
    base = workload::catalog_scenario(scenario_label);
  } else if (opt.config_file) {
    scenario_label = *opt.config_file;
    base = core::load_scenario_file(scenario_label);
  } else {
    base = core::paper_scenario();
  }
  if (opt.seed) base.seed = *opt.seed;
  if (opt.cells) base.multicell.cells = *opt.cells;
  if (opt.cell_threads) base.multicell.threads = *opt.cell_threads;
  if (opt.workload_cells) base.multicell.workload_cells = *opt.workload_cells;
  if (opt.cells || opt.cell_threads || opt.workload_cells) base.validate();

  // Multi-cell single runs surface per-cell rows via the engine directly;
  // sweeps keep aggregating (the engine runs inside every sweep cell).
  // There is no per-replication parallelism on this path, so a plain
  // --threads (or positional threads) drives the shard workers instead of
  // being silently ignored; an explicit --cell-threads still wins.
  if (!opt.sweep_mode && base.multicell.cells > 1) {
    if (!opt.cell_threads && opt.threads) {
      base.multicell.threads = *opt.threads;
      base.validate();
    }
    return run_multicell_single(base, opt, scenario_label);
  }

  // --- axes, in canonical order: policy, scenario, params, n ---------------
  core::SweepSpec spec;
  spec.base = base;
  spec.fallback_policy = opt.policy;
  spec.fallback_n = opt.n;
  spec.replications = opt.reps;
  spec.threads = opt.threads.value_or(1);

  if (!opt.policies.empty()) spec.policy_axis(opt.policies);
  for (const SweepAxisArg& s : opt.sweeps) {
    if (s.axis == "scenario") {
      auto choices = core::scenario_choices(s.values);
      if (opt.seed)
        for (auto& choice : choices) choice.config.seed = *opt.seed;
      spec.scenario_axis(std::move(choices));
    }
  }
  for (const SweepAxisArg& s : opt.sweeps)
    if (s.axis != "scenario" && s.axis != "n")
      spec.param_axis(s.axis, s.values);
  for (const SweepAxisArg& s : opt.sweeps) {
    if (s.axis == "n") {
      std::vector<int> ns;
      for (const std::string& v : s.values)
        ns.push_back(parse_int(v, "n value"));
      spec.n_axis(std::move(ns));
    }
  }

  // --- execute -------------------------------------------------------------
  const core::SweepRunner runner(std::move(spec));
  std::vector<core::CellMetrics> cells;
  const core::ResultTable table = runner.run(&cells);

  if (opt.sweep_mode)
    print_sweep(table);
  else
    print_single_run(table, cells, opt, scenario_label);

  if (opt.out) {
    core::write_result_csv(table, *opt.out + ".csv");
    core::write_result_json(table, *opt.out + ".json");
    std::printf("\nwrote %s.csv and %s.json\n", opt.out->c_str(),
                opt.out->c_str());
  }
  return 0;
}

// `trace record` / `trace replay`: capture the decision server's request
// stream to a byte-stable CSV, and feed it back through the serving loop
// (see docs/serving.md).  Kept here rather than in decision_server so one
// tool owns every scenario-driving CLI.
int run_trace(int argc, char** argv) {
  const auto trace_usage = [&](FILE* dst) {
    std::fprintf(
        dst,
        "usage: %s trace record --out <trace.csv> [options]\n"
        "       %s trace replay <trace.csv> [options]\n"
        "\n"
        "record options: --scenario <name> | --config <file>, --seed <u64>,\n"
        "  --duration <s> (default 60), --rate <req/s> (default 2000),\n"
        "  --shards <int> (default 4), --handoff-fraction <f>\n"
        "replay options: --policy <name>, --shards <int>, --threads <int>,\n"
        "  --duration <s> (default: derived from the trace),\n"
        "  --batch-window <s>, --batch-max <int>, --out <prefix>,\n"
        "  --trace <perfetto.json>, --metrics <file>\n"
        "\n"
        "Recorded traces pin the policy inputs completely (the noisy\n"
        "predicted angles are recorded, not re-drawn), so a replay's\n"
        "telemetry CSV is byte-identical across runs, machines and thread\n"
        "counts.\n",
        argv[0], argv[0]);
    return dst == stderr ? 2 : 0;
  };
  if (argc < 3) return trace_usage(stderr);
  const std::string mode = argv[2];
  if (mode == "--help" || mode == "-h") return trace_usage(stdout);
  if (mode != "record" && mode != "replay") {
    std::fprintf(stderr, "error: unknown trace subcommand '%s'\n\n",
                 mode.c_str());
    return trace_usage(stderr);
  }

  serve::ServerConfig config;
  config.scenario = workload::catalog_scenario("paper-grid");
  config.scenario_label = "paper-grid";
  std::optional<std::string> out;
  std::optional<std::string> trace_path;
  ObsSession obs_session;
  bool duration_given = false;

  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc)
        throw ConfigError(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return trace_usage(stdout);
    if (arg == "--scenario") {
      config.scenario_label = value("--scenario");
      config.scenario = workload::catalog_scenario(config.scenario_label);
    } else if (arg == "--config") {
      config.scenario_label = value("--config");
      config.scenario = core::load_scenario_file(config.scenario_label);
    } else if (arg == "--seed")
      config.scenario.seed = parse_u64(value("--seed"), "--seed");
    else if (arg == "--duration") {
      config.duration_s = parse_int(value("--duration"), "--duration");
      duration_given = true;
    } else if (arg == "--rate")
      config.requests_per_s = parse_int(value("--rate"), "--rate");
    else if (arg == "--handoff-fraction")
      config.handoff_fraction = std::stod(value("--handoff-fraction"));
    else if (arg == "--shards")
      config.shards = parse_int(value("--shards"), "--shards");
    else if (arg == "--threads")
      config.threads = parse_int(value("--threads"), "--threads");
    else if (arg == "--policy")
      config.policy = value("--policy");
    else if (arg == "--batch-window")
      config.batch_window_s = std::stod(value("--batch-window"));
    else if (arg == "--batch-max")
      config.batch_max = parse_int(value("--batch-max"), "--batch-max");
    else if (arg == "--out")
      out = value("--out");
    else if (arg == "--trace")
      obs_session.trace_path = value("--trace");
    else if (arg == "--metrics")
      obs_session.metrics_path = value("--metrics");
    else if (arg[0] != '-' && mode == "replay" && !trace_path)
      trace_path = arg;
    else {
      std::fprintf(stderr, "error: unknown trace flag '%s'\n\n", arg.c_str());
      return trace_usage(stderr);
    }
  }

  if (mode == "record") {
    if (!out) throw ConfigError("trace record: --out <trace.csv> is required");
    const std::vector<serve::StampedRequest> trace =
        serve::record_trace(config);
    serve::write_trace_file(trace, *out);
    std::printf("recorded %zu requests (%lld s at %d req/s, seed %llu) to %s\n",
                trace.size(), static_cast<long long>(config.duration_s),
                config.requests_per_s,
                static_cast<unsigned long long>(config.scenario.seed),
                out->c_str());
    return 0;
  }

  if (!trace_path)
    throw ConfigError("trace replay: a recorded <trace.csv> is required");
  if (!duration_given) config.duration_s = 0;  // derive from the trace
  serve::DecisionServer server(config,
                               serve::read_trace_file(*trace_path));
  obs_session.begin();
  const serve::ServerResult result = server.run();
  obs_session.finish();
  const std::string prefix = out.value_or("replay");
  serve::write_telemetry_csv(result, prefix + "_telemetry.csv");
  serve::write_latency_csv(result, prefix + "_latency.csv");
  serve::write_summary_json(config, result, prefix + "_summary.json");
  serve::write_summary_json(config, result, std::cout);
  std::printf("wrote %s_telemetry.csv, %s_latency.csv, %s_summary.json\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string(argv[1]) == "trace")
      return run_trace(argc, argv);
    Options opt;
    std::vector<std::string> positional;

    const auto flag_value = [&](int& i, const char* flag) -> std::string {
      if (i + 1 >= argc)
        throw ConfigError(std::string(flag) + " needs a value");
      return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") return usage(argv[0], stdout);
      if (arg == "--list-scenarios") {
        for (const auto& entry :
             workload::ScenarioCatalog::instance().entries())
          std::printf("%-14s %s\n", entry.name.c_str(),
                      entry.description.c_str());
        return 0;
      }
      if (arg == "--list-policies") {
        for (const std::string& name : core::policy_names())
          std::printf("%s\n", name.c_str());
        return 0;
      }
      if (arg == "--list-keys") {
        for (const std::string& key : core::scenario_keys())
          std::printf("%s\n", key.c_str());
        return 0;
      }
      if (arg == "--dump-default") {
        core::save_scenario(core::paper_scenario(), std::cout);
        return 0;
      }
      if (arg == "--dump-scenario") {
        core::save_scenario(
            workload::catalog_scenario(flag_value(i, "--dump-scenario")),
            std::cout);
        return 0;
      }
      if (arg == "--scenario") {
        opt.scenario_name = flag_value(i, "--scenario");
      } else if (arg == "--config") {
        opt.config_file = flag_value(i, "--config");
      } else if (arg == "--seed") {
        opt.seed = parse_u64(flag_value(i, "--seed"), "--seed");
      } else if (arg == "--cells") {
        opt.cells = parse_int(flag_value(i, "--cells"), "--cells");
      } else if (arg == "--cell-threads") {
        opt.cell_threads =
            parse_int(flag_value(i, "--cell-threads"), "--cell-threads");
      } else if (arg == "--workload-cells") {
        opt.workload_cells =
            parse_int(flag_value(i, "--workload-cells"), "--workload-cells");
      } else if (arg == "--policies") {
        if (!opt.policies.empty()) throw ConfigError("policy axis given twice");
        opt.policies = split_csv(flag_value(i, "--policies"));
        if (opt.policies.empty()) throw ConfigError("--policies is empty");
        opt.sweep_mode = true;
      } else if (arg == "--sweep") {
        const std::string value = flag_value(i, "--sweep");
        const std::size_t eq = value.find('=');
        if (eq == std::string::npos || eq == 0)
          throw ConfigError("--sweep expects <axis=v1,v2,...>, got '" +
                            value + "'");
        SweepAxisArg axis;
        axis.axis = value.substr(0, eq);
        axis.values = split_csv(value.substr(eq + 1));
        if (axis.values.empty())
          throw ConfigError("--sweep axis '" + axis.axis + "' has no values");
        if (axis.axis == "policy") {
          if (!opt.policies.empty())
            throw ConfigError("policy axis given twice");
          opt.policies = axis.values;
        } else {
          opt.sweeps.push_back(std::move(axis));
        }
        opt.sweep_mode = true;
      } else if (arg == "--n") {
        opt.n = parse_int(flag_value(i, "--n"), "--n");
      } else if (arg == "--reps") {
        opt.reps = parse_int(flag_value(i, "--reps"), "--reps");
      } else if (arg == "--threads") {
        opt.threads = parse_int(flag_value(i, "--threads"), "--threads");
      } else if (arg == "--out") {
        opt.out = flag_value(i, "--out");
      } else if (arg == "--trace") {
        opt.obs.trace_path = flag_value(i, "--trace");
      } else if (arg == "--metrics") {
        opt.obs.metrics_path = flag_value(i, "--metrics");
      } else if (arg.size() >= 2 && arg[0] == '-' && !std::isdigit(
                     static_cast<unsigned char>(arg[1]))) {
        std::fprintf(stderr, "error: unknown flag '%s'\n\n", arg.c_str());
        return usage(argv[0], stderr);
      } else {
        positional.push_back(arg);
      }
    }

    // Positional tail: <policy> [N [reps [threads]]] (single-run style,
    // still honoured in sweep mode for the fallback policy / N).  The
    // pre-flag CLI put a config file first — keep that working: a first
    // positional that is not a registry policy name is a config file.
    std::size_t p = 0;
    if (!positional.empty() && !opt.scenario_name && !opt.config_file) {
      const std::vector<std::string> names = core::policy_names();
      if (std::find(names.begin(), names.end(), positional[0]) ==
          names.end()) {
        opt.config_file = positional[0];
        p = 1;
      }
    }
    if (positional.size() > p + 4) {
      std::fprintf(stderr, "error: too many positional arguments\n\n");
      return usage(argv[0], stderr);
    }
    if (positional.size() >= p + 1) opt.policy = positional[p];
    if (positional.size() >= p + 2)
      opt.n = parse_int(positional[p + 1], "positional N");
    if (positional.size() >= p + 3)
      opt.reps = parse_int(positional[p + 2], "positional reps");
    if (positional.size() >= p + 4)
      opt.threads = parse_int(positional[p + 3], "positional threads");

    opt.obs.begin();
    const int rc = run(opt);
    opt.obs.finish();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
