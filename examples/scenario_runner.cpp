// Scenario runner: drive any experiment from a plain config file — no
// recompilation, shareable setups.
//
//   $ ./scenario_runner --dump-default           # print a template config
//   $ ./scenario_runner my.cfg facs-p 60 16      # file, policy, N, reps
//
// Policies: facs-p | facs | scc | gc | fgc | cs
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/error.h"
#include "core/config_io.h"
#include "core/experiment.h"
#include "core/paper.h"

using namespace facsp;

namespace {

core::PolicyFactory policy_by_name(const std::string& name) {
  if (name == "facs-p") return core::make_facs_p_factory();
  if (name == "facs") return core::make_facs_factory();
  if (name == "scc") return core::make_scc_factory();
  if (name == "gc") return core::make_guard_channel_factory(8.0);
  if (name == "fgc") return core::make_fractional_guard_factory(8.0);
  if (name == "cs") return core::make_complete_sharing_factory();
  throw facsp::ConfigError("unknown policy '" + name +
                    "' (facs-p|facs|scc|gc|fgc|cs)");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 2 && std::strcmp(argv[1], "--dump-default") == 0) {
      core::save_scenario(core::paper_scenario(), std::cout);
      return 0;
    }
    if (argc < 3 || argc > 5) {
      std::fprintf(stderr,
                   "usage: %s --dump-default\n"
                   "       %s <config-file> <policy> [N=60] [reps=8]\n",
                   argv[0], argv[0]);
      return 1;
    }

    const auto scenario = core::load_scenario_file(argv[1]);
    const std::string policy_name = argv[2];
    const int n = argc > 3 ? std::atoi(argv[3]) : 60;
    const int reps = argc > 4 ? std::atoi(argv[4]) : 8;

    std::cout << "scenario: " << argv[1] << "  policy: " << policy_name
              << "  N=" << n << "  replications=" << reps << "\n\n";

    core::Experiment exp(scenario, policy_by_name(policy_name), policy_name);
    sim::SummaryStats accept, drop, util;
    for (int rep = 0; rep < reps; ++rep) {
      const auto run = exp.run_single(n, rep);
      accept.add(run.metrics.acceptance_percent());
      drop.add(100.0 * run.metrics.dropping_probability());
      util.add(100.0 * run.center_utilization);
      std::printf("  rep %2d: accept %5.1f%%  drop %5.2f%%  util %5.1f%%\n",
                  rep, run.metrics.acceptance_percent(),
                  100.0 * run.metrics.dropping_probability(),
                  100.0 * run.center_utilization);
    }
    std::printf(
        "\nmean over %d replications:\n"
        "  acceptance  %5.1f%%  ±%.1f (95%% CI)\n"
        "  dropping    %5.2f%%\n"
        "  utilization %5.1f%%\n",
        reps, accept.mean(), accept.ci_half_width(), drop.mean(),
        util.mean());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
