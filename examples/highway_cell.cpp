// Highway cell: the motivating workload behind Fig. 8.
//
// A base station covers a stretch of highway (fast, directionally stable
// vehicles) and a shopping street (slow pedestrians whose headings
// wander).  We run both populations through FACS-P at increasing load and
// show why the controller favours the highway: vehicle trajectories are
// predictable, so admitted bandwidth stays useful.
//
//   $ ./highway_cell [replications]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"
#include "core/paper.h"

using namespace facsp;

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 12;

  std::cout << "Highway cell vs pedestrian street (FACS-P)\n"
            << "===========================================\n\n";

  struct Population {
    const char* label;
    double speed_kmh;
  };
  const Population populations[] = {
      {"pedestrians (4 km/h)", 4.0},
      {"cyclists (15 km/h)", 15.0},
      {"city cars (50 km/h)", 50.0},
      {"highway (100 km/h)", 100.0},
  };

  core::SweepConfig sweep;
  sweep.n_values = {20, 40, 60, 80, 100};
  sweep.replications = reps;

  sim::Figure fig("acceptance by population", "N",
                  "percentage of accepted calls");
  std::printf("%-22s %10s %10s %10s\n", "population", "accept@40",
              "accept@100", "drop%@100");
  for (const auto& pop : populations) {
    auto scenario = core::paper_scenario_fixed_speed(pop.speed_kmh);
    core::Experiment exp(scenario, core::make_facs_p_factory(), pop.label);
    const auto result = exp.run(sweep);
    const auto acc = result.acceptance_series();
    const auto drop = result.dropping_series();
    std::printf("%-22s %9.1f%% %9.1f%% %9.2f%%\n", pop.label, acc.y_at(40),
                acc.y_at(100), drop.y_at(100));
    auto& dst = fig.add_series(pop.label);
    for (std::size_t i = 0; i < acc.size(); ++i)
      dst.add(acc.x(i), acc.y(i));
  }

  std::cout << '\n';
  fig.print_table(std::cout);

  std::cout <<
      "\nReading: at every load level the faster population is admitted\n"
      "more — their direction cannot change easily, the base station's\n"
      "angle prediction is trustworthy, and bandwidth goes to users who\n"
      "actually stay in (or pass predictably through) the cell.  This is\n"
      "the paper's Fig. 8 conclusion on a realistic mixed deployment.\n";
  return 0;
}
