// Rule explorer: evaluate the paper's controllers at a chosen operating
// point and see exactly which fuzzy rules fired, how strongly, and what
// the defuzzified result is.
//
//   $ ./rule_explorer                      # guided demo points
//   $ ./rule_explorer flc1 <Sp> <An> <Sr>  # e.g. flc1 90 0 10
//   $ ./rule_explorer flc2 <Cv> <Rq> <Cs>  # e.g. flc2 0.8 5 25
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "cac/facs_flc.h"

using namespace facsp;

namespace {

void explain_at(const fuzzy::FuzzyController& flc,
                const std::vector<double>& inputs) {
  std::printf("%s(", flc.name().c_str());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    std::printf("%s%s=%g", i ? ", " : "", flc.input(i).name().c_str(),
                inputs[i]);
  std::printf(")\n");

  const auto ex = flc.explain(inputs);
  if (ex.fired.empty()) {
    std::printf("  no rule fired (inputs outside every term support)\n");
    return;
  }
  std::printf("  fired rules (strength | rule):\n");
  for (std::size_t i = 0; i < ex.fired.size(); ++i)
    std::printf("   %5.2f | %s\n", ex.fired[i].strength,
                ex.rule_text[i].c_str());
  std::printf("  aggregated output activations:");
  for (std::size_t k = 0; k < ex.aggregated.activations.size(); ++k)
    if (ex.aggregated.activations[k] > 0.0)
      std::printf(" %s=%.2f", flc.output().term(k).name.c_str(),
                  ex.aggregated.activations[k]);
  std::printf("\n  => crisp %s = %.3f\n\n", flc.output().name().c_str(),
              ex.crisp);
}

}  // namespace

int main(int argc, char** argv) {
  const auto flc1 = cac::make_flc1();
  const auto flc2 = cac::make_flc2();

  if (argc == 5) {
    const std::vector<double> in = {std::atof(argv[2]), std::atof(argv[3]),
                                    std::atof(argv[4])};
    if (std::strcmp(argv[1], "flc1") == 0) {
      explain_at(*flc1, in);
      return 0;
    }
    if (std::strcmp(argv[1], "flc2") == 0) {
      explain_at(*flc2, in);
      return 0;
    }
    std::fprintf(stderr, "unknown controller '%s' (flc1|flc2)\n", argv[1]);
    return 1;
  }
  if (argc != 1) {
    std::fprintf(stderr,
                 "usage: %s [flc1 Sp An Sr | flc2 Cv Rq Cs]\n", argv[0]);
    return 1;
  }

  std::cout << "FACS-P rule explorer — demo tour\n"
            << "================================\n\n";

  std::cout << "1. The dream customer: fast, heading straight in, voice.\n";
  explain_at(*flc1, {100.0, 0.0, 5.0});

  std::cout << "2. The hopeless case: slow, heading away, text.\n";
  explain_at(*flc1, {4.0, 170.0, 1.0});

  std::cout << "3. Boundary blend: between Middle and Fast, between\n"
               "   Straight and Right1 — four rule groups share the vote.\n";
  explain_at(*flc1, {90.0, 22.5, 5.0});

  std::cout << "4. Admission at half load: good correction, voice call.\n";
  explain_at(*flc2, {0.8, 5.0, 20.0});

  std::cout << "5. Admission when nearly full: same call, cell at 35/40.\n";
  explain_at(*flc2, {0.8, 5.0, 35.0});

  std::cout << "6. The paper's deliberate quirk: a *well-predicted* video\n"
               "   call into a full cell is hard-Rejected (Go Vi Fu = R) —\n"
               "   it would actually stay and starve everyone.\n";
  explain_at(*flc2, {0.95, 10.0, 40.0});

  std::cout << "Try your own points: rule_explorer flc1 90 45 10\n";
  return 0;
}
