// Decision server: a long-lived admission-serving loop over the FACS-P
// policies — live workload synthesis on a simulated clock, or replay of a
// trace recorded with `scenario_runner trace record`.
//
//   $ ./decision_server --scenario paper-grid --duration 60 --seed 7
//   $ ./decision_server --replay storm.trace.csv --threads 4 --out storm
//
// Writes three files per run (prefix via --out, default "server"):
//   <prefix>_telemetry.csv  per-second counters + CBP/CDP.  Deterministic:
//                           byte-identical for a given (scenario, seed,
//                           shards) at ANY thread count.
//   <prefix>_latency.csv    per-second decision-latency p50/p95/p99 (wall
//                           clock; machine-dependent, never diff in CI).
//   <prefix>_summary.json   totals, throughput, overall percentiles.
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/config_io.h"
#include "core/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/decision_loop.h"
#include "workload/catalog.h"

using namespace facsp;

namespace {

int usage(const char* argv0, FILE* dst) {
  std::fprintf(
      dst,
      "usage: %s [options]\n"
      "\n"
      "Request source (default: live synthesis from the scenario):\n"
      "  --scenario <name>        catalog scenario (default paper-grid)\n"
      "  --config <file>          key=value scenario config file\n"
      "  --replay <trace.csv>     replay a recorded trace instead of\n"
      "                           generating live (see 'scenario_runner\n"
      "                           trace record')\n"
      "\n"
      "Serving parameters:\n"
      "  --policy <name>          admission policy (default facs-p)\n"
      "  --duration <s>           simulated seconds to serve (default 60;\n"
      "                           replay derives it from the trace)\n"
      "  --rate <req/s>           live arrival rate, all shards (default 2000)\n"
      "  --handoff-fraction <f>   live handoff share in [0,1] (default 0.25)\n"
      "  --shards <int>           independent cells (default 4; part of the\n"
      "                           result, unlike --threads)\n"
      "  --threads <int>          workers draining shards, 0 = all cores\n"
      "                           (default 1; telemetry is byte-identical\n"
      "                           for every value)\n"
      "  --batch-window <s>       admission batching window (default 0.05)\n"
      "  --batch-max <int>        max requests per batch (default 256)\n"
      "  --seed <u64>             override the scenario seed\n"
      "\n"
      "Output:\n"
      "  --out <prefix>           file prefix (default 'server')\n"
      "  --table                  also print the per-second table\n"
      "  --trace <file>           record a Chrome trace-event JSON of the\n"
      "                           run (open in Perfetto / chrome://tracing)\n"
      "  --metrics <file>         write a metrics snapshot after the run\n"
      "                           (.csv suffix -> CSV, otherwise JSON)\n"
      "  --help                   this message\n",
      argv0);
  return dst == stderr ? 2 : 0;
}

int parse_int(const std::string& v, const char* what) {
  try {
    std::size_t used = 0;
    const int x = std::stoi(v, &used);
    if (used != v.size()) throw std::invalid_argument("trailing characters");
    return x;
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad ") + what + " '" + v + "'");
  }
}

double parse_double(const std::string& v, const char* what) {
  try {
    std::size_t used = 0;
    const double x = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument("trailing characters");
    return x;
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad ") + what + " '" + v + "'");
  }
}

std::uint64_t parse_u64(const std::string& v, const char* what) {
  try {
    if (v.empty() || v[0] == '-') throw std::invalid_argument("negative");
    std::size_t used = 0;
    const std::uint64_t x = std::stoull(v, &used);
    if (used != v.size()) throw std::invalid_argument("trailing characters");
    return x;
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad ") + what + " '" + v + "'");
  }
}

int run(int argc, char** argv) {
  serve::ServerConfig config;
  config.scenario = workload::catalog_scenario("paper-grid");
  std::optional<std::string> replay_path;
  std::optional<std::uint64_t> seed_override;
  std::string out_prefix = "server";
  std::string trace_path;
  std::string metrics_path;
  bool print_table = false;
  bool duration_given = false;
  bool scenario_named = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* what) -> std::string {
      if (i + 1 >= argc)
        throw ConfigError(std::string(what) + " requires a value");
      return argv[++i];
    };
    if (arg == "--help") return usage(argv[0], stdout);
    if (arg == "--scenario") {
      config.scenario_label = value("--scenario");
      config.scenario = workload::catalog_scenario(config.scenario_label);
      scenario_named = true;
    } else if (arg == "--config") {
      config.scenario_label = value("--config");
      config.scenario = core::load_scenario_file(config.scenario_label);
      scenario_named = true;
    } else if (arg == "--replay")
      replay_path = value("--replay");
    else if (arg == "--policy")
      config.policy = value("--policy");
    else if (arg == "--duration") {
      config.duration_s = parse_int(value("--duration"), "--duration");
      duration_given = true;
    } else if (arg == "--rate")
      config.requests_per_s = parse_int(value("--rate"), "--rate");
    else if (arg == "--handoff-fraction")
      config.handoff_fraction =
          parse_double(value("--handoff-fraction"), "--handoff-fraction");
    else if (arg == "--shards")
      config.shards = parse_int(value("--shards"), "--shards");
    else if (arg == "--threads")
      config.threads = parse_int(value("--threads"), "--threads");
    else if (arg == "--batch-window")
      config.batch_window_s =
          parse_double(value("--batch-window"), "--batch-window");
    else if (arg == "--batch-max")
      config.batch_max = parse_int(value("--batch-max"), "--batch-max");
    else if (arg == "--seed")
      seed_override = parse_u64(value("--seed"), "--seed");
    else if (arg == "--out")
      out_prefix = value("--out");
    else if (arg == "--trace")
      trace_path = value("--trace");
    else if (arg == "--metrics")
      metrics_path = value("--metrics");
    else if (arg == "--table")
      print_table = true;
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(argv[0], stderr);
    }
  }
  if (seed_override) config.scenario.seed = *seed_override;
  if (!scenario_named) config.scenario_label = "paper-grid";

  // Validate the policy name before the (possibly long) trace load.
  (void)core::policy_factory_by_name(config.policy);

  // Observability on demand: both switches default off, so an untraced run
  // pays only the branch-only disabled path at each instrumentation site.
  if (!metrics_path.empty()) obs::set_metrics_enabled(true);
  if (!trace_path.empty()) obs::Tracer::start();

  serve::ServerResult result;
  if (replay_path) {
    if (!duration_given) config.duration_s = 0;  // derive from the trace
    std::vector<serve::StampedRequest> trace =
        serve::read_trace_file(*replay_path);
    serve::DecisionServer server(config, std::move(trace));
    std::printf("replaying %s: %lld s, policy %s, %d shards, %d threads\n",
                replay_path->c_str(),
                static_cast<long long>(server.duration_s()),
                config.policy.c_str(), config.shards, config.threads);
    result = server.run();
  } else {
    serve::DecisionServer server(config);
    std::printf(
        "serving live: %lld s at %d req/s, policy %s, %d shards, %d "
        "threads, seed %llu\n",
        static_cast<long long>(server.duration_s()), config.requests_per_s,
        config.policy.c_str(), config.shards, config.threads,
        static_cast<unsigned long long>(config.scenario.seed));
    result = server.run();
  }

  if (!trace_path.empty()) {
    obs::Tracer::stop();
    obs::Tracer::write_json(trace_path);
    std::printf("wrote trace %s (%llu events)\n", trace_path.c_str(),
                static_cast<unsigned long long>(obs::Tracer::recorded_events()));
  }
  if (!metrics_path.empty()) {
    obs::write_snapshot(metrics_path);
    std::printf("wrote metrics %s\n", metrics_path.c_str());
  }

  serve::write_telemetry_csv(result, out_prefix + "_telemetry.csv");
  serve::write_latency_csv(result, out_prefix + "_latency.csv");
  serve::write_summary_json(config, result, out_prefix + "_summary.json");

  if (print_table) serve::telemetry_figure(result).print_table(std::cout);
  serve::write_summary_json(config, result, std::cout);
  std::printf("wrote %s_telemetry.csv, %s_latency.csv, %s_summary.json\n",
              out_prefix.c_str(), out_prefix.c_str(), out_prefix.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
