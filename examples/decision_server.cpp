// Decision server: a long-lived admission-serving loop over the FACS-P
// policies — live workload synthesis on a simulated clock, or replay of a
// trace recorded with `scenario_runner trace record`.
//
//   $ ./decision_server --scenario paper-grid --duration 60 --seed 7
//   $ ./decision_server --replay storm.trace.csv --threads 4 --out storm
//
// Writes three files per run (prefix via --out, default "server"):
//   <prefix>_telemetry.csv  per-second counters + CBP/CDP.  Deterministic:
//                           byte-identical for a given (scenario, seed,
//                           shards) at ANY thread count.
//   <prefix>_latency.csv    per-second decision-latency p50/p95/p99 (wall
//                           clock; machine-dependent, never diff in CI).
//   <prefix>_summary.json   totals, throughput, overall percentiles.
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/config_io.h"
#include "core/experiment.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "serve/decision_loop.h"
#include "workload/catalog.h"

using namespace facsp;

namespace {

int usage(const char* argv0, FILE* dst) {
  std::fprintf(
      dst,
      "usage: %s [options]\n"
      "\n"
      "Request source (default: live synthesis from the scenario):\n"
      "  --scenario <name>        catalog scenario (default paper-grid)\n"
      "  --config <file>          key=value scenario config file\n"
      "  --replay <trace.csv>     replay a recorded trace instead of\n"
      "                           generating live (see 'scenario_runner\n"
      "                           trace record')\n"
      "\n"
      "Serving parameters:\n"
      "  --policy <name>          admission policy (default facs-p)\n"
      "  --duration <s>           simulated seconds to serve (default 60;\n"
      "                           replay derives it from the trace)\n"
      "  --rate <req/s>           live arrival rate, all shards (default 2000)\n"
      "  --handoff-fraction <f>   live handoff share in [0,1] (default 0.25)\n"
      "  --shards <int>           independent cells (default 4; part of the\n"
      "                           result, unlike --threads)\n"
      "  --threads <int>          workers draining shards, 0 = all cores\n"
      "                           (default 1; telemetry is byte-identical\n"
      "                           for every value)\n"
      "  --batch-window <s>       admission batching window (default 0.1)\n"
      "  --batch-max <int>        max requests per batch (default 256)\n"
      "  --seed <u64>             override the scenario seed\n"
      "\n"
      "Network front-end (see docs/serving.md):\n"
      "  --listen <port>          serve admission requests over TCP instead\n"
      "                           of generating/replaying in-process\n"
      "                           (length-prefixed binary frames; 0 binds\n"
      "                           an ephemeral port and prints it)\n"
      "  --telemetry-port <port>  plaintext scrape endpoint (latest\n"
      "                           telemetry row + metrics registry)\n"
      "  --host <addr>            bind address (default 127.0.0.1)\n"
      "  --pending-cap <n>        max undecided requests before drop-oldest\n"
      "                           shedding (default 8192)\n"
      "  --max-skew <s>           refuse arrivals more than this many\n"
      "                           simulated seconds past the watermark\n"
      "                           (default 3600)\n"
      "  --flush-idle <s>         close open batches after this much\n"
      "                           wall-clock quiet (default 0.05)\n"
      "  --io-timeout <s>         per-connection read/write timeout\n"
      "                           (default 30)\n"
      "  --idle-timeout <s>       reap silent connections (default 300)\n"
      "  --poll-backend <name>    epoll | poll (default: epoll on Linux)\n"
      "\n"
      "Output:\n"
      "  --out <prefix>           file prefix (default 'server')\n"
      "  --table                  also print the per-second table\n"
      "  --trace <file>           record a Chrome trace-event JSON of the\n"
      "                           run (open in Perfetto / chrome://tracing)\n"
      "  --metrics <file>         write a metrics snapshot after the run\n"
      "                           (.csv suffix -> CSV, otherwise JSON)\n"
      "  --metrics-interval <s>   also flush the registry to --metrics\n"
      "                           every this many simulated seconds (CSV,\n"
      "                           tmp+rename; survives a crash)\n"
      "  --help                   this message\n",
      argv0);
  return dst == stderr ? 2 : 0;
}

int parse_int(const std::string& v, const char* what) {
  try {
    std::size_t used = 0;
    const int x = std::stoi(v, &used);
    if (used != v.size()) throw std::invalid_argument("trailing characters");
    return x;
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad ") + what + " '" + v + "'");
  }
}

double parse_double(const std::string& v, const char* what) {
  try {
    std::size_t used = 0;
    const double x = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument("trailing characters");
    return x;
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad ") + what + " '" + v + "'");
  }
}

std::uint64_t parse_u64(const std::string& v, const char* what) {
  try {
    if (v.empty() || v[0] == '-') throw std::invalid_argument("negative");
    std::size_t used = 0;
    const std::uint64_t x = std::stoull(v, &used);
    if (used != v.size()) throw std::invalid_argument("trailing characters");
    return x;
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad ") + what + " '" + v + "'");
  }
}

int run(int argc, char** argv) {
  serve::ServerConfig config;
  config.scenario = workload::catalog_scenario("paper-grid");
  std::optional<std::string> replay_path;
  std::optional<std::uint64_t> seed_override;
  std::string out_prefix = "server";
  std::string trace_path;
  std::string metrics_path;
  long long metrics_interval = 0;
  bool print_table = false;
  bool duration_given = false;
  bool scenario_named = false;

  std::optional<int> listen_port;
  std::optional<int> telemetry_port;
  std::optional<std::string> host;
  std::optional<int> pending_cap;
  std::optional<double> max_skew;
  std::optional<double> flush_idle;
  std::optional<double> io_timeout;
  std::optional<double> idle_timeout;
  std::optional<std::string> poll_backend;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* what) -> std::string {
      if (i + 1 >= argc)
        throw ConfigError(std::string(what) + " requires a value");
      return argv[++i];
    };
    if (arg == "--help") return usage(argv[0], stdout);
    if (arg == "--scenario") {
      config.scenario_label = value("--scenario");
      config.scenario = workload::catalog_scenario(config.scenario_label);
      scenario_named = true;
    } else if (arg == "--config") {
      config.scenario_label = value("--config");
      config.scenario = core::load_scenario_file(config.scenario_label);
      scenario_named = true;
    } else if (arg == "--replay")
      replay_path = value("--replay");
    else if (arg == "--policy")
      config.policy = value("--policy");
    else if (arg == "--duration") {
      config.duration_s = parse_int(value("--duration"), "--duration");
      duration_given = true;
    } else if (arg == "--rate")
      config.requests_per_s = parse_int(value("--rate"), "--rate");
    else if (arg == "--handoff-fraction")
      config.handoff_fraction =
          parse_double(value("--handoff-fraction"), "--handoff-fraction");
    else if (arg == "--shards")
      config.shards = parse_int(value("--shards"), "--shards");
    else if (arg == "--threads")
      config.threads = parse_int(value("--threads"), "--threads");
    else if (arg == "--batch-window")
      config.batch_window_s =
          parse_double(value("--batch-window"), "--batch-window");
    else if (arg == "--batch-max")
      config.batch_max = parse_int(value("--batch-max"), "--batch-max");
    else if (arg == "--seed")
      seed_override = parse_u64(value("--seed"), "--seed");
    else if (arg == "--out")
      out_prefix = value("--out");
    else if (arg == "--trace")
      trace_path = value("--trace");
    else if (arg == "--metrics")
      metrics_path = value("--metrics");
    else if (arg == "--metrics-interval")
      metrics_interval = parse_int(value("--metrics-interval"),
                                   "--metrics-interval");
    else if (arg == "--listen")
      listen_port = parse_int(value("--listen"), "--listen");
    else if (arg == "--telemetry-port")
      telemetry_port = parse_int(value("--telemetry-port"), "--telemetry-port");
    else if (arg == "--host")
      host = value("--host");
    else if (arg == "--pending-cap")
      pending_cap = parse_int(value("--pending-cap"), "--pending-cap");
    else if (arg == "--max-skew")
      max_skew = parse_double(value("--max-skew"), "--max-skew");
    else if (arg == "--flush-idle")
      flush_idle = parse_double(value("--flush-idle"), "--flush-idle");
    else if (arg == "--io-timeout")
      io_timeout = parse_double(value("--io-timeout"), "--io-timeout");
    else if (arg == "--idle-timeout")
      idle_timeout = parse_double(value("--idle-timeout"), "--idle-timeout");
    else if (arg == "--poll-backend")
      poll_backend = value("--poll-backend");
    else if (arg == "--table")
      print_table = true;
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(argv[0], stderr);
    }
  }
  if (seed_override) config.scenario.seed = *seed_override;
  if (!scenario_named) config.scenario_label = "paper-grid";

  if (!listen_port) {
    const char* stray = telemetry_port ? "--telemetry-port"
                       : host          ? "--host"
                       : pending_cap   ? "--pending-cap"
                       : max_skew      ? "--max-skew"
                       : flush_idle    ? "--flush-idle"
                       : io_timeout    ? "--io-timeout"
                       : idle_timeout  ? "--idle-timeout"
                       : poll_backend  ? "--poll-backend"
                                       : nullptr;
    if (stray)
      throw ConfigError(std::string(stray) + " requires --listen");
  }
  if (metrics_interval < 0)
    throw ConfigError("--metrics-interval must be >= 1");
  if (metrics_interval > 0 && metrics_path.empty())
    throw ConfigError("--metrics-interval requires --metrics <file>");

  // Validate the policy name before the (possibly long) trace load.
  (void)core::policy_factory_by_name(config.policy);

  // Observability on demand: both switches default off, so an untraced run
  // pays only the branch-only disabled path at each instrumentation site.
  if (!metrics_path.empty()) obs::set_metrics_enabled(true);
  if (!trace_path.empty()) obs::Tracer::start();

  if (listen_port) {
    if (replay_path)
      throw ConfigError(
          "--listen and --replay are exclusive: in listen mode the trace "
          "arrives over the socket (see tools/net_loadgen --trace)");
    net::NetConfig net;
    net.port = *listen_port;
    if (telemetry_port) net.telemetry_port = *telemetry_port;
    if (host) net.host = *host;
    if (pending_cap) net.pending_cap = static_cast<std::size_t>(*pending_cap);
    if (max_skew) net.max_skew_s = *max_skew;
    if (flush_idle) net.flush_idle_s = *flush_idle;
    if (io_timeout) {
      net.read_timeout_s = *io_timeout;
      net.write_timeout_s = *io_timeout;
    }
    if (idle_timeout) net.idle_timeout_s = *idle_timeout;
    if (poll_backend) {
      if (*poll_backend == "epoll")
        net.backend = net::PollBackend::kEpoll;
      else if (*poll_backend == "poll")
        net.backend = net::PollBackend::kPoll;
      else
        throw ConfigError("bad --poll-backend '" + *poll_backend +
                          "' (epoll | poll)");
    }
    net.metrics_interval_s = metrics_interval;
    net.metrics_path = metrics_path;
    // The scrape endpoint serves the registry; count even without --metrics.
    obs::set_metrics_enabled(true);

    net::NetServer server(config, net);
    net::NetServer::route_signals(&server);
    std::printf("listening on %s:%u (admission)", net.host.c_str(),
                server.admission_port());
    if (net.telemetry_port >= 0)
      std::printf(", %s:%u (telemetry)", net.host.c_str(),
                  server.telemetry_port());
    std::printf("\npolicy %s, %d shards, batch %g s / %d max, pending cap "
                "%zu; SIGINT/SIGTERM drains\n",
                config.policy.c_str(), config.shards, config.batch_window_s,
                config.batch_max, net.pending_cap);
    std::fflush(stdout);
    server.run();
    net::NetServer::route_signals(nullptr);

    if (!trace_path.empty()) {
      obs::Tracer::stop();
      obs::Tracer::write_json(trace_path);
    }
    if (!metrics_path.empty()) obs::write_snapshot(metrics_path);

    const serve::ServerResult result = server.result();
    serve::write_telemetry_csv(result, out_prefix + "_telemetry.csv");
    serve::write_latency_csv(result, out_prefix + "_latency.csv");
    serve::write_summary_json(config, result, out_prefix + "_summary.json");
    if (print_table) serve::telemetry_figure(result).print_table(std::cout);
    serve::write_summary_json(config, result, std::cout);
    std::printf("wrote %s_telemetry.csv, %s_latency.csv, %s_summary.json\n",
                out_prefix.c_str(), out_prefix.c_str(), out_prefix.c_str());
    return 0;
  }

  std::unique_ptr<obs::SnapshotWriter> snapshots;
  if (metrics_interval > 0)
    snapshots = std::make_unique<obs::SnapshotWriter>(
        metrics_path, metrics_interval, obs::Registry::instance());

  serve::ServerResult result;
  if (replay_path) {
    if (!duration_given) config.duration_s = 0;  // derive from the trace
    std::vector<serve::StampedRequest> trace =
        serve::read_trace_file(*replay_path);
    serve::DecisionServer server(config, std::move(trace));
    if (snapshots)
      server.set_second_hook([&snapshots](std::int64_t sec,
                                          const serve::TelemetryRow&) {
        snapshots->on_second(sec);
      });
    std::printf("replaying %s: %lld s, policy %s, %d shards, %d threads\n",
                replay_path->c_str(),
                static_cast<long long>(server.duration_s()),
                config.policy.c_str(), config.shards, config.threads);
    result = server.run();
  } else {
    serve::DecisionServer server(config);
    if (snapshots)
      server.set_second_hook([&snapshots](std::int64_t sec,
                                          const serve::TelemetryRow&) {
        snapshots->on_second(sec);
      });
    std::printf(
        "serving live: %lld s at %d req/s, policy %s, %d shards, %d "
        "threads, seed %llu\n",
        static_cast<long long>(server.duration_s()), config.requests_per_s,
        config.policy.c_str(), config.shards, config.threads,
        static_cast<unsigned long long>(config.scenario.seed));
    result = server.run();
  }

  if (!trace_path.empty()) {
    obs::Tracer::stop();
    obs::Tracer::write_json(trace_path);
    std::printf("wrote trace %s (%llu events)\n", trace_path.c_str(),
                static_cast<unsigned long long>(obs::Tracer::recorded_events()));
  }
  if (snapshots) {
    snapshots->flush();
    std::printf("wrote metrics %s (%llu snapshots)\n", metrics_path.c_str(),
                static_cast<unsigned long long>(snapshots->flush_count()));
  } else if (!metrics_path.empty()) {
    obs::write_snapshot(metrics_path);
    std::printf("wrote metrics %s\n", metrics_path.c_str());
  }

  serve::write_telemetry_csv(result, out_prefix + "_telemetry.csv");
  serve::write_latency_csv(result, out_prefix + "_latency.csv");
  serve::write_summary_json(config, result, out_prefix + "_summary.json");

  if (print_table) serve::telemetry_figure(result).print_table(std::cout);
  serve::write_summary_json(config, result, std::cout);
  std::printf("wrote %s_telemetry.csv, %s_latency.csv, %s_summary.json\n",
              out_prefix.c_str(), out_prefix.c_str(), out_prefix.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
