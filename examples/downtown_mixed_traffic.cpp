// Downtown, Saturday afternoon: every cell of a 19-cell network is loaded
// with the paper's 70/20/10 text/voice/video mix.  Compares FACS-P against
// a classical guard channel and plain complete sharing on the metrics an
// operator actually watches: per-service acceptance, handoff drops, and
// cell utilization.
//
//   $ ./downtown_mixed_traffic [N] [replications]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/experiment.h"
#include "core/paper.h"

using namespace facsp;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 60;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 8;

  std::cout << "Downtown mixed traffic — 19 cells, " << n
            << " requesting connections per cell\n"
            << "=====================================================\n\n";

  auto scenario = core::paper_scenario();
  scenario.rings = 2;                 // 19 cells
  scenario.spatial.kind = workload::SpatialKind::kUniform; // everyone is busy downtown

  struct Candidate {
    const char* label;
    core::PolicyFactory factory;
  };
  const Candidate candidates[] = {
      {"FACS-P", core::make_facs_p_factory()},
      {"guard channel (8 BU)", core::make_guard_channel_factory(8.0)},
      {"complete sharing", core::make_complete_sharing_factory()},
  };

  std::printf("%-22s %8s %8s %8s %8s %9s %8s\n", "policy", "accept%",
              "text%", "voice%", "video%", "drop%", "util%");
  for (const auto& cand : candidates) {
    core::Experiment exp(scenario, cand.factory, cand.label);
    sim::SummaryStats accept, text, voice, video, drop, util;
    for (int rep = 0; rep < reps; ++rep) {
      const auto run = exp.run_single(n, rep);
      accept.add(run.metrics.acceptance_percent());
      text.add(run.metrics.acceptance_percent(cellular::ServiceClass::kText));
      voice.add(
          run.metrics.acceptance_percent(cellular::ServiceClass::kVoice));
      video.add(
          run.metrics.acceptance_percent(cellular::ServiceClass::kVideo));
      drop.add(100.0 * run.metrics.dropping_probability());
      util.add(100.0 * run.center_utilization);
    }
    std::printf("%-22s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.2f%% %7.1f%%\n",
                cand.label, accept.mean(), text.mean(), voice.mean(),
                video.mean(), drop.mean(), util.mean());
  }

  std::cout <<
      "\nReading: complete sharing squeezes in the most new calls but\n"
      "drops on-going ones at handoff; the guard channel protects\n"
      "handoffs with a blunt reservation; FACS-P gets comparable\n"
      "protection while shaping *which* calls are refused (wide video\n"
      "requests from poorly-predicted users go first, text almost\n"
      "never).  That selectivity is the point of the fuzzy pipeline.\n";
  return 0;
}
