#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"

namespace facsp::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule(5.0, [&, i] { order.push_back(i); });
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunNextReturnsTimestamp) {
  EventQueue q;
  q.schedule(4.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.5);
  EXPECT_DOUBLE_EQ(q.run_next(), 4.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto h = q.schedule(1.0, [&] { ran = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const auto h = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const auto h = q.schedule(1.0, [] {});
  q.run_next();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const auto h = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(h);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, ActionsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth < 5) q.schedule(static_cast<double>(depth + 1),
                              [&chain, depth] { chain(depth + 1); });
  };
  q.schedule(0.0, [&chain] { chain(0); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 6);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, RejectsNonFiniteTimeAndEmptyAction) {
  EventQueue q;
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::infinity(), [] {}),
               ContractViolation);
  EXPECT_THROW(q.schedule(1.0, EventQueue::Action{}), ContractViolation);
}

TEST(EventQueue, EmptyQueueAccessorsThrow) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), ContractViolation);
  EXPECT_THROW(q.run_next(), ContractViolation);
}

// --- tie-break hardening ---------------------------------------------------
// The parallel sweep's bit-identical guarantee silently depends on events at
// equal timestamps popping in FIFO insertion order (a plain heap would make
// tie order an implementation accident).  These tests pin the property down
// in the shapes the simulator actually produces.

TEST(EventQueue, TiesFifoEvenWhenInsertedNonContiguously) {
  // Ties interleaved with other timestamps: FIFO order is per-timestamp
  // scheduling order, not global insertion adjacency.
  EventQueue q;
  std::vector<std::string> order;
  q.schedule(2.0, [&] { order.push_back("a@2"); });
  q.schedule(1.0, [&] { order.push_back("x@1"); });
  q.schedule(2.0, [&] { order.push_back("b@2"); });
  q.schedule(1.0, [&] { order.push_back("y@1"); });
  q.schedule(2.0, [&] { order.push_back("c@2"); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<std::string>{"x@1", "y@1", "a@2", "b@2",
                                             "c@2"}));
}

TEST(EventQueue, TiesFifoSurvivesCancellation) {
  // Cancelling members of a tie group must not disturb the order of the
  // survivors (lazy deletion keeps heap entries around).
  EventQueue q;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i)
    handles.push_back(q.schedule(5.0, [&, i] { order.push_back(i); }));
  for (int i = 1; i < 10; i += 2) EXPECT_TRUE(q.cancel(handles[i]));
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(EventQueue, TiesScheduledFromRunningEventFireAfterExistingTies) {
  // An action that schedules more work at the *current* timestamp gets a
  // later sequence number, so it runs after everything already queued there.
  EventQueue q;
  std::vector<std::string> order;
  q.schedule(1.0, [&] {
    order.push_back("first");
    q.schedule(1.0, [&] { order.push_back("nested"); });
  });
  q.schedule(1.0, [&] { order.push_back("second"); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order,
            (std::vector<std::string>{"first", "second", "nested"}));
}

TEST(EventQueue, TieBreakStressScrambledInsertion) {
  // 1000 events over 10 shared timestamps, inserted in a scrambled but
  // deterministic order; within each timestamp they must pop in exactly the
  // order they were scheduled.
  EventQueue q;
  std::vector<std::vector<int>> fired(10);   // per-timestamp pop order
  std::vector<std::vector<int>> expected(10);
  std::vector<double> pop_times;
  for (int i = 0; i < 1000; ++i) {
    const int k = (i * 7919) % 1000;  // 7919 coprime with 1000: a permutation
    const int t = k % 10;
    expected[t].push_back(k);
    q.schedule(static_cast<double>(t),
               [&fired, &pop_times, t, k] {
                 fired[t].push_back(k);
                 pop_times.push_back(static_cast<double>(t));
               });
  }
  while (!q.empty()) q.run_next();
  for (int t = 0; t < 10; ++t) EXPECT_EQ(fired[t], expected[t]) << "t=" << t;
  for (std::size_t i = 1; i < pop_times.size(); ++i)
    EXPECT_LE(pop_times[i - 1], pop_times[i]);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<double> fired;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 503);
    q.schedule(t, [&fired, t] { fired.push_back(t); });
  }
  while (!q.empty()) q.run_next();
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_LE(fired[i - 1], fired[i]);
}

}  // namespace
}  // namespace facsp::sim
