#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace facsp::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) q.schedule(5.0, [&, i] { order.push_back(i); });
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunNextReturnsTimestamp) {
  EventQueue q;
  q.schedule(4.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.5);
  EXPECT_DOUBLE_EQ(q.run_next(), 4.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto h = q.schedule(1.0, [&] { ran = true; });
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const auto h = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const auto h = q.schedule(1.0, [] {});
  q.run_next();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const auto h = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(h);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, ActionsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth < 5) q.schedule(static_cast<double>(depth + 1),
                              [&chain, depth] { chain(depth + 1); });
  };
  q.schedule(0.0, [&chain] { chain(0); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 6);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, RejectsNonFiniteTimeAndEmptyAction) {
  EventQueue q;
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::infinity(), [] {}),
               ContractViolation);
  EXPECT_THROW(q.schedule(1.0, EventQueue::Action{}), ContractViolation);
}

TEST(EventQueue, EmptyQueueAccessorsThrow) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), ContractViolation);
  EXPECT_THROW(q.run_next(), ContractViolation);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<double> fired;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 503);
    q.schedule(t, [&fired, t] { fired.push_back(t); });
  }
  while (!q.empty()) q.run_next();
  ASSERT_EQ(fired.size(), 1000u);
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_LE(fired[i - 1], fired[i]);
}

}  // namespace
}  // namespace facsp::sim
