#include "sim/timeseries.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace facsp::sim {
namespace {

TEST(Series, AddAndAccess) {
  Series s("FACS-P");
  s.add(10.0, 95.0);
  s.add(20.0, 90.0, 1.5);
  EXPECT_EQ(s.name(), "FACS-P");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x(0), 10.0);
  EXPECT_DOUBLE_EQ(s.y(1), 90.0);
  EXPECT_FALSE(s.ci(0).has_value());
  ASSERT_TRUE(s.ci(1).has_value());
  EXPECT_DOUBLE_EQ(*s.ci(1), 1.5);
  EXPECT_THROW(s.x(2), ContractViolation);
}

TEST(Series, YAtStepsToLargestXNotAbove) {
  Series s("a");
  s.add(10.0, 1.0);
  s.add(20.0, 2.0);
  s.add(30.0, 3.0);
  // Exact hit on a grid point.
  EXPECT_DOUBLE_EQ(s.y_at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(s.y_at(30.0), 3.0);
  // Between points: steps to the largest x not above the query.
  EXPECT_DOUBLE_EQ(s.y_at(25.0), 2.0);
  EXPECT_DOUBLE_EQ(s.y_at(10.5), 1.0);
  // Past the last point: holds the final value.
  EXPECT_DOUBLE_EQ(s.y_at(100.0), 3.0);
}

TEST(Series, YAtThrowsWhenEmpty) {
  Series s("empty");
  EXPECT_THROW(s.y_at(10.0), ContractViolation);
  EXPECT_THROW(s.min_x(), ContractViolation);
}

TEST(Series, YAtThrowsBeforeFirstPoint) {
  Series s("a");
  s.add(10.0, 1.0);
  s.add(20.0, 2.0);
  // The step function is undefined left of the first x: the old code
  // silently returned ys_.front() here.
  EXPECT_THROW(s.y_at(5.0), ContractViolation);
  EXPECT_THROW(s.y_at(std::nextafter(10.0, 0.0)), ContractViolation);
  EXPECT_DOUBLE_EQ(s.min_x(), 10.0);
  // Out-of-order insertion still finds the true minimum.
  Series t("b");
  t.add(30.0, 3.0);
  t.add(10.0, 1.0);
  EXPECT_DOUBLE_EQ(t.min_x(), 10.0);
  EXPECT_DOUBLE_EQ(t.y_at(15.0), 1.0);
  EXPECT_THROW(t.y_at(9.0), ContractViolation);
}

TEST(Figure, TableContainsAllSeriesAndRows) {
  Figure fig("Fig. 7", "N", "% accepted");
  auto& a = fig.add_series("FACS");
  auto& b = fig.add_series("SCC");
  a.add(10, 97.0);
  a.add(20, 93.0);
  b.add(10, 90.0);
  b.add(20, 89.0);
  std::ostringstream os;
  fig.print_table(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Fig. 7"), std::string::npos);
  EXPECT_NE(out.find("FACS"), std::string::npos);
  EXPECT_NE(out.find("SCC"), std::string::npos);
  EXPECT_NE(out.find("97.00"), std::string::npos);
  EXPECT_NE(out.find("89.00"), std::string::npos);
}

TEST(Figure, TableHandlesMismatchedGrids) {
  Figure fig("t", "x", "y");
  fig.add_series("a").add(1.0, 10.0);
  fig.add_series("b").add(2.0, 20.0);
  std::ostringstream os;
  fig.print_table(os);
  // Missing cells render as '-'.
  EXPECT_NE(os.str().find('-'), std::string::npos);
}

TEST(Figure, CsvFormat) {
  Figure fig("t", "N", "pct");
  auto& a = fig.add_series("one");
  a.add(1.0, 0.5);
  a.add(2.0, 0.75);
  std::ostringstream os;
  fig.print_csv(os);
  EXPECT_EQ(os.str(), "N,one\n1,0.5\n2,0.75\n");
}

TEST(Figure, CiRenderedWithPlusMinus) {
  Figure fig("t", "x", "y");
  fig.add_series("a").add(1.0, 50.0, 2.5);
  std::ostringstream os;
  fig.print_table(os);
  EXPECT_NE(os.str().find("±2.50"), std::string::npos);
}

TEST(Figure, SeriesAccessorBounds) {
  Figure fig("t", "x", "y");
  fig.add_series("a");
  EXPECT_NO_THROW(fig.series(0));
  EXPECT_THROW(fig.series(1), ContractViolation);
}

}  // namespace
}  // namespace facsp::sim
