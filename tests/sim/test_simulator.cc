#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace facsp::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_FALSE(sim.has_pending());
}

TEST(Simulator, ClockAdvancesBeforeActionRuns) {
  // Regression test: actions must observe the event's own timestamp.
  Simulator sim;
  double observed = -1.0;
  sim.schedule_at(7.5, [&] { observed = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(observed, 7.5);
}

TEST(Simulator, ScheduleInIsRelativeToNow) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(10.0, [&] {
    times.push_back(sim.now());
    sim.schedule_in(5.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{10.0, 15.0}));
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), ContractViolation);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), ContractViolation);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  EXPECT_EQ(sim.run(), 7u);
  EXPECT_EQ(sim.events_fired(), 7u);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  EXPECT_EQ(sim.run_until(2.5), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  // Clock parked at the horizon; remaining events still pending.
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(sim.pending_count(), 2u);
}

TEST(Simulator, RunUntilIncludesEventsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopEndsRunEarly) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    sim.schedule_at(i, [&] {
      ++fired;
      if (fired == 3) sim.stop();
    });
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(sim.has_pending());
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool ran = false;
  const auto h = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, ResetRestoresInitialState) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_FALSE(sim.has_pending());
  // Scheduling at time 0 works again after reset.
  EXPECT_NO_THROW(sim.schedule_at(0.0, [] {}));
}

TEST(Simulator, SelfSchedulingProcessTerminates) {
  // A mobility-update-style recurring event that cancels itself.
  Simulator sim;
  int updates = 0;
  std::function<void()> tick = [&] {
    if (++updates < 20) sim.schedule_in(5.0, tick);
  };
  sim.schedule_in(5.0, tick);
  sim.run();
  EXPECT_EQ(updates, 20);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

}  // namespace
}  // namespace facsp::sim
