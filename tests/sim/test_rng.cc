#include "sim/rng.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace facsp::sim {
namespace {

TEST(RandomStream, DeterministicForSameSeed) {
  RandomStream a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(RandomStream, DifferentSeedsDiffer) {
  RandomStream a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  EXPECT_LT(same, 5);
}

TEST(RandomStream, UniformRespectsBounds) {
  RandomStream rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
  EXPECT_DOUBLE_EQ(rng.uniform(2.0, 2.0), 2.0);
}

TEST(RandomStream, UniformIntInclusive) {
  RandomStream rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomStream, ExponentialMeanApproximately) {
  RandomStream rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(300.0);
  EXPECT_NEAR(sum / n, 300.0, 10.0);
}

TEST(RandomStream, ExponentialIsPositive) {
  RandomStream rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(RandomStream, NormalMoments) {
  RandomStream rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RandomStream, NormalZeroStddevIsDeterministic) {
  RandomStream rng(5);
  EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
}

TEST(RandomStream, BernoulliFrequency) {
  RandomStream rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RandomStream, BernoulliEdgeProbabilities) {
  RandomStream rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RandomStream, DiscreteMatchesWeights) {
  RandomStream rng(19);
  // The paper's 70/20/10 traffic mix.
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete({0.7, 0.2, 0.1})];
  EXPECT_NEAR(counts[0] / double(n), 0.7, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.1, 0.02);
}

TEST(RandomStream, PoissonMean) {
  RandomStream rng(23);
  long sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(4.0);
  EXPECT_NEAR(sum / double(n), 4.0, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RandomStream, PreconditionViolations) {
  RandomStream rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
  EXPECT_THROW(rng.discrete({}), ContractViolation);
}

TEST(RngFactory, NamedStreamsAreReproducible) {
  const RngFactory f(99);
  RandomStream a = f.stream("traffic");
  RandomStream b = f.stream("traffic");
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(RngFactory, DifferentNamesAreIndependent) {
  const RngFactory f(99);
  RandomStream a = f.stream("traffic");
  RandomStream b = f.stream("mobility");
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  EXPECT_LT(same, 5);
}

TEST(RngFactory, IndexedStreamsDiffer) {
  const RngFactory f(99);
  RandomStream r0 = f.stream("rep", 0);
  RandomStream r1 = f.stream("rep", 1);
  EXPECT_NE(r0.uniform(0.0, 1.0), r1.uniform(0.0, 1.0));
}

TEST(HashSeed, StableAndSensitive) {
  const auto h = hash_seed(42, "traffic");
  EXPECT_EQ(h, hash_seed(42, "traffic"));
  EXPECT_NE(h, hash_seed(43, "traffic"));
  EXPECT_NE(h, hash_seed(42, "traffio"));
  EXPECT_NE(h, hash_seed(42, "traffic", 1));
  EXPECT_NE(hash_seed(0, ""), 0u);  // never the degenerate zero seed
}

}  // namespace
}  // namespace facsp::sim
