#include "sim/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace facsp::sim {
namespace {

TEST(RandomStream, DeterministicForSameSeed) {
  RandomStream a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(RandomStream, DifferentSeedsDiffer) {
  RandomStream a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  EXPECT_LT(same, 5);
}

TEST(RandomStream, UniformRespectsBounds) {
  RandomStream rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
  EXPECT_DOUBLE_EQ(rng.uniform(2.0, 2.0), 2.0);
}

TEST(RandomStream, UniformIntInclusive) {
  RandomStream rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomStream, ExponentialMeanApproximately) {
  RandomStream rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(300.0);
  EXPECT_NEAR(sum / n, 300.0, 10.0);
}

TEST(RandomStream, ExponentialIsPositive) {
  RandomStream rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(RandomStream, NormalMoments) {
  RandomStream rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RandomStream, NormalZeroStddevIsDeterministic) {
  RandomStream rng(5);
  EXPECT_DOUBLE_EQ(rng.normal(3.0, 0.0), 3.0);
}

TEST(RandomStream, BernoulliFrequency) {
  RandomStream rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RandomStream, BernoulliEdgeProbabilities) {
  RandomStream rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RandomStream, DiscreteMatchesWeights) {
  RandomStream rng(19);
  // The paper's 70/20/10 traffic mix.
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete({0.7, 0.2, 0.1})];
  EXPECT_NEAR(counts[0] / double(n), 0.7, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.1, 0.02);
}

TEST(RandomStream, PoissonMean) {
  RandomStream rng(23);
  long sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(4.0);
  EXPECT_NEAR(sum / double(n), 4.0, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RandomStream, PreconditionViolations) {
  RandomStream rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), ContractViolation);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
  EXPECT_THROW(rng.normal(0.0, -1.0), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.5), ContractViolation);
  EXPECT_THROW(rng.discrete({}), ContractViolation);
}

TEST(RngFactory, NamedStreamsAreReproducible) {
  const RngFactory f(99);
  RandomStream a = f.stream("traffic");
  RandomStream b = f.stream("traffic");
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(RngFactory, DifferentNamesAreIndependent) {
  const RngFactory f(99);
  RandomStream a = f.stream("traffic");
  RandomStream b = f.stream("mobility");
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  EXPECT_LT(same, 5);
}

TEST(RngFactory, IndexedStreamsDiffer) {
  const RngFactory f(99);
  RandomStream r0 = f.stream("rep", 0);
  RandomStream r1 = f.stream("rep", 1);
  EXPECT_NE(r0.uniform(0.0, 1.0), r1.uniform(0.0, 1.0));
}

TEST(RngFactory, StreamDerivationIsOrderIndependent) {
  // The factory is stateless: the sequence a named stream produces depends
  // only on (master_seed, name, index), never on which streams were created
  // before it.  The parallel sweep runner relies on this — workers create
  // streams in whatever order they reach their cells.
  const RngFactory f(1234);
  const RngFactory g(1234);
  // f: traffic then mobility then rep streams; g: the reverse.
  RandomStream f_traffic = f.stream("traffic");
  RandomStream f_mobility = f.stream("mobility");
  RandomStream f_rep2 = f.stream("rep", 2);
  RandomStream g_rep2 = g.stream("rep", 2);
  RandomStream g_mobility = g.stream("mobility");
  RandomStream g_traffic = g.stream("traffic");
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(f_traffic.uniform(0.0, 1.0), g_traffic.uniform(0.0, 1.0));
    EXPECT_DOUBLE_EQ(f_mobility.uniform(0.0, 1.0),
                     g_mobility.uniform(0.0, 1.0));
    EXPECT_DOUBLE_EQ(f_rep2.uniform(0.0, 1.0), g_rep2.uniform(0.0, 1.0));
  }
  // Interleaving draws with stream creation must not perturb anything
  // either: draw from f's traffic stream, then create another stream.
  RandomStream h_traffic = f.stream("traffic");
  (void)f.stream("predictor");
  RandomStream h_traffic_again = f.stream("traffic");
  for (int i = 0; i < 20; ++i)
    EXPECT_DOUBLE_EQ(h_traffic.uniform(0.0, 1.0),
                     h_traffic_again.uniform(0.0, 1.0));
}

TEST(HashSeed, NoCollisionsAcrossSweepComponentsAndReplications) {
  // The cross product the parallel sweep actually derives seeds from: every
  // top-level component name x replications 0..999 must map to a distinct
  // 64-bit seed, for a handful of master seeds including the default.
  const std::vector<std::string_view> components = {
      "driver", "policy", "traffic", "mobility", "predictor", "fgc", "rep"};
  for (const std::uint64_t master : {std::uint64_t{42}, std::uint64_t{0},
                                     std::uint64_t{0xdeadbeefcafef00d}}) {
    std::set<std::uint64_t> seen;
    for (const auto name : components)
      for (std::uint64_t r = 0; r < 1000; ++r)
        seen.insert(hash_seed(master, name, r));
    EXPECT_EQ(seen.size(), components.size() * 1000u)
        << "collision under master seed " << master;
  }
}

TEST(HashSeed, StableAndSensitive) {
  const auto h = hash_seed(42, "traffic");
  EXPECT_EQ(h, hash_seed(42, "traffic"));
  EXPECT_NE(h, hash_seed(43, "traffic"));
  EXPECT_NE(h, hash_seed(42, "traffio"));
  EXPECT_NE(h, hash_seed(42, "traffic", 1));
  EXPECT_NE(hash_seed(0, ""), 0u);  // never the degenerate zero seed
}

}  // namespace
}  // namespace facsp::sim
