#include "sim/batch_means.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "sim/rng.h"

namespace facsp::sim {
namespace {

TEST(BatchMeans, BatchesCompleteAtBatchSize) {
  BatchMeans bm(4);
  for (int i = 0; i < 3; ++i) bm.add(1.0);
  EXPECT_EQ(bm.batch_count(), 0u);
  EXPECT_EQ(bm.pending(), 3u);
  bm.add(1.0);
  EXPECT_EQ(bm.batch_count(), 1u);
  EXPECT_EQ(bm.pending(), 0u);
  EXPECT_DOUBLE_EQ(bm.mean(), 1.0);
}

TEST(BatchMeans, BatchMeanIsAverageOfBatch) {
  BatchMeans bm(4);
  bm.add(1.0);
  bm.add(2.0);
  bm.add(3.0);
  bm.add(6.0);
  EXPECT_DOUBLE_EQ(bm.mean(), 3.0);
}

TEST(BatchMeans, IncompleteBatchExcluded) {
  BatchMeans bm(2);
  bm.add(0.0);
  bm.add(0.0);    // batch 1 mean 0
  bm.add(100.0);  // pending — must not bias the mean
  EXPECT_DOUBLE_EQ(bm.mean(), 0.0);
}

TEST(BatchMeans, MeanMatchesStreamMeanForIidInput) {
  RandomStream rng(3);
  BatchMeans bm(32);
  double sum = 0.0;
  const int n = 32 * 200;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    bm.add(x);
    sum += x;
  }
  EXPECT_EQ(bm.batch_count(), 200u);
  EXPECT_NEAR(bm.mean(), sum / n, 1e-12);
}

TEST(BatchMeans, WiderIntervalsForCorrelatedStreams) {
  // An AR(1)-style positively correlated stream: per-observation CI is
  // far too narrow; the batch-means CI (batch >> correlation length) must
  // be wider.
  RandomStream rng(7);
  SummaryStats naive;
  BatchMeans batched(64);
  double state = 0.0;
  for (int i = 0; i < 64 * 100; ++i) {
    state = 0.95 * state + rng.normal(0.0, 1.0);
    naive.add(state);
    batched.add(state);
  }
  EXPECT_GT(batched.ci_half_width(0.95), 2.0 * naive.ci_half_width(0.95));
}

TEST(BatchMeans, SizeOneEqualsPlainStats) {
  BatchMeans bm(1);
  SummaryStats s;
  for (double x : {1.0, 4.0, -2.0, 3.5}) {
    bm.add(x);
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(bm.mean(), s.mean());
  EXPECT_DOUBLE_EQ(bm.ci_half_width(), s.ci_half_width());
}

TEST(BatchMeans, ZeroBatchSizeRejected) {
  EXPECT_THROW(BatchMeans(0), facsp::ConfigError);
}

}  // namespace
}  // namespace facsp::sim
