#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/error.h"

namespace facsp::sim {
namespace {

TEST(ThreadPool, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
  EXPECT_EQ(ThreadPool::resolve_threads(-3), ThreadPool::resolve_threads(0));
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); });
  pool.wait_idle();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, SubmittedTasksAllRun) {
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100) << "threads=" << threads;
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 8u}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
      ThreadPool pool(threads);
      std::vector<std::atomic<int>> hits(257);
      pool.parallel_for(
          hits.size(), [&](std::size_t i) { ++hits[i]; }, chunk);
      for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1)
            << "i=" << i << " threads=" << threads << " chunk=" << chunk;
    }
  }
}

TEST(ThreadPool, ParallelForSlotWritesAreRaceFree) {
  // The ParallelSweepRunner pattern: each index owns one slot; the reduction
  // afterwards must see every write.  (The TSan CI job gives this test its
  // teeth.)
  ThreadPool pool(8);
  std::vector<std::size_t> slots(1000, 0);
  pool.parallel_for(slots.size(), [&](std::size_t i) { slots[i] = i * i; });
  for (std::size_t i = 0; i < slots.size(); ++i) EXPECT_EQ(slots[i], i * i);
}

TEST(ThreadPool, ParallelForZeroCountIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t i) {
                            if (i == 17) throw std::runtime_error("cell 17");
                          }),
        std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ThreadPool, PoolIsReusableAcrossParallelForCalls) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 10; ++round)
    pool.parallel_for(100, [&](std::size_t i) {
      sum += static_cast<long>(i);
    });
  EXPECT_EQ(sum.load(), 10 * (99 * 100 / 2));
}

TEST(ThreadPool, RejectsEmptyTaskAndZeroChunk) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.submit(std::function<void()>{}), ContractViolation);
  EXPECT_THROW(pool.parallel_for(1, std::function<void(std::size_t)>{}),
               ContractViolation);
  EXPECT_THROW(pool.parallel_for(1, [](std::size_t) {}, 0), ContractViolation);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&] { ++count; });
  }  // ~ThreadPool must run everything before joining
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace facsp::sim
