#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace facsp::sim {
namespace {

TEST(SummaryStats, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci_half_width(), 0.0);
}

TEST(SummaryStats, MatchesNaiveComputation) {
  const std::vector<double> xs = {3.0, 1.5, 4.25, -2.0, 7.0, 0.0};
  SummaryStats s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double ssq = 0.0;
  for (double x : xs) ssq += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), ssq / (xs.size() - 1), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(SummaryStats, MergeEqualsCombinedStream) {
  SummaryStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStats, MergeWithEmpty) {
  SummaryStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(SummaryStats, RejectsNonFinite) {
  SummaryStats s;
  EXPECT_THROW(s.add(std::nan("")), ContractViolation);
  EXPECT_THROW(s.add(std::numeric_limits<double>::infinity()),
               ContractViolation);
}

TEST(SummaryStats, CiShrinksWithSamples) {
  SummaryStats small, large;
  for (int i = 0; i < 5; ++i) small.add(i % 2 ? 1.0 : -1.0);
  for (int i = 0; i < 500; ++i) large.add(i % 2 ? 1.0 : -1.0);
  EXPECT_GT(small.ci_half_width(0.95), large.ci_half_width(0.95));
}

TEST(StudentT, KnownQuantiles) {
  EXPECT_NEAR(student_t_quantile(0.95, 1), 12.706, 1e-2);
  EXPECT_NEAR(student_t_quantile(0.95, 10), 2.228, 1e-2);
  EXPECT_NEAR(student_t_quantile(0.99, 5), 4.032, 1e-2);
  EXPECT_NEAR(student_t_quantile(0.90, 20), 1.725, 1e-2);
  // Large dof approaches the normal quantile.
  EXPECT_NEAR(student_t_quantile(0.95, 10000), 1.96, 1e-2);
}

TEST(StudentT, InterpolatedDofIsBracketed) {
  const double t17 = student_t_quantile(0.95, 17);
  EXPECT_LT(t17, student_t_quantile(0.95, 15));
  EXPECT_GT(t17, student_t_quantile(0.95, 20));
}

TEST(StudentT, InvalidArgumentsThrow) {
  EXPECT_THROW(student_t_quantile(0.0, 5), ContractViolation);
  EXPECT_THROW(student_t_quantile(1.0, 5), ContractViolation);
  EXPECT_THROW(student_t_quantile(0.95, 0), ContractViolation);
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(9), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(5), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
}

TEST(Histogram, OutOfRangeSaturatesEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);
}

TEST(Histogram, WeightedSamples) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 3.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(1), 3.0);
  EXPECT_THROW(h.add(1.0, -1.0), ContractViolation);
}

TEST(Histogram, QuantileInterpolation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_DOUBLE_EQ(Histogram(0.0, 1.0, 4).quantile(0.5), 0.0);  // empty
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 20.0);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
  TimeWeighted tw;
  tw.start(0.0, 10.0);
  tw.update(10.0, 20.0);   // 10 for [0,10)
  tw.update(30.0, 0.0);    // 20 for [10,30)
  // 0 for [30,40): avg = (100 + 400 + 0) / 40 = 12.5
  EXPECT_DOUBLE_EQ(tw.average(40.0), 12.5);
  EXPECT_DOUBLE_EQ(tw.current(), 0.0);
}

TEST(TimeWeighted, AverageAtStartIsCurrentValue) {
  TimeWeighted tw;
  tw.start(5.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.average(5.0), 3.0);
}

TEST(TimeWeighted, TimeMustNotGoBackwards) {
  TimeWeighted tw;
  tw.start(0.0, 1.0);
  tw.update(10.0, 2.0);
  EXPECT_THROW(tw.update(5.0, 3.0), ContractViolation);
  EXPECT_THROW(tw.average(5.0), ContractViolation);
}

TEST(TimeWeighted, UpdateBeforeStartThrows) {
  TimeWeighted tw;
  EXPECT_THROW(tw.update(1.0, 1.0), ContractViolation);
  EXPECT_THROW(tw.average(1.0), ContractViolation);
}

TEST(RatioCounter, HitsAndMisses) {
  RatioCounter rc;
  EXPECT_DOUBLE_EQ(rc.ratio(0.5), 0.5);  // empty -> default
  rc.hit();
  rc.hit();
  rc.miss();
  EXPECT_DOUBLE_EQ(rc.ratio(), 2.0 / 3.0);
  EXPECT_NEAR(rc.percent(), 66.666, 1e-2);
  EXPECT_EQ(rc.numerator, 2u);
  EXPECT_EQ(rc.denominator, 3u);
}

}  // namespace
}  // namespace facsp::sim
