// decide_batch <-> decide() parity, fuzzed over every registered policy.
//
// The batch API's contract (cac/policy.h) is "as-if sequential decide()
// calls without allocation between them".  A subclass overriding
// decide_batch with a fast path — or inheriting the default after changing
// decide() (the trap noted in fuzzy_cac_base.h) — must keep verdicts
// identical to a plain decide() loop.  Two policy instances are built from
// the same factory with the same seeds (randomised policies like fgc draw
// the same stream either way), one decides request-by-request, the other in
// one batch, under fuzzed request mixes and base-station load levels.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cac/policy.h"
#include "cellular/basestation.h"
#include "cellular/network.h"
#include "core/experiment.h"
#include "sim/rng.h"

namespace facsp::cac {
namespace {

using cellular::ServiceClass;

AdmissionRequest fuzz_request(sim::RandomStream& rng, std::uint64_t id) {
  AdmissionRequest req;
  req.id = id;
  const std::size_t svc = static_cast<std::size_t>(rng.uniform_int(0, 2));
  req.service = static_cast<ServiceClass>(svc);
  req.bandwidth = cellular::service_bandwidth(req.service);
  req.kind = rng.bernoulli(0.3) ? cellular::RequestKind::kHandoff
                                : cellular::RequestKind::kNew;
  req.priority =
      static_cast<cellular::UserPriority>(rng.uniform_int(0, 2));
  req.speed_kmh = rng.uniform(0.0, 120.0);
  req.angle_deg = rng.uniform(-180.0, 180.0);
  req.distance_m = rng.uniform(0.0, 2000.0);
  req.mobile.position = {rng.uniform(-1500.0, 1500.0),
                         rng.uniform(-1500.0, 1500.0)};
  req.mobile.speed_kmh = req.speed_kmh;
  req.mobile.heading_deg = rng.uniform(-180.0, 180.0);
  req.now = rng.uniform(0.0, 3600.0);
  return req;
}

/// Fill `bs` to a fuzzed occupancy so counter-state inputs vary across
/// batches.  Mirrored onto the policy via on_admitted so stateful policies
/// (FACS-P's RTC/NRTC) see a consistent world.
void fuzz_load(cellular::BaseStation& bs, AdmissionPolicy& policy,
               sim::RandomStream& rng, std::uint64_t id_base) {
  const int calls = static_cast<int>(rng.uniform_int(0, 12));
  for (int i = 0; i < calls; ++i) {
    cellular::Connection conn;
    conn.id = id_base + static_cast<std::uint64_t>(i);
    conn.service =
        static_cast<ServiceClass>(rng.uniform_int(0, 2));
    conn.bandwidth = cellular::service_bandwidth(conn.service);
    const bool via_handoff = rng.bernoulli(0.4);
    if (!bs.allocate(conn, 0.0, via_handoff)) break;
    AdmissionRequest req;
    req.id = conn.id;
    req.service = conn.service;
    req.bandwidth = conn.bandwidth;
    req.kind = via_handoff ? cellular::RequestKind::kHandoff
                           : cellular::RequestKind::kNew;
    policy.on_admitted(req, bs);
  }
}

TEST(DecideBatchParity, BatchMatchesDecideLoopForEveryRegisteredPolicy) {
  constexpr std::uint64_t kSeed = 20260730;
  constexpr int kBatches = 60;
  constexpr std::size_t kMaxBatch = 24;

  const cellular::CellularNetwork network(1, 2000.0, 40.0);

  for (const std::string& name : core::policy_names()) {
    SCOPED_TRACE("policy=" + name);
    const core::PolicyFactory factory = core::policy_factory_by_name(name);
    // Identically seeded twins: randomised policies draw the same streams.
    sim::RngFactory rng_a(kSeed), rng_b(kSeed);
    const std::unique_ptr<AdmissionPolicy> loop_policy =
        factory(network, rng_a);
    const std::unique_ptr<AdmissionPolicy> batch_policy =
        factory(network, rng_b);

    sim::RandomStream fuzz(sim::hash_seed(kSeed, "fuzz"));
    std::uint64_t next_id = 1;
    for (int b = 0; b < kBatches; ++b) {
      SCOPED_TRACE("batch=" + std::to_string(b));
      // Fresh station per batch, fuzzed to a random occupancy, mirrored
      // into both policies identically.
      cellular::BaseStation bs(0, {0, 0}, {0.0, 0.0}, 40.0);
      loop_policy->reset();
      batch_policy->reset();
      {
        // One fuzz stream drives both mirrors: replay the same draws.
        sim::RandomStream load_rng(sim::hash_seed(kSeed, "load",
                                                  static_cast<std::uint64_t>(b)));
        fuzz_load(bs, *loop_policy, load_rng, 1000000 + next_id);
      }
      {
        sim::RandomStream load_rng(sim::hash_seed(kSeed, "load",
                                                  static_cast<std::uint64_t>(b)));
        cellular::BaseStation mirror(0, {0, 0}, {0.0, 0.0}, 40.0);
        fuzz_load(mirror, *batch_policy, load_rng, 1000000 + next_id);
      }

      const std::size_t count =
          1 + static_cast<std::size_t>(fuzz.uniform_int(
                  0, static_cast<std::int64_t>(kMaxBatch - 1)));
      std::vector<AdmissionRequest> reqs;
      reqs.reserve(count);
      for (std::size_t i = 0; i < count; ++i)
        reqs.push_back(fuzz_request(fuzz, next_id++));

      std::vector<AdmissionDecision> loop_out(count);
      for (std::size_t i = 0; i < count; ++i)
        loop_out[i] = loop_policy->decide(reqs[i], bs);

      std::vector<AdmissionDecision> batch_out(count);
      batch_policy->decide_batch(reqs, bs, batch_out);

      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(loop_out[i].admitted, batch_out[i].admitted)
            << "request " << i;
        ASSERT_EQ(loop_out[i].score, batch_out[i].score) << "request " << i;
        ASSERT_EQ(loop_out[i].verdict, batch_out[i].verdict)
            << "request " << i;
      }
    }
  }
}

}  // namespace
}  // namespace facsp::cac
