// Direct coverage of the score -> five-level verdict mapping
// (verdict_from_score, cac/policy.h): the +/-0.15 and +/-0.45 boundaries
// are the midpoints between the A/R term cores, and every policy's
// AdmissionDecision goes through this function — so its edge behaviour is
// pinned here instead of only indirectly through policy suites.
#include "cac/policy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace facsp::cac {
namespace {

TEST(VerdictFromScore, UpperBoundaries) {
  // Accept is an open interval: strictly above +0.45.
  EXPECT_EQ(verdict_from_score(1.0), Verdict::kAccept);
  EXPECT_EQ(verdict_from_score(std::nextafter(0.45, 1.0)), Verdict::kAccept);
  EXPECT_EQ(verdict_from_score(0.45), Verdict::kWeakAccept);
  EXPECT_EQ(verdict_from_score(0.30), Verdict::kWeakAccept);
  EXPECT_EQ(verdict_from_score(std::nextafter(0.15, 1.0)),
            Verdict::kWeakAccept);
  EXPECT_EQ(verdict_from_score(0.15), Verdict::kNeutral);
}

TEST(VerdictFromScore, NeutralBandIsClosed) {
  EXPECT_EQ(verdict_from_score(0.15), Verdict::kNeutral);
  EXPECT_EQ(verdict_from_score(0.0), Verdict::kNeutral);
  EXPECT_EQ(verdict_from_score(-0.15), Verdict::kNeutral);
}

TEST(VerdictFromScore, LowerBoundaries) {
  // WeakReject is the closed band [-0.45, -0.15); Reject strictly below.
  EXPECT_EQ(verdict_from_score(std::nextafter(-0.15, -1.0)),
            Verdict::kWeakReject);
  EXPECT_EQ(verdict_from_score(-0.30), Verdict::kWeakReject);
  EXPECT_EQ(verdict_from_score(-0.45), Verdict::kWeakReject);
  EXPECT_EQ(verdict_from_score(std::nextafter(-0.45, -1.0)),
            Verdict::kReject);
  EXPECT_EQ(verdict_from_score(-1.0), Verdict::kReject);
}

TEST(VerdictFromScore, ExtremesBeyondTheScoreRange) {
  // Callers clamp to [-1, 1], but the mapping itself must stay total.
  EXPECT_EQ(verdict_from_score(2.0), Verdict::kAccept);
  EXPECT_EQ(verdict_from_score(-2.0), Verdict::kReject);
  EXPECT_EQ(verdict_from_score(std::numeric_limits<double>::infinity()),
            Verdict::kAccept);
  EXPECT_EQ(verdict_from_score(-std::numeric_limits<double>::infinity()),
            Verdict::kReject);
  EXPECT_EQ(verdict_from_score(std::numeric_limits<double>::max()),
            Verdict::kAccept);
  EXPECT_EQ(verdict_from_score(-std::numeric_limits<double>::max()),
            Verdict::kReject);
}

TEST(VerdictFromScore, NanFallsThroughToReject) {
  // Every comparison against NaN is false, so the chain lands on kReject —
  // the conservative end.  Pinned so a refactor cannot silently turn NaN
  // into an admission.
  EXPECT_EQ(verdict_from_score(std::numeric_limits<double>::quiet_NaN()),
            Verdict::kReject);
}

TEST(VerdictFromScore, NamesMatchThePaperAbbreviations) {
  EXPECT_EQ(to_string(Verdict::kAccept), "A");
  EXPECT_EQ(to_string(Verdict::kWeakAccept), "WA");
  EXPECT_EQ(to_string(Verdict::kNeutral), "NRNA");
  EXPECT_EQ(to_string(Verdict::kWeakReject), "WR");
  EXPECT_EQ(to_string(Verdict::kReject), "R");
}

}  // namespace
}  // namespace facsp::cac
