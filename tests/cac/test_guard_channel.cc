#include "cac/guard_channel.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace facsp::cac {
namespace {

using cellular::BaseStation;
using cellular::Connection;
using cellular::HexCoord;
using cellular::Point;
using cellular::RequestKind;
using cellular::ServiceClass;

AdmissionRequest request(ServiceClass svc, RequestKind kind) {
  AdmissionRequest req;
  req.id = 1;
  req.service = svc;
  req.bandwidth = cellular::service_bandwidth(svc);
  req.kind = kind;
  return req;
}

void fill(BaseStation& bs, double amount) {
  static cellular::ConnectionId next = 1000;
  Connection c;
  c.id = next++;
  c.service = ServiceClass::kVideo;
  c.bandwidth = amount;
  ASSERT_TRUE(bs.allocate(c, 0.0));
}

TEST(CompleteSharing, AdmitsWhileItFits) {
  BaseStation bs(0, HexCoord{0, 0}, Point{0, 0}, 40.0);
  CompleteSharingPolicy cs;
  EXPECT_TRUE(
      cs.decide(request(ServiceClass::kVideo, RequestKind::kNew), bs)
          .admitted);
  fill(bs, 35.0);
  EXPECT_FALSE(
      cs.decide(request(ServiceClass::kVideo, RequestKind::kNew), bs)
          .admitted);
  EXPECT_TRUE(cs.decide(request(ServiceClass::kVoice, RequestKind::kNew), bs)
                  .admitted);
  EXPECT_EQ(cs.name(), "CS");
}

TEST(GuardChannel, ReservesForHandoffs) {
  BaseStation bs(0, HexCoord{0, 0}, Point{0, 0}, 40.0);
  GuardChannelPolicy gc(8.0);
  fill(bs, 28.0);  // free = 12, guard = 8 -> new calls see 4
  EXPECT_TRUE(gc.decide(request(ServiceClass::kText, RequestKind::kNew), bs)
                  .admitted);
  EXPECT_FALSE(gc.decide(request(ServiceClass::kVoice, RequestKind::kNew), bs)
                   .admitted);
  // Handoffs may use the guard region.
  EXPECT_TRUE(
      gc.decide(request(ServiceClass::kVoice, RequestKind::kHandoff), bs)
          .admitted);
  EXPECT_TRUE(
      gc.decide(request(ServiceClass::kVideo, RequestKind::kHandoff), bs)
          .admitted);
}

TEST(GuardChannel, ZeroGuardEqualsCompleteSharing) {
  BaseStation bs(0, HexCoord{0, 0}, Point{0, 0}, 40.0);
  GuardChannelPolicy gc(0.0);
  CompleteSharingPolicy cs;
  fill(bs, 30.0);
  for (auto svc :
       {ServiceClass::kText, ServiceClass::kVoice, ServiceClass::kVideo}) {
    EXPECT_EQ(gc.decide(request(svc, RequestKind::kNew), bs).admitted,
              cs.decide(request(svc, RequestKind::kNew), bs).admitted);
  }
}

TEST(GuardChannel, NegativeGuardRejected) {
  EXPECT_THROW(GuardChannelPolicy(-1.0), facsp::ConfigError);
  EXPECT_THROW(
      FractionalGuardChannelPolicy(-1.0, sim::RandomStream(1)),
      facsp::ConfigError);
}

TEST(FractionalGuard, AlwaysAdmitsBelowGuardRegion) {
  BaseStation bs(0, HexCoord{0, 0}, Point{0, 0}, 40.0);
  FractionalGuardChannelPolicy fgc(10.0, sim::RandomStream(3));
  // free after call = 40 - 5 = 35 >= guard 10 -> probability 1.
  for (int i = 0; i < 20; ++i)
    EXPECT_TRUE(
        fgc.decide(request(ServiceClass::kVoice, RequestKind::kNew), bs)
            .admitted);
}

TEST(FractionalGuard, NeverAdmitsNewIntoExhaustedGuard) {
  BaseStation bs(0, HexCoord{0, 0}, Point{0, 0}, 40.0);
  FractionalGuardChannelPolicy fgc(10.0, sim::RandomStream(3));
  fill(bs, 32.0);  // free 8; after a voice call 3 -> p = 0.3
  int admitted = 0;
  for (int i = 0; i < 500; ++i)
    admitted +=
        fgc.decide(request(ServiceClass::kVoice, RequestKind::kNew), bs)
            .admitted;
  EXPECT_GT(admitted, 90);   // ~30% of 500
  EXPECT_LT(admitted, 220);
}

TEST(FractionalGuard, HandoffBypassesTheGuard) {
  BaseStation bs(0, HexCoord{0, 0}, Point{0, 0}, 40.0);
  FractionalGuardChannelPolicy fgc(10.0, sim::RandomStream(3));
  fill(bs, 35.0);
  for (int i = 0; i < 20; ++i)
    EXPECT_TRUE(
        fgc.decide(request(ServiceClass::kVoice, RequestKind::kHandoff), bs)
            .admitted);
}

TEST(Baselines, NeverAdmitBeyondPhysicalCapacity) {
  BaseStation bs(0, HexCoord{0, 0}, Point{0, 0}, 40.0);
  fill(bs, 39.5);
  CompleteSharingPolicy cs;
  GuardChannelPolicy gc(4.0);
  FractionalGuardChannelPolicy fgc(4.0, sim::RandomStream(9));
  for (auto kind : {RequestKind::kNew, RequestKind::kHandoff}) {
    EXPECT_FALSE(cs.decide(request(ServiceClass::kVoice, kind), bs).admitted);
    EXPECT_FALSE(gc.decide(request(ServiceClass::kVoice, kind), bs).admitted);
    EXPECT_FALSE(
        fgc.decide(request(ServiceClass::kVoice, kind), bs).admitted);
  }
}

}  // namespace
}  // namespace facsp::cac
