// Behavioural tests of the FACS and FACS-P admission policies.
#include <gtest/gtest.h>

#include "cac/facs.h"
#include "cac/facs_p.h"
#include "cellular/basestation.h"

namespace facsp::cac {
namespace {

using cellular::BaseStation;
using cellular::Connection;
using cellular::HexCoord;
using cellular::Point;
using cellular::RequestKind;
using cellular::ServiceClass;

AdmissionRequest request(cellular::ConnectionId id, ServiceClass svc,
                         double speed = 60.0, double angle = 0.0,
                         double distance = 500.0,
                         RequestKind kind = RequestKind::kNew) {
  AdmissionRequest req;
  req.id = id;
  req.service = svc;
  req.bandwidth = cellular::service_bandwidth(svc);
  req.kind = kind;
  req.speed_kmh = speed;
  req.angle_deg = angle;
  req.distance_m = distance;
  req.mobile.position = {distance, 0.0};
  req.mobile.speed_kmh = speed;
  req.mobile.heading_deg = 180.0;  // toward a BS at the origin
  return req;
}

Connection conn_for(const AdmissionRequest& req) {
  Connection c;
  c.id = req.id;
  c.service = req.service;
  c.bandwidth = req.bandwidth;
  return c;
}

struct PolicyFixture : ::testing::Test {
  BaseStation bs{0, HexCoord{0, 0}, Point{0.0, 0.0}, 40.0};
  FacsPConfig fp_cfg;
  FacsConfig f_cfg;

  PolicyFixture() { f_cfg.flc1.cell_radius_m = 1000.0; }

  /// Admit a request into the BS and notify the policy.
  void admit(AdmissionPolicy& p, const AdmissionRequest& req,
             bool via_handoff = false) {
    ASSERT_TRUE(bs.allocate(conn_for(req), 0.0, via_handoff));
    p.on_admitted(req, bs);
  }
};

// --- shared cascade behaviour -------------------------------------------------

TEST_F(PolicyFixture, EmptyCellAcceptsStraightUser) {
  FacsPPolicy facsp(fp_cfg);
  const auto d = facsp.decide(request(1, ServiceClass::kVoice), bs);
  EXPECT_TRUE(d.admitted);
  EXPECT_GT(d.score, 0.3);
  EXPECT_GE(static_cast<int>(d.verdict), static_cast<int>(Verdict::kWeakAccept));
}

TEST_F(PolicyFixture, PhysicallyFullCellNeverAdmits) {
  FacsPPolicy facsp(fp_cfg);
  for (cellular::ConnectionId id = 1; id <= 4; ++id)
    admit(facsp, request(id, ServiceClass::kVideo));
  ASSERT_DOUBLE_EQ(bs.free(), 0.0);
  const auto d = facsp.decide(request(9, ServiceClass::kText), bs);
  EXPECT_FALSE(d.admitted);
}

TEST_F(PolicyFixture, CorrectionValueReflectsAngle) {
  FacsPPolicy facsp(fp_cfg);
  const double straight = facsp.correction_value(request(1, ServiceClass::kVoice, 90.0, 0.0));
  const double away = facsp.correction_value(request(2, ServiceClass::kVoice, 90.0, 170.0));
  EXPECT_GT(straight, 0.8);
  EXPECT_LT(away, 0.25);
}

TEST_F(PolicyFixture, VerdictMapping) {
  EXPECT_EQ(verdict_from_score(0.9), Verdict::kAccept);
  EXPECT_EQ(verdict_from_score(0.3), Verdict::kWeakAccept);
  EXPECT_EQ(verdict_from_score(0.0), Verdict::kNeutral);
  EXPECT_EQ(verdict_from_score(-0.3), Verdict::kWeakReject);
  EXPECT_EQ(verdict_from_score(-0.9), Verdict::kReject);
  EXPECT_EQ(to_string(Verdict::kNeutral), "NRNA");
}

// --- FACS-P specifics ----------------------------------------------------------

TEST_F(PolicyFixture, FacsPCountersFollowAdmissions) {
  FacsPPolicy facsp(fp_cfg);
  admit(facsp, request(1, ServiceClass::kVideo));
  admit(facsp, request(2, ServiceClass::kText));
  const auto& counters = facsp.counters(bs.id());
  EXPECT_DOUBLE_EQ(counters.rt_bandwidth(), 10.0);
  EXPECT_DOUBLE_EQ(counters.nrt_bandwidth(), 1.0);
  facsp.on_released(1, ServiceClass::kVideo, bs);
  EXPECT_DOUBLE_EQ(facsp.counters(bs.id()).rt_bandwidth(), 0.0);
}

TEST_F(PolicyFixture, FacsPCountersMatchBaseStationLoad) {
  FacsPPolicy facsp(fp_cfg);
  admit(facsp, request(1, ServiceClass::kVideo));
  admit(facsp, request(2, ServiceClass::kVoice));
  admit(facsp, request(3, ServiceClass::kText));
  const auto& c = facsp.counters(bs.id());
  EXPECT_DOUBLE_EQ(c.rt_bandwidth(), bs.load().rt_used);
  EXPECT_DOUBLE_EQ(c.nrt_bandwidth(), bs.load().nrt_used);
}

TEST_F(PolicyFixture, FacsPPriorityMakesItStricterUnderRtLoad) {
  // With real-time on-going load, FACS-P's effective counter state exceeds
  // the physical occupancy, so its score for a new call is lower than
  // FACS's at the same physical load.
  FacsPPolicy facsp(fp_cfg);
  FacsPolicy facs(f_cfg);
  for (cellular::ConnectionId id = 1; id <= 2; ++id) {
    const auto req = request(id, ServiceClass::kVideo);
    ASSERT_TRUE(bs.allocate(conn_for(req), 0.0));
    facsp.on_admitted(req, bs);
  }
  // Physical load 20 BU, all real-time; FACS-P sees 32 (weight 1.6).
  const auto probe = request(10, ServiceClass::kVoice, 60.0, 0.0, 100.0);
  const double score_p = facsp.decide(probe, bs).score;
  const double score_f = facs.decide(probe, bs).score;
  EXPECT_LT(score_p, score_f);
}

TEST_F(PolicyFixture, FacsPEffectiveCsSaturatesAtUniverse) {
  fp_cfg.weights.real_time = 3.0;
  FacsPPolicy facsp(fp_cfg);
  for (cellular::ConnectionId id = 1; id <= 3; ++id)
    admit(facsp, request(id, ServiceClass::kVideo));
  // Effective occupancy 90 saturates at cs_max = 40; decide() must still
  // work and reject big new requests.
  const auto d = facsp.decide(request(9, ServiceClass::kVideo), bs);
  EXPECT_FALSE(d.admitted);
}

TEST_F(PolicyFixture, FacsPHandoffGetsPriorityOverNewCall) {
  FacsPPolicy facsp(fp_cfg);
  for (cellular::ConnectionId id = 1; id <= 3; ++id)
    admit(facsp, request(id, ServiceClass::kVideo));
  // Same user, same conditions: handoff continuation scores higher.
  const auto as_new =
      facsp.decide(request(10, ServiceClass::kVoice, 60.0, 60.0), bs);
  const auto as_handoff =
      facsp.decide(request(11, ServiceClass::kVoice, 60.0, 60.0, 500.0,
                           RequestKind::kHandoff),
                   bs);
  EXPECT_GT(as_handoff.score, as_new.score);
}

TEST_F(PolicyFixture, FacsPResetClearsCounters) {
  FacsPPolicy facsp(fp_cfg);
  admit(facsp, request(1, ServiceClass::kVideo));
  facsp.reset();
  EXPECT_DOUBLE_EQ(facsp.counters(bs.id()).total_bandwidth(), 0.0);
}

TEST_F(PolicyFixture, FacsPName) {
  EXPECT_EQ(FacsPPolicy(fp_cfg).name(), "FACS-P");
  EXPECT_EQ(FacsPolicy(f_cfg).name(), "FACS");
}

// --- FACS specifics -------------------------------------------------------------

TEST_F(PolicyFixture, FacsUsesDistanceNotServiceSize) {
  FacsPolicy facs(f_cfg);
  // Same service, same mobility, different distance: near scores higher.
  const double near_score =
      facs.decide(request(1, ServiceClass::kVoice, 60.0, 60.0, 100.0), bs)
          .score;
  const double far_score =
      facs.decide(request(2, ServiceClass::kVoice, 60.0, 60.0, 1100.0), bs)
          .score;
  EXPECT_GE(near_score, far_score);
}

TEST_F(PolicyFixture, FacsCounterStateIsPlainOccupancy) {
  FacsPolicy facs(f_cfg);
  FacsPolicy facs_fresh(f_cfg);
  // Fill with RT load *without* notifying FACS (it has no counters anyway).
  Connection c;
  c.id = 1;
  c.service = ServiceClass::kVideo;
  c.bandwidth = 10.0;
  ASSERT_TRUE(bs.allocate(c, 0.0));
  // Two FACS instances agree: the decision depends only on the BS load.
  const auto probe = request(5, ServiceClass::kVoice);
  EXPECT_DOUBLE_EQ(facs.decide(probe, bs).score,
                   facs_fresh.decide(probe, bs).score);
}

TEST_F(PolicyFixture, DecisionIsDeterministic) {
  FacsPPolicy facsp(fp_cfg);
  const auto probe = request(1, ServiceClass::kVideo, 45.0, 30.0);
  const double s = facsp.decide(probe, bs).score;
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(facsp.decide(probe, bs).score, s);
}

}  // namespace
}  // namespace facsp::cac
