// Verifies the paper's FLC construction: Table 1 / Table 2 are transcribed
// verbatim, and the membership geometry matches Figs. 5-6.
#include "cac/facs_flc.h"

#include <gtest/gtest.h>

namespace facsp::cac {
namespace {

// --- rule tables -------------------------------------------------------------

TEST(Frb1, Has63RulesMatchingTable1) {
  const auto& t = frb1_consequents();
  ASSERT_EQ(t.size(), 63u);
  // Spot-check rows against the paper's Table 1 (rule index = row).
  EXPECT_EQ(t[0], "Cv1");   // Sl B1 Sm
  EXPECT_EQ(t[1], "Cv3");   // Sl B1 Me
  EXPECT_EQ(t[2], "Cv2");   // Sl B1 Bi
  EXPECT_EQ(t[10], "Cv9");  // Sl St Me
  EXPECT_EQ(t[11], "Cv7");  // Sl St Bi
  EXPECT_EQ(t[9], "Cv5");   // Sl St Sm
  EXPECT_EQ(t[30], "Cv8");  // Mi St Sm
  EXPECT_EQ(t[31], "Cv9");  // Mi St Me
  EXPECT_EQ(t[32], "Cv9");  // Mi St Bi
  EXPECT_EQ(t[51], "Cv9");  // Fa St Sm
  EXPECT_EQ(t[52], "Cv9");  // Fa St Me
  EXPECT_EQ(t[53], "Cv9");  // Fa St Bi
  EXPECT_EQ(t[62], "Cv1");  // Fa B2 Bi
  EXPECT_EQ(t[42], "Cv1");  // Fa B1 Sm
}

TEST(Frb1, SymmetricInAngle) {
  // Table 1 is symmetric: L1<->R2, L2<->R1 columns match for every speed
  // and service.
  const auto& t = frb1_consequents();
  auto idx = [](int sp, int an, int sr) { return (sp * 7 + an) * 3 + sr; };
  for (int sp = 0; sp < 3; ++sp) {
    for (int sr = 0; sr < 3; ++sr) {
      EXPECT_EQ(t[idx(sp, 1, sr)], t[idx(sp, 5, sr)]);  // L1 == R2
      EXPECT_EQ(t[idx(sp, 2, sr)], t[idx(sp, 4, sr)]);  // L2 == R1
      EXPECT_EQ(t[idx(sp, 0, sr)], t[idx(sp, 6, sr)]);  // B1 == B2
    }
  }
}

TEST(Frb1, StraightIsAlwaysBestColumn) {
  const auto& t = frb1_consequents();
  auto level = [&](int sp, int an, int sr) {
    return t[(sp * 7 + an) * 3 + sr].back() - '0';
  };
  for (int sp = 0; sp < 3; ++sp)
    for (int sr = 0; sr < 3; ++sr)
      for (int an = 0; an < 7; ++an)
        EXPECT_LE(level(sp, an, sr), level(sp, 3, sr))
            << "sp=" << sp << " an=" << an << " sr=" << sr;
}

TEST(Frb2, Has27RulesMatchingTable2) {
  const auto& t = frb2_consequents();
  ASSERT_EQ(t.size(), 27u);
  // Row order: Cv (Bd,No,Go) x Rq (Tx,Vo,Vi) x Cs (Sa,Md,Fu).
  EXPECT_EQ(t[0], "A");      // Bd Tx Sa
  EXPECT_EQ(t[1], "NRNA");   // Bd Tx Md
  EXPECT_EQ(t[2], "NRNA");   // Bd Tx Fu
  EXPECT_EQ(t[5], "WR");     // Bd Vo Fu
  EXPECT_EQ(t[6], "WA");     // Bd Vi Sa
  EXPECT_EQ(t[8], "WR");     // Bd Vi Fu
  EXPECT_EQ(t[15], "WA");    // No Vi Sa
  EXPECT_EQ(t[18], "A");     // Go Tx Sa
  EXPECT_EQ(t[19], "A");     // Go Tx Md
  EXPECT_EQ(t[23], "WR");    // Go Vo Fu
  EXPECT_EQ(t[26], "R");     // Go Vi Fu
}

TEST(Frb1Distance, HasDeltasApplied) {
  Flc1DistanceParams p;
  p.near_delta = 1;
  p.mid_delta = 0;
  p.far_delta = -1;
  const auto t = frb1_distance_consequents(p);
  ASSERT_EQ(t.size(), 63u);
  // Sl B1 base is Cv3 (the voice column of Table 1).
  EXPECT_EQ(t[0], "Cv4");  // Near: +1
  EXPECT_EQ(t[1], "Cv3");  // Middle
  EXPECT_EQ(t[2], "Cv2");  // Far: -1
  // St base 9 saturates at Cv9 for Near.
  EXPECT_EQ(t[9], "Cv9");  // Sl St Ne (9+1 clamped)
}

TEST(Frb1Distance, ClampsToValidLevels) {
  Flc1DistanceParams p;
  p.near_delta = 8;
  p.far_delta = -8;
  const auto t = frb1_distance_consequents(p);
  for (std::size_t i = 0; i < t.size(); ++i) {
    const int level = t[i].back() - '0';
    EXPECT_GE(level, 1);
    EXPECT_LE(level, 9);
  }
}

// --- membership geometry (Figs. 5-6) ----------------------------------------

TEST(Flc1Memberships, SpeedTermsMatchFig5a) {
  const auto sp = make_speed_variable();
  EXPECT_DOUBLE_EQ(sp.grade(sp.term_index("Sl"), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sp.grade(sp.term_index("Sl"), 30.0), 0.5);
  EXPECT_DOUBLE_EQ(sp.grade(sp.term_index("Sl"), 60.0), 0.0);
  EXPECT_DOUBLE_EQ(sp.grade(sp.term_index("Mi"), 60.0), 1.0);
  EXPECT_DOUBLE_EQ(sp.grade(sp.term_index("Mi"), 0.0), 0.0);
  EXPECT_DOUBLE_EQ(sp.grade(sp.term_index("Fa"), 120.0), 1.0);
  EXPECT_DOUBLE_EQ(sp.grade(sp.term_index("Fa"), 90.0), 0.5);
  EXPECT_DOUBLE_EQ(sp.grade(sp.term_index("Fa"), 60.0), 0.0);
}

TEST(Flc1Memberships, AngleTermsMatchFig5b) {
  const auto an = make_angle_variable();
  EXPECT_DOUBLE_EQ(an.grade(an.term_index("St"), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(an.grade(an.term_index("St"), 45.0), 0.0);
  EXPECT_DOUBLE_EQ(an.grade(an.term_index("R1"), 45.0), 1.0);
  EXPECT_DOUBLE_EQ(an.grade(an.term_index("R2"), 90.0), 1.0);
  EXPECT_DOUBLE_EQ(an.grade(an.term_index("B2"), 135.0), 1.0);
  EXPECT_DOUBLE_EQ(an.grade(an.term_index("B2"), 180.0), 1.0);
  EXPECT_DOUBLE_EQ(an.grade(an.term_index("B1"), -180.0), 1.0);
  EXPECT_DOUBLE_EQ(an.grade(an.term_index("B1"), -135.0), 1.0);
  EXPECT_DOUBLE_EQ(an.grade(an.term_index("B1"), -90.0), 0.0);
  EXPECT_DOUBLE_EQ(an.grade(an.term_index("L1"), -90.0), 1.0);
  EXPECT_DOUBLE_EQ(an.grade(an.term_index("L2"), -45.0), 1.0);
}

TEST(Flc1Memberships, ServiceRequestTermsMatchFig5c) {
  const auto sr = make_service_request_variable();
  // The paper's request sizes: text=1, voice=5, video=10 BU.
  EXPECT_DOUBLE_EQ(sr.grade(sr.term_index("Sm"), 1.0), 0.8);
  EXPECT_DOUBLE_EQ(sr.grade(sr.term_index("Me"), 5.0), 1.0);
  EXPECT_DOUBLE_EQ(sr.grade(sr.term_index("Bi"), 10.0), 1.0);
  EXPECT_DOUBLE_EQ(sr.grade(sr.term_index("Sm"), 5.0), 0.0);
  EXPECT_DOUBLE_EQ(sr.grade(sr.term_index("Bi"), 5.0), 0.0);
}

TEST(Flc1Memberships, CorrectionOutputHas9UniformTerms) {
  const auto cv = make_correction_output_variable();
  EXPECT_EQ(cv.term_count(), 9u);
  EXPECT_DOUBLE_EQ(cv.grade(0, 0.0), 1.0);                 // Cv1 shoulder
  EXPECT_DOUBLE_EQ(cv.grade(4, 0.5), 1.0);                 // Cv5 at centre
  EXPECT_DOUBLE_EQ(cv.grade(8, 1.0), 1.0);                 // Cv9 shoulder
  EXPECT_NEAR(cv.grade(4, 0.5 + 0.125), 0.0, 1e-12);       // width 1/8
}

TEST(Flc2Memberships, MatchFig6) {
  const auto cv = make_correction_input_variable();
  EXPECT_DOUBLE_EQ(cv.grade(cv.term_index("Bd"), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(cv.grade(cv.term_index("No"), 0.5), 1.0);
  EXPECT_DOUBLE_EQ(cv.grade(cv.term_index("Go"), 1.0), 1.0);
  EXPECT_DOUBLE_EQ(cv.grade(cv.term_index("Bd"), 0.5), 0.0);

  const auto rq = make_request_type_variable();
  EXPECT_DOUBLE_EQ(rq.grade(rq.term_index("Tx"), 1.0), 0.8);
  EXPECT_DOUBLE_EQ(rq.grade(rq.term_index("Vo"), 5.0), 1.0);
  EXPECT_DOUBLE_EQ(rq.grade(rq.term_index("Vi"), 10.0), 1.0);

  const auto cs = make_counter_state_variable();
  EXPECT_DOUBLE_EQ(cs.grade(cs.term_index("Sa"), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(cs.grade(cs.term_index("Md"), 20.0), 1.0);
  EXPECT_DOUBLE_EQ(cs.grade(cs.term_index("Fu"), 40.0), 1.0);
  EXPECT_DOUBLE_EQ(cs.grade(cs.term_index("Sa"), 20.0), 0.0);

  const auto ar = make_accept_reject_variable();
  EXPECT_DOUBLE_EQ(ar.grade(ar.term_index("R"), -1.0), 1.0);
  EXPECT_DOUBLE_EQ(ar.grade(ar.term_index("R"), -0.6), 1.0);
  EXPECT_DOUBLE_EQ(ar.grade(ar.term_index("WR"), -0.3), 1.0);
  EXPECT_DOUBLE_EQ(ar.grade(ar.term_index("NRNA"), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ar.grade(ar.term_index("WA"), 0.3), 1.0);
  EXPECT_DOUBLE_EQ(ar.grade(ar.term_index("A"), 0.6), 1.0);
  EXPECT_DOUBLE_EQ(ar.grade(ar.term_index("A"), 1.0), 1.0);
}

// --- controller behaviour ------------------------------------------------------

TEST(Flc1, StraightFastGetsTopCorrection) {
  const auto flc1 = make_flc1();
  // Fa St (any Sr) -> Cv9: crisp output near the top of [0,1].
  EXPECT_GT(flc1->evaluate({120.0, 0.0, 5.0}), 0.85);
}

TEST(Flc1, BackwardGetsBottomCorrection) {
  const auto flc1 = make_flc1();
  EXPECT_LT(flc1->evaluate({120.0, 180.0, 1.0}), 0.2);
  EXPECT_LT(flc1->evaluate({60.0, -180.0, 1.0}), 0.2);
}

TEST(Flc1, MediumServiceBeatsSmallOffStraight) {
  // Table 1 gives Me higher consequents than Sm in the off-straight
  // columns (e.g. Sl L1: Cv4 vs Cv1).
  const auto flc1 = make_flc1();
  EXPECT_GT(flc1->evaluate({30.0, -90.0, 5.0}),
            flc1->evaluate({30.0, -90.0, 1.0}));
}

TEST(Flc2, EmptyCellAcceptsEverything) {
  const auto flc2 = make_flc2();
  for (double cv : {0.1, 0.5, 0.9})
    for (double rq : {1.0, 5.0, 10.0})
      EXPECT_GT(flc2->evaluate({cv, rq, 0.0}), 0.15)
          << "cv=" << cv << " rq=" << rq;
}

TEST(Flc2, FullCellRejectsVideo) {
  const auto flc2 = make_flc2();
  EXPECT_LT(flc2->evaluate({0.9, 10.0, 40.0}), -0.3);  // Go Vi Fu = R
  EXPECT_LT(flc2->evaluate({0.1, 10.0, 40.0}), 0.0);   // Bd Vi Fu = WR
}

TEST(Flc2, GoodCorrectionAcceptsDeeperIntoLoad) {
  const auto flc2 = make_flc2();
  // At half load, a Good-Cv text call scores higher than a Bad-Cv one.
  EXPECT_GT(flc2->evaluate({0.95, 1.0, 20.0}),
            flc2->evaluate({0.05, 1.0, 20.0}));
}

}  // namespace
}  // namespace facsp::cac
