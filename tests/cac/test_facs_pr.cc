// Tests of FACS-PR — the paper's future work (priority of requesting
// connections) implemented on top of FACS-P.
#include "cac/facs_pr.h"

#include <gtest/gtest.h>

#include "cellular/basestation.h"
#include "common/error.h"

namespace facsp::cac {
namespace {

using cellular::BaseStation;
using cellular::Connection;
using cellular::HexCoord;
using cellular::Point;
using cellular::RequestKind;
using cellular::ServiceClass;
using cellular::UserPriority;

AdmissionRequest request(cellular::ConnectionId id, ServiceClass svc,
                         UserPriority prio, double speed = 60.0,
                         double angle = 30.0) {
  AdmissionRequest req;
  req.id = id;
  req.service = svc;
  req.bandwidth = cellular::service_bandwidth(svc);
  req.priority = prio;
  req.speed_kmh = speed;
  req.angle_deg = angle;
  return req;
}

struct PrFixture : ::testing::Test {
  BaseStation bs{0, HexCoord{0, 0}, Point{0, 0}, 40.0};
  FacsPrPolicy pr;

  /// Load the cell with RT traffic until the FACS-P score sits between the
  /// low- and high-priority thresholds (the discrimination window).
  void load_cell(int videos) {
    for (int i = 0; i < videos; ++i) {
      auto req = request(1000 + i, ServiceClass::kVideo,
                         UserPriority::kNormal, 90.0, 0.0);
      Connection c;
      c.id = req.id;
      c.service = req.service;
      c.bandwidth = req.bandwidth;
      ASSERT_TRUE(bs.allocate(c, 0.0));
      pr.on_admitted(req, bs);
    }
  }
};

TEST_F(PrFixture, ThresholdsOrderedByPriority) {
  EXPECT_GT(pr.threshold_for(UserPriority::kLow),
            pr.threshold_for(UserPriority::kNormal));
  EXPECT_GT(pr.threshold_for(UserPriority::kNormal),
            pr.threshold_for(UserPriority::kHigh));
}

TEST_F(PrFixture, SameScoreDifferentDecisions) {
  // Find an operating point whose score falls between the high and low
  // thresholds, then verify the three priorities split exactly there.
  load_cell(2);
  bool found_discrimination = false;
  for (double angle : {0.0, 20.0, 40.0, 60.0, 80.0}) {
    const auto probe =
        request(1, ServiceClass::kVoice, UserPriority::kNormal, 60.0, angle);
    const double score = pr.decide(probe, bs).score;
    if (score > pr.threshold_for(UserPriority::kHigh) &&
        score <= pr.threshold_for(UserPriority::kLow)) {
      found_discrimination = true;
      auto lo = probe, hi = probe;
      lo.priority = UserPriority::kLow;
      hi.priority = UserPriority::kHigh;
      EXPECT_TRUE(pr.decide(hi, bs).admitted) << "angle=" << angle;
      EXPECT_FALSE(pr.decide(lo, bs).admitted) << "angle=" << angle;
      // The crisp score itself is priority-independent (the FLCs don't
      // see the priority; only the resolution differs).
      EXPECT_DOUBLE_EQ(pr.decide(lo, bs).score, pr.decide(hi, bs).score);
    }
  }
  EXPECT_TRUE(found_discrimination);
}

TEST_F(PrFixture, HighPriorityNeverBypassesPhysicalCapacity) {
  load_cell(4);  // 40/40 BU
  const auto d = pr.decide(
      request(1, ServiceClass::kText, UserPriority::kHigh), bs);
  EXPECT_FALSE(d.admitted);
}

TEST_F(PrFixture, HandoffsUntouchedByRequestingPriority) {
  load_cell(2);
  auto ho = request(7, ServiceClass::kVoice, UserPriority::kLow, 60.0, 20.0);
  ho.kind = RequestKind::kHandoff;
  auto ho_high = ho;
  ho_high.priority = UserPriority::kHigh;
  const auto a = pr.decide(ho, bs);
  const auto b = pr.decide(ho_high, bs);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_DOUBLE_EQ(a.score, b.score);
}

TEST_F(PrFixture, NormalPriorityMatchesPlainFacsP) {
  FacsPPolicy plain;
  load_cell(2);
  for (double angle : {0.0, 45.0, 90.0}) {
    const auto probe =
        request(1, ServiceClass::kVoice, UserPriority::kNormal, 60.0, angle);
    // Mirror the ledger state into the plain policy.
    FacsPPolicy fresh;
    // Scores agree because FACS-PR delegates the cascade; decisions agree
    // at normal_extra == 0.
    const auto a = pr.decide(probe, bs);
    EXPECT_EQ(a.admitted, a.score > pr.threshold_for(UserPriority::kNormal) &&
                              bs.can_fit(probe.bandwidth));
  }
}

TEST_F(PrFixture, EmptyCellAcceptsEveryPriority) {
  for (UserPriority p : cellular::kAllPriorities) {
    EXPECT_TRUE(pr.decide(request(1, ServiceClass::kVoice, p, 80.0, 0.0), bs)
                    .admitted)
        << priority_name(p);
  }
}

TEST(FacsPrConfig, RejectsInvertedExtras) {
  FacsPrConfig bad;
  bad.low_extra = -0.2;  // low priority easier than normal: nonsense
  EXPECT_THROW(FacsPrPolicy{bad}, facsp::ConfigError);
  bad = {};
  bad.high_extra = +0.5;
  EXPECT_THROW(FacsPrPolicy{bad}, facsp::ConfigError);
}

TEST(FacsPrPriorityNames, RoundTrip) {
  EXPECT_EQ(cellular::priority_name(UserPriority::kLow), "low");
  EXPECT_EQ(cellular::priority_name(UserPriority::kNormal), "normal");
  EXPECT_EQ(cellular::priority_name(UserPriority::kHigh), "high");
}

}  // namespace
}  // namespace facsp::cac
