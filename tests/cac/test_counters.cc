#include "cac/counters.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace facsp::cac {
namespace {

using cellular::ServiceClass;

TEST(Counters, StartsEmpty) {
  DifferentiatedCounters c;
  EXPECT_DOUBLE_EQ(c.rt_bandwidth(), 0.0);
  EXPECT_DOUBLE_EQ(c.nrt_bandwidth(), 0.0);
  EXPECT_EQ(c.rt_count(), 0u);
  EXPECT_EQ(c.nrt_count(), 0u);
  EXPECT_DOUBLE_EQ(c.effective_occupancy(), 0.0);
}

TEST(Counters, ClassifiesServicesIntoRtcNrtc) {
  DifferentiatedCounters c;
  c.add(1, ServiceClass::kText, 1.0, false);
  c.add(2, ServiceClass::kVoice, 5.0, false);
  c.add(3, ServiceClass::kVideo, 10.0, false);
  EXPECT_DOUBLE_EQ(c.nrt_bandwidth(), 1.0);
  EXPECT_DOUBLE_EQ(c.rt_bandwidth(), 15.0);
  EXPECT_EQ(c.nrt_count(), 1u);
  EXPECT_EQ(c.rt_count(), 2u);
  EXPECT_DOUBLE_EQ(c.total_bandwidth(), 16.0);
}

TEST(Counters, EffectiveOccupancyAppliesWeights) {
  PriorityWeights w;
  w.real_time = 2.0;
  w.non_real_time = 1.0;
  w.handoff_bonus = 1.5;
  DifferentiatedCounters c(w);
  c.add(1, ServiceClass::kText, 1.0, false);    // 1.0
  c.add(2, ServiceClass::kVoice, 5.0, false);   // 10.0
  c.add(3, ServiceClass::kVideo, 10.0, true);   // 2.0 * 1.5 * 10 = 30.0
  EXPECT_DOUBLE_EQ(c.effective_occupancy(), 41.0);
}

TEST(Counters, EffectiveAtLeastPhysicalWhenWeightsGeOne) {
  DifferentiatedCounters c;  // defaults >= 1
  c.add(1, ServiceClass::kVoice, 5.0, false);
  c.add(2, ServiceClass::kText, 1.0, true);
  EXPECT_GE(c.effective_occupancy(), c.total_bandwidth());
}

TEST(Counters, RemoveRestoresState) {
  DifferentiatedCounters c;
  c.add(1, ServiceClass::kVideo, 10.0, true);
  c.add(2, ServiceClass::kText, 1.0, false);
  c.remove(1);
  EXPECT_DOUBLE_EQ(c.rt_bandwidth(), 0.0);
  EXPECT_DOUBLE_EQ(c.nrt_bandwidth(), 1.0);
  c.remove(2);
  EXPECT_DOUBLE_EQ(c.effective_occupancy(), 0.0);
  EXPECT_EQ(c.rt_count(), 0u);
  EXPECT_EQ(c.nrt_count(), 0u);
}

TEST(Counters, RemoveUnknownIdIsIgnored) {
  DifferentiatedCounters c;
  c.add(1, ServiceClass::kText, 1.0, false);
  EXPECT_NO_THROW(c.remove(999));
  EXPECT_DOUBLE_EQ(c.total_bandwidth(), 1.0);
}

TEST(Counters, DoubleAddThrows) {
  DifferentiatedCounters c;
  c.add(1, ServiceClass::kText, 1.0, false);
  EXPECT_THROW(c.add(1, ServiceClass::kText, 1.0, false),
               facsp::ContractViolation);
}

TEST(Counters, ClearResets) {
  DifferentiatedCounters c;
  c.add(1, ServiceClass::kVideo, 10.0, true);
  c.clear();
  EXPECT_DOUBLE_EQ(c.effective_occupancy(), 0.0);
  // Same id can be added again after clear.
  EXPECT_NO_THROW(c.add(1, ServiceClass::kVideo, 10.0, false));
}

TEST(Counters, WeightsBelowOneRejected) {
  PriorityWeights w;
  w.real_time = 0.5;
  EXPECT_THROW(DifferentiatedCounters{w}, facsp::ConfigError);
  w = {};
  w.handoff_bonus = 0.9;
  EXPECT_THROW(DifferentiatedCounters{w}, facsp::ConfigError);
}

TEST(Counters, ChurnLeavesNoDrift) {
  DifferentiatedCounters c;
  for (int i = 0; i < 500; ++i) {
    c.add(i, i % 2 ? ServiceClass::kVoice : ServiceClass::kText,
          i % 2 ? 5.0 : 1.0, i % 3 == 0);
  }
  for (int i = 0; i < 500; ++i) c.remove(i);
  EXPECT_DOUBLE_EQ(c.effective_occupancy(), 0.0);
  EXPECT_DOUBLE_EQ(c.total_bandwidth(), 0.0);
}

}  // namespace
}  // namespace facsp::cac
