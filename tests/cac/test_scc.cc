#include "cac/scc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cellular/network.h"
#include "common/error.h"

namespace facsp::cac {
namespace {

using cellular::CellularNetwork;
using cellular::HexCoord;
using cellular::MobileState;
using cellular::RequestKind;
using cellular::ServiceClass;

struct SccFixture : ::testing::Test {
  CellularNetwork net{2, 2000.0, 40.0};
  SccConfig cfg;

  SccFixture() {
    cfg.mean_holding_s = 300.0;
  }

  AdmissionRequest request(cellular::ConnectionId id, ServiceClass svc,
                           double speed = 60.0, double heading = 0.0,
                           RequestKind kind = RequestKind::kNew) {
    AdmissionRequest req;
    req.id = id;
    req.service = svc;
    req.bandwidth = cellular::service_bandwidth(svc);
    req.kind = kind;
    req.speed_kmh = speed;
    req.mobile = MobileState{{0.0, 0.0}, speed, heading};
    return req;
  }
};

TEST_F(SccFixture, EmptyNetworkAcceptsTextAndVoice) {
  SccPolicy scc(net, cfg);
  EXPECT_TRUE(scc.decide(request(1, ServiceClass::kText), net.center())
                  .admitted);
  EXPECT_TRUE(scc.decide(request(2, ServiceClass::kVoice), net.center())
                  .admitted);
}

TEST_F(SccFixture, CellProbabilitySumsToAtMostOneAcrossCells) {
  SccPolicy scc(net, cfg);
  const MobileState st{{0.0, 0.0}, 60.0, 30.0};
  for (double tau : {30.0, 60.0, 120.0, 180.0}) {
    double total = 0.0;
    for (const auto& cell : cellular::hex_disc({0, 0}, 2))
      total += scc.cell_probability(st, cell, tau);
    EXPECT_LE(total, 1.0 + 1e-9) << "tau=" << tau;
    EXPECT_GE(total, 0.0);
  }
}

TEST_F(SccFixture, StationaryMobileStaysInItsCell) {
  SccPolicy scc(net, cfg);
  const MobileState st{{0.0, 0.0}, 0.0, 0.0};
  EXPECT_NEAR(scc.cell_probability(st, {0, 0}, 60.0), 1.0, 1e-9);
  EXPECT_NEAR(scc.cell_probability(st, {1, 0}, 60.0), 0.0, 1e-9);
}

TEST_F(SccFixture, FastMobileShadowMovesToNextCell) {
  SccPolicy scc(net, cfg);
  // 120 km/h heading east: after 120 s it has moved ~4 km = past the
  // eastern neighbour's centre (sqrt(3)*2000 ~ 3.46 km).
  const MobileState st{{0.0, 0.0}, 120.0, 0.0};
  const double p_home = scc.cell_probability(st, {0, 0}, 120.0);
  const double p_east = scc.cell_probability(st, {1, 0}, 120.0);
  EXPECT_LT(p_home, 0.3);
  EXPECT_GT(p_east, 0.5);
}

TEST_F(SccFixture, ProjectedDemandAccumulatesActives) {
  SccPolicy scc(net, cfg);
  EXPECT_DOUBLE_EQ(scc.projected_demand({0, 0}, 60.0), 0.0);
  auto req = request(1, ServiceClass::kVideo, 0.0);  // stationary video
  scc.on_admitted(req, net.center());
  EXPECT_EQ(scc.active_count(), 1u);
  const double d = scc.projected_demand({0, 0}, 60.0);
  // Stationary -> stays; demand = bw, possibly survival-discounted.
  const double surv = cfg.discount_survival
                          ? std::exp(-60.0 / cfg.mean_holding_s)
                          : 1.0;
  EXPECT_NEAR(d, 10.0 * surv, 1e-6);
}

TEST_F(SccFixture, ReleasedActivesStopCastingShadows) {
  SccPolicy scc(net, cfg);
  auto req = request(1, ServiceClass::kVideo, 0.0);
  scc.on_admitted(req, net.center());
  scc.on_released(1, ServiceClass::kVideo, net.center());
  EXPECT_EQ(scc.active_count(), 0u);
  EXPECT_DOUBLE_EQ(scc.projected_demand({0, 0}, 60.0), 0.0);
}

TEST_F(SccFixture, MobilityUpdatesMoveTheShadow) {
  SccPolicy scc(net, cfg);
  auto req = request(1, ServiceClass::kVideo, 0.0);
  scc.on_admitted(req, net.center());
  // Teleport the active into the eastern neighbour.
  const auto east_center = net.layout().center({1, 0});
  scc.on_mobility(1, MobileState{east_center, 0.0, 0.0}, 100.0);
  EXPECT_NEAR(scc.projected_demand({0, 0}, 60.0), 0.0, 1e-9);
  EXPECT_GT(scc.projected_demand({1, 0}, 60.0), 0.0);
}

TEST_F(SccFixture, ReservationRejectsVideoUnderLoad) {
  // With the default 0.22 threshold (8.8 BU future headroom), a video call
  // cannot get reservations once meaningful demand is projected.
  SccPolicy scc(net, cfg);
  for (cellular::ConnectionId id = 1; id <= 1; ++id) {
    auto req = request(id, ServiceClass::kVoice, 0.0);
    // Physically allocate too, so decide() sees the BS load.
    cellular::Connection c;
    c.id = id;
    c.service = ServiceClass::kVoice;
    c.bandwidth = 5.0;
    ASSERT_TRUE(net.center().allocate(c, 0.0));
    scc.on_admitted(req, net.center());
  }
  const auto d = scc.decide(request(10, ServiceClass::kVideo, 0.0),
                            net.center());
  EXPECT_FALSE(d.admitted);
  // A text call still fits.
  EXPECT_TRUE(scc.decide(request(11, ServiceClass::kText, 0.0), net.center())
                  .admitted);
}

TEST_F(SccFixture, HandoffRequesterNotDoubleCounted) {
  SccPolicy scc(net, cfg);
  auto req = request(1, ServiceClass::kVideo, 0.0);
  scc.on_admitted(req, net.center());
  // The same connection handing off into its own cell region must not be
  // rejected because of its *own* shadow.
  auto ho = request(1, ServiceClass::kVideo, 0.0, 0.0, RequestKind::kHandoff);
  const auto with_self = scc.decide(ho, net.center());
  scc.on_released(1, ServiceClass::kVideo, net.center());
  auto fresh = request(1, ServiceClass::kVideo, 0.0, 0.0,
                       RequestKind::kHandoff);
  const auto without_self = scc.decide(fresh, net.center());
  EXPECT_NEAR(with_self.score, without_self.score, 1e-9);
}

TEST_F(SccFixture, ResetDropsAllState) {
  SccPolicy scc(net, cfg);
  scc.on_admitted(request(1, ServiceClass::kVideo), net.center());
  scc.reset();
  EXPECT_EQ(scc.active_count(), 0u);
}

TEST_F(SccFixture, PhysicallyFullCellRejects) {
  SccPolicy scc(net, cfg);
  for (cellular::ConnectionId id = 1; id <= 4; ++id) {
    cellular::Connection c;
    c.id = id;
    c.service = ServiceClass::kVideo;
    c.bandwidth = 10.0;
    ASSERT_TRUE(net.center().allocate(c, 0.0));
  }
  const auto d = scc.decide(request(9, ServiceClass::kText), net.center());
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.verdict, Verdict::kReject);
}

TEST(SccConfig, Validation) {
  CellularNetwork net(1, 1000.0, 40.0);
  SccConfig bad;
  bad.windows = 0;
  EXPECT_THROW(SccPolicy(net, bad), facsp::ConfigError);
  bad = {};
  bad.window_s = 0.0;
  EXPECT_THROW(SccPolicy(net, bad), facsp::ConfigError);
  bad = {};
  bad.admit_threshold = 0.0;
  EXPECT_THROW(SccPolicy(net, bad), facsp::ConfigError);
  bad = {};
  bad.admit_threshold = 1.2;
  EXPECT_THROW(SccPolicy(net, bad), facsp::ConfigError);
  bad = {};
  bad.cluster_radius = -1;
  EXPECT_THROW(SccPolicy(net, bad), facsp::ConfigError);
}

}  // namespace
}  // namespace facsp::cac
