#include "cac/threshold.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace facsp::cac {
namespace {

using cellular::BaseStation;
using cellular::Connection;
using cellular::HexCoord;
using cellular::Point;
using cellular::RequestKind;
using cellular::ServiceClass;

AdmissionRequest request(cellular::ConnectionId id, ServiceClass svc) {
  AdmissionRequest req;
  req.id = id;
  req.service = svc;
  req.bandwidth = cellular::service_bandwidth(svc);
  req.kind = RequestKind::kNew;
  return req;
}

struct CpFixture : ::testing::Test {
  BaseStation bs{0, HexCoord{0, 0}, Point{0, 0}, 40.0};
  CompletePartitioningPolicy cp{Partition{10.0, 15.0, 15.0}};

  void admit(const AdmissionRequest& req) {
    Connection c;
    c.id = req.id;
    c.service = req.service;
    c.bandwidth = req.bandwidth;
    ASSERT_TRUE(bs.allocate(c, 0.0));
    cp.on_admitted(req, bs);
  }
};

TEST_F(CpFixture, AdmitsWithinQuota) {
  EXPECT_TRUE(cp.decide(request(1, ServiceClass::kVideo), bs).admitted);
  EXPECT_TRUE(cp.decide(request(2, ServiceClass::kVoice), bs).admitted);
  EXPECT_TRUE(cp.decide(request(3, ServiceClass::kText), bs).admitted);
}

TEST_F(CpFixture, RejectsBeyondClassQuota) {
  admit(request(1, ServiceClass::kVideo));  // video used: 10/15
  EXPECT_FALSE(cp.decide(request(2, ServiceClass::kVideo), bs).admitted);
  // Other classes unaffected even though the cell has room.
  EXPECT_TRUE(cp.decide(request(3, ServiceClass::kVoice), bs).admitted);
  EXPECT_TRUE(cp.decide(request(4, ServiceClass::kText), bs).admitted);
}

TEST_F(CpFixture, QuotaFreedOnRelease) {
  admit(request(1, ServiceClass::kVideo));
  EXPECT_FALSE(cp.decide(request(2, ServiceClass::kVideo), bs).admitted);
  bs.release(1, 1.0);
  cp.on_released(1, ServiceClass::kVideo, bs);
  EXPECT_TRUE(cp.decide(request(2, ServiceClass::kVideo), bs).admitted);
  EXPECT_DOUBLE_EQ(cp.used(bs.id(), ServiceClass::kVideo), 0.0);
}

TEST_F(CpFixture, TracksUsagePerClass) {
  admit(request(1, ServiceClass::kText));
  admit(request(2, ServiceClass::kText));
  admit(request(3, ServiceClass::kVoice));
  EXPECT_DOUBLE_EQ(cp.used(bs.id(), ServiceClass::kText), 2.0);
  EXPECT_DOUBLE_EQ(cp.used(bs.id(), ServiceClass::kVoice), 5.0);
  EXPECT_DOUBLE_EQ(cp.used(bs.id(), ServiceClass::kVideo), 0.0);
}

TEST_F(CpFixture, TextQuotaExhaustion) {
  for (cellular::ConnectionId id = 1; id <= 10; ++id)
    admit(request(id, ServiceClass::kText));
  EXPECT_FALSE(cp.decide(request(99, ServiceClass::kText), bs).admitted);
}

TEST_F(CpFixture, PhysicalCapacityStillBinds) {
  // Partition sums to the capacity here, but shrink the cell: quotas alone
  // must not admit beyond physical room.
  BaseStation tiny(1, HexCoord{0, 0}, Point{0, 0}, 8.0);
  CompletePartitioningPolicy policy{Partition{10.0, 15.0, 15.0}};
  EXPECT_FALSE(
      policy.decide(request(1, ServiceClass::kVideo), tiny).admitted);
  EXPECT_TRUE(policy.decide(request(2, ServiceClass::kVoice), tiny).admitted);
}

TEST_F(CpFixture, ResetClearsLedger) {
  admit(request(1, ServiceClass::kVideo));
  cp.reset();
  EXPECT_DOUBLE_EQ(cp.used(bs.id(), ServiceClass::kVideo), 0.0);
}

TEST_F(CpFixture, UnknownReleaseIgnored) {
  EXPECT_NO_THROW(cp.on_released(999, ServiceClass::kText, bs));
}

TEST(Partition, Validation) {
  EXPECT_THROW(CompletePartitioningPolicy(Partition{-1.0, 1.0, 1.0}),
               facsp::ConfigError);
  EXPECT_THROW(CompletePartitioningPolicy(Partition{0.0, 0.0, 0.0}),
               facsp::ConfigError);
  EXPECT_NO_THROW(CompletePartitioningPolicy(Partition{0.0, 0.0, 5.0}));
}

TEST(Partition, QuotaLookup) {
  const Partition p{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(p.quota(ServiceClass::kText), 1.0);
  EXPECT_DOUBLE_EQ(p.quota(ServiceClass::kVoice), 2.0);
  EXPECT_DOUBLE_EQ(p.quota(ServiceClass::kVideo), 3.0);
  EXPECT_DOUBLE_EQ(p.total(), 6.0);
}

}  // namespace
}  // namespace facsp::cac
