// The observability layer's central contract: enabling metrics + tracing
// changes NOTHING about simulation results.  Telemetry CSVs and sweep
// ResultTables must be byte-identical with observability on vs off, at
// 1 thread and at 4 — instrumentation only reads clocks and writes to its
// own buffers, never into RNG streams or simulation state.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/report.h"
#include "core/sweep.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/decision_loop.h"
#include "workload/catalog.h"

namespace facsp {
namespace {

class ObsDeterminism : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::Tracer::clear();
    obs::set_metrics_enabled(false);
  }
  static void enable_observability() {
    obs::set_metrics_enabled(true);
    obs::Tracer::start();
  }
};

std::string server_telemetry(int threads) {
  serve::ServerConfig config;
  config.scenario = workload::catalog_scenario("paper-grid");
  config.scenario.seed = 23;
  config.duration_s = 2;
  config.requests_per_s = 300;
  config.shards = 2;
  config.threads = threads;
  serve::DecisionServer server(config);
  const serve::ServerResult result = server.run();
  std::ostringstream os;
  serve::write_telemetry_csv(result, os);
  return os.str();
}

std::string sweep_table(int threads) {
  core::SweepSpec spec;
  spec.base = workload::catalog_scenario("paper-grid");
  spec.base.seed = 5;
  spec.policy_axis({"facs-p", "gc"});
  spec.n_axis({20});
  spec.replications = 2;
  spec.threads = threads;
  const core::SweepRunner runner(std::move(spec));
  const core::ResultTable table = runner.run(nullptr);
  std::ostringstream os;
  core::write_result_csv(table, os);
  return os.str();
}

TEST_F(ObsDeterminism, ServerTelemetryBytesUnchangedByObservability) {
  for (const int threads : {1, 4}) {
    obs::Tracer::clear();
    obs::set_metrics_enabled(false);
    const std::string off = server_telemetry(threads);
    enable_observability();
    const std::string on = server_telemetry(threads);
    EXPECT_EQ(off, on) << "threads=" << threads;
    EXPECT_FALSE(off.empty());
    // And observability actually observed something — the runs above must
    // not be vacuous.
    EXPECT_GT(obs::Tracer::recorded_events(), 0u) << "threads=" << threads;
  }
}

TEST_F(ObsDeterminism, SweepResultTableBytesUnchangedByObservability) {
  for (const int threads : {1, 4}) {
    obs::Tracer::clear();
    obs::set_metrics_enabled(false);
    const std::string off = sweep_table(threads);
    enable_observability();
    const std::string on = sweep_table(threads);
    EXPECT_EQ(off, on) << "threads=" << threads;
    EXPECT_FALSE(off.empty());
    EXPECT_GT(obs::Tracer::recorded_events(), 0u) << "threads=" << threads;
  }
}

TEST_F(ObsDeterminism, SweepMetricsCountCellsExactly) {
  enable_observability();
  obs::Registry::instance().reset_values();
  (void)sweep_table(1);
  // 2 policies x 1 n x 2 replications = 4 cells.
  EXPECT_EQ(obs::Registry::instance().counter("sweep.cells_done").value(),
            4u);
}

}  // namespace
}  // namespace facsp
