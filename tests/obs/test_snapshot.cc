// SnapshotWriter: interval-anchored flushing, tmp+rename atomicity
// (observable as: the target never holds a partial render), and the
// in-memory latest() buffer the scrape endpoint serves.
#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.h"
#include "obs/metrics.h"

namespace facsp::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset_values();
    path_ = ::testing::TempDir() + "snapshot_test.csv";
    std::remove(path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  std::string path_;
};

TEST_F(SnapshotTest, IntervalIsAnchoredAtSecondZero) {
  SnapshotWriter w(path_, /*interval_s=*/5, Registry::instance());
  w.on_second(0);
  w.on_second(3);
  EXPECT_EQ(w.flush_count(), 0u);
  w.on_second(4);  // first interval [0, 4] complete
  EXPECT_EQ(w.flush_count(), 1u);
  w.on_second(4);  // repeated second: no double flush
  EXPECT_EQ(w.flush_count(), 1u);
  w.on_second(9);
  EXPECT_EQ(w.flush_count(), 2u);
  w.on_second(10);
  EXPECT_EQ(w.flush_count(), 2u);
}

TEST_F(SnapshotTest, EveryIntervalFlushesWithIntervalOne) {
  SnapshotWriter w(path_, 1, Registry::instance());
  for (int s = 0; s < 4; ++s) w.on_second(s);
  EXPECT_EQ(w.flush_count(), 4u);
}

TEST_F(SnapshotTest, WritesRegistryCsvToDisk) {
  Registry::instance().counter("snap.test.events").add(7);
  SnapshotWriter w(path_, 1, Registry::instance());
  w.on_second(0);
  const std::string on_disk = slurp(path_);
  EXPECT_NE(on_disk.find("snap.test.events"), std::string::npos);
  EXPECT_EQ(on_disk, w.latest());
  // No leftover temp file after a successful rename.
  std::ifstream tmp(path_ + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST_F(SnapshotTest, LatestUpdatesWithoutAPath) {
  // Path-less mode: the scrape endpoint's configuration — memory only.
  Registry::instance().counter("snap.test.memonly").add(1);
  SnapshotWriter w("", 2, Registry::instance());
  EXPECT_TRUE(w.latest().empty());
  w.on_second(1);
  EXPECT_NE(w.latest().find("snap.test.memonly"), std::string::npos);
}

TEST_F(SnapshotTest, ExplicitFlushIsUnconditional) {
  SnapshotWriter w(path_, 1000, Registry::instance());
  w.on_second(3);  // far from an interval boundary
  EXPECT_EQ(w.flush_count(), 0u);
  w.flush();
  EXPECT_EQ(w.flush_count(), 1u);
  EXPECT_FALSE(slurp(path_).empty());
}

TEST_F(SnapshotTest, LaterFlushObservesNewValues) {
  Counter& c = Registry::instance().counter("snap.test.grows");
  SnapshotWriter w(path_, 1, Registry::instance());
  c.add(1);
  w.on_second(0);
  const std::string first = w.latest();
  c.add(41);
  w.on_second(1);
  EXPECT_NE(w.latest(), first);
  EXPECT_NE(w.latest().find("42"), std::string::npos);
}

TEST_F(SnapshotTest, RejectsNonPositiveInterval) {
  EXPECT_THROW(SnapshotWriter(path_, 0, Registry::instance()), ConfigError);
  EXPECT_THROW(SnapshotWriter(path_, -3, Registry::instance()), ConfigError);
}

}  // namespace
}  // namespace facsp::obs
