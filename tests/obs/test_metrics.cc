#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "serve/latency_histogram.h"

namespace facsp::obs {
namespace {

TEST(ObsRegistry, FindOrCreateReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.counter("test.a");
  Counter& b = reg.counter("test.a");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.size(), 1u);

  reg.gauge("test.g").set(-7);
  reg.histogram("test.h").record(42);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(ObsRegistry, KindMismatchAndEmptyNameThrow) {
  Registry reg;
  reg.counter("metric");
  EXPECT_THROW(reg.gauge("metric"), ConfigError);
  EXPECT_THROW(reg.histogram("metric"), ConfigError);
  EXPECT_THROW(reg.counter(""), ConfigError);
}

TEST(ObsRegistry, ResetValuesKeepsRegistrations) {
  Registry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.add(5);
  g.set(9);
  h.record(100);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(&c, &reg.counter("c"));
}

TEST(ObsRegistry, SnapshotsAreIndependentOfRegistrationOrder) {
  // Same metrics, same values, opposite registration order -> identical
  // bytes.  This is the determinism claim the CLI --metrics flag relies on.
  Registry forward, backward;
  const auto fill = [](Registry& reg, bool reversed) {
    const std::vector<std::string> counters = {"a.count", "z.count"};
    const std::vector<std::string> hists = {"a.ns", "z.ns"};
    for (std::size_t i = 0; i < counters.size(); ++i) {
      const std::size_t k = reversed ? counters.size() - 1 - i : i;
      reg.counter(counters[k]).add(10 + k);
      reg.histogram(hists[k]).record(100 * (k + 1));
    }
    reg.gauge("mid.gauge").set(-4);
  };
  fill(forward, false);
  fill(backward, true);

  std::ostringstream js_f, js_b, csv_f, csv_b;
  forward.write_json(js_f);
  backward.write_json(js_b);
  forward.write_csv(csv_f);
  backward.write_csv(csv_b);
  EXPECT_EQ(js_f.str(), js_b.str());
  EXPECT_EQ(csv_f.str(), csv_b.str());
  EXPECT_EQ(csv_f.str().find("kind,name,field,value\n"), 0u);
  EXPECT_NE(js_f.str().find("\"counters\""), std::string::npos);
  EXPECT_NE(js_f.str().find("\"mid.gauge\": -4"), std::string::npos);
}

TEST(ObsHistogram, CountSumMeanMaxAreExact) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty must not throw
  EXPECT_EQ(h.mean(), 0.0);
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(ObsHistogram, GeometryMatchesServeLatencyHistogram) {
  // The obs histogram must reuse serve::LatencyHistogram's bucket layout
  // verbatim: identical bucket count and identical quantised percentiles
  // for identical data, across exact, log-linear and saturated ranges.
  static_assert(Histogram::kBucketCount ==
                serve::LatencyHistogram::kBucketCount);
  Histogram obs_hist;
  serve::LatencyHistogram serve_hist;
  std::vector<std::uint64_t> samples;
  for (std::uint64_t v = 0; v < 64; ++v) samples.push_back(v);
  for (std::uint64_t v = 1; v < (1ull << 42); v = v * 3 + 7)
    samples.push_back(v);
  for (const std::uint64_t v : samples) {
    obs_hist.record(v);
    serve_hist.record(v);
  }
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0})
    EXPECT_EQ(obs_hist.percentile(q), serve_hist.percentile_ns(q)) << q;
  EXPECT_EQ(obs_hist.count(), serve_hist.count());
  EXPECT_EQ(obs_hist.max(), serve_hist.max_ns());
  EXPECT_EQ(obs_hist.sum(), serve_hist.sum_ns());
}

TEST(ObsMetrics, GlobalSwitchDefaultsOff) {
  EXPECT_FALSE(metrics_enabled());
  set_metrics_enabled(true);
  EXPECT_TRUE(metrics_enabled());
  set_metrics_enabled(false);
  EXPECT_FALSE(metrics_enabled());
}

TEST(ObsMetrics, LabeledBuildsSuffixedNames) {
  EXPECT_EQ(labeled("engine.shard_drain_ns", "shard", 3),
            "engine.shard_drain_ns{shard=3}");
  EXPECT_EQ(labeled("x", "k", 0), "x{k=0}");
  EXPECT_EQ(labeled("a.b", "cell", -7), "a.b{cell=-7}");
  // Labelled families are ordinary registry names: same-family entries sort
  // together (and deterministically) in snapshots because the prefix is
  // shared and the suffix orders lexicographically per value.
  Registry reg;
  reg.counter(labeled("f.ns", "shard", 1));
  reg.counter(labeled("f.ns", "shard", 0));
  std::ostringstream a;
  reg.write_csv(a);
  Registry reordered;
  reordered.counter(labeled("f.ns", "shard", 0));
  reordered.counter(labeled("f.ns", "shard", 1));
  std::ostringstream b;
  reordered.write_csv(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("f.ns{shard=0}"), std::string::npos);
}

}  // namespace
}  // namespace facsp::obs
