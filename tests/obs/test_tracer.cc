#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace facsp::obs {
namespace {

/// Every test leaves the global tracer disabled and empty — the suites
/// sharing this process (determinism tests in particular) depend on that.
class ObsTracer : public ::testing::Test {
 protected:
  void TearDown() override {
    Tracer::clear();
    set_metrics_enabled(false);
  }
};

std::string json_of_current_buffer() {
  std::ostringstream os;
  Tracer::write_json(os);
  return os.str();
}

TEST_F(ObsTracer, DisabledRecordingIsANoOp) {
  EXPECT_FALSE(Tracer::enabled());
  Tracer::record("cat", "name", 0, 10);
  { ScopedSpan span("cat", "scoped"); }
  Tracer::set_thread_name("ignored");
  EXPECT_EQ(Tracer::recorded_events(), 0u);
  EXPECT_EQ(Tracer::track_count(), 0u);
  const std::string json = json_of_current_buffer();
  EXPECT_EQ(json.find("scoped"), std::string::npos);
}

TEST_F(ObsTracer, NestedSpansRecordInnerFirst) {
  Tracer::start();
  {
    ScopedSpan outer("t", "outer");
    { ScopedSpan inner("t", "inner", 7); }
  }
  Tracer::stop();
  EXPECT_EQ(Tracer::recorded_events(), 2u);

  const std::string json = json_of_current_buffer();
  const std::size_t inner = json.find("\"inner\"");
  const std::size_t outer = json.find("\"outer\"");
  ASSERT_NE(inner, std::string::npos);
  ASSERT_NE(outer, std::string::npos);
  // Events are sorted by start time: the outer span opened first.
  EXPECT_LT(outer, inner);
  // The inner span carried its argument.
  EXPECT_NE(json.find("\"args\": {\"v\": 7}"), std::string::npos);
  // Perfetto essentials present.
  for (const char* key : {"\"traceEvents\"", "\"ph\": \"X\"", "\"ts\": ",
                          "\"dur\": ", "\"pid\": 1"})
    EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST_F(ObsTracer, RingBufferWrapsKeepingTheTail) {
  Tracer::start(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i)
    Tracer::record("t", i < 6 ? "old" : "new", static_cast<std::uint64_t>(i),
                   1);
  Tracer::stop();
  EXPECT_EQ(Tracer::recorded_events(), 10u);
  EXPECT_EQ(Tracer::buffered_events(), 4u);

  // Only the last 4 events (6..9, all named "new") survive the wrap.
  const std::string json = json_of_current_buffer();
  EXPECT_EQ(json.find("\"old\""), std::string::npos);
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"new\""); pos != std::string::npos;
       pos = json.find("\"new\"", pos + 1))
    ++count;
  EXPECT_EQ(count, 4u);
}

TEST_F(ObsTracer, StartDropsPreviousEventsAndRebasesOrigin) {
  Tracer::start();
  Tracer::record("t", "first-run", 0, 1);
  Tracer::start();
  EXPECT_EQ(Tracer::recorded_events(), 0u);
  Tracer::record("t", "second-run", 0, 1);
  Tracer::stop();
  const std::string json = json_of_current_buffer();
  EXPECT_EQ(json.find("first-run"), std::string::npos);
  EXPECT_NE(json.find("second-run"), std::string::npos);
}

TEST_F(ObsTracer, ThreadNamesBecomeMetadataEvents) {
  Tracer::start();
  Tracer::set_thread_name("main-thread");
  std::thread worker([] {
    Tracer::set_thread_name("worker-0");
    Tracer::record("t", "from-worker", 5, 1);
  });
  worker.join();
  Tracer::stop();
  EXPECT_EQ(Tracer::track_count(), 2u);

  const std::string json = json_of_current_buffer();
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("main-thread"), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
  EXPECT_NE(json.find("from-worker"), std::string::npos);
}

TEST_F(ObsTracer, TimestampsBeforeTheOriginClampToZero) {
  const Tracer::Clock::time_point before = Tracer::Clock::now();
  Tracer::start();
  EXPECT_EQ(Tracer::to_trace_ns(before), 0u);
  const Tracer::Clock::time_point after = Tracer::Clock::now();
  const std::uint64_t ns = Tracer::to_trace_ns(after);
  EXPECT_GE(Tracer::to_trace_ns(Tracer::Clock::now()), ns);
}

TEST_F(ObsTracer, ScopedSpanFeedsHistogramWithoutTracing) {
  // Metrics-only mode: the span records its duration into the histogram
  // even though the tracer is off, off one shared clock pair.
  set_metrics_enabled(true);
  Histogram hist;
  { ScopedSpan span("t", "timed", Tracer::kNoArg, &hist); }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(Tracer::recorded_events(), 0u);

  // And with metrics off the histogram is not touched.
  set_metrics_enabled(false);
  { ScopedSpan span("t", "timed", Tracer::kNoArg, &hist); }
  EXPECT_EQ(hist.count(), 1u);
}

TEST_F(ObsTracer, ConcurrentRecordingIsSafeAndLossless) {
  // Four threads hammer the tracer at once; per-thread rings make this
  // race-free (TSan runs this suite in CI).
  constexpr int kThreads = 4;
  constexpr int kEvents = 1000;
  Tracer::start();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < kEvents; ++i)
        Tracer::record("load", "event", static_cast<std::uint64_t>(i), 1,
                       t);
    });
  for (std::thread& t : threads) t.join();
  Tracer::stop();
  EXPECT_EQ(Tracer::recorded_events(),
            static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(Tracer::track_count(), static_cast<std::size_t>(kThreads));
}

TEST_F(ObsTracer, ConcurrentHistogramRecordingSumsExactly) {
  constexpr int kThreads = 4;
  constexpr int kEvents = 2500;
  Histogram hist;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&hist] {
      for (int i = 0; i < kEvents; ++i)
        hist.record(static_cast<std::uint64_t>(i % 97));
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(hist.max(), 96u);
}

}  // namespace
}  // namespace facsp::obs
