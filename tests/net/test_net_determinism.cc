// The tentpole guarantee, end to end over real loopback sockets: a
// recorded trace streamed through the admission port produces telemetry
// byte-identical to DecisionServer replaying the same trace in-process.
// The idle-flush timer is set far beyond the test so wall-clock timing
// cannot close a batch early — exactly how a determinism-sensitive
// deployment should configure it.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/decision_loop.h"
#include "workload/catalog.h"

namespace facsp::net {
namespace {

std::string telemetry_csv(const serve::ServerResult& r) {
  std::ostringstream os;
  serve::write_telemetry_csv(r, os);
  return os.str();
}

void send_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    ASSERT_GT(w, 0) << "client write failed: " << std::strerror(errno);
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool read_exact(int fd, std::uint8_t* p, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

TEST(NetDeterminism, SocketPathMatchesInProcessReplayByteForByte) {
  serve::ServerConfig config;
  config.scenario = workload::catalog_scenario("paper-grid");
  config.scenario_label = "paper-grid";
  config.duration_s = 4;
  config.requests_per_s = 150;
  config.shards = 3;
  config.batch_window_s = 0.1;
  config.batch_max = 64;

  const std::vector<serve::StampedRequest> trace = serve::record_trace(config);
  ASSERT_FALSE(trace.empty());

  // Reference: in-process replay, duration derived from the trace.
  serve::ServerConfig replay_config = config;
  replay_config.duration_s = 0;
  serve::DecisionServer reference(replay_config, trace);
  const serve::ServerResult replay = reference.run();
  const std::string replay_csv = telemetry_csv(replay);

  // Socket path: one connection streaming the trace in order.
  NetConfig net;
  net.port = 0;
  net.flush_idle_s = 3600.0;  // wall clock must not close batches
  NetServer server(config, net);
  std::thread loop([&server] { server.run(); });

  {
    UniqueFd fd = connect_tcp("127.0.0.1", server.admission_port());
    timeval tv{10, 0};
    setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

    // Write the whole stream, then FLUSH.  Response volume (32 B/request)
    // fits the server's write buffer plus the kernel's socket buffers, so
    // a write-then-read client cannot deadlock at this trace size.
    std::vector<std::uint8_t> out(trace.size() * kRequestFrameSize +
                                  kFlushFrameSize);
    std::uint8_t* w = out.data();
    for (const serve::StampedRequest& r : trace) {
      encode_header({static_cast<std::uint32_t>(kRequestPayloadSize),
                     FrameType::kRequest, kProtocolVersion, 0},
                    w);
      encode_request(r, w + kHeaderSize);
      w += kRequestFrameSize;
    }
    encode_header({0, FrameType::kFlush, kProtocolVersion, 0}, w);
    send_all(fd.get(), out.data(), out.size());

    // Read until the flush echo; count one response per request.
    std::size_t responses = 0;
    for (;;) {
      std::uint8_t hdr[kHeaderSize];
      ASSERT_TRUE(read_exact(fd.get(), hdr, sizeof hdr)) << "early EOF";
      const FrameHeader h = decode_header(hdr);
      ASSERT_EQ(validate_header(h), WireError::kNone);
      std::uint8_t payload[kMaxPayload];
      if (h.len > 0)
        ASSERT_TRUE(read_exact(fd.get(), payload, h.len));
      if (h.type == FrameType::kFlush) break;
      ASSERT_EQ(h.type, FrameType::kResponse);
      ++responses;
    }
    EXPECT_EQ(responses, trace.size());
  }

  server.request_stop();
  loop.join();

  const serve::ServerResult socket_result = server.result();
  EXPECT_EQ(telemetry_csv(socket_result), replay_csv);
  EXPECT_EQ(socket_result.total_decisions, replay.total_decisions);
  EXPECT_EQ(socket_result.total_admitted, replay.total_admitted);
  EXPECT_EQ(server.service().shed_total(), 0u);
}

}  // namespace
}  // namespace facsp::net
