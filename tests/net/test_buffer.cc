// ByteQueue: bounded, contiguous, compact-on-demand — the properties the
// event loop's zero-alloc framing depends on.
#include "net/buffer.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace facsp::net {
namespace {

std::vector<std::uint8_t> bytes(std::size_t n, std::uint8_t start = 0) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

TEST(ByteQueue, AppendConsumeRoundTrip) {
  ByteQueue q(64);
  const auto in = bytes(10);
  ASSERT_TRUE(q.append(in.data(), in.size()));
  EXPECT_EQ(q.size(), 10u);
  EXPECT_EQ(std::memcmp(q.data(), in.data(), 10), 0);
  q.consume(4);
  EXPECT_EQ(q.size(), 6u);
  EXPECT_EQ(q.data()[0], 4);
  q.consume(6);
  EXPECT_TRUE(q.empty());
}

TEST(ByteQueue, AppendIsAllOrNothing) {
  ByteQueue q(16);
  const auto a = bytes(12);
  ASSERT_TRUE(q.append(a.data(), a.size()));
  const auto b = bytes(5, 100);
  EXPECT_FALSE(q.append(b.data(), b.size()));  // 12 + 5 > 16: refused whole
  EXPECT_EQ(q.size(), 12u);                    // nothing partially queued
  const auto c = bytes(4, 200);
  EXPECT_TRUE(q.append(c.data(), c.size()));
  EXPECT_EQ(q.size(), 16u);
  EXPECT_EQ(q.free_space(), 0u);
}

TEST(ByteQueue, CompactsInsteadOfRefusingWhenHeadSpaceExists) {
  ByteQueue q(16);
  const auto a = bytes(12);
  ASSERT_TRUE(q.append(a.data(), a.size()));
  q.consume(10);  // head space: 10, tail space: 4
  const auto b = bytes(8, 50);
  ASSERT_TRUE(q.append(b.data(), b.size()));  // needs the memmove
  EXPECT_EQ(q.size(), 10u);
  EXPECT_EQ(q.data()[0], 10);  // survivors first
  EXPECT_EQ(q.data()[1], 11);
  EXPECT_EQ(q.data()[2], 50);  // then the new bytes
}

TEST(ByteQueue, ReadableRegionStaysContiguous) {
  ByteQueue q(32);
  for (int round = 0; round < 100; ++round) {
    const auto in = bytes(20, static_cast<std::uint8_t>(round));
    ASSERT_TRUE(q.append(in.data(), in.size()));
    // The region handed to the frame parser is one flat span.
    ASSERT_EQ(std::memcmp(q.data(), in.data(), 20), 0);
    q.consume(20);
  }
  EXPECT_TRUE(q.empty());
}

TEST(ByteQueue, ReserveCommitFillsLikeRead) {
  ByteQueue q(32);
  std::uint8_t* w = q.reserve(8);
  ASSERT_NE(w, nullptr);
  ASSERT_GE(q.writable(), 8u);
  for (int i = 0; i < 8; ++i) w[i] = static_cast<std::uint8_t>(i * 3);
  q.commit(8);
  EXPECT_EQ(q.size(), 8u);
  EXPECT_EQ(q.data()[7], 21);
}

TEST(ByteQueue, ReserveOnFullQueueReturnsNull) {
  ByteQueue q(8);
  const auto a = bytes(8);
  ASSERT_TRUE(q.append(a.data(), a.size()));
  EXPECT_EQ(q.reserve(1), nullptr);
  q.consume(1);
  EXPECT_NE(q.reserve(1), nullptr);
}

TEST(ByteQueue, ClearResetsCursors) {
  ByteQueue q(8);
  const auto a = bytes(6);
  ASSERT_TRUE(q.append(a.data(), a.size()));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.free_space(), 8u);
  ASSERT_TRUE(q.append(a.data(), a.size()));
  EXPECT_EQ(q.size(), 6u);
}

}  // namespace
}  // namespace facsp::net
