// NetServer end to end over real loopback sockets, parameterized over both
// poll backends: request/response round trips, the FLUSH barrier,
// malformed-input error frames, partial writes, mid-batch disconnects, the
// telemetry scrape, and graceful stop.  The server runs on its own thread
// (which is also what gives TSan a cross-thread schedule to check);
// clients are plain blocking sockets with a receive timeout so a server
// bug fails the test instead of hanging it.
#include "net/server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "workload/catalog.h"

namespace facsp::net {
namespace {

void send_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    ASSERT_GT(w, 0) << "client write failed: " << std::strerror(errno);
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// False on clean EOF before any byte; fatal on timeout/error midway.
bool read_exact(int fd, std::uint8_t* p, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r == 0) {
      EXPECT_EQ(got, 0u) << "EOF mid-frame";
      return false;
    }
    if (r < 0) {
      ADD_FAILURE() << "client read failed: " << std::strerror(errno);
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

bool read_frame(int fd, Frame& out) {
  std::uint8_t hdr[kHeaderSize];
  if (!read_exact(fd, hdr, sizeof hdr)) return false;
  out.header = decode_header(hdr);
  EXPECT_EQ(validate_header(out.header), WireError::kNone);
  out.payload.resize(out.header.len);
  if (out.header.len > 0 && !read_exact(fd, out.payload.data(), out.header.len))
    return false;
  return true;
}

UniqueFd connect_client(std::uint16_t port) {
  UniqueFd fd = connect_tcp("127.0.0.1", port);
  timeval tv{5, 0};
  setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

serve::StampedRequest request_at(double t, std::uint64_t id) {
  serve::StampedRequest r;
  r.req.now = t;
  r.req.id = id;
  r.req.bandwidth = 1.0;
  r.req.speed_kmh = 30.0;
  r.req.angle_deg = 10.0;
  r.req.distance_m = 100.0;
  r.req.mobile.position.x = 10.0;
  r.req.mobile.position.y = 10.0;
  r.req.mobile.heading_deg = 0.0;
  r.req.mobile.speed_kmh = 30.0;
  r.holding_s = 60.0;
  return r;
}

void send_request(int fd, const serve::StampedRequest& r) {
  std::uint8_t buf[kRequestFrameSize];
  encode_header({static_cast<std::uint32_t>(kRequestPayloadSize),
                 FrameType::kRequest, kProtocolVersion, 0},
                buf);
  encode_request(r, buf + kHeaderSize);
  send_all(fd, buf, sizeof buf);
}

void send_flush(int fd) {
  std::uint8_t buf[kFlushFrameSize];
  encode_header({0, FrameType::kFlush, kProtocolVersion, 0}, buf);
  send_all(fd, buf, sizeof buf);
}

class EventLoopTest : public ::testing::TestWithParam<PollBackend> {
 protected:
  void start(NetConfig net = {}) {
    if (GetParam() == PollBackend::kEpoll && !epoll_available())
      GTEST_SKIP() << "epoll not available";
    serve_config_.scenario = workload::catalog_scenario("paper-grid");
    serve_config_.scenario_label = "paper-grid";
    serve_config_.shards = 2;
    serve_config_.batch_window_s = 0.05;
    serve_config_.batch_max = 64;
    net.backend = GetParam();
    net.port = 0;
    net.telemetry_port = 0;
    // Quick idle flush: tests that skip the FLUSH barrier still see their
    // responses promptly.
    net.flush_idle_s = 0.01;
    server_ = std::make_unique<NetServer>(serve_config_, net);
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (server_ && thread_.joinable()) {
      server_->request_stop();
      thread_.join();
    }
  }

  serve::ServerConfig serve_config_;
  std::unique_ptr<NetServer> server_;
  std::thread thread_;
};

TEST_P(EventLoopTest, RequestResponseRoundTrip) {
  start();
  UniqueFd fd = connect_client(server_->admission_port());
  send_request(fd.get(), request_at(0.5, 42));
  send_flush(fd.get());

  Frame f;
  ASSERT_TRUE(read_frame(fd.get(), f));
  ASSERT_EQ(f.header.type, FrameType::kResponse);
  ResponseFrame r;
  ASSERT_EQ(decode_response(f.payload.data(), f.payload.size(), r),
            WireError::kNone);
  EXPECT_EQ(r.id, 42u);
  EXPECT_GE(r.score, -1.0);
  EXPECT_LE(r.score, 1.0);
  EXPECT_LE(r.verdict, 4);

  // The FLUSH echo is the completion barrier: it arrives after the
  // decisions it forced.
  ASSERT_TRUE(read_frame(fd.get(), f));
  EXPECT_EQ(f.header.type, FrameType::kFlush);
}

TEST_P(EventLoopTest, FlushEchoArrivesAfterAllResponses) {
  start();
  UniqueFd fd = connect_client(server_->admission_port());
  for (int i = 0; i < 5; ++i)
    send_request(fd.get(), request_at(0.1 + 0.001 * i, 100 + i));
  send_flush(fd.get());

  std::vector<std::uint64_t> ids;
  Frame f;
  for (;;) {
    ASSERT_TRUE(read_frame(fd.get(), f));
    if (f.header.type == FrameType::kFlush) break;
    ASSERT_EQ(f.header.type, FrameType::kResponse);
    ResponseFrame r;
    ASSERT_EQ(decode_response(f.payload.data(), f.payload.size(), r),
              WireError::kNone);
    ids.push_back(r.id);
  }
  // Responses come out in per-shard batch order, not submit order; every
  // request is answered exactly once before the flush echo.
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ids[i], 100u + i) << i;
}

TEST_P(EventLoopTest, BadVersionGetsTypedErrorThenClose) {
  start();
  UniqueFd fd = connect_client(server_->admission_port());
  std::uint8_t hdr[kHeaderSize];
  encode_header({0, FrameType::kFlush, /*version=*/9, 0}, hdr);
  send_all(fd.get(), hdr, sizeof hdr);

  Frame f;
  ASSERT_TRUE(read_frame(fd.get(), f));
  ASSERT_EQ(f.header.type, FrameType::kError);
  ErrorFrame e;
  ASSERT_EQ(decode_error(f.payload.data(), f.payload.size(), e),
            WireError::kNone);
  EXPECT_EQ(e.code, WireError::kBadVersion);
  EXPECT_FALSE(read_frame(fd.get(), f));  // server closed after the error
}

TEST_P(EventLoopTest, OversizedLengthPrefixGetsError) {
  start();
  UniqueFd fd = connect_client(server_->admission_port());
  std::uint8_t hdr[kHeaderSize];
  encode_header({kMaxPayload + 1, FrameType::kRequest, kProtocolVersion, 0},
                hdr);
  send_all(fd.get(), hdr, sizeof hdr);
  Frame f;
  ASSERT_TRUE(read_frame(fd.get(), f));
  ASSERT_EQ(f.header.type, FrameType::kError);
  ErrorFrame e;
  ASSERT_EQ(decode_error(f.payload.data(), f.payload.size(), e),
            WireError::kNone);
  EXPECT_EQ(e.code, WireError::kOversized);
  EXPECT_FALSE(read_frame(fd.get(), f));
}

TEST_P(EventLoopTest, ResponseTypeFromClientIsRejected) {
  start();
  UniqueFd fd = connect_client(server_->admission_port());
  std::uint8_t buf[kResponseFrameSize] = {};
  encode_header({static_cast<std::uint32_t>(kResponsePayloadSize),
                 FrameType::kResponse, kProtocolVersion, 0},
                buf);
  send_all(fd.get(), buf, sizeof buf);
  Frame f;
  ASSERT_TRUE(read_frame(fd.get(), f));
  ASSERT_EQ(f.header.type, FrameType::kError);
  ErrorFrame e;
  ASSERT_EQ(decode_error(f.payload.data(), f.payload.size(), e),
            WireError::kNone);
  EXPECT_EQ(e.code, WireError::kBadType);
}

TEST_P(EventLoopTest, BadEnumInRequestGetsError) {
  start();
  UniqueFd fd = connect_client(server_->admission_port());
  std::uint8_t buf[kRequestFrameSize];
  encode_header({static_cast<std::uint32_t>(kRequestPayloadSize),
                 FrameType::kRequest, kProtocolVersion, 0},
                buf);
  encode_request(request_at(0.1, 7), buf + kHeaderSize);
  buf[kHeaderSize + 80] = 9;  // service enum out of range
  send_all(fd.get(), buf, sizeof buf);
  Frame f;
  ASSERT_TRUE(read_frame(fd.get(), f));
  ASSERT_EQ(f.header.type, FrameType::kError);
  ErrorFrame e;
  ASSERT_EQ(decode_error(f.payload.data(), f.payload.size(), e),
            WireError::kNone);
  EXPECT_EQ(e.code, WireError::kBadEnum);
}

TEST_P(EventLoopTest, TimeOrderViolationGetsError) {
  start();
  UniqueFd fd = connect_client(server_->admission_port());
  send_request(fd.get(), request_at(5.0, 1));
  send_request(fd.get(), request_at(1.0, 2));  // below the watermark
  Frame f;
  // The error may arrive before or after request 1's response, depending
  // on batch timing — scan until it shows up.
  bool saw_error = false;
  while (read_frame(fd.get(), f)) {
    if (f.header.type == FrameType::kError) {
      ErrorFrame e;
      ASSERT_EQ(decode_error(f.payload.data(), f.payload.size(), e),
                WireError::kNone);
      EXPECT_EQ(e.code, WireError::kTimeOrder);
      saw_error = true;
    }
  }
  EXPECT_TRUE(saw_error);
}

TEST_P(EventLoopTest, FarFutureArrivalGetsHorizonErrorAndServerSurvives) {
  start();
  {
    // One frame claiming now = 9e18 used to wedge the loop finalizing
    // quintillions of empty seconds; it must bounce at decode instead.
    UniqueFd hostile = connect_client(server_->admission_port());
    send_request(hostile.get(), request_at(9e18, 1));
    Frame f;
    ASSERT_TRUE(read_frame(hostile.get(), f));
    ASSERT_EQ(f.header.type, FrameType::kError);
    ErrorFrame e;
    ASSERT_EQ(decode_error(f.payload.data(), f.payload.size(), e),
              WireError::kNone);
    EXPECT_EQ(e.code, WireError::kBadValue);
    EXPECT_FALSE(read_frame(hostile.get(), f));  // closed after the error
  }
  {
    // Decodable but beyond the watermark-relative skew horizon: typed
    // horizon error, connection closed, server still alive.
    UniqueFd skewed = connect_client(server_->admission_port());
    send_request(skewed.get(), request_at(1.0e9, 2));
    Frame f;
    ASSERT_TRUE(read_frame(skewed.get(), f));
    ASSERT_EQ(f.header.type, FrameType::kError);
    ErrorFrame e;
    ASSERT_EQ(decode_error(f.payload.data(), f.payload.size(), e),
              WireError::kNone);
    EXPECT_EQ(e.code, WireError::kHorizon);
    EXPECT_FALSE(read_frame(skewed.get(), f));
  }
  // Everyone else is still being served.
  UniqueFd fd = connect_client(server_->admission_port());
  send_request(fd.get(), request_at(0.5, 3));
  send_flush(fd.get());
  Frame f;
  ASSERT_TRUE(read_frame(fd.get(), f));
  EXPECT_EQ(f.header.type, FrameType::kResponse);
}

TEST_P(EventLoopTest, NonPositiveBandwidthGetsErrorNotACrash) {
  start();
  {
    UniqueFd bad = connect_client(server_->admission_port());
    serve::StampedRequest r = request_at(0.1, 9);
    r.req.bandwidth = 0.0;
    send_request(bad.get(), r);
    Frame f;
    ASSERT_TRUE(read_frame(bad.get(), f));
    ASSERT_EQ(f.header.type, FrameType::kError);
    ErrorFrame e;
    ASSERT_EQ(decode_error(f.payload.data(), f.payload.size(), e),
              WireError::kNone);
    EXPECT_EQ(e.code, WireError::kBadValue);
  }
  UniqueFd fd = connect_client(server_->admission_port());
  send_request(fd.get(), request_at(0.2, 10));
  send_flush(fd.get());
  Frame f;
  ASSERT_TRUE(read_frame(fd.get(), f));
  EXPECT_EQ(f.header.type, FrameType::kResponse);
}

TEST_P(EventLoopTest, DuplicateInFlightIdIsDemotedNotFatal) {
  start();
  UniqueFd fd = connect_client(server_->admission_port());
  // Both id-7 requests land on the same shard (seq 0 and 2 of seq%2) with
  // overlapping holding times — the loadgen --repeat shape that used to
  // trip BaseStation::allocate's !holds precondition and kill the server.
  send_request(fd.get(), request_at(0.10, 7));
  send_request(fd.get(), request_at(0.11, 500));
  send_request(fd.get(), request_at(0.12, 7));
  send_flush(fd.get());

  int responses_for_7 = 0;
  int admitted_for_7 = 0;
  Frame f;
  for (;;) {
    ASSERT_TRUE(read_frame(fd.get(), f));
    if (f.header.type == FrameType::kFlush) break;
    ASSERT_EQ(f.header.type, FrameType::kResponse);
    ResponseFrame r;
    ASSERT_EQ(decode_response(f.payload.data(), f.payload.size(), r),
              WireError::kNone);
    if (r.id == 7u) {
      ++responses_for_7;
      if (r.admitted) ++admitted_for_7;
    }
  }
  EXPECT_EQ(responses_for_7, 2);
  EXPECT_LE(admitted_for_7, 1);  // duplicate demoted, never held twice
}

TEST_P(EventLoopTest, OneByteAtATimeWritesStillParse) {
  start();
  UniqueFd fd = connect_client(server_->admission_port());
  std::uint8_t buf[kRequestFrameSize];
  encode_header({static_cast<std::uint32_t>(kRequestPayloadSize),
                 FrameType::kRequest, kProtocolVersion, 0},
                buf);
  encode_request(request_at(0.25, 77), buf + kHeaderSize);
  for (std::size_t i = 0; i < sizeof buf; ++i)
    send_all(fd.get(), buf + i, 1);  // worst-case fragmentation
  send_flush(fd.get());
  Frame f;
  ASSERT_TRUE(read_frame(fd.get(), f));
  ASSERT_EQ(f.header.type, FrameType::kResponse);
  ResponseFrame r;
  ASSERT_EQ(decode_response(f.payload.data(), f.payload.size(), r),
            WireError::kNone);
  EXPECT_EQ(r.id, 77u);
}

TEST_P(EventLoopTest, MidBatchDisconnectDoesNotPoisonOthers) {
  start();
  {
    // Connection A contributes to an open batch, then vanishes.
    UniqueFd a = connect_client(server_->admission_port());
    send_request(a.get(), request_at(0.10, 1));
  }
  // Connection B joins the same batching window and must still be served.
  UniqueFd b = connect_client(server_->admission_port());
  send_request(b.get(), request_at(0.11, 2));
  send_flush(b.get());
  Frame f;
  ASSERT_TRUE(read_frame(b.get(), f));
  ASSERT_EQ(f.header.type, FrameType::kResponse);
  ResponseFrame r;
  ASSERT_EQ(decode_response(f.payload.data(), f.payload.size(), r),
            WireError::kNone);
  EXPECT_EQ(r.id, 2u);
}

TEST_P(EventLoopTest, TruncatedFrameThenCloseLeavesServerServing) {
  start();
  {
    UniqueFd broken = connect_client(server_->admission_port());
    std::uint8_t half[kHeaderSize + 13];
    encode_header({static_cast<std::uint32_t>(kRequestPayloadSize),
                   FrameType::kRequest, kProtocolVersion, 0},
                  half);
    std::memset(half + kHeaderSize, 0xab, 13);
    send_all(broken.get(), half, sizeof half);  // 13 of 88 payload bytes
  }
  UniqueFd fd = connect_client(server_->admission_port());
  send_request(fd.get(), request_at(0.2, 5));
  send_flush(fd.get());
  Frame f;
  ASSERT_TRUE(read_frame(fd.get(), f));
  EXPECT_EQ(f.header.type, FrameType::kResponse);
}

TEST_P(EventLoopTest, InterleavedConnectionsEachGetTheirOwnResponses) {
  start();
  UniqueFd a = connect_client(server_->admission_port());
  UniqueFd b = connect_client(server_->admission_port());
  // One shared arrival time: the two sockets' bytes reach the server in
  // whatever order the kernel delivers them, and equal timestamps satisfy
  // the watermark either way.
  for (int i = 0; i < 6; ++i) {
    if (i % 2 == 0)
      send_request(a.get(), request_at(0.1, 1000 + i));
    else
      send_request(b.get(), request_at(0.1, 2000 + i));
  }
  send_flush(a.get());
  send_flush(b.get());

  auto collect = [](int fd) {
    std::vector<std::uint64_t> ids;
    Frame f;
    for (;;) {
      if (!read_frame(fd, f)) break;
      if (f.header.type == FrameType::kFlush) break;
      ResponseFrame r;
      EXPECT_EQ(decode_response(f.payload.data(), f.payload.size(), r),
                WireError::kNone);
      ids.push_back(r.id);
    }
    return ids;
  };
  const auto ids_a = collect(a.get());
  const auto ids_b = collect(b.get());
  ASSERT_EQ(ids_a.size(), 3u);
  ASSERT_EQ(ids_b.size(), 3u);
  for (const std::uint64_t id : ids_a) EXPECT_LT(id, 2000u);
  for (const std::uint64_t id : ids_b) EXPECT_GE(id, 2000u);
}

TEST_P(EventLoopTest, ScrapeServesTelemetryAndMetrics) {
  start();
  // Push one second past the watermark so a row finalizes.
  UniqueFd fd = connect_client(server_->admission_port());
  send_request(fd.get(), request_at(0.5, 1));
  send_request(fd.get(), request_at(1.5, 2));
  send_flush(fd.get());
  Frame f;
  while (read_frame(fd.get(), f) && f.header.type != FrameType::kFlush) {
  }

  UniqueFd scrape = connect_client(server_->telemetry_port());
  std::string text;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(scrape.get(), buf, sizeof buf);
    if (n <= 0) break;
    text.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_NE(text.find("# facsp-telemetry v1"), std::string::npos);
  EXPECT_NE(text.find("second,decisions,admitted"), std::string::npos);
  EXPECT_NE(text.find("seconds_finalized 1"), std::string::npos);
  EXPECT_NE(text.find("# metrics"), std::string::npos);
}

TEST_P(EventLoopTest, StopSealsTelemetryAndReportsResult) {
  start();
  UniqueFd fd = connect_client(server_->admission_port());
  send_request(fd.get(), request_at(0.5, 1));
  send_request(fd.get(), request_at(1.5, 2));
  send_flush(fd.get());
  Frame f;
  while (read_frame(fd.get(), f) && f.header.type != FrameType::kFlush) {
  }

  server_->request_stop();
  thread_.join();
  EXPECT_TRUE(server_->service().drained());
  const serve::ServerResult result = server_->result();
  ASSERT_EQ(result.telemetry.size(), 2u);  // seconds 0 and 1
  EXPECT_EQ(result.total_decisions, 2);
  EXPECT_GE(result.wall_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopTest,
                         ::testing::Values(PollBackend::kPoll,
                                           PollBackend::kEpoll),
                         [](const auto& info) {
                           return info.param == PollBackend::kPoll ? "poll"
                                                                   : "epoll";
                         });

TEST(NetConfigValidate, RejectsNonsense) {
  serve::ServerConfig serve_config;
  serve_config.scenario = workload::catalog_scenario("paper-grid");
  NetConfig net;
  net.pending_cap = 0;
  EXPECT_THROW(NetServer(serve_config, net), ConfigError);
  net = {};
  net.write_high_watermark = net.write_buf + 1;
  EXPECT_THROW(NetServer(serve_config, net), ConfigError);
  net = {};
  net.flush_idle_s = -1.0;
  EXPECT_THROW(NetServer(serve_config, net), ConfigError);
}

TEST(NetServerBind, PortCollisionReportsStrerror) {
  serve::ServerConfig serve_config;
  serve_config.scenario = workload::catalog_scenario("paper-grid");
  NetConfig net;
  net.port = 0;
  NetServer first(serve_config, net);
  net.port = first.admission_port();  // already bound
  try {
    NetServer second(serve_config, net);
    FAIL() << "bind collision should throw";
  } catch (const SocketError& e) {
    EXPECT_NE(std::string(e.what()).find("bind"), std::string::npos);
    EXPECT_NE(e.code(), 0);
  }
}

}  // namespace
}  // namespace facsp::net
