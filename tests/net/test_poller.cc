// Both Poller backends against a pipe: readiness, interest updates,
// removal.  On Linux both epoll and poll run; elsewhere epoll is skipped.
#include "net/poller.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <vector>

#include "net/socket.h"

namespace facsp::net {
namespace {

class PollerTest : public ::testing::TestWithParam<PollBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == PollBackend::kEpoll && !epoll_available())
      GTEST_SKIP() << "epoll not available on this platform";
    poller_ = make_poller(GetParam());
  }

  std::unique_ptr<Poller> poller_;
  std::vector<PollEvent> events_;
};

TEST_P(PollerTest, EmptyWaitTimesOut) {
  EXPECT_EQ(poller_->wait(10, events_), 0u);
  EXPECT_TRUE(events_.empty());
}

TEST_P(PollerTest, PipeReadability) {
  WakePipe pipe;
  poller_->add(pipe.read_end.get(), /*read=*/true, /*write=*/false);

  EXPECT_EQ(poller_->wait(0, events_), 0u);  // nothing written yet

  pipe.poke();
  ASSERT_EQ(poller_->wait(1000, events_), 1u);
  EXPECT_EQ(events_[0].fd, pipe.read_end.get());
  EXPECT_TRUE(events_[0].readable);
  EXPECT_FALSE(events_[0].writable);

  pipe.drain();
  EXPECT_EQ(poller_->wait(0, events_), 0u);
}

TEST_P(PollerTest, WritableInterestAndModify) {
  WakePipe pipe;
  // An empty pipe's write end is writable immediately.
  poller_->add(pipe.write_end.get(), /*read=*/false, /*write=*/true);
  ASSERT_EQ(poller_->wait(1000, events_), 1u);
  EXPECT_TRUE(events_[0].writable);

  // Dropping write interest silences it.
  poller_->modify(pipe.write_end.get(), /*read=*/false, /*write=*/false);
  EXPECT_EQ(poller_->wait(0, events_), 0u);

  // And restoring it brings it back.
  poller_->modify(pipe.write_end.get(), /*read=*/false, /*write=*/true);
  ASSERT_EQ(poller_->wait(1000, events_), 1u);
}

TEST_P(PollerTest, RemoveStopsEvents) {
  WakePipe pipe;
  poller_->add(pipe.read_end.get(), true, false);
  pipe.poke();
  ASSERT_EQ(poller_->wait(1000, events_), 1u);
  poller_->remove(pipe.read_end.get());
  EXPECT_EQ(poller_->wait(0, events_), 0u);  // byte still pending, fd gone
}

TEST_P(PollerTest, LevelTriggeredUntilDrained) {
  // The event loop relies on level-triggering: an unread byte keeps
  // reporting readable on every wait.
  WakePipe pipe;
  poller_->add(pipe.read_end.get(), true, false);
  pipe.poke();
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(poller_->wait(1000, events_), 1u) << "sweep " << i;
    EXPECT_TRUE(events_[0].readable);
  }
  pipe.drain();
  EXPECT_EQ(poller_->wait(0, events_), 0u);
}

TEST_P(PollerTest, MultipleFdsReportIndependently) {
  WakePipe a, b;
  poller_->add(a.read_end.get(), true, false);
  poller_->add(b.read_end.get(), true, false);
  b.poke();
  ASSERT_EQ(poller_->wait(1000, events_), 1u);
  EXPECT_EQ(events_[0].fd, b.read_end.get());
  a.poke();
  ASSERT_EQ(poller_->wait(1000, events_), 2u);
}

INSTANTIATE_TEST_SUITE_P(Backends, PollerTest,
                         ::testing::Values(PollBackend::kPoll,
                                           PollBackend::kEpoll),
                         [](const auto& info) {
                           return info.param == PollBackend::kPoll ? "poll"
                                                                   : "epoll";
                         });

TEST(PollerFactory, AutoPicksSomething) {
  auto p = make_poller(PollBackend::kAuto);
  ASSERT_NE(p, nullptr);
#ifdef __linux__
  EXPECT_STREQ(p->name(), "epoll");
#else
  EXPECT_STREQ(p->name(), "poll");
#endif
}

}  // namespace
}  // namespace facsp::net
