// AdmissionService: the socket front-end's batching/telemetry core.  The
// headline property is byte-identity — a trace fed through submit() in
// arrival order produces exactly the telemetry DecisionServer emits
// replaying the same trace — plus the overload (shed), ordering (reorder
// refusal) and drain contracts.
#include "net/admission_service.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "serve/decision_loop.h"
#include "workload/catalog.h"

namespace facsp::net {
namespace {

serve::ServerConfig base_config() {
  serve::ServerConfig config;
  config.scenario = workload::catalog_scenario("paper-grid");
  config.scenario_label = "paper-grid";
  config.duration_s = 4;
  config.requests_per_s = 200;
  config.shards = 3;
  return config;
}

std::string telemetry_csv(const serve::ServerResult& r) {
  std::ostringstream os;
  serve::write_telemetry_csv(r, os);
  return os.str();
}

/// Replay `trace` in-process (the reference) and through the service (the
/// socket path); both as telemetry CSV bytes.
struct BothRuns {
  std::string replay_csv;
  std::string service_csv;
  serve::ServerResult replay;
  serve::ServerResult service;
};

BothRuns run_both(const serve::ServerConfig& config,
                  const std::vector<serve::StampedRequest>& trace) {
  serve::ServerConfig replay_config = config;
  replay_config.duration_s = 0;  // derive from the trace, like the CLI
  serve::DecisionServer reference(replay_config, trace);
  BothRuns out;
  out.replay = reference.run();
  out.replay_csv = telemetry_csv(out.replay);

  AdmissionService service(config, /*pending_cap=*/1 << 20,
                           /*reserve_seconds=*/64);
  for (const serve::StampedRequest& r : trace)
    EXPECT_EQ(service.submit(/*conn=*/1, r), AdmissionService::Submit::kAccepted);
  service.drain();
  out.service = service.result();
  out.service_csv = telemetry_csv(out.service);
  return out;
}

TEST(AdmissionService, ByteIdenticalTelemetryVsReplay) {
  const serve::ServerConfig config = base_config();
  const auto trace = serve::record_trace(config);
  ASSERT_FALSE(trace.empty());
  const BothRuns r = run_both(config, trace);
  EXPECT_EQ(r.service_csv, r.replay_csv);
  EXPECT_EQ(r.service.total_decisions, r.replay.total_decisions);
  EXPECT_EQ(r.service.total_admitted, r.replay.total_admitted);
  EXPECT_EQ(r.service.telemetry.size(), r.replay.telemetry.size());
}

TEST(AdmissionService, ByteIdenticalAcrossBatchShapes) {
  // The watermark-closure rule must agree with serve::batch_end for every
  // batching geometry, including windows that do not divide a second and a
  // batch_max small enough to trigger size closes.
  for (const auto& [window, batch_max] :
       {std::pair{0.05, 256}, {0.3, 256}, {1.0, 16}, {0.07, 8}}) {
    serve::ServerConfig config = base_config();
    config.duration_s = 3;
    config.batch_window_s = window;
    config.batch_max = batch_max;
    const auto trace = serve::record_trace(config);
    const BothRuns r = run_both(config, trace);
    EXPECT_EQ(r.service_csv, r.replay_csv)
        << "window=" << window << " batch_max=" << batch_max;
  }
}

TEST(AdmissionService, ByteIdenticalSingleShard) {
  serve::ServerConfig config = base_config();
  config.shards = 1;
  config.duration_s = 3;
  const auto trace = serve::record_trace(config);
  const BothRuns r = run_both(config, trace);
  EXPECT_EQ(r.service_csv, r.replay_csv);
}

TEST(AdmissionService, ConnectionSplitDoesNotChangeTelemetry) {
  // The determinism contract is about global arrival order, not which
  // connection carried a request: striping the trace across many conn ids
  // must not move a single byte.
  const serve::ServerConfig config = base_config();
  const auto trace = serve::record_trace(config);
  const BothRuns one = run_both(config, trace);

  AdmissionService striped(config, 1 << 20, 64);
  std::uint64_t conn = 0;
  for (const serve::StampedRequest& r : trace)
    ASSERT_EQ(striped.submit(1 + (conn++ % 7), r),
              AdmissionService::Submit::kAccepted);
  striped.drain();
  EXPECT_EQ(telemetry_csv(striped.result()), one.replay_csv);
}

TEST(AdmissionService, EveryRequestGetsExactlyOneDecision) {
  const serve::ServerConfig config = base_config();
  const auto trace = serve::record_trace(config);

  AdmissionService service(config, 1 << 20, 64);
  std::vector<std::uint64_t> decided_ids;
  AdmissionService::Callbacks cb;
  cb.on_decision = [&](std::uint64_t conn, const cac::AdmissionRequest& req,
                       const cac::AdmissionDecision&) {
    EXPECT_EQ(conn, 9u);
    decided_ids.push_back(req.id);
  };
  cb.on_dropped = [&](std::uint64_t, std::uint64_t) {
    FAIL() << "nothing should shed below the cap";
  };
  service.set_callbacks(std::move(cb));
  for (const serve::StampedRequest& r : trace)
    ASSERT_EQ(service.submit(9, r), AdmissionService::Submit::kAccepted);
  service.drain();

  ASSERT_EQ(decided_ids.size(), trace.size());
  EXPECT_EQ(service.decided(), trace.size());
  EXPECT_EQ(service.submitted(), trace.size());
  EXPECT_EQ(service.shed_total(), 0u);
  EXPECT_EQ(service.pending(), 0u);
}

serve::StampedRequest request_at(double t, std::uint64_t id) {
  serve::StampedRequest r;
  r.req.now = t;
  r.req.id = id;
  r.req.bandwidth = 1.0;
  r.req.speed_kmh = 30.0;
  r.req.angle_deg = 10.0;
  r.req.distance_m = 100.0;
  r.req.mobile.position.x = 10.0;
  r.req.mobile.position.y = 10.0;
  r.req.mobile.heading_deg = 0.0;
  r.req.mobile.speed_kmh = 30.0;
  r.holding_s = 60.0;
  return r;
}

serve::ServerConfig tiny_config(int batch_max) {
  serve::ServerConfig config = base_config();
  config.shards = 1;
  config.batch_window_s = 1.0;
  config.batch_max = batch_max;
  return config;
}

TEST(AdmissionService, RejectsArrivalsBelowTheWatermark) {
  AdmissionService service(tiny_config(128), 1 << 20, 16);
  EXPECT_EQ(service.submit(1, request_at(5.0, 1)),
            AdmissionService::Submit::kAccepted);
  EXPECT_EQ(service.submit(1, request_at(4.999, 2)),
            AdmissionService::Submit::kReordered);
  EXPECT_EQ(service.submit(1, request_at(5.0, 3)),
            AdmissionService::Submit::kAccepted);  // equal is fine
  EXPECT_EQ(service.watermark(), 5.0);
  EXPECT_EQ(service.submitted(), 2u);
}

TEST(AdmissionService, RejectsArrivalsBeyondTheSkewHorizon) {
  // One frame far in the future must not finalize quintillions of empty
  // seconds inline: it is refused, enqueues nothing and moves no state.
  AdmissionService service(tiny_config(128), 1 << 20, 16,
                           /*max_skew_s=*/10.0);
  EXPECT_EQ(service.submit(1, request_at(9e18, 1)),
            AdmissionService::Submit::kHorizon);
  EXPECT_EQ(service.submit(1, request_at(10.5, 2)),
            AdmissionService::Submit::kHorizon);  // virgin watermark is 0
  EXPECT_EQ(service.submitted(), 0u);
  EXPECT_EQ(service.pending(), 0u);
  EXPECT_TRUE(service.telemetry().empty());
  EXPECT_EQ(service.watermark(), -1.0);

  // At the horizon is fine, and the horizon slides with the watermark.
  EXPECT_EQ(service.submit(1, request_at(10.0, 3)),
            AdmissionService::Submit::kAccepted);
  EXPECT_EQ(service.submit(1, request_at(20.0, 4)),
            AdmissionService::Submit::kAccepted);
  EXPECT_EQ(service.submit(1, request_at(30.5, 5)),
            AdmissionService::Submit::kHorizon);
  EXPECT_EQ(service.watermark(), 20.0);
  EXPECT_EQ(service.submitted(), 2u);

  service.drain();
  EXPECT_EQ(service.telemetry().size(), 21u);  // seconds 0..20
}

TEST(AdmissionService, DuplicateInFlightIdDemotesInsteadOfThrowing) {
  // Connection ids are client-controlled on the socket path: a second
  // admitted request with an id still holding bandwidth on the same shard
  // must come back not-admitted, never trip allocate()'s precondition.
  AdmissionService service(tiny_config(/*batch_max=*/1), 1 << 20, 16);
  int responses = 0;
  int admitted = 0;
  AdmissionService::Callbacks cb;
  cb.on_decision = [&](std::uint64_t, const cac::AdmissionRequest&,
                       const cac::AdmissionDecision& d) {
    ++responses;
    if (d.admitted) ++admitted;
  };
  service.set_callbacks(std::move(cb));

  serve::StampedRequest first = request_at(0.1, 77);
  first.holding_s = 60.0;  // still held when the duplicate arrives
  serve::StampedRequest dup = request_at(0.2, 77);
  ASSERT_EQ(service.submit(1, first), AdmissionService::Submit::kAccepted);
  ASSERT_EQ(service.submit(2, dup), AdmissionService::Submit::kAccepted);
  service.drain();

  EXPECT_EQ(responses, 2);
  EXPECT_LE(admitted, 1);  // the duplicate can never hold bandwidth twice
}

TEST(AdmissionService, ShedsOldestAtThePendingCap) {
  // window = 1 s and all arrivals inside [0, 1): nothing closes a batch by
  // time, and with two shards neither reaches batch_max before the global
  // cap bites — the cap is the only relief valve.
  serve::ServerConfig config = tiny_config(300);
  config.shards = 2;
  AdmissionService service(config, /*pending_cap=*/512, 16);
  std::vector<std::uint64_t> dropped;
  AdmissionService::Callbacks cb;
  cb.on_dropped = [&](std::uint64_t conn, std::uint64_t id) {
    EXPECT_EQ(conn, 3u);
    dropped.push_back(id);
  };
  service.set_callbacks(std::move(cb));

  for (int i = 0; i < 515; ++i)
    ASSERT_EQ(service.submit(3, request_at(0.0009 * i, 1000 + i)),
              AdmissionService::Submit::kAccepted);

  EXPECT_EQ(service.pending(), 512u);
  EXPECT_EQ(service.shed_total(), 3u);
  ASSERT_EQ(dropped.size(), 3u);
  EXPECT_EQ(dropped[0], 1000u);  // oldest first
  EXPECT_EQ(dropped[1], 1001u);
  EXPECT_EQ(dropped[2], 1002u);
}

TEST(AdmissionService, FlushDecidesWithoutSealingTheSecond) {
  AdmissionService service(tiny_config(128), 1 << 20, 16);
  int decisions = 0;
  AdmissionService::Callbacks cb;
  cb.on_decision = [&](std::uint64_t, const cac::AdmissionRequest&,
                       const cac::AdmissionDecision&) { ++decisions; };
  service.set_callbacks(std::move(cb));

  ASSERT_EQ(service.submit(1, request_at(0.2, 1)),
            AdmissionService::Submit::kAccepted);
  ASSERT_EQ(service.submit(1, request_at(0.3, 2)),
            AdmissionService::Submit::kAccepted);
  EXPECT_EQ(decisions, 0);

  service.flush_open_batches();
  EXPECT_EQ(decisions, 2);
  EXPECT_TRUE(service.telemetry().empty());  // second 0 still open

  // The second keeps accumulating after the flush and seals on drain.
  ASSERT_EQ(service.submit(1, request_at(0.4, 3)),
            AdmissionService::Submit::kAccepted);
  service.drain();
  EXPECT_EQ(decisions, 3);
  ASSERT_EQ(service.telemetry().size(), 1u);
  EXPECT_EQ(service.telemetry()[0].decisions, 3);
}

TEST(AdmissionService, DrainSealsThroughTheWatermarkSecond) {
  AdmissionService service(tiny_config(128), 1 << 20, 16);
  ASSERT_EQ(service.submit(1, request_at(0.5, 1)),
            AdmissionService::Submit::kAccepted);
  ASSERT_EQ(service.submit(1, request_at(2.5, 2)),
            AdmissionService::Submit::kAccepted);
  service.drain();
  // Seconds 0, 1 (empty) and 2 all have rows, like a 3 s replay would.
  ASSERT_EQ(service.telemetry().size(), 3u);
  EXPECT_EQ(service.telemetry()[0].window, 0);
  EXPECT_EQ(service.telemetry()[1].window, 1);
  EXPECT_EQ(service.telemetry()[1].decisions, 0);
  EXPECT_EQ(service.telemetry()[2].window, 2);
  EXPECT_TRUE(service.drained());

  // Idempotent, and everything after it is refused.
  service.drain();
  ASSERT_EQ(service.telemetry().size(), 3u);
  EXPECT_EQ(service.submit(1, request_at(99.0, 3)),
            AdmissionService::Submit::kReordered);
}

TEST(AdmissionService, DrainOnVirginServiceIsANoOp) {
  AdmissionService service(tiny_config(128), 1 << 20, 16);
  service.drain();
  EXPECT_TRUE(service.telemetry().empty());
  EXPECT_TRUE(service.drained());
}

TEST(AdmissionService, SecondHookFiresPerSealedSecond) {
  AdmissionService service(tiny_config(128), 1 << 20, 16);
  std::vector<std::int64_t> seconds;
  service.set_second_hook(
      [&](std::int64_t sec, const serve::TelemetryRow& row) {
        EXPECT_EQ(row.window, sec);
        seconds.push_back(sec);
      });
  ASSERT_EQ(service.submit(1, request_at(0.1, 1)),
            AdmissionService::Submit::kAccepted);
  ASSERT_EQ(service.submit(1, request_at(3.1, 2)),
            AdmissionService::Submit::kAccepted);
  // Crossing into second 3 sealed 0..2; drain seals 3.
  EXPECT_EQ(seconds, (std::vector<std::int64_t>{0, 1, 2}));
  service.drain();
  EXPECT_EQ(seconds, (std::vector<std::int64_t>{0, 1, 2, 3}));
}

TEST(AdmissionService, PendingCapMustCoverABatch) {
  EXPECT_THROW(AdmissionService(tiny_config(256), /*pending_cap=*/8, 16),
               ConfigError);
}

}  // namespace
}  // namespace facsp::net
