// Wire-format round-trips plus hostile-input fuzzing: every byte pattern a
// client can send must decode or be rejected with a typed WireError —
// never crash, never read out of bounds.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace facsp::net {
namespace {

serve::StampedRequest sample_request() {
  serve::StampedRequest r;
  r.req.now = 12.375;
  r.req.id = 0xdeadbeefcafe01ULL;
  r.req.bandwidth = 2.0;
  r.req.speed_kmh = 63.5;
  r.req.angle_deg = 17.25;
  r.req.distance_m = 412.0;
  r.req.mobile.position.x = -120.5;
  r.req.mobile.position.y = 310.25;
  r.req.mobile.heading_deg = 201.0;
  r.req.mobile.speed_kmh = 63.5;
  r.req.service = static_cast<cellular::ServiceClass>(2);
  r.req.kind = static_cast<cellular::RequestKind>(1);
  r.req.priority = static_cast<cellular::UserPriority>(0);
  r.holding_s = 95.5;
  return r;
}

TEST(Frame, HeaderRoundTrip) {
  std::uint8_t buf[kHeaderSize];
  encode_header({88, FrameType::kRequest, kProtocolVersion, 0}, buf);
  const FrameHeader h = decode_header(buf);
  EXPECT_EQ(h.len, 88u);
  EXPECT_EQ(h.type, FrameType::kRequest);
  EXPECT_EQ(h.version, kProtocolVersion);
  EXPECT_EQ(h.reserved, 0u);
  EXPECT_EQ(validate_header(h), WireError::kNone);
}

TEST(Frame, HeaderIsLittleEndian) {
  std::uint8_t buf[kHeaderSize];
  encode_header({0x0102, FrameType::kFlush, kProtocolVersion, 0}, buf);
  EXPECT_EQ(buf[0], 0x02);  // low byte first
  EXPECT_EQ(buf[1], 0x01);
  EXPECT_EQ(buf[4], 4);  // kFlush
  EXPECT_EQ(buf[5], 1);  // version
}

TEST(Frame, ValidateRejectsBadVersion) {
  FrameHeader h{kRequestPayloadSize, FrameType::kRequest, 2, 0};
  EXPECT_EQ(validate_header(h), WireError::kBadVersion);
  h.version = 0;
  EXPECT_EQ(validate_header(h), WireError::kBadVersion);
}

TEST(Frame, ValidateRejectsNonzeroReserved) {
  FrameHeader h{kRequestPayloadSize, FrameType::kRequest, kProtocolVersion, 7};
  EXPECT_EQ(validate_header(h), WireError::kBadVersion);
}

TEST(Frame, ValidateRejectsOversizedBeforeType) {
  // A hostile length prefix is rejected even when the type is garbage too:
  // nothing downstream may ever try to buffer 4 GiB.
  FrameHeader h{std::numeric_limits<std::uint32_t>::max(),
                static_cast<FrameType>(250), kProtocolVersion, 0};
  EXPECT_EQ(validate_header(h), WireError::kOversized);
  h.len = kMaxPayload + 1;
  EXPECT_EQ(validate_header(h), WireError::kOversized);
}

TEST(Frame, ValidateRejectsUnknownType) {
  FrameHeader h{0, static_cast<FrameType>(0), kProtocolVersion, 0};
  EXPECT_EQ(validate_header(h), WireError::kBadType);
  h.type = static_cast<FrameType>(6);
  EXPECT_EQ(validate_header(h), WireError::kBadType);
}

TEST(Frame, ValidateRejectsWrongLengthForType) {
  FrameHeader h{kRequestPayloadSize - 1, FrameType::kRequest,
                kProtocolVersion, 0};
  EXPECT_EQ(validate_header(h), WireError::kBadLength);
  h = {1, FrameType::kFlush, kProtocolVersion, 0};
  EXPECT_EQ(validate_header(h), WireError::kBadLength);
}

TEST(Frame, RequestRoundTrip) {
  const serve::StampedRequest r = sample_request();
  std::uint8_t buf[kRequestPayloadSize];
  encode_request(r, buf);
  serve::StampedRequest d;
  ASSERT_EQ(decode_request(buf, sizeof buf, d), WireError::kNone);
  EXPECT_EQ(d.req.now, r.req.now);
  EXPECT_EQ(d.req.id, r.req.id);
  EXPECT_EQ(d.req.bandwidth, r.req.bandwidth);
  EXPECT_EQ(d.req.speed_kmh, r.req.speed_kmh);
  EXPECT_EQ(d.req.angle_deg, r.req.angle_deg);
  EXPECT_EQ(d.req.distance_m, r.req.distance_m);
  EXPECT_EQ(d.holding_s, r.holding_s);
  EXPECT_EQ(d.req.mobile.position.x, r.req.mobile.position.x);
  EXPECT_EQ(d.req.mobile.position.y, r.req.mobile.position.y);
  EXPECT_EQ(d.req.mobile.heading_deg, r.req.mobile.heading_deg);
  EXPECT_EQ(d.req.mobile.speed_kmh, r.req.speed_kmh);
  EXPECT_EQ(d.req.service, r.req.service);
  EXPECT_EQ(d.req.kind, r.req.kind);
  EXPECT_EQ(d.req.priority, r.req.priority);
}

TEST(Frame, RequestRejectsBadEnums) {
  std::uint8_t buf[kRequestPayloadSize];
  serve::StampedRequest d;
  encode_request(sample_request(), buf);
  buf[80] = 3;  // service
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kBadEnum);
  encode_request(sample_request(), buf);
  buf[81] = 2;  // kind
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kBadEnum);
  encode_request(sample_request(), buf);
  buf[82] = 255;  // priority
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kBadEnum);
}

TEST(Frame, RequestRejectsNonFiniteAndNegative) {
  std::uint8_t buf[kRequestPayloadSize];
  serve::StampedRequest d;

  serve::StampedRequest r = sample_request();
  r.req.bandwidth = std::numeric_limits<double>::quiet_NaN();
  encode_request(r, buf);
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kBadValue);

  r = sample_request();
  r.req.now = std::numeric_limits<double>::infinity();
  encode_request(r, buf);
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kBadValue);

  r = sample_request();
  r.req.now = -0.5;
  encode_request(r, buf);
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kBadValue);

  r = sample_request();
  r.holding_s = -1.0;
  encode_request(r, buf);
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kBadValue);
}

TEST(Frame, RequestRejectsNonPositiveBandwidth) {
  // A bandwidth <= 0 that the policy admits would trip BaseStation::
  // allocate's precondition — it must die at decode instead.
  std::uint8_t buf[kRequestPayloadSize];
  serve::StampedRequest d;

  serve::StampedRequest r = sample_request();
  r.req.bandwidth = 0.0;
  encode_request(r, buf);
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kBadValue);

  r = sample_request();
  r.req.bandwidth = -1.0;
  encode_request(r, buf);
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kBadValue);

  r = sample_request();
  r.req.bandwidth = std::numeric_limits<double>::denorm_min();
  encode_request(r, buf);
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kNone);
}

TEST(Frame, RequestRejectsAbsurdArrivalTime) {
  std::uint8_t buf[kRequestPayloadSize];
  serve::StampedRequest d;

  serve::StampedRequest r = sample_request();
  r.req.now = 9e18;  // would overflow / wedge second finalization
  encode_request(r, buf);
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kBadValue);

  r = sample_request();
  r.req.now = kMaxArrivalS;  // the cap itself is still decodable
  encode_request(r, buf);
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kNone);
}

TEST(Frame, RequestRejectsWrongLength) {
  std::uint8_t buf[kRequestPayloadSize];
  encode_request(sample_request(), buf);
  serve::StampedRequest d;
  EXPECT_EQ(decode_request(buf, kRequestPayloadSize - 1, d),
            WireError::kBadLength);
  EXPECT_EQ(decode_request(buf, 0, d), WireError::kBadLength);
}

TEST(Frame, RequestIgnoresReservedTail) {
  std::uint8_t buf[kRequestPayloadSize];
  encode_request(sample_request(), buf);
  std::memset(buf + 83, 0xff, 5);  // reserved bytes: ignored on decode
  serve::StampedRequest d;
  EXPECT_EQ(decode_request(buf, sizeof buf, d), WireError::kNone);
}

TEST(Frame, ResponseRoundTrip) {
  cac::AdmissionDecision dec;
  dec.admitted = true;
  dec.score = -0.25;
  dec.verdict = static_cast<cac::Verdict>(3);
  std::uint8_t buf[kResponsePayloadSize];
  encode_response(77, dec, buf);
  ResponseFrame r;
  ASSERT_EQ(decode_response(buf, sizeof buf, r), WireError::kNone);
  EXPECT_EQ(r.id, 77u);
  EXPECT_EQ(r.score, -0.25);
  EXPECT_TRUE(r.admitted);
  EXPECT_EQ(r.verdict, 3);
}

TEST(Frame, ErrorAndDroppedRoundTrip) {
  std::uint8_t ebuf[kErrorPayloadSize];
  encode_error(WireError::kOversized, 123456, ebuf);
  ErrorFrame e;
  ASSERT_EQ(decode_error(ebuf, sizeof ebuf, e), WireError::kNone);
  EXPECT_EQ(e.code, WireError::kOversized);
  EXPECT_EQ(e.detail, 123456u);

  std::uint8_t dbuf[kDroppedPayloadSize];
  encode_dropped(0x1122334455667788ULL, dbuf);
  std::uint64_t id = 0;
  ASSERT_EQ(decode_dropped(dbuf, sizeof dbuf, id), WireError::kNone);
  EXPECT_EQ(id, 0x1122334455667788ULL);
}

TEST(Frame, WireErrorNamesAreStable) {
  EXPECT_STREQ(wire_error_name(WireError::kBadVersion), "bad-version");
  EXPECT_STREQ(wire_error_name(WireError::kOversized), "oversized");
  EXPECT_STREQ(wire_error_name(WireError::kTimeOrder), "time-order");
  EXPECT_STREQ(wire_error_name(WireError::kHorizon), "horizon");
  EXPECT_STREQ(wire_error_name(static_cast<WireError>(999)), "unknown");
}

// Deterministic fuzz: random headers and request payloads must classify
// cleanly (accepted or a defined WireError) without crashing.  A tiny LCG
// keeps the byte stream identical on every run and platform.
struct Lcg {
  std::uint64_t s;
  std::uint8_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint8_t>(s >> 56);
  }
};

TEST(FrameFuzz, RandomHeadersNeverCrash) {
  Lcg rng{42};
  int accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    std::uint8_t buf[kHeaderSize];
    for (std::uint8_t& b : buf) b = rng.next();
    const FrameHeader h = decode_header(buf);
    const WireError e = validate_header(h);
    if (e == WireError::kNone) {
      ++accepted;
      EXPECT_LE(h.len, kMaxPayload);
    }
  }
  // Version + reserved + type + exact-length all matching by chance is
  // vanishingly rare.
  EXPECT_LT(accepted, 4);
}

TEST(FrameFuzz, RandomRequestPayloadsNeverCrash) {
  Lcg rng{7};
  for (int i = 0; i < 20000; ++i) {
    std::uint8_t buf[kRequestPayloadSize];
    for (std::uint8_t& b : buf) b = rng.next();
    serve::StampedRequest d;
    const WireError e = decode_request(buf, sizeof buf, d);
    if (e == WireError::kNone) {
      // Whatever got through must honor the decode contract.
      EXPECT_TRUE(std::isfinite(d.req.now));
      EXPECT_GE(d.req.now, 0.0);
      EXPECT_LE(d.req.now, kMaxArrivalS);
      EXPECT_GE(d.holding_s, 0.0);
      EXPECT_GT(d.req.bandwidth, 0.0);
    } else {
      EXPECT_TRUE(e == WireError::kBadEnum || e == WireError::kBadValue);
    }
  }
}

TEST(FrameFuzz, RandomDoublesWithValidEnumsClassifyCleanly) {
  // Valid enum bytes, fuzzed doubles: acceptance needs every double finite
  // and now/holding nonnegative — common enough to exercise the accept
  // path thousands of times.
  Lcg rng{1234};
  int ok = 0;
  for (int i = 0; i < 20000; ++i) {
    std::uint8_t buf[kRequestPayloadSize];
    for (std::uint8_t& b : buf) b = rng.next();
    buf[80] = static_cast<std::uint8_t>(rng.next() % 3);
    buf[81] = static_cast<std::uint8_t>(rng.next() % 2);
    buf[82] = static_cast<std::uint8_t>(rng.next() % 3);
    serve::StampedRequest d;
    const WireError e = decode_request(buf, sizeof buf, d);
    if (e == WireError::kNone)
      ++ok;
    else
      EXPECT_EQ(e, WireError::kBadValue);
  }
  EXPECT_GT(ok, 100);
}

}  // namespace
}  // namespace facsp::net
