#include "cellular/mobility.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"
#include "sim/rng.h"

namespace facsp::cellular {
namespace {

TEST(MobilityConfig, HeadingSigmaDecreasesWithSpeed) {
  const MobilityConfig cfg;
  double prev = 1e9;
  for (double v : {0.0, 4.0, 10.0, 30.0, 60.0, 120.0}) {
    const double s = cfg.heading_sigma(v);
    EXPECT_LT(s, prev) << "v=" << v;
    EXPECT_GT(s, 0.0);
    prev = s;
  }
}

TEST(MobilityConfig, SigmaAtReferenceIsHalfBase) {
  MobilityConfig cfg;
  cfg.base_sigma_deg = 48.0;
  cfg.reference_kmh = 18.0;
  EXPECT_NEAR(cfg.heading_sigma(18.0), 24.0, 1e-9);
}

TEST(MobilityModel, StraightLineWithoutNoise) {
  MobilityConfig cfg;
  cfg.base_sigma_deg = 0.0;  // no wander
  MobilityModel model(cfg, sim::RandomStream(1));
  MobileState st{{0.0, 0.0}, 36.0, 0.0};  // 36 km/h = 10 m/s heading east
  model.advance(st, 10.0);
  EXPECT_NEAR(st.position.x, 100.0, 1e-9);
  EXPECT_NEAR(st.position.y, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(st.heading_deg, 0.0);
}

TEST(MobilityModel, HeadingAffectsDirection) {
  MobilityConfig cfg;
  cfg.base_sigma_deg = 0.0;
  MobilityModel model(cfg, sim::RandomStream(1));
  MobileState st{{0.0, 0.0}, 36.0, 90.0};  // north
  model.advance(st, 5.0);
  EXPECT_NEAR(st.position.x, 0.0, 1e-9);
  EXPECT_NEAR(st.position.y, 50.0, 1e-9);
}

TEST(MobilityModel, SlowUsersWanderMoreThanFastUsers) {
  const MobilityConfig cfg;
  const int trials = 400;
  auto wander = [&](double speed) {
    MobilityModel model(cfg, sim::RandomStream(77));
    double sum = 0.0;
    for (int i = 0; i < trials; ++i) {
      MobileState st{{0.0, 0.0}, speed, 0.0};
      model.advance(st, cfg.update_interval_s);
      sum += std::fabs(wrap_angle_deg(st.heading_deg));
    }
    return sum / trials;
  };
  EXPECT_GT(wander(4.0), 1.5 * wander(60.0));
}

TEST(MobilityModel, DeterministicGivenSeed) {
  const MobilityConfig cfg;
  MobilityModel a(cfg, sim::RandomStream(5));
  MobilityModel b(cfg, sim::RandomStream(5));
  MobileState sa{{0.0, 0.0}, 50.0, 30.0};
  MobileState sb = sa;
  for (int i = 0; i < 20; ++i) {
    a.advance(sa, 5.0);
    b.advance(sb, 5.0);
  }
  EXPECT_DOUBLE_EQ(sa.position.x, sb.position.x);
  EXPECT_DOUBLE_EQ(sa.heading_deg, sb.heading_deg);
}

TEST(MobilityModel, ZeroDtIsNoOpOnPosition) {
  const MobilityConfig cfg;
  MobilityModel model(cfg, sim::RandomStream(5));
  MobileState st{{10.0, 20.0}, 50.0, 0.0};
  model.advance(st, 0.0);
  EXPECT_DOUBLE_EQ(st.position.x, 10.0);
  EXPECT_DOUBLE_EQ(st.position.y, 20.0);
}

TEST(AngleToBs, ZeroWhenHeadingStraightAtBs) {
  // User at (1000, 0) heading west (180 deg) toward BS at origin.
  const MobileState st{{1000.0, 0.0}, 50.0, 180.0};
  EXPECT_NEAR(angle_to_bs_deg(st, {0.0, 0.0}), 0.0, 1e-9);
}

TEST(AngleToBs, HalfTurnWhenHeadingAway) {
  const MobileState st{{1000.0, 0.0}, 50.0, 0.0};  // east, away from origin
  EXPECT_NEAR(std::fabs(angle_to_bs_deg(st, {0.0, 0.0})), 180.0, 1e-9);
}

TEST(AngleToBs, NinetyWhenTangential) {
  const MobileState st{{1000.0, 0.0}, 50.0, 90.0};  // north, BS to the west
  EXPECT_NEAR(std::fabs(angle_to_bs_deg(st, {0.0, 0.0})), 90.0, 1e-9);
}

TEST(DirectionPredictor, SigmaDecreasesWithSpeed) {
  const DirectionPredictor::Config cfg;
  DirectionPredictor pred(cfg, sim::RandomStream(9));
  EXPECT_GT(pred.sigma_deg(4.0), pred.sigma_deg(30.0));
  EXPECT_GT(pred.sigma_deg(30.0), pred.sigma_deg(120.0));
}

TEST(DirectionPredictor, PredictionErrorShrinksWithSpeed) {
  const DirectionPredictor::Config cfg;
  auto rms_error = [&](double speed) {
    DirectionPredictor pred(cfg, sim::RandomStream(21));
    const MobileState st{{1000.0, 0.0}, speed, 180.0};  // true angle 0
    double sq = 0.0;
    const int n = 800;
    for (int i = 0; i < n; ++i) {
      const double e = pred.predict_angle_deg(st, {0.0, 0.0});
      sq += e * e;
    }
    return std::sqrt(sq / n);
  };
  const double slow = rms_error(4.0);
  const double fast = rms_error(60.0);
  EXPECT_GT(slow, 2.0 * fast);
  // RMS error should be in the ballpark of the configured sigma.
  DirectionPredictor pred(cfg, sim::RandomStream(1));
  EXPECT_NEAR(slow, pred.sigma_deg(4.0), pred.sigma_deg(4.0) * 0.25);
}

TEST(DirectionPredictor, PredictionIsUnbiased) {
  const DirectionPredictor::Config cfg;
  DirectionPredictor pred(cfg, sim::RandomStream(33));
  const MobileState st{{1000.0, 0.0}, 30.0, 180.0};  // true angle 0
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) sum += pred.predict_angle_deg(st, {0.0, 0.0});
  EXPECT_NEAR(sum / n, 0.0, 2.0);
}

}  // namespace
}  // namespace facsp::cellular
