#include "cellular/service.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace facsp::cellular {
namespace {

TEST(Service, PaperBandwidths) {
  EXPECT_DOUBLE_EQ(service_bandwidth(ServiceClass::kText), 1.0);
  EXPECT_DOUBLE_EQ(service_bandwidth(ServiceClass::kVoice), 5.0);
  EXPECT_DOUBLE_EQ(service_bandwidth(ServiceClass::kVideo), 10.0);
}

TEST(Service, RealTimeClassification) {
  EXPECT_FALSE(is_real_time(ServiceClass::kText));
  EXPECT_TRUE(is_real_time(ServiceClass::kVoice));
  EXPECT_TRUE(is_real_time(ServiceClass::kVideo));
}

TEST(Service, Names) {
  EXPECT_EQ(service_name(ServiceClass::kText), "text");
  EXPECT_EQ(service_name(ServiceClass::kVoice), "voice");
  EXPECT_EQ(service_name(ServiceClass::kVideo), "video");
  std::ostringstream os;
  os << ServiceClass::kVideo;
  EXPECT_EQ(os.str(), "video");
}

TEST(TrafficMix, PaperDefaultValidatesAndHasMean27) {
  const TrafficMix mix;
  EXPECT_NO_THROW(mix.validate());
  EXPECT_DOUBLE_EQ(mix.probability(ServiceClass::kText), 0.70);
  EXPECT_DOUBLE_EQ(mix.probability(ServiceClass::kVoice), 0.20);
  EXPECT_DOUBLE_EQ(mix.probability(ServiceClass::kVideo), 0.10);
  // 0.7*1 + 0.2*5 + 0.1*10 = 2.7 BU.
  EXPECT_DOUBLE_EQ(mix.mean_bandwidth(), 2.7);
}

TEST(TrafficMix, RejectsNegativeAndNonUnit) {
  TrafficMix bad1{-0.1, 0.6, 0.5};
  EXPECT_THROW(bad1.validate(), ConfigError);
  TrafficMix bad2{0.5, 0.2, 0.2};  // sums to 0.9
  EXPECT_THROW(bad2.validate(), ConfigError);
}

TEST(TrafficMix, DegenerateSingleService) {
  TrafficMix all_text{1.0, 0.0, 0.0};
  EXPECT_NO_THROW(all_text.validate());
  EXPECT_DOUBLE_EQ(all_text.mean_bandwidth(), 1.0);
}

}  // namespace
}  // namespace facsp::cellular
