#include "cellular/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

namespace facsp::cellular {
namespace {

TEST(Metrics, EmptyDefaults) {
  MetricsCollector m;
  EXPECT_DOUBLE_EQ(m.acceptance_percent(), 100.0);  // default if_empty
  EXPECT_DOUBLE_EQ(m.acceptance_percent(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.blocking_probability(), 0.0);
  EXPECT_DOUBLE_EQ(m.dropping_probability(), 0.0);
  EXPECT_DOUBLE_EQ(m.completion_ratio(), 1.0);
}

TEST(Metrics, AcceptancePercent) {
  MetricsCollector m;
  m.record_new_call(ServiceClass::kText, true);
  m.record_new_call(ServiceClass::kText, true);
  m.record_new_call(ServiceClass::kVoice, false);
  m.record_new_call(ServiceClass::kVideo, true);
  EXPECT_DOUBLE_EQ(m.acceptance_percent(), 75.0);
  EXPECT_EQ(m.offered_new(), 4u);
  EXPECT_EQ(m.accepted_new(), 3u);
  EXPECT_EQ(m.blocked(), 1u);
  EXPECT_DOUBLE_EQ(m.blocking_probability(), 0.25);
}

TEST(Metrics, PerServiceAcceptance) {
  MetricsCollector m;
  m.record_new_call(ServiceClass::kText, true);
  m.record_new_call(ServiceClass::kVideo, false);
  m.record_new_call(ServiceClass::kVideo, true);
  EXPECT_DOUBLE_EQ(m.acceptance_percent(ServiceClass::kText), 100.0);
  EXPECT_DOUBLE_EQ(m.acceptance_percent(ServiceClass::kVideo), 50.0);
  EXPECT_DOUBLE_EQ(m.acceptance_percent(ServiceClass::kVoice), 100.0);
}

TEST(Metrics, HandoffDropping) {
  MetricsCollector m;
  m.record_handoff(ServiceClass::kVoice, true);
  m.record_handoff(ServiceClass::kVoice, true);
  m.record_handoff(ServiceClass::kVideo, false);
  EXPECT_EQ(m.handoff_attempts(), 3u);
  EXPECT_EQ(m.handoff_successes(), 2u);
  EXPECT_NEAR(m.dropping_probability(), 1.0 / 3.0, 1e-12);
}

TEST(Metrics, CompletionRatio) {
  MetricsCollector m;
  m.record_completion(ServiceClass::kText);
  m.record_completion(ServiceClass::kVoice);
  m.record_completion(ServiceClass::kVideo);
  m.record_drop(ServiceClass::kVideo);
  EXPECT_DOUBLE_EQ(m.completion_ratio(), 0.75);
  EXPECT_EQ(m.completed(), 3u);
  EXPECT_EQ(m.dropped(), 1u);
}

TEST(Metrics, PrintIsHumanReadable) {
  MetricsCollector m;
  m.record_new_call(ServiceClass::kText, true);
  m.record_new_call(ServiceClass::kVideo, false);
  std::ostringstream os;
  m.print(os);
  EXPECT_NE(os.str().find("offered=2"), std::string::npos);
  EXPECT_NE(os.str().find("accepted=1"), std::string::npos);
  EXPECT_NE(os.str().find("text"), std::string::npos);
}

}  // namespace
}  // namespace facsp::cellular
