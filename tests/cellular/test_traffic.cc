#include "cellular/traffic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cellular/mobility.h"
#include "common/error.h"
#include "common/math_util.h"
#include "sim/rng.h"

namespace facsp::cellular {
namespace {

struct TrafficFixture : ::testing::Test {
  HexLayout layout{2000.0};
  Point bs_pos{0.0, 0.0};

  TrafficGenerator make(TrafficConfig cfg, std::uint64_t seed = 5,
                        ConnectionId first_id = 1) {
    return TrafficGenerator(cfg, layout, HexCoord{0, 0}, bs_pos,
                            sim::RandomStream(seed), first_id);
  }
};

TEST_F(TrafficFixture, GeneratesRequestedCount) {
  auto gen = make({});
  EXPECT_EQ(gen.generate(0).size(), 0u);
  EXPECT_EQ(gen.generate(25).size(), 25u);
}

TEST_F(TrafficFixture, ArrivalsSortedWithinWindow) {
  TrafficConfig cfg;
  cfg.arrival_window_s = 600.0;
  auto gen = make(cfg);
  const auto reqs = gen.generate(100, 50.0);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i].arrival_time, 50.0);
    EXPECT_LE(reqs[i].arrival_time, 650.0);
    if (i > 0) EXPECT_GE(reqs[i].arrival_time, reqs[i - 1].arrival_time);
  }
}

TEST_F(TrafficFixture, IdsAreSequentialAndUnique) {
  auto gen = make({}, 5, 100);
  const auto batch1 = gen.generate(10);
  const auto batch2 = gen.generate(10);
  std::set<ConnectionId> ids;
  for (const auto& r : batch1) ids.insert(r.id);
  for (const auto& r : batch2) ids.insert(r.id);
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_EQ(*ids.begin(), 100u);
}

TEST_F(TrafficFixture, ServiceMixMatchesConfiguredShares) {
  auto gen = make({});
  const auto reqs = gen.generate(6000);
  int counts[3] = {0, 0, 0};
  for (const auto& r : reqs) ++counts[static_cast<int>(r.service)];
  EXPECT_NEAR(counts[0] / 6000.0, 0.70, 0.03);
  EXPECT_NEAR(counts[1] / 6000.0, 0.20, 0.03);
  EXPECT_NEAR(counts[2] / 6000.0, 0.10, 0.03);
}

TEST_F(TrafficFixture, BandwidthMatchesService) {
  auto gen = make({});
  for (const auto& r : gen.generate(200))
    EXPECT_DOUBLE_EQ(r.bandwidth, service_bandwidth(r.service));
}

TEST_F(TrafficFixture, HoldingTimesExponentialWithConfiguredMean) {
  TrafficConfig cfg;
  cfg.mean_holding_s = 300.0;
  auto gen = make(cfg);
  double sum = 0.0;
  const auto reqs = gen.generate(4000);
  for (const auto& r : reqs) {
    EXPECT_GE(r.holding_time, 0.0);
    sum += r.holding_time;
  }
  EXPECT_NEAR(sum / reqs.size(), 300.0, 15.0);
}

TEST_F(TrafficFixture, SpawnPositionsInsideCell) {
  auto gen = make({});
  for (const auto& r : gen.generate(300))
    EXPECT_EQ(layout.cell_at(r.mobile.position), (HexCoord{0, 0}));
}

TEST_F(TrafficFixture, UniformSpeedRange) {
  TrafficConfig cfg;
  cfg.min_speed_kmh = 0.0;
  cfg.max_speed_kmh = 120.0;
  auto gen = make(cfg);
  double lo = 1e9, hi = -1e9, sum = 0.0;
  const auto reqs = gen.generate(3000);
  for (const auto& r : reqs) {
    lo = std::min(lo, r.mobile.speed_kmh);
    hi = std::max(hi, r.mobile.speed_kmh);
    sum += r.mobile.speed_kmh;
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(hi, 120.0);
  EXPECT_LT(lo, 5.0);
  EXPECT_GT(hi, 115.0);
  EXPECT_NEAR(sum / reqs.size(), 60.0, 3.0);
}

TEST_F(TrafficFixture, FixedSpeedApplies) {
  TrafficConfig cfg;
  cfg.fixed_speed_kmh = 30.0;
  auto gen = make(cfg);
  for (const auto& r : gen.generate(100))
    EXPECT_DOUBLE_EQ(r.mobile.speed_kmh, 30.0);
}

TEST_F(TrafficFixture, FixedAngleProducesThatAngleToBs) {
  TrafficConfig cfg;
  cfg.fixed_angle_deg = 50.0;
  auto gen = make(cfg);
  for (const auto& r : gen.generate(300)) {
    const double angle = angle_to_bs_deg(r.mobile, bs_pos);
    EXPECT_NEAR(std::fabs(angle), 50.0, 1e-6);
  }
}

TEST_F(TrafficFixture, FixedAngleUsesBothSigns) {
  TrafficConfig cfg;
  cfg.fixed_angle_deg = 30.0;
  auto gen = make(cfg);
  int pos = 0, neg = 0;
  for (const auto& r : gen.generate(300)) {
    (angle_to_bs_deg(r.mobile, bs_pos) > 0.0 ? pos : neg)++;
  }
  EXPECT_GT(pos, 50);
  EXPECT_GT(neg, 50);
}

TEST_F(TrafficFixture, RandomHeadingCoversFullCircle) {
  auto gen = make({});
  int quadrants[4] = {0, 0, 0, 0};
  for (const auto& r : gen.generate(1000)) {
    const double h = r.mobile.heading_deg;
    EXPECT_GE(h, -180.0);
    EXPECT_LE(h, 180.0);
    ++quadrants[static_cast<int>((h + 180.0) / 90.000001)];
  }
  for (int q : quadrants) EXPECT_GT(q, 150);
}

TEST_F(TrafficFixture, SameSeedSameWorkload) {
  auto a = make({}, 42);
  auto b = make({}, 42);
  const auto ra = a.generate(50);
  const auto rb = b.generate(50);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].service, rb[i].service);
    EXPECT_DOUBLE_EQ(ra[i].arrival_time, rb[i].arrival_time);
    EXPECT_DOUBLE_EQ(ra[i].mobile.speed_kmh, rb[i].mobile.speed_kmh);
  }
}

TEST(TrafficConfig, Validation) {
  TrafficConfig bad;
  bad.arrival_window_s = -1.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = {};
  bad.mean_holding_s = 0.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = {};
  bad.min_speed_kmh = 50.0;
  bad.max_speed_kmh = 10.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = {};
  bad.fixed_angle_deg = 200.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = {};
  bad.mix = TrafficMix{0.5, 0.5, 0.5};
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
}

}  // namespace
}  // namespace facsp::cellular
