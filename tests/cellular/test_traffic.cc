#include "cellular/traffic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cellular/mobility.h"
#include "common/error.h"
#include "common/math_util.h"
#include "sim/rng.h"

namespace facsp::cellular {
namespace {

struct TrafficFixture : ::testing::Test {
  HexLayout layout{2000.0};
  Point bs_pos{0.0, 0.0};

  TrafficGenerator make(TrafficConfig cfg, std::uint64_t seed = 5,
                        ConnectionId first_id = 1) {
    return TrafficGenerator(cfg, layout, HexCoord{0, 0}, bs_pos,
                            sim::RandomStream(seed), first_id);
  }
};

TEST_F(TrafficFixture, GeneratesRequestedCount) {
  auto gen = make({});
  EXPECT_EQ(gen.generate(0).size(), 0u);
  EXPECT_EQ(gen.generate(25).size(), 25u);
}

TEST_F(TrafficFixture, ArrivalsSortedWithinWindow) {
  TrafficConfig cfg;
  cfg.arrival_window_s = 600.0;
  auto gen = make(cfg);
  const auto reqs = gen.generate(100, 50.0);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i].arrival_time, 50.0);
    EXPECT_LE(reqs[i].arrival_time, 650.0);
    if (i > 0) EXPECT_GE(reqs[i].arrival_time, reqs[i - 1].arrival_time);
  }
}

TEST_F(TrafficFixture, IdsAreSequentialAndUnique) {
  auto gen = make({}, 5, 100);
  const auto batch1 = gen.generate(10);
  const auto batch2 = gen.generate(10);
  std::set<ConnectionId> ids;
  for (const auto& r : batch1) ids.insert(r.id);
  for (const auto& r : batch2) ids.insert(r.id);
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_EQ(*ids.begin(), 100u);
}

// 4-sigma binomial bound: never flakes on a fixed seed, still tight enough
// to catch a mis-wired share (PR 2's CI-aware technique).
double binomial_bound(double p, double n) {
  return 4.0 * std::sqrt(p * (1.0 - p) / n);
}

TEST_F(TrafficFixture, ServiceMixMatchesConfiguredShares) {
  auto gen = make({});
  const auto reqs = gen.generate(6000);
  int counts[3] = {0, 0, 0};
  for (const auto& r : reqs) ++counts[static_cast<int>(r.service)];
  EXPECT_NEAR(counts[0] / 6000.0, 0.70, binomial_bound(0.70, 6000));
  EXPECT_NEAR(counts[1] / 6000.0, 0.20, binomial_bound(0.20, 6000));
  EXPECT_NEAR(counts[2] / 6000.0, 0.10, binomial_bound(0.10, 6000));
}

TEST_F(TrafficFixture, PrioritySharesMatchConfiguredProportions) {
  TrafficConfig cfg;
  cfg.priority_low = 0.1;
  cfg.priority_normal = 0.6;
  cfg.priority_high = 0.3;
  auto gen = make(cfg);
  const auto reqs = gen.generate(6000);
  int counts[3] = {0, 0, 0};
  for (const auto& r : reqs) ++counts[static_cast<int>(r.priority)];
  EXPECT_NEAR(counts[0] / 6000.0, 0.1, binomial_bound(0.1, 6000));
  EXPECT_NEAR(counts[1] / 6000.0, 0.6, binomial_bound(0.6, 6000));
  EXPECT_NEAR(counts[2] / 6000.0, 0.3, binomial_bound(0.3, 6000));
}

TEST_F(TrafficFixture, DisjointIdRangesAcrossMultipleGenerators) {
  // Several generators in one simulation (the spatial-map case) must never
  // collide: the session driver hands each a 2^24-wide id range.
  constexpr ConnectionId kIdStride = 1u << 24;
  auto a = make({}, 5, 1);
  auto b = make({}, 6, kIdStride);
  auto c = make({}, 7, 2 * kIdStride);
  std::set<ConnectionId> ids;
  for (auto* gen : {&a, &b, &c})
    for (const auto& r : gen->generate(4000)) ids.insert(r.id);
  EXPECT_EQ(ids.size(), 12000u);  // no id seen twice
}

TEST_F(TrafficFixture, MixScheduleShiftsSharesMidWindow) {
  TrafficConfig cfg;
  cfg.mix_schedule = workload::MixSchedule(
      {{450.0, TrafficMix{0.10, 0.10, 0.80}}});  // video-heavy second half
  auto gen = make(cfg);
  const auto reqs = gen.generate(8000);
  int early[3] = {0, 0, 0}, late[3] = {0, 0, 0};
  int n_early = 0, n_late = 0;
  for (const auto& r : reqs) {
    if (r.arrival_time < 450.0) {
      ++early[static_cast<int>(r.service)];
      ++n_early;
    } else {
      ++late[static_cast<int>(r.service)];
      ++n_late;
    }
  }
  ASSERT_GT(n_early, 1000);
  ASSERT_GT(n_late, 1000);
  EXPECT_NEAR(early[0] / static_cast<double>(n_early), 0.70,
              binomial_bound(0.70, n_early));
  EXPECT_NEAR(early[2] / static_cast<double>(n_early), 0.10,
              binomial_bound(0.10, n_early));
  EXPECT_NEAR(late[0] / static_cast<double>(n_late), 0.10,
              binomial_bound(0.10, n_late));
  EXPECT_NEAR(late[2] / static_cast<double>(n_late), 0.80,
              binomial_bound(0.80, n_late));
}

TEST_F(TrafficFixture, PluggedArrivalProcessKeepsRequestsSorted) {
  // Every arrival kind, driven through the generator: requests come back
  // sorted and inside the window regardless of process.
  for (workload::ArrivalKind kind :
       {workload::ArrivalKind::kConditionedUniform,
        workload::ArrivalKind::kOnOff, workload::ArrivalKind::kDiurnal,
        workload::ArrivalKind::kFlashCrowd}) {
    TrafficConfig cfg;
    cfg.arrival.kind = kind;
    auto gen = make(cfg);
    const auto reqs = gen.generate(500, 25.0);
    ASSERT_EQ(reqs.size(), 500u);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_GE(reqs[i].arrival_time, 25.0);
      EXPECT_LE(reqs[i].arrival_time, 25.0 + cfg.arrival_window_s);
      if (i > 0)
        EXPECT_GE(reqs[i].arrival_time, reqs[i - 1].arrival_time)
            << workload::arrival_kind_name(kind);
    }
  }
}

TEST_F(TrafficFixture, GenerateIntoMatchesGenerateAndReusesCapacity) {
  auto a = make({}, 99);
  auto b = make({}, 99);
  const auto reqs = a.generate(64);
  std::vector<CallRequest> out;
  b.generate_into(64, 0.0, out);
  ASSERT_EQ(out.size(), reqs.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, reqs[i].id);
    EXPECT_DOUBLE_EQ(out[i].arrival_time, reqs[i].arrival_time);
    EXPECT_EQ(out[i].service, reqs[i].service);
  }
  const CallRequest* data = out.data();
  b.generate_into(64, 0.0, out);  // steady state: same buffer, new batch
  EXPECT_EQ(out.data(), data);
  EXPECT_EQ(out.size(), 64u);
}

TEST_F(TrafficFixture, BandwidthMatchesService) {
  auto gen = make({});
  for (const auto& r : gen.generate(200))
    EXPECT_DOUBLE_EQ(r.bandwidth, service_bandwidth(r.service));
}

TEST_F(TrafficFixture, HoldingTimesExponentialWithConfiguredMean) {
  TrafficConfig cfg;
  cfg.mean_holding_s = 300.0;
  auto gen = make(cfg);
  double sum = 0.0;
  const auto reqs = gen.generate(4000);
  for (const auto& r : reqs) {
    EXPECT_GE(r.holding_time, 0.0);
    sum += r.holding_time;
  }
  EXPECT_NEAR(sum / reqs.size(), 300.0, 15.0);
}

TEST_F(TrafficFixture, SpawnPositionsInsideCell) {
  auto gen = make({});
  for (const auto& r : gen.generate(300))
    EXPECT_EQ(layout.cell_at(r.mobile.position), (HexCoord{0, 0}));
}

TEST_F(TrafficFixture, UniformSpeedRange) {
  TrafficConfig cfg;
  cfg.min_speed_kmh = 0.0;
  cfg.max_speed_kmh = 120.0;
  auto gen = make(cfg);
  double lo = 1e9, hi = -1e9, sum = 0.0;
  const auto reqs = gen.generate(3000);
  for (const auto& r : reqs) {
    lo = std::min(lo, r.mobile.speed_kmh);
    hi = std::max(hi, r.mobile.speed_kmh);
    sum += r.mobile.speed_kmh;
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(hi, 120.0);
  EXPECT_LT(lo, 5.0);
  EXPECT_GT(hi, 115.0);
  EXPECT_NEAR(sum / reqs.size(), 60.0, 3.0);
}

TEST_F(TrafficFixture, FixedSpeedApplies) {
  TrafficConfig cfg;
  cfg.fixed_speed_kmh = 30.0;
  auto gen = make(cfg);
  for (const auto& r : gen.generate(100))
    EXPECT_DOUBLE_EQ(r.mobile.speed_kmh, 30.0);
}

TEST_F(TrafficFixture, FixedAngleProducesThatAngleToBs) {
  TrafficConfig cfg;
  cfg.fixed_angle_deg = 50.0;
  auto gen = make(cfg);
  for (const auto& r : gen.generate(300)) {
    const double angle = angle_to_bs_deg(r.mobile, bs_pos);
    EXPECT_NEAR(std::fabs(angle), 50.0, 1e-6);
  }
}

TEST_F(TrafficFixture, FixedAngleUsesBothSigns) {
  TrafficConfig cfg;
  cfg.fixed_angle_deg = 30.0;
  auto gen = make(cfg);
  int pos = 0, neg = 0;
  for (const auto& r : gen.generate(300)) {
    (angle_to_bs_deg(r.mobile, bs_pos) > 0.0 ? pos : neg)++;
  }
  EXPECT_GT(pos, 50);
  EXPECT_GT(neg, 50);
}

TEST_F(TrafficFixture, RandomHeadingCoversFullCircle) {
  auto gen = make({});
  int quadrants[4] = {0, 0, 0, 0};
  for (const auto& r : gen.generate(1000)) {
    const double h = r.mobile.heading_deg;
    EXPECT_GE(h, -180.0);
    EXPECT_LE(h, 180.0);
    ++quadrants[static_cast<int>((h + 180.0) / 90.000001)];
  }
  for (int q : quadrants) EXPECT_GT(q, 150);
}

TEST_F(TrafficFixture, SameSeedSameWorkload) {
  auto a = make({}, 42);
  auto b = make({}, 42);
  const auto ra = a.generate(50);
  const auto rb = b.generate(50);
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].service, rb[i].service);
    EXPECT_DOUBLE_EQ(ra[i].arrival_time, rb[i].arrival_time);
    EXPECT_DOUBLE_EQ(ra[i].mobile.speed_kmh, rb[i].mobile.speed_kmh);
  }
}

TEST_F(TrafficFixture, ConstructorRejectsInvalidConfigBeforeAnyDraw) {
  // The generator must validate before building its internal distributions
  // (negative discrete weights are UB): a bad config throws, never UB.
  TrafficConfig bad;
  bad.priority_low = -0.5;
  bad.priority_normal = 1.3;
  EXPECT_THROW(make(bad), facsp::ConfigError);
  bad = {};
  bad.mix = TrafficMix{-0.2, 0.6, 0.6};
  EXPECT_THROW(make(bad), facsp::ConfigError);
}

TEST(TrafficConfig, Validation) {
  TrafficConfig bad;
  bad.arrival_window_s = -1.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = {};
  bad.mean_holding_s = 0.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = {};
  bad.min_speed_kmh = 50.0;
  bad.max_speed_kmh = 10.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = {};
  bad.fixed_angle_deg = 200.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = {};
  bad.mix = TrafficMix{0.5, 0.5, 0.5};
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
}

}  // namespace
}  // namespace facsp::cellular
