#include "cellular/hexgrid.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "sim/rng.h"

namespace facsp::cellular {
namespace {

TEST(HexCoord, CubeInvariant) {
  const HexCoord h{3, -1};
  EXPECT_EQ(h.q + h.r + h.s(), 0);
}

TEST(HexDistance, KnownValues) {
  EXPECT_EQ(hex_distance({0, 0}, {0, 0}), 0);
  EXPECT_EQ(hex_distance({0, 0}, {1, 0}), 1);
  EXPECT_EQ(hex_distance({0, 0}, {1, -1}), 1);
  EXPECT_EQ(hex_distance({0, 0}, {2, -1}), 2);
  EXPECT_EQ(hex_distance({-2, 1}, {3, -1}), 5);
}

TEST(HexDistance, Symmetric) {
  const HexCoord a{2, -3}, b{-1, 4};
  EXPECT_EQ(hex_distance(a, b), hex_distance(b, a));
}

TEST(HexNeighbors, SixUniqueAtDistanceOne) {
  const HexCoord c{1, 2};
  const auto ns = hex_neighbors(c);
  ASSERT_EQ(ns.size(), 6u);
  std::set<std::pair<int, int>> unique;
  for (const auto& n : ns) {
    EXPECT_EQ(hex_distance(c, n), 1);
    unique.insert({n.q, n.r});
  }
  EXPECT_EQ(unique.size(), 6u);
}

TEST(HexRing, SizesAndDistances) {
  EXPECT_EQ(hex_ring({0, 0}, 0).size(), 1u);
  for (int r = 1; r <= 4; ++r) {
    const auto ring = hex_ring({0, 0}, r);
    EXPECT_EQ(ring.size(), static_cast<std::size_t>(6 * r));
    for (const auto& h : ring) EXPECT_EQ(hex_distance({0, 0}, h), r);
  }
}

TEST(HexDisc, SizeFormula) {
  for (int r = 0; r <= 4; ++r) {
    const auto disc = hex_disc({0, 0}, r);
    EXPECT_EQ(disc.size(), static_cast<std::size_t>(1 + 3 * r * (r + 1)));
    for (const auto& h : disc) EXPECT_LE(hex_distance({0, 0}, h), r);
  }
}

TEST(HexDisc, OffCenter) {
  const HexCoord c{5, -2};
  const auto disc = hex_disc(c, 2);
  EXPECT_EQ(disc.size(), 19u);
  for (const auto& h : disc) EXPECT_LE(hex_distance(c, h), 2);
}

TEST(HexLayout, CenterOfOriginIsOrigin) {
  const HexLayout layout(1000.0);
  const Point p = layout.center({0, 0});
  EXPECT_DOUBLE_EQ(p.x, 0.0);
  EXPECT_DOUBLE_EQ(p.y, 0.0);
}

TEST(HexLayout, CenterRoundTripsThroughCellAt) {
  const HexLayout layout(2000.0);
  for (const auto& h : hex_disc({0, 0}, 3)) {
    EXPECT_EQ(layout.cell_at(layout.center(h)), h)
        << "cell (" << h.q << "," << h.r << ")";
  }
}

TEST(HexLayout, NeighborCentersAreOneCellApart) {
  const HexLayout layout(1000.0);
  const Point c = layout.center({0, 0});
  // Pointy-top hexes: adjacent centres are sqrt(3)*R apart.
  for (const auto& n : hex_neighbors({0, 0})) {
    EXPECT_NEAR(distance(c, layout.center(n)), std::sqrt(3.0) * 1000.0,
                1e-6);
  }
}

TEST(HexLayout, PointsNearBoundaryResolveToSomeAdjacentCell) {
  const HexLayout layout(1000.0);
  sim::RandomStream rng(3);
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.uniform(-5000.0, 5000.0), rng.uniform(-5000.0, 5000.0)};
    const HexCoord h = layout.cell_at(p);
    // The chosen cell's centre must be the nearest or near-nearest centre.
    const double d_own = distance(p, layout.center(h));
    for (const auto& n : hex_neighbors(h)) {
      EXPECT_LE(d_own, distance(p, layout.center(n)) + 1e-6);
    }
  }
}

TEST(HexLayout, RandomPointInCellStaysInCell) {
  const HexLayout layout(1500.0);
  sim::RandomStream rng(5);
  const HexCoord target{2, -1};
  for (int i = 0; i < 300; ++i) {
    const Point p = layout.random_point_in_cell(
        target, [&rng] { return rng.uniform(0.0, 1.0); });
    EXPECT_EQ(layout.cell_at(p), target);
  }
}

TEST(HexLayout, RejectsNonPositiveRadius) {
  EXPECT_THROW(HexLayout(0.0), ConfigError);
  EXPECT_THROW(HexLayout(-5.0), ConfigError);
}

TEST(Geometry, DistanceAndHeading) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(heading_deg({0, 0}, {1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(heading_deg({0, 0}, {0, 1}), 90.0);
  EXPECT_DOUBLE_EQ(heading_deg({0, 0}, {-1, 0}), 180.0);
  EXPECT_DOUBLE_EQ(heading_deg({0, 0}, {0, -1}), -90.0);
}

}  // namespace
}  // namespace facsp::cellular
