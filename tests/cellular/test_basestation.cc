#include "cellular/basestation.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace facsp::cellular {
namespace {

Connection make_conn(ConnectionId id, ServiceClass svc) {
  Connection c;
  c.id = id;
  c.service = svc;
  c.bandwidth = service_bandwidth(svc);
  return c;
}

struct BsFixture : ::testing::Test {
  BaseStation bs{7, HexCoord{0, 0}, Point{0.0, 0.0}, 40.0};
};

TEST_F(BsFixture, InitialState) {
  EXPECT_EQ(bs.id(), 7u);
  EXPECT_DOUBLE_EQ(bs.capacity(), 40.0);
  EXPECT_DOUBLE_EQ(bs.used(), 0.0);
  EXPECT_DOUBLE_EQ(bs.free(), 40.0);
  EXPECT_EQ(bs.active_connections(), 0u);
  EXPECT_TRUE(bs.can_fit(40.0));
  EXPECT_FALSE(bs.can_fit(40.1));
}

TEST_F(BsFixture, AllocateTracksLoadByClass) {
  EXPECT_TRUE(bs.allocate(make_conn(1, ServiceClass::kVideo), 0.0));
  EXPECT_TRUE(bs.allocate(make_conn(2, ServiceClass::kText), 1.0));
  EXPECT_TRUE(bs.allocate(make_conn(3, ServiceClass::kVoice), 2.0));
  const LoadState& load = bs.load();
  EXPECT_DOUBLE_EQ(load.used, 16.0);
  EXPECT_DOUBLE_EQ(load.rt_used, 15.0);   // video + voice
  EXPECT_DOUBLE_EQ(load.nrt_used, 1.0);   // text
  EXPECT_EQ(load.rt_count, 2u);
  EXPECT_EQ(load.nrt_count, 1u);
  EXPECT_DOUBLE_EQ(load.utilization(), 0.4);
}

TEST_F(BsFixture, AllocateFailsWhenFull) {
  for (ConnectionId id = 1; id <= 4; ++id)
    EXPECT_TRUE(bs.allocate(make_conn(id, ServiceClass::kVideo), 0.0));
  EXPECT_DOUBLE_EQ(bs.free(), 0.0);
  EXPECT_FALSE(bs.allocate(make_conn(5, ServiceClass::kText), 1.0));
  EXPECT_EQ(bs.active_connections(), 4u);
  EXPECT_DOUBLE_EQ(bs.used(), 40.0);  // unchanged by the failed attempt
}

TEST_F(BsFixture, ReleaseRestoresCapacity) {
  bs.allocate(make_conn(1, ServiceClass::kVideo), 0.0);
  bs.allocate(make_conn(2, ServiceClass::kVoice), 0.0);
  bs.release(1, 5.0);
  EXPECT_DOUBLE_EQ(bs.used(), 5.0);
  EXPECT_DOUBLE_EQ(bs.load().rt_used, 5.0);
  EXPECT_EQ(bs.load().rt_count, 1u);
  EXPECT_FALSE(bs.holds(1));
  EXPECT_TRUE(bs.holds(2));
}

TEST_F(BsFixture, DoubleAllocateSameConnectionThrows) {
  bs.allocate(make_conn(1, ServiceClass::kText), 0.0);
  EXPECT_THROW(bs.allocate(make_conn(1, ServiceClass::kText), 1.0),
               ContractViolation);
}

TEST_F(BsFixture, ReleaseUnknownConnectionThrows) {
  EXPECT_THROW(bs.release(99, 0.0), ContractViolation);
}

TEST_F(BsFixture, HandoffCountTracked) {
  bs.allocate(make_conn(1, ServiceClass::kVoice), 0.0, /*via_handoff=*/true);
  bs.allocate(make_conn(2, ServiceClass::kVoice), 0.0, /*via_handoff=*/false);
  EXPECT_EQ(bs.load().handoff_count, 1u);
  bs.release(1, 1.0);
  EXPECT_EQ(bs.load().handoff_count, 0u);
}

TEST_F(BsFixture, RepeatedChurnLeavesNoDrift) {
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(bs.allocate(make_conn(round * 2 + 1, ServiceClass::kVoice),
                            round));
    ASSERT_TRUE(
        bs.allocate(make_conn(round * 2 + 2, ServiceClass::kText), round));
    bs.release(round * 2 + 1, round + 0.5);
    bs.release(round * 2 + 2, round + 0.5);
  }
  EXPECT_DOUBLE_EQ(bs.used(), 0.0);
  EXPECT_DOUBLE_EQ(bs.load().rt_used, 0.0);
  EXPECT_DOUBLE_EQ(bs.load().nrt_used, 0.0);
  EXPECT_EQ(bs.active_connections(), 0u);
}

TEST_F(BsFixture, UtilizationTimeAverage) {
  bs.start_metrics(0.0);
  bs.allocate(make_conn(1, ServiceClass::kVideo), 10.0);  // 25% from t=10
  bs.release(1, 30.0);                                    // back to 0
  // [0,10): 0%, [10,30): 25%, [30,40): 0% -> average 12.5%.
  EXPECT_NEAR(bs.average_utilization(40.0), 0.125, 1e-9);
}

TEST_F(BsFixture, UtilizationWithoutStartThrows) {
  EXPECT_THROW(bs.average_utilization(1.0), ContractViolation);
}

TEST(BaseStation, RejectsNonPositiveCapacity) {
  EXPECT_THROW(BaseStation(0, HexCoord{0, 0}, Point{0, 0}, 0.0), ConfigError);
  EXPECT_THROW(BaseStation(0, HexCoord{0, 0}, Point{0, 0}, -1.0),
               ConfigError);
}

TEST(BaseStation, FractionalBandwidthFits) {
  BaseStation bs(0, HexCoord{0, 0}, Point{0, 0}, 1.0);
  Connection c;
  c.id = 1;
  c.service = ServiceClass::kText;
  c.bandwidth = 0.5;
  EXPECT_TRUE(bs.allocate(c, 0.0));
  Connection c2 = c;
  c2.id = 2;
  EXPECT_TRUE(bs.allocate(c2, 0.0));
  Connection c3 = c;
  c3.id = 3;
  c3.bandwidth = 0.01;
  EXPECT_FALSE(bs.allocate(c3, 0.0));
}

}  // namespace
}  // namespace facsp::cellular
