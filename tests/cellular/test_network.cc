#include "cellular/network.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace facsp::cellular {
namespace {

TEST(Network, DiscSizes) {
  EXPECT_EQ(CellularNetwork(0, 1000.0, 40.0).cell_count(), 1u);
  EXPECT_EQ(CellularNetwork(1, 1000.0, 40.0).cell_count(), 7u);
  EXPECT_EQ(CellularNetwork(2, 1000.0, 40.0).cell_count(), 19u);
}

TEST(Network, CenterIsOrigin) {
  CellularNetwork net(1, 1000.0, 40.0);
  EXPECT_EQ(net.center().coord(), (HexCoord{0, 0}));
  EXPECT_DOUBLE_EQ(net.center().position().x, 0.0);
  EXPECT_DOUBLE_EQ(net.center().capacity(), 40.0);
}

TEST(Network, UniqueIdsAndCoords) {
  CellularNetwork net(2, 1000.0, 40.0);
  std::set<BaseStationId> ids;
  std::set<std::pair<int, int>> coords;
  for (const BaseStation* bs : net.stations()) {
    ids.insert(bs->id());
    coords.insert({bs->coord().q, bs->coord().r});
  }
  EXPECT_EQ(ids.size(), 19u);
  EXPECT_EQ(coords.size(), 19u);
}

TEST(Network, StationLookupByCoord) {
  CellularNetwork net(1, 1000.0, 40.0);
  EXPECT_NE(net.station_at({1, 0}), nullptr);
  EXPECT_NE(net.station_at({0, -1}), nullptr);
  EXPECT_EQ(net.station_at({2, 0}), nullptr);  // outside 1-ring disc
}

TEST(Network, StationCoveringPoints) {
  CellularNetwork net(1, 1000.0, 40.0);
  EXPECT_EQ(net.station_covering({0.0, 0.0}), &net.center());
  // Far outside the disc.
  EXPECT_EQ(net.station_covering({100000.0, 0.0}), nullptr);
  EXPECT_FALSE(net.covers({100000.0, 0.0}));
  EXPECT_TRUE(net.covers({0.0, 0.0}));
}

TEST(Network, NeighborLookup) {
  CellularNetwork net(1, 1000.0, 40.0);
  // Centre has all 6 neighbours inside the disc.
  EXPECT_EQ(net.neighbors_of({0, 0}).size(), 6u);
  // An edge cell only has the neighbours that exist.
  const auto edge_neighbors = net.neighbors_of({1, 0});
  EXPECT_LT(edge_neighbors.size(), 6u);
  EXPECT_GE(edge_neighbors.size(), 2u);
}

TEST(Network, CellPositionsMatchLayout) {
  CellularNetwork net(2, 1500.0, 40.0);
  for (const BaseStation* bs : net.stations()) {
    const Point expect = net.layout().center(bs->coord());
    EXPECT_DOUBLE_EQ(bs->position().x, expect.x);
    EXPECT_DOUBLE_EQ(bs->position().y, expect.y);
    EXPECT_EQ(net.layout().cell_at(bs->position()), bs->coord());
  }
}

TEST(Network, StartMetricsEnablesUtilization) {
  CellularNetwork net(1, 1000.0, 40.0);
  net.start_metrics(0.0);
  for (BaseStation* bs : net.stations())
    EXPECT_DOUBLE_EQ(bs->average_utilization(10.0), 0.0);
}

TEST(Network, ValidationErrors) {
  EXPECT_THROW(CellularNetwork(-1, 1000.0, 40.0), ConfigError);
  EXPECT_THROW(CellularNetwork(1, 0.0, 40.0), ConfigError);
  EXPECT_THROW(CellularNetwork(1, 1000.0, 0.0), ConfigError);
}

}  // namespace
}  // namespace facsp::cellular
