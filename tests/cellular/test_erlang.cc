#include "cellular/erlang.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace facsp::cellular {
namespace {

TEST(ErlangB, KnownValues) {
  // Classic table values.
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(1.0, 2), 0.2, 1e-12);
  EXPECT_NEAR(erlang_b(10.0, 10), 0.21459, 1e-4);
  EXPECT_NEAR(erlang_b(20.0, 30), 0.00846, 1e-4);
}

TEST(ErlangB, EdgeCases) {
  EXPECT_DOUBLE_EQ(erlang_b(0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(erlang_b(3.0, 0), 1.0);
  EXPECT_THROW(erlang_b(-1.0, 5), ConfigError);
  EXPECT_THROW(erlang_b(1.0, -1), ConfigError);
}

TEST(ErlangB, MonotoneInLoadAndServers) {
  EXPECT_LT(erlang_b(5.0, 10), erlang_b(8.0, 10));
  EXPECT_GT(erlang_b(5.0, 5), erlang_b(5.0, 10));
}

TEST(KaufmanRoberts, SingleUnitClassReducesToErlangB) {
  // One class of 1-BU calls on a C-unit link == Erlang-B with C servers.
  for (double a : {2.0, 8.0, 15.0}) {
    KaufmanRoberts kr(10, {{a, 1}});
    EXPECT_NEAR(kr.blocking(0), erlang_b(a, 10), 1e-10) << "a=" << a;
  }
}

TEST(KaufmanRoberts, OccupancyDistributionNormalised) {
  KaufmanRoberts kr(40, {{7.0, 1}, {2.0, 5}, {1.0, 10}});
  double total = 0.0;
  for (int j = 0; j <= 40; ++j) {
    EXPECT_GE(kr.occupancy_probability(j), 0.0);
    total += kr.occupancy_probability(j);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(KaufmanRoberts, WiderCallsBlockMore) {
  KaufmanRoberts kr(40, {{7.0, 1}, {2.0, 5}, {1.0, 10}});
  EXPECT_LT(kr.blocking(0), kr.blocking(1));
  EXPECT_LT(kr.blocking(1), kr.blocking(2));
}

TEST(KaufmanRoberts, ZeroLoadMeansNoBlocking) {
  KaufmanRoberts kr(40, {{0.0, 1}, {0.0, 5}});
  EXPECT_DOUBLE_EQ(kr.blocking(0), 0.0);
  EXPECT_DOUBLE_EQ(kr.mean_occupancy(), 0.0);
  EXPECT_DOUBLE_EQ(kr.acceptance_percent(), 100.0);
}

TEST(KaufmanRoberts, HeavyLoadBlocksAlmostEverything) {
  KaufmanRoberts kr(10, {{1000.0, 1}});
  EXPECT_GT(kr.blocking(0), 0.98);
}

TEST(KaufmanRoberts, MeanOccupancyMatchesCarriedLoad) {
  // Carried load = sum_k a_k b_k (1 - B_k) must equal mean occupancy.
  KaufmanRoberts kr(40, {{7.0, 1}, {2.0, 5}, {1.0, 10}});
  double carried = 0.0;
  for (std::size_t k = 0; k < kr.classes().size(); ++k)
    carried += kr.classes()[k].offered_erlangs *
               kr.classes()[k].bandwidth_units * (1.0 - kr.blocking(k));
  EXPECT_NEAR(kr.mean_occupancy(), carried, 1e-8);
}

TEST(KaufmanRoberts, ForPaperMixBuildsThreeClasses) {
  const auto kr = KaufmanRoberts::for_paper_mix(40, TrafficMix{}, 0.05, 300.0);
  ASSERT_EQ(kr.classes().size(), 3u);
  EXPECT_NEAR(kr.classes()[0].offered_erlangs, 0.05 * 0.7 * 300.0, 1e-9);
  EXPECT_EQ(kr.classes()[0].bandwidth_units, 1);
  EXPECT_EQ(kr.classes()[1].bandwidth_units, 5);
  EXPECT_EQ(kr.classes()[2].bandwidth_units, 10);
}

TEST(KaufmanRoberts, Validation) {
  EXPECT_THROW(KaufmanRoberts(0, {{1.0, 1}}), ConfigError);
  EXPECT_THROW(KaufmanRoberts(10, {}), ConfigError);
  EXPECT_THROW(KaufmanRoberts(10, {{1.0, 0}}), ConfigError);
  EXPECT_THROW(KaufmanRoberts(10, {{-1.0, 1}}), ConfigError);
}

}  // namespace
}  // namespace facsp::cellular
