#include "common/expects.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace facsp {
namespace {

TEST(Expects, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(FACSP_EXPECTS(1 + 1 == 2));
  EXPECT_NO_THROW(FACSP_ENSURES(true));
}

TEST(Expects, FailingConditionThrowsContractViolation) {
  EXPECT_THROW(FACSP_EXPECTS(false), ContractViolation);
  EXPECT_THROW(FACSP_ENSURES(1 > 2), ContractViolation);
}

TEST(Expects, MessageIncludesExpressionAndContext) {
  try {
    const int n = 3;
    FACSP_EXPECTS_MSG(n == 4, "n was " << n);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("n == 4"), std::string::npos);
    EXPECT_NE(what.find("n was 3"), std::string::npos);
  }
}

TEST(Expects, ContractViolationIsAnError) {
  // Applications catching facsp::Error at the boundary also see contract
  // violations.
  try {
    FACSP_EXPECTS(false);
    FAIL();
  } catch (const Error&) {
    SUCCEED();
  }
}

TEST(Errors, ParseErrorCarriesLineNumber) {
  const ParseError with_line("bad token", 42);
  EXPECT_EQ(with_line.line(), 42);
  EXPECT_NE(std::string(with_line.what()).find("42"), std::string::npos);

  const ParseError without(std::string("oops"));
  EXPECT_EQ(without.line(), -1);
}

TEST(Errors, HierarchyIsCatchable) {
  EXPECT_THROW(throw ConfigError("x"), Error);
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw ContractViolation("x"), Error);
}

}  // namespace
}  // namespace facsp
