#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace facsp {
namespace {

TEST(ApproxEqual, ExactValuesCompareEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
  EXPECT_TRUE(approx_equal(-3.5, -3.5));
}

TEST(ApproxEqual, WithinRelativeTolerance) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(approx_equal(1e9, 1e9 * (1.0 + 1e-10)));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
}

TEST(ApproxEqual, WithinAbsoluteToleranceNearZero) {
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
  EXPECT_FALSE(approx_equal(0.0, 1e-6));
}

TEST(ApproxEqual, InfinitiesOfSameSignAreEqual) {
  EXPECT_TRUE(approx_equal(kInf, kInf));
  EXPECT_FALSE(approx_equal(kInf, -kInf));
  EXPECT_FALSE(approx_equal(kInf, 1.0));
}

TEST(Lerp, EndpointsAndMidpoint) {
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 2.0), 6.0);  // extrapolation
}

TEST(Clamp, InsideAndOutside) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(11.0, 0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(clamp(0.0, 0.0, 0.0), 0.0);
}

TEST(AngleConversions, DegreesRadiansRoundTrip) {
  EXPECT_NEAR(deg_to_rad(180.0), kPi, 1e-12);
  EXPECT_NEAR(rad_to_deg(kPi / 2.0), 90.0, 1e-12);
  for (double d : {-170.0, -45.0, 0.0, 33.3, 120.0}) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(d)), d, 1e-10);
  }
}

TEST(WrapAngle, IdentityInsideRange) {
  EXPECT_DOUBLE_EQ(wrap_angle_deg(0.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_angle_deg(179.0), 179.0);
  EXPECT_DOUBLE_EQ(wrap_angle_deg(-179.0), -179.0);
  EXPECT_DOUBLE_EQ(wrap_angle_deg(180.0), 180.0);
}

TEST(WrapAngle, WrapsBeyondHalfTurn) {
  EXPECT_DOUBLE_EQ(wrap_angle_deg(181.0), -179.0);
  EXPECT_DOUBLE_EQ(wrap_angle_deg(-181.0), 179.0);
  EXPECT_DOUBLE_EQ(wrap_angle_deg(360.0), 0.0);
  EXPECT_DOUBLE_EQ(wrap_angle_deg(540.0), 180.0);
  EXPECT_DOUBLE_EQ(wrap_angle_deg(-360.0), 0.0);
  EXPECT_NEAR(wrap_angle_deg(725.0), 5.0, 1e-10);
}

TEST(WrapAngle, MinusPiMapsToPlusPi) {
  // (-180, 180] convention: -180 maps to +180.
  EXPECT_DOUBLE_EQ(wrap_angle_deg(-180.0), 180.0);
}

TEST(AngleDistance, BasicDistances) {
  EXPECT_DOUBLE_EQ(angle_distance_deg(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(angle_distance_deg(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(angle_distance_deg(-90.0, 90.0), 180.0);
  EXPECT_DOUBLE_EQ(angle_distance_deg(170.0, -170.0), 20.0);
}

TEST(AngleDistance, Symmetric) {
  for (double a : {-150.0, -10.0, 45.0, 170.0})
    for (double b : {-60.0, 0.0, 90.0})
      EXPECT_DOUBLE_EQ(angle_distance_deg(a, b), angle_distance_deg(b, a));
}

TEST(IsFinite, DetectsSpecials) {
  EXPECT_TRUE(is_finite(0.0));
  EXPECT_TRUE(is_finite(-1e300));
  EXPECT_FALSE(is_finite(kInf));
  EXPECT_FALSE(is_finite(std::nan("")));
}

}  // namespace
}  // namespace facsp
