#include "core/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace facsp::core {
namespace {

sim::Series make_series(const std::string& name,
                        std::initializer_list<std::pair<double, double>> pts) {
  sim::Series s(name);
  for (const auto& [x, y] : pts) s.add(x, y);
  return s;
}

TEST(Crossover, DetectsFirstCrossing) {
  const auto a = make_series("a", {{10, 95}, {20, 90}, {30, 80}, {40, 60}});
  const auto b = make_series("b", {{10, 90}, {20, 88}, {30, 85}, {40, 82}});
  const auto x = crossover_x(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ(*x, 30.0);
}

TEST(Crossover, NoneWhenAlwaysAbove) {
  const auto a = make_series("a", {{10, 95}, {20, 94}});
  const auto b = make_series("b", {{10, 90}, {20, 89}});
  EXPECT_FALSE(crossover_x(a, b).has_value());
}

TEST(Crossover, NoneWhenAlwaysBelow) {
  const auto a = make_series("a", {{10, 80}, {20, 70}});
  const auto b = make_series("b", {{10, 90}, {20, 89}});
  EXPECT_FALSE(crossover_x(a, b).has_value());
}

TEST(Crossover, HandlesDifferentGrids) {
  const auto a = make_series("a", {{10, 95}, {30, 70}});
  const auto b = make_series("b", {{10, 90}, {20, 88}, {30, 85}});
  const auto x = crossover_x(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ(*x, 30.0);
}

TEST(NonIncreasing, DetectsMonotonicity) {
  EXPECT_TRUE(is_non_increasing(
      make_series("m", {{1, 100}, {2, 90}, {3, 90}, {4, 85}})));
  EXPECT_FALSE(is_non_increasing(
      make_series("m", {{1, 100}, {2, 90}, {3, 95}})));
  // Slack tolerates simulation noise.
  EXPECT_TRUE(is_non_increasing(
      make_series("m", {{1, 100}, {2, 90}, {3, 91}}), 2.0));
}

TEST(OrderedAt, ChecksSeriesOrderingAtProbe) {
  const auto s1 = make_series("4kmh", {{50, 40}});
  const auto s2 = make_series("30kmh", {{50, 60}});
  const auto s3 = make_series("60kmh", {{50, 80}});
  EXPECT_TRUE(ordered_at({&s1, &s2, &s3}, 50.0));
  EXPECT_FALSE(ordered_at({&s3, &s2, &s1}, 50.0));
  // Slack admits small inversions.
  const auto s2b = make_series("x", {{50, 59.5}});
  EXPECT_TRUE(ordered_at({&s2, &s2b, &s3}, 50.0, 1.0));
}

TEST(MeanY, AveragesSeries) {
  EXPECT_DOUBLE_EQ(mean_y(make_series("m", {{1, 10}, {2, 20}, {3, 30}})),
                   20.0);
}

TEST(WriteCsv, RoundTripsThroughFile) {
  sim::Figure fig("t", "N", "pct");
  fig.add_series("a").add(1.0, 2.0);
  const std::string path = "/tmp/facsp_test_fig.csv";
  write_csv(fig, path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "N,a\n1,2\n");
  std::remove(path.c_str());
}

TEST(WriteCsv, BadPathThrows) {
  sim::Figure fig("t", "x", "y");
  EXPECT_THROW(write_csv(fig, "/nonexistent_dir_xyz/f.csv"), Error);
}

TEST(ShapeChecks, PrintFormat) {
  std::ostringstream os;
  print_shape_checks(os, {{"first check", true, "ok"},
                          {"second check", false, ""}});
  const std::string out = os.str();
  EXPECT_NE(out.find("[PASS] first check"), std::string::npos);
  EXPECT_NE(out.find("[FAIL] second check"), std::string::npos);
  EXPECT_NE(out.find("(ok)"), std::string::npos);
}

}  // namespace
}  // namespace facsp::core
