#include "core/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace facsp::core {
namespace {

sim::Series make_series(const std::string& name,
                        std::initializer_list<std::pair<double, double>> pts) {
  sim::Series s(name);
  for (const auto& [x, y] : pts) s.add(x, y);
  return s;
}

TEST(Crossover, DetectsFirstCrossing) {
  const auto a = make_series("a", {{10, 95}, {20, 90}, {30, 80}, {40, 60}});
  const auto b = make_series("b", {{10, 90}, {20, 88}, {30, 85}, {40, 82}});
  const auto x = crossover_x(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ(*x, 30.0);
}

TEST(Crossover, NoneWhenAlwaysAbove) {
  const auto a = make_series("a", {{10, 95}, {20, 94}});
  const auto b = make_series("b", {{10, 90}, {20, 89}});
  EXPECT_FALSE(crossover_x(a, b).has_value());
}

TEST(Crossover, NoneWhenAlwaysBelow) {
  const auto a = make_series("a", {{10, 80}, {20, 70}});
  const auto b = make_series("b", {{10, 90}, {20, 89}});
  EXPECT_FALSE(crossover_x(a, b).has_value());
}

TEST(Crossover, HandlesDifferentGrids) {
  const auto a = make_series("a", {{10, 95}, {30, 70}});
  const auto b = make_series("b", {{10, 90}, {20, 88}, {30, 85}});
  const auto x = crossover_x(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_DOUBLE_EQ(*x, 30.0);
}

TEST(NonIncreasing, DetectsMonotonicity) {
  EXPECT_TRUE(is_non_increasing(
      make_series("m", {{1, 100}, {2, 90}, {3, 90}, {4, 85}})));
  EXPECT_FALSE(is_non_increasing(
      make_series("m", {{1, 100}, {2, 90}, {3, 95}})));
  // Slack tolerates simulation noise.
  EXPECT_TRUE(is_non_increasing(
      make_series("m", {{1, 100}, {2, 90}, {3, 91}}), 2.0));
}

TEST(OrderedAt, ChecksSeriesOrderingAtProbe) {
  const auto s1 = make_series("4kmh", {{50, 40}});
  const auto s2 = make_series("30kmh", {{50, 60}});
  const auto s3 = make_series("60kmh", {{50, 80}});
  EXPECT_TRUE(ordered_at({&s1, &s2, &s3}, 50.0));
  EXPECT_FALSE(ordered_at({&s3, &s2, &s1}, 50.0));
  // Slack admits small inversions.
  const auto s2b = make_series("x", {{50, 59.5}});
  EXPECT_TRUE(ordered_at({&s2, &s2b, &s3}, 50.0, 1.0));
}

TEST(MeanY, AveragesSeries) {
  EXPECT_DOUBLE_EQ(mean_y(make_series("m", {{1, 10}, {2, 20}, {3, 30}})),
                   20.0);
}

TEST(WriteCsv, RoundTripsThroughFile) {
  sim::Figure fig("t", "N", "pct");
  fig.add_series("a").add(1.0, 2.0);
  const std::string path = "/tmp/facsp_test_fig.csv";
  write_csv(fig, path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "N,a\n1,2\n");
  std::remove(path.c_str());
}

TEST(WriteCsv, BadPathThrows) {
  sim::Figure fig("t", "x", "y");
  EXPECT_THROW(write_csv(fig, "/nonexistent_dir_xyz/f.csv"), Error);
}

// --- ResultTable writers ---------------------------------------------------

// Two rows with deliberately awkward doubles (non-terminating binary
// fractions, many significant digits) so the shortest-round-trip guarantee
// is actually exercised.
ResultTable small_table() {
  ResultTable t;
  t.axes = {"policy", "n"};
  t.replications = 2;
  t.ci_level = 0.95;
  ResultRow a;
  a.coords = {"facs-p", "60"};
  a.n = 60;
  for (const double acc : {90.0, 85.5}) {
    a.acceptance_percent.add(acc);
    a.blocking_percent.add(100.0 - acc);
  }
  a.dropping_percent.add(0.1);
  a.dropping_percent.add(0.3);
  a.utilization_percent.add(11.835524683657104);
  a.utilization_percent.add(18.062061758336171);
  a.completion_percent.add(100.0);
  a.completion_percent.add(100.0);
  ResultRow b;
  b.coords = {"gc", "80"};
  b.n = 80;
  for (const double acc : {1.0 / 3.0, 2.0 / 3.0}) {
    b.acceptance_percent.add(acc);
    b.blocking_percent.add(100.0 - acc);
  }
  b.dropping_percent.add(0.0);
  b.dropping_percent.add(0.0);
  b.utilization_percent.add(0.1 + 0.2);  // 0.30000000000000004
  b.utilization_percent.add(0.3);
  b.completion_percent.add(99.9);
  b.completion_percent.add(98.7);
  t.rows.push_back(a);
  t.rows.push_back(b);
  return t;
}

constexpr const char* kExpectedHeader =
    "policy,n,replications,"
    "acceptance_pct_mean,acceptance_pct_ci,"
    "blocking_pct_mean,blocking_pct_ci,"
    "dropping_pct_mean,dropping_pct_ci,"
    "utilization_pct_mean,utilization_pct_ci,"
    "completion_pct_mean,completion_pct_ci";

TEST(ResultCsv, HeaderIsStable) {
  const std::string csv = result_csv_string(small_table());
  EXPECT_EQ(csv.substr(0, csv.find('\n')), kExpectedHeader);
}

TEST(ResultCsv, RoundTripsThroughReaderAtFullPrecision) {
  const ResultTable table = small_table();
  std::istringstream is(result_csv_string(table));
  const CsvTable parsed = read_csv(is);
  ASSERT_EQ(parsed.columns.size(), 13u);
  ASSERT_EQ(parsed.rows.size(), 2u);
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    const ResultRow& row = table.rows[i];
    const std::vector<std::string>& cells = parsed.rows[i];
    EXPECT_EQ(cells[0], row.coords[0]);
    EXPECT_EQ(cells[1], row.coords[1]);
    EXPECT_EQ(cells[2], "2");
    // std::stod of the emitted text must reproduce the exact double —
    // that is the whole point of the shortest-round-trip printer.
    EXPECT_EQ(std::stod(cells[3]), row.acceptance_percent.mean());
    EXPECT_EQ(std::stod(cells[4]), row.acceptance_percent.ci_half_width(0.95));
    EXPECT_EQ(std::stod(cells[5]), row.blocking_percent.mean());
    EXPECT_EQ(std::stod(cells[7]), row.dropping_percent.mean());
    EXPECT_EQ(std::stod(cells[9]), row.utilization_percent.mean());
    EXPECT_EQ(std::stod(cells[11]), row.completion_percent.mean());
  }
}

TEST(ResultCsv, FileAndStringWritersAgree) {
  const ResultTable table = small_table();
  const std::string path = "/tmp/facsp_test_result.csv";
  write_result_csv(table, path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), result_csv_string(table));
  std::remove(path.c_str());
}

TEST(ResultCsv, WritersThrowOnBadPath) {
  EXPECT_THROW(write_result_csv(small_table(), "/nonexistent_dir_xyz/r.csv"),
               Error);
  EXPECT_THROW(write_result_json(small_table(), "/nonexistent_dir_xyz/r.json"),
               Error);
}

TEST(ResultCsv, ReaderRejectsRaggedRows) {
  std::istringstream is("a,b\n1,2\n3\n");
  EXPECT_THROW(read_csv(is), ParseError);
}

TEST(ResultCsv, WriterRejectsCoordsThatWouldShiftColumns) {
  // Unquoted format: a comma inside a coordinate must fail loudly at write
  // time, not produce a ragged file the paired reader then chokes on.
  ResultTable table = small_table();
  table.rows[0].coords[0] = "ring-2, dense";
  EXPECT_THROW(result_csv_string(table), Error);
  ResultTable bad_axis = small_table();
  bad_axis.axes[0] = "poli,cy";
  EXPECT_THROW(result_csv_string(bad_axis), Error);
}

TEST(ResultJson, ControlCharactersAreEscaped) {
  ResultTable table = small_table();
  table.rows[0].coords[0] = std::string("a\rb\x01");
  const std::string json = result_json_string(table);
  EXPECT_NE(json.find("a\\u000db\\u0001"), std::string::npos);
  EXPECT_EQ(json.find('\r'), std::string::npos);
}

TEST(ResultJson, StructureAndDoublesAreExact) {
  const ResultTable table = small_table();
  const std::string json = result_json_string(table);
  EXPECT_NE(json.find("\"replications\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"ci_level\": 0.95"), std::string::npos);
  EXPECT_NE(json.find("\"axes\": [\"policy\", \"n\"]"), std::string::npos);
  EXPECT_NE(json.find("\"coords\": {\"policy\": \"facs-p\", \"n\": \"60\"}"),
            std::string::npos);
  // The awkward 0.1 + 0.2 sum must appear as its exact shortest form, not a
  // rounded approximation.
  EXPECT_NE(json.find("0.30000000000000004"), std::string::npos);
  // Every metric block carries the five aggregate fields.
  EXPECT_NE(json.find("\"utilization_pct\": {\"mean\": "), std::string::npos);
  EXPECT_NE(json.find("\"stddev\": "), std::string::npos);
  EXPECT_NE(json.find("\"min\": "), std::string::npos);
  EXPECT_NE(json.find("\"max\": "), std::string::npos);
}

TEST(ShapeChecks, PrintFormat) {
  std::ostringstream os;
  print_shape_checks(os, {{"first check", true, "ok"},
                          {"second check", false, ""}});
  const std::string out = os.str();
  EXPECT_NE(out.find("[PASS] first check"), std::string::npos);
  EXPECT_NE(out.find("[FAIL] second check"), std::string::npos);
  EXPECT_NE(out.find("(ok)"), std::string::npos);
}

}  // namespace
}  // namespace facsp::core
