#include "core/parallel_sweep.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/paper.h"
#include "workload/catalog.h"

namespace facsp::core {
namespace {

ScenarioConfig quick_scenario() {
  ScenarioConfig s = paper_scenario(3);
  s.traffic.arrival_window_s = 300.0;
  s.traffic.mean_holding_s = 120.0;
  return s;
}

SweepConfig small_sweep(int threads) {
  SweepConfig sweep;
  sweep.n_values = {5, 12, 20};
  sweep.replications = 4;
  sweep.threads = threads;
  return sweep;
}

// Bit-identical means exact double equality on every aggregate — no
// EXPECT_NEAR anywhere in this file.
void expect_bit_identical(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const SweepPoint& pa = a.points[i];
    const SweepPoint& pb = b.points[i];
    EXPECT_EQ(pa.n, pb.n);
    const std::pair<const sim::SummaryStats*, const sim::SummaryStats*>
        stats[] = {
            {&pa.acceptance_percent, &pb.acceptance_percent},
            {&pa.dropping_percent, &pb.dropping_percent},
            {&pa.utilization_percent, &pb.utilization_percent},
            {&pa.completion_percent, &pb.completion_percent},
        };
    for (const auto& [sa, sb] : stats) {
      EXPECT_EQ(sa->count(), sb->count());
      EXPECT_EQ(sa->mean(), sb->mean());
      EXPECT_EQ(sa->variance(), sb->variance());
      EXPECT_EQ(sa->min(), sb->min());
      EXPECT_EQ(sa->max(), sb->max());
      EXPECT_EQ(sa->ci_half_width(0.95), sb->ci_half_width(0.95));
    }
  }
}

class ParallelSweepPolicies
    : public ::testing::TestWithParam<std::pair<const char*, PolicyFactory>> {
};

// FACS-P exercises the fuzzy fast path (per-cell InferenceScratch); the
// fractional guard channel exercises the per-cell policy RNG stream.
INSTANTIATE_TEST_SUITE_P(
    Policies, ParallelSweepPolicies,
    ::testing::Values(std::pair<const char*, PolicyFactory>{
                          "FACSP", make_facs_p_factory()},
                      std::pair<const char*, PolicyFactory>{
                          "FGC", make_fractional_guard_factory(4.0)}),
    [](const auto& info) { return std::string(info.param.first); });

TEST_P(ParallelSweepPolicies, BitIdenticalToSerialForEveryThreadCount) {
  const auto& [name, factory] = GetParam();
  const ScenarioConfig scen = quick_scenario();
  const SweepResult serial =
      Experiment(scen, factory, name).run(small_sweep(0));
  for (int threads : {1, 2, 8}) {
    const SweepResult parallel =
        ParallelSweepRunner(scen, factory, name).run(small_sweep(threads));
    EXPECT_EQ(parallel.policy_name, name);
    SCOPED_TRACE(std::string(name) + " threads=" + std::to_string(threads));
    expect_bit_identical(serial, parallel);
  }
}

// Catalog-scenario matrix: the bit-identity guarantee must hold for every
// workload the catalog can produce, not just the paper grid.  Each scenario
// is shrunk (shorter window/holding) so the matrix stays ctest-cheap; the
// workload *shape* (arrival process, spatial map) is untouched.
class ParallelSweepCatalogScenarios
    : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Scenarios, ParallelSweepCatalogScenarios,
                         ::testing::Values("bursty-onoff", "hotspot-ring2",
                                           "flash-crowd", "mix-shift"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST_P(ParallelSweepCatalogScenarios, BitIdenticalToSerialAtThreads128) {
  ScenarioConfig scen = workload::catalog_scenario(GetParam());
  scen.traffic.mean_holding_s = 120.0;
  const SweepConfig serial_sweep = small_sweep(0);
  const SweepResult serial =
      Experiment(scen, make_facs_p_factory(), GetParam()).run(serial_sweep);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(std::string(GetParam()) +
                 " threads=" + std::to_string(threads));
    const SweepResult parallel =
        ParallelSweepRunner(scen, make_facs_p_factory(), GetParam())
            .run(small_sweep(threads));
    expect_bit_identical(serial, parallel);
  }
}

TEST(ParallelSweep, TwoParallelRunsWithSameSeedAgree) {
  const ScenarioConfig scen = quick_scenario();
  ParallelSweepRunner runner(scen, make_facs_p_factory(), "FACS-P");
  const SweepResult a = runner.run(small_sweep(8));
  const SweepResult b = runner.run(small_sweep(8));
  expect_bit_identical(a, b);
}

TEST(ParallelSweep, CellMetricsComeBackInReplicationOrder) {
  const ScenarioConfig scen = quick_scenario();
  ParallelSweepRunner runner(scen, make_complete_sharing_factory(), "CS");
  std::vector<CellMetrics> cells;
  const SweepConfig sweep = small_sweep(4);
  const SweepResult res = runner.run(sweep, &cells);
  ASSERT_EQ(cells.size(),
            sweep.n_values.size() * static_cast<std::size_t>(sweep.replications));
  std::size_t i = 0;
  for (int n : sweep.n_values) {
    for (int r = 0; r < sweep.replications; ++r, ++i) {
      EXPECT_EQ(cells[i].n, n);
      EXPECT_EQ(cells[i].replication, static_cast<std::uint64_t>(r));
    }
  }
  // The cells are the exact values the aggregates were reduced from.
  sim::SummaryStats acc;
  for (std::size_t c = 0; c < static_cast<std::size_t>(sweep.replications); ++c)
    acc.add(cells[c].acceptance_percent);
  EXPECT_EQ(acc.mean(), res.points[0].acceptance_percent.mean());
}

TEST(ParallelSweep, MatchesSerialOnThePaperGridSubset) {
  // One paper-grid point at realistic load, full FACS-P stack: the shape the
  // benches actually run.
  ScenarioConfig scen = quick_scenario();
  SweepConfig sweep;
  sweep.n_values = {60};
  sweep.replications = 3;
  sweep.threads = 8;
  const SweepResult serial =
      Experiment(scen, make_facs_p_factory(), "FACS-P").run(sweep);
  const SweepResult parallel =
      ParallelSweepRunner(scen, make_facs_p_factory(), "FACS-P").run(sweep);
  expect_bit_identical(serial, parallel);
}

TEST(ParallelSweep, InvalidSweepRejected) {
  ParallelSweepRunner runner(quick_scenario(), make_complete_sharing_factory(),
                             "CS");
  SweepConfig empty;
  EXPECT_THROW(runner.run(empty), ContractViolation);
  SweepConfig zero_reps;
  zero_reps.n_values = {10};
  zero_reps.replications = 0;
  EXPECT_THROW(runner.run(zero_reps), ContractViolation);
  SweepConfig negative_threads;
  negative_threads.n_values = {10};
  negative_threads.threads = -2;
  EXPECT_THROW(runner.run(negative_threads), ContractViolation);
}

}  // namespace
}  // namespace facsp::core
