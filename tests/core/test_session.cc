#include "core/session.h"

#include <gtest/gtest.h>

#include "cac/guard_channel.h"
#include "core/paper.h"

namespace facsp::core {
namespace {

ScenarioConfig small_scenario(std::uint64_t seed = 7) {
  ScenarioConfig s = paper_scenario(seed);
  s.traffic.arrival_window_s = 300.0;
  s.traffic.mean_holding_s = 120.0;
  return s;
}

TEST(SessionDriver, AllCallsResolveEventually) {
  auto scen = small_scenario();
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 0);
  const RunResult r = driver.run(40);
  // Every offered call was decided...
  EXPECT_EQ(r.metrics.offered_new(), 40u);
  // ...and every admitted call ended as completed or dropped.
  EXPECT_EQ(r.metrics.accepted_new(),
            r.metrics.completed() + r.metrics.dropped());
  EXPECT_GT(r.events, 40u);
  EXPECT_GT(r.duration_s, 0.0);
}

TEST(SessionDriver, ZeroRequestsIsClean) {
  auto scen = small_scenario();
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 0);
  const RunResult r = driver.run(0);
  EXPECT_EQ(r.metrics.offered_new(), 0u);
  EXPECT_DOUBLE_EQ(r.center_utilization, 0.0);
}

TEST(SessionDriver, CompleteSharingAcceptsEverythingAtLightLoad) {
  auto scen = small_scenario();
  scen.traffic.arrival_window_s = 3600.0;  // almost no overlap
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 1);
  const RunResult r = driver.run(10);
  EXPECT_DOUBLE_EQ(r.metrics.acceptance_percent(), 100.0);
}

TEST(SessionDriver, UtilizationPositiveWhenCallsAdmitted) {
  auto scen = small_scenario();
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 2);
  const RunResult r = driver.run(30);
  ASSERT_GT(r.metrics.accepted_new(), 0u);
  EXPECT_GT(r.center_utilization, 0.0);
  EXPECT_LE(r.center_utilization, 1.0);
}

TEST(SessionDriver, MobilityProducesHandoffsOrCoverageExits) {
  auto scen = small_scenario();
  scen.traffic.fixed_speed_kmh = 100.0;     // fast users cross cells
  scen.traffic.mean_holding_s = 240.0;      // long enough to move
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 3);
  const RunResult r = driver.run(30);
  // Fast users starting anywhere in a 2 km cell must reach a boundary.
  EXPECT_GT(r.metrics.handoff_attempts() + r.metrics.completed(), 0u);
  EXPECT_GT(r.metrics.handoff_attempts(), 0u);
}

TEST(SessionDriver, NoMobilityMeansNoHandoffs) {
  auto scen = small_scenario();
  scen.enable_mobility = false;
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 4);
  const RunResult r = driver.run(30);
  EXPECT_EQ(r.metrics.handoff_attempts(), 0u);
  EXPECT_EQ(r.metrics.dropped(), 0u);
}

TEST(SessionDriver, SameSeedSameResult) {
  auto scen = small_scenario(42);
  cac::CompleteSharingPolicy p1, p2;
  const RunResult a = SessionDriver(scen, p1, 5).run(25);
  const RunResult b = SessionDriver(scen, p2, 5).run(25);
  EXPECT_EQ(a.metrics.accepted_new(), b.metrics.accepted_new());
  EXPECT_EQ(a.metrics.handoff_attempts(), b.metrics.handoff_attempts());
  EXPECT_DOUBLE_EQ(a.center_utilization, b.center_utilization);
  EXPECT_EQ(a.events, b.events);
}

TEST(SessionDriver, DifferentReplicationsDiffer) {
  auto scen = small_scenario(42);
  cac::CompleteSharingPolicy p1, p2;
  const RunResult a = SessionDriver(scen, p1, 0).run(25);
  const RunResult b = SessionDriver(scen, p2, 1).run(25);
  EXPECT_NE(a.events, b.events);
}

TEST(SessionDriver, UniformSpatialMapLoadsNeighborCells) {
  auto scen = small_scenario();
  scen.spatial.kind = workload::SpatialKind::kUniform;
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 6);
  const RunResult r = driver.run(20);
  // Metrics still only count the centre's 20 offered calls.
  EXPECT_EQ(r.metrics.offered_new(), 20u);
  // But neighbour cells saw traffic: total events far exceed the
  // single-cell case.
  cac::CompleteSharingPolicy p2;
  scen.spatial.kind = workload::SpatialKind::kCenterOnly;
  const RunResult single = SessionDriver(scen, p2, 6).run(20);
  EXPECT_GT(r.events, 3 * single.events);
}

TEST(SessionDriver, HotspotMapScalesNeighborLoadByRing) {
  // rings=2 hotspot with decay 0.5: ring-1 cells get 10 of 20 requests,
  // ring-2 cells get 5; event counts must sit between center-only and
  // uniform.
  auto scen = small_scenario();
  scen.rings = 2;
  scen.spatial.kind = workload::SpatialKind::kHotspot;
  scen.spatial.hotspot_decay = 0.5;
  cac::CompleteSharingPolicy hotspot_policy, center_policy, uniform_policy;
  const RunResult hotspot =
      SessionDriver(scen, hotspot_policy, 3).run(20);
  scen.spatial.kind = workload::SpatialKind::kCenterOnly;
  const RunResult center = SessionDriver(scen, center_policy, 3).run(20);
  scen.spatial.kind = workload::SpatialKind::kUniform;
  const RunResult uniform = SessionDriver(scen, uniform_policy, 3).run(20);
  EXPECT_EQ(hotspot.metrics.offered_new(), 20u);
  EXPECT_GT(hotspot.events, center.events);
  EXPECT_LT(hotspot.events, uniform.events);
}

TEST(SessionDriver, GuardChannelReducesDropsVsCompleteSharing) {
  // Classic CAC sanity: reserving for handoffs cannot *increase* dropping.
  auto scen = small_scenario(11);
  scen.traffic.fixed_speed_kmh = 90.0;
  scen.traffic.arrival_window_s = 200.0;  // heavy load
  std::uint64_t drops_cs = 0, drops_gc = 0;
  std::uint64_t ho_cs = 0, ho_gc = 0;
  for (std::uint64_t rep = 0; rep < 8; ++rep) {
    cac::CompleteSharingPolicy cs;
    cac::GuardChannelPolicy gc(8.0);
    const auto rcs = SessionDriver(scen, cs, rep).run(60);
    const auto rgc = SessionDriver(scen, gc, rep).run(60);
    drops_cs += rcs.metrics.dropped();
    drops_gc += rgc.metrics.dropped();
    ho_cs += rcs.metrics.handoff_attempts();
    ho_gc += rgc.metrics.handoff_attempts();
  }
  const double cdp_cs =
      ho_cs ? static_cast<double>(drops_cs) / ho_cs : 0.0;
  const double cdp_gc =
      ho_gc ? static_cast<double>(drops_gc) / ho_gc : 0.0;
  EXPECT_LE(cdp_gc, cdp_cs + 0.02);
}

}  // namespace
}  // namespace facsp::core
