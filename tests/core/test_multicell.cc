// The multi-cell sharded engine (core/multicell.h):
//
//   * a 1-cell engine run IS the single-world SessionDriver run, bit for
//     bit — checked against both a direct driver run and the PR 3 golden
//     paper-grid cells;
//   * sharded runs are bit-identical for every engine thread count
//     ({1, 2, 8}, per-cell and aggregate);
//   * handover conservation: every departure routes to a hex neighbour or
//     off the edge, delivered arrivals are admitted or dropped (never
//     lost), per-BS channel counters stay consistent and non-negative,
//     and per-cell sums match the network-wide totals at every drain;
//   * multi-cell scenarios compose with the declarative sweep layer
//     (serial vs parallel ResultTables byte-for-byte, `sim.cells` as a
//     param axis).
#include "core/multicell.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cac/policy.h"
#include "common/error.h"
#include "core/paper.h"
#include "obs/metrics.h"
#include "core/report.h"
#include "core/sweep.h"
#include "sim/rng.h"
#include "workload/catalog.h"

namespace facsp::core {
namespace {

ScenarioConfig storm_scenario(int engine_threads = 1) {
  ScenarioConfig s = workload::catalog_scenario("multicell-handover-storm");
  s.multicell.threads = engine_threads;
  return s;
}

void expect_same_metrics(const cellular::MetricsCollector& a,
                         const cellular::MetricsCollector& b) {
  EXPECT_EQ(a.offered_new(), b.offered_new());
  EXPECT_EQ(a.accepted_new(), b.accepted_new());
  EXPECT_EQ(a.handoff_attempts(), b.handoff_attempts());
  EXPECT_EQ(a.handoff_successes(), b.handoff_successes());
  EXPECT_EQ(a.dropped(), b.dropped());
  EXPECT_EQ(a.completed(), b.completed());
}

// --- 1-cell degeneration ---------------------------------------------------

TEST(MultiCellEngine, OneCellRunIsTheSessionDriverRunBitForBit) {
  // The paper scenario (rings = 1, mobility on) exercises the departure
  // path too: sessions leaving the disc cross the engine's world edge.
  const ScenarioConfig scen = paper_scenario();
  for (const std::uint64_t rep : {0ull, 1ull, 2ull}) {
    SCOPED_TRACE("rep=" + std::to_string(rep));
    cac::DeferredPolicy policy;
    SessionDriver driver(scen, policy, rep);
    sim::RngFactory rng(sim::hash_seed(scen.seed, "policy", rep));
    policy.inner = make_facs_p_factory()(driver.network(), rng);
    const RunResult direct = driver.run(60);

    MultiCellEngine engine(scen, make_facs_p_factory(), rep);
    ASSERT_EQ(engine.cell_count(), 1);
    const MultiCellResult multi = engine.run(60);

    expect_same_metrics(direct.metrics, multi.aggregate.metrics);
    EXPECT_EQ(direct.center_utilization, multi.aggregate.center_utilization);
    EXPECT_EQ(direct.duration_s, multi.aggregate.duration_s);
    EXPECT_EQ(direct.events, multi.aggregate.events);
    ASSERT_EQ(multi.cells.size(), 1u);
    EXPECT_EQ(multi.cells[0].handoffs_out, 0u);
    EXPECT_EQ(multi.cells[0].handoffs_in, 0u);
  }
}

TEST(MultiCellEngine, OneCellRunReproducesPaperGridGoldenCells) {
  // The PR 3 golden cells (captured pre-refactor at full precision):
  // paper scenario, FACS-P, N = 60.  The engine must land on them exactly.
  struct Golden {
    std::uint64_t rep;
    double acceptance, dropping, utilization, completion;
  };
  constexpr Golden kGolden[] = {
      {0, 90, 0, 11.835524683657104, 100},
      {1, 85, 0, 18.062061758336171, 100},
      {2, 50, 0, 28.029436210054261, 100},
  };
  const ScenarioConfig scen = paper_scenario();
  for (const Golden& g : kGolden) {
    SCOPED_TRACE("rep=" + std::to_string(g.rep));
    MultiCellEngine engine(scen, make_facs_p_factory(), g.rep);
    const CellMetrics m =
        CellMetrics::from_run(60, g.rep, engine.run(60).aggregate);
    EXPECT_EQ(m.acceptance_percent, g.acceptance);
    EXPECT_EQ(m.dropping_percent, g.dropping);
    EXPECT_EQ(m.utilization_percent, g.utilization);
    EXPECT_EQ(m.completion_percent, g.completion);
  }
}

// --- sharded determinism ---------------------------------------------------

TEST(MultiCellEngine, ShardedRunsAreBitIdenticalForEveryThreadCount) {
  MultiCellEngine serial(storm_scenario(1), make_facs_p_factory(), 0);
  const MultiCellResult base = serial.run(100);
  ASSERT_EQ(base.cells.size(), 7u);
  // Sanity: real inter-cell traffic flowed.
  std::uint64_t total_in = 0;
  for (const auto& c : base.cells) total_in += c.handoffs_in;
  EXPECT_GT(total_in, 0u);

  for (const int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MultiCellEngine engine(storm_scenario(threads), make_facs_p_factory(), 0);
    const MultiCellResult got = engine.run(100);
    ASSERT_EQ(got.cells.size(), base.cells.size());
    for (std::size_t k = 0; k < base.cells.size(); ++k) {
      SCOPED_TRACE("cell=" + std::to_string(k));
      expect_same_metrics(base.cells[k].run.metrics, got.cells[k].run.metrics);
      EXPECT_EQ(base.cells[k].run.center_utilization,
                got.cells[k].run.center_utilization);
      EXPECT_EQ(base.cells[k].run.events, got.cells[k].run.events);
      EXPECT_EQ(base.cells[k].handoffs_out, got.cells[k].handoffs_out);
      EXPECT_EQ(base.cells[k].handoffs_in, got.cells[k].handoffs_in);
      EXPECT_EQ(base.cells[k].left_world, got.cells[k].left_world);
    }
    expect_same_metrics(base.aggregate.metrics, got.aggregate.metrics);
    EXPECT_EQ(base.aggregate.center_utilization,
              got.aggregate.center_utilization);
    EXPECT_EQ(base.aggregate.duration_s, got.aggregate.duration_s);
    EXPECT_EQ(base.aggregate.events, got.aggregate.events);
  }
}

TEST(MultiCellEngine, RunToRunAgreementOnSameSeeds) {
  MultiCellEngine a(storm_scenario(), make_facs_factory(), 3);
  MultiCellEngine b(storm_scenario(), make_facs_factory(), 3);
  const MultiCellResult ra = a.run(60);
  const MultiCellResult rb = b.run(60);
  expect_same_metrics(ra.aggregate.metrics, rb.aggregate.metrics);
  EXPECT_EQ(ra.aggregate.center_utilization, rb.aggregate.center_utilization);
}

// --- routing ---------------------------------------------------------------

TEST(MultiCellEngine, RouteTargetPicksHexNeighboursOrTheEdge) {
  MultiCellEngine engine(storm_scenario(), make_facs_p_factory(), 0);
  ASSERT_EQ(engine.cell_count(), 7);
  // From the centre every heading lands on some ring-1 neighbour.
  for (double heading = -175.0; heading <= 180.0; heading += 5.0) {
    const int dst = engine.route_target(0, heading);
    ASSERT_GE(dst, 1) << "heading " << heading;
    ASSERT_LT(dst, 7) << "heading " << heading;
    EXPECT_EQ(cellular::hex_distance(engine.cell_coord(0),
                                     engine.cell_coord(dst)),
              1);
  }
  // From an edge cell, heading straight away from the centre leaves the
  // 7-cell world; heading back towards it re-enters.
  const cellular::HexLayout unit(1.0);
  for (int cell = 1; cell < 7; ++cell) {
    const double outward = cellular::heading_deg(
        unit.center(cellular::HexCoord{0, 0}),
        unit.center(engine.cell_coord(cell)));
    EXPECT_EQ(engine.route_target(cell, outward), -1) << "cell " << cell;
    const int back = engine.route_target(
        cell, outward > 0.0 ? outward - 180.0 : outward + 180.0);
    EXPECT_EQ(back, 0) << "cell " << cell;
  }
}

// --- conservation properties ----------------------------------------------

TEST(MultiCellEngine, HandoverConservationHoldsAtEveryDrain) {
  MultiCellEngine engine(storm_scenario(), make_facs_p_factory(), 1);
  std::uint64_t epochs = 0, total_departures = 0;
  engine.set_epoch_observer([&](const MultiCellEngine::EpochStats& es) {
    ++epochs;
    total_departures += es.departures;
    // Every departure is accounted for exactly once...
    ASSERT_EQ(es.delivered + es.left_world, es.departures);
    // ...and every delivered arrival is admitted or dropped, never lost.
    ASSERT_EQ(es.admitted + es.dropped, es.delivered);
    ASSERT_EQ(es.routes.size(), es.departures);
    // Each route goes to a hex neighbour of its source (or off the edge).
    for (const auto& [from, to] : es.routes) {
      ASSERT_GE(from, 0);
      ASSERT_LT(from, engine.cell_count());
      if (to >= 0)
        ASSERT_EQ(cellular::hex_distance(engine.cell_coord(from),
                                         engine.cell_coord(to)),
                  1);
    }
    // Channel accounting: per-BS counters consistent and non-negative,
    // and the per-cell sums reproduce the network-wide totals.
    double used_sum = 0.0;
    std::uint64_t session_sum = 0;
    for (int cell = 0; cell < engine.cell_count(); ++cell) {
      session_sum += engine.driver(cell).session_count();
      for (const cellular::BaseStation* bs :
           engine.driver(cell).network().stations()) {
        const cellular::LoadState& load = bs->load();
        ASSERT_GE(load.used, 0.0);
        ASSERT_LE(load.used, load.capacity + 1e-9);
        ASSERT_NEAR(load.used, load.rt_used + load.nrt_used, 1e-9);
        ASSERT_GE(load.rt_used, 0.0);
        ASSERT_GE(load.nrt_used, 0.0);
        used_sum += load.used;
      }
    }
    ASSERT_EQ(session_sum, es.active_sessions);
    ASSERT_NEAR(used_sum, es.used_bu, 1e-9);
  });

  const MultiCellResult result = engine.run(100);
  ASSERT_GT(epochs, 0u);
  ASSERT_GT(total_departures, 0u);

  // Cumulative conservation: in-grid departures equal delivered arrivals...
  std::uint64_t out_sum = 0, in_sum = 0, left_sum = 0;
  for (const auto& c : result.cells) {
    out_sum += c.handoffs_out;
    in_sum += c.handoffs_in;
    left_sum += c.left_world;
  }
  EXPECT_EQ(out_sum, in_sum);
  EXPECT_EQ(out_sum + left_sum, total_departures);
  // ...and every admitted call ended exactly once, somewhere: completions
  // plus drops across all cells equal the admitted new calls.
  EXPECT_EQ(result.aggregate.metrics.completed() +
                result.aggregate.metrics.dropped(),
            result.aggregate.metrics.accepted_new());
  // Inter-cell attempts were recorded in the destination cells' collectors.
  EXPECT_EQ(result.aggregate.metrics.handoff_attempts(), in_sum);
  // Nothing is still holding channels after the drain completed.
  for (int cell = 0; cell < engine.cell_count(); ++cell) {
    EXPECT_EQ(engine.driver(cell).session_count(), 0u);
    for (const cellular::BaseStation* bs :
         engine.driver(cell).network().stations())
      EXPECT_EQ(bs->load().used, 0.0);
  }
}

TEST(MultiCellEngine, EveryCellOffersItsOwnWorkload) {
  MultiCellEngine engine(storm_scenario(), make_facs_p_factory(), 0);
  const MultiCellResult result = engine.run(40);
  ASSERT_EQ(result.cells.size(), 7u);
  for (const auto& c : result.cells)
    EXPECT_EQ(c.run.metrics.offered_new(), 40u);
  EXPECT_EQ(result.aggregate.metrics.offered_new(), 7u * 40u);
  // Shards simulate different worlds: their workloads must not be clones.
  EXPECT_NE(result.cells[0].run.center_utilization,
            result.cells[1].run.center_utilization);
}

// --- sweep-layer composition ----------------------------------------------

SweepSpec multicell_sweep(int threads) {
  SweepSpec spec;
  spec.replications = 2;
  spec.threads = threads;
  spec.policy_axis({"facs-p", "facs"});
  spec.scenario_axis({"multicell-ring1", "multicell-handover-storm"});
  spec.n_axis({20, 40});
  return spec;
}

TEST(MultiCellSweep, SerialVsParallelResultTablesByteForByte) {
  const ResultTable serial = SweepRunner(multicell_sweep(1)).run();
  const std::string csv = result_csv_string(serial);
  const std::string json = result_json_string(serial);
  ASSERT_EQ(serial.rows.size(), 8u);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const ResultTable parallel = SweepRunner(multicell_sweep(threads)).run();
    EXPECT_EQ(result_csv_string(parallel), csv);
    EXPECT_EQ(result_json_string(parallel), json);
  }
}

TEST(MultiCellSweep, CellsIsASweepableParamAxis) {
  SweepSpec spec;
  spec.base = workload::catalog_scenario("multicell-ring1");
  spec.replications = 2;
  spec.param_axis("sim.cells", {"1", "7"});
  spec.n_axis({30});
  const SweepRunner runner(spec);
  std::vector<CellMetrics> cells;
  const ResultTable table = runner.run(&cells);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0].coords[1], "1");
  EXPECT_EQ(table.rows[1].coords[1], "7");
  // 1 shard vs 7 shards simulate different worlds.
  EXPECT_NE(table.rows[0].utilization_percent.mean(),
            table.rows[1].utilization_percent.mean());
}

TEST(MultiCellConfig, ValidationAndRoundTrip) {
  ScenarioConfig s = paper_scenario();
  s.multicell.cells = 0;
  EXPECT_THROW(s.validate(), ConfigError);
  s.multicell.cells = 7;
  s.multicell.epoch_s = 0.0;
  EXPECT_THROW(s.validate(), ConfigError);
  s.multicell.epoch_s = 5.0;
  s.multicell.entry_fraction = 0.9;  // beyond the hex inradius ratio
  EXPECT_THROW(s.validate(), ConfigError);
}

TEST(MultiCellConfig, EventDrivenKeysValidate) {
  ScenarioConfig s = storm_scenario();
  s.multicell.workload_cells = -1;
  EXPECT_THROW(s.validate(), ConfigError);
  s.multicell.workload_cells = 3;
  s.validate();

  s.multicell.epoch_min_s = 0.0;
  EXPECT_THROW(s.validate(), ConfigError);
  s.multicell.epoch_min_s = 10.0;
  s.multicell.epoch_max_s = 5.0;  // max below min
  EXPECT_THROW(s.validate(), ConfigError);
  s.multicell.epoch_max_s = 30.0;
  // Adaptive epochs require the starting epoch_s inside the bounds.
  s.multicell.epoch_adaptive = true;
  s.multicell.epoch_s = 5.0;  // below epoch_min_s = 10
  EXPECT_THROW(s.validate(), ConfigError);
  s.multicell.epoch_s = 10.0;
  s.validate();
}

// --- event-driven scheduling ------------------------------------------------

void expect_same_multicell_result(const MultiCellResult& a,
                                  const MultiCellResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t k = 0; k < a.cells.size(); ++k) {
    SCOPED_TRACE("cell=" + std::to_string(k));
    expect_same_metrics(a.cells[k].run.metrics, b.cells[k].run.metrics);
    EXPECT_EQ(a.cells[k].run.center_utilization,
              b.cells[k].run.center_utilization);
    EXPECT_EQ(a.cells[k].run.duration_s, b.cells[k].run.duration_s);
    EXPECT_EQ(a.cells[k].run.events, b.cells[k].run.events);
    EXPECT_EQ(a.cells[k].handoffs_out, b.cells[k].handoffs_out);
    EXPECT_EQ(a.cells[k].handoffs_in, b.cells[k].handoffs_in);
    EXPECT_EQ(a.cells[k].left_world, b.cells[k].left_world);
  }
  expect_same_metrics(a.aggregate.metrics, b.aggregate.metrics);
  EXPECT_EQ(a.aggregate.center_utilization, b.aggregate.center_utilization);
  EXPECT_EQ(a.aggregate.duration_s, b.aggregate.duration_s);
  EXPECT_EQ(a.aggregate.events, b.aggregate.events);
}

TEST(MultiCellEngine, EventSkippingIsBitIdenticalToFullDrains) {
  // The pre-PR-10 bulk-synchronous schedule (every shard drained every
  // epoch, no fast-forward) and the event-driven schedule must produce
  // byte-identical results — per cell and aggregate, at every thread count.
  for (const ScenarioConfig& scen :
       {paper_scenario(), storm_scenario()}) {
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE("cells=" + std::to_string(scen.multicell.cells) +
                   " threads=" + std::to_string(threads));
      ScenarioConfig s = scen;
      s.multicell.threads = threads;

      MultiCellEngine full(s, make_facs_p_factory(), 0);
      full.set_force_full_drains(true);
      const MultiCellResult base = full.run(60);

      MultiCellEngine skipping(s, make_facs_p_factory(), 0);
      const MultiCellResult got = skipping.run(60);
      expect_same_multicell_result(base, got);
    }
  }
}

TEST(MultiCellEngine, WorkloadCellsRestrictsFreshTraffic) {
  ScenarioConfig s = storm_scenario();
  s.multicell.workload_cells = 1;
  MultiCellEngine engine(s, make_facs_p_factory(), 0);
  const MultiCellResult result = engine.run(40);
  ASSERT_EQ(result.cells.size(), 7u);
  EXPECT_EQ(result.cells[0].run.metrics.offered_new(), 40u);
  for (std::size_t k = 1; k < result.cells.size(); ++k)
    EXPECT_EQ(result.cells[k].run.metrics.offered_new(), 0u);
  EXPECT_EQ(result.aggregate.metrics.offered_new(), 40u);
  // The quiet neighbours still light up on inbound handovers.
  std::uint64_t in_sum = 0;
  for (std::size_t k = 1; k < result.cells.size(); ++k)
    in_sum += result.cells[k].handoffs_in;
  EXPECT_GT(in_sum, 0u);
}

TEST(MultiCellEngine, SparseGridDrainsProportionalToActivity) {
  // 1000 cells, one generating: the engine must drain the active
  // neighbourhood only, not sweep the grid — >= 10x fewer shard drains
  // than cells x epochs (the bulk-synchronous cost), per the
  // engine.shards_drained counter.
  ScenarioConfig s = storm_scenario();
  s.multicell.cells = 1000;
  s.multicell.workload_cells = 1;

  obs::Registry& reg = obs::Registry::instance();
  const std::uint64_t drained0 = reg.counter("engine.shards_drained").value();
  const std::uint64_t epochs0 = reg.counter("engine.epochs").value();
  const std::uint64_t skipped0 = reg.counter("engine.epochs_skipped").value();

  const bool was_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  MultiCellEngine engine(s, make_facs_p_factory(), 0);
  const MultiCellResult result = engine.run(60);
  obs::set_metrics_enabled(was_enabled);

  const std::uint64_t drained =
      reg.counter("engine.shards_drained").value() - drained0;
  const std::uint64_t epochs = reg.counter("engine.epochs").value() - epochs0;
  const std::uint64_t skipped =
      reg.counter("engine.epochs_skipped").value() - skipped0;

  ASSERT_GT(epochs, 0u);
  ASSERT_GT(drained, 0u);
  EXPECT_GT(result.aggregate.metrics.offered_new(), 0u);
  // The bulk-synchronous engine would have drained every cell in every
  // epoch of the same wall-clock window (drained + skipped epochs).
  const std::uint64_t bulk_drains = 1000u * (epochs + skipped);
  EXPECT_LE(drained * 10, bulk_drains)
      << "drained " << drained << " shards over " << epochs << " epochs (+"
      << skipped << " skipped)";
}

TEST(MultiCellEngine, AdaptiveEpochsKeepConservationInvariants) {
  ScenarioConfig fixed = storm_scenario();
  std::uint64_t fixed_epochs = 0;
  {
    MultiCellEngine engine(fixed, make_facs_p_factory(), 0);
    engine.set_epoch_observer(
        [&](const MultiCellEngine::EpochStats&) { ++fixed_epochs; });
    engine.run(100);
  }

  ScenarioConfig s = storm_scenario();
  s.multicell.epoch_adaptive = true;
  s.multicell.epoch_min_s = 1.0;
  s.multicell.epoch_max_s = 30.0;
  MultiCellEngine engine(s, make_facs_p_factory(), 0);
  std::uint64_t epochs = 0, departures = 0;
  sim::SimTime prev_end = 0.0;
  engine.set_epoch_observer([&](const MultiCellEngine::EpochStats& es) {
    ++epochs;
    departures += es.departures;
    // Conservation holds at every barrier regardless of epoch length...
    ASSERT_EQ(es.delivered + es.left_world, es.departures);
    ASSERT_EQ(es.admitted + es.dropped, es.delivered);
    // ...and barriers advance monotonically, never finer than the floor.
    ASSERT_GE(es.t_end - prev_end, s.multicell.epoch_min_s - 1e-9);
    prev_end = es.t_end;
  });
  const MultiCellResult result = engine.run(100);

  ASSERT_GT(epochs, 0u);
  ASSERT_GT(departures, 0u);
  // The controller actually adapted: sparse barriers double the window (and
  // dense ones halve it), so the barrier count differs from the fixed-dt
  // schedule of the same scenario.
  EXPECT_NE(epochs, fixed_epochs);
  // End-to-end conservation is untouched by adaptation.
  EXPECT_EQ(result.aggregate.metrics.completed() +
                result.aggregate.metrics.dropped(),
            result.aggregate.metrics.accepted_new());
  std::uint64_t out_sum = 0, in_sum = 0;
  for (const auto& c : result.cells) {
    out_sum += c.handoffs_out;
    in_sum += c.handoffs_in;
  }
  EXPECT_EQ(out_sum, in_sum);
}

}  // namespace
}  // namespace facsp::core
