#include "core/config_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "common/error.h"
#include "core/paper.h"

namespace facsp::core {
namespace {

TEST(ConfigIo, RoundTripPreservesEveryField) {
  ScenarioConfig original = paper_scenario(123);
  original.rings = 2;
  original.cell_radius_m = 1750.0;
  original.capacity_bu = 48.0;
  original.enable_mobility = false;
  original.spatial.kind = workload::SpatialKind::kHighway;
  original.spatial.hotspot_decay = 0.25;
  original.spatial.highway_halfwidth_m = 900.0;
  original.spatial.highway_off_weight = 0.05;
  original.traffic.arrival.kind = workload::ArrivalKind::kOnOff;
  original.traffic.arrival.on_rate = 6.0;
  original.traffic.arrival.off_rate = 0.5;
  original.traffic.arrival.mean_on_s = 45.0;
  original.traffic.arrival.mean_off_s = 90.0;
  original.traffic.arrival.flash_fraction = 0.4;
  original.traffic.priority_low = 0.1;
  original.traffic.priority_normal = 0.7;
  original.traffic.priority_high = 0.2;
  original.traffic.mix_schedule = workload::MixSchedule(
      {{0.0, cellular::TrafficMix{0.6, 0.25, 0.15}},
       {300.0, cellular::TrafficMix{0.3, 0.3, 0.4}}});
  original.mobility_update_s = 2.5;
  original.horizon_s = 7200.0;
  original.traffic.arrival_window_s = 450.0;
  original.traffic.mean_holding_s = 210.0;
  original.traffic.mix = cellular::TrafficMix{0.6, 0.25, 0.15};
  original.traffic.min_speed_kmh = 5.0;
  original.traffic.max_speed_kmh = 90.0;
  original.traffic.fixed_speed_kmh = 42.0;
  original.traffic.fixed_angle_deg = -30.0;
  original.mobility.base_sigma_deg = 37.0;
  original.predictor.reference_kmh = 25.0;

  const ScenarioConfig parsed =
      scenario_from_string(scenario_to_string(original));

  EXPECT_EQ(parsed.seed, original.seed);
  EXPECT_EQ(parsed.rings, original.rings);
  EXPECT_DOUBLE_EQ(parsed.cell_radius_m, original.cell_radius_m);
  EXPECT_DOUBLE_EQ(parsed.capacity_bu, original.capacity_bu);
  EXPECT_EQ(parsed.enable_mobility, original.enable_mobility);
  EXPECT_EQ(parsed.spatial.kind, original.spatial.kind);
  EXPECT_DOUBLE_EQ(parsed.spatial.hotspot_decay,
                   original.spatial.hotspot_decay);
  EXPECT_DOUBLE_EQ(parsed.spatial.highway_halfwidth_m,
                   original.spatial.highway_halfwidth_m);
  EXPECT_DOUBLE_EQ(parsed.spatial.highway_off_weight,
                   original.spatial.highway_off_weight);
  EXPECT_EQ(parsed.traffic.arrival.kind, original.traffic.arrival.kind);
  EXPECT_DOUBLE_EQ(parsed.traffic.arrival.on_rate,
                   original.traffic.arrival.on_rate);
  EXPECT_DOUBLE_EQ(parsed.traffic.arrival.off_rate,
                   original.traffic.arrival.off_rate);
  EXPECT_DOUBLE_EQ(parsed.traffic.arrival.mean_on_s,
                   original.traffic.arrival.mean_on_s);
  EXPECT_DOUBLE_EQ(parsed.traffic.arrival.mean_off_s,
                   original.traffic.arrival.mean_off_s);
  EXPECT_DOUBLE_EQ(parsed.traffic.arrival.flash_fraction,
                   original.traffic.arrival.flash_fraction);
  EXPECT_DOUBLE_EQ(parsed.traffic.priority_low, original.traffic.priority_low);
  EXPECT_DOUBLE_EQ(parsed.traffic.priority_normal,
                   original.traffic.priority_normal);
  EXPECT_DOUBLE_EQ(parsed.traffic.priority_high,
                   original.traffic.priority_high);
  EXPECT_EQ(parsed.traffic.mix_schedule, original.traffic.mix_schedule);
  EXPECT_DOUBLE_EQ(parsed.mobility_update_s, original.mobility_update_s);
  EXPECT_DOUBLE_EQ(parsed.horizon_s, original.horizon_s);
  EXPECT_DOUBLE_EQ(parsed.traffic.arrival_window_s,
                   original.traffic.arrival_window_s);
  EXPECT_DOUBLE_EQ(parsed.traffic.mean_holding_s,
                   original.traffic.mean_holding_s);
  EXPECT_DOUBLE_EQ(parsed.traffic.mix.text, original.traffic.mix.text);
  EXPECT_DOUBLE_EQ(parsed.traffic.mix.voice, original.traffic.mix.voice);
  EXPECT_DOUBLE_EQ(parsed.traffic.mix.video, original.traffic.mix.video);
  ASSERT_TRUE(parsed.traffic.fixed_speed_kmh.has_value());
  EXPECT_DOUBLE_EQ(*parsed.traffic.fixed_speed_kmh, 42.0);
  ASSERT_TRUE(parsed.traffic.fixed_angle_deg.has_value());
  EXPECT_DOUBLE_EQ(*parsed.traffic.fixed_angle_deg, -30.0);
  EXPECT_DOUBLE_EQ(parsed.mobility.base_sigma_deg, 37.0);
  EXPECT_DOUBLE_EQ(parsed.predictor.reference_kmh, 25.0);
}

TEST(ConfigIo, DefaultsWhenKeysOmitted) {
  const ScenarioConfig parsed = scenario_from_string("seed = 9\n");
  const ScenarioConfig defaults;
  EXPECT_EQ(parsed.seed, 9u);
  EXPECT_EQ(parsed.rings, defaults.rings);
  EXPECT_DOUBLE_EQ(parsed.capacity_bu, defaults.capacity_bu);
}

TEST(ConfigIo, CommentsAndBlankLines) {
  const auto parsed = scenario_from_string(R"(
# a comment
seed = 4     # trailing comment

capacity_bu = 20
)");
  EXPECT_EQ(parsed.seed, 4u);
  EXPECT_DOUBLE_EQ(parsed.capacity_bu, 20.0);
}

TEST(ConfigIo, NoneClearsOptionalFields) {
  const auto parsed = scenario_from_string(
      "traffic.fixed_speed_kmh = 50\ntraffic.fixed_speed_kmh = none\n");
  EXPECT_FALSE(parsed.traffic.fixed_speed_kmh.has_value());
}

TEST(ConfigIo, UnknownKeyIsAnError) {
  try {
    scenario_from_string("sede = 4\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_NE(std::string(e.what()).find("sede"), std::string::npos);
  }
}

TEST(ConfigIo, BadValueIsAnErrorWithLine) {
  try {
    scenario_from_string("seed = 1\ncapacity_bu = fast\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

TEST(ConfigIo, MissingEqualsIsAnError) {
  EXPECT_THROW(scenario_from_string("seed 4\n"), ParseError);
}

TEST(ConfigIo, SemanticValidationApplies) {
  // Parses fine, but the mix does not sum to 1 -> ConfigError from
  // validate().
  EXPECT_THROW(scenario_from_string("traffic.mix.text = 0.9\n"), ConfigError);
}

TEST(ConfigIo, FileRoundTrip) {
  const std::string path = "/tmp/facsp_scenario_test.cfg";
  ScenarioConfig original = paper_scenario(55);
  original.capacity_bu = 33.0;
  save_scenario_file(original, path);
  const ScenarioConfig loaded = load_scenario_file(path);
  EXPECT_EQ(loaded.seed, 55u);
  EXPECT_DOUBLE_EQ(loaded.capacity_bu, 33.0);
  std::remove(path.c_str());
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(load_scenario_file("/nonexistent/facsp.cfg"), Error);
}

TEST(ConfigIo, UnknownArrivalOrSpatialKindIsAnError) {
  EXPECT_THROW(scenario_from_string("traffic.arrival.kind = burst\n"),
               ParseError);
  EXPECT_THROW(scenario_from_string("spatial.kind = everywhere\n"),
               ParseError);
}

TEST(ConfigIo, RemovedBackgroundTrafficKeyIsAnError) {
  // The all-or-nothing flag was replaced by spatial.kind; old configs must
  // fail loudly, not silently revert to center-only.
  EXPECT_THROW(scenario_from_string("background_traffic = true\n"),
               ParseError);
}

TEST(ConfigIo, DoubleRoundTripIsLossless) {
  // Dumped configs must reproduce the in-memory scenario bit for bit — a
  // 6-significant-digit printer would silently change the simulation (or
  // even make a valid mix unloadable: thirds truncate to a sum of
  // 0.999999, outside validate()'s tolerance).
  ScenarioConfig original = paper_scenario(1);
  original.traffic.arrival.kind = workload::ArrivalKind::kDiurnal;
  original.traffic.arrival.diurnal_phase_rad = 0.78539816339744828;  // pi/4
  const double third = 1.0 / 3.0;
  original.traffic.mix = cellular::TrafficMix{third, third, third};
  original.traffic.mix_schedule = workload::MixSchedule(
      {{450.0, cellular::TrafficMix{third, third, third}}});
  original.traffic.fixed_speed_kmh = 100.0 / 3.0;

  const ScenarioConfig parsed =
      scenario_from_string(scenario_to_string(original));
  EXPECT_EQ(parsed.traffic.arrival.diurnal_phase_rad,
            original.traffic.arrival.diurnal_phase_rad);
  EXPECT_EQ(parsed.traffic.mix.text, third);
  EXPECT_EQ(parsed.traffic.mix_schedule, original.traffic.mix_schedule);
  ASSERT_TRUE(parsed.traffic.fixed_speed_kmh.has_value());
  EXPECT_EQ(*parsed.traffic.fixed_speed_kmh, 100.0 / 3.0);
}

TEST(ConfigIo, MalformedMixScheduleIsAnError) {
  EXPECT_THROW(scenario_from_string("traffic.mix_schedule = 0:0.7/0.2\n"),
               ParseError);
  // Segment mixes must individually sum to 1.
  EXPECT_THROW(
      scenario_from_string("traffic.mix_schedule = 0:0.9/0.9/0.9\n"),
      ParseError);
}

TEST(ConfigIo, ScenarioKeysEnumerateTheWholeRegistry) {
  // scenario_keys() is the sweep layer's and `--list-keys`' view of the
  // field registry: every key must round-trip through apply_scenario_key
  // with the value save_scenario prints for it.
  const std::vector<std::string> keys = scenario_keys();
  ASSERT_FALSE(keys.empty());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  const std::string dump = scenario_to_string(ScenarioConfig{});
  ScenarioConfig rebuilt;
  for (const std::string& key : keys) {
    const std::size_t at = dump.find('\n' + key + " = ");
    ASSERT_NE(at, std::string::npos) << key;
    const std::size_t begin = at + key.size() + 4;
    const std::string value =
        dump.substr(begin, dump.find('\n', begin) - begin);
    EXPECT_NO_THROW(apply_scenario_key(rebuilt, key, value)) << key;
  }
  EXPECT_EQ(scenario_to_string(rebuilt), dump);
  EXPECT_THROW(apply_scenario_key(rebuilt, "no.such.key", "1"), ConfigError);
}

}  // namespace
}  // namespace facsp::core
