// Edge cases and failure-injection for the session driver.
#include <gtest/gtest.h>

#include "cac/guard_channel.h"
#include "core/paper.h"
#include "core/session.h"
#include "facsp.h"  // umbrella header must compile and suffice on its own

namespace facsp::core {
namespace {

ScenarioConfig base(std::uint64_t seed = 5) {
  ScenarioConfig s = paper_scenario(seed);
  s.traffic.arrival_window_s = 200.0;
  s.traffic.mean_holding_s = 100.0;
  return s;
}

TEST(SessionEdge, SingleCellNetworkHasNoHandoffTargets) {
  // rings = 0: a lone cell.  Mobile users crossing the boundary simply
  // leave coverage; nothing may crash and nothing may be dropped.
  auto scen = base();
  scen.rings = 0;
  scen.traffic.fixed_speed_kmh = 100.0;
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 0);
  const RunResult r = driver.run(30);
  EXPECT_EQ(r.metrics.handoff_attempts(), 0u);
  EXPECT_EQ(r.metrics.dropped(), 0u);
  EXPECT_EQ(r.metrics.accepted_new(), r.metrics.completed());
}

TEST(SessionEdge, StationaryUsersNeverHandOff) {
  auto scen = base();
  scen.traffic.fixed_speed_kmh = 0.0;
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 1);
  const RunResult r = driver.run(25);
  EXPECT_EQ(r.metrics.handoff_attempts(), 0u);
  EXPECT_EQ(r.metrics.dropped(), 0u);
}

TEST(SessionEdge, TinyCellProducesManyHandoffs) {
  auto scen = base();
  scen.cell_radius_m = 250.0;  // ~15 s crossing at 60 km/h
  scen.rings = 2;
  scen.traffic.fixed_speed_kmh = 60.0;
  scen.traffic.mean_holding_s = 120.0;
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 2);
  const RunResult r = driver.run(20);
  EXPECT_GT(r.metrics.handoff_attempts(), 20u);
}

TEST(SessionEdge, HorizonCutsTheRunShort) {
  auto scen = base();
  scen.horizon_s = 50.0;  // well inside the arrival window
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 3);
  const RunResult r = driver.run(50);
  // Only arrivals before the horizon were processed.
  EXPECT_LT(r.metrics.offered_new(), 50u);
  EXPECT_LE(r.duration_s, 50.0 + 1e-9);
}

TEST(SessionEdge, CapacityOneCellStillConsistent) {
  auto scen = base();
  scen.capacity_bu = 1.0;  // only single text calls fit
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 4);
  const RunResult r = driver.run(40);
  EXPECT_EQ(r.metrics.accepted_new(),
            r.metrics.completed() + r.metrics.dropped());
  // Voice and video can never be admitted.
  EXPECT_DOUBLE_EQ(
      r.metrics.acceptance_percent(cellular::ServiceClass::kVideo), 0.0);
  EXPECT_DOUBLE_EQ(
      r.metrics.acceptance_percent(cellular::ServiceClass::kVoice), 0.0);
}

TEST(SessionEdge, AllVideoMixSaturatesInFourCalls) {
  auto scen = base();
  scen.enable_mobility = false;
  scen.traffic.mix = cellular::TrafficMix{0.0, 0.0, 1.0};
  scen.traffic.arrival_window_s = 1.0;   // effectively simultaneous
  scen.traffic.mean_holding_s = 1000.0;  // nobody leaves
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 5);
  const RunResult r = driver.run(10);
  // 40 BU / 10 BU per video = exactly 4 admissions.
  EXPECT_EQ(r.metrics.accepted_new(), 4u);
}

TEST(SessionEdge, VeryShortHoldingTimesChurnCleanly) {
  auto scen = base();
  scen.traffic.mean_holding_s = 1.0;
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 6);
  const RunResult r = driver.run(60);
  // Practically no overlap: everything admitted and completed.
  EXPECT_GT(r.metrics.acceptance_percent(), 95.0);
  EXPECT_EQ(r.metrics.accepted_new(), r.metrics.completed());
}

TEST(SessionEdge, RejectingPolicyLeavesCellEmpty) {
  // A policy that rejects everything: utilization must be exactly zero
  // and every call blocked.
  struct RejectAll final : cac::AdmissionPolicy {
    std::string_view name() const noexcept override { return "deny"; }
    cac::AdmissionDecision decide(const cac::AdmissionRequest&,
                                  const cellular::BaseStation&) override {
      return {false, -1.0, cac::Verdict::kReject};
    }
  };
  auto scen = base();
  RejectAll policy;
  SessionDriver driver(scen, policy, 7);
  const RunResult r = driver.run(30);
  EXPECT_EQ(r.metrics.accepted_new(), 0u);
  EXPECT_DOUBLE_EQ(r.metrics.acceptance_percent(), 0.0);
  EXPECT_DOUBLE_EQ(r.center_utilization, 0.0);
}

TEST(SessionEdge, ThrowingScenarioIsRejectedUpFront) {
  auto scen = base();
  scen.capacity_bu = -1.0;
  cac::CompleteSharingPolicy policy;
  EXPECT_THROW(SessionDriver(scen, policy, 0), ConfigError);
}

TEST(SessionEdge, DurationCoversLastEventNotHorizon) {
  auto scen = base();
  scen.horizon_s = 1e6;  // far beyond any activity
  cac::CompleteSharingPolicy policy;
  SessionDriver driver(scen, policy, 8);
  const RunResult r = driver.run(10);
  // Active period is the arrival window plus holding tails, nowhere near
  // the horizon.
  EXPECT_LT(r.duration_s, 5000.0);
  EXPECT_GT(r.duration_s, 0.0);
}

}  // namespace
}  // namespace facsp::core
