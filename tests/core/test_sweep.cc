// The declarative sweep layer (core/sweep.h): spec validation, grid
// resolution, and — most importantly — the determinism guarantees:
//
//   * the old paper grid expressed as a SweepSpec reproduces the PR 3
//     golden per-cell metrics bit-identically at threads {1, 2, 8};
//   * a multi-axis policy x scenario x N sweep serialises byte-for-byte
//     identically for serial and parallel execution.
#include "core/sweep.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/paper.h"
#include "core/report.h"
#include "workload/catalog.h"

namespace facsp::core {
namespace {

ScenarioConfig quick_scenario() {
  ScenarioConfig s = paper_scenario(3);
  s.traffic.arrival_window_s = 300.0;
  s.traffic.mean_holding_s = 120.0;
  return s;
}

// --- spec structure --------------------------------------------------------

TEST(SweepSpec, GridSizeIsAxisProductTimesReplications) {
  SweepSpec spec;
  spec.policy_axis({"facs-p", "gc"});
  spec.scenario_axis({"paper-grid", "bursty-onoff"});
  spec.param_axis("traffic.arrival.mean_on_s", {"30", "60", "120"});
  spec.n_axis({20, 40});
  spec.replications = 5;
  EXPECT_EQ(spec.grid_size(), 2u * 2u * 3u * 2u);
  EXPECT_EQ(spec.cell_count(), 2u * 2u * 3u * 2u * 5u);
  EXPECT_NO_THROW(spec.validate());
}

TEST(SweepSpec, ValidateRejectsStructuralErrors) {
  {
    SweepSpec spec;
    spec.replications = 0;
    EXPECT_THROW(spec.validate(), ConfigError);
  }
  {
    SweepSpec spec;
    spec.n_axis({10}).n_axis({20});  // two N axes
    EXPECT_THROW(spec.validate(), ConfigError);
  }
  {
    SweepSpec spec;
    spec.param_axis("seed", {"1"}).param_axis("seed", {"2"});  // dup name
    EXPECT_THROW(spec.validate(), ConfigError);
  }
  {
    SweepSpec spec;
    spec.param_axis("seed", {});  // empty axis
    EXPECT_THROW(spec.validate(), ConfigError);
  }
  {
    // A param listed before the scenario axis would be overwritten by the
    // scenario choice — rejected, not silently ignored.
    SweepSpec spec;
    spec.param_axis("traffic.arrival.mean_on_s", {"30"});
    spec.scenario_axis({"paper-grid"});
    EXPECT_THROW(spec.validate(), ConfigError);
  }
  {
    SweepSpec spec;
    spec.n_axis({0});  // n must be >= 1
    EXPECT_THROW(spec.validate(), ConfigError);
  }
}

TEST(SweepRunner, UnknownPolicyAndParamFailAtConstruction) {
  {
    SweepSpec spec;
    spec.fallback_policy = "no-such-policy";
    EXPECT_THROW(SweepRunner{spec}, ConfigError);
  }
  {
    SweepSpec spec;
    spec.param_axis("no.such.key", {"1"});
    EXPECT_THROW(SweepRunner{spec}, ConfigError);
  }
  {
    SweepSpec spec;
    EXPECT_THROW(spec.policy_axis({"bogus"}),
                 ConfigError);
  }
  {
    EXPECT_THROW(scenario_choices({"no-such-scenario"}), ConfigError);
  }
}

TEST(SweepRunner, EmptySpecIsOneFallbackCell) {
  SweepSpec spec;
  spec.base = quick_scenario();
  spec.replications = 2;
  const SweepRunner runner(spec);
  EXPECT_EQ(runner.grid_size(), 1u);
  EXPECT_EQ(runner.cell_count(), 2u);
  std::vector<CellMetrics> cells;
  const ResultTable table = runner.run(&cells);
  ASSERT_EQ(table.rows.size(), 1u);
  // Absent axes are normalised to explicit single-value ones, so even this
  // degenerate table records which policy and N produced it.
  EXPECT_EQ(table.axes, (std::vector<std::string>{"policy", "n"}));
  EXPECT_EQ(table.rows[0].coords, (std::vector<std::string>{"facs-p", "60"}));
  EXPECT_EQ(table.rows[0].n, 60);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(table.rows[0].acceptance_percent.count(), 2u);
}

TEST(SweepRunner, RowsAreRowMajorWithLastAxisFastest) {
  SweepSpec spec;
  spec.base = quick_scenario();
  spec.replications = 1;
  spec.policy_axis({"gc", "cs"});
  spec.n_axis({5, 7});
  const ResultTable table = SweepRunner(spec).run();
  ASSERT_EQ(table.rows.size(), 4u);
  ASSERT_EQ(table.axes, (std::vector<std::string>{"policy", "n"}));
  EXPECT_EQ(table.rows[0].coords, (std::vector<std::string>{"gc", "5"}));
  EXPECT_EQ(table.rows[1].coords, (std::vector<std::string>{"gc", "7"}));
  EXPECT_EQ(table.rows[2].coords, (std::vector<std::string>{"cs", "5"}));
  EXPECT_EQ(table.rows[3].coords, (std::vector<std::string>{"cs", "7"}));
  EXPECT_EQ(table.rows[3].n, 7);
}

TEST(SweepRunner, ParamAxisActuallyModifiesTheScenario) {
  // Sweeping the seed key: both cells share (policy, n) but must simulate
  // different worlds, so the continuous utilization metric differs.
  SweepSpec spec;
  spec.base = quick_scenario();
  spec.replications = 1;
  spec.param_axis("seed", {"3", "4"});
  spec.n_axis({20});
  const ResultTable table = SweepRunner(spec).run();
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_NE(table.rows[0].utilization_percent.mean(),
            table.rows[1].utilization_percent.mean());
}

// --- determinism guarantees ------------------------------------------------

// The PR 3 golden cells (tests/workload/test_workload_golden.cc, captured
// pre-refactor at full precision): paper scenario, FACS-P, N = 60.
struct GoldenCell {
  std::uint64_t rep;
  double acceptance_percent;
  double dropping_percent;
  double utilization_percent;
  double completion_percent;
};

constexpr GoldenCell kPaperGolden[] = {
    {0, 90, 0, 11.835524683657104, 100},
    {1, 85, 0, 18.062061758336171, 100},
    {2, 50, 0, 28.029436210054261, 100},
};

TEST(SweepRunner, PaperGridSpecReproducesGoldenCellsAtEveryThreadCount) {
  for (const int threads : {1, 2, 8}) {
    SweepSpec spec = SweepSpec::paper_grid(/*replications=*/3);
    spec.threads = threads;
    const SweepRunner runner(spec);
    std::vector<CellMetrics> cells;
    runner.run(&cells);
    ASSERT_EQ(cells.size(), 30u);  // 10 N-values x 3 replications
    // N = 60 is the 6th value of the paper's x grid.
    const std::size_t base = 5u * 3u;
    for (const GoldenCell& g : kPaperGolden) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " rep=" + std::to_string(g.rep));
      const CellMetrics& m = cells[base + g.rep];
      EXPECT_EQ(m.n, 60);
      EXPECT_EQ(m.replication, g.rep);
      EXPECT_EQ(m.acceptance_percent, g.acceptance_percent);
      EXPECT_EQ(m.dropping_percent, g.dropping_percent);
      EXPECT_EQ(m.utilization_percent, g.utilization_percent);
      EXPECT_EQ(m.completion_percent, g.completion_percent);
    }
  }
}

TEST(SweepRunner, PaperGridSpecMatchesExperimentRunBitIdentically) {
  // The historical serial path vs the same grid expressed declaratively:
  // every aggregate must be bit-equal (EXPECT_EQ on doubles, no tolerance).
  const SweepResult serial = Experiment(paper_scenario(), make_facs_p_factory(),
                                        "facs-p")
                                 .run(SweepConfig::paper_grid(3));
  for (const int threads : {1, 2, 8}) {
    SweepSpec spec = SweepSpec::paper_grid(3);
    spec.threads = threads;
    const ResultTable table = SweepRunner(spec).run();
    ASSERT_EQ(table.rows.size(), serial.points.size());
    for (std::size_t i = 0; i < table.rows.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " n=" + std::to_string(serial.points[i].n));
      const ResultRow& row = table.rows[i];
      const SweepPoint& point = serial.points[i];
      EXPECT_EQ(row.n, point.n);
      EXPECT_EQ(row.acceptance_percent.mean(),
                point.acceptance_percent.mean());
      EXPECT_EQ(row.acceptance_percent.variance(),
                point.acceptance_percent.variance());
      EXPECT_EQ(row.acceptance_percent.ci_half_width(0.95),
                point.acceptance_percent.ci_half_width(0.95));
      EXPECT_EQ(row.dropping_percent.mean(), point.dropping_percent.mean());
      EXPECT_EQ(row.utilization_percent.mean(),
                point.utilization_percent.mean());
      EXPECT_EQ(row.completion_percent.mean(),
                point.completion_percent.mean());
    }
  }
}

SweepSpec multi_axis_spec(int threads) {
  // policy x scenario x N, >= 2 values per axis.  Scenario axis mixes a
  // catalog entry with an inline config; both shrunk so the matrix stays
  // ctest-cheap.
  ScenarioConfig bursty = workload::catalog_scenario("bursty-onoff");
  bursty.traffic.mean_holding_s = 120.0;
  SweepSpec spec;
  spec.replications = 2;
  spec.threads = threads;
  spec.policy_axis({"facs-p", "gc"});
  spec.scenario_axis({ScenarioChoice{"quick-paper", quick_scenario()},
                      ScenarioChoice{"quick-bursty", bursty}});
  spec.n_axis({8, 16});
  return spec;
}

TEST(SweepRunner, MultiAxisParallelVsSerialByteForByte) {
  const ResultTable serial = SweepRunner(multi_axis_spec(1)).run();
  const std::string serial_csv = result_csv_string(serial);
  const std::string serial_json = result_json_string(serial);
  ASSERT_EQ(serial.rows.size(), 8u);
  for (const int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const ResultTable parallel = SweepRunner(multi_axis_spec(threads)).run();
    EXPECT_EQ(result_csv_string(parallel), serial_csv);
    EXPECT_EQ(result_json_string(parallel), serial_json);
  }
}

TEST(SweepRunner, RawCellsComeBackInRowMajorReplicationOrder) {
  const SweepRunner runner(multi_axis_spec(4));
  std::vector<CellMetrics> cells;
  const ResultTable table = runner.run(&cells);
  ASSERT_EQ(cells.size(), 16u);
  std::size_t i = 0;
  for (const ResultRow& row : table.rows) {
    for (std::uint64_t r = 0; r < 2; ++r, ++i) {
      EXPECT_EQ(cells[i].n, row.n);
      EXPECT_EQ(cells[i].replication, r);
    }
  }
  // The rows were reduced from exactly these cells, including the derived
  // CBP (blocking = 100 - acceptance, computed per replication *before*
  // aggregation).
  sim::SummaryStats acc, blocked;
  for (std::size_t c = 0; c < 2; ++c) {
    acc.add(cells[c].acceptance_percent);
    blocked.add(100.0 - cells[c].acceptance_percent);
  }
  EXPECT_EQ(acc.mean(), table.rows[0].acceptance_percent.mean());
  EXPECT_EQ(blocked.mean(), table.rows[0].blocking_percent.mean());
  EXPECT_EQ(blocked.variance(), table.rows[0].blocking_percent.variance());
}

}  // namespace
}  // namespace facsp::core
