#include "core/experiment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>

#include "common/error.h"
#include "core/paper.h"

namespace facsp::core {
namespace {

ScenarioConfig quick_scenario() {
  ScenarioConfig s = paper_scenario(3);
  s.traffic.arrival_window_s = 300.0;
  s.traffic.mean_holding_s = 120.0;
  return s;
}

TEST(SweepConfig, PaperGridIs10To100) {
  const auto sweep = SweepConfig::paper_grid(5);
  ASSERT_EQ(sweep.n_values.size(), 10u);
  EXPECT_EQ(sweep.n_values.front(), 10);
  EXPECT_EQ(sweep.n_values.back(), 100);
  EXPECT_EQ(sweep.replications, 5);
}

TEST(Experiment, RunSingleProducesMetrics) {
  Experiment exp(quick_scenario(), make_complete_sharing_factory(), "CS");
  const RunResult r = exp.run_single(20, 0);
  EXPECT_EQ(r.metrics.offered_new(), 20u);
}

TEST(Experiment, SweepAggregatesAllPoints) {
  SweepConfig sweep;
  sweep.n_values = {5, 15};
  sweep.replications = 4;
  Experiment exp(quick_scenario(), make_complete_sharing_factory(), "CS");
  const SweepResult res = exp.run(sweep);
  EXPECT_EQ(res.policy_name, "CS");
  ASSERT_EQ(res.points.size(), 2u);
  EXPECT_EQ(res.points[0].n, 5);
  EXPECT_EQ(res.points[1].n, 15);
  EXPECT_EQ(res.points[0].acceptance_percent.count(), 4u);
  // Acceptance is a percentage.
  EXPECT_GE(res.points[0].acceptance_percent.mean(), 0.0);
  EXPECT_LE(res.points[0].acceptance_percent.mean(), 100.0);
}

TEST(Experiment, SeriesCarriesCi) {
  SweepConfig sweep;
  sweep.n_values = {10};
  sweep.replications = 6;
  Experiment exp(quick_scenario(), make_complete_sharing_factory(), "CS");
  const auto series = exp.run(sweep).acceptance_series(0.95);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series.x(0), 10.0);
  EXPECT_TRUE(series.ci(0).has_value());
}

TEST(Experiment, CommonRandomNumbersAcrossPolicies) {
  // The same (seed, replication) produces the same workload for different
  // policies: complete sharing and a zero-guard guard channel are
  // decision-identical, so their metrics must match exactly.
  const auto scen = quick_scenario();
  Experiment cs(scen, make_complete_sharing_factory(), "CS");
  Experiment gc0(scen, make_guard_channel_factory(0.0), "GC0");
  const RunResult a = cs.run_single(30, 2);
  const RunResult b = gc0.run_single(30, 2);
  EXPECT_EQ(a.metrics.accepted_new(), b.metrics.accepted_new());
  EXPECT_EQ(a.metrics.handoff_attempts(), b.metrics.handoff_attempts());
  EXPECT_EQ(a.events, b.events);
}

TEST(Experiment, AllCanonicalFactoriesProduceWorkingPolicies) {
  const auto scen = quick_scenario();
  const std::vector<std::pair<const char*, PolicyFactory>> factories = {
      {"FACS-P", make_facs_p_factory()},
      {"FACS", make_facs_factory()},
      {"SCC", make_scc_factory()},
      {"GC", make_guard_channel_factory(4.0)},
      {"FGC", make_fractional_guard_factory(4.0)},
      {"CS", make_complete_sharing_factory()},
  };
  for (const auto& [name, factory] : factories) {
    Experiment exp(scen, factory, name);
    const RunResult r = exp.run_single(15, 0);
    EXPECT_EQ(r.metrics.offered_new(), 15u) << name;
    EXPECT_LE(r.metrics.accepted_new(), 15u) << name;
  }
}

TEST(Experiment, InvalidSweepRejected) {
  Experiment exp(quick_scenario(), make_complete_sharing_factory(), "CS");
  SweepConfig empty;
  EXPECT_THROW(exp.run(empty), ContractViolation);
  SweepConfig zero_reps;
  zero_reps.n_values = {10};
  zero_reps.replications = 0;
  EXPECT_THROW(exp.run(zero_reps), ContractViolation);
}

TEST(Experiment, DriverAndPolicySeedComponentsNeverAlias) {
  // Regression for the latent aliasing in run_single: the driver's streams
  // are rooted at hash_seed(seed, "driver", r) and the policy's RngFactory
  // at hash_seed(seed, "policy", r) — two distinct components of the same
  // (seed, replication) pair.  No (component, replication) pair may ever
  // yield the seed of the other component at any replication, or a
  // randomised policy's draws could correlate with the workload.
  const std::uint64_t seed = quick_scenario().seed;
  std::set<std::uint64_t> driver_seeds, policy_seeds;
  for (std::uint64_t r = 0; r < 1000; ++r) {
    driver_seeds.insert(sim::hash_seed(seed, "driver", r));
    policy_seeds.insert(sim::hash_seed(seed, "policy", r));
  }
  EXPECT_EQ(driver_seeds.size(), 1000u);
  EXPECT_EQ(policy_seeds.size(), 1000u);
  std::vector<std::uint64_t> overlap;
  std::set_intersection(driver_seeds.begin(), driver_seeds.end(),
                        policy_seeds.begin(), policy_seeds.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
}

TEST(Experiment, PolicyRngConsumptionCannotPerturbWorkload) {
  // A fractional guard channel with an infinitesimal guard decides exactly
  // like complete sharing (p is always 1) but burns one policy-RNG draw per
  // fitting new call; complete sharing draws nothing.  With the driver's
  // streams rooted in their own "driver" component, those extra draws must
  // not perturb the workload or the run in any way.
  const auto scen = quick_scenario();
  Experiment cs(scen, make_complete_sharing_factory(), "CS");
  Experiment fgc(scen, make_fractional_guard_factory(1e-9), "FGCeps");
  for (std::uint64_t r : {0ull, 1ull, 7ull}) {
    const RunResult a = cs.run_single(25, r);
    const RunResult b = fgc.run_single(25, r);
    EXPECT_EQ(a.metrics.offered_new(), b.metrics.offered_new());
    EXPECT_EQ(a.metrics.accepted_new(), b.metrics.accepted_new());
    EXPECT_EQ(a.metrics.handoff_attempts(), b.metrics.handoff_attempts());
    EXPECT_EQ(a.events, b.events);
  }
}

TEST(Experiment, FacsFactoryResolvesCellRadiusFromNetwork) {
  // Default FacsConfig leaves cell_radius_m = 0 (auto); the factory must
  // fill it from the scenario's network instead of failing.
  auto scen = quick_scenario();
  scen.cell_radius_m = 1234.0;
  Experiment exp(scen, make_facs_factory(), "FACS");
  EXPECT_NO_THROW(exp.run_single(5, 0));
}

}  // namespace
}  // namespace facsp::core
