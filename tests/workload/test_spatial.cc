#include "workload/spatial.h"

#include <gtest/gtest.h>

#include "cellular/network.h"
#include "common/error.h"

namespace facsp::workload {
namespace {

SpatialSpec spec_of(SpatialKind kind) {
  SpatialSpec s;
  s.kind = kind;
  return s;
}

TEST(SpatialLoadMap, CenterWeightIsAlwaysOne) {
  const cellular::Point origin{0.0, 0.0};
  for (SpatialKind k : {SpatialKind::kCenterOnly, SpatialKind::kUniform,
                        SpatialKind::kHotspot, SpatialKind::kHighway}) {
    const SpatialLoadMap map(spec_of(k));
    EXPECT_DOUBLE_EQ(map.weight(cellular::HexCoord{0, 0}, origin), 1.0)
        << spatial_kind_name(k);
    EXPECT_EQ(map.requests(40, cellular::HexCoord{0, 0}, origin), 40);
  }
}

TEST(SpatialLoadMap, CenterOnlyZeroesEveryOtherCell) {
  const SpatialLoadMap map(spec_of(SpatialKind::kCenterOnly));
  EXPECT_DOUBLE_EQ(map.weight({1, 0}, {3464.1, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(map.weight({-2, 1}, {-5196.2, 3000.0}), 0.0);
}

TEST(SpatialLoadMap, UniformIsOneEverywhere) {
  const SpatialLoadMap map(spec_of(SpatialKind::kUniform));
  EXPECT_DOUBLE_EQ(map.weight({2, -1}, {5196.2, -3000.0}), 1.0);
  EXPECT_EQ(map.requests(25, {2, -1}, {5196.2, -3000.0}), 25);
}

TEST(SpatialLoadMap, HotspotDecaysGeometricallyPerRing) {
  SpatialSpec spec = spec_of(SpatialKind::kHotspot);
  spec.hotspot_decay = 0.5;
  const SpatialLoadMap map(spec);
  // Ring distance comes from hex coordinates; positions are irrelevant.
  EXPECT_DOUBLE_EQ(map.weight({1, 0}, {}), 0.5);    // ring 1
  EXPECT_DOUBLE_EQ(map.weight({2, -1}, {}), 0.25);  // ring 2
  EXPECT_DOUBLE_EQ(map.weight({0, -2}, {}), 0.25);
  EXPECT_EQ(map.requests(20, {1, 0}, {}), 10);
  EXPECT_EQ(map.requests(20, {2, -1}, {}), 5);
}

TEST(SpatialLoadMap, HighwayCorridorSelectsByCellCenterY) {
  SpatialSpec spec = spec_of(SpatialKind::kHighway);
  spec.highway_halfwidth_m = 2000.0;
  spec.highway_off_weight = 0.1;
  const SpatialLoadMap map(spec);
  EXPECT_DOUBLE_EQ(map.weight({1, 0}, {3464.1, 0.0}), 1.0);     // on axis
  EXPECT_DOUBLE_EQ(map.weight({0, 1}, {1732.1, 3000.0}), 0.1);  // off axis
  EXPECT_DOUBLE_EQ(map.weight({0, -1}, {-1732.1, -1500.0}), 1.0);
}

TEST(SpatialLoadMap, CorridorCoversARowOfARealRing2Network) {
  // On a rings=2 disc with 2 km cells, the corridor (half-width one cell
  // radius) keeps the centre row fully loaded and throttles the rest.
  const cellular::CellularNetwork net(2, 2000.0, 40.0);
  SpatialSpec spec = spec_of(SpatialKind::kHighway);
  spec.highway_halfwidth_m = 2000.0;
  spec.highway_off_weight = 0.0;
  const SpatialLoadMap map(spec);
  int full = 0, off = 0;
  for (const cellular::BaseStation* bs : net.stations())
    (map.weight(bs->coord(), bs->position()) == 1.0 ? full : off)++;
  EXPECT_EQ(full + off, 19);
  EXPECT_EQ(full, 5);  // the east-west row through the centre
}

TEST(SpatialLoadMap, RequestsRoundToNearest) {
  SpatialSpec spec = spec_of(SpatialKind::kHotspot);
  spec.hotspot_decay = 0.3;
  const SpatialLoadMap map(spec);
  EXPECT_EQ(map.requests(10, {1, 0}, {}), 3);   // 3.0
  EXPECT_EQ(map.requests(5, {1, 0}, {}), 2);    // 1.5 -> 2
  EXPECT_EQ(map.requests(10, {2, 0}, {}), 1);   // 0.9 -> 1
  EXPECT_EQ(map.requests(1, {2, 0}, {}), 0);    // 0.09 -> 0
}

TEST(SpatialSpec, Validation) {
  SpatialSpec bad = spec_of(SpatialKind::kHotspot);
  bad.hotspot_decay = 1.5;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = spec_of(SpatialKind::kHighway);
  bad.highway_halfwidth_m = 0.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = spec_of(SpatialKind::kHighway);
  bad.highway_off_weight = 1.5;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  EXPECT_THROW(spatial_kind_from_name("everywhere"), facsp::ConfigError);
}

TEST(SpatialSpec, KindNamesRoundTrip) {
  for (SpatialKind k : {SpatialKind::kCenterOnly, SpatialKind::kUniform,
                        SpatialKind::kHotspot, SpatialKind::kHighway})
    EXPECT_EQ(spatial_kind_from_name(spatial_kind_name(k)), k);
}

}  // namespace
}  // namespace facsp::workload
