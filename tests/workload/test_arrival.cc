// Arrival-process tests: structural invariants for every kind (count,
// sortedness, window containment, determinism) plus CI-aware statistical
// checks of each process's shape.  Statistical bounds follow the PR 2
// technique: compute the binomial/normal standard error and assert at
// >= 4 sigma so the fixed-seed tests never flake.
#include "workload/arrival.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "sim/rng.h"

namespace facsp::workload {
namespace {

constexpr double kWindow = 900.0;

ArrivalSpec spec_of(ArrivalKind kind) {
  ArrivalSpec s;
  s.kind = kind;
  return s;
}

std::vector<sim::SimTime> run(const ArrivalSpec& spec, int n,
                              std::uint64_t seed, double t0 = 0.0,
                              double window = kWindow) {
  auto process = make_arrival_process(spec);
  sim::RandomStream rng(seed);
  std::vector<sim::SimTime> out;
  process->generate(n, t0, window, rng, out);
  return out;
}

class EveryArrivalKind : public ::testing::TestWithParam<ArrivalKind> {};

INSTANTIATE_TEST_SUITE_P(
    Kinds, EveryArrivalKind,
    ::testing::Values(ArrivalKind::kConditionedUniform, ArrivalKind::kOnOff,
                      ArrivalKind::kDiurnal, ArrivalKind::kFlashCrowd),
    [](const auto& info) { return std::string(arrival_kind_name(info.param)); });

TEST_P(EveryArrivalKind, ExactCountSortedInsideWindow) {
  const auto times = run(spec_of(GetParam()), 500, 11, /*t0=*/100.0);
  ASSERT_EQ(times.size(), 500u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  for (const double t : times) {
    EXPECT_GE(t, 100.0);
    EXPECT_LE(t, 100.0 + kWindow);
  }
}

TEST_P(EveryArrivalKind, SameSeedSameTimes) {
  const auto a = run(spec_of(GetParam()), 200, 42);
  const auto b = run(spec_of(GetParam()), 200, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(EveryArrivalKind, ZeroRequestsAndZeroWindowAreClean) {
  EXPECT_TRUE(run(spec_of(GetParam()), 0, 1).empty());
  const auto collapsed = run(spec_of(GetParam()), 7, 1, 50.0, 0.0);
  ASSERT_EQ(collapsed.size(), 7u);
  for (const double t : collapsed) EXPECT_EQ(t, 50.0);
}

TEST_P(EveryArrivalKind, NameRoundTripsThroughSpec) {
  const ArrivalKind kind = GetParam();
  EXPECT_EQ(arrival_kind_from_name(arrival_kind_name(kind)), kind);
  EXPECT_EQ(make_arrival_process(spec_of(kind))->name(),
            arrival_kind_name(kind));
}

TEST(ConditionedUniformArrivals, MatchesLegacyDrawSequence) {
  // The default process must consume the stream exactly as the pre-refactor
  // TrafficGenerator loop did: n uniforms over the window, then sort.
  const auto times = run({}, 64, 5, 10.0);
  sim::RandomStream legacy(5);
  std::vector<double> expected;
  for (int i = 0; i < 64; ++i)
    expected.push_back(10.0 + legacy.uniform(0.0, kWindow));
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(times.size(), expected.size());
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_EQ(times[i], expected[i]);
}

TEST(ConditionedUniformArrivals, FirstHalfShareIsBinomiallyConsistent) {
  // Long-run rate sanity for the baseline: over many replications the share
  // of arrivals in the first half-window is 1/2 within 4 sigma.
  const int reps = 100, n = 200;
  std::int64_t first_half = 0;
  for (int r = 0; r < reps; ++r)
    for (const double t : run({}, n, 1000 + r))
      if (t < kWindow / 2) ++first_half;
  const double total = static_cast<double>(reps) * n;
  const double sigma = std::sqrt(0.5 * 0.5 / total);
  EXPECT_NEAR(first_half / total, 0.5, 4.0 * sigma);
}

TEST(OnOffArrivals, BurstierThanUniformButSameLongRunMeanRate) {
  // Two claims at once, over the same 10-bin count histogram:
  //  * long-run mean rate: averaged over many replications every bin holds
  //    ~n/10 arrivals (the MMPP is stationary, and conditioning on n fixes
  //    the total), within 4 sigma of the per-bin mean;
  //  * burstiness: the per-replication index of dispersion of bin counts is
  //    far above 1 (a conditioned-uniform batch gives ~1).
  ArrivalSpec spec = spec_of(ArrivalKind::kOnOff);
  const int reps = 120, n = 300, bins = 10;
  std::vector<double> bin_totals(bins, 0.0);
  double dispersion_sum = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::vector<int> counts(bins, 0);
    for (const double t : run(spec, n, 2000 + r)) {
      const int b = std::min(bins - 1, static_cast<int>(t / (kWindow / bins)));
      ++counts[b];
    }
    double mean = static_cast<double>(n) / bins, var = 0.0;
    for (int b = 0; b < bins; ++b) {
      bin_totals[b] += counts[b];
      var += (counts[b] - mean) * (counts[b] - mean) / bins;
    }
    dispersion_sum += var / mean;
  }
  // Burstiness: with ON 8x for ~60 s vs OFF 0.25x for ~180 s the dispersion
  // is an order of magnitude above Poisson; 3 is a conservative floor.
  EXPECT_GT(dispersion_sum / reps, 3.0);
  // Stationarity: each bin's replication-averaged share is 1/10 within
  // 4 sigma of the across-replication spread of per-bin means.
  for (int b = 0; b < bins; ++b) {
    const double share = bin_totals[b] / (static_cast<double>(reps) * n);
    // Per-replication bin share has stddev <= ~sqrt(dispersion*p(1-p)/n);
    // averaging over reps divides by sqrt(reps).  Bound it generously.
    const double sigma = std::sqrt(20.0 * 0.1 * 0.9 / n / reps);
    EXPECT_NEAR(share, 0.1, 4.0 * sigma) << "bin " << b;
  }
}

TEST(OnOffArrivals, DispersionControlConditionedUniformIsNearPoisson) {
  // The control for the burstiness claim above: the same statistic on the
  // conditioned-uniform process stays near 1.
  const int reps = 120, n = 300, bins = 10;
  double dispersion_sum = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::vector<int> counts(bins, 0);
    for (const double t : run({}, n, 3000 + r))
      ++counts[std::min(bins - 1, static_cast<int>(t / (kWindow / bins)))];
    double mean = static_cast<double>(n) / bins, var = 0.0;
    for (int c : counts) var += (c - mean) * (c - mean) / bins;
    dispersion_sum += var / mean;
  }
  EXPECT_LT(dispersion_sum / reps, 2.0);
}

TEST(DiurnalArrivals, MassFollowsTheSinusoid) {
  // lambda(t) = 1 + a sin(2 pi t / P) with P = window puts
  // 1/2 + a/pi of the mass in the first half-window.
  ArrivalSpec spec = spec_of(ArrivalKind::kDiurnal);
  spec.diurnal_amplitude = 0.8;
  spec.diurnal_period_s = kWindow;
  spec.diurnal_phase_rad = 0.0;
  const int reps = 60, n = 400;
  std::int64_t first_half = 0;
  for (int r = 0; r < reps; ++r)
    for (const double t : run(spec, n, 4000 + r))
      if (t < kWindow / 2) ++first_half;
  const double expected = 0.5 + 0.8 / 3.14159265358979323846;
  const double total = static_cast<double>(reps) * n;
  const double sigma = std::sqrt(expected * (1.0 - expected) / total);
  EXPECT_NEAR(first_half / total, expected, 4.0 * sigma);
}

TEST(FlashCrowdArrivals, BurstCarriesTheConfiguredFraction) {
  ArrivalSpec spec = spec_of(ArrivalKind::kFlashCrowd);
  spec.flash_fraction = 0.5;
  spec.flash_start_s = 300.0;
  spec.flash_duration_s = 30.0;
  const int reps = 60, n = 400;
  std::int64_t in_burst = 0;
  for (int r = 0; r < reps; ++r)
    for (const double t : run(spec, n, 5000 + r))
      if (t >= 300.0 && t <= 330.0) ++in_burst;
  // Burst members land inside [300, 330] by construction; background
  // arrivals add 30/900 of their own mass there.
  const double expected = 0.5 + 0.5 * (30.0 / kWindow);
  const double total = static_cast<double>(reps) * n;
  const double sigma = std::sqrt(expected * (1.0 - expected) / total);
  EXPECT_NEAR(in_burst / total, expected, 4.0 * sigma);
}

TEST(FlashCrowdArrivals, BurstClampedIntoShortWindows) {
  ArrivalSpec spec = spec_of(ArrivalKind::kFlashCrowd);
  spec.flash_start_s = 300.0;
  spec.flash_duration_s = 60.0;
  const auto times = run(spec, 200, 9, 0.0, /*window=*/120.0);
  for (const double t : times) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 120.0);
  }
}

TEST(ArrivalSpec, Validation) {
  ArrivalSpec bad = spec_of(ArrivalKind::kOnOff);
  bad.on_rate = 0.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = spec_of(ArrivalKind::kOnOff);
  bad.off_rate = 2.0;
  bad.on_rate = 1.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = spec_of(ArrivalKind::kOnOff);
  bad.mean_off_s = 0.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = spec_of(ArrivalKind::kDiurnal);
  bad.diurnal_amplitude = 1.5;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = spec_of(ArrivalKind::kDiurnal);
  bad.diurnal_period_s = 0.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = spec_of(ArrivalKind::kFlashCrowd);
  bad.flash_fraction = -0.1;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  bad = spec_of(ArrivalKind::kFlashCrowd);
  bad.flash_start_s = -1.0;
  EXPECT_THROW(bad.validate(), facsp::ConfigError);
  EXPECT_THROW(arrival_kind_from_name("nope"), facsp::ConfigError);
}

}  // namespace
}  // namespace facsp::workload
