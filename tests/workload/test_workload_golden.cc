// Golden regression: the workload refactor (pluggable arrival processes,
// spatial load maps, mix schedules) must not move a single bit of the
// paper-grid results.  The expected values were captured from the
// pre-refactor tree (PR 2, commit 89217d8) at full precision; every
// comparison is EXPECT_EQ on doubles — no tolerance anywhere.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/paper.h"
#include "workload/catalog.h"

namespace facsp::core {
namespace {

struct GoldenCell {
  int n;
  std::uint64_t rep;
  double acceptance_percent;
  double dropping_percent;
  double utilization_percent;
  double completion_percent;
};

void expect_cells(const ScenarioConfig& scen, PolicyFactory factory,
                  const char* label,
                  const std::vector<GoldenCell>& golden) {
  Experiment exp(scen, std::move(factory), label);
  for (const GoldenCell& g : golden) {
    const CellMetrics m =
        CellMetrics::from_run(g.n, g.rep, exp.run_single(g.n, g.rep));
    SCOPED_TRACE(std::string(label) + " n=" + std::to_string(g.n) +
                 " rep=" + std::to_string(g.rep));
    EXPECT_EQ(m.acceptance_percent, g.acceptance_percent);
    EXPECT_EQ(m.dropping_percent, g.dropping_percent);
    EXPECT_EQ(m.utilization_percent, g.utilization_percent);
    EXPECT_EQ(m.completion_percent, g.completion_percent);
  }
}

TEST(WorkloadGolden, PaperScenarioFacsPBitIdenticalToPreRefactor) {
  expect_cells(paper_scenario(), make_facs_p_factory(), "FACS-P",
               {{60, 0, 90, 0, 11.835524683657104, 100},
                {60, 1, 85, 0, 18.062061758336171, 100},
                {60, 2, 50, 0, 28.029436210054261, 100}});
}

TEST(WorkloadGolden, CatalogPaperGridMatchesPaperScenario) {
  // The catalog's default entry is the paper scenario, bit for bit.
  expect_cells(workload::catalog_scenario("paper-grid"),
               make_facs_p_factory(), "FACS-P",
               {{60, 0, 90, 0, 11.835524683657104, 100},
                {60, 1, 85, 0, 18.062061758336171, 100},
                {60, 2, 50, 0, 28.029436210054261, 100}});
}

TEST(WorkloadGolden, FractionalGuardPolicyStreamBitIdentical) {
  // FGC draws from the per-replication policy RNG stream: covers the
  // "policy" seeding component.
  expect_cells(paper_scenario(), make_fractional_guard_factory(8.0), "FGC",
               {{40, 0, 100, 0, 13.100131014181638, 100},
                {40, 1, 100, 0, 18.703592896035026, 100}});
}

TEST(WorkloadGolden, UniformSpatialMapBitIdenticalToOldBackgroundTraffic) {
  // spatial.kind = uniform must reproduce the removed
  // background_traffic=true path exactly (same streams, same id ranges).
  ScenarioConfig scen = paper_scenario();
  scen.rings = 2;
  scen.spatial.kind = workload::SpatialKind::kUniform;
  expect_cells(scen, make_facs_p_factory(), "FACS-P bg19",
               {{30, 0, 60, 0, 9.3209679154513214, 100},
                {30, 1, 76.666666666666671, 0, 13.626344294319651, 100}});
}

TEST(WorkloadGolden, FixedSpeedVariantBitIdentical) {
  expect_cells(paper_scenario_fixed_speed(100.0, 7), make_facs_p_factory(),
               "FACS-P 100kmh",
               {{50, 0, 86, 0, 13.732809163559768, 100},
                {50, 1, 92, 0, 12.518609962157157, 100}});
}

}  // namespace
}  // namespace facsp::core
