#include "workload/catalog.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/config_io.h"
#include "core/paper.h"

namespace facsp::workload {
namespace {

TEST(ScenarioCatalog, BuiltInsAreRegistered) {
  auto& catalog = ScenarioCatalog::instance();
  for (const char* name :
       {"paper-grid", "bursty-onoff", "flash-crowd", "diurnal",
        "hotspot-ring2", "highway", "mix-shift"}) {
    EXPECT_TRUE(catalog.contains(name)) << name;
    const auto* entry = catalog.find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_FALSE(entry->description.empty()) << name;
  }
}

TEST(ScenarioCatalog, EveryEntryBuildsAValidScenario) {
  for (const auto& entry : ScenarioCatalog::instance().entries()) {
    SCOPED_TRACE(entry.name);
    const core::ScenarioConfig scen = catalog_scenario(entry.name);
    EXPECT_NO_THROW(scen.validate());
    // And every scenario round-trips through the config format.
    const core::ScenarioConfig reparsed =
        core::scenario_from_string(core::scenario_to_string(scen));
    EXPECT_EQ(core::scenario_to_string(reparsed),
              core::scenario_to_string(scen));
  }
}

TEST(ScenarioCatalog, PaperGridIsThePaperScenario) {
  EXPECT_EQ(core::scenario_to_string(catalog_scenario("paper-grid")),
            core::scenario_to_string(core::paper_scenario()));
}

TEST(ScenarioCatalog, ScenarioShapesAreWired) {
  EXPECT_EQ(catalog_scenario("bursty-onoff").traffic.arrival.kind,
            ArrivalKind::kOnOff);
  EXPECT_EQ(catalog_scenario("flash-crowd").traffic.arrival.kind,
            ArrivalKind::kFlashCrowd);
  EXPECT_EQ(catalog_scenario("diurnal").traffic.arrival.kind,
            ArrivalKind::kDiurnal);
  const auto hotspot = catalog_scenario("hotspot-ring2");
  EXPECT_EQ(hotspot.spatial.kind, SpatialKind::kHotspot);
  EXPECT_EQ(hotspot.rings, 2);
  const auto highway = catalog_scenario("highway");
  EXPECT_EQ(highway.spatial.kind, SpatialKind::kHighway);
  ASSERT_TRUE(highway.traffic.fixed_speed_kmh.has_value());
  EXPECT_DOUBLE_EQ(*highway.traffic.fixed_speed_kmh, 100.0);
  EXPECT_FALSE(catalog_scenario("mix-shift").traffic.mix_schedule.empty());
}

TEST(ScenarioCatalog, UnknownNameThrowsListingKnownOnes) {
  try {
    catalog_scenario("carrier-pigeon");
    FAIL() << "expected ConfigError";
  } catch (const facsp::ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("carrier-pigeon"), std::string::npos);
    EXPECT_NE(what.find("paper-grid"), std::string::npos);
  }
}

TEST(ScenarioCatalog, RejectsDuplicatesAndEmptyEntries) {
  ScenarioCatalog catalog;
  catalog.add("mine", "a scenario", [] { return core::paper_scenario(); });
  EXPECT_THROW(
      catalog.add("mine", "again", [] { return core::paper_scenario(); }),
      facsp::ConfigError);
  EXPECT_THROW(
      catalog.add("", "nameless", [] { return core::paper_scenario(); }),
      facsp::ConfigError);
  EXPECT_THROW(catalog.add("unbuildable", "no builder", nullptr),
               facsp::ConfigError);
  EXPECT_EQ(catalog.names().size(), 1u);
}

}  // namespace
}  // namespace facsp::workload
