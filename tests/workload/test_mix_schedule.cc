#include "workload/mix_schedule.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace facsp::workload {
namespace {

using cellular::TrafficMix;

const TrafficMix kBase{0.70, 0.20, 0.10};

TEST(MixSchedule, EmptyScheduleAlwaysReturnsBase) {
  const MixSchedule empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.segment_at(0.0), -1);
  EXPECT_DOUBLE_EQ(empty.mix_at(1e9, kBase).text, 0.70);
}

TEST(MixSchedule, SegmentsApplyFromTheirStartOffset) {
  const MixSchedule sched({{100.0, TrafficMix{0.5, 0.3, 0.2}},
                           {400.0, TrafficMix{0.2, 0.3, 0.5}}});
  EXPECT_EQ(sched.segment_at(0.0), -1);     // before first segment: base
  EXPECT_EQ(sched.segment_at(100.0), 0);    // inclusive start
  EXPECT_EQ(sched.segment_at(399.9), 0);
  EXPECT_EQ(sched.segment_at(400.0), 1);
  EXPECT_EQ(sched.segment_at(1e6), 1);      // last segment holds forever
  EXPECT_DOUBLE_EQ(sched.mix_at(50.0, kBase).text, 0.70);
  EXPECT_DOUBLE_EQ(sched.mix_at(200.0, kBase).text, 0.5);
  EXPECT_DOUBLE_EQ(sched.mix_at(500.0, kBase).video, 0.5);
}

TEST(MixSchedule, StringRoundTrip) {
  const MixSchedule sched({{0.0, TrafficMix{0.7, 0.2, 0.1}},
                           {450.0, TrafficMix{0.4, 0.2, 0.4}}});
  const MixSchedule parsed = MixSchedule::from_string(sched.to_string());
  EXPECT_EQ(parsed, sched);
  EXPECT_EQ(MixSchedule::from_string("none"), MixSchedule{});
  EXPECT_EQ(MixSchedule::from_string(""), MixSchedule{});
  EXPECT_EQ(MixSchedule{}.to_string(), "none");
}

TEST(MixSchedule, FromStringRejectsMalformedInput) {
  EXPECT_THROW(MixSchedule::from_string("0:0.7/0.2"), facsp::ConfigError);
  EXPECT_THROW(MixSchedule::from_string("abc"), facsp::ConfigError);
  EXPECT_THROW(MixSchedule::from_string("0:0.7/0.2/0.1x"),
               facsp::ConfigError);
  // Mixes must sum to 1.
  EXPECT_THROW(MixSchedule::from_string("0:0.9/0.9/0.9"),
               facsp::ConfigError);
  // Starts must be strictly increasing.
  EXPECT_THROW(
      MixSchedule::from_string("100:0.7/0.2/0.1;100:0.5/0.3/0.2"),
      facsp::ConfigError);
}

TEST(MixSchedule, ValidationCatchesBadSegments) {
  const MixSchedule negative({{-1.0, kBase}});
  EXPECT_THROW(negative.validate(), facsp::ConfigError);
  const MixSchedule bad_mix({{0.0, TrafficMix{0.9, 0.9, 0.9}}});
  EXPECT_THROW(bad_mix.validate(), facsp::ConfigError);
}

}  // namespace
}  // namespace facsp::workload
