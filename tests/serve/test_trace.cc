#include "serve/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace facsp::serve {
namespace {

std::vector<StampedRequest> awkward_records() {
  std::vector<StampedRequest> records;
  StampedRequest a;
  a.req.now = 1.0 / 3.0;  // no short exact decimal
  a.req.id = 1099511627777ull;
  a.req.service = cellular::ServiceClass::kVideo;
  a.req.bandwidth = 10.0;
  a.req.kind = cellular::RequestKind::kHandoff;
  a.req.priority = cellular::UserPriority::kHigh;
  a.req.speed_kmh = 119.99999999999999;
  a.req.angle_deg = -179.5;
  a.req.distance_m = 1234.5678901234567;
  a.req.mobile.position = {-0.1, 2e-308};  // subnormal-adjacent
  a.req.mobile.speed_kmh = a.req.speed_kmh;
  a.req.mobile.heading_deg = 90.125;
  a.holding_s = 300.30000000000001;
  records.push_back(a);
  StampedRequest b;
  b.req.now = 0.5;
  b.req.service = cellular::ServiceClass::kText;
  b.req.bandwidth = 1.0;
  records.push_back(b);
  return records;
}

TEST(Trace, RoundTripIsExactAndByteStable) {
  const std::vector<StampedRequest> records = awkward_records();
  std::ostringstream first;
  write_trace(records, first);

  std::istringstream in(first.str());
  const std::vector<StampedRequest> parsed = read_trace(in);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    // Exact double round-trip (format_double), not approximate.
    EXPECT_EQ(parsed[i].req.now, records[i].req.now);
    EXPECT_EQ(parsed[i].req.id, records[i].req.id);
    EXPECT_EQ(parsed[i].req.service, records[i].req.service);
    EXPECT_EQ(parsed[i].req.bandwidth, records[i].req.bandwidth);
    EXPECT_EQ(parsed[i].req.kind, records[i].req.kind);
    EXPECT_EQ(parsed[i].req.priority, records[i].req.priority);
    EXPECT_EQ(parsed[i].req.speed_kmh, records[i].req.speed_kmh);
    EXPECT_EQ(parsed[i].req.angle_deg, records[i].req.angle_deg);
    EXPECT_EQ(parsed[i].req.distance_m, records[i].req.distance_m);
    EXPECT_EQ(parsed[i].holding_s, records[i].holding_s);
    EXPECT_EQ(parsed[i].req.mobile.position.x, records[i].req.mobile.position.x);
    EXPECT_EQ(parsed[i].req.mobile.position.y, records[i].req.mobile.position.y);
    EXPECT_EQ(parsed[i].req.mobile.heading_deg,
              records[i].req.mobile.heading_deg);
    // The predictor's noisy angle is recorded, and replay must see the
    // true kinematic speed too (SCC projects trajectories from it).
    EXPECT_EQ(parsed[i].req.mobile.speed_kmh, parsed[i].req.speed_kmh);
  }

  std::ostringstream second;
  write_trace(parsed, second);
  EXPECT_EQ(first.str(), second.str());  // record -> replay -> record
}

TEST(Trace, HeaderLineMatchesFormat) {
  std::ostringstream os;
  write_trace({}, os);
  EXPECT_EQ(os.str(), std::string(kTraceHeader) + "\n");
}

TEST(Trace, RejectsWrongHeader) {
  std::istringstream in("arrival_s,id\n1,2\n");
  EXPECT_THROW(read_trace(in), ParseError);
}

TEST(Trace, RejectsBadCells) {
  const std::string header(kTraceHeader);
  {
    std::istringstream in(header +
                          "\nnot-a-number,1,text,1,new,normal,0,0,0,1,0,0,0\n");
    EXPECT_THROW(read_trace(in), ParseError);
  }
  {
    std::istringstream in(header +
                          "\n0,1,fax,1,new,normal,0,0,0,1,0,0,0\n");
    EXPECT_THROW(read_trace(in), ParseError);  // unknown service
  }
  {
    std::istringstream in(header +
                          "\n0,1,text,1,maybe,normal,0,0,0,1,0,0,0\n");
    EXPECT_THROW(read_trace(in), ParseError);  // unknown kind
  }
  {
    std::istringstream in(header + "\n0,1,text,1,new,urgent,0,0,0,1,0,0,0\n");
    EXPECT_THROW(read_trace(in), ParseError);  // unknown priority
  }
}

TEST(Trace, FileRoundTrip) {
  const std::string path = testing::TempDir() + "facsp_trace_roundtrip.csv";
  const std::vector<StampedRequest> records = awkward_records();
  write_trace_file(records, path);
  const std::vector<StampedRequest> parsed = read_trace_file(path);
  ASSERT_EQ(parsed.size(), records.size());
  EXPECT_EQ(parsed[0].req.id, records[0].req.id);
  EXPECT_THROW(read_trace_file(path + ".does-not-exist"), Error);
}

}  // namespace
}  // namespace facsp::serve
