#include "serve/decision_loop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "workload/catalog.h"

namespace facsp::serve {
namespace {

ServerConfig small_config() {
  ServerConfig config;
  config.scenario = workload::catalog_scenario("paper-grid");
  config.scenario.seed = 11;
  config.duration_s = 3;
  config.requests_per_s = 400;
  config.shards = 3;  // deliberately not divisible: rates 134/133/133
  config.threads = 1;
  return config;
}

std::string telemetry_string(const ServerResult& result) {
  std::ostringstream os;
  write_telemetry_csv(result, os);
  return os.str();
}

TEST(DecisionServer, TelemetryIsByteIdenticalAcrossThreadCounts) {
  ServerConfig config = small_config();
  std::string baseline;
  for (const int threads : {1, 2, 4}) {
    config.threads = threads;
    DecisionServer server(config);
    const std::string csv = telemetry_string(server.run());
    if (threads == 1)
      baseline = csv;
    else
      EXPECT_EQ(csv, baseline) << "threads=" << threads;
  }
  EXPECT_FALSE(baseline.empty());
}

TEST(DecisionServer, SameSeedSameBytesDifferentSeedDifferent) {
  const ServerConfig config = small_config();
  DecisionServer a(config), b(config);
  const std::string ta = telemetry_string(a.run());
  EXPECT_EQ(ta, telemetry_string(b.run()));

  ServerConfig other = config;
  other.scenario.seed = 12;
  DecisionServer c(other);
  EXPECT_NE(ta, telemetry_string(c.run()));
}

TEST(DecisionServer, CountersAreConsistent) {
  DecisionServer server(small_config());
  const ServerResult result = server.run();
  ASSERT_EQ(result.telemetry.size(), 3u);
  std::int64_t decisions = 0;
  for (const TelemetryRow& row : result.telemetry) {
    EXPECT_EQ(row.decisions, row.new_attempts + row.handoff_attempts);
    EXPECT_EQ(row.decisions,
              row.admitted + row.blocked_new + row.dropped_handoff);
    EXPECT_GE(row.queue_depth, 0);
    // Text is 1 BU, so active sessions can never exceed the capacity in BU
    // (per shard); summed over 3 shards.
    EXPECT_LE(row.active_sessions,
              static_cast<std::int64_t>(
                  3 * small_config().scenario.capacity_bu));
    decisions += row.decisions;
  }
  EXPECT_EQ(decisions, result.total_decisions);
  EXPECT_EQ(decisions, 3 * 400);  // rate honoured exactly, every second
  EXPECT_GT(result.total_admitted, 0);
  EXPECT_EQ(result.overall.count(),
            static_cast<std::uint64_t>(result.total_decisions));
}

TEST(DecisionServer, SessionsExpireAndFreeCapacity) {
  // 1 s holding inside a 4 s run: admissions must continue after the cell
  // first fills, because earlier calls finish and release bandwidth.
  ServerConfig config = small_config();
  config.duration_s = 4;
  config.scenario.traffic.mean_holding_s = 1.0;
  DecisionServer server(config);
  const ServerResult result = server.run();
  std::int64_t late_admitted = 0;
  for (std::size_t i = 2; i < result.telemetry.size(); ++i)
    late_admitted += result.telemetry[i].admitted;
  EXPECT_GT(late_admitted, 0);
}

TEST(DecisionServer, ReplayMatchesAcrossThreadCountsAndDerivesDuration) {
  ServerConfig config = small_config();
  const std::vector<StampedRequest> trace = record_trace(config);
  ASSERT_EQ(trace.size(), 3u * 400u);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_LE(trace[i - 1].req.now, trace[i].req.now);

  ServerConfig replay = config;
  replay.duration_s = 0;  // derive from the trace
  std::string baseline;
  for (const int threads : {1, 2}) {
    replay.threads = threads;
    DecisionServer server(replay, trace);
    EXPECT_EQ(server.duration_s(), 3);
    const ServerResult result = server.run();
    EXPECT_EQ(result.total_decisions,
              static_cast<std::int64_t>(trace.size()));
    const std::string csv = telemetry_string(result);
    if (threads == 1)
      baseline = csv;
    else
      EXPECT_EQ(csv, baseline);
  }
}

TEST(DecisionServer, EmptyTraceWithoutDurationThrows) {
  ServerConfig config = small_config();
  config.duration_s = 0;
  EXPECT_THROW(DecisionServer(config, {}), ConfigError);
}

TEST(ServerConfig, ValidationRejectsBadValues) {
  ServerConfig config = small_config();
  config.shards = 0;
  EXPECT_THROW(config.validate(true), ConfigError);
  config = small_config();
  config.batch_window_s = 0.0;
  EXPECT_THROW(config.validate(true), ConfigError);
  config = small_config();
  config.batch_window_s = 1.5;
  EXPECT_THROW(config.validate(true), ConfigError);
  config = small_config();
  config.batch_max = 0;
  EXPECT_THROW(config.validate(true), ConfigError);
  config = small_config();
  config.handoff_fraction = 1.5;
  EXPECT_THROW(config.validate(true), ConfigError);
  config = small_config();
  config.duration_s = 0;
  EXPECT_THROW(config.validate(true), ConfigError);   // live needs a duration
  EXPECT_NO_THROW(config.validate(false));            // replay derives it
}

TEST(DecisionServer, UnknownPolicyThrows) {
  ServerConfig config = small_config();
  config.policy = "no-such-policy";
  EXPECT_THROW(DecisionServer{config}, ConfigError);
}

TEST(DecisionServer, RenderingHasStableShape) {
  DecisionServer server(small_config());
  const ServerResult result = server.run();

  const std::string telemetry = telemetry_string(result);
  EXPECT_EQ(telemetry.find("second,decisions,admitted,new_attempts,"
                           "blocked_new,handoff_attempts,dropped_handoff,"
                           "queue_depth,active_sessions,cbp_pct,cdp_pct\n"),
            0u);
  EXPECT_EQ(std::count(telemetry.begin(), telemetry.end(), '\n'), 1 + 3);

  std::ostringstream lat;
  write_latency_csv(result, lat);
  const std::string latency = lat.str();
  EXPECT_EQ(latency.find(
                "second,samples,p50_ns,p95_ns,p99_ns,p999_ns,mean_ns,max_ns\n"),
            0u);
  EXPECT_EQ(std::count(latency.begin(), latency.end(), '\n'), 1 + 3);

  std::ostringstream out;
  write_summary_json(small_config(), result, out);
  const std::string summary = out.str();
  for (const char* key :
       {"\"policy\"", "\"total_decisions\"", "\"cbp_pct\"", "\"cdp_pct\"",
        "\"decisions_per_s\"", "\"latency_ns\"", "\"p99\"", "\"p999\"",
        "\"mean\"", "\"metadata\"", "\"scenario\"", "\"simd\"",
        "\"latency_histogram\"", "\"sub_bucket_bits\""})
    EXPECT_NE(summary.find(key), std::string::npos) << key;

  const sim::Figure fig = telemetry_figure(result);
  ASSERT_EQ(fig.series().size(), 4u);
  EXPECT_EQ(fig.series()[0].size(), 3u);
}

}  // namespace
}  // namespace facsp::serve
