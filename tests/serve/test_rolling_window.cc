#include "serve/rolling_window.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace facsp::serve {
namespace {

TEST(RollingWindow, BoundaryTickCountsInTheOpeningWindow) {
  // Windows are half-open [k*w, (k+1)*w): an event exactly on the edge
  // belongs to the window it opens.
  RollingWindow w(1.0);
  EXPECT_EQ(w.window_of(0.0), 0);
  EXPECT_EQ(w.window_of(0.999999), 0);
  EXPECT_EQ(w.window_of(1.0), 1);
  EXPECT_EQ(w.window_of(std::nextafter(2.0, 0.0)), 1);
  EXPECT_EQ(w.window_of(2.0), 2);

  RollingWindow half(0.5);
  EXPECT_EQ(half.window_of(0.5), 1);
  EXPECT_EQ(half.window_of(std::nextafter(0.5, 0.0)), 0);
  EXPECT_EQ(half.window_of(1.0), 2);
}

TEST(RollingWindow, RowForReturnsSameRowWithinWindow) {
  RollingWindow w(1.0);
  TelemetryRow& a = w.row_for(0);
  a.decisions = 3;
  TelemetryRow& b = w.row_for(0);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.decisions, 3);
}

TEST(RollingWindow, RowForOpensSkippedWindowsContiguously) {
  RollingWindow w(1.0);
  w.row_for(0).decisions = 1;
  w.row_for(3).decisions = 9;  // seconds 1 and 2 were idle
  ASSERT_EQ(w.rows().size(), 4u);
  for (std::int64_t i = 0; i < 4; ++i)
    EXPECT_EQ(w.rows()[static_cast<std::size_t>(i)].window, i);
  EXPECT_EQ(w.rows()[1].decisions, 0);
  EXPECT_EQ(w.rows()[2].decisions, 0);
  EXPECT_EQ(w.rows()[3].decisions, 9);
}

TEST(RollingWindow, RowForRejectsGoingBackwards) {
  RollingWindow w(1.0);
  w.row_for(2);
  EXPECT_THROW(w.row_for(1), ContractViolation);
  EXPECT_THROW(w.row_for(-1), ContractViolation);
}

TEST(RollingWindow, InvalidWindowLengthThrows) {
  EXPECT_THROW(RollingWindow(0.0), ContractViolation);
  EXPECT_THROW(RollingWindow(-1.0), ContractViolation);
}

TEST(TelemetryRow, MergeSumsAllCounters) {
  TelemetryRow a, b;
  a.decisions = 10;
  a.admitted = 4;
  a.new_attempts = 7;
  a.blocked_new = 3;
  a.handoff_attempts = 3;
  a.dropped_handoff = 1;
  a.queue_depth = 5;
  a.active_sessions = 2;
  b.decisions = 20;
  b.admitted = 6;
  b.new_attempts = 15;
  b.blocked_new = 9;
  b.handoff_attempts = 5;
  b.dropped_handoff = 2;
  b.queue_depth = 7;
  b.active_sessions = 4;
  a.merge(b);
  EXPECT_EQ(a.decisions, 30);
  EXPECT_EQ(a.admitted, 10);
  EXPECT_EQ(a.new_attempts, 22);
  EXPECT_EQ(a.blocked_new, 12);
  EXPECT_EQ(a.handoff_attempts, 8);
  EXPECT_EQ(a.dropped_handoff, 3);
  EXPECT_EQ(a.queue_depth, 12);
  EXPECT_EQ(a.active_sessions, 6);
}

TEST(TelemetryRow, BlockingAndDroppingPercentages) {
  TelemetryRow r;
  EXPECT_DOUBLE_EQ(r.cbp_pct(), 0.0);  // no attempts -> 0, not NaN
  EXPECT_DOUBLE_EQ(r.cdp_pct(), 0.0);
  r.new_attempts = 8;
  r.blocked_new = 2;
  r.handoff_attempts = 4;
  r.dropped_handoff = 3;
  EXPECT_DOUBLE_EQ(r.cbp_pct(), 25.0);
  EXPECT_DOUBLE_EQ(r.cdp_pct(), 75.0);
}

}  // namespace
}  // namespace facsp::serve
