#include "serve/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/error.h"

namespace facsp::serve {
namespace {

TEST(LatencyHistogram, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 2 * LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper_bound(v), v);
  }
}

TEST(LatencyHistogram, BucketGeometryBoundsRelativeError) {
  // The bucket upper bound over-reports by at most 1/kSubBuckets.
  for (std::uint64_t v : {100ull, 1000ull, 54321ull, 1048576ull,
                          987654321ull, 1099511627776ull}) {
    const std::uint64_t ub = LatencyHistogram::bucket_upper_bound(v);
    EXPECT_GE(ub, v);
    EXPECT_LE(static_cast<double>(ub - v),
              static_cast<double>(v) / LatencyHistogram::kSubBuckets)
        << "value " << v;
    // Everything in the bucket maps to the same index; ub+1 starts the next.
    EXPECT_EQ(LatencyHistogram::bucket_index(v),
              LatencyHistogram::bucket_index(ub));
    EXPECT_NE(LatencyHistogram::bucket_index(v),
              LatencyHistogram::bucket_index(ub + 1));
  }
}

TEST(LatencyHistogram, BucketIndexIsMonotone) {
  std::uint64_t prev = LatencyHistogram::bucket_index(0);
  for (std::uint64_t v = 1; v < 100000; v += 7) {
    const std::uint64_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
  EXPECT_LT(LatencyHistogram::bucket_index(~0ull),
            LatencyHistogram::kBucketCount);
}

TEST(LatencyHistogram, PercentilesMatchSortedReference) {
  // Contract: percentile_ns(q) equals the bucket upper bound of the
  // ceil(q*n)-th smallest recorded sample — an exact statement, not an
  // approximation, so it must hold for any sample set.
  std::mt19937_64 rng(42);
  std::vector<std::uint64_t> samples;
  LatencyHistogram h;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform spread over ~6 decades, the shape of real latencies.
    const double mag = std::uniform_real_distribution<>(1.0, 7.0)(rng);
    const auto v = static_cast<std::uint64_t>(std::pow(10.0, mag));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  ASSERT_EQ(h.count(), samples.size());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(q * static_cast<double>(samples.size()))));
    EXPECT_EQ(h.percentile_ns(q),
              LatencyHistogram::bucket_upper_bound(samples[rank - 1]))
        << "q=" << q;
  }
  EXPECT_EQ(h.max_ns(), samples.back());
}

TEST(LatencyHistogram, RecordNMatchesRepeatedRecord) {
  LatencyHistogram a, b;
  a.record_n(777, 5);
  for (int i = 0; i < 5; ++i) b.record(777);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.percentile_ns(0.5), b.percentile_ns(0.5));
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  LatencyHistogram left, right, both;
  for (std::uint64_t v = 1; v < 2000; v += 3) {
    (v % 2 ? left : right).record(v);
    both.record(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), both.count());
  EXPECT_EQ(left.max_ns(), both.max_ns());
  for (const double q : {0.25, 0.5, 0.75, 0.99})
    EXPECT_EQ(left.percentile_ns(q), both.percentile_ns(q));
}

TEST(LatencyHistogram, SaturatesInsteadOfOverflowing) {
  LatencyHistogram h;
  h.record(~0ull);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_ns(), ~0ull);
  EXPECT_GT(h.percentile_ns(1.0), 0u);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(100);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
}

TEST(LatencyHistogram, ContractViolations) {
  LatencyHistogram h;
  EXPECT_THROW(h.percentile_ns(0.5), ContractViolation);  // empty
  h.record(1);
  EXPECT_THROW(h.percentile_ns(-0.1), ContractViolation);
  EXPECT_THROW(h.percentile_ns(1.1), ContractViolation);
}

}  // namespace
}  // namespace facsp::serve
