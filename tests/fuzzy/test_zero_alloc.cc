// Steady-state allocation tests for the fuzzy fast path.
//
// A replacement global operator new/delete counts every heap allocation in
// the process; the tests warm a controller up, then assert that further
// evaluations allocate nothing.  This lives in its own binary so the counter
// never observes unrelated suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::size_t> g_alloc_count{0};

}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include "cac/facs_p.h"
#include "cellular/basestation.h"
#include "fuzzy/controller.h"

namespace facsp::fuzzy {
namespace {

std::size_t allocations() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

TEST(ZeroAlloc, CounterObservesHeapAllocations) {
  const std::size_t before = allocations();
  auto* p = new int(7);
  EXPECT_GT(allocations(), before);
  delete p;
}

TEST(ZeroAlloc, SteadyStateInferIntoDoesNotAllocate) {
  const auto flc1 = cac::make_flc1();
  InferenceScratch scratch;
  const double inputs[3] = {60.0, 20.0, 5.0};
  // Warm-up sizes every scratch buffer to its steady state.
  (void)flc1->evaluate_with(scratch, inputs);

  const std::size_t before = allocations();
  double sink = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double in[3] = {i % 120 * 1.0, (i % 360) - 180.0, i % 10 * 1.0};
    sink += flc1->evaluate_with(scratch, in);
  }
  EXPECT_EQ(allocations(), before) << "evaluate_with allocated on a warm "
                                      "scratch (sink=" << sink << ")";
}

TEST(ZeroAlloc, SteadyStateEvaluateDoesNotAllocate) {
  const auto flc2 = cac::make_flc2();
  (void)flc2->evaluate({0.4, 5.0, 17.0});  // warm the thread-local scratch

  const std::size_t before = allocations();
  double sink = 0.0;
  for (int i = 0; i < 1000; ++i)
    sink += flc2->evaluate({i % 10 * 0.1, i % 10 * 1.0, i % 40 * 1.0});
  EXPECT_EQ(allocations(), before) << "evaluate() allocated (sink=" << sink
                                   << ")";
}

TEST(ZeroAlloc, SteadyStateEvaluateBatchDoesNotAllocate) {
  const auto flc1 = cac::make_flc1();
  std::vector<double> inputs(64 * 3);
  std::vector<double> out(64);
  for (std::size_t r = 0; r < 64; ++r) {
    inputs[r * 3 + 0] = static_cast<double>(r % 120);
    inputs[r * 3 + 1] = static_cast<double>(r % 360) - 180.0;
    inputs[r * 3 + 2] = static_cast<double>(r % 10);
  }
  flc1->evaluate_batch(inputs, out);  // warm-up

  const std::size_t before = allocations();
  for (int i = 0; i < 100; ++i) flc1->evaluate_batch(inputs, out);
  EXPECT_EQ(allocations(), before);
}

TEST(ZeroAlloc, SteadyStateSoaBatchScratchDoesNotAllocate) {
  // The explicit-scratch batched path: the structure-of-arrays lane buffers
  // (lane_inputs/lane_grades/lane_activations) must reach steady state on
  // the first batch and never touch the heap again — including for partial
  // tail blocks (rows not a multiple of kLanes).
  const auto flc2 = cac::make_flc2();
  InferenceScratch scratch;
  std::vector<double> inputs(37 * 3);
  std::vector<double> out(37);
  for (std::size_t r = 0; r < out.size(); ++r) {
    inputs[r * 3 + 0] = static_cast<double>(r % 10) * 0.1;
    inputs[r * 3 + 1] = static_cast<double>(r % 10);
    inputs[r * 3 + 2] = static_cast<double>(r % 40);
  }
  flc2->evaluate_batch_with(scratch, inputs, out);  // warm-up

  const std::size_t before = allocations();
  for (int i = 0; i < 100; ++i) flc2->evaluate_batch_with(scratch, inputs, out);
  EXPECT_EQ(allocations(), before) << "SoA batch scratch allocated when warm";
}

TEST(ZeroAlloc, SteadyStateAdmissionDecisionDoesNotAllocate) {
  cac::FacsPPolicy policy;
  cellular::BaseStation bs(0, {0, 0}, {0.0, 0.0}, 40.0);
  cac::AdmissionRequest req;
  req.id = 1;
  req.service = cellular::ServiceClass::kVoice;
  req.bandwidth = 5.0;
  req.speed_kmh = 60.0;
  req.angle_deg = 20.0;
  (void)policy.decide(req, bs);  // warms scratch and the BS counter ledger

  const std::size_t before = allocations();
  for (int i = 0; i < 1000; ++i) {
    req.speed_kmh = static_cast<double>(i % 120);
    req.angle_deg = static_cast<double>(i % 360) - 180.0;
    (void)policy.decide(req, bs);
  }
  EXPECT_EQ(allocations(), before) << "FACS-P decide() allocated";
}

TEST(ZeroAlloc, SteadyStateDecisionBatchDoesNotAllocate) {
  cac::FacsPPolicy policy;
  cellular::BaseStation bs(0, {0, 0}, {0.0, 0.0}, 40.0);
  std::vector<cac::AdmissionRequest> reqs(64);
  std::vector<cac::AdmissionDecision> out(64);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].id = static_cast<cellular::ConnectionId>(i + 1);
    reqs[i].service = cellular::ServiceClass::kVoice;
    reqs[i].bandwidth = 5.0;
    reqs[i].speed_kmh = static_cast<double>(i % 120);
    reqs[i].angle_deg = static_cast<double>(i % 360) - 180.0;
  }
  policy.decide_batch(reqs, bs, out);  // warm-up

  const std::size_t before = allocations();
  for (int i = 0; i < 100; ++i) policy.decide_batch(reqs, bs, out);
  EXPECT_EQ(allocations(), before);
  EXPECT_EQ(out.size(), reqs.size());
}

}  // namespace
}  // namespace facsp::fuzzy
