#include "fuzzy/controller.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "fuzzy/builder.h"

namespace facsp::fuzzy {
namespace {

// A tiny "tip" controller: service quality + food quality -> tip fraction.
std::unique_ptr<FuzzyController> tip_controller() {
  return ControllerBuilder("tip")
      .input(VariableBuilder("service", 0.0, 10.0)
                 .left_shoulder("poor", 0.0, 5.0)
                 .triangular("good", 5.0, 5.0, 5.0)
                 .right_shoulder("excellent", 10.0, 5.0)
                 .build())
      .input(VariableBuilder("food", 0.0, 10.0)
                 .left_shoulder("bad", 0.0, 10.0)
                 .right_shoulder("tasty", 10.0, 10.0)
                 .build())
      .output(VariableBuilder("tip", 0.0, 0.30)
                  .left_shoulder("low", 0.05, 0.10)
                  .triangular("medium", 0.15, 0.10, 0.10)
                  .right_shoulder("high", 0.25, 0.10)
                  .build())
      .rule("IF service is poor THEN tip is low")
      .rule("IF service is good THEN tip is medium")
      .rule("IF service is excellent AND food is tasty THEN tip is high")
      .rule("IF service is excellent AND food is bad THEN tip is medium")
      .build();
}

TEST(Controller, EndToEndEvaluation) {
  const auto flc = tip_controller();
  const double poor = flc->evaluate({0.0, 0.0});
  const double great = flc->evaluate({10.0, 10.0});
  EXPECT_LT(poor, 0.12);
  EXPECT_GT(great, 0.20);
  EXPECT_LT(poor, great);
}

TEST(Controller, MidpointGivesMediumTip) {
  const auto flc = tip_controller();
  EXPECT_NEAR(flc->evaluate({5.0, 5.0}), 0.15, 0.02);
}

TEST(Controller, MonotoneInService) {
  const auto flc = tip_controller();
  double prev = -1.0;
  for (double s = 0.0; s <= 10.0; s += 0.5) {
    const double tip = flc->evaluate({s, 10.0});
    EXPECT_GE(tip, prev - 1e-9) << "service=" << s;
    prev = tip;
  }
}

TEST(Controller, ExplainListsFiredRules) {
  const auto flc = tip_controller();
  const auto ex = flc->explain(std::vector<double>{9.0, 9.0});
  ASSERT_FALSE(ex.fired.empty());
  // Strongest rule first.
  for (std::size_t i = 1; i < ex.fired.size(); ++i)
    EXPECT_GE(ex.fired[i - 1].strength, ex.fired[i].strength);
  EXPECT_EQ(ex.rule_text.size(), ex.fired.size());
  EXPECT_NE(ex.rule_text[0].find("THEN tip is"), std::string::npos);
  EXPECT_DOUBLE_EQ(ex.crisp, flc->evaluate({9.0, 9.0}));
}

TEST(Controller, AccessorsExposeStructure) {
  const auto flc = tip_controller();
  EXPECT_EQ(flc->name(), "tip");
  EXPECT_EQ(flc->input_count(), 2u);
  EXPECT_EQ(flc->input(0).name(), "service");
  EXPECT_EQ(flc->output().name(), "tip");
  EXPECT_EQ(flc->rules().size(), 4u);
  EXPECT_THROW(flc->input(2), ContractViolation);
}

TEST(Controller, BuilderRejectsMissingOutput) {
  ControllerBuilder b("broken");
  b.input(VariableBuilder("x", 0.0, 1.0)
              .left_shoulder("lo", 0.0, 1.0)
              .right_shoulder("hi", 1.0, 1.0)
              .build());
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Controller, BuilderRejectsNoRules) {
  ControllerBuilder b("broken");
  b.input(VariableBuilder("x", 0.0, 1.0)
              .left_shoulder("lo", 0.0, 1.0)
              .right_shoulder("hi", 1.0, 1.0)
              .build());
  b.output(VariableBuilder("z", 0.0, 1.0)
               .left_shoulder("s", 0.0, 1.0)
               .right_shoulder("l", 1.0, 1.0)
               .build());
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(Controller, BuilderRejectsRuleBeforeOutput) {
  ControllerBuilder b("broken");
  b.input(VariableBuilder("x", 0.0, 1.0)
              .left_shoulder("lo", 0.0, 1.0)
              .right_shoulder("hi", 1.0, 1.0)
              .build());
  EXPECT_THROW(b.rule("IF x is lo THEN z is s"), ConfigError);
}

TEST(Controller, BuilderRejectsSecondOutput) {
  ControllerBuilder b("broken");
  auto out = VariableBuilder("z", 0.0, 1.0)
                 .left_shoulder("s", 0.0, 1.0)
                 .right_shoulder("l", 1.0, 1.0)
                 .build();
  b.output(out);
  EXPECT_THROW(b.output(out), ConfigError);
}

TEST(Controller, ExplicitTermNameRules) {
  auto flc = ControllerBuilder("vec")
                 .input(VariableBuilder("x", 0.0, 1.0)
                            .left_shoulder("lo", 0.0, 1.0)
                            .right_shoulder("hi", 1.0, 1.0)
                            .build())
                 .output(VariableBuilder("z", 0.0, 1.0)
                             .left_shoulder("s", 0.0, 1.0)
                             .right_shoulder("l", 1.0, 1.0)
                             .build())
                 .rule({"lo"}, "s")
                 .rule({"hi"}, "l", 0.9)
                 .build();
  EXPECT_LT(flc->evaluate({0.0}), 0.5);
  EXPECT_GT(flc->evaluate({1.0}), 0.5);
}

TEST(Controller, EvaluateIsDeterministic) {
  const auto flc = tip_controller();
  const double a = flc->evaluate({3.7, 6.1});
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(flc->evaluate({3.7, 6.1}), a);
}

TEST(Controller, EvaluateWithExplicitScratchMatchesEvaluate) {
  const auto flc = tip_controller();
  InferenceScratch scratch;
  for (double food = 0.0; food <= 10.0; food += 1.7) {
    for (double service = 0.0; service <= 10.0; service += 2.3) {
      const double in[2] = {food, service};
      EXPECT_DOUBLE_EQ(flc->evaluate_with(scratch, in), flc->evaluate(in));
    }
  }
}

TEST(Controller, EvaluateBatchMatchesScalarEvaluate) {
  const auto flc = tip_controller();
  std::vector<double> inputs;
  std::vector<double> expect;
  for (double food = 0.0; food <= 10.0; food += 1.1) {
    for (double service = 0.0; service <= 10.0; service += 1.3) {
      inputs.push_back(food);
      inputs.push_back(service);
      expect.push_back(flc->evaluate({food, service}));
    }
  }
  std::vector<double> out(expect.size());
  flc->evaluate_batch(inputs, out);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i], expect[i]) << "row " << i;
}

TEST(Controller, EvaluateBatchValidatesShape) {
  const auto flc = tip_controller();
  std::vector<double> inputs(5);  // not a multiple of input_count() rows
  std::vector<double> out(2);
  EXPECT_THROW(flc->evaluate_batch(inputs, out), facsp::ContractViolation);
}

}  // namespace
}  // namespace facsp::fuzzy
