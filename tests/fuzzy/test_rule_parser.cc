#include "fuzzy/rule_parser.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "fuzzy/builder.h"

namespace facsp::fuzzy {
namespace {

struct ParserFixture : ::testing::Test {
  std::vector<LinguisticVariable> inputs;
  LinguisticVariable output = VariableBuilder("z", 0.0, 1.0)
                                  .left_shoulder("small", 0.0, 1.0)
                                  .right_shoulder("large", 1.0, 1.0)
                                  .build();

  ParserFixture() {
    inputs.push_back(VariableBuilder("x", 0.0, 1.0)
                         .left_shoulder("lo", 0.0, 1.0)
                         .right_shoulder("hi", 1.0, 1.0)
                         .build());
    inputs.push_back(VariableBuilder("y", 0.0, 1.0)
                         .left_shoulder("lo", 0.0, 1.0)
                         .right_shoulder("hi", 1.0, 1.0)
                         .build());
  }
};

TEST_F(ParserFixture, ParsesFullConjunction) {
  const auto r = parse_rule("IF x is lo AND y is hi THEN z is large", inputs,
                            output);
  EXPECT_EQ(r.antecedents, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(r.consequent, 1u);
  EXPECT_DOUBLE_EQ(r.weight, 1.0);
}

TEST_F(ParserFixture, OmittedVariableBecomesWildcard) {
  const auto r = parse_rule("IF y is lo THEN z is small", inputs, output);
  EXPECT_EQ(r.antecedents[0], FuzzyRule::kAny);
  EXPECT_EQ(r.antecedents[1], 0u);
}

TEST_F(ParserFixture, ExplicitStarIsWildcard) {
  const auto r =
      parse_rule("IF x is * AND y is hi THEN z is large", inputs, output);
  EXPECT_EQ(r.antecedents[0], FuzzyRule::kAny);
}

TEST_F(ParserFixture, VariablesInAnyOrder) {
  const auto r =
      parse_rule("IF y is hi AND x is lo THEN z is small", inputs, output);
  EXPECT_EQ(r.antecedents, (std::vector<std::size_t>{0, 1}));
}

TEST_F(ParserFixture, ParsesWeight) {
  const auto r =
      parse_rule("IF x is lo THEN z is small [0.75]", inputs, output);
  EXPECT_DOUBLE_EQ(r.weight, 0.75);
}

TEST_F(ParserFixture, KeywordsAreCaseInsensitive) {
  EXPECT_NO_THROW(
      parse_rule("if x IS lo and y is hi then z is large", inputs, output));
}

TEST_F(ParserFixture, TermNamesAreCaseSensitive) {
  EXPECT_THROW(parse_rule("IF x is LO THEN z is small", inputs, output),
               ConfigError);
}

TEST_F(ParserFixture, SyntaxErrors) {
  EXPECT_THROW(parse_rule("x is lo THEN z is small", inputs, output),
               ParseError);
  EXPECT_THROW(parse_rule("IF x is lo", inputs, output), ParseError);
  EXPECT_THROW(parse_rule("IF x is lo THEN z small", inputs, output),
               ParseError);
  EXPECT_THROW(parse_rule("IF x lo THEN z is small", inputs, output),
               ParseError);
  EXPECT_THROW(
      parse_rule("IF x is lo THEN z is small [bad]", inputs, output),
      ParseError);
  EXPECT_THROW(
      parse_rule("IF x is lo THEN z is small trailing", inputs, output),
      ParseError);
}

TEST_F(ParserFixture, SemanticErrors) {
  EXPECT_THROW(parse_rule("IF q is lo THEN z is small", inputs, output),
               ConfigError);
  EXPECT_THROW(parse_rule("IF x is lo THEN q is small", inputs, output),
               ConfigError);
  EXPECT_THROW(parse_rule("IF x is zz THEN z is small", inputs, output),
               ConfigError);
  EXPECT_THROW(
      parse_rule("IF x is lo AND x is hi THEN z is small", inputs, output),
      ParseError);
}

TEST_F(ParserFixture, ParsesMultiLineFileWithComments) {
  const std::string text = R"(
# FRB for the demo controller
IF x is lo AND y is lo THEN z is small

IF x is hi THEN z is large   # shoulder rule
)";
  const auto rules = parse_rules(text, inputs, output);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].consequent, 0u);
  EXPECT_EQ(rules[1].consequent, 1u);
}

TEST_F(ParserFixture, FileErrorsCarryLineNumbers) {
  const std::string text = "IF x is lo THEN z is small\nIF x is THEN z\n";
  try {
    parse_rules(text, inputs, output);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

}  // namespace
}  // namespace facsp::fuzzy
