#include "fuzzy/membership.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/math_util.h"

namespace facsp::fuzzy {
namespace {

// --- triangular (the paper's f) -------------------------------------------

TEST(Triangular, PeakAndEdges) {
  const auto mf = MembershipFunction::triangular(60.0, 60.0, 60.0);
  EXPECT_DOUBLE_EQ(mf.grade(60.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(0.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(120.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(30.0), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(90.0), 0.5);
}

TEST(Triangular, AsymmetricWidths) {
  const auto mf = MembershipFunction::triangular(10.0, 5.0, 20.0);
  EXPECT_DOUBLE_EQ(mf.grade(10.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(7.5), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(20.0), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(5.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(30.0), 0.0);
}

TEST(Triangular, ZeroOutsideSupport) {
  const auto mf = MembershipFunction::triangular(0.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(-100.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(100.0), 0.0);
}

TEST(Triangular, RejectsNonPositiveWidths) {
  EXPECT_THROW(MembershipFunction::triangular(0.0, 0.0, 1.0), ConfigError);
  EXPECT_THROW(MembershipFunction::triangular(0.0, 1.0, -1.0), ConfigError);
}

TEST(Triangular, RejectsNonFiniteCenter) {
  EXPECT_THROW(MembershipFunction::triangular(kInf, 1.0, 1.0), ConfigError);
}

// --- trapezoidal (the paper's g) -------------------------------------------

TEST(Trapezoidal, PlateauAndSlopes) {
  const auto mf = MembershipFunction::trapezoidal(-135.0, -135.0, 45.0, 45.0);
  EXPECT_DOUBLE_EQ(mf.grade(-135.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(-180.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(-90.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(-157.5), 0.5);
}

TEST(Trapezoidal, WidePlateau) {
  const auto mf = MembershipFunction::trapezoidal(2.0, 4.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(mf.grade(2.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(3.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(4.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(1.5), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(5.0), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(1.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(6.0), 0.0);
}

TEST(Trapezoidal, RejectsInvertedPlateau) {
  EXPECT_THROW(MembershipFunction::trapezoidal(4.0, 2.0, 1.0, 1.0),
               ConfigError);
}

// --- shoulders --------------------------------------------------------------

TEST(LeftShoulder, PlateauExtendsToMinusInfinity) {
  const auto mf = MembershipFunction::left_shoulder(0.0, 60.0);
  EXPECT_DOUBLE_EQ(mf.grade(-1e9), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(0.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(30.0), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(60.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(100.0), 0.0);
}

TEST(RightShoulder, PlateauExtendsToPlusInfinity) {
  const auto mf = MembershipFunction::right_shoulder(120.0, 60.0);
  EXPECT_DOUBLE_EQ(mf.grade(1e9), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(120.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(90.0), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(60.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(0.0), 0.0);
}

// --- singleton ---------------------------------------------------------------

TEST(Singleton, OneAtPointZeroElsewhere) {
  const auto mf = MembershipFunction::singleton(5.0);
  EXPECT_DOUBLE_EQ(mf.grade(5.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(5.0001), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(4.9999), 0.0);
  EXPECT_TRUE(mf.is_singleton());
}

// --- general properties -------------------------------------------------------

TEST(Membership, GradeAlwaysInUnitInterval) {
  const auto shapes = {
      MembershipFunction::triangular(0.0, 2.0, 3.0),
      MembershipFunction::trapezoidal(-1.0, 1.0, 0.5, 0.5),
      MembershipFunction::left_shoulder(0.0, 1.0),
      MembershipFunction::right_shoulder(0.0, 1.0),
  };
  for (const auto& mf : shapes) {
    for (double x = -10.0; x <= 10.0; x += 0.37) {
      const double g = mf.grade(x);
      EXPECT_GE(g, 0.0) << mf.describe() << " at " << x;
      EXPECT_LE(g, 1.0) << mf.describe() << " at " << x;
    }
  }
}

TEST(Membership, NanInputGivesZeroGrade) {
  const auto mf = MembershipFunction::triangular(0.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(std::nan("")), 0.0);
}

TEST(Membership, FromBreakpointsValidatesOrdering) {
  EXPECT_NO_THROW(MembershipFunction::from_breakpoints(0.0, 1.0, 2.0, 3.0));
  EXPECT_THROW(MembershipFunction::from_breakpoints(1.0, 0.0, 2.0, 3.0),
               ConfigError);
  EXPECT_THROW(
      MembershipFunction::from_breakpoints(0.0, std::nan(""), 2.0, 3.0),
      ConfigError);
}

TEST(Membership, AlphaCuts) {
  const auto mf = MembershipFunction::triangular(10.0, 10.0, 10.0);
  EXPECT_DOUBLE_EQ(mf.alpha_cut_lo(1.0), 10.0);
  EXPECT_DOUBLE_EQ(mf.alpha_cut_hi(1.0), 10.0);
  EXPECT_DOUBLE_EQ(mf.alpha_cut_lo(0.5), 5.0);
  EXPECT_DOUBLE_EQ(mf.alpha_cut_hi(0.5), 15.0);

  const auto ls = MembershipFunction::left_shoulder(0.0, 10.0);
  EXPECT_EQ(ls.alpha_cut_lo(0.5), -kInf);
  EXPECT_DOUBLE_EQ(ls.alpha_cut_hi(0.5), 5.0);
}

TEST(Membership, AlphaCutRejectsOutOfRange) {
  const auto mf = MembershipFunction::triangular(0.0, 1.0, 1.0);
  EXPECT_THROW(mf.alpha_cut_lo(0.0), ContractViolation);
  EXPECT_THROW(mf.alpha_cut_hi(1.5), ContractViolation);
}

TEST(Membership, CoreCenter) {
  EXPECT_DOUBLE_EQ(
      MembershipFunction::triangular(7.0, 1.0, 1.0).core_center(), 7.0);
  EXPECT_DOUBLE_EQ(
      MembershipFunction::trapezoidal(2.0, 6.0, 1.0, 1.0).core_center(), 4.0);
  EXPECT_DOUBLE_EQ(
      MembershipFunction::left_shoulder(3.0, 1.0).core_center(), 3.0);
  EXPECT_DOUBLE_EQ(
      MembershipFunction::right_shoulder(-2.0, 1.0).core_center(), -2.0);
}

TEST(Membership, DescribeNamesShape) {
  EXPECT_NE(MembershipFunction::triangular(0, 1, 1).describe().find("tri"),
            std::string::npos);
  EXPECT_NE(
      MembershipFunction::trapezoidal(0, 1, 1, 1).describe().find("trap"),
      std::string::npos);
  EXPECT_NE(
      MembershipFunction::left_shoulder(0, 1).describe().find("lshoulder"),
      std::string::npos);
  EXPECT_NE(MembershipFunction::singleton(1).describe().find("singleton"),
            std::string::npos);
}

TEST(Membership, EqualityComparesBreakpoints) {
  EXPECT_EQ(MembershipFunction::triangular(0, 1, 1),
            MembershipFunction::triangular(0, 1, 1));
  EXPECT_NE(MembershipFunction::triangular(0, 1, 1),
            MembershipFunction::triangular(0, 1, 2));
}

}  // namespace
}  // namespace facsp::fuzzy
