#include "fuzzy/variable.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "fuzzy/builder.h"

namespace facsp::fuzzy {
namespace {

LinguisticVariable speed_variable() {
  return VariableBuilder("Sp", 0.0, 120.0)
      .left_shoulder("Sl", 0.0, 60.0)
      .triangular("Mi", 60.0, 60.0, 60.0)
      .right_shoulder("Fa", 120.0, 60.0)
      .build();
}

TEST(Variable, BasicAccessors) {
  const auto v = speed_variable();
  EXPECT_EQ(v.name(), "Sp");
  EXPECT_DOUBLE_EQ(v.universe_lo(), 0.0);
  EXPECT_DOUBLE_EQ(v.universe_hi(), 120.0);
  EXPECT_EQ(v.term_count(), 3u);
  EXPECT_EQ(v.term(0).name, "Sl");
  EXPECT_EQ(v.term(2).name, "Fa");
}

TEST(Variable, TermLookup) {
  const auto v = speed_variable();
  EXPECT_EQ(v.term_index("Mi"), 1u);
  EXPECT_TRUE(v.has_term("Fa"));
  EXPECT_FALSE(v.has_term("Zz"));
  EXPECT_THROW(v.term_index("Zz"), ConfigError);
}

TEST(Variable, FuzzifyReturnsAllGrades) {
  const auto v = speed_variable();
  const auto g = v.fuzzify(30.0);
  ASSERT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g[0], 0.5);  // Sl falling
  EXPECT_DOUBLE_EQ(g[1], 0.5);  // Mi rising
  EXPECT_DOUBLE_EQ(g[2], 0.0);  // Fa not yet
}

TEST(Variable, FuzzifyClampsToUniverse) {
  const auto v = speed_variable();
  // 200 km/h clamps to 120 -> fully Fast.
  const auto g = v.fuzzify(200.0);
  EXPECT_DOUBLE_EQ(g[2], 1.0);
  // Negative clamps to 0 -> fully Slow.
  EXPECT_DOUBLE_EQ(v.fuzzify(-5.0)[0], 1.0);
}

TEST(Variable, SingleTermGrade) {
  const auto v = speed_variable();
  EXPECT_DOUBLE_EQ(v.grade(1, 60.0), 1.0);
  EXPECT_DOUBLE_EQ(v.grade(0, 60.0), 0.0);
}

TEST(Variable, BestTerm) {
  const auto v = speed_variable();
  EXPECT_EQ(v.best_term(5.0), 0u);
  EXPECT_EQ(v.best_term(60.0), 1u);
  EXPECT_EQ(v.best_term(119.0), 2u);
}

TEST(Variable, CoversUniverse) {
  EXPECT_TRUE(speed_variable().covers_universe());
  // A variable with a hole between terms does not cover.
  const auto holey = VariableBuilder("H", 0.0, 10.0)
                         .triangular("a", 1.0, 1.0, 1.0)
                         .triangular("b", 9.0, 1.0, 1.0)
                         .build();
  EXPECT_FALSE(holey.covers_universe());
}

TEST(Variable, UniformPartitionCoversAndIsOrdered) {
  const auto v =
      VariableBuilder("Cv", 0.0, 1.0).uniform_partition("Cv", 9).build();
  EXPECT_EQ(v.term_count(), 9u);
  EXPECT_EQ(v.term(0).name, "Cv1");
  EXPECT_EQ(v.term(8).name, "Cv9");
  EXPECT_TRUE(v.covers_universe(0.45));  // adjacent terms overlap at 0.5
  // Peak of term k sits at k/8.
  EXPECT_DOUBLE_EQ(v.grade(4, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(v.grade(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(v.grade(8, 1.0), 1.0);
}

TEST(Variable, ValidationErrors) {
  EXPECT_THROW(LinguisticVariable("", 0.0, 1.0,
                                  {{"a", MembershipFunction::singleton(0)}}),
               ConfigError);
  EXPECT_THROW(LinguisticVariable("v", 1.0, 0.0,
                                  {{"a", MembershipFunction::singleton(0)}}),
               ConfigError);
  EXPECT_THROW(LinguisticVariable("v", 0.0, 1.0, {}), ConfigError);
  EXPECT_THROW(
      LinguisticVariable("v", 0.0, 1.0,
                         {{"a", MembershipFunction::singleton(0)},
                          {"a", MembershipFunction::singleton(1)}}),
      ConfigError);
  EXPECT_THROW(LinguisticVariable("v", 0.0, 1.0,
                                  {{"", MembershipFunction::singleton(0)}}),
               ConfigError);
}

TEST(Variable, OutOfRangeTermIndexThrows) {
  const auto v = speed_variable();
  EXPECT_THROW(v.term(3), ContractViolation);
  EXPECT_THROW(v.grade(7, 0.0), ContractViolation);
}

}  // namespace
}  // namespace facsp::fuzzy
