// Bit-identity of the structure-of-arrays batched inference path.
//
// The contract under test (inference.h, infer_batch_into): per row, batched
// evaluation returns the *bit-identical* double the scalar path produces —
// whether the lane kernels are the portable flat loops or the hand-written
// SIMD ones (FACSP_SIMD + options.simd + CPU support).  Every comparison
// here is EXPECT_EQ on doubles, not EXPECT_NEAR: the determinism guarantees
// of the sweep/multicell layers (thread-count invariance, golden replay)
// ride on exact equality.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <span>
#include <vector>

#include "cac/facs_flc.h"
#include "fuzzy/builder.h"
#include "fuzzy/controller.h"

namespace facsp::fuzzy {
namespace {

/// Random crisp rows for a controller: mostly in-universe, with deliberate
/// out-of-universe and NaN entries (both must behave exactly like the
/// scalar path: clamped, respectively graded 0 everywhere).
std::vector<double> fuzz_rows(std::mt19937_64& rng, const FuzzyController& c,
                              std::size_t rows) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<double> data(rows * c.input_count());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < c.input_count(); ++i) {
      const auto& v = c.input(i);
      const double span = v.universe_hi() - v.universe_lo();
      double x = v.universe_lo() + span * uni(rng);
      const auto pick = rng() % 12;
      if (pick == 0) x = v.universe_lo() - span * uni(rng);  // below
      if (pick == 1) x = v.universe_hi() + span * uni(rng);  // above
      if (pick == 2) x = std::numeric_limits<double>::quiet_NaN();
      if (pick == 3) x = v.universe_lo();  // exact edges
      if (pick == 4) x = v.universe_hi();
      data[r * c.input_count() + i] = x;
    }
  }
  return data;
}

/// evaluate_batch over sizes 1..max_rows must equal evaluate_with row by
/// row, bitwise (NaN outputs would also have to match, but no input maps to
/// a NaN output — empty sets defuzzify to the universe midpoint).
void expect_batch_bitwise_identical(const FuzzyController& c,
                                    std::uint64_t seed,
                                    std::size_t max_rows = 33) {
  std::mt19937_64 rng(seed);
  InferenceScratch batch_scratch, scalar_scratch;
  for (std::size_t rows = 1; rows <= max_rows; ++rows) {
    const auto data = fuzz_rows(rng, c, rows);
    std::vector<double> out(rows, -999.0);
    c.evaluate_batch_with(batch_scratch, data, out);
    for (std::size_t r = 0; r < rows; ++r) {
      const double scalar = c.evaluate_with(
          scalar_scratch,
          std::span<const double>(data.data() + r * c.input_count(),
                                  c.input_count()));
      EXPECT_EQ(out[r], scalar) << c.name() << " rows=" << rows
                                << " row=" << r;
    }
  }
}

TEST(BatchInference, Flc1MatchesScalarBitwise) {
  const auto flc1 = cac::make_flc1();
  expect_batch_bitwise_identical(*flc1, 101);
}

TEST(BatchInference, Flc2MatchesScalarBitwise) {
  const auto flc2 = cac::make_flc2();
  expect_batch_bitwise_identical(*flc2, 202);
}

TEST(BatchInference, SimdOffTwinIsBitIdenticalToSimdOn) {
  // Two controllers differing only in options.simd must produce the same
  // bits for the same batch.  On a build/CPU without SIMD support both run
  // the generic kernels and the check is trivially true; with it, this is
  // the intrinsics-vs-portable equivalence.
  InferenceOptions on, off;
  on.simd = true;
  off.simd = false;
  const auto flc_on = cac::make_flc1({}, on);
  const auto flc_off = cac::make_flc1({}, off);
  std::mt19937_64 rng(303);
  InferenceScratch s_on, s_off;
  for (std::size_t rows : {1u, 5u, 8u, 16u, 31u}) {
    const auto data = fuzz_rows(rng, *flc_on, rows);
    std::vector<double> out_on(rows), out_off(rows);
    flc_on->evaluate_batch_with(s_on, data, out_on);
    flc_off->evaluate_batch_with(s_off, data, out_off);
    for (std::size_t r = 0; r < rows; ++r)
      EXPECT_EQ(out_on[r], out_off[r]) << "rows=" << rows << " row=" << r;
  }
  EXPECT_FALSE(flc_off->inference_options().simd);
}

TEST(BatchInference, NonDefaultNormsMatchScalarBitwise) {
  // Product t-norm, every s-norm, product implication, rule weights and
  // wildcards — the kernel branches the paper configuration never touches.
  for (auto s_norm : {SNorm::kMaximum, SNorm::kProbabilisticSum,
                      SNorm::kBoundedSum}) {
    InferenceOptions opts;
    opts.t_norm = TNorm::kProduct;
    opts.s_norm = s_norm;
    opts.implication = Implication::kProduct;
    auto c = ControllerBuilder("norms")
                 .input(VariableBuilder("x", 0.0, 10.0)
                            .triangular("lo", 0.0, 5.0, 5.0)
                            .triangular("mid", 5.0, 5.0, 5.0)
                            .right_shoulder("hi", 10.0, 5.0)
                            .build())
                 .input(VariableBuilder("y", -1.0, 1.0)
                            .left_shoulder("neg", -0.5, 0.5)
                            .triangular("zero", 0.0, 0.5, 0.5)
                            .right_shoulder("pos", 0.5, 0.5)
                            .build())
                 .output(VariableBuilder("z", 0.0, 1.0)
                             .uniform_partition("Z", 5)
                             .build())
                 .rule({"lo", "neg"}, "Z1", 0.7)
                 .rule({"lo", "zero"}, "Z2")
                 .rule({"lo", "pos"}, "Z3", 0.4)
                 .rule({"mid", "*"}, "Z3")
                 .rule({"hi", "neg"}, "Z2", 1.0)
                 .rule({"hi", "zero"}, "Z4", 0.9)
                 .rule({"hi", "pos"}, "Z5")
                 .rule({"*", "pos"}, "Z4", 0.2)
                 .build();
    expect_batch_bitwise_identical(*c, 404 + static_cast<int>(s_norm), 17);
  }
}

TEST(BatchInference, DegenerateTermsTakeTheScalarFallbackBitwise) {
  // Singleton and zero-width-edge terms are flagged fast=false and graded
  // per lane through MembershipFunction::grade() itself — identical bits by
  // construction, but the routing must actually happen (a branchless kernel
  // would divide by zero and yield NaN grades).
  auto c = ControllerBuilder("degenerate")
               .input(VariableBuilder("x", 0.0, 1.0)
                          .term("spike", MembershipFunction::singleton(0.5))
                          .term("step", MembershipFunction::from_breakpoints(
                                            0.5, 0.5, 1.0, 1.0))
                          .triangular("tri", 0.5, 0.5, 0.5)
                          .build())
               .output(VariableBuilder("z", 0.0, 1.0)
                           .uniform_partition("Z", 3)
                           .build())
               .rule({"spike"}, "Z3")
               .rule({"step"}, "Z2")
               .rule({"tri"}, "Z1")
               .build();
  // Hit the singleton exactly (grade 1 only at x == 0.5) and around it.
  InferenceScratch batch_scratch, scalar_scratch;
  const std::vector<double> data = {0.5, 0.25, 0.75, 0.4999999, 1.0,
                                    0.0, std::numeric_limits<double>::quiet_NaN(),
                                    0.5000001, 0.5};
  std::vector<double> out(data.size());
  c->evaluate_batch_with(batch_scratch, data, out);
  for (std::size_t r = 0; r < data.size(); ++r) {
    EXPECT_EQ(out[r], c->evaluate_with(
                          scalar_scratch,
                          std::span<const double>(data.data() + r, 1)))
        << "row=" << r;
  }
}

TEST(BatchInference, EmptyBatchIsANoOp) {
  const auto flc2 = cac::make_flc2();
  InferenceScratch scratch;
  flc2->evaluate_batch_with(scratch, {}, {});  // must not assert or touch out
}

}  // namespace
}  // namespace facsp::fuzzy
