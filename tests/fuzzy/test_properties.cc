// Property-style parameterized suites over the fuzzy engine's invariants,
// exercised on the paper's own controllers (FLC1, FLC1-D, FLC2).
#include <gtest/gtest.h>

#include <cmath>

#include "cac/facs_flc.h"
#include "fuzzy/controller.h"
#include "sim/rng.h"

namespace facsp::fuzzy {
namespace {

using cac::make_flc1;
using cac::make_flc1_distance;
using cac::make_flc2;

enum class Which { kFlc1, kFlc1D, kFlc2 };

struct ControllerCase {
  Which which;
  const char* label;
};

std::unique_ptr<FuzzyController> make(Which w) {
  switch (w) {
    case Which::kFlc1: return make_flc1();
    case Which::kFlc1D: {
      cac::Flc1DistanceParams p;
      p.cell_radius_m = 1000.0;
      return make_flc1_distance(p);
    }
    case Which::kFlc2: return make_flc2();
  }
  return make_flc1();
}

class PaperControllerProperty
    : public ::testing::TestWithParam<ControllerCase> {};

TEST_P(PaperControllerProperty, OutputStaysInsideUniverse) {
  const auto flc = make(GetParam().which);
  sim::RandomStream rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<double> in;
    for (std::size_t i = 0; i < flc->input_count(); ++i) {
      const auto& v = flc->input(i);
      // Sample slightly beyond the universe: clamping must keep the result
      // valid anyway.
      in.push_back(rng.uniform(v.universe_lo() - 1.0, v.universe_hi() + 1.0));
    }
    const double y = flc->evaluate(in);
    EXPECT_GE(y, flc->output().universe_lo()) << GetParam().label;
    EXPECT_LE(y, flc->output().universe_hi()) << GetParam().label;
    EXPECT_TRUE(std::isfinite(y));
  }
}

TEST_P(PaperControllerProperty, RuleBaseCompleteAndConflictFree) {
  const auto flc = make(GetParam().which);
  EXPECT_TRUE(flc->rules().is_complete()) << GetParam().label;
  EXPECT_TRUE(flc->rules().conflicts().empty()) << GetParam().label;
}

TEST_P(PaperControllerProperty, EveryInputVariableCoversItsUniverse) {
  const auto flc = make(GetParam().which);
  for (std::size_t i = 0; i < flc->input_count(); ++i)
    EXPECT_TRUE(flc->input(i).covers_universe(1e-6))
        << GetParam().label << " input " << flc->input(i).name();
  EXPECT_TRUE(flc->output().covers_universe(1e-6));
}

TEST_P(PaperControllerProperty, SomeRuleAlwaysFires) {
  const auto flc = make(GetParam().which);
  sim::RandomStream rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> in;
    for (std::size_t i = 0; i < flc->input_count(); ++i) {
      const auto& v = flc->input(i);
      in.push_back(rng.uniform(v.universe_lo(), v.universe_hi()));
    }
    const auto ex = flc->explain(in);
    EXPECT_FALSE(ex.fired.empty()) << GetParam().label;
    EXPECT_GT(ex.aggregated.height(), 0.0) << GetParam().label;
  }
}

TEST_P(PaperControllerProperty, ContinuityUnderSmallPerturbation) {
  // Centroid defuzzification of piecewise-linear sets is Lipschitz; tiny
  // input changes must not jump the output.
  const auto flc = make(GetParam().which);
  sim::RandomStream rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> in;
    for (std::size_t i = 0; i < flc->input_count(); ++i) {
      const auto& v = flc->input(i);
      in.push_back(rng.uniform(v.universe_lo(), v.universe_hi()));
    }
    const double y0 = flc->evaluate(in);
    auto nudged = in;
    for (std::size_t i = 0; i < nudged.size(); ++i) {
      const auto& v = flc->input(i);
      nudged[i] += 1e-5 * (v.universe_hi() - v.universe_lo());
    }
    const double y1 = flc->evaluate(nudged);
    EXPECT_NEAR(y0, y1, 2e-2) << GetParam().label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperControllers, PaperControllerProperty,
    ::testing::Values(ControllerCase{Which::kFlc1, "FLC1"},
                      ControllerCase{Which::kFlc1D, "FLC1-D"},
                      ControllerCase{Which::kFlc2, "FLC2"}),
    [](const ::testing::TestParamInfo<ControllerCase>& info) {
      return std::string(info.param.label) == "FLC1-D"
                 ? "FLC1D"
                 : std::string(info.param.label);
    });

// --- FLC2-specific monotonicity properties ---------------------------------

class Flc2Monotonicity : public ::testing::TestWithParam<double> {};

TEST_P(Flc2Monotonicity, ScoreNonIncreasingInCounterState) {
  // At any fixed (Cv, Rq), more occupied bandwidth must never make the
  // admission score larger (the paper's FLC2 is monotone: fuller -> reject).
  const auto flc2 = make_flc2();
  const double cv = GetParam();
  for (double rq : {1.0, 5.0, 10.0}) {
    double prev = 2.0;
    for (double cs = 0.0; cs <= 40.0; cs += 1.0) {
      const double score = flc2->evaluate({cv, rq, cs});
      EXPECT_LE(score, prev + 5e-2)
          << "cv=" << cv << " rq=" << rq << " cs=" << cs;
      prev = score;
    }
  }
}

TEST_P(Flc2Monotonicity, BetterCorrectionNeverHurtsBelowFull) {
  // At fixed (Rq, Cs), a higher correction value (better mobility outlook)
  // must not lower the admission score — as long as the cell is not in the
  // "Full" region.  (Table 2 deliberately breaks this at Fu: a Good-Cv
  // video gets a hard Reject while a Normal-Cv one only gets NRNA, because
  // a well-predicted video will actually stay and occupy the full cell.)
  const auto flc2 = make_flc2();
  const double cs = GetParam() * 20.0;  // Sa..Md region only
  for (double rq : {1.0, 5.0, 10.0}) {
    double prev = -2.0;
    for (double cv = 0.0; cv <= 1.0; cv += 0.05) {
      const double score = flc2->evaluate({cv, rq, cs});
      EXPECT_GE(score, prev - 5e-2)
          << "cs=" << cs << " rq=" << rq << " cv=" << cv;
      prev = score;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CvGrid, Flc2Monotonicity,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace facsp::fuzzy
