#include "fuzzy/defuzzifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "common/error.h"
#include "fuzzy/builder.h"

namespace facsp::fuzzy {
namespace {

struct DefuzzFixture : ::testing::Test {
  // Symmetric three-term output over [-1, 1].
  LinguisticVariable output = VariableBuilder("z", -1.0, 1.0)
                                  .triangular("neg", -0.5, 0.5, 0.5)
                                  .triangular("zero", 0.0, 0.5, 0.5)
                                  .triangular("pos", 0.5, 0.5, 0.5)
                                  .build();

  OutputFuzzySet activate(std::vector<double> acts) {
    OutputFuzzySet s;
    s.activations = std::move(acts);
    return s;
  }
};

TEST_F(DefuzzFixture, CentroidOfSingleSymmetricTerm) {
  const Defuzzifier d(DefuzzMethod::kCentroid, 2048);
  EXPECT_NEAR(d.defuzzify(activate({1.0, 0.0, 0.0}), output), -0.5, 1e-3);
  EXPECT_NEAR(d.defuzzify(activate({0.0, 1.0, 0.0}), output), 0.0, 1e-3);
  EXPECT_NEAR(d.defuzzify(activate({0.0, 0.0, 1.0}), output), 0.5, 1e-3);
}

TEST_F(DefuzzFixture, CentroidOfBalancedMixIsZero) {
  const Defuzzifier d(DefuzzMethod::kCentroid, 2048);
  EXPECT_NEAR(d.defuzzify(activate({0.7, 0.0, 0.7}), output), 0.0, 1e-3);
}

TEST_F(DefuzzFixture, CentroidShiftsTowardStrongerTerm) {
  const Defuzzifier d(DefuzzMethod::kCentroid, 2048);
  const double toward_pos = d.defuzzify(activate({0.2, 0.0, 0.8}), output);
  EXPECT_GT(toward_pos, 0.15);
  EXPECT_LT(toward_pos, 0.5);
}

TEST_F(DefuzzFixture, EmptySetGivesUniverseMidpoint) {
  const Defuzzifier d;
  EXPECT_DOUBLE_EQ(d.defuzzify(activate({0.0, 0.0, 0.0}), output), 0.0);
}

TEST_F(DefuzzFixture, BisectorMatchesCentroidOnSymmetricSets) {
  const Defuzzifier c(DefuzzMethod::kCentroid, 4096);
  const Defuzzifier b(DefuzzMethod::kBisector, 4096);
  const auto set = activate({0.0, 1.0, 0.0});
  EXPECT_NEAR(b.defuzzify(set, output), c.defuzzify(set, output), 5e-3);
}

TEST_F(DefuzzFixture, MeanOfMaximumPicksPlateauCenter) {
  const Defuzzifier mom(DefuzzMethod::kMeanOfMaximum, 4096);
  // Clipping 'pos' at 0.6 gives a plateau centred at its peak 0.5.
  EXPECT_NEAR(mom.defuzzify(activate({0.0, 0.0, 0.6}), output), 0.5, 5e-3);
}

TEST_F(DefuzzFixture, SmallestAndLargestOfMaximumBracketMean) {
  const auto set = activate({0.0, 0.0, 0.6});
  const Defuzzifier som(DefuzzMethod::kSmallestOfMaximum, 4096);
  const Defuzzifier lom(DefuzzMethod::kLargestOfMaximum, 4096);
  const Defuzzifier mom(DefuzzMethod::kMeanOfMaximum, 4096);
  const double lo = som.defuzzify(set, output);
  const double hi = lom.defuzzify(set, output);
  const double mid = mom.defuzzify(set, output);
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
  // Plateau of 'pos' clipped at 0.6: from 0.5-0.2 to 0.5+0.2.
  EXPECT_NEAR(lo, 0.3, 5e-3);
  EXPECT_NEAR(hi, 0.7, 5e-3);
}

TEST_F(DefuzzFixture, WeightedAverageUsesCoreCenters) {
  const Defuzzifier w(DefuzzMethod::kWeightedAverage);
  EXPECT_NEAR(w.defuzzify(activate({0.0, 0.25, 0.75}), output),
              (0.25 * 0.0 + 0.75 * 0.5) / 1.0, 1e-9);
}

TEST_F(DefuzzFixture, ResultAlwaysInsideUniverse) {
  for (auto method :
       {DefuzzMethod::kCentroid, DefuzzMethod::kBisector,
        DefuzzMethod::kMeanOfMaximum, DefuzzMethod::kSmallestOfMaximum,
        DefuzzMethod::kLargestOfMaximum, DefuzzMethod::kWeightedAverage}) {
    const Defuzzifier d(method, 512);
    for (double a = 0.0; a <= 1.0; a += 0.25) {
      for (double b = 0.0; b <= 1.0; b += 0.25) {
        const double y = d.defuzzify(activate({a, 0.1, b}), output);
        EXPECT_GE(y, output.universe_lo()) << to_string(method);
        EXPECT_LE(y, output.universe_hi()) << to_string(method);
      }
    }
  }
}

TEST_F(DefuzzFixture, ResolutionValidation) {
  EXPECT_THROW(Defuzzifier(DefuzzMethod::kCentroid, 4), ConfigError);
  EXPECT_NO_THROW(Defuzzifier(DefuzzMethod::kCentroid, 8));
}

// --- golden parity: table-driven fast path vs naive reference --------------
//
// The reference below is written independently of defuzzifier.cc: it samples
// the aggregated membership straight from the term membership functions.
// The primed (grid) path must agree to 1e-12 for every method, resolution,
// s-norm and implication combination.

double reference_grade(const LinguisticVariable& output,
                       std::span<const double> acts, Implication impl,
                       SNorm agg, double y) {
  double acc = 0.0;
  for (std::size_t k = 0; k < acts.size(); ++k) {
    if (acts[k] <= 0.0) continue;
    const double clipped =
        apply_implication(impl, acts[k], output.term(k).mf.grade(y));
    acc = apply_snorm(agg, acc, clipped);
  }
  return acc;
}

double reference_defuzzify(DefuzzMethod method, int res, SNorm agg,
                           const LinguisticVariable& output,
                           std::span<const double> acts, Implication impl) {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (res - 1);
  auto grade = [&](int i) {
    return reference_grade(output, acts, impl, agg, lo + i * dy);
  };
  switch (method) {
    case DefuzzMethod::kCentroid: {
      double num = 0.0, den = 0.0;
      for (int i = 0; i < res; ++i) {
        const double w = (i == 0 || i == res - 1) ? 0.5 : 1.0;
        num += grade(i) * w * (lo + i * dy);
        den += grade(i) * w;
      }
      return den <= 0.0 ? 0.5 * (lo + hi) : num / den;
    }
    case DefuzzMethod::kBisector: {
      double total = 0.0;
      for (int i = 0; i < res; ++i) total += grade(i);
      if (total <= 0.0) return 0.5 * (lo + hi);
      double acc = 0.0;
      for (int i = 0; i < res; ++i) {
        acc += grade(i);
        if (acc >= 0.5 * total) return lo + i * dy;
      }
      return hi;
    }
    default: {
      double max_mu = 0.0;
      for (int i = 0; i < res; ++i) max_mu = std::max(max_mu, grade(i));
      if (max_mu <= 0.0) return 0.5 * (lo + hi);
      double first = hi, last = lo, sum = 0.0;
      int count = 0;
      for (int i = 0; i < res; ++i) {
        if (grade(i) >= max_mu - 1e-9) {
          const double y = lo + i * dy;
          first = std::min(first, y);
          last = std::max(last, y);
          sum += y;
          ++count;
        }
      }
      if (method == DefuzzMethod::kSmallestOfMaximum) return first;
      if (method == DefuzzMethod::kLargestOfMaximum) return last;
      return sum / count;
    }
  }
}

class DefuzzGoldenParity : public ::testing::Test {
 protected:
  // Five terms with shoulders at the edges — the shape of the paper's A/R
  // output (Fig. 6).
  LinguisticVariable output = VariableBuilder("ar", -1.0, 1.0)
                                  .left_shoulder("R", -0.6, 0.3)
                                  .triangular("WR", -0.3, 0.3, 0.3)
                                  .triangular("NRNA", 0.0, 0.3, 0.3)
                                  .triangular("WA", 0.3, 0.3, 0.3)
                                  .right_shoulder("A", 0.6, 0.3)
                                  .build();

  static constexpr DefuzzMethod kMethods[] = {
      DefuzzMethod::kCentroid, DefuzzMethod::kBisector,
      DefuzzMethod::kMeanOfMaximum, DefuzzMethod::kSmallestOfMaximum,
      DefuzzMethod::kLargestOfMaximum};
  static constexpr SNorm kSNorms[] = {SNorm::kMaximum,
                                      SNorm::kProbabilisticSum,
                                      SNorm::kBoundedSum};
  static constexpr Implication kImplications[] = {Implication::kMinimum,
                                                  Implication::kProduct};
  static constexpr int kResolutions[] = {8, 101, 1001};

  std::vector<std::vector<double>> activation_sets = {
      {1.0, 0.0, 0.0, 0.0, 0.0},    {0.0, 0.0, 1.0, 0.0, 0.0},
      {0.3, 0.7, 0.0, 0.2, 0.0},    {0.05, 0.0, 0.0, 0.0, 0.9},
      {0.5, 0.5, 0.5, 0.5, 0.5},    {0.0, 1e-9, 0.0, 0.0, 0.0},
      {0.25, 0.75, 0.6, 0.1, 0.95},
  };
};

TEST_F(DefuzzGoldenParity, GridPathMatchesNaiveReference) {
  std::vector<double> mu_scratch;
  for (auto method : kMethods) {
    for (int res : kResolutions) {
      for (auto agg : kSNorms) {
        for (auto impl : kImplications) {
          Defuzzifier fast(method, res, agg);
          fast.prime(output);
          ASSERT_TRUE(fast.primed_for(output));
          for (const auto& acts : activation_sets) {
            const double expect =
                reference_defuzzify(method, res, agg, output, acts, impl);
            const double got = fast.defuzzify(acts, impl, output, mu_scratch);
            EXPECT_NEAR(got, expect, 1e-12)
                << to_string(method) << " res=" << res
                << " snorm=" << static_cast<int>(agg)
                << " impl=" << static_cast<int>(impl);
          }
        }
      }
    }
  }
}

TEST_F(DefuzzGoldenParity, UnprimedFallbackMatchesNaiveReference) {
  std::vector<double> mu_scratch;
  for (auto method : kMethods) {
    for (auto agg : kSNorms) {
      for (auto impl : kImplications) {
        const Defuzzifier naive(method, 101, agg);  // never primed
        ASSERT_FALSE(naive.primed_for(output));
        for (const auto& acts : activation_sets) {
          const double expect =
              reference_defuzzify(method, 101, agg, output, acts, impl);
          EXPECT_NEAR(naive.defuzzify(acts, impl, output, mu_scratch), expect,
                      1e-12)
              << to_string(method);
        }
      }
    }
  }
}

TEST_F(DefuzzGoldenParity, LegacySetOverloadTakesTheSamePath) {
  for (auto method : kMethods) {
    Defuzzifier fast(method, 101);
    fast.prime(output);
    const Defuzzifier naive(method, 101);
    for (const auto& acts : activation_sets) {
      OutputFuzzySet set;
      set.activations = acts;
      EXPECT_NEAR(fast.defuzzify(set, output), naive.defuzzify(set, output),
                  1e-12)
          << to_string(method);
    }
  }
}

TEST_F(DefuzzGoldenParity, PrimeIsKeyedByVariableIdentity) {
  Defuzzifier d(DefuzzMethod::kCentroid, 101);
  d.prime(output);
  const LinguisticVariable other = VariableBuilder("z", -1.0, 1.0)
                                       .triangular("neg", -0.5, 0.5, 0.5)
                                       .triangular("zero", 0.0, 0.5, 0.5)
                                       .triangular("pos", 0.5, 0.5, 0.5)
                                       .build();
  EXPECT_TRUE(d.primed_for(output));
  EXPECT_FALSE(d.primed_for(other));
  // A foreign variable silently takes the naive path and still agrees with
  // the reference.
  std::vector<double> mu;
  const std::vector<double> acts = {0.2, 0.0, 0.8};
  EXPECT_NEAR(d.defuzzify(acts, Implication::kMinimum, other, mu),
              reference_defuzzify(DefuzzMethod::kCentroid, 101,
                                  SNorm::kMaximum, other, acts,
                                  Implication::kMinimum),
              1e-12);
}

TEST(DefuzzMethodNames, RoundTrip) {
  for (auto m :
       {DefuzzMethod::kCentroid, DefuzzMethod::kBisector,
        DefuzzMethod::kMeanOfMaximum, DefuzzMethod::kSmallestOfMaximum,
        DefuzzMethod::kLargestOfMaximum, DefuzzMethod::kWeightedAverage}) {
    EXPECT_EQ(defuzz_method_from_string(to_string(m)), m);
  }
  EXPECT_THROW(defuzz_method_from_string("nonsense"), facsp::ConfigError);
}

}  // namespace
}  // namespace facsp::fuzzy
