#include "fuzzy/defuzzifier.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "fuzzy/builder.h"

namespace facsp::fuzzy {
namespace {

struct DefuzzFixture : ::testing::Test {
  // Symmetric three-term output over [-1, 1].
  LinguisticVariable output = VariableBuilder("z", -1.0, 1.0)
                                  .triangular("neg", -0.5, 0.5, 0.5)
                                  .triangular("zero", 0.0, 0.5, 0.5)
                                  .triangular("pos", 0.5, 0.5, 0.5)
                                  .build();

  OutputFuzzySet activate(std::vector<double> acts) {
    OutputFuzzySet s;
    s.activations = std::move(acts);
    return s;
  }
};

TEST_F(DefuzzFixture, CentroidOfSingleSymmetricTerm) {
  const Defuzzifier d(DefuzzMethod::kCentroid, 2048);
  EXPECT_NEAR(d.defuzzify(activate({1.0, 0.0, 0.0}), output), -0.5, 1e-3);
  EXPECT_NEAR(d.defuzzify(activate({0.0, 1.0, 0.0}), output), 0.0, 1e-3);
  EXPECT_NEAR(d.defuzzify(activate({0.0, 0.0, 1.0}), output), 0.5, 1e-3);
}

TEST_F(DefuzzFixture, CentroidOfBalancedMixIsZero) {
  const Defuzzifier d(DefuzzMethod::kCentroid, 2048);
  EXPECT_NEAR(d.defuzzify(activate({0.7, 0.0, 0.7}), output), 0.0, 1e-3);
}

TEST_F(DefuzzFixture, CentroidShiftsTowardStrongerTerm) {
  const Defuzzifier d(DefuzzMethod::kCentroid, 2048);
  const double toward_pos = d.defuzzify(activate({0.2, 0.0, 0.8}), output);
  EXPECT_GT(toward_pos, 0.15);
  EXPECT_LT(toward_pos, 0.5);
}

TEST_F(DefuzzFixture, EmptySetGivesUniverseMidpoint) {
  const Defuzzifier d;
  EXPECT_DOUBLE_EQ(d.defuzzify(activate({0.0, 0.0, 0.0}), output), 0.0);
}

TEST_F(DefuzzFixture, BisectorMatchesCentroidOnSymmetricSets) {
  const Defuzzifier c(DefuzzMethod::kCentroid, 4096);
  const Defuzzifier b(DefuzzMethod::kBisector, 4096);
  const auto set = activate({0.0, 1.0, 0.0});
  EXPECT_NEAR(b.defuzzify(set, output), c.defuzzify(set, output), 5e-3);
}

TEST_F(DefuzzFixture, MeanOfMaximumPicksPlateauCenter) {
  const Defuzzifier mom(DefuzzMethod::kMeanOfMaximum, 4096);
  // Clipping 'pos' at 0.6 gives a plateau centred at its peak 0.5.
  EXPECT_NEAR(mom.defuzzify(activate({0.0, 0.0, 0.6}), output), 0.5, 5e-3);
}

TEST_F(DefuzzFixture, SmallestAndLargestOfMaximumBracketMean) {
  const auto set = activate({0.0, 0.0, 0.6});
  const Defuzzifier som(DefuzzMethod::kSmallestOfMaximum, 4096);
  const Defuzzifier lom(DefuzzMethod::kLargestOfMaximum, 4096);
  const Defuzzifier mom(DefuzzMethod::kMeanOfMaximum, 4096);
  const double lo = som.defuzzify(set, output);
  const double hi = lom.defuzzify(set, output);
  const double mid = mom.defuzzify(set, output);
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
  // Plateau of 'pos' clipped at 0.6: from 0.5-0.2 to 0.5+0.2.
  EXPECT_NEAR(lo, 0.3, 5e-3);
  EXPECT_NEAR(hi, 0.7, 5e-3);
}

TEST_F(DefuzzFixture, WeightedAverageUsesCoreCenters) {
  const Defuzzifier w(DefuzzMethod::kWeightedAverage);
  EXPECT_NEAR(w.defuzzify(activate({0.0, 0.25, 0.75}), output),
              (0.25 * 0.0 + 0.75 * 0.5) / 1.0, 1e-9);
}

TEST_F(DefuzzFixture, ResultAlwaysInsideUniverse) {
  for (auto method :
       {DefuzzMethod::kCentroid, DefuzzMethod::kBisector,
        DefuzzMethod::kMeanOfMaximum, DefuzzMethod::kSmallestOfMaximum,
        DefuzzMethod::kLargestOfMaximum, DefuzzMethod::kWeightedAverage}) {
    const Defuzzifier d(method, 512);
    for (double a = 0.0; a <= 1.0; a += 0.25) {
      for (double b = 0.0; b <= 1.0; b += 0.25) {
        const double y = d.defuzzify(activate({a, 0.1, b}), output);
        EXPECT_GE(y, output.universe_lo()) << to_string(method);
        EXPECT_LE(y, output.universe_hi()) << to_string(method);
      }
    }
  }
}

TEST_F(DefuzzFixture, ResolutionValidation) {
  EXPECT_THROW(Defuzzifier(DefuzzMethod::kCentroid, 4), ConfigError);
  EXPECT_NO_THROW(Defuzzifier(DefuzzMethod::kCentroid, 8));
}

TEST(DefuzzMethodNames, RoundTrip) {
  for (auto m :
       {DefuzzMethod::kCentroid, DefuzzMethod::kBisector,
        DefuzzMethod::kMeanOfMaximum, DefuzzMethod::kSmallestOfMaximum,
        DefuzzMethod::kLargestOfMaximum, DefuzzMethod::kWeightedAverage}) {
    EXPECT_EQ(defuzz_method_from_string(to_string(m)), m);
  }
  EXPECT_THROW(defuzz_method_from_string("nonsense"), facsp::ConfigError);
}

}  // namespace
}  // namespace facsp::fuzzy
