#include "fuzzy/defuzzifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/math_util.h"
#include "fuzzy/builder.h"

namespace facsp::fuzzy {
namespace {

struct DefuzzFixture : ::testing::Test {
  // Symmetric three-term output over [-1, 1].
  LinguisticVariable output = VariableBuilder("z", -1.0, 1.0)
                                  .triangular("neg", -0.5, 0.5, 0.5)
                                  .triangular("zero", 0.0, 0.5, 0.5)
                                  .triangular("pos", 0.5, 0.5, 0.5)
                                  .build();

  OutputFuzzySet activate(std::vector<double> acts) {
    OutputFuzzySet s;
    s.activations = std::move(acts);
    return s;
  }
};

TEST_F(DefuzzFixture, CentroidOfSingleSymmetricTerm) {
  const Defuzzifier d(DefuzzMethod::kCentroid, 2048);
  EXPECT_NEAR(d.defuzzify(activate({1.0, 0.0, 0.0}), output), -0.5, 1e-3);
  EXPECT_NEAR(d.defuzzify(activate({0.0, 1.0, 0.0}), output), 0.0, 1e-3);
  EXPECT_NEAR(d.defuzzify(activate({0.0, 0.0, 1.0}), output), 0.5, 1e-3);
}

TEST_F(DefuzzFixture, CentroidOfBalancedMixIsZero) {
  const Defuzzifier d(DefuzzMethod::kCentroid, 2048);
  EXPECT_NEAR(d.defuzzify(activate({0.7, 0.0, 0.7}), output), 0.0, 1e-3);
}

TEST_F(DefuzzFixture, CentroidShiftsTowardStrongerTerm) {
  const Defuzzifier d(DefuzzMethod::kCentroid, 2048);
  const double toward_pos = d.defuzzify(activate({0.2, 0.0, 0.8}), output);
  EXPECT_GT(toward_pos, 0.15);
  EXPECT_LT(toward_pos, 0.5);
}

TEST_F(DefuzzFixture, EmptySetGivesUniverseMidpoint) {
  const Defuzzifier d;
  EXPECT_DOUBLE_EQ(d.defuzzify(activate({0.0, 0.0, 0.0}), output), 0.0);
}

TEST_F(DefuzzFixture, BisectorMatchesCentroidOnSymmetricSets) {
  const Defuzzifier c(DefuzzMethod::kCentroid, 4096);
  const Defuzzifier b(DefuzzMethod::kBisector, 4096);
  const auto set = activate({0.0, 1.0, 0.0});
  EXPECT_NEAR(b.defuzzify(set, output), c.defuzzify(set, output), 5e-3);
}

TEST_F(DefuzzFixture, MeanOfMaximumPicksPlateauCenter) {
  const Defuzzifier mom(DefuzzMethod::kMeanOfMaximum, 4096);
  // Clipping 'pos' at 0.6 gives a plateau centred at its peak 0.5.
  EXPECT_NEAR(mom.defuzzify(activate({0.0, 0.0, 0.6}), output), 0.5, 5e-3);
}

TEST_F(DefuzzFixture, SmallestAndLargestOfMaximumBracketMean) {
  const auto set = activate({0.0, 0.0, 0.6});
  const Defuzzifier som(DefuzzMethod::kSmallestOfMaximum, 4096);
  const Defuzzifier lom(DefuzzMethod::kLargestOfMaximum, 4096);
  const Defuzzifier mom(DefuzzMethod::kMeanOfMaximum, 4096);
  const double lo = som.defuzzify(set, output);
  const double hi = lom.defuzzify(set, output);
  const double mid = mom.defuzzify(set, output);
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
  // Plateau of 'pos' clipped at 0.6: from 0.5-0.2 to 0.5+0.2.
  EXPECT_NEAR(lo, 0.3, 5e-3);
  EXPECT_NEAR(hi, 0.7, 5e-3);
}

TEST_F(DefuzzFixture, WeightedAverageUsesCoreCenters) {
  const Defuzzifier w(DefuzzMethod::kWeightedAverage);
  EXPECT_NEAR(w.defuzzify(activate({0.0, 0.25, 0.75}), output),
              (0.25 * 0.0 + 0.75 * 0.5) / 1.0, 1e-9);
}

TEST_F(DefuzzFixture, ResultAlwaysInsideUniverse) {
  for (auto method :
       {DefuzzMethod::kCentroid, DefuzzMethod::kBisector,
        DefuzzMethod::kMeanOfMaximum, DefuzzMethod::kSmallestOfMaximum,
        DefuzzMethod::kLargestOfMaximum, DefuzzMethod::kWeightedAverage}) {
    const Defuzzifier d(method, 512);
    for (double a = 0.0; a <= 1.0; a += 0.25) {
      for (double b = 0.0; b <= 1.0; b += 0.25) {
        const double y = d.defuzzify(activate({a, 0.1, b}), output);
        EXPECT_GE(y, output.universe_lo()) << to_string(method);
        EXPECT_LE(y, output.universe_hi()) << to_string(method);
      }
    }
  }
}

TEST_F(DefuzzFixture, ResolutionValidation) {
  EXPECT_THROW(Defuzzifier(DefuzzMethod::kCentroid, 4), ConfigError);
  EXPECT_NO_THROW(Defuzzifier(DefuzzMethod::kCentroid, 8));
}

// --- golden parity: table-driven fast path vs naive reference --------------
//
// The reference below is written independently of defuzzifier.cc: it samples
// the aggregated membership straight from the term membership functions.
// The primed (grid) path must agree to 1e-12 for every method, resolution,
// s-norm and implication combination.

double reference_grade(const LinguisticVariable& output,
                       std::span<const double> acts, Implication impl,
                       SNorm agg, double y) {
  double acc = 0.0;
  for (std::size_t k = 0; k < acts.size(); ++k) {
    if (acts[k] <= 0.0) continue;
    const double clipped =
        apply_implication(impl, acts[k], output.term(k).mf.grade(y));
    acc = apply_snorm(agg, acc, clipped);
  }
  return acc;
}

double reference_defuzzify(DefuzzMethod method, int res, SNorm agg,
                           const LinguisticVariable& output,
                           std::span<const double> acts, Implication impl) {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (res - 1);
  auto grade = [&](int i) {
    return reference_grade(output, acts, impl, agg, lo + i * dy);
  };
  switch (method) {
    case DefuzzMethod::kCentroid: {
      double num = 0.0, den = 0.0;
      for (int i = 0; i < res; ++i) {
        const double w = (i == 0 || i == res - 1) ? 0.5 : 1.0;
        num += grade(i) * w * (lo + i * dy);
        den += grade(i) * w;
      }
      return den <= 0.0 ? 0.5 * (lo + hi) : num / den;
    }
    case DefuzzMethod::kBisector: {
      double total = 0.0;
      for (int i = 0; i < res; ++i) total += grade(i);
      if (total <= 0.0) return 0.5 * (lo + hi);
      double acc = 0.0;
      for (int i = 0; i < res; ++i) {
        acc += grade(i);
        if (acc >= 0.5 * total) return lo + i * dy;
      }
      return hi;
    }
    default: {
      double max_mu = 0.0;
      for (int i = 0; i < res; ++i) max_mu = std::max(max_mu, grade(i));
      if (max_mu <= 0.0) return 0.5 * (lo + hi);
      double first = hi, last = lo, sum = 0.0;
      int count = 0;
      for (int i = 0; i < res; ++i) {
        if (grade(i) >= max_mu - 1e-9) {
          const double y = lo + i * dy;
          first = std::min(first, y);
          last = std::max(last, y);
          sum += y;
          ++count;
        }
      }
      if (method == DefuzzMethod::kSmallestOfMaximum) return first;
      if (method == DefuzzMethod::kLargestOfMaximum) return last;
      return sum / count;
    }
  }
}

class DefuzzGoldenParity : public ::testing::Test {
 protected:
  // Five terms with shoulders at the edges — the shape of the paper's A/R
  // output (Fig. 6).
  LinguisticVariable output = VariableBuilder("ar", -1.0, 1.0)
                                  .left_shoulder("R", -0.6, 0.3)
                                  .triangular("WR", -0.3, 0.3, 0.3)
                                  .triangular("NRNA", 0.0, 0.3, 0.3)
                                  .triangular("WA", 0.3, 0.3, 0.3)
                                  .right_shoulder("A", 0.6, 0.3)
                                  .build();

  static constexpr DefuzzMethod kMethods[] = {
      DefuzzMethod::kCentroid, DefuzzMethod::kBisector,
      DefuzzMethod::kMeanOfMaximum, DefuzzMethod::kSmallestOfMaximum,
      DefuzzMethod::kLargestOfMaximum};
  static constexpr SNorm kSNorms[] = {SNorm::kMaximum,
                                      SNorm::kProbabilisticSum,
                                      SNorm::kBoundedSum};
  static constexpr Implication kImplications[] = {Implication::kMinimum,
                                                  Implication::kProduct};
  static constexpr int kResolutions[] = {8, 101, 1001};

  std::vector<std::vector<double>> activation_sets = {
      {1.0, 0.0, 0.0, 0.0, 0.0},    {0.0, 0.0, 1.0, 0.0, 0.0},
      {0.3, 0.7, 0.0, 0.2, 0.0},    {0.05, 0.0, 0.0, 0.0, 0.9},
      {0.5, 0.5, 0.5, 0.5, 0.5},    {0.0, 1e-9, 0.0, 0.0, 0.0},
      {0.25, 0.75, 0.6, 0.1, 0.95},
  };
};

TEST_F(DefuzzGoldenParity, GridPathMatchesNaiveReference) {
  std::vector<double> mu_scratch;
  for (auto method : kMethods) {
    for (int res : kResolutions) {
      for (auto agg : kSNorms) {
        for (auto impl : kImplications) {
          Defuzzifier fast(method, res, agg);
          // Pin the grid path: this suite checks the sampled tables, not the
          // closed-form centroid (covered by DefuzzAnalyticCentroid below).
          fast.set_analytic_centroid(false);
          fast.prime(output);
          ASSERT_TRUE(fast.primed_for(output));
          for (const auto& acts : activation_sets) {
            const double expect =
                reference_defuzzify(method, res, agg, output, acts, impl);
            const double got = fast.defuzzify(acts, impl, output, mu_scratch);
            EXPECT_NEAR(got, expect, 1e-12)
                << to_string(method) << " res=" << res
                << " snorm=" << static_cast<int>(agg)
                << " impl=" << static_cast<int>(impl);
          }
        }
      }
    }
  }
}

TEST_F(DefuzzGoldenParity, UnprimedFallbackMatchesNaiveReference) {
  std::vector<double> mu_scratch;
  for (auto method : kMethods) {
    for (auto agg : kSNorms) {
      for (auto impl : kImplications) {
        Defuzzifier naive(method, 101, agg);  // never primed
        naive.set_analytic_centroid(false);   // grid parity, as above
        ASSERT_FALSE(naive.primed_for(output));
        for (const auto& acts : activation_sets) {
          const double expect =
              reference_defuzzify(method, 101, agg, output, acts, impl);
          EXPECT_NEAR(naive.defuzzify(acts, impl, output, mu_scratch), expect,
                      1e-12)
              << to_string(method);
        }
      }
    }
  }
}

TEST_F(DefuzzGoldenParity, LegacySetOverloadTakesTheSamePath) {
  for (auto method : kMethods) {
    Defuzzifier fast(method, 101);
    fast.prime(output);
    const Defuzzifier naive(method, 101);
    for (const auto& acts : activation_sets) {
      OutputFuzzySet set;
      set.activations = acts;
      EXPECT_NEAR(fast.defuzzify(set, output), naive.defuzzify(set, output),
                  1e-12)
          << to_string(method);
    }
  }
}

TEST_F(DefuzzGoldenParity, PrimeIsKeyedByVariableIdentity) {
  Defuzzifier d(DefuzzMethod::kCentroid, 101);
  d.prime(output);
  const LinguisticVariable other = VariableBuilder("z", -1.0, 1.0)
                                       .triangular("neg", -0.5, 0.5, 0.5)
                                       .triangular("zero", 0.0, 0.5, 0.5)
                                       .triangular("pos", 0.5, 0.5, 0.5)
                                       .build();
  EXPECT_TRUE(d.primed_for(output));
  EXPECT_FALSE(d.primed_for(other));
  // A foreign variable silently takes the naive path and still agrees with
  // the reference.
  std::vector<double> mu;
  const std::vector<double> acts = {0.2, 0.0, 0.8};
  EXPECT_NEAR(d.defuzzify(acts, Implication::kMinimum, other, mu),
              reference_defuzzify(DefuzzMethod::kCentroid, 101,
                                  SNorm::kMaximum, other, acts,
                                  Implication::kMinimum),
              1e-12);
}

// --- analytic centroid ------------------------------------------------------
//
// The closed-form alpha-cut centroid is checked against an *algorithmically
// independent* exact reference: recursive adaptive subdivision that probes
// each interval for linearity (midpoint + golden-ratio point against the
// chord) and integrates area/moment with the trapezoid rule only where the
// aggregated membership is verified linear.  Both implications make the
// membership piecewise linear, so the reference is exact up to rounding and
// the two must agree to 1e-9 — far below anything a fixed grid can certify
// (an 8192-point trapezoid grid has O(h^2) ~ 1e-7 kink error; the grid
// comparison below therefore uses a justified looser tolerance).

struct ExactIntegral {
  double area = 0.0;
  double moment = 0.0;
};

template <typename F>
void adaptive_integrate(const F& f, double x0, double x1, double f0, double f1,
                        int depth, ExactIntegral& acc) {
  const double kGolden = 0.3819660112501051;
  const double xm = 0.5 * (x0 + x1);
  const double xg = x0 + (x1 - x0) * kGolden;
  const double fm = f(xm);
  const double fg = f(xg);
  const double lm = f0 + (f1 - f0) * 0.5;
  const double lg = f0 + (f1 - f0) * kGolden;
  if (depth <= 0 ||
      (std::abs(fm - lm) <= 1e-13 && std::abs(fg - lg) <= 1e-13)) {
    const double h = x1 - x0;
    acc.area += 0.5 * h * (f0 + f1);
    // Exact first moment of the linear interpolant on [x0, x1].
    acc.moment += h * (f0 * (2.0 * x0 + x1) + f1 * (x0 + 2.0 * x1)) / 6.0;
    return;
  }
  adaptive_integrate(f, x0, xm, f0, fm, depth - 1, acc);
  adaptive_integrate(f, xm, x1, fm, f1, depth - 1, acc);
}

/// Exact area/moment of the aggregated membership.  The integration is
/// seeded with every *known* kink candidate — term breakpoints and (for the
/// clipping implication) the alpha-cut corners — because probing alone can
/// miss a feature that lies strictly between samples (e.g. a narrow term
/// whose support sits inside an interval that reads 0 at every probe).
/// Between seeded points each term's implicated membership is affine, so
/// the aggregate is a max of affines (convex): any remaining kink pulls the
/// midpoint strictly below the chord and the adaptive recursion is
/// guaranteed to find it.
ExactIntegral exact_integral(const LinguisticVariable& output,
                             std::span<const double> acts, Implication impl) {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  auto mu = [&](double y) {
    return reference_grade(output, acts, impl, SNorm::kMaximum, y);
  };
  std::vector<double> cuts = {lo, hi};
  for (std::size_t k = 0; k < output.term_count(); ++k) {
    const MembershipFunction& mf = output.term(k).mf;
    for (double y : {mf.a(), mf.b(), mf.c(), mf.d()})
      if (y > lo && y < hi) cuts.push_back(y);
    if (acts[k] > 0.0 && acts[k] < 1.0 && impl == Implication::kMinimum &&
        !mf.is_singleton()) {
      for (double y : {mf.alpha_cut_lo(acts[k]), mf.alpha_cut_hi(acts[k])})
        if (std::isfinite(y) && y > lo && y < hi) cuts.push_back(y);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  ExactIntegral acc;
  for (std::size_t i = 1; i < cuts.size(); ++i) {
    if (!(cuts[i] > cuts[i - 1])) continue;
    adaptive_integrate(mu, cuts[i - 1], cuts[i], mu(cuts[i - 1]), mu(cuts[i]),
                       50, acc);
  }
  return acc;
}

/// Random ordered adjacent-overlap partition of [-1, 1]: term k's support is
/// [p[k-1], p[k+1]] (adjacent pairs overlap, support ends may touch at the
/// shared anchor), plateaus random inside, triangles half the time, shoulder
/// ends half the time — the layout family the analytic path claims.
LinguisticVariable random_partition_variable(std::mt19937_64& rng,
                                             bool shoulder_ends) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const int terms = 3 + static_cast<int>(rng() % 6);  // 3..8
  const double lo = -1.0, hi = 1.0;
  // Strictly increasing anchors p[0..terms] with a minimum gap so edge
  // slopes stay bounded.
  std::vector<double> p(terms + 1);
  for (;;) {
    p.front() = lo;
    p.back() = hi;
    for (int i = 1; i < terms; ++i) p[i] = lo + (hi - lo) * uni(rng);
    std::sort(p.begin(), p.end());
    bool ok = true;
    for (int i = 0; i < terms; ++i) ok = ok && p[i + 1] - p[i] >= 0.04;
    if (ok) break;
  }
  VariableBuilder vb("rand", lo, hi);
  for (int k = 0; k < terms; ++k) {
    const double a = p[k == 0 ? 0 : k - 1];
    const double d = p[std::min(k + 1, terms)];
    // Plateau strictly inside the support, edges at least 0.01 wide.
    double b = a + (d - a) * (0.1 + 0.35 * uni(rng));
    double c = b + (d - b - 0.01) * uni(rng);
    if (rng() % 2 == 0) c = b;  // triangle
    if (k == 0 && shoulder_ends) {
      vb.term("t0", MembershipFunction::from_breakpoints(
                        -kInf, -kInf, c, d));
    } else if (k == terms - 1 && shoulder_ends) {
      vb.term("t" + std::to_string(k),
              MembershipFunction::from_breakpoints(a, b, kInf, kInf));
    } else {
      vb.term("t" + std::to_string(k),
              MembershipFunction::from_breakpoints(a, b, c, d));
    }
  }
  return vb.build();
}

std::vector<double> random_activations(std::mt19937_64& rng,
                                       std::size_t terms) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<double> acts(terms, 0.0);
  for (auto& a : acts) {
    const auto pick = rng() % 5;
    if (pick == 0) continue;              // inactive
    if (pick == 1) a = 1.0;               // full clip
    else if (pick == 2) a = 1.3 * uni(rng);  // raw-API abuse: alpha > 1
    else a = uni(rng);
  }
  return acts;
}

TEST(DefuzzAnalyticCentroid, MatchesAdaptiveExactReference) {
  std::mt19937_64 rng(20260808);
  std::vector<double> mu_scratch;
  int checked = 0;
  for (int v = 0; v < 120; ++v) {
    const LinguisticVariable output =
        random_partition_variable(rng, /*shoulder_ends=*/v % 2 == 0);
    for (auto impl : {Implication::kMinimum, Implication::kProduct}) {
      Defuzzifier d(DefuzzMethod::kCentroid, 64, SNorm::kMaximum);
      ASSERT_TRUE(d.analytic_applicable(output, impl));
      if (v % 3 == 0) d.prime(output);  // both primed and unprimed dispatch
      for (int t = 0; t < 4; ++t) {
        const auto acts = random_activations(rng, output.term_count());
        // Skip near-empty sets: centroid = moment/area is ill-conditioned
        // when the area is a sliver (both sides would need looser bounds).
        const ExactIntegral ref = exact_integral(output, acts, impl);
        if (ref.area < 1e-6) continue;
        ++checked;
        EXPECT_NEAR(d.defuzzify(acts, impl, output, mu_scratch),
                    ref.moment / ref.area, 1e-9)
            << "variable " << v << " trial " << t
            << " impl=" << static_cast<int>(impl);
      }
    }
  }
  EXPECT_GT(checked, 500);  // the skip guard must not hollow out the test
}

TEST(DefuzzAnalyticCentroid, HighResGridAgreesWithinItsErrorBound) {
  // The 8192-point trapezoid grid is exact on cells where the membership is
  // linear; each kink contributes O(h^2 * slope) area error.  With edge
  // widths >= 0.01 (slope <= 100), h ~ 2.4e-4 and <= ~34 kinks that bounds
  // the centroid shift well under 1e-4 for non-sliver sets — the analytic
  // path must sit inside it.  (1e-9 agreement against a fixed grid is not
  // achievable; the exact-reference test above carries that bound.)
  std::mt19937_64 rng(99);
  std::vector<double> mu_scratch;
  for (int v = 0; v < 25; ++v) {
    const LinguisticVariable output =
        random_partition_variable(rng, v % 2 == 0);
    for (auto impl : {Implication::kMinimum, Implication::kProduct}) {
      Defuzzifier analytic(DefuzzMethod::kCentroid, 64, SNorm::kMaximum);
      Defuzzifier grid(DefuzzMethod::kCentroid, 8192, SNorm::kMaximum);
      grid.set_analytic_centroid(false);
      grid.prime(output);
      for (int t = 0; t < 3; ++t) {
        const auto acts = random_activations(rng, output.term_count());
        const double g = grid.defuzzify(acts, impl, output, mu_scratch);
        const double a = analytic.defuzzify(acts, impl, output, mu_scratch);
        if (std::none_of(acts.begin(), acts.end(),
                         [](double x) { return x > 0.05; }))
          continue;
        EXPECT_NEAR(a, g, 1e-4) << "variable " << v << " trial " << t;
      }
    }
  }
}

TEST(DefuzzAnalyticCentroid, UnsupportedCombosFallBackToGridBitwise) {
  // Every (method, s-norm, implication) outside the supported set must take
  // the grid path even with analytic centroids enabled: bitwise-identical
  // results to a twin with the analytic path disabled.
  std::mt19937_64 rng(7);
  const LinguisticVariable output = random_partition_variable(rng, true);
  std::vector<double> mu1, mu2;
  for (auto method :
       {DefuzzMethod::kCentroid, DefuzzMethod::kBisector,
        DefuzzMethod::kMeanOfMaximum, DefuzzMethod::kWeightedAverage}) {
    for (auto agg : {SNorm::kMaximum, SNorm::kProbabilisticSum,
                     SNorm::kBoundedSum}) {
      for (auto impl : {Implication::kMinimum, Implication::kProduct}) {
        const bool supported =
            Defuzzifier::analytic_supported(method, agg, impl);
        EXPECT_EQ(supported,
                  method == DefuzzMethod::kCentroid && agg == SNorm::kMaximum)
            << to_string(method);
        if (supported) continue;
        Defuzzifier on(method, 101, agg);
        Defuzzifier off(method, 101, agg);
        off.set_analytic_centroid(false);
        EXPECT_FALSE(on.analytic_applicable(output, impl));
        on.prime(output);
        off.prime(output);
        for (int t = 0; t < 3; ++t) {
          const auto acts = random_activations(rng, output.term_count());
          EXPECT_EQ(on.defuzzify(acts, impl, output, mu1),
                    off.defuzzify(acts, impl, output, mu2))
              << to_string(method) << " agg=" << static_cast<int>(agg);
        }
      }
    }
  }
}

TEST(DefuzzAnalyticCentroid, NonPartitionLayoutFallsBackToGridBitwise) {
  // A wide term overlapping a non-adjacent one breaks the adjacent-overlap
  // precondition; the dispatch must detect it (primed and unprimed) and use
  // the grid, bitwise-identical to an analytic-off twin.
  const LinguisticVariable output =
      VariableBuilder("bad", -1.0, 1.0)
          .term("wide", MembershipFunction::from_breakpoints(-1.0, -0.2, 0.2,
                                                             1.0))
          .term("mid", MembershipFunction::from_breakpoints(-0.5, 0.0, 0.0,
                                                            0.5))
          .term("hi", MembershipFunction::from_breakpoints(-0.4, 0.8, 0.9,
                                                           1.0))
          .build();
  Defuzzifier on(DefuzzMethod::kCentroid, 101);
  EXPECT_FALSE(on.analytic_applicable(output, Implication::kMinimum));
  Defuzzifier off(DefuzzMethod::kCentroid, 101);
  off.set_analytic_centroid(false);
  std::vector<double> mu1, mu2;
  const std::vector<double> acts = {0.4, 0.9, 0.6};
  EXPECT_EQ(on.defuzzify(acts, Implication::kMinimum, output, mu1),
            off.defuzzify(acts, Implication::kMinimum, output, mu2));
  on.prime(output);
  off.prime(output);
  EXPECT_EQ(on.defuzzify(acts, Implication::kMinimum, output, mu1),
            off.defuzzify(acts, Implication::kMinimum, output, mu2));
}

TEST(DefuzzAnalyticCentroid, ApplicableToThePaperVariables) {
  // Both paper output variables (Cv's 9-term uniform partition, A/R's
  // 5-term shouldered partition) must ride the analytic path.
  const LinguisticVariable cv =
      VariableBuilder("cv", 0.0, 1.0).uniform_partition("Cv", 9).build();
  const LinguisticVariable ar = VariableBuilder("ar", -1.0, 1.0)
                                    .left_shoulder("R", -0.6, 0.3)
                                    .triangular("WR", -0.3, 0.3, 0.3)
                                    .triangular("NRNA", 0.0, 0.3, 0.3)
                                    .triangular("WA", 0.3, 0.3, 0.3)
                                    .right_shoulder("A", 0.6, 0.3)
                                    .build();
  const Defuzzifier d(DefuzzMethod::kCentroid, 256);
  EXPECT_TRUE(d.analytic_applicable(cv, Implication::kMinimum));
  EXPECT_TRUE(d.analytic_applicable(ar, Implication::kMinimum));
  EXPECT_TRUE(d.analytic_applicable(ar, Implication::kProduct));
}

TEST(DefuzzResolutionTuner, MeetsRequestedBoundOnPaperOutput) {
  const LinguisticVariable ar = VariableBuilder("ar", -1.0, 1.0)
                                    .left_shoulder("R", -0.6, 0.3)
                                    .triangular("WR", -0.3, 0.3, 0.3)
                                    .triangular("NRNA", 0.0, 0.3, 0.3)
                                    .triangular("WA", 0.3, 0.3, 0.3)
                                    .right_shoulder("A", 0.6, 0.3)
                                    .build();
  const ResolutionTuning coarse = tune_centroid_resolution(
      ar, Implication::kMinimum, SNorm::kMaximum, 1e-2);
  EXPECT_TRUE(coarse.met_bound);
  EXPECT_LE(coarse.max_abs_error, 1e-2);
  EXPECT_GE(coarse.resolution, 8);
  const ResolutionTuning fine = tune_centroid_resolution(
      ar, Implication::kMinimum, SNorm::kMaximum, 1e-5);
  EXPECT_TRUE(fine.met_bound);
  EXPECT_LE(fine.max_abs_error, 1e-5);
  // A tighter bound can never be met by a coarser grid.
  EXPECT_GE(fine.resolution, coarse.resolution);
}

TEST(DefuzzResolutionTuner, ReportsUnmetBoundAndRejectsUnsupported) {
  const LinguisticVariable ar = VariableBuilder("ar", -1.0, 1.0)
                                    .left_shoulder("R", -0.6, 0.3)
                                    .triangular("WR", -0.3, 0.3, 0.3)
                                    .triangular("NRNA", 0.0, 0.3, 0.3)
                                    .triangular("WA", 0.3, 0.3, 0.3)
                                    .right_shoulder("A", 0.6, 0.3)
                                    .build();
  // An absurd bound cannot be met by any grid up to the cap; the result
  // must say so rather than lie.
  const ResolutionTuning t = tune_centroid_resolution(
      ar, Implication::kMinimum, SNorm::kMaximum, 1e-14, 8, 64);
  EXPECT_FALSE(t.met_bound);
  EXPECT_EQ(t.resolution, 64);
  EXPECT_GT(t.max_abs_error, 1e-14);
  // Without an analytic reference there is nothing to tune against.
  EXPECT_THROW(tune_centroid_resolution(ar, Implication::kMinimum,
                                        SNorm::kProbabilisticSum, 1e-3),
               facsp::ConfigError);
  EXPECT_THROW(tune_centroid_resolution(ar, Implication::kMinimum,
                                        SNorm::kMaximum, 0.0),
               facsp::ConfigError);
}

TEST(DefuzzMethodNames, RoundTrip) {
  for (auto m :
       {DefuzzMethod::kCentroid, DefuzzMethod::kBisector,
        DefuzzMethod::kMeanOfMaximum, DefuzzMethod::kSmallestOfMaximum,
        DefuzzMethod::kLargestOfMaximum, DefuzzMethod::kWeightedAverage}) {
    EXPECT_EQ(defuzz_method_from_string(to_string(m)), m);
  }
  EXPECT_THROW(defuzz_method_from_string("nonsense"), facsp::ConfigError);
}

}  // namespace
}  // namespace facsp::fuzzy
