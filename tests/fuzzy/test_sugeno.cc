#include "fuzzy/sugeno.h"

#include <gtest/gtest.h>

#include "cac/facs_flc.h"
#include "common/error.h"
#include "fuzzy/builder.h"

namespace facsp::fuzzy {
namespace {

std::vector<LinguisticVariable> one_input() {
  std::vector<LinguisticVariable> v;
  v.push_back(VariableBuilder("x", 0.0, 10.0)
                  .left_shoulder("lo", 0.0, 10.0)
                  .right_shoulder("hi", 10.0, 10.0)
                  .build());
  return v;
}

TEST(Sugeno, ZeroOrderWeightedAverage) {
  std::vector<SugenoRule> rules(2);
  rules[0].antecedents = {0};  // lo -> 0
  rules[0].constant = 0.0;
  rules[1].antecedents = {1};  // hi -> 10
  rules[1].constant = 10.0;
  SugenoController c("wavg", one_input(), rules);
  EXPECT_NEAR(c.evaluate({0.0}), 0.0, 1e-12);
  EXPECT_NEAR(c.evaluate({10.0}), 10.0, 1e-12);
  // mu_lo(2.5)=0.75, mu_hi=0.25 -> 0.25*10 = 2.5: linear interpolation.
  EXPECT_NEAR(c.evaluate({2.5}), 2.5, 1e-12);
  EXPECT_NEAR(c.evaluate({5.0}), 5.0, 1e-12);
}

TEST(Sugeno, FirstOrderConsequent) {
  std::vector<SugenoRule> rules(1);
  rules[0].antecedents = {SugenoRule::kAny};
  rules[0].constant = 1.0;
  rules[0].coefficients = {2.0};  // z = 1 + 2x
  SugenoController c("affine", one_input(), rules);
  EXPECT_NEAR(c.evaluate({3.0}), 7.0, 1e-12);
  EXPECT_NEAR(c.evaluate({0.0}), 1.0, 1e-12);
}

TEST(Sugeno, InputsClampedToUniverse) {
  std::vector<SugenoRule> rules(1);
  rules[0].antecedents = {SugenoRule::kAny};
  rules[0].coefficients = {1.0};  // z = x
  SugenoController c("clamp", one_input(), rules);
  EXPECT_NEAR(c.evaluate({25.0}), 10.0, 1e-12);
  EXPECT_NEAR(c.evaluate({-5.0}), 0.0, 1e-12);
}

TEST(Sugeno, RuleWeightScales) {
  std::vector<SugenoRule> rules(2);
  rules[0].antecedents = {SugenoRule::kAny};
  rules[0].constant = 0.0;
  rules[0].weight = 1.0;
  rules[1].antecedents = {SugenoRule::kAny};
  rules[1].constant = 10.0;
  rules[1].weight = 0.25;
  SugenoController c("weights", one_input(), rules);
  // (1*0 + 0.25*10) / 1.25 = 2.
  EXPECT_NEAR(c.evaluate({5.0}), 2.0, 1e-12);
}

TEST(Sugeno, NoFiringRuleGivesZero) {
  auto inputs = one_input();
  // A variable whose single term covers only part of the universe.
  inputs[0] = VariableBuilder("x", 0.0, 10.0)
                  .triangular("mid", 5.0, 1.0, 1.0)
                  .build();
  std::vector<SugenoRule> rules(1);
  rules[0].antecedents = {0};
  rules[0].constant = 42.0;
  SugenoController c("gap", inputs, rules);
  EXPECT_DOUBLE_EQ(c.evaluate({0.0}), 0.0);
  EXPECT_NEAR(c.evaluate({5.0}), 42.0, 1e-12);
}

TEST(Sugeno, Validation) {
  auto inputs = one_input();
  std::vector<SugenoRule> ok(1);
  ok[0].antecedents = {0};
  EXPECT_THROW(SugenoController("s", {}, ok), ConfigError);
  EXPECT_THROW(SugenoController("s", inputs, {}), ConfigError);

  std::vector<SugenoRule> bad_arity(1);
  bad_arity[0].antecedents = {0, 1};
  EXPECT_THROW(SugenoController("s", inputs, bad_arity), ConfigError);

  std::vector<SugenoRule> bad_term(1);
  bad_term[0].antecedents = {5};
  EXPECT_THROW(SugenoController("s", inputs, bad_term), ConfigError);

  std::vector<SugenoRule> bad_coeffs(1);
  bad_coeffs[0].antecedents = {0};
  bad_coeffs[0].coefficients = {1.0, 2.0};
  EXPECT_THROW(SugenoController("s", inputs, bad_coeffs), ConfigError);

  std::vector<SugenoRule> bad_weight(1);
  bad_weight[0].antecedents = {0};
  bad_weight[0].weight = 0.0;
  EXPECT_THROW(SugenoController("s", inputs, bad_weight), ConfigError);
}

TEST(Sugeno, WrongArityEvaluateThrows) {
  std::vector<SugenoRule> rules(1);
  rules[0].antecedents = {0};
  SugenoController c("s", one_input(), rules);
  EXPECT_THROW(c.evaluate({1.0, 2.0}), facsp::ContractViolation);
}

TEST(SugenoFlc2, TracksMamdaniFlc2Qualitatively) {
  // The Sugeno restatement of Table 2 must agree with the Mamdani FLC2 on
  // sign (accept/reject lean) across the operating space, and correlate
  // strongly in value.
  const auto mamdani = cac::make_flc2();
  const auto sugeno = cac::make_sugeno_flc2();
  int sign_agree = 0, total = 0;
  for (double cv = 0.05; cv <= 1.0; cv += 0.13)
    for (double rq : {1.0, 5.0, 10.0})
      for (double cs = 0.0; cs <= 40.0; cs += 4.0) {
        const double m = mamdani->evaluate({cv, rq, cs});
        const double s = sugeno->evaluate({cv, rq, cs});
        ++total;
        // Treat near-zero as agreeing with anything (NRNA region).
        if (std::abs(m) < 0.07 || std::abs(s) < 0.07 || (m > 0) == (s > 0))
          ++sign_agree;
        EXPECT_NEAR(m, s, 0.45) << "cv=" << cv << " rq=" << rq
                                << " cs=" << cs;
      }
  EXPECT_GT(static_cast<double>(sign_agree) / total, 0.95);
}

TEST(SugenoFlc2, FasterPathSameDecisionsOnPaperPoints) {
  const auto sugeno = cac::make_sugeno_flc2();
  // Empty cell accepts; full cell rejects video.
  EXPECT_GT(sugeno->evaluate({0.8, 5.0, 0.0}), 0.3);
  EXPECT_LT(sugeno->evaluate({0.9, 10.0, 40.0}), -0.3);
}

}  // namespace
}  // namespace facsp::fuzzy
