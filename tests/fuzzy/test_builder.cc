#include "fuzzy/builder.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace facsp::fuzzy {
namespace {

TEST(VariableBuilder, AllTermShapes) {
  const auto v = VariableBuilder("v", 0.0, 100.0)
                     .left_shoulder("lo", 10.0, 20.0)
                     .triangular("mid", 50.0, 25.0, 25.0)
                     .trapezoidal("band", 60.0, 80.0, 10.0, 10.0)
                     .right_shoulder("hi", 90.0, 20.0)
                     .term("spike", MembershipFunction::singleton(42.0))
                     .build();
  EXPECT_EQ(v.term_count(), 5u);
  EXPECT_DOUBLE_EQ(v.grade(v.term_index("band"), 70.0), 1.0);
  EXPECT_DOUBLE_EQ(v.grade(v.term_index("spike"), 42.0), 1.0);
  EXPECT_DOUBLE_EQ(v.grade(v.term_index("spike"), 42.5), 0.0);
}

TEST(VariableBuilder, UniformPartitionEdges) {
  EXPECT_THROW(
      VariableBuilder("v", 0.0, 1.0).uniform_partition("t", 1).build(),
      ConfigError);
  const auto two =
      VariableBuilder("v", 0.0, 1.0).uniform_partition("t", 2).build();
  EXPECT_EQ(two.term_count(), 2u);
  // Two shoulders crossing at the middle.
  EXPECT_DOUBLE_EQ(two.grade(0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(two.grade(1, 0.5), 0.5);
}

TEST(VariableBuilder, UniformPartitionSumsToOneInside) {
  const auto v =
      VariableBuilder("v", -2.0, 3.0).uniform_partition("p", 6).build();
  for (double x = -2.0; x <= 3.0; x += 0.01) {
    double sum = 0.0;
    for (std::size_t t = 0; t < v.term_count(); ++t) sum += v.grade(t, x);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "x=" << x;
  }
}

TEST(VariableBuilder, PropagatesValidationErrors) {
  // Duplicate names surface at build().
  VariableBuilder b("v", 0.0, 1.0);
  b.left_shoulder("a", 0.0, 1.0).right_shoulder("a", 1.0, 1.0);
  EXPECT_THROW(b.build(), ConfigError);
  // Bad geometry surfaces at the term call itself.
  EXPECT_THROW(VariableBuilder("v", 0.0, 1.0).triangular("t", 0.5, -1.0, 1.0),
               ConfigError);
}

TEST(ControllerBuilder, MixedRuleSourcesCompose) {
  // rule_table() plus extra textual rules in one controller.
  auto flc = ControllerBuilder("mixed")
                 .input(VariableBuilder("x", 0.0, 1.0)
                            .left_shoulder("lo", 0.0, 1.0)
                            .right_shoulder("hi", 1.0, 1.0)
                            .build())
                 .output(VariableBuilder("y", 0.0, 1.0)
                             .left_shoulder("s", 0.0, 1.0)
                             .right_shoulder("l", 1.0, 1.0)
                             .build())
                 .rule("IF x is lo THEN y is s [0.9]")
                 .rule_table({"s", "l"})
                 .build();
  EXPECT_EQ(flc->rules().size(), 3u);
  EXPECT_LT(flc->evaluate({0.0}), 0.5);
  EXPECT_GT(flc->evaluate({1.0}), 0.5);
}

TEST(ControllerBuilder, RuleTableValidatedAtBuild) {
  ControllerBuilder b("bad");
  b.input(VariableBuilder("x", 0.0, 1.0)
              .left_shoulder("lo", 0.0, 1.0)
              .right_shoulder("hi", 1.0, 1.0)
              .build());
  b.output(VariableBuilder("y", 0.0, 1.0)
               .left_shoulder("s", 0.0, 1.0)
               .right_shoulder("l", 1.0, 1.0)
               .build());
  b.rule_table({"s"});  // wrong size: 2 combinations expected
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(ControllerBuilder, InferenceAndDefuzzifierKnobsApplied) {
  auto make = [](InferenceOptions opt, Defuzzifier d) {
    return ControllerBuilder("knobs")
        .input(VariableBuilder("x", 0.0, 1.0)
                   .left_shoulder("lo", 0.0, 1.0)
                   .right_shoulder("hi", 1.0, 1.0)
                   .build())
        .output(VariableBuilder("y", 0.0, 1.0)
                    .triangular("s", 0.25, 0.25, 0.25)
                    .triangular("l", 0.75, 0.25, 0.25)
                    .build())
        .rule_table({"s", "l"})
        .inference(opt)
        .defuzzifier(d)
        .build();
  };
  InferenceOptions prod;
  prod.t_norm = TNorm::kProduct;
  const auto a = make({}, Defuzzifier{});
  const auto b = make(prod, Defuzzifier(DefuzzMethod::kMeanOfMaximum, 1024));
  EXPECT_EQ(b->inference_options().t_norm, TNorm::kProduct);
  EXPECT_EQ(b->defuzzifier().method(), DefuzzMethod::kMeanOfMaximum);
  // Different knobs, measurably different outputs at a blend point.
  EXPECT_NE(a->evaluate({0.31}), b->evaluate({0.31}));
}

}  // namespace
}  // namespace facsp::fuzzy
