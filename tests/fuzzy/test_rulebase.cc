#include "fuzzy/rulebase.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "fuzzy/builder.h"

namespace facsp::fuzzy {
namespace {

std::vector<LinguisticVariable> two_inputs() {
  std::vector<LinguisticVariable> v;
  v.push_back(VariableBuilder("x", 0.0, 1.0)
                  .left_shoulder("lo", 0.0, 1.0)
                  .right_shoulder("hi", 1.0, 1.0)
                  .build());
  v.push_back(VariableBuilder("y", 0.0, 1.0)
                  .left_shoulder("lo", 0.0, 1.0)
                  .triangular("mid", 0.5, 0.5, 0.5)
                  .right_shoulder("hi", 1.0, 1.0)
                  .build());
  return v;
}

LinguisticVariable out_var() {
  return VariableBuilder("z", 0.0, 1.0)
      .left_shoulder("small", 0.0, 1.0)
      .right_shoulder("large", 1.0, 1.0)
      .build();
}

FuzzyRule rule(std::vector<std::size_t> ants, std::size_t cons,
               double w = 1.0) {
  FuzzyRule r;
  r.antecedents = std::move(ants);
  r.consequent = cons;
  r.weight = w;
  return r;
}

TEST(RuleBase, ValidatesArity) {
  const auto inputs = two_inputs();
  EXPECT_THROW(RuleBase({rule({0}, 0)}, inputs, out_var()), ConfigError);
  EXPECT_NO_THROW(RuleBase({rule({0, 1}, 0)}, inputs, out_var()));
}

TEST(RuleBase, ValidatesTermIndices) {
  const auto inputs = two_inputs();
  EXPECT_THROW(RuleBase({rule({2, 0}, 0)}, inputs, out_var()), ConfigError);
  EXPECT_THROW(RuleBase({rule({0, 3}, 0)}, inputs, out_var()), ConfigError);
  EXPECT_THROW(RuleBase({rule({0, 0}, 2)}, inputs, out_var()), ConfigError);
}

TEST(RuleBase, ValidatesWeight) {
  const auto inputs = two_inputs();
  EXPECT_THROW(RuleBase({rule({0, 0}, 0, 0.0)}, inputs, out_var()),
               ConfigError);
  EXPECT_THROW(RuleBase({rule({0, 0}, 0, 1.5)}, inputs, out_var()),
               ConfigError);
  EXPECT_NO_THROW(RuleBase({rule({0, 0}, 0, 0.5)}, inputs, out_var()));
}

TEST(RuleBase, WildcardAntecedentAllowed) {
  const auto inputs = two_inputs();
  EXPECT_NO_THROW(
      RuleBase({rule({FuzzyRule::kAny, 1}, 0)}, inputs, out_var()));
}

TEST(RuleBase, CombinationCount) {
  const auto inputs = two_inputs();
  const RuleBase rb({rule({0, 0}, 0)}, inputs, out_var());
  EXPECT_EQ(rb.combination_count(), 6u);  // 2 * 3
}

TEST(RuleBase, CompletenessDetection) {
  const auto inputs = two_inputs();
  std::vector<FuzzyRule> all;
  for (std::size_t a = 0; a < 2; ++a)
    for (std::size_t b = 0; b < 3; ++b) all.push_back(rule({a, b}, 0));
  EXPECT_TRUE(RuleBase(all, inputs, out_var()).is_complete());

  all.pop_back();
  EXPECT_FALSE(RuleBase(all, inputs, out_var()).is_complete());
}

TEST(RuleBase, WildcardMakesComplete) {
  const auto inputs = two_inputs();
  // One rule per x-term with wildcard y covers everything.
  const RuleBase rb({rule({0, FuzzyRule::kAny}, 0),
                     rule({1, FuzzyRule::kAny}, 1)},
                    inputs, out_var());
  EXPECT_TRUE(rb.is_complete());
}

TEST(RuleBase, ConflictDetection) {
  const auto inputs = two_inputs();
  const RuleBase clean({rule({0, 0}, 0), rule({0, 1}, 1)}, inputs, out_var());
  EXPECT_TRUE(clean.conflicts().empty());

  const RuleBase dirty({rule({0, 0}, 0), rule({0, 0}, 1)}, inputs, out_var());
  const auto conflicts = dirty.conflicts();
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0], (std::pair<std::size_t, std::size_t>{0, 1}));
}

TEST(RuleBase, DuplicateSameConsequentIsNotConflict) {
  const auto inputs = two_inputs();
  const RuleBase rb({rule({0, 0}, 1), rule({0, 0}, 1)}, inputs, out_var());
  EXPECT_TRUE(rb.conflicts().empty());
}

TEST(RuleBase, FromTableBuildsLastInputFastest) {
  const auto inputs = two_inputs();
  const auto output = out_var();
  // 6 combos: (x=lo,y=lo), (lo,mid), (lo,hi), (hi,lo), (hi,mid), (hi,hi).
  const RuleBase rb = RuleBase::from_table(
      inputs, output, {"small", "small", "large", "small", "large", "large"});
  ASSERT_EQ(rb.size(), 6u);
  EXPECT_TRUE(rb.is_complete());
  EXPECT_TRUE(rb.conflicts().empty());
  // Row 2 is (x=lo, y=hi) -> large.
  EXPECT_EQ(rb.rule(2).antecedents, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(rb.rule(2).consequent, output.term_index("large"));
  // Row 3 is (x=hi, y=lo) -> small.
  EXPECT_EQ(rb.rule(3).antecedents, (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(rb.rule(3).consequent, output.term_index("small"));
}

TEST(RuleBase, FromTableRejectsWrongSize) {
  const auto inputs = two_inputs();
  EXPECT_THROW(RuleBase::from_table(inputs, out_var(), {"small"}),
               ConfigError);
}

TEST(RuleBase, FromTableRejectsUnknownTerm) {
  const auto inputs = two_inputs();
  EXPECT_THROW(
      RuleBase::from_table(inputs, out_var(),
                           {"small", "small", "nope", "small", "large",
                            "large"}),
      ConfigError);
}

TEST(RuleToString, RendersReadableForm) {
  const auto inputs = two_inputs();
  const auto output = out_var();
  const std::string s = to_string(rule({0, 2}, 1), inputs, output);
  EXPECT_EQ(s, "IF x is lo AND y is hi THEN z is large");

  const std::string with_wildcard =
      to_string(rule({FuzzyRule::kAny, 1}, 0), inputs, output);
  EXPECT_EQ(with_wildcard, "IF y is mid THEN z is small");

  const std::string weighted = to_string(rule({0, 0}, 0, 0.5), inputs, output);
  EXPECT_NE(weighted.find("[0.5]"), std::string::npos);
}

}  // namespace
}  // namespace facsp::fuzzy
