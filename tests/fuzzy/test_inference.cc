#include "fuzzy/inference.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include "fuzzy/builder.h"
#include "fuzzy/rule_parser.h"

namespace facsp::fuzzy {
namespace {

struct InferenceFixture : ::testing::Test {
  std::vector<LinguisticVariable> inputs;
  LinguisticVariable output = VariableBuilder("z", 0.0, 1.0)
                                  .left_shoulder("small", 0.25, 0.5)
                                  .triangular("mid", 0.5, 0.25, 0.25)
                                  .right_shoulder("large", 0.75, 0.5)
                                  .build();

  InferenceFixture() {
    inputs.push_back(VariableBuilder("x", 0.0, 10.0)
                         .left_shoulder("lo", 0.0, 10.0)
                         .right_shoulder("hi", 10.0, 10.0)
                         .build());
    inputs.push_back(VariableBuilder("y", 0.0, 10.0)
                         .left_shoulder("lo", 0.0, 10.0)
                         .right_shoulder("hi", 10.0, 10.0)
                         .build());
  }

  std::vector<FuzzyRule> rules(const std::vector<std::string>& texts) {
    std::vector<FuzzyRule> out;
    for (const auto& t : texts) out.push_back(parse_rule(t, inputs, output));
    return out;
  }
};

TEST_F(InferenceFixture, MinTNormFiringStrength) {
  const auto rs = rules({"IF x is lo AND y is lo THEN z is small"});
  const RuleBase rb(rs, inputs, output);
  const InferenceEngine engine(inputs, output, rb);
  // x=2 -> mu_lo = 0.8; y=5 -> mu_lo = 0.5; min = 0.5.
  const auto res = engine.infer(std::vector<double>{2.0, 5.0});
  EXPECT_DOUBLE_EQ(res.activations[0], 0.5);
  EXPECT_DOUBLE_EQ(res.activations[1], 0.0);
  EXPECT_DOUBLE_EQ(res.activations[2], 0.0);
}

TEST_F(InferenceFixture, ProductTNorm) {
  const auto rs = rules({"IF x is lo AND y is lo THEN z is small"});
  const RuleBase rb(rs, inputs, output);
  InferenceOptions opt;
  opt.t_norm = TNorm::kProduct;
  const InferenceEngine engine(inputs, output, rb, opt);
  const auto res = engine.infer(std::vector<double>{2.0, 5.0});
  EXPECT_DOUBLE_EQ(res.activations[0], 0.8 * 0.5);
}

TEST_F(InferenceFixture, MaxSNormAggregatesSameConsequent) {
  const auto rs = rules({"IF x is lo THEN z is small",
                         "IF y is lo THEN z is small"});
  const RuleBase rb(rs, inputs, output);
  const InferenceEngine engine(inputs, output, rb);
  // mu_lo(x=2)=0.8, mu_lo(y=6)=0.4 -> max 0.8.
  const auto res = engine.infer(std::vector<double>{2.0, 6.0});
  EXPECT_DOUBLE_EQ(res.activations[0], 0.8);
}

TEST_F(InferenceFixture, ProbabilisticSumSNorm) {
  const auto rs = rules({"IF x is lo THEN z is small",
                         "IF y is lo THEN z is small"});
  const RuleBase rb(rs, inputs, output);
  InferenceOptions opt;
  opt.s_norm = SNorm::kProbabilisticSum;
  const InferenceEngine engine(inputs, output, rb, opt);
  const auto res = engine.infer(std::vector<double>{2.0, 6.0});
  EXPECT_DOUBLE_EQ(res.activations[0], 0.8 + 0.4 - 0.8 * 0.4);
}

TEST_F(InferenceFixture, BoundedSumSNorm) {
  const auto rs = rules({"IF x is lo THEN z is small",
                         "IF y is lo THEN z is small"});
  const RuleBase rb(rs, inputs, output);
  InferenceOptions opt;
  opt.s_norm = SNorm::kBoundedSum;
  const InferenceEngine engine(inputs, output, rb, opt);
  const auto res = engine.infer(std::vector<double>{1.0, 2.0});  // 0.9 + 0.8
  EXPECT_DOUBLE_EQ(res.activations[0], 1.0);
}

TEST_F(InferenceFixture, RuleWeightScalesStrength) {
  auto rs = rules({"IF x is lo THEN z is small [0.5]"});
  const RuleBase rb(rs, inputs, output);
  const InferenceEngine engine(inputs, output, rb);
  const auto res = engine.infer(std::vector<double>{0.0, 0.0});
  EXPECT_DOUBLE_EQ(res.activations[0], 0.5);
}

TEST_F(InferenceFixture, WildcardIgnoresThatInput) {
  const auto rs = rules({"IF y is hi THEN z is large"});
  const RuleBase rb(rs, inputs, output);
  const InferenceEngine engine(inputs, output, rb);
  for (double x : {0.0, 5.0, 10.0}) {
    const auto res = engine.infer(std::vector<double>{x, 10.0});
    EXPECT_DOUBLE_EQ(res.activations[2], 1.0) << "x=" << x;
  }
}

TEST_F(InferenceFixture, NoRuleFiresGivesEmptySet) {
  const auto rs = rules({"IF x is hi AND y is hi THEN z is large"});
  const RuleBase rb(rs, inputs, output);
  const InferenceEngine engine(inputs, output, rb);
  const auto res = engine.infer(std::vector<double>{0.0, 0.0});
  EXPECT_TRUE(res.empty());
  EXPECT_DOUBLE_EQ(res.height(), 0.0);
}

TEST_F(InferenceFixture, TracedReportsFiredRulesDescending) {
  const auto rs = rules({"IF x is lo THEN z is small",
                         "IF y is lo THEN z is mid",
                         "IF x is hi THEN z is large"});
  const RuleBase rb(rs, inputs, output);
  const InferenceEngine engine(inputs, output, rb);
  std::vector<FiredRule> fired;
  engine.infer_traced(std::vector<double>{2.0, 4.0}, fired);
  // x=2: lo=0.8, hi=0.2; y=4: lo=0.6.
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].rule_index, 0u);
  EXPECT_DOUBLE_EQ(fired[0].strength, 0.8);
  EXPECT_EQ(fired[1].rule_index, 1u);
  EXPECT_DOUBLE_EQ(fired[1].strength, 0.6);
  EXPECT_EQ(fired[2].rule_index, 2u);
  EXPECT_DOUBLE_EQ(fired[2].strength, 0.2);
}

TEST_F(InferenceFixture, OutputSetGradeMinImplication) {
  const auto rs = rules({"IF x is lo THEN z is large"});
  const RuleBase rb(rs, inputs, output);
  const InferenceEngine engine(inputs, output, rb);
  const auto res = engine.infer(std::vector<double>{2.0, 0.0});  // act 0.8
  // large is right_shoulder(0.75, 0.5): mu(1.0) = 1 -> clipped to 0.8.
  EXPECT_DOUBLE_EQ(res.grade(output, 1.0), 0.8);
  // At 0.5, mu_large = 0.5 -> min(0.8, 0.5) = 0.5.
  EXPECT_DOUBLE_EQ(res.grade(output, 0.5), 0.5);
}

TEST_F(InferenceFixture, OutputSetGradeProductImplication) {
  const auto rs = rules({"IF x is lo THEN z is large"});
  const RuleBase rb(rs, inputs, output);
  InferenceOptions opt;
  opt.implication = Implication::kProduct;
  const InferenceEngine engine(inputs, output, rb, opt);
  const auto res = engine.infer(std::vector<double>{2.0, 0.0});  // act 0.8
  EXPECT_DOUBLE_EQ(res.grade(output, 0.5), 0.8 * 0.5);
}

TEST_F(InferenceFixture, InferIntoMatchesInfer) {
  const auto rs = rules({"IF x is lo AND y is lo THEN z is small",
                         "IF x is hi AND y is hi THEN z is large",
                         "IF x is lo AND y is hi THEN z is mid"});
  const RuleBase rb(rs, inputs, output);
  const InferenceEngine engine(inputs, output, rb);
  InferenceScratch scratch;
  for (double x = 0.0; x <= 10.0; x += 2.5) {
    for (double y = 0.0; y <= 10.0; y += 2.5) {
      const std::vector<double> in = {x, y};
      const auto legacy = engine.infer(in);
      engine.infer_into(in, scratch);
      ASSERT_EQ(scratch.activations.size(), legacy.activations.size());
      for (std::size_t k = 0; k < legacy.activations.size(); ++k)
        EXPECT_DOUBLE_EQ(scratch.activations[k], legacy.activations[k])
            << "x=" << x << " y=" << y << " term " << k;
    }
  }
}

TEST_F(InferenceFixture, TracedIntoMatchesTraced) {
  const auto rs = rules({"IF x is lo THEN z is small",
                         "IF x is hi THEN z is large",
                         "IF y is hi THEN z is mid"});
  const RuleBase rb(rs, inputs, output);
  const InferenceEngine engine(inputs, output, rb);
  std::vector<FiredRule> fired;
  InferenceScratch scratch;
  const std::vector<double> in = {3.0, 8.0};
  (void)engine.infer_traced(in, fired);
  engine.infer_traced_into(in, scratch);
  ASSERT_EQ(scratch.fired.size(), fired.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(scratch.fired[i].rule_index, fired[i].rule_index);
    EXPECT_DOUBLE_EQ(scratch.fired[i].strength, fired[i].strength);
  }
}

TEST_F(InferenceFixture, ScratchIsReusableAcrossEngines) {
  // A scratch sized by a wide engine must still work for a narrow one and
  // vice versa — buffers are resized logically per call.
  const auto rs1 = rules({"IF x is lo THEN z is small"});
  const RuleBase rb1(rs1, inputs, output);
  const InferenceEngine wide(inputs, output, rb1);

  std::vector<LinguisticVariable> one_input = {inputs[0]};
  const auto r2 = parse_rule("IF x is lo THEN z is large", one_input, output);
  const RuleBase rb2({r2}, one_input, output);
  const InferenceEngine narrow(one_input, output, rb2);

  InferenceScratch scratch;
  wide.infer_into(std::vector<double>{2.0, 3.0}, scratch);
  const auto wide_acts = scratch.activations;
  narrow.infer_into(std::vector<double>{2.0}, scratch);
  wide.infer_into(std::vector<double>{2.0, 3.0}, scratch);
  EXPECT_EQ(scratch.activations, wide_acts);
}

TEST_F(InferenceFixture, WrongInputArityThrows) {
  const auto rs = rules({"IF x is lo THEN z is small"});
  const RuleBase rb(rs, inputs, output);
  const InferenceEngine engine(inputs, output, rb);
  EXPECT_THROW(engine.infer(std::vector<double>{1.0}),
               facsp::ContractViolation);
  EXPECT_THROW(engine.infer(std::vector<double>{1.0, 2.0, 3.0}),
               facsp::ContractViolation);
}

}  // namespace
}  // namespace facsp::fuzzy
