// Cross-validation of the simulator against teletraffic theory: with
// mobility off and a long arrival window, the complete-sharing cell is a
// multi-rate Erlang loss system and must match the Kaufman-Roberts
// solution.  This exercises the entire pipeline (traffic generation,
// event engine, bandwidth ledger, metrics) against an independent oracle.
#include <gtest/gtest.h>

#include "cellular/erlang.h"
#include "core/experiment.h"
#include "core/paper.h"

namespace facsp::core {
namespace {

struct TheoryCase {
  int n_requests;        ///< offered calls over the window
  double window_s;       ///< long => quasi-stationary
  double holding_s;
  const char* label;
};

class SimVsKaufmanRoberts : public ::testing::TestWithParam<TheoryCase> {};

TEST_P(SimVsKaufmanRoberts, AcceptanceMatchesTheory) {
  const TheoryCase& tc = GetParam();

  ScenarioConfig scen = paper_scenario(101);
  scen.enable_mobility = false;  // pure loss system
  scen.traffic.arrival_window_s = tc.window_s;
  scen.traffic.mean_holding_s = tc.holding_s;

  // Simulated acceptance, averaged over replications.
  Experiment exp(scen, make_complete_sharing_factory(), "CS");
  sim::SummaryStats acceptance;
  sim::SummaryStats per_class[3];
  const int reps = 24;
  for (int rep = 0; rep < reps; ++rep) {
    const auto run = exp.run_single(tc.n_requests, rep);
    acceptance.add(run.metrics.acceptance_percent());
    per_class[0].add(
        run.metrics.acceptance_percent(cellular::ServiceClass::kText));
    per_class[1].add(
        run.metrics.acceptance_percent(cellular::ServiceClass::kVoice));
    per_class[2].add(
        run.metrics.acceptance_percent(cellular::ServiceClass::kVideo));
  }

  // Kaufman-Roberts oracle at the same offered rate.
  const double lambda = tc.n_requests / tc.window_s;
  const auto kr = cellular::KaufmanRoberts::for_paper_mix(
      40, scen.traffic.mix, lambda, tc.holding_s);

  // The finite window starts empty (cold start inflates acceptance by
  // ~holding/window); allow that plus Monte-Carlo noise.
  const double tolerance =
      3.0 + 100.0 * tc.holding_s / tc.window_s + acceptance.ci_half_width();
  EXPECT_NEAR(acceptance.mean(), kr.acceptance_percent(), tolerance)
      << tc.label << ": sim=" << acceptance.mean()
      << " theory=" << kr.acceptance_percent();

  // Ordering of per-class blocking must match theory exactly:
  // video blocks most, text least.
  EXPECT_GE(per_class[0].mean(), per_class[1].mean() - 2.0) << tc.label;
  EXPECT_GE(per_class[1].mean(), per_class[2].mean() - 2.0) << tc.label;
  EXPECT_LT(kr.blocking(0), kr.blocking(2));
}

INSTANTIATE_TEST_SUITE_P(
    LoadLevels, SimVsKaufmanRoberts,
    ::testing::Values(
        TheoryCase{60, 6000.0, 300.0, "light (9.7 BU offered)"},
        TheoryCase{160, 6000.0, 300.0, "moderate (~26 BU offered)"},
        TheoryCase{280, 6000.0, 300.0, "heavy (~45 BU offered)"}),
    [](const ::testing::TestParamInfo<TheoryCase>& info) {
      return "N" + std::to_string(info.param.n_requests);
    });

TEST(SimVsErlangB, SingleClassMatchesErlangB) {
  // All-text traffic on a 40-BU cell == M/M/40/40 -> Erlang-B.
  ScenarioConfig scen = paper_scenario(77);
  scen.enable_mobility = false;
  scen.traffic.mix = cellular::TrafficMix{1.0, 0.0, 0.0};
  scen.traffic.arrival_window_s = 4000.0;
  scen.traffic.mean_holding_s = 300.0;

  const int n = 700;  // offered load = 700/4000 * 300 = 52.5 erlangs
  Experiment exp(scen, make_complete_sharing_factory(), "CS");
  sim::SummaryStats acceptance;
  for (int rep = 0; rep < 16; ++rep)
    acceptance.add(exp.run_single(n, rep).metrics.acceptance_percent());

  const double offered = n / 4000.0 * 300.0;
  const double theory = 100.0 * (1.0 - cellular::erlang_b(offered, 40));
  EXPECT_NEAR(acceptance.mean(), theory,
              3.0 + 100.0 * 300.0 / 4000.0 + acceptance.ci_half_width());
}

}  // namespace
}  // namespace facsp::core
