// Parameterized invariant suite: properties every admission policy must
// satisfy on every workload — capacity safety, metric conservation,
// determinism — swept across (policy, load) combinations.
#include <gtest/gtest.h>

#include "cac/threshold.h"
#include "core/experiment.h"
#include "core/paper.h"

namespace facsp::core {
namespace {

struct PolicyCase {
  const char* name;
  PolicyFactory (*make)();
};

PolicyFactory make_cp() {
  return [](const cellular::CellularNetwork&, sim::RngFactory&) {
    return std::unique_ptr<cac::AdmissionPolicy>(
        std::make_unique<cac::CompletePartitioningPolicy>());
  };
}

const PolicyCase kPolicies[] = {
    {"FACSP", [] { return make_facs_p_factory(); }},
    {"FACS", [] { return make_facs_factory(); }},
    {"SCC", [] { return make_scc_factory(); }},
    {"GC", [] { return make_guard_channel_factory(8.0); }},
    {"FGC", [] { return make_fractional_guard_factory(8.0); }},
    {"CS", [] { return make_complete_sharing_factory(); }},
    {"CP", [] { return make_cp(); }},
};

class PolicyInvariants
    : public ::testing::TestWithParam<std::tuple<PolicyCase, int>> {
 protected:
  ScenarioConfig scenario() const {
    ScenarioConfig s = paper_scenario(2024);
    s.traffic.arrival_window_s = 400.0;
    s.traffic.mean_holding_s = 180.0;
    return s;
  }
};

TEST_P(PolicyInvariants, MetricsAreConsistent) {
  const auto& [pc, n] = GetParam();
  Experiment exp(scenario(), pc.make(), pc.name);
  const RunResult r = exp.run_single(n, 0);

  // Every offered call decided; every admitted call resolved.
  EXPECT_EQ(r.metrics.offered_new(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(r.metrics.accepted_new() ,
            r.metrics.completed() + r.metrics.dropped());
  EXPECT_LE(r.metrics.handoff_successes(), r.metrics.handoff_attempts());
  EXPECT_LE(r.metrics.dropped(), r.metrics.handoff_attempts());

  // Percentages in range.
  EXPECT_GE(r.metrics.acceptance_percent(), 0.0);
  EXPECT_LE(r.metrics.acceptance_percent(), 100.0);
  EXPECT_GE(r.metrics.dropping_probability(), 0.0);
  EXPECT_LE(r.metrics.dropping_probability(), 1.0);

  // Physical capacity was never exceeded (time-averaged utilization of a
  // 40-BU cell cannot pass 100%).
  EXPECT_GE(r.center_utilization, 0.0);
  EXPECT_LE(r.center_utilization, 1.0 + 1e-9);
}

TEST_P(PolicyInvariants, DeterministicAcrossRuns) {
  const auto& [pc, n] = GetParam();
  Experiment exp(scenario(), pc.make(), pc.name);
  const RunResult a = exp.run_single(n, 3);
  const RunResult b = exp.run_single(n, 3);
  EXPECT_EQ(a.metrics.accepted_new(), b.metrics.accepted_new());
  EXPECT_EQ(a.metrics.dropped(), b.metrics.dropped());
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.center_utilization, b.center_utilization);
}

TEST_P(PolicyInvariants, HandoffPressureDoesNotBreakAccounting) {
  const auto& [pc, n] = GetParam();
  ScenarioConfig s = scenario();
  s.traffic.fixed_speed_kmh = 110.0;  // maximum handoff churn
  s.traffic.mean_holding_s = 300.0;
  Experiment exp(s, pc.make(), pc.name);
  const RunResult r = exp.run_single(n, 1);
  EXPECT_EQ(r.metrics.accepted_new(),
            r.metrics.completed() + r.metrics.dropped());
  EXPECT_LE(r.center_utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariants,
    ::testing::Combine(::testing::ValuesIn(kPolicies),
                       ::testing::Values(15, 60)),
    [](const ::testing::TestParamInfo<std::tuple<PolicyCase, int>>& info) {
      return std::string(std::get<0>(info.param).name) + "_N" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace facsp::core
