// Paper-claim test under real inter-cell handover traffic: the priority
// mechanism of FACS-P (and its FACS-PR extension) protects on-going
// connections — lower handoff dropping (CDP) than the non-prioritizing
// FACS baseline, bought with an equal-or-modestly-higher new-call blocking
// probability (CBP).
//
// Statistical style follows the PR 3 generator tests: policies run under
// common random numbers (the same replication simulates the same workload
// for every policy), so per-replication *paired* differences cancel the
// workload noise, and the assertions are 4-sigma bounds on the paired
// mean.  Everything is deterministic (fixed seeds), so a pass is a pass
// forever; the margins below were calibrated with z ~ 5.6 headroom.
#include <gtest/gtest.h>

#include "core/multicell.h"
#include "sim/stats.h"
#include "workload/catalog.h"

namespace facsp::core {
namespace {

constexpr int kReps = 32;
constexpr int kN = 250;  // per cell: deep into the contention regime

struct PolicyOutcome {
  std::vector<double> cdp;  ///< per-replication CDP (%)
  std::vector<double> cbp;  ///< per-replication CBP (%)
};

PolicyOutcome run_policy(const ScenarioConfig& scen, const char* name) {
  PolicyOutcome out;
  for (std::uint64_t rep = 0; rep < kReps; ++rep) {
    MultiCellEngine engine(scen, policy_factory_by_name(name), rep);
    const RunResult agg = engine.run(kN).aggregate;
    out.cdp.push_back(100.0 * agg.metrics.dropping_probability());
    out.cbp.push_back(100.0 * agg.metrics.blocking_probability());
  }
  return out;
}

sim::SummaryStats paired_diff(const std::vector<double>& a,
                              const std::vector<double>& b) {
  sim::SummaryStats d;
  for (std::size_t i = 0; i < a.size(); ++i) d.add(a[i] - b[i]);
  return d;
}

TEST(MultiCellPaperClaims, FacsPDropsFewerHandoffsThanFacs) {
  const ScenarioConfig scen =
      workload::catalog_scenario("multicell-handover-storm");
  const PolicyOutcome fp = run_policy(scen, "facs-p");
  const PolicyOutcome f = run_policy(scen, "facs");

  // The scenario actually stresses handovers: FACS drops a visible share.
  sim::SummaryStats f_cdp;
  for (double x : f.cdp) f_cdp.add(x);
  EXPECT_GT(f_cdp.mean(), 1.0);

  // CDP(facs) - CDP(facs-p) > 0 by at least 4 standard errors of the
  // paired difference (measured: ~1.3 +- 0.24, z ~ 5.6).
  const sim::SummaryStats d = paired_diff(f.cdp, fp.cdp);
  EXPECT_GT(d.mean(), 0.0);
  EXPECT_GT(d.mean() - 4.0 * d.std_error(), 0.0)
      << "paired CDP advantage " << d.mean() << " +- " << d.std_error();

  // The price: CBP equal or modestly higher — the paired CBP difference
  // must not show FACS-P *cheating* (blocking fewer new calls than FACS,
  // which would make the CDP win free), and must stay modest (< 10 points).
  const sim::SummaryStats cbp = paired_diff(fp.cbp, f.cbp);
  EXPECT_GT(cbp.mean() + 4.0 * cbp.std_error(), 0.0);
  EXPECT_LT(cbp.mean(), 10.0)
      << "CBP premium " << cbp.mean() << " is not 'modest'";
}

TEST(MultiCellPaperClaims, FacsPrKeepsTheOngoingProtection) {
  // FACS-PR layers requesting-connection priority on top of FACS-P but
  // leaves handoff decisions to the inherited on-going-priority mechanism,
  // so its CDP must not regress past FACS's: the paired difference
  // CDP(facs) - CDP(facs-pr) stays non-negative within 4 standard errors
  // (measured: ~ +0.2 +- 0.37 — statistically level with FACS-P's
  // mechanism, never worse than the baseline).
  const ScenarioConfig scen =
      workload::catalog_scenario("multicell-handover-storm");
  const PolicyOutcome fpr = run_policy(scen, "facs-pr");
  const PolicyOutcome f = run_policy(scen, "facs");

  const sim::SummaryStats d = paired_diff(f.cdp, fpr.cdp);
  EXPECT_GT(d.mean() + 4.0 * d.std_error(), 0.0)
      << "paired CDP difference " << d.mean() << " +- " << d.std_error();

  const sim::SummaryStats cbp = paired_diff(fpr.cbp, f.cbp);
  EXPECT_GT(cbp.mean() + 4.0 * cbp.std_error(), 0.0);
  EXPECT_LT(cbp.mean(), 10.0);
}

}  // namespace
}  // namespace facsp::core
