// Integration tests: small-replication versions of the paper's headline
// qualitative results.  The full-resolution versions live in bench/; these
// assert the *orderings* hold so regressions are caught by ctest.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/paper.h"
#include "core/report.h"

namespace facsp::core {
namespace {

constexpr int kReps = 6;  // enough for orderings, cheap enough for ctest

SweepConfig coarse_sweep() {
  SweepConfig s;
  s.n_values = {10, 25, 50, 75, 100};
  s.replications = kReps;
  return s;
}

sim::Series run_policy(const ScenarioConfig& scen, PolicyFactory factory,
                       const std::string& name,
                       const SweepConfig& sweep = coarse_sweep()) {
  return Experiment(scen, std::move(factory), name)
      .run(sweep)
      .acceptance_series();
}

TEST(PaperShapes, AcceptanceDeclinesWithOfferedLoad) {
  const auto scen = paper_scenario();
  for (auto& [name, factory] :
       std::vector<std::pair<std::string, PolicyFactory>>{
           {"FACS-P", make_facs_p_factory()},
           {"FACS", make_facs_factory()},
           {"SCC", make_scc_factory()}}) {
    const auto series = run_policy(scen, factory, name);
    EXPECT_TRUE(is_non_increasing(series, 6.0)) << name;
    // Near-full acceptance at the lightest load.  A point threshold at low
    // replication counts is seed-fragile (SCC's true mean sits near 85%),
    // so assert it CI-aware: the interval around the mean must reach 85%,
    // and the mean itself must clear a hard sanity floor.
    const double ci10 = series.ci(0).value_or(0.0);
    EXPECT_GT(series.y_at(10) + ci10, 85.0) << name;
    EXPECT_GT(series.y_at(10), 70.0) << name;
    EXPECT_LT(series.y_at(100), 90.0) << name;  // visible contention
  }
}

TEST(PaperShapes, Fig10FacsPAboveFacsAtLowLoadBelowAtHigh) {
  const auto scen = paper_scenario();
  const auto fp = run_policy(scen, make_facs_p_factory(), "FACS-P");
  const auto f = run_policy(scen, make_facs_factory(), "FACS");
  // Low-N: proposed at least matches the previous system.
  EXPECT_GE(fp.y_at(10), f.y_at(10) - 2.0);
  // High-N: the priority mechanism costs new-call acceptance.
  EXPECT_LT(fp.y_at(100), f.y_at(100));
  EXPECT_LT(fp.y_at(75), f.y_at(75));
}

TEST(PaperShapes, Fig7SccFlatterThanFacsAndAboveAtHighLoad) {
  const auto scen = paper_scenario();
  const auto f = run_policy(scen, make_facs_factory(), "FACS");
  const auto scc = run_policy(scen, make_scc_factory(), "SCC");
  // SCC's over-reservation makes its curve flat: smaller total drop.
  const double drop_f = f.y_at(10) - f.y_at(100);
  const double drop_scc = scc.y_at(10) - scc.y_at(100);
  EXPECT_LT(drop_scc, drop_f);
  // At high load SCC accepts more than FACS (paper: ~70% vs ~63%).
  EXPECT_GT(scc.y_at(100), f.y_at(100));
  // At the lightest load FACS is at least on par with SCC.
  EXPECT_GE(f.y_at(10), scc.y_at(10) - 2.0);
}

TEST(PaperShapes, Fig8HigherSpeedHigherAcceptance) {
  SweepConfig sweep;
  sweep.n_values = {60};
  sweep.replications = 10;
  std::vector<double> acceptance;
  for (double v : {4.0, 30.0, 60.0}) {
    const auto scen = paper_scenario_fixed_speed(v);
    acceptance.push_back(
        run_policy(scen, make_facs_p_factory(), "FACS-P", sweep).y_at(60));
  }
  EXPECT_LT(acceptance[0], acceptance[1] + 2.0);
  EXPECT_LT(acceptance[1], acceptance[2] + 2.0);
  EXPECT_GT(acceptance[2], acceptance[0] + 10.0);  // clear separation
}

TEST(PaperShapes, Fig9SmallerAngleHigherAcceptance) {
  SweepConfig sweep;
  sweep.n_values = {50};
  sweep.replications = 10;
  std::vector<double> acceptance;
  for (double angle : {0.0, 50.0, 90.0}) {
    const auto scen = paper_scenario_fixed_angle(angle);
    acceptance.push_back(
        run_policy(scen, make_facs_p_factory(), "FACS-P", sweep).y_at(50));
  }
  EXPECT_GT(acceptance[0], acceptance[1] + 5.0);  // 0 deg clearly best
  EXPECT_GE(acceptance[1], acceptance[2] - 3.0);  // 50 >= 90 (within noise)
}

TEST(PaperShapes, FacsPProtectsOngoingCallsBetterThanFacs) {
  // The paper's motivation: FACS-P keeps the QoS of on-going connections.
  // Its handoff dropping must not exceed FACS's.
  const auto scen = paper_scenario();
  SweepConfig sweep;
  sweep.n_values = {80};
  sweep.replications = 10;
  const auto fp = Experiment(scen, make_facs_p_factory(), "FACS-P")
                      .run(sweep)
                      .dropping_series();
  const auto f = Experiment(scen, make_facs_factory(), "FACS")
                     .run(sweep)
                     .dropping_series();
  EXPECT_LE(fp.y_at(80), f.y_at(80) + 2.0);
}

}  // namespace
}  // namespace facsp::core
