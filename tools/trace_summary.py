#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file and summarise where time went.

The observability layer (``src/obs/trace.h``) emits one complete ("X")
event per scoped span plus "M" thread-name metadata, in the JSON object
format Perfetto and chrome://tracing load directly.  This tool is the CI
gate for that claim: it re-parses the file strictly, rejects anything a
trace viewer would choke on, and prints a per-category breakdown of the
recorded time so a regression in coverage (a category that stopped
emitting) is visible at a glance.

Usage:
  tools/trace_summary.py run.trace.json
  tools/trace_summary.py run.trace.json --require-category serve \
      --require-category fuzzy --min-events 10

Validation rules (exit 1 with a message on the first violation):
  * top level is an object with a ``traceEvents`` list
  * every event is an object with a string ``ph`` of "X" or "M"
  * "X" events carry string ``cat``/``name``, integer ``pid``/``tid``,
    and non-negative numeric ``ts``/``dur``
  * "M" events are ``thread_name`` records with an ``args.name`` string
  * ``--require-category C`` (repeatable) demands >= 1 "X" event of
    category C; ``--min-events N`` demands >= N "X" events in total

Exit status: 0 when the trace is valid and all requirements hold.
``--selftest`` runs the built-in unit checks instead (wired as a ctest).
"""

import argparse
import json
import sys


class TraceError(Exception):
    """The file is not a loadable trace-event JSON."""


def validate(trace):
    """Check the parsed JSON against the trace-event format; return the
    list of "X" events.  Raises TraceError on the first violation."""
    if not isinstance(trace, dict):
        raise TraceError("top level must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise TraceError("'traceEvents' must be a list")
    spans = []
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise TraceError(f"{where}: event must be an object")
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") != "thread_name":
                raise TraceError(f"{where}: unexpected metadata '{ev.get('name')}'")
            args = ev.get("args")
            if not isinstance(args, dict) or not isinstance(args.get("name"), str):
                raise TraceError(f"{where}: thread_name needs args.name string")
            continue
        if ph != "X":
            raise TraceError(f"{where}: unsupported phase '{ph}'")
        for key in ("cat", "name"):
            if not isinstance(ev.get(key), str) or not ev[key]:
                raise TraceError(f"{where}: '{key}' must be a non-empty string")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                raise TraceError(f"{where}: '{key}' must be an integer")
        for key in ("ts", "dur"):
            v = ev.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                raise TraceError(f"{where}: '{key}' must be a non-negative number")
        spans.append(ev)
    return spans


def summarize(spans):
    """Per-category totals: {cat: (count, total_us, max_us)}."""
    out = {}
    for ev in spans:
        count, total, peak = out.get(ev["cat"], (0, 0.0, 0.0))
        out[ev["cat"]] = (count + 1, total + ev["dur"], max(peak, ev["dur"]))
    return out


def print_summary(spans, threads, out=sys.stdout):
    by_cat = summarize(spans)
    print(f"{len(spans)} span events, {threads} thread tracks", file=out)
    print(f"{'category':<12} {'events':>8} {'total_ms':>10} {'max_us':>10}",
          file=out)
    for cat in sorted(by_cat):
        count, total, peak = by_cat[cat]
        print(f"{cat:<12} {count:>8} {total / 1000.0:>10.3f} {peak:>10.1f}",
              file=out)


def check(trace, require_categories=(), min_events=0):
    """Full validation pipeline; returns the span list."""
    spans = validate(trace)
    if len(spans) < min_events:
        raise TraceError(f"expected >= {min_events} span events, got {len(spans)}")
    have = {ev["cat"] for ev in spans}
    for cat in require_categories:
        if cat not in have:
            raise TraceError(
                f"required category '{cat}' has no events "
                f"(present: {sorted(have) or 'none'})")
    return spans


def selftest():
    def ok(trace, **kwargs):
        return check(trace, **kwargs)

    def fails(trace, **kwargs):
        try:
            check(trace, **kwargs)
        except TraceError:
            return
        raise AssertionError(f"expected TraceError for {trace!r}")

    span = {"ph": "X", "pid": 1, "tid": 0, "cat": "serve", "name": "second",
            "ts": 1.5, "dur": 2.25}
    meta = {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
            "args": {"name": "pool-worker-0"}}

    ok({"traceEvents": []})
    ok({"traceEvents": [span, meta]})
    ok({"traceEvents": [span]}, require_categories=["serve"], min_events=1)
    fails([])                                      # not an object
    fails({})                                      # no traceEvents
    fails({"traceEvents": {}})                     # not a list
    fails({"traceEvents": [42]})                   # event not an object
    fails({"traceEvents": [dict(span, ph="B")]})   # unsupported phase
    fails({"traceEvents": [dict(span, cat=7)]})    # cat not a string
    fails({"traceEvents": [dict(span, name="")]})  # empty name
    fails({"traceEvents": [dict(span, tid="0")]})  # tid not an int
    fails({"traceEvents": [dict(span, ts=-1)]})    # negative timestamp
    fails({"traceEvents": [dict(span, dur=True)]})  # bool is not a duration
    fails({"traceEvents": [dict(meta, args={})]})  # unnamed thread
    fails({"traceEvents": [span]}, min_events=2)
    fails({"traceEvents": [span]}, require_categories=["engine"])

    spans = ok({"traceEvents": [span, span, dict(span, cat="fuzzy")]})
    by_cat = summarize(spans)
    assert by_cat["serve"] == (2, 4.5, 2.25), by_cat
    assert by_cat["fuzzy"] == (1, 2.25, 2.25), by_cat

    print("trace_summary selftest: all checks passed")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="validate and summarise a Chrome trace-event JSON file")
    parser.add_argument("trace", nargs="?", help="trace JSON file to check")
    parser.add_argument("--require-category", action="append", default=[],
                        metavar="CAT",
                        help="fail unless >= 1 span of this category exists "
                             "(repeatable)")
    parser.add_argument("--min-events", type=int, default=0, metavar="N",
                        help="fail unless >= N span events exist")
    parser.add_argument("--selftest", action="store_true",
                        help="run built-in unit checks and exit")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if not args.trace:
        parser.error("a trace file is required (or --selftest)")

    try:
        with open(args.trace, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {args.trace}: {e}", file=sys.stderr)
        return 1

    try:
        spans = check(trace, args.require_category, args.min_events)
    except TraceError as e:
        print(f"error: {args.trace}: {e}", file=sys.stderr)
        return 1

    threads = sum(1 for ev in trace["traceEvents"] if ev.get("ph") == "M")
    print_summary(spans, threads)
    return 0


if __name__ == "__main__":
    sys.exit(main())
