#!/usr/bin/env python3
"""Fail when a benchmark regresses past the recorded baseline.

Compares a google-benchmark JSON report (``--benchmark_format=json``)
against the ``current_ns`` values recorded in bench/BENCH_inference.json.
A guarded benchmark fails the check when its fresh per-operation time
exceeds ``factor`` x the recorded baseline (default 1.25, i.e. a 25%
regression budget that absorbs container noise but catches real
regressions such as an accidentally disabled fast path).

For batch benchmarks that report ``items_per_second`` the per-item time
is compared, matching how the baseline file records them.

``--rate`` switches to flat throughput mode for custom-main benches
(bench_multicell's ``FACSP_BENCH_JSON`` output): report and baseline are
both flat ``{"key": number}`` objects, guarded keys are rates
(higher = better), and a key fails when the fresh rate drops below
``baseline / factor``.

Usage:
  bench/bench_inference_micro --benchmark_format=json > /tmp/bench.json
  tools/check_bench_regression.py /tmp/bench.json bench/BENCH_inference.json \
      --bench BM_FacsPDecide [--factor 1.25]
  FACSP_BENCH_JSON=/tmp/mc.json bench/bench_multicell
  tools/check_bench_regression.py /tmp/mc.json bench/BENCH_multicell.json \
      --rate --bench sparse100_events_s --bench sparse1000_events_s

Repetition runs (``--benchmark_repetitions=N`` or ``->Repetitions(N)``)
are handled: aggregate rows (mean/median/stddev) are skipped, the
``/repeats:N`` name suffix is stripped, and the minimum across the
repetitions is compared (the least-noisy estimate of the true cost).

Exit status: 0 when every guarded benchmark is within budget, 1 on
regression or when a guarded benchmark is missing from either file.
``--selftest`` runs the built-in unit checks instead (wired as a ctest).
"""

import argparse
import json
import sys


class ReportError(Exception):
    """A malformed benchmark report entry (bad fields, not a regression)."""


def base_name(name):
    """Benchmark family name: strip the '/repeats:N' segment google-benchmark
    appends when repetitions are requested at registration time, so a guard
    on BM_X matches however the bench was run."""
    return "/".join(p for p in name.split("/") if not p.startswith("repeats:"))


def per_op_ns(entry):
    """Per-operation (per-item for batch benches) time in nanoseconds."""
    name = entry.get("name", "<unnamed>")
    if "items_per_second" in entry:
        ips = entry["items_per_second"]
        # 0.0 (forgot SetItemsProcessed, or a zero-item run) must be a clear
        # diagnostic, not a ZeroDivisionError traceback.
        if not isinstance(ips, (int, float)) or ips <= 0:
            raise ReportError(
                f"{name}: items_per_second is {ips!r}; cannot derive the "
                "per-item time (does the bench call SetItemsProcessed with "
                "a positive count?)"
            )
        return 1e9 / ips
    if "real_time" not in entry or "time_unit" not in entry:
        raise ReportError(f"{name}: entry has no real_time/time_unit")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(entry["time_unit"])
    if scale is None:
        raise ReportError(f"{name}: unknown time_unit '{entry['time_unit']}'")
    return entry["real_time"] * scale


def measured_times(report):
    """Map family name -> min per-op ns across iteration rows."""
    measured = {}
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        name = base_name(entry["name"])
        ns = per_op_ns(entry)
        measured[name] = min(ns, measured.get(name, ns))
    return measured


def check_rates(report, baseline, guarded, factor):
    """Throughput guard (--rate): returns the list of failed keys, printing
    one verdict line per guarded key.  Rates are higher-is-better, so the
    floor is baseline / factor."""
    failed = []
    for name in guarded:
        base = baseline.get(name)
        got = report.get(name)
        if not isinstance(base, (int, float)) or base <= 0:
            print(f"FAIL {name}: no positive baseline rate recorded")
            failed.append(name)
            continue
        if not isinstance(got, (int, float)) or got <= 0:
            print(f"FAIL {name}: missing from benchmark report")
            failed.append(name)
            continue
        floor = base / factor
        verdict = "FAIL" if got < floor else "ok"
        print(
            f"{verdict:4s} {name}: {got:.1f}/s vs baseline {base:.1f}/s "
            f"(floor {floor:.1f})"
        )
        if got < floor:
            failed.append(name)
    return failed


def selftest():
    entries = [
        {"name": "BM_A/repeats:3", "run_type": "iteration",
         "items_per_second": 1e9},
        {"name": "BM_A/repeats:3", "run_type": "iteration",
         "items_per_second": 2e9},
        {"name": "BM_A/repeats:3_mean", "run_type": "aggregate",
         "items_per_second": 1.5e9},
        {"name": "BM_B/64", "run_type": "iteration",
         "real_time": 2.0, "time_unit": "us"},
    ]
    measured = measured_times({"benchmarks": entries})
    assert measured == {"BM_A": 0.5, "BM_B/64": 2000.0}, measured

    for bad in (
        {"name": "BM_C", "items_per_second": 0.0},
        {"name": "BM_C", "items_per_second": None},
        {"name": "BM_C", "real_time": 1.0},  # no time_unit
        {"name": "BM_C", "real_time": 1.0, "time_unit": "h"},
    ):
        try:
            per_op_ns(bad)
        except ReportError:
            pass
        else:
            raise AssertionError(f"accepted malformed entry {bad}")

    assert base_name("BM_X/repeats:5") == "BM_X"
    assert base_name("BM_X/256/repeats:5") == "BM_X/256"
    assert base_name("BM_X/256") == "BM_X/256"

    # --rate mode: within budget, below the floor, missing, bad baseline.
    baseline = {"a_events_s": 1000.0, "b_events_s": 500.0, "bad": 0}
    assert check_rates({"a_events_s": 900.0}, baseline,
                       ["a_events_s"], 1.25) == []
    assert check_rates({"a_events_s": 700.0}, baseline,
                       ["a_events_s"], 1.25) == ["a_events_s"]
    assert check_rates({"a_events_s": 900.0}, baseline,
                       ["b_events_s"], 1.25) == ["b_events_s"]
    assert check_rates({"bad": 5.0}, baseline, ["bad"], 1.25) == ["bad"]
    print("selftest ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in unit checks and exit")
    if "--selftest" in sys.argv[1:]:
        return selftest()
    parser.add_argument("report", help="google-benchmark JSON report")
    parser.add_argument("baseline", help="baseline file (BENCH_inference.json)")
    parser.add_argument(
        "--bench",
        action="append",
        default=None,
        help="benchmark name to guard (repeatable; default: BM_FacsPDecide)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=1.25,
        help="regression budget multiplier over current_ns (default 1.25)",
    )
    parser.add_argument(
        "--rate",
        action="store_true",
        help="flat throughput mode: report/baseline are {key: rate} objects, "
        "fail when a guarded rate drops below baseline / factor",
    )
    args = parser.parse_args()
    guarded = args.bench or ["BM_FacsPDecide"]

    with open(args.report) as f:
        report = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)
    if args.rate:
        return 1 if check_rates(report, baseline, guarded, args.factor) else 0
    baseline = baseline["benchmarks"]

    try:
        measured = measured_times(report)
    except ReportError as e:
        print(f"error: {e}")
        return 1

    failed = False
    for name in guarded:
        if name not in baseline or baseline[name].get("current_ns") is None:
            print(f"FAIL {name}: no current_ns baseline recorded")
            failed = True
            continue
        if name not in measured:
            print(f"FAIL {name}: missing from benchmark report")
            failed = True
            continue
        limit = baseline[name]["current_ns"] * args.factor
        got = measured[name]
        verdict = "FAIL" if got > limit else "ok"
        print(
            f"{verdict:4s} {name}: {got:.1f} ns vs baseline "
            f"{baseline[name]['current_ns']} ns (limit {limit:.1f})"
        )
        failed = failed or got > limit

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
