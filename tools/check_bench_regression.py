#!/usr/bin/env python3
"""Fail when a benchmark regresses past the recorded baseline.

Compares a google-benchmark JSON report (``--benchmark_format=json``)
against the ``current_ns`` values recorded in bench/BENCH_inference.json.
A guarded benchmark fails the check when its fresh per-operation time
exceeds ``factor`` x the recorded baseline (default 1.25, i.e. a 25%
regression budget that absorbs container noise but catches real
regressions such as an accidentally disabled fast path).

For batch benchmarks that report ``items_per_second`` the per-item time
is compared, matching how the baseline file records them.

Usage:
  bench/bench_inference_micro --benchmark_format=json > /tmp/bench.json
  tools/check_bench_regression.py /tmp/bench.json bench/BENCH_inference.json \
      --bench BM_FacsPDecide [--factor 1.25]

Exit status: 0 when every guarded benchmark is within budget, 1 on
regression or when a guarded benchmark is missing from either file.
"""

import argparse
import json
import sys


def per_op_ns(entry):
    """Per-operation (per-item for batch benches) time in nanoseconds."""
    if "items_per_second" in entry:
        return 1e9 / entry["items_per_second"]
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[entry["time_unit"]]
    return entry["real_time"] * scale


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="google-benchmark JSON report")
    parser.add_argument("baseline", help="baseline file (BENCH_inference.json)")
    parser.add_argument(
        "--bench",
        action="append",
        default=None,
        help="benchmark name to guard (repeatable; default: BM_FacsPDecide)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=1.25,
        help="regression budget multiplier over current_ns (default 1.25)",
    )
    args = parser.parse_args()
    guarded = args.bench or ["BM_FacsPDecide"]

    with open(args.report) as f:
        report = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)["benchmarks"]

    measured = {}
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        measured[entry["name"]] = per_op_ns(entry)

    failed = False
    for name in guarded:
        if name not in baseline or baseline[name].get("current_ns") is None:
            print(f"FAIL {name}: no current_ns baseline recorded")
            failed = True
            continue
        if name not in measured:
            print(f"FAIL {name}: missing from benchmark report")
            failed = True
            continue
        limit = baseline[name]["current_ns"] * args.factor
        got = measured[name]
        verdict = "FAIL" if got > limit else "ok"
        print(
            f"{verdict:4s} {name}: {got:.1f} ns vs baseline "
            f"{baseline[name]['current_ns']} ns (limit {limit:.1f})"
        )
        failed = failed or got > limit

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
