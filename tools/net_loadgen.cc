// Load generator / reference client for the decision server's socket
// front-end (docs/serving.md, "Network front-end").
//
//   $ ./decision_server --listen 7001 --shards 4 &
//   $ ./net_loadgen --port 7001 --trace storm.trace.csv
//
// Streams a recorded trace (scenario_runner trace record) over one TCP
// connection in arrival order, interleaving writes with response reads so
// neither side's buffers can deadlock, sends one FLUSH barrier after the
// last request, and reads until the flush echo arrives — at which point
// every decision for this connection has been received.  Prints a one-line
// summary (sent / admitted / dropped / throughput) and exits nonzero on
// any protocol error, server error frame, or response shortfall.
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"
#include "net/frame.h"
#include "net/socket.h"
#include "serve/trace.h"

using namespace facsp;

namespace {

int usage(const char* argv0, FILE* dst) {
  std::fprintf(
      dst,
      "usage: %s --port <port> --trace <trace.csv> [options]\n"
      "\n"
      "  --host <addr>       server address (default 127.0.0.1)\n"
      "  --port <port>       admission port (required)\n"
      "  --trace <file>      recorded trace to stream (required; see\n"
      "                      'scenario_runner trace record')\n"
      "  --repeat <n>        stream the trace n times, each pass shifted\n"
      "                      past the previous one in simulated time\n"
      "                      (default 1)\n"
      "  --timeout <s>       give up if the socket makes no progress for\n"
      "                      this long (default 30)\n"
      "  --quiet             summary line only\n"
      "  --help              this message\n",
      argv0);
  return dst == stderr ? 2 : 0;
}

int parse_int(const std::string& v, const char* what) {
  try {
    std::size_t used = 0;
    const int x = std::stoi(v, &used);
    if (used != v.size()) throw std::invalid_argument("trailing characters");
    return x;
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad ") + what + " '" + v + "'");
  }
}

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Stats {
  std::uint64_t sent = 0;
  std::uint64_t responses = 0;
  std::uint64_t admitted = 0;
  std::uint64_t dropped = 0;
};

int run(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  std::string trace_path;
  int repeat = 1;
  double timeout_s = 30.0;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* what) -> std::string {
      if (i + 1 >= argc)
        throw ConfigError(std::string(what) + " requires a value");
      return argv[++i];
    };
    if (arg == "--help") return usage(argv[0], stdout);
    if (arg == "--host")
      host = value("--host");
    else if (arg == "--port")
      port = parse_int(value("--port"), "--port");
    else if (arg == "--trace")
      trace_path = value("--trace");
    else if (arg == "--repeat")
      repeat = parse_int(value("--repeat"), "--repeat");
    else if (arg == "--timeout")
      timeout_s = std::stod(value("--timeout"));
    else if (arg == "--quiet")
      quiet = true;
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage(argv[0], stderr);
    }
  }
  if (port < 0) throw ConfigError("--port is required");
  if (trace_path.empty()) throw ConfigError("--trace is required");
  if (repeat < 1) throw ConfigError("--repeat must be >= 1");

  const std::vector<serve::StampedRequest> trace =
      serve::read_trace_file(trace_path);
  if (trace.empty()) throw ConfigError("trace '" + trace_path + "' is empty");
  // Each repeat pass starts one whole second past the previous pass's last
  // arrival, so the stream stays nondecreasing (the server enforces it).
  const double pass_shift = std::floor(trace.back().req.now) + 1.0;

  // Pre-encode the full stream: N passes of request frames + one trailing
  // FLUSH barrier.  Encoding up front keeps the socket loop allocation-free
  // and makes throughput numbers about the server, not the client.
  const std::size_t total =
      trace.size() * static_cast<std::size_t>(repeat);
  std::vector<std::uint8_t> out;
  out.resize(total * net::kRequestFrameSize + net::kFlushFrameSize);
  std::uint8_t* w = out.data();
  for (int pass = 0; pass < repeat; ++pass) {
    const double shift = pass_shift * pass;
    for (const serve::StampedRequest& r : trace) {
      serve::StampedRequest shifted = r;
      shifted.req.now += shift;
      net::encode_header(
          {static_cast<std::uint32_t>(net::kRequestPayloadSize),
           net::FrameType::kRequest, net::kProtocolVersion, 0},
          w);
      net::encode_request(shifted, w + net::kHeaderSize);
      w += net::kRequestFrameSize;
    }
  }
  net::encode_header({0, net::FrameType::kFlush, net::kProtocolVersion, 0}, w);

  if (!quiet)
    std::printf("streaming %zu requests (%zu x %d) to %s:%d\n", total,
                trace.size(), repeat, host.c_str(), port);

  net::UniqueFd fd = net::connect_tcp(host, static_cast<std::uint16_t>(port));
  net::set_nonblocking(fd.get());

  Stats stats;
  std::vector<std::uint8_t> in;
  in.reserve(64 * 1024);
  std::size_t in_off = 0;   // parse cursor into `in`
  std::size_t sent = 0;     // bytes of `out` written so far
  bool flushed = false;     // server echoed the FLUSH barrier
  const double t0 = wall_s();
  double last_progress = t0;

  while (!flushed) {
    pollfd p{};
    p.fd = fd.get();
    p.events = POLLIN;
    if (sent < out.size()) p.events |= POLLOUT;
    const int rc = ::poll(&p, 1, 250);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw net::SocketError("poll", host, errno);
    }
    if (rc == 0) {
      if (wall_s() - last_progress > timeout_s)
        throw ConfigError("timed out waiting for the server");
      continue;
    }

    if ((p.revents & POLLOUT) && sent < out.size()) {
      const ssize_t n = ::write(fd.get(), out.data() + sent,
                                out.size() - sent);
      if (n < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
          throw net::SocketError("write", host, errno);
      } else if (n > 0) {
        sent += static_cast<std::size_t>(n);
        last_progress = wall_s();
      }
    }

    if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
      std::uint8_t buf[64 * 1024];
      const ssize_t n = ::read(fd.get(), buf, sizeof buf);
      if (n < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
          throw net::SocketError("read", host, errno);
      } else if (n == 0) {
        throw ConfigError("server closed the connection mid-stream");
      } else {
        in.insert(in.end(), buf, buf + n);
        last_progress = wall_s();
      }
    }

    // Parse every complete frame buffered so far.
    while (in.size() - in_off >= net::kHeaderSize) {
      const net::FrameHeader h = net::decode_header(in.data() + in_off);
      const net::WireError hv = net::validate_header(h);
      if (hv != net::WireError::kNone)
        throw ConfigError(std::string("bad frame from server: ") +
                          net::wire_error_name(hv));
      if (in.size() - in_off < net::kHeaderSize + h.len) break;
      const std::uint8_t* payload = in.data() + in_off + net::kHeaderSize;
      switch (h.type) {
        case net::FrameType::kResponse: {
          net::ResponseFrame r;
          if (net::decode_response(payload, h.len, r) != net::WireError::kNone)
            throw ConfigError("undecodable response frame");
          ++stats.responses;
          if (r.admitted) ++stats.admitted;
          break;
        }
        case net::FrameType::kDropped:
          ++stats.dropped;
          break;
        case net::FrameType::kError: {
          net::ErrorFrame e;
          net::decode_error(payload, h.len, e);
          throw ConfigError(std::string("server error frame: ") +
                            net::wire_error_name(e.code) + " (detail " +
                            std::to_string(e.detail) + ")");
        }
        case net::FrameType::kFlush:
          flushed = true;
          break;
        default:
          throw ConfigError("unexpected frame type from server");
      }
      in_off += net::kHeaderSize + h.len;
      // Reclaim parsed bytes once the buffer has no partial frame tail.
      if (in_off == in.size()) {
        in.clear();
        in_off = 0;
      }
    }
  }
  const double elapsed = wall_s() - t0;
  stats.sent = total;

  std::printf(
      "sent %llu  responses %llu  admitted %llu (%.1f%%)  dropped %llu  "
      "%.3f s  %.0f req/s\n",
      static_cast<unsigned long long>(stats.sent),
      static_cast<unsigned long long>(stats.responses),
      static_cast<unsigned long long>(stats.admitted),
      stats.responses > 0
          ? 100.0 * static_cast<double>(stats.admitted) /
                static_cast<double>(stats.responses)
          : 0.0,
      static_cast<unsigned long long>(stats.dropped), elapsed,
      elapsed > 0 ? static_cast<double>(stats.sent) / elapsed : 0.0);

  if (stats.responses + stats.dropped != stats.sent) {
    std::fprintf(stderr,
                 "error: %llu requests unaccounted for (responses + drops "
                 "!= sent)\n",
                 static_cast<unsigned long long>(
                     stats.sent - stats.responses - stats.dropped));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
