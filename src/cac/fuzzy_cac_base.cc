#include "cac/fuzzy_cac_base.h"

#include "common/expects.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace facsp::cac {

namespace {

struct FuzzyMetrics {
  obs::Counter& decisions;
  obs::Histogram& batch_ns;

  static FuzzyMetrics& get() {
    static FuzzyMetrics m{
        obs::Registry::instance().counter("fuzzy.decisions"),
        obs::Registry::instance().histogram("fuzzy.batch_ns"),
    };
    return m;
  }
};

}  // namespace

FuzzyCacBase::FuzzyCacBase(std::unique_ptr<fuzzy::FuzzyController> flc1,
                           std::unique_ptr<fuzzy::FuzzyController> flc2,
                           double accept_threshold, double handoff_score_bonus)
    : flc1_(std::move(flc1)),
      flc2_(std::move(flc2)),
      accept_threshold_(accept_threshold),
      handoff_score_bonus_(handoff_score_bonus) {
  FACSP_EXPECTS(flc1_ != nullptr && flc2_ != nullptr);
  FACSP_EXPECTS(flc1_->input_count() == 3);
  FACSP_EXPECTS(flc2_->input_count() == 3);
}

double FuzzyCacBase::correction_value(const AdmissionRequest& req) const {
  const double in[3] = {req.speed_kmh, req.angle_deg, flc1_third_input(req)};
  return flc1_->evaluate_with(scratch_, in);
}

void FuzzyCacBase::decide_batch(std::span<const AdmissionRequest> reqs,
                                const cellular::BaseStation& bs,
                                std::span<AdmissionDecision> out) {
  FACSP_EXPECTS(reqs.size() == out.size());
  const std::size_t n = reqs.size();
  if (n == 0) return;

  const bool metrics_on = obs::metrics_enabled();
  obs::ScopedSpan span("fuzzy", "decide_batch", static_cast<std::int64_t>(n),
                       metrics_on ? &FuzzyMetrics::get().batch_ns : nullptr);
  if (metrics_on) FuzzyMetrics::get().decisions.add(n);

  // Stage 1: every request's FLC1 row (speed, angle, third input), batched
  // through the lane kernels.  batch_out receives the Cv per request.
  scratch_.batch_rows.resize(n * 3);
  scratch_.batch_out.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    scratch_.batch_rows[r * 3 + 0] = reqs[r].speed_kmh;
    scratch_.batch_rows[r * 3 + 1] = reqs[r].angle_deg;
    scratch_.batch_rows[r * 3 + 2] = flc1_third_input(reqs[r]);
  }
  flc1_->evaluate_batch_with(scratch_, scratch_.batch_rows,
                             scratch_.batch_out);

  // Stage 2: rebuild the rows in place as FLC2 inputs (Cv, bandwidth,
  // counter state) and batch again.  Both controllers are stateless and
  // counter_state() does not consult the lane scratch, so each score equals
  // the one decide() computes request-by-request.
  for (std::size_t r = 0; r < n; ++r) {
    scratch_.batch_rows[r * 3 + 0] = scratch_.batch_out[r];
    scratch_.batch_rows[r * 3 + 1] = static_cast<double>(reqs[r].bandwidth);
    scratch_.batch_rows[r * 3 + 2] = counter_state(reqs[r], bs);
  }
  flc2_->evaluate_batch_with(scratch_, scratch_.batch_rows,
                             scratch_.batch_out);

  for (std::size_t r = 0; r < n; ++r) {
    double score = scratch_.batch_out[r];
    if (reqs[r].kind == cellular::RequestKind::kHandoff)
      score += handoff_score_bonus_;
    out[r].score = score;
    out[r].verdict = verdict_from_score(score);
    out[r].admitted =
        score > accept_threshold_ && bs.can_fit(reqs[r].bandwidth);
  }
}

AdmissionDecision FuzzyCacBase::decide(const AdmissionRequest& req,
                                       const cellular::BaseStation& bs) {
  const double cv = correction_value(req);
  const double cs = counter_state(req, bs);
  const double in[3] = {cv, static_cast<double>(req.bandwidth), cs};
  double score = flc2_->evaluate_with(scratch_, in);

  // Priority of on-going connections: a handoff *is* an on-going call, so
  // its continuation is favoured over fresh admissions.
  if (req.kind == cellular::RequestKind::kHandoff)
    score += handoff_score_bonus_;

  AdmissionDecision d;
  d.score = score;
  d.verdict = verdict_from_score(score);
  d.admitted = score > accept_threshold_ && bs.can_fit(req.bandwidth);
  return d;
}

}  // namespace facsp::cac
