#include "cac/fuzzy_cac_base.h"

#include "common/expects.h"

namespace facsp::cac {

FuzzyCacBase::FuzzyCacBase(std::unique_ptr<fuzzy::FuzzyController> flc1,
                           std::unique_ptr<fuzzy::FuzzyController> flc2,
                           double accept_threshold, double handoff_score_bonus)
    : flc1_(std::move(flc1)),
      flc2_(std::move(flc2)),
      accept_threshold_(accept_threshold),
      handoff_score_bonus_(handoff_score_bonus) {
  FACSP_EXPECTS(flc1_ != nullptr && flc2_ != nullptr);
  FACSP_EXPECTS(flc1_->input_count() == 3);
  FACSP_EXPECTS(flc2_->input_count() == 3);
}

double FuzzyCacBase::correction_value(const AdmissionRequest& req) const {
  const double in[3] = {req.speed_kmh, req.angle_deg, flc1_third_input(req)};
  return flc1_->evaluate_with(scratch_, in);
}

AdmissionDecision FuzzyCacBase::decide(const AdmissionRequest& req,
                                       const cellular::BaseStation& bs) {
  const double cv = correction_value(req);
  const double cs = counter_state(req, bs);
  const double in[3] = {cv, static_cast<double>(req.bandwidth), cs};
  double score = flc2_->evaluate_with(scratch_, in);

  // Priority of on-going connections: a handoff *is* an on-going call, so
  // its continuation is favoured over fresh admissions.
  if (req.kind == cellular::RequestKind::kHandoff)
    score += handoff_score_bonus_;

  AdmissionDecision d;
  d.score = score;
  d.verdict = verdict_from_score(score);
  d.admitted = score > accept_threshold_ && bs.can_fit(req.bandwidth);
  return d;
}

}  // namespace facsp::cac
