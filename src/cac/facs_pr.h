// FACS-PR — the paper's stated future work, implemented: FACS-P extended
// with *priority of requesting connections*.
//
// The paper closes with: "In this work, we considered only the priority of
// on-going connections.  In the future, we would like to consider also the
// priority of requesting connections."  FACS-PR realises that: each new
// request carries a UserPriority (low / normal / high), and the soft
// accept/reject decision is resolved against a priority-dependent
// threshold — a high-priority request is admitted on a Weak-Accept-or-
// better outlook even under load, while a low-priority one must earn a
// solid Accept.  Everything else (FLC1, FLC2, RTC/NRTC on-going priority,
// handoff bonus) is inherited unchanged from FACS-P, so the delta measured
// by bench_future_work is attributable to requesting-priority alone.
#pragma once

#include "cac/facs_p.h"

namespace facsp::cac {

/// Configuration of FACS-PR.
struct FacsPrConfig {
  /// The underlying FACS-P configuration (on-going priority et al.).
  FacsPConfig base{};
  /// Threshold adjustments per requesting priority, *added* to
  /// base.accept_threshold.  Low demands more, high demands less.
  double low_extra = +0.15;
  double normal_extra = 0.0;
  double high_extra = -0.12;
};

/// FACS-P + priority of requesting connections.
class FacsPrPolicy final : public AdmissionPolicy {
 public:
  explicit FacsPrPolicy(const FacsPrConfig& config = {});

  std::string_view name() const noexcept override { return "FACS-PR"; }

  AdmissionDecision decide(const AdmissionRequest& req,
                           const cellular::BaseStation& bs) override;

  void on_admitted(const AdmissionRequest& req,
                   const cellular::BaseStation& bs) override {
    inner_.on_admitted(req, bs);
  }
  void on_released(cellular::ConnectionId id, cellular::ServiceClass service,
                   const cellular::BaseStation& bs) override {
    inner_.on_released(id, service, bs);
  }
  void on_mobility(cellular::ConnectionId id,
                   const cellular::MobileState& state,
                   sim::SimTime now) override {
    inner_.on_mobility(id, state, now);
  }
  void reset() override { inner_.reset(); }

  const FacsPrConfig& config() const noexcept { return config_; }

  /// The effective accept threshold applied to a given priority.
  double threshold_for(cellular::UserPriority p) const noexcept;

 private:
  FacsPrConfig config_;
  FacsPPolicy inner_;
};

}  // namespace facsp::cac
