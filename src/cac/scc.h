// Shadow Cluster Concept (SCC) — Levine, Akyildiz, Naghshineh,
// IEEE/ACM ToN 1997 (paper ref [16]); the baseline of Fig. 7.
//
// Every active mobile "casts a shadow" of probable future resource demand
// over the cells around its trajectory.  Each base station sums, for a set
// of future time windows, the probability-weighted bandwidth of every active
// mobile landing in its cell; a new call is admitted only if the projected
// demand — including the tentative shadow of the requester itself — stays
// within a capacity threshold for every window and every cell of the
// requester's shadow cluster.  Rejecting new calls this way is how SCC
// "reserves" resources for on-going calls that will hand off soon.
//
// Probability model: the mobile's position at now+tau is projected along its
// estimated heading at its current speed; heading uncertainty is Gaussian
// with the same speed-dependent sigma as the rest of this repository
// (slow => volatile), integrated with 7-point Gauss-Hermite quadrature.
// Call survival over tau is exponential (paper workloads use exponential
// holding times).
#pragma once

#include <unordered_map>
#include <vector>

#include "cac/policy.h"
#include "cellular/network.h"

namespace facsp::cac {

/// SCC tuning parameters.
struct SccConfig {
  /// Number of future windows checked (t = window_s, 2*window_s, ...).
  int windows = 3;
  /// Window length in seconds.
  double window_s = 60.0;
  /// Future windows admit while projected demand <= admit_threshold *
  /// capacity.  Levine et al. hold back a large margin so that predicted
  /// handoffs always find room; the small default makes SCC deny
  /// bandwidth-hungry calls even at light load (its hallmark
  /// over-reservation), while the current instant is only checked
  /// physically.
  double admit_threshold = 0.22;
  /// Mean call holding time used for survival discounting.
  double mean_holding_s = 300.0;
  /// When true (default), projected demand is discounted by the chance the
  /// call ends before the window (exponential holding); false keeps the
  /// fully pessimistic reservation for ablation.
  bool discount_survival = true;
  /// Cells around the target included in the admission check (the shadow
  /// cluster's reach): 1 = target + direct neighbours.
  int cluster_radius = 1;
  /// Heading-uncertainty model (same shape as DirectionPredictor).
  double heading_sigma_base_deg = 48.0;
  double heading_reference_kmh = 18.0;
  /// Tentative-cluster semantics (Levine Sec. III): every BS the new call
  /// may reach must be able to support it, so the requester is counted at
  /// FULL bandwidth in each cell whose reach probability exceeds
  /// `reach_probability_min`.  Set false to probability-weight the
  /// requester instead (optimistic variant, for ablation).
  bool tentative_full_bandwidth = true;
  double reach_probability_min = 0.05;

  /// Throws facsp::ConfigError on invalid values.
  void validate() const;
};

/// The SCC admission policy.
class SccPolicy final : public AdmissionPolicy {
 public:
  /// The network is used for cell geometry and neighbourhood lookups and
  /// must outlive the policy.
  SccPolicy(const cellular::CellularNetwork& network, SccConfig config = {});

  std::string_view name() const noexcept override { return "SCC"; }

  AdmissionDecision decide(const AdmissionRequest& req,
                           const cellular::BaseStation& bs) override;

  void on_admitted(const AdmissionRequest& req,
                   const cellular::BaseStation& bs) override;
  void on_released(cellular::ConnectionId id, cellular::ServiceClass service,
                   const cellular::BaseStation& bs) override;
  void on_mobility(cellular::ConnectionId id,
                   const cellular::MobileState& state,
                   sim::SimTime now) override;
  void reset() override;

  /// Probability that a mobile in `state` is inside `cell` after `tau`
  /// seconds (ignoring call termination).  Exposed for tests.
  double cell_probability(const cellular::MobileState& state,
                          const cellular::HexCoord& cell, double tau) const;

  /// Projected demand (BU) on `cell` at now+tau from all current actives.
  double projected_demand(const cellular::HexCoord& cell, double tau) const;

  std::size_t active_count() const noexcept { return actives_.size(); }

  const SccConfig& config() const noexcept { return config_; }

 private:
  struct Active {
    cellular::MobileState state;
    cellular::Bandwidth bw;
  };

  double heading_sigma_deg(double speed_kmh) const noexcept;
  double survival(double tau) const noexcept;

  const cellular::CellularNetwork& network_;
  SccConfig config_;
  std::unordered_map<cellular::ConnectionId, Active> actives_;
};

}  // namespace facsp::cac
