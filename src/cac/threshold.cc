#include "cac/threshold.h"

#include "common/error.h"
#include "common/math_util.h"

namespace facsp::cac {

cellular::Bandwidth Partition::quota(cellular::ServiceClass s) const noexcept {
  switch (s) {
    case cellular::ServiceClass::kText: return text_bu;
    case cellular::ServiceClass::kVoice: return voice_bu;
    case cellular::ServiceClass::kVideo: return video_bu;
  }
  return 0.0;  // unreachable
}

CompletePartitioningPolicy::CompletePartitioningPolicy(Partition partition)
    : partition_(partition) {
  if (partition_.text_bu < 0.0 || partition_.voice_bu < 0.0 ||
      partition_.video_bu < 0.0)
    throw ConfigError("complete partitioning: quotas must be >= 0");
  if (partition_.total() <= 0.0)
    throw ConfigError("complete partitioning: at least one quota must be > 0");
}

AdmissionDecision CompletePartitioningPolicy::decide(
    const AdmissionRequest& req, const cellular::BaseStation& bs) {
  const auto idx = static_cast<std::size_t>(req.service);
  const auto& per = state_[bs.id()];
  const double quota = partition_.quota(req.service);
  const double after = per.used[idx] + req.bandwidth;

  AdmissionDecision d;
  const bool quota_ok = after <= quota + 1e-9;
  const bool fits = bs.can_fit(req.bandwidth);
  d.admitted = quota_ok && fits;
  d.score = clamp(2.0 * (quota - after) / (quota > 0.0 ? quota : 1.0), -1.0,
                  1.0);
  d.verdict = verdict_from_score(d.score);
  if (!d.admitted) d.verdict = Verdict::kReject;
  return d;
}

void CompletePartitioningPolicy::on_admitted(const AdmissionRequest& req,
                                             const cellular::BaseStation& bs) {
  auto& per = state_[bs.id()];
  per.used[static_cast<std::size_t>(req.service)] += req.bandwidth;
  per.owner[req.id] = {req.service, req.bandwidth};
}

void CompletePartitioningPolicy::on_released(cellular::ConnectionId id,
                                             cellular::ServiceClass /*service*/,
                                             const cellular::BaseStation& bs) {
  auto& per = state_[bs.id()];
  const auto it = per.owner.find(id);
  if (it == per.owner.end()) return;
  const auto [service, bw] = it->second;
  auto& used = per.used[static_cast<std::size_t>(service)];
  used -= bw;
  if (used < 1e-9) used = 0.0;
  per.owner.erase(it);
}

void CompletePartitioningPolicy::reset() { state_.clear(); }

cellular::Bandwidth CompletePartitioningPolicy::used(
    cellular::BaseStationId bs, cellular::ServiceClass s) const {
  const auto it = state_.find(bs);
  if (it == state_.end()) return 0.0;
  return it->second.used[static_cast<std::size_t>(s)];
}

}  // namespace facsp::cac
