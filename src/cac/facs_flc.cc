#include "cac/facs_flc.h"

#include <algorithm>

#include "common/error.h"
#include "fuzzy/builder.h"

namespace facsp::cac {

using fuzzy::ControllerBuilder;
using fuzzy::LinguisticVariable;
using fuzzy::VariableBuilder;

const std::vector<std::string>& frb1_consequents() {
  // Paper Table 1, verbatim.  Row order: Sp (Sl, Mi, Fa) outermost, then
  // An (B1, L1, L2, St, R1, R2, B2), then Sr (Sm, Me, Bi) fastest.
  static const std::vector<std::string> kTable = {
      // Sl
      "Cv1", "Cv3", "Cv2",  // B1
      "Cv1", "Cv4", "Cv3",  // L1
      "Cv2", "Cv6", "Cv4",  // L2
      "Cv5", "Cv9", "Cv7",  // St
      "Cv2", "Cv6", "Cv4",  // R1
      "Cv1", "Cv4", "Cv3",  // R2
      "Cv1", "Cv3", "Cv2",  // B2
      // Mi
      "Cv1", "Cv2", "Cv1",  // B1
      "Cv1", "Cv4", "Cv3",  // L1
      "Cv1", "Cv5", "Cv3",  // L2
      "Cv8", "Cv9", "Cv9",  // St
      "Cv1", "Cv5", "Cv3",  // R1
      "Cv1", "Cv4", "Cv3",  // R2
      "Cv1", "Cv2", "Cv1",  // B2
      // Fa
      "Cv1", "Cv2", "Cv1",  // B1
      "Cv1", "Cv3", "Cv2",  // L1
      "Cv2", "Cv5", "Cv3",  // L2
      "Cv9", "Cv9", "Cv9",  // St
      "Cv2", "Cv5", "Cv3",  // R1
      "Cv1", "Cv3", "Cv2",  // R2
      "Cv1", "Cv2", "Cv1",  // B2
  };
  return kTable;
}

std::vector<std::string> frb1_distance_consequents(
    const Flc1DistanceParams& params) {
  // Derived for the previous FACS (see header comment): base level from
  // Table 1's voice (Me) column per (Sp, An), then the configured Near /
  // Middle / Far level shifts, clamped to [1, 9].
  constexpr int kBase[3][7] = {
      {3, 4, 6, 9, 6, 4, 3},  // Sl
      {2, 4, 5, 9, 5, 4, 2},  // Mi
      {2, 3, 5, 9, 5, 3, 2},  // Fa
  };
  const int deltas[3] = {params.near_delta, params.mid_delta,
                         params.far_delta};
  std::vector<std::string> t;
  t.reserve(63);
  for (int sp = 0; sp < 3; ++sp) {
    for (int an = 0; an < 7; ++an) {
      for (int delta : deltas) {  // Ne, Md, Fr
        const int level = std::clamp(kBase[sp][an] + delta, 1, 9);
        t.push_back("Cv" + std::to_string(level));
      }
    }
  }
  return t;
}

const std::vector<std::string>& frb2_consequents() {
  // Paper Table 2, verbatim.  Row order: Cv (Bd, No, Go) outermost, then
  // Rq (Tx, Vo, Vi), then Cs (Sa, Md, Fu) fastest.
  static const std::vector<std::string> kTable = {
      // Bd
      "A", "NRNA", "NRNA",  // Tx
      "A", "NRNA", "WR",    // Vo
      "WA", "NRNA", "WR",   // Vi
      // No
      "A", "NRNA", "NRNA",  // Tx
      "A", "NRNA", "NRNA",  // Vo
      "WA", "NRNA", "NRNA", // Vi
      // Go
      "A", "A", "NRNA",     // Tx
      "A", "A", "WR",       // Vo
      "A", "A", "R",        // Vi
  };
  return kTable;
}

LinguisticVariable make_speed_variable(const Flc1Params& p) {
  return VariableBuilder("Sp", 0.0, p.speed_max)
      .left_shoulder("Sl", 0.0, p.speed_slow_zero)
      .triangular("Mi", p.speed_mid_center, p.speed_mid_width,
                  p.speed_mid_width)
      .right_shoulder("Fa", p.speed_fast_plateau, p.speed_fast_rise)
      .build();
}

LinguisticVariable make_angle_variable(const Flc1Params& p) {
  const double s = p.angle_step;
  return VariableBuilder("An", -180.0, 180.0)
      .left_shoulder("B1", -3.0 * s, s)        // plateau ..-135, falls to -90
      .triangular("L1", -2.0 * s, s, s)        // -90
      .triangular("L2", -1.0 * s, s, s)        // -45
      .triangular("St", 0.0, s, s)             // 0
      .triangular("R1", 1.0 * s, s, s)         // 45
      .triangular("R2", 2.0 * s, s, s)         // 90
      .right_shoulder("B2", 3.0 * s, s)        // 135.. plateau
      .build();
}

LinguisticVariable make_service_request_variable(const Flc1Params& p) {
  return VariableBuilder("Sr", 0.0, p.sr_max)
      .left_shoulder("Sm", 0.0, p.sr_small_zero)
      .triangular("Me", p.sr_med_center, p.sr_med_width, p.sr_med_width)
      .right_shoulder("Bi", p.sr_big_plateau, p.sr_big_rise)
      .build();
}

LinguisticVariable make_distance_variable(const Flc1DistanceParams& p) {
  const double R = p.cell_radius_m;
  if (R <= 0.0) throw ConfigError("distance variable: cell radius must be > 0");
  return VariableBuilder("Di", 0.0, p.max_frac * R)
      .left_shoulder("Ne", p.near_frac * R, p.edge_width_frac * R)
      .triangular("Md", p.mid_frac * R, p.edge_width_frac * R,
                  p.edge_width_frac * R)
      .right_shoulder("Fr", R, p.edge_width_frac * R)
      .build();
}

LinguisticVariable make_correction_output_variable(const Flc1Params& p) {
  if (p.cv_terms < 2)
    throw ConfigError("correction variable: need at least 2 terms");
  return VariableBuilder("Cv", 0.0, 1.0)
      .uniform_partition("Cv", p.cv_terms)
      .build();
}

LinguisticVariable make_correction_input_variable(const Flc2Params& p) {
  const double c = p.cv_normal_center;
  return VariableBuilder("Cv", 0.0, 1.0)
      .left_shoulder("Bd", 0.0, c)
      .triangular("No", c, c, 1.0 - c)
      .right_shoulder("Go", 1.0, 1.0 - c)
      .build();
}

LinguisticVariable make_request_type_variable(const Flc2Params& p) {
  const double v = p.rq_voice_center;
  return VariableBuilder("Rq", 0.0, p.rq_max)
      .left_shoulder("Tx", 0.0, v)
      .triangular("Vo", v, v, p.rq_max - v)
      .right_shoulder("Vi", p.rq_max, p.rq_max - v)
      .build();
}

LinguisticVariable make_counter_state_variable(const Flc2Params& p) {
  const double m = p.cs_mid_center;
  return VariableBuilder("Cs", 0.0, p.cs_max)
      .left_shoulder("Sa", 0.0, m)
      .triangular("Md", m, m, p.cs_max - m)
      .right_shoulder("Fu", p.cs_max, p.cs_max - m)
      .build();
}

LinguisticVariable make_accept_reject_variable(const Flc2Params& p) {
  const double s = p.ar_step;
  return VariableBuilder("AR", -1.0, 1.0)
      .left_shoulder("R", -2.0 * s, s)
      .triangular("WR", -s, s, s)
      .triangular("NRNA", 0.0, s, s)
      .triangular("WA", s, s, s)
      .right_shoulder("A", 2.0 * s, s)
      .build();
}

std::unique_ptr<fuzzy::FuzzyController> make_flc1(
    const Flc1Params& params, fuzzy::InferenceOptions inference,
    fuzzy::Defuzzifier defuzz) {
  return ControllerBuilder("FLC1")
      .input(make_speed_variable(params))
      .input(make_angle_variable(params))
      .input(make_service_request_variable(params))
      .output(make_correction_output_variable(params))
      .rule_table(frb1_consequents())
      .inference(inference)
      .defuzzifier(defuzz)
      .build();
}

std::unique_ptr<fuzzy::FuzzyController> make_flc1_distance(
    const Flc1DistanceParams& params, fuzzy::InferenceOptions inference,
    fuzzy::Defuzzifier defuzz) {
  return ControllerBuilder("FLC1-D")
      .input(make_speed_variable(params.base))
      .input(make_angle_variable(params.base))
      .input(make_distance_variable(params))
      .output(make_correction_output_variable(params.base))
      .rule_table(frb1_distance_consequents(params))
      .inference(inference)
      .defuzzifier(defuzz)
      .build();
}

std::unique_ptr<fuzzy::FuzzyController> make_flc2(
    const Flc2Params& params, fuzzy::InferenceOptions inference,
    fuzzy::Defuzzifier defuzz) {
  return ControllerBuilder("FLC2")
      .input(make_correction_input_variable(params))
      .input(make_request_type_variable(params))
      .input(make_counter_state_variable(params))
      .output(make_accept_reject_variable(params))
      .rule_table(frb2_consequents())
      .inference(inference)
      .defuzzifier(defuzz)
      .build();
}

std::unique_ptr<fuzzy::SugenoController> make_sugeno_flc2(
    const Flc2Params& params) {
  std::vector<fuzzy::LinguisticVariable> inputs;
  inputs.push_back(make_correction_input_variable(params));
  inputs.push_back(make_request_type_variable(params));
  inputs.push_back(make_counter_state_variable(params));

  // Crisp levels: core centres of the A/R output terms (shoulders at 0.8).
  auto level = [](const std::string& term) {
    if (term == "A") return 0.8;
    if (term == "WA") return 0.3;
    if (term == "NRNA") return 0.0;
    if (term == "WR") return -0.3;
    return -0.8;  // "R"
  };

  const auto& table = frb2_consequents();
  std::vector<fuzzy::SugenoRule> rules;
  rules.reserve(table.size());
  std::size_t n = 0;
  for (std::size_t cv = 0; cv < 3; ++cv)
    for (std::size_t rq = 0; rq < 3; ++rq)
      for (std::size_t cs = 0; cs < 3; ++cs) {
        fuzzy::SugenoRule r;
        r.antecedents = {cv, rq, cs};
        r.constant = level(table[n++]);
        rules.push_back(std::move(r));
      }
  return std::make_unique<fuzzy::SugenoController>(
      "FLC2-sugeno", std::move(inputs), std::move(rules),
      fuzzy::TNorm::kProduct);
}

}  // namespace facsp::cac
