#include "cac/scc.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.h"
#include "common/expects.h"
#include "common/math_util.h"

namespace facsp::cac {

namespace {

// 7-point Gauss-Hermite quadrature for E[f(X)], X ~ N(0,1):
// E[f(X)] ~= sum_i w_i * f(sqrt(2) * t_i), weights normalised by 1/sqrt(pi).
struct GhNode {
  double t;
  double w;
};
constexpr std::array<GhNode, 7> kGaussHermite = {{
    {-2.651961356835233, 0.0009717812450995192 / 1.7724538509055160},
    {-1.673551628767471, 0.05451558281912703 / 1.7724538509055160},
    {-0.8162878828589647, 0.4256072526101278 / 1.7724538509055160},
    {0.0, 0.8102646175568073 / 1.7724538509055160},
    {0.8162878828589647, 0.4256072526101278 / 1.7724538509055160},
    {1.673551628767471, 0.05451558281912703 / 1.7724538509055160},
    {2.651961356835233, 0.0009717812450995192 / 1.7724538509055160},
}};

}  // namespace

void SccConfig::validate() const {
  if (windows < 1) throw ConfigError("scc: windows must be >= 1");
  if (window_s <= 0.0) throw ConfigError("scc: window_s must be > 0");
  if (admit_threshold <= 0.0 || admit_threshold > 1.0)
    throw ConfigError("scc: admit_threshold must be in (0, 1]");
  if (mean_holding_s <= 0.0)
    throw ConfigError("scc: mean_holding_s must be > 0");
  if (cluster_radius < 0) throw ConfigError("scc: cluster_radius must be >= 0");
  if (heading_sigma_base_deg < 0.0 || heading_reference_kmh <= 0.0)
    throw ConfigError("scc: heading model parameters invalid");
}

SccPolicy::SccPolicy(const cellular::CellularNetwork& network,
                     SccConfig config)
    : network_(network), config_(config) {
  config_.validate();
}

double SccPolicy::heading_sigma_deg(double speed_kmh) const noexcept {
  const double s = std::max(0.0, speed_kmh);
  return config_.heading_sigma_base_deg * config_.heading_reference_kmh /
         (s + config_.heading_reference_kmh);
}

double SccPolicy::survival(double tau) const noexcept {
  if (!config_.discount_survival) return 1.0;
  return std::exp(-tau / config_.mean_holding_s);
}

double SccPolicy::cell_probability(const cellular::MobileState& state,
                                   const cellular::HexCoord& cell,
                                   double tau) const {
  FACSP_EXPECTS(tau >= 0.0);
  const double v_ms = state.speed_kmh / 3.6;
  const double sigma = heading_sigma_deg(state.speed_kmh);
  // Heading diffuses over time: after tau seconds of random steering the
  // accumulated deviation grows like sqrt(tau / 60 s) of the per-minute
  // volatility — slow users' shadows widen much faster than vehicles'.
  const double spread = sigma * std::sqrt(std::max(tau, 1.0) / 60.0);

  double p = 0.0;
  for (const GhNode& node : kGaussHermite) {
    const double h = deg_to_rad(
        state.heading_deg + std::sqrt(2.0) * spread * node.t);
    const cellular::Point proj{state.position.x + v_ms * tau * std::cos(h),
                               state.position.y + v_ms * tau * std::sin(h)};
    if (network_.layout().cell_at(proj) == cell) p += node.w;
  }
  return std::min(p, 1.0);
}

double SccPolicy::projected_demand(const cellular::HexCoord& cell,
                                   double tau) const {
  double demand = 0.0;
  const double surv = survival(tau);
  for (const auto& [id, a] : actives_)
    demand += cell_probability(a.state, cell, tau) * a.bw * surv;
  return demand;
}

AdmissionDecision SccPolicy::decide(const AdmissionRequest& req,
                                    const cellular::BaseStation& bs) {
  AdmissionDecision d;
  if (!bs.can_fit(req.bandwidth)) {
    d.admitted = false;
    d.score = -1.0;
    d.verdict = Verdict::kReject;
    return d;
  }

  // Capacity headroom check for every cell of the requester's shadow
  // cluster over every future window, with the requester's own tentative
  // shadow included.
  double worst_margin = 1.0;  // fraction of capacity left, worst case
  const auto cluster =
      cellular::hex_disc(bs.coord(), config_.cluster_radius);
  for (int k = 1; k <= config_.windows; ++k) {
    const double tau = k * config_.window_s;
    const double surv = survival(tau);
    for (const cellular::HexCoord& cell : cluster) {
      const cellular::BaseStation* target = network_.station_at(cell);
      if (target == nullptr) continue;  // outside the modelled disc
      const double p_reach = cell_probability(req.mobile, cell, tau);
      const double req_share =
          config_.tentative_full_bandwidth
              ? (p_reach > config_.reach_probability_min ? req.bandwidth
                                                         : p_reach *
                                                               req.bandwidth)
              : p_reach * req.bandwidth * surv;
      double demand = projected_demand(cell, tau) + req_share;
      // A handoff requester is still registered as an active mobile (its
      // source-cell release happens only after admission); subtract its
      // existing shadow so it is not counted twice.
      if (const auto it = actives_.find(req.id); it != actives_.end())
        demand -= cell_probability(it->second.state, cell, tau) *
                  it->second.bw * surv;
      const double cap = config_.admit_threshold * target->capacity();
      const double margin = (cap - demand) / target->capacity();
      worst_margin = std::min(worst_margin, margin);
    }
  }

  // Current instant (tau = 0): only the physical fit constrains admission —
  // reservation margins apply to *future* windows.
  {
    const double now_margin =
        (bs.capacity() - (bs.load().used + req.bandwidth)) / bs.capacity();
    worst_margin = std::min(worst_margin, now_margin);
  }

  d.score = clamp(worst_margin * 2.0, -1.0, 1.0);  // margin -> [-1, 1] score
  d.admitted = worst_margin >= 0.0;
  d.verdict = verdict_from_score(d.score);
  return d;
}

void SccPolicy::on_admitted(const AdmissionRequest& req,
                            const cellular::BaseStation& /*bs*/) {
  actives_[req.id] = Active{req.mobile, req.bandwidth};
}

void SccPolicy::on_released(cellular::ConnectionId id,
                            cellular::ServiceClass /*service*/,
                            const cellular::BaseStation& /*bs*/) {
  // A handoff releases on the source BS and re-admits on the target; the
  // re-admission path goes through decide()/on_admitted() which refreshes
  // the entry, so erasing here is correct for completions and safe for
  // handoffs (on_admitted re-inserts).
  actives_.erase(id);
}

void SccPolicy::on_mobility(cellular::ConnectionId id,
                            const cellular::MobileState& state,
                            sim::SimTime /*now*/) {
  const auto it = actives_.find(id);
  if (it != actives_.end()) it->second.state = state;
}

void SccPolicy::reset() { actives_.clear(); }

}  // namespace facsp::cac
