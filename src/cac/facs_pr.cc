#include "cac/facs_pr.h"

#include "common/error.h"

namespace facsp::cac {

FacsPrPolicy::FacsPrPolicy(const FacsPrConfig& config)
    : config_(config), inner_(config.base) {
  if (config_.low_extra < config_.normal_extra ||
      config_.normal_extra < config_.high_extra)
    throw ConfigError(
        "facs-pr: threshold extras must order low >= normal >= high "
        "(higher priority must not face a stricter threshold)");
}

double FacsPrPolicy::threshold_for(cellular::UserPriority p) const noexcept {
  double extra = config_.normal_extra;
  switch (p) {
    case cellular::UserPriority::kLow: extra = config_.low_extra; break;
    case cellular::UserPriority::kNormal: extra = config_.normal_extra; break;
    case cellular::UserPriority::kHigh: extra = config_.high_extra; break;
  }
  return config_.base.accept_threshold + extra;
}

AdmissionDecision FacsPrPolicy::decide(const AdmissionRequest& req,
                                       const cellular::BaseStation& bs) {
  // Run the full FACS-P cascade for the crisp score, then re-resolve the
  // admission against the priority-dependent threshold.  Handoffs keep
  // FACS-P's decision untouched: on-going-connection priority already
  // governs them, and requesting-priority is a *new-call* concept.
  AdmissionDecision d = inner_.decide(req, bs);
  if (req.kind == cellular::RequestKind::kHandoff) return d;
  d.admitted = d.score > threshold_for(req.priority) &&
               bs.can_fit(req.bandwidth);
  return d;
}

}  // namespace facsp::cac
