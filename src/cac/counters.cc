#include "cac/counters.h"

#include "common/error.h"
#include "common/expects.h"

namespace facsp::cac {

DifferentiatedCounters::DifferentiatedCounters(PriorityWeights weights)
    : weights_(weights) {
  if (weights_.real_time < 1.0 || weights_.non_real_time < 1.0 ||
      weights_.handoff_bonus < 1.0)
    throw ConfigError(
        "priority weights must be >= 1 (they inflate, never deflate, "
        "protected load)");
}

void DifferentiatedCounters::add(cellular::ConnectionId id,
                                 cellular::ServiceClass service,
                                 cellular::Bandwidth bw, bool via_handoff) {
  FACSP_EXPECTS(bw > 0.0);
  FACSP_EXPECTS_MSG(!entries_.contains(id),
                    "connection " << id << " already counted");
  const bool rt = cellular::is_real_time(service);
  entries_.emplace(id, Entry{bw, rt, via_handoff});
  if (rt) {
    rt_bw_ += bw;
    ++rt_n_;
  } else {
    nrt_bw_ += bw;
    ++nrt_n_;
  }
  double w = rt ? weights_.real_time : weights_.non_real_time;
  if (via_handoff) w *= weights_.handoff_bonus;
  weighted_ += w * bw;
}

void DifferentiatedCounters::remove(cellular::ConnectionId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  const Entry e = it->second;
  entries_.erase(it);
  if (e.real_time) {
    rt_bw_ -= e.bw;
    --rt_n_;
  } else {
    nrt_bw_ -= e.bw;
    --nrt_n_;
  }
  double w = e.real_time ? weights_.real_time : weights_.non_real_time;
  if (e.via_handoff) w *= weights_.handoff_bonus;
  weighted_ -= w * e.bw;
  if (rt_bw_ < 1e-9) rt_bw_ = 0.0;
  if (nrt_bw_ < 1e-9) nrt_bw_ = 0.0;
  if (weighted_ < 1e-9) weighted_ = 0.0;
}

cellular::Bandwidth DifferentiatedCounters::effective_occupancy()
    const noexcept {
  return weighted_;
}

void DifferentiatedCounters::clear() {
  entries_.clear();
  rt_bw_ = nrt_bw_ = weighted_ = 0.0;
  rt_n_ = nrt_n_ = 0;
}

}  // namespace facsp::cac
