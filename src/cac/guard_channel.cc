#include "cac/guard_channel.h"

#include <algorithm>

#include "common/error.h"
#include "common/math_util.h"

namespace facsp::cac {

namespace {

AdmissionDecision margin_decision(bool admitted, double margin_fraction) {
  AdmissionDecision d;
  d.admitted = admitted;
  d.score = clamp(margin_fraction * 2.0, -1.0, 1.0);
  d.verdict = verdict_from_score(d.score);
  if (!admitted) d.verdict = Verdict::kReject;
  return d;
}

}  // namespace

AdmissionDecision CompleteSharingPolicy::decide(
    const AdmissionRequest& req, const cellular::BaseStation& bs) {
  const bool fits = bs.can_fit(req.bandwidth);
  const double margin = (bs.free() - req.bandwidth) / bs.capacity();
  return margin_decision(fits, margin);
}

GuardChannelPolicy::GuardChannelPolicy(cellular::Bandwidth guard_bu)
    : guard_(guard_bu) {
  if (guard_bu < 0.0)
    throw ConfigError("guard channel: guard bandwidth must be >= 0");
}

AdmissionDecision GuardChannelPolicy::decide(const AdmissionRequest& req,
                                             const cellular::BaseStation& bs) {
  const bool fits = bs.can_fit(req.bandwidth);
  if (req.kind == cellular::RequestKind::kHandoff) {
    const double margin = (bs.free() - req.bandwidth) / bs.capacity();
    return margin_decision(fits, margin);
  }
  const double effective_free = bs.free() - guard_;
  const bool admitted = fits && req.bandwidth <= effective_free + 1e-9;
  return margin_decision(admitted,
                         (effective_free - req.bandwidth) / bs.capacity());
}

FractionalGuardChannelPolicy::FractionalGuardChannelPolicy(
    cellular::Bandwidth guard_bu, sim::RandomStream rng)
    : guard_(guard_bu), rng_(rng) {
  if (guard_bu < 0.0)
    throw ConfigError("fractional guard channel: guard bandwidth must be >= 0");
}

AdmissionDecision FractionalGuardChannelPolicy::decide(
    const AdmissionRequest& req, const cellular::BaseStation& bs) {
  const bool fits = bs.can_fit(req.bandwidth);
  const double margin = (bs.free() - req.bandwidth) / bs.capacity();
  if (req.kind == cellular::RequestKind::kHandoff || guard_ <= 0.0)
    return margin_decision(fits, margin);

  // Free bandwidth after this call, relative to the guard region: >= guard
  // -> always admit; <= 0 -> never; in between -> linear acceptance prob.
  const double after = bs.free() - req.bandwidth;
  double p = clamp(after / guard_, 0.0, 1.0);
  const bool admitted = fits && rng_.bernoulli(p);
  return margin_decision(admitted, margin * p);
}

}  // namespace facsp::cac
