#include "cac/policy.h"

namespace facsp::cac {

Verdict verdict_from_score(double score) noexcept {
  if (score > 0.45) return Verdict::kAccept;
  if (score > 0.15) return Verdict::kWeakAccept;
  if (score >= -0.15) return Verdict::kNeutral;
  if (score >= -0.45) return Verdict::kWeakReject;
  return Verdict::kReject;
}

std::string_view to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kReject: return "R";
    case Verdict::kWeakReject: return "WR";
    case Verdict::kNeutral: return "NRNA";
    case Verdict::kWeakAccept: return "WA";
    case Verdict::kAccept: return "A";
  }
  return "R";
}

}  // namespace facsp::cac
