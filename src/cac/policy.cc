#include "cac/policy.h"

#include "common/expects.h"

namespace facsp::cac {

void AdmissionPolicy::decide_batch(std::span<const AdmissionRequest> reqs,
                                   const cellular::BaseStation& bs,
                                   std::span<AdmissionDecision> out) {
  FACSP_EXPECTS(reqs.size() == out.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) out[i] = decide(reqs[i], bs);
}

Verdict verdict_from_score(double score) noexcept {
  if (score > 0.45) return Verdict::kAccept;
  if (score > 0.15) return Verdict::kWeakAccept;
  if (score >= -0.15) return Verdict::kNeutral;
  if (score >= -0.45) return Verdict::kWeakReject;
  return Verdict::kReject;
}

std::string_view to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kReject: return "R";
    case Verdict::kWeakReject: return "WR";
    case Verdict::kNeutral: return "NRNA";
    case Verdict::kWeakAccept: return "WA";
    case Verdict::kAccept: return "A";
  }
  return "R";
}

}  // namespace facsp::cac
