// FACS-P — the paper's proposed Fuzzy Admission Control System with
// Priority of on-going connections (Sec. 3).
//
// Pipeline per Fig. 4:
//   User (Sp, An, Sr) -> FLC1 -> Cv
//   (Cv, Rq, Cs)      -> FLC2 -> Accept/Reject
// with the admitted calls feeding the differentiated-service counters RTC
// (voice+video) and NRTC (text).  The Counter state Cs presented to FLC2 is
// the *priority-weighted* occupancy from those counters: real-time and
// handoff-continuing on-going load is inflated by weights >= 1, so the
// controller saturates earlier and protects the QoS of on-going calls —
// producing Fig. 10's crossover against plain FACS.
#pragma once

#include <unordered_map>

#include "cac/counters.h"
#include "cac/facs_flc.h"
#include "cac/fuzzy_cac_base.h"

namespace facsp::cac {

/// Configuration of FACS-P.
struct FacsPConfig {
  Flc1Params flc1{};
  Flc2Params flc2{};
  PriorityWeights weights{};
  fuzzy::InferenceOptions inference{};
  fuzzy::DefuzzMethod defuzz_method = fuzzy::DefuzzMethod::kCentroid;
  int defuzz_resolution = 256;
  /// Admit when the crisp A/R exceeds this (0 = the NRNA centre).
  double accept_threshold = 0.08;
  /// Score bonus for handoff continuations of on-going calls (stronger than
  /// FACS's: on-going connections are the priority class).
  double handoff_score_bonus = 0.30;
};

/// The proposed policy.  Maintains one RTC/NRTC counter pair per base
/// station, updated through the on_admitted / on_released notifications
/// (paper Fig. 4: the A/R output feeds the counters).
class FacsPPolicy final : public FuzzyCacBase {
 public:
  explicit FacsPPolicy(const FacsPConfig& config = {});

  std::string_view name() const noexcept override { return "FACS-P"; }

  void on_admitted(const AdmissionRequest& req,
                   const cellular::BaseStation& bs) override;
  void on_released(cellular::ConnectionId id, cellular::ServiceClass service,
                   const cellular::BaseStation& bs) override;
  void reset() override;

  const FacsPConfig& config() const noexcept { return config_; }

  /// Counters of one base station (created on first use; exposed for tests).
  const DifferentiatedCounters& counters(cellular::BaseStationId bs) const;

 protected:
  double flc1_third_input(const AdmissionRequest& req) const override;
  double counter_state(const AdmissionRequest& req,
                       const cellular::BaseStation& bs) const override;

 private:
  DifferentiatedCounters& counters_mut(cellular::BaseStationId bs) const;

  FacsPConfig config_;
  /// Lazily populated; mutable so the const counter_state() can create an
  /// empty ledger for a BS it has never seen.
  mutable std::unordered_map<cellular::BaseStationId, DifferentiatedCounters>
      counters_;
  /// Last-BS memo: admission decisions hit the same cell repeatedly, so the
  /// hash lookup is skipped on the hot path.  unordered_map never invalidates
  /// value pointers on insert; reset() clears the memo with the map.
  mutable DifferentiatedCounters* last_counters_ = nullptr;
  mutable cellular::BaseStationId last_bs_ = 0;
};

}  // namespace facsp::cac
