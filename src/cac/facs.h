// FACS — the authors' *previous* fuzzy admission control system [14][15],
// implemented as the comparison baseline of Figs. 7 and 10.
//
// Differences from FACS-P (the paper's Sec. 3 contribution):
//  * FLC1's third input is the user's Distance from the base station
//    (Near/Middle/Far) instead of the requested bandwidth, and
//  * the Counter state Cs is the *plain* occupied bandwidth — no RTC/NRTC
//    differentiated counters, no priority weighting of on-going load.
#pragma once

#include "cac/facs_flc.h"
#include "cac/fuzzy_cac_base.h"

namespace facsp::cac {

/// Configuration of the FACS baseline.
struct FacsConfig {
  Flc1DistanceParams flc1{};
  Flc2Params flc2{};
  fuzzy::InferenceOptions inference{};
  fuzzy::DefuzzMethod defuzz_method = fuzzy::DefuzzMethod::kCentroid;
  int defuzz_resolution = 256;
  /// Admit when the crisp A/R exceeds this (0 = the NRNA centre).
  double accept_threshold = 0.28;
  /// Handoffs carry on-going calls, so even FACS favours them mildly
  /// (classic handoff prioritisation, ref [2]); FACS-P strengthens this.
  double handoff_score_bonus = 0.15;
};

/// The previous-work fuzzy CAC: FLC1-D (Sp, An, Di) -> Cv, FLC2 (Cv, Rq,
/// plain Cs) -> A/R.
class FacsPolicy final : public FuzzyCacBase {
 public:
  explicit FacsPolicy(const FacsConfig& config = {});

  std::string_view name() const noexcept override { return "FACS"; }

  const FacsConfig& config() const noexcept { return config_; }

 protected:
  double flc1_third_input(const AdmissionRequest& req) const override;
  double counter_state(const AdmissionRequest& req,
                       const cellular::BaseStation& bs) const override;

 private:
  FacsConfig config_;
};

}  // namespace facsp::cac
