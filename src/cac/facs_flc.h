// Construction of the paper's fuzzy logic controllers.
//
//  * FLC1  (FACS-P, Sec. 3.1): inputs Sp (speed), An (angle), Sr (service
//    request bandwidth) -> output Cv (correction value), FRB1 = Table 1.
//  * FLC1-D (previous FACS, [14][15]): inputs Sp, An, Di (distance from BS)
//    -> Cv.  The paper states FACS used distance where FACS-P uses Sr and
//    that distance "did not have a big effect"; the exact FACS table is not
//    reprinted, so FRB1-D derives from Table 1's voice column with a mild
//    +/-1-level distance modulation (see DESIGN.md, substitutions).
//  * FLC2  (Sec. 3.2, shared by FACS and FACS-P): inputs Cv, Rq (request
//    type), Cs (counter state) -> output A/R in [-1, 1], FRB2 = Table 2.
//
// Every membership breakpoint read off Figs. 5-6 is exposed in a parameter
// struct so sensitivity benches can sweep them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fuzzy/controller.h"
#include "fuzzy/sugeno.h"

namespace facsp::cac {

/// Breakpoints of FLC1's membership functions (paper Fig. 5).
struct Flc1Params {
  // Speed Sp in km/h over [0, speed_max].
  double speed_max = 120.0;
  double speed_slow_zero = 60.0;    ///< Sl falls to 0 here (peak at 0)
  double speed_mid_center = 60.0;   ///< Mi peak
  double speed_mid_width = 60.0;    ///< Mi half-width
  double speed_fast_plateau = 120.0;///< Fa plateau start
  double speed_fast_rise = 60.0;    ///< Fa rise width (from plateau-rise)

  // Angle An in degrees over [-180, 180]; L1/L2/St/R1/R2 at +/-k*45 deg.
  double angle_step = 45.0;

  // Service request Sr in BU over [0, sr_max].
  double sr_max = 10.0;
  double sr_small_zero = 5.0;       ///< Sm falls to 0 here (peak at 0)
  double sr_med_center = 5.0;       ///< Me peak
  double sr_med_width = 5.0;        ///< Me half-width
  double sr_big_plateau = 10.0;     ///< Bi plateau start
  double sr_big_rise = 5.0;         ///< Bi rise width

  // Correction value Cv over [0, 1]: uniform 9-term partition Cv1..Cv9.
  int cv_terms = 9;
};

/// Breakpoints of FLC1-D's distance input (previous FACS).
struct Flc1DistanceParams {
  /// Everything but the third input matches Flc1Params.
  Flc1Params base{};
  /// Hex cell circumradius; 0 means "resolve from the network topology"
  /// (the Experiment policy factory fills it in).
  double cell_radius_m = 0.0;
  /// Near plateau ends at near_frac*R; Far plateau starts at R.
  double near_frac = 0.2;
  double mid_frac = 0.6;
  double edge_width_frac = 0.4;
  /// Distance universe upper bound as a fraction of R (users may be polled
  /// slightly outside the nominal radius before handoff).
  double max_frac = 1.2;
  /// Rule-table modulation: consequent level shift for Near / Middle / Far
  /// users relative to the (Sp, An) base level (clamped to [1, 9]).  Far
  /// users will hand off soon, so admitting them wastes the cell's capacity.
  int near_delta = +1;
  int mid_delta = 0;
  int far_delta = -1;
};

/// Breakpoints of FLC2's membership functions (paper Fig. 6).
struct Flc2Params {
  // Correction value Cv over [0, 1].
  double cv_normal_center = 0.5;

  // Request type Rq in BU over [0, rq_max] (text=1, voice=5, video=10).
  double rq_max = 10.0;
  double rq_voice_center = 5.0;

  // Counter state Cs in BU over [0, cs_max] (paper: BS capacity 40 BU).
  double cs_max = 40.0;
  double cs_mid_center = 20.0;

  // Accept/Reject decision over [-1, 1].
  double ar_step = 0.3;  ///< WR/-0.3, NRNA/0, WA/+0.3; shoulders at +/-0.6
};

/// Paper Table 1: the 63 FRB1 consequents, rows ordered Sp(Sl,Mi,Fa) x
/// An(B1,L1,L2,St,R1,R2,B2) x Sr(Sm,Me,Bi), last input varying fastest.
const std::vector<std::string>& frb1_consequents();

/// Derived FRB1-D consequents for the distance variant (previous FACS),
/// rows ordered Sp x An x Di(Ne,Md,Fr), using the params' level deltas.
std::vector<std::string> frb1_distance_consequents(
    const Flc1DistanceParams& params = {});

/// Paper Table 2: the 27 FRB2 consequents, rows ordered Cv(Bd,No,Go) x
/// Rq(Tx,Vo,Vi) x Cs(Sa,Md,Fu).
const std::vector<std::string>& frb2_consequents();

/// Build the linguistic variables (exposed for tests and membership dumps).
fuzzy::LinguisticVariable make_speed_variable(const Flc1Params& p = {});
fuzzy::LinguisticVariable make_angle_variable(const Flc1Params& p = {});
fuzzy::LinguisticVariable make_service_request_variable(const Flc1Params& p = {});
fuzzy::LinguisticVariable make_distance_variable(const Flc1DistanceParams& p = {});
fuzzy::LinguisticVariable make_correction_output_variable(const Flc1Params& p = {});
fuzzy::LinguisticVariable make_correction_input_variable(const Flc2Params& p = {});
fuzzy::LinguisticVariable make_request_type_variable(const Flc2Params& p = {});
fuzzy::LinguisticVariable make_counter_state_variable(const Flc2Params& p = {});
fuzzy::LinguisticVariable make_accept_reject_variable(const Flc2Params& p = {});

/// FLC1 of FACS-P: (Sp, An, Sr) -> Cv.
std::unique_ptr<fuzzy::FuzzyController> make_flc1(
    const Flc1Params& params = {},
    fuzzy::InferenceOptions inference = {},
    fuzzy::Defuzzifier defuzz = fuzzy::Defuzzifier{});

/// FLC1-D of the previous FACS: (Sp, An, Di) -> Cv.
std::unique_ptr<fuzzy::FuzzyController> make_flc1_distance(
    const Flc1DistanceParams& params = {},
    fuzzy::InferenceOptions inference = {},
    fuzzy::Defuzzifier defuzz = fuzzy::Defuzzifier{});

/// FLC2 (shared): (Cv, Rq, Cs) -> A/R.
std::unique_ptr<fuzzy::FuzzyController> make_flc2(
    const Flc2Params& params = {},
    fuzzy::InferenceOptions inference = {},
    fuzzy::Defuzzifier defuzz = fuzzy::Defuzzifier{});

/// A Takagi-Sugeno re-statement of FLC2 (extension): same (Cv, Rq, Cs)
/// inputs and the 27 Table 2 antecedents, each Mamdani consequent term
/// replaced by its crisp core centre (A=+0.8, WA=+0.3, NRNA=0, WR=-0.3,
/// R=-0.8).  No output integration — the "fast path" comparator used by
/// the inference ablation.
std::unique_ptr<fuzzy::SugenoController> make_sugeno_flc2(
    const Flc2Params& params = {});

}  // namespace facsp::cac
