// Classical trunk-reservation baselines (extension beyond the paper's own
// comparisons; used by bench_baselines).
//
//  * CompleteSharingPolicy — admit anything that physically fits.
//  * GuardChannelPolicy    — reserve `guard_bu` BU for handoffs: new calls
//    are admitted only while used + bw <= capacity - guard_bu; handoffs are
//    admitted while they physically fit.
//  * FractionalGuardChannelPolicy — new calls are admitted into the guard
//    region with a probability that decays linearly across it (Ramjee et
//    al.'s fractional guard channel).
#pragma once

#include "cac/policy.h"
#include "sim/rng.h"

namespace facsp::cac {

/// Admit iff the call physically fits (no CAC at all).
class CompleteSharingPolicy final : public AdmissionPolicy {
 public:
  std::string_view name() const noexcept override { return "CS"; }

  AdmissionDecision decide(const AdmissionRequest& req,
                           const cellular::BaseStation& bs) override;
};

/// Deterministic guard channel (trunk reservation) for handoff priority.
class GuardChannelPolicy final : public AdmissionPolicy {
 public:
  /// guard_bu in [0, capacity); throws facsp::ConfigError when negative.
  explicit GuardChannelPolicy(cellular::Bandwidth guard_bu);

  std::string_view name() const noexcept override { return "GC"; }

  AdmissionDecision decide(const AdmissionRequest& req,
                           const cellular::BaseStation& bs) override;

  cellular::Bandwidth guard_bu() const noexcept { return guard_; }

 private:
  cellular::Bandwidth guard_;
};

/// Fractional guard channel: new calls are accepted with probability 1
/// below the guard region and with linearly decaying probability inside it.
class FractionalGuardChannelPolicy final : public AdmissionPolicy {
 public:
  FractionalGuardChannelPolicy(cellular::Bandwidth guard_bu,
                               sim::RandomStream rng);

  std::string_view name() const noexcept override { return "FGC"; }

  AdmissionDecision decide(const AdmissionRequest& req,
                           const cellular::BaseStation& bs) override;

 private:
  cellular::Bandwidth guard_;
  sim::RandomStream rng_;
};

}  // namespace facsp::cac
