// Complete partitioning: each service class owns a fixed slice of the
// cell's bandwidth (extension baseline).  The classical dual of complete
// sharing — no class can starve another, at the cost of stranded capacity
// when the mix drifts from the partition.
#pragma once

#include <array>
#include <unordered_map>

#include "cac/policy.h"

namespace facsp::cac {

/// Per-class bandwidth quotas.  Must sum to <= the cell capacity the
/// policy is used with (checked at decide time against the actual BS).
struct Partition {
  cellular::Bandwidth text_bu = 10.0;
  cellular::Bandwidth voice_bu = 15.0;
  cellular::Bandwidth video_bu = 15.0;

  cellular::Bandwidth quota(cellular::ServiceClass s) const noexcept;
  cellular::Bandwidth total() const noexcept {
    return text_bu + voice_bu + video_bu;
  }
};

/// Admission under complete partitioning.  Tracks per-class usage per base
/// station through the policy notifications (the BaseStation itself only
/// meters RT/NRT aggregates).
class CompletePartitioningPolicy final : public AdmissionPolicy {
 public:
  /// Throws facsp::ConfigError on negative quotas or an all-zero partition.
  explicit CompletePartitioningPolicy(Partition partition = {});

  std::string_view name() const noexcept override { return "CP"; }

  AdmissionDecision decide(const AdmissionRequest& req,
                           const cellular::BaseStation& bs) override;

  void on_admitted(const AdmissionRequest& req,
                   const cellular::BaseStation& bs) override;
  void on_released(cellular::ConnectionId id, cellular::ServiceClass service,
                   const cellular::BaseStation& bs) override;
  void reset() override;

  /// Current class usage on a base station (0 if never seen).
  cellular::Bandwidth used(cellular::BaseStationId bs,
                           cellular::ServiceClass s) const;

  const Partition& partition() const noexcept { return partition_; }

 private:
  struct PerBs {
    std::array<cellular::Bandwidth, 3> used{};
    std::unordered_map<cellular::ConnectionId,
                       std::pair<cellular::ServiceClass, cellular::Bandwidth>>
        owner;
  };

  Partition partition_;
  std::unordered_map<cellular::BaseStationId, PerBs> state_;
};

}  // namespace facsp::cac
