// Admission-policy interface shared by FACS-P, FACS, SCC and the classical
// baselines.  The session driver builds an AdmissionRequest per new call or
// handoff, asks the policy to decide, and notifies it of lifecycle events so
// stateful policies (SCC's shadow clusters, FACS-P's RTC/NRTC counters) stay
// current.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "cellular/basestation.h"
#include "cellular/connection.h"
#include "cellular/mobility.h"
#include "cellular/service.h"
#include "common/expects.h"
#include "sim/event_queue.h"

namespace facsp::cac {

/// Everything a policy may consult about one admission attempt.
struct AdmissionRequest {
  cellular::ConnectionId id = 0;
  cellular::ServiceClass service = cellular::ServiceClass::kText;
  cellular::Bandwidth bandwidth = 1.0;
  cellular::RequestKind kind = cellular::RequestKind::kNew;
  /// Priority of the *requesting* connection (the paper's future work;
  /// only FACS-PR consumes it, other policies ignore it).
  cellular::UserPriority priority = cellular::UserPriority::kNormal;

  /// Kinematics as the network *estimates* them.  angle_deg is the predicted
  /// angle between the user's travel direction and the bearing to the target
  /// base station (0 = heading straight at it); prediction error already
  /// included by the DirectionPredictor upstream.
  double speed_kmh = 0.0;
  double angle_deg = 0.0;
  double distance_m = 0.0;  ///< distance from the target BS (FACS's input)

  /// True kinematic state (SCC projects trajectories from it).
  cellular::MobileState mobile;

  sim::SimTime now = 0.0;
};

/// Qualitative admission verdict (paper's five-level soft decision).
enum class Verdict {
  kReject,
  kWeakReject,
  kNeutral,      ///< "not reject, not accept"
  kWeakAccept,
  kAccept,
};

std::string_view to_string(Verdict v) noexcept;

/// Map a crisp decision score in [-1, 1] to the five-level verdict.
/// Boundaries at +/-0.15 and +/-0.45 (midpoints between the A/R term cores).
Verdict verdict_from_score(double score) noexcept;

/// Outcome of one admission attempt.
struct AdmissionDecision {
  bool admitted = false;
  /// Crisp decision score.  For the fuzzy policies this is the defuzzified
  /// A/R in [-1, 1]; for baselines a capacity margin mapped into [-1, 1].
  double score = 0.0;
  Verdict verdict = Verdict::kReject;
};

/// Abstract call admission controller.
///
/// Implementations must be deterministic given the request stream (any
/// randomness must come from seeded streams passed at construction), so that
/// baseline comparisons use common random numbers.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Decide whether `req` may be admitted to `bs`.  Must not mutate the BS;
  /// the caller allocates on success and then calls on_admitted().
  virtual AdmissionDecision decide(const AdmissionRequest& req,
                                   const cellular::BaseStation& bs) = 0;

  /// Decide a batch of independent requests against one base station,
  /// writing out[i] for reqs[i].  Decisions are taken as-if sequential but
  /// without allocation/admission between them (no on_admitted() runs), so
  /// this suits scoring sweeps and benches rather than the live event loop.
  /// The default loops decide(); the fuzzy policies reuse one inference
  /// scratch across the whole batch.
  virtual void decide_batch(std::span<const AdmissionRequest> reqs,
                            const cellular::BaseStation& bs,
                            std::span<AdmissionDecision> out);

  /// The request was admitted and the bandwidth allocated on `bs`.
  virtual void on_admitted(const AdmissionRequest& req,
                           const cellular::BaseStation& bs) {
    (void)req;
    (void)bs;
  }

  /// The connection released its bandwidth on `bs` (completion, drop after
  /// allocation, or the source side of a handoff).
  virtual void on_released(cellular::ConnectionId id,
                           cellular::ServiceClass service,
                           const cellular::BaseStation& bs) {
    (void)id;
    (void)service;
    (void)bs;
  }

  /// Periodic mobility report for an on-going connection (SCC's shadow
  /// clusters consume these).
  virtual void on_mobility(cellular::ConnectionId id,
                           const cellular::MobileState& state,
                           sim::SimTime now) {
    (void)id;
    (void)state;
    (void)now;
  }

  /// Drop all internal state (new replication).
  virtual void reset() {}
};

/// Forwarding shell that lets the concrete policy be installed *after* the
/// consumer holding the AdmissionPolicy& was built.  SessionDriver owns the
/// network but takes the policy by reference, while policy factories need
/// the network — so the driver is constructed around an empty DeferredPolicy
/// whose `inner` is filled from the factory once the driver's network
/// exists (see Experiment::run_single and core::MultiCellEngine).
///
/// Contract: `inner` must be installed before the first lifecycle call.
/// Only name() and reset() tolerate the empty state (both can legitimately
/// run during two-phase construction); every other entry point asserts,
/// turning a misordered setup into a diagnosable ContractViolation rather
/// than a null-pointer call.
class DeferredPolicy final : public AdmissionPolicy {
 public:
  std::unique_ptr<AdmissionPolicy> inner;

  std::string_view name() const noexcept override {
    return inner ? inner->name() : "deferred";
  }
  AdmissionDecision decide(const AdmissionRequest& req,
                           const cellular::BaseStation& bs) override {
    FACSP_EXPECTS(inner != nullptr);
    return inner->decide(req, bs);
  }
  void decide_batch(std::span<const AdmissionRequest> reqs,
                    const cellular::BaseStation& bs,
                    std::span<AdmissionDecision> out) override {
    FACSP_EXPECTS(inner != nullptr);
    inner->decide_batch(reqs, bs, out);
  }
  void on_admitted(const AdmissionRequest& req,
                   const cellular::BaseStation& bs) override {
    FACSP_EXPECTS(inner != nullptr);
    inner->on_admitted(req, bs);
  }
  void on_released(cellular::ConnectionId id, cellular::ServiceClass service,
                   const cellular::BaseStation& bs) override {
    FACSP_EXPECTS(inner != nullptr);
    inner->on_released(id, service, bs);
  }
  void on_mobility(cellular::ConnectionId id,
                   const cellular::MobileState& state,
                   sim::SimTime now) override {
    FACSP_EXPECTS(inner != nullptr);
    inner->on_mobility(id, state, now);
  }
  void reset() override {
    if (inner) inner->reset();
  }
};

}  // namespace facsp::cac
