// Differentiated-service counters (paper Fig. 4: RTC / NRTC).
//
// FACS-P tracks on-going connections in two counters — the Real Time Counter
// (voice+video) and the Non Real Time Counter (text) — and derives the
// Counter state (Cs) fed to FLC2 from them, weighting real-time and
// handoff-continuing load by priority factors >= 1.  That weighting is the
// paper's "priority of on-going connections": as protected load accumulates,
// the effective Cs saturates earlier and the controller turns conservative
// before the cell is physically full.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cellular/connection.h"
#include "cellular/service.h"

namespace facsp::cac {

/// Priority weighting configuration.
struct PriorityWeights {
  /// Multiplier on bandwidth held by real-time on-going connections.
  double real_time = 1.6;
  /// Multiplier on bandwidth held by non-real-time on-going connections.
  double non_real_time = 1.0;
  /// Extra multiplier on connections that arrived via handoff (they already
  /// survived at least one cell transition; dropping them is worst).
  double handoff_bonus = 1.2;
};

/// RTC/NRTC ledger for one base station.
class DifferentiatedCounters {
 public:
  explicit DifferentiatedCounters(PriorityWeights weights = {});

  /// Register an admitted connection.
  void add(cellular::ConnectionId id, cellular::ServiceClass service,
           cellular::Bandwidth bw, bool via_handoff);

  /// Remove a connection (release/handoff-out/completion).  Unknown ids are
  /// ignored (the connection may predate a reset()).
  void remove(cellular::ConnectionId id);

  /// Raw counters.
  cellular::Bandwidth rt_bandwidth() const noexcept { return rt_bw_; }
  cellular::Bandwidth nrt_bandwidth() const noexcept { return nrt_bw_; }
  std::uint32_t rt_count() const noexcept { return rt_n_; }
  std::uint32_t nrt_count() const noexcept { return nrt_n_; }
  cellular::Bandwidth total_bandwidth() const noexcept {
    return rt_bw_ + nrt_bw_;
  }

  /// Priority-weighted occupancy: the effective "Counter state" FLC2 sees.
  /// Always >= total_bandwidth() when weights >= 1.
  cellular::Bandwidth effective_occupancy() const noexcept;

  const PriorityWeights& weights() const noexcept { return weights_; }

  void clear();

 private:
  struct Entry {
    cellular::Bandwidth bw;
    bool real_time;
    bool via_handoff;
  };

  PriorityWeights weights_;
  std::unordered_map<cellular::ConnectionId, Entry> entries_;
  cellular::Bandwidth rt_bw_ = 0.0;
  cellular::Bandwidth nrt_bw_ = 0.0;
  cellular::Bandwidth weighted_ = 0.0;
  std::uint32_t rt_n_ = 0;
  std::uint32_t nrt_n_ = 0;
};

}  // namespace facsp::cac
