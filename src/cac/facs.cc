#include "cac/facs.h"

namespace facsp::cac {

namespace {

fuzzy::Defuzzifier make_defuzz(fuzzy::DefuzzMethod m, int resolution) {
  return fuzzy::Defuzzifier(m, resolution);
}

}  // namespace

FacsPolicy::FacsPolicy(const FacsConfig& config)
    : FuzzyCacBase(
          make_flc1_distance(config.flc1, config.inference,
                             make_defuzz(config.defuzz_method,
                                         config.defuzz_resolution)),
          make_flc2(config.flc2, config.inference,
                    make_defuzz(config.defuzz_method,
                                config.defuzz_resolution)),
          config.accept_threshold, config.handoff_score_bonus),
      config_(config) {}

double FacsPolicy::flc1_third_input(const AdmissionRequest& req) const {
  return req.distance_m;
}

double FacsPolicy::counter_state(const AdmissionRequest& /*req*/,
                                 const cellular::BaseStation& bs) const {
  return bs.load().used;
}

}  // namespace facsp::cac
