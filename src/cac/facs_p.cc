#include "cac/facs_p.h"

#include <algorithm>

namespace facsp::cac {

namespace {

fuzzy::Defuzzifier make_defuzz(fuzzy::DefuzzMethod m, int resolution) {
  return fuzzy::Defuzzifier(m, resolution);
}

}  // namespace

FacsPPolicy::FacsPPolicy(const FacsPConfig& config)
    : FuzzyCacBase(
          make_flc1(config.flc1, config.inference,
                    make_defuzz(config.defuzz_method,
                                config.defuzz_resolution)),
          make_flc2(config.flc2, config.inference,
                    make_defuzz(config.defuzz_method,
                                config.defuzz_resolution)),
          config.accept_threshold, config.handoff_score_bonus),
      config_(config) {}

DifferentiatedCounters& FacsPPolicy::counters_mut(
    cellular::BaseStationId bs) const {
  if (last_counters_ != nullptr && last_bs_ == bs) return *last_counters_;
  const auto it = counters_.find(bs);
  DifferentiatedCounters& c =
      it != counters_.end()
          ? it->second
          : counters_.emplace(bs, DifferentiatedCounters(config_.weights))
                .first->second;
  last_counters_ = &c;
  last_bs_ = bs;
  return c;
}

const DifferentiatedCounters& FacsPPolicy::counters(
    cellular::BaseStationId bs) const {
  return counters_mut(bs);
}

double FacsPPolicy::flc1_third_input(const AdmissionRequest& req) const {
  return static_cast<double>(req.bandwidth);
}

double FacsPPolicy::counter_state(const AdmissionRequest& /*req*/,
                                  const cellular::BaseStation& bs) const {
  // Priority-weighted occupancy, saturated at the Cs universe top so FLC2's
  // "Full" term receives full membership once protected load dominates.
  const double eff = counters_mut(bs.id()).effective_occupancy();
  return std::min(eff, config_.flc2.cs_max);
}

void FacsPPolicy::on_admitted(const AdmissionRequest& req,
                              const cellular::BaseStation& bs) {
  counters_mut(bs.id()).add(req.id, req.service, req.bandwidth,
                            req.kind == cellular::RequestKind::kHandoff);
}

void FacsPPolicy::on_released(cellular::ConnectionId id,
                              cellular::ServiceClass /*service*/,
                              const cellular::BaseStation& bs) {
  counters_mut(bs.id()).remove(id);
}

void FacsPPolicy::reset() {
  counters_.clear();
  last_counters_ = nullptr;
}

}  // namespace facsp::cac
