// Shared skeleton of the two fuzzy admission controllers (FACS, FACS-P).
//
// Both run the same two-stage pipeline:
//   Cv  = FLC1(speed, angle, <third input>)          // mobility benefit
//   A/R = FLC2(Cv, request type, <counter state>)    // admission decision
//   admit  <=>  A/R > accept_threshold  and the call physically fits.
// Subclasses choose the third FLC1 input (service request vs distance) and
// how the counter state is computed (plain vs priority-weighted occupancy).
#pragma once

#include <memory>
#include <span>

#include "cac/policy.h"
#include "fuzzy/controller.h"

namespace facsp::cac {

/// Common implementation of the FLC1 -> FLC2 cascade.
class FuzzyCacBase : public AdmissionPolicy {
 public:
  /// Crisp decision score threshold: admit when score > threshold.
  double accept_threshold() const noexcept { return accept_threshold_; }

  /// The Cv computed by FLC1 for a request (exposed for tests/benches).
  double correction_value(const AdmissionRequest& req) const;

  AdmissionDecision decide(const AdmissionRequest& req,
                           const cellular::BaseStation& bs) final;

  /// Batched form: stages all rows of FLC1, then all rows of FLC2, through
  /// the structure-of-arrays lane kernels (SIMD when enabled) instead of
  /// cascading per request.  Both controllers are stateless and the counter
  /// state does not depend on the request, so every decision is identical —
  /// bit-identical, by the lane kernels' contract — to decide() on that
  /// request.  Allocation-free at steady state (asserted by the zero-alloc
  /// audit).
  void decide_batch(std::span<const AdmissionRequest> reqs,
                    const cellular::BaseStation& bs,
                    std::span<AdmissionDecision> out) final;

  const fuzzy::FuzzyController& flc1() const noexcept { return *flc1_; }
  const fuzzy::FuzzyController& flc2() const noexcept { return *flc2_; }

 protected:
  FuzzyCacBase(std::unique_ptr<fuzzy::FuzzyController> flc1,
               std::unique_ptr<fuzzy::FuzzyController> flc2,
               double accept_threshold, double handoff_score_bonus);

  /// Third crisp input of FLC1: Sr for FACS-P, Di for FACS.
  virtual double flc1_third_input(const AdmissionRequest& req) const = 0;

  /// Counter state Cs fed to FLC2 (plain or priority-weighted occupancy,
  /// clamped by FLC2 to its universe).
  virtual double counter_state(const AdmissionRequest& req,
                               const cellular::BaseStation& bs) const = 0;

 private:
  std::unique_ptr<fuzzy::FuzzyController> flc1_;
  std::unique_ptr<fuzzy::FuzzyController> flc2_;
  double accept_threshold_;
  double handoff_score_bonus_;
  /// Reusable arena for both controllers; policies are driven from one
  /// simulation thread, so a per-policy scratch is safe.  Mutable because
  /// correction_value() is logically const.
  mutable fuzzy::InferenceScratch scratch_;
};

}  // namespace facsp::cac
