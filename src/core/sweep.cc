#include "core/sweep.h"

#include <set>

#include "common/error.h"
#include "core/config_io.h"
#include "core/paper.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/thread_pool.h"
#include "workload/catalog.h"

namespace facsp::core {

std::vector<ScenarioChoice> scenario_choices(
    const std::vector<std::string>& catalog_names) {
  std::vector<ScenarioChoice> out;
  out.reserve(catalog_names.size());
  for (const std::string& name : catalog_names)
    out.push_back({name, workload::catalog_scenario(name)});
  return out;
}

std::vector<PolicyChoice> policy_choices(
    const std::vector<std::string>& names) {
  std::vector<PolicyChoice> out;
  out.reserve(names.size());
  for (const std::string& name : names)
    out.push_back({name, policy_factory_by_name(name)});
  return out;
}

std::size_t SweepAxis::size() const noexcept {
  switch (kind) {
    case Kind::kPolicy:
      return policies.size();
    case Kind::kScenario:
      return scenarios.size();
    case Kind::kParam:
      return values.size();
    case Kind::kN:
      return n_values.size();
  }
  return 0;
}

std::string SweepAxis::label(std::size_t i) const {
  switch (kind) {
    case Kind::kPolicy:
      return policies[i].name;
    case Kind::kScenario:
      return scenarios[i].name;
    case Kind::kParam:
      return values[i];
    case Kind::kN:
      return std::to_string(n_values[i]);
  }
  return {};
}

SweepSpec& SweepSpec::policy_axis(std::initializer_list<const char*> names) {
  return policy_axis(std::vector<std::string>(names.begin(), names.end()));
}

SweepSpec& SweepSpec::policy_axis(const std::vector<std::string>& names) {
  return policy_axis(policy_choices(names));
}

SweepSpec& SweepSpec::policy_axis(std::vector<PolicyChoice> choices) {
  SweepAxis axis;
  axis.kind = SweepAxis::Kind::kPolicy;
  axis.name = "policy";
  axis.policies = std::move(choices);
  axes.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::scenario_axis(
    std::initializer_list<const char*> catalog_names) {
  return scenario_axis(
      std::vector<std::string>(catalog_names.begin(), catalog_names.end()));
}

SweepSpec& SweepSpec::scenario_axis(
    const std::vector<std::string>& catalog_names) {
  return scenario_axis(scenario_choices(catalog_names));
}

SweepSpec& SweepSpec::scenario_axis(std::vector<ScenarioChoice> choices) {
  SweepAxis axis;
  axis.kind = SweepAxis::Kind::kScenario;
  axis.name = "scenario";
  axis.scenarios = std::move(choices);
  axes.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::param_axis(std::string key,
                                 std::vector<std::string> values) {
  SweepAxis axis;
  axis.kind = SweepAxis::Kind::kParam;
  axis.name = std::move(key);
  axis.values = std::move(values);
  axes.push_back(std::move(axis));
  return *this;
}

SweepSpec& SweepSpec::n_axis(std::vector<int> values) {
  SweepAxis axis;
  axis.kind = SweepAxis::Kind::kN;
  axis.name = "n";
  axis.n_values = std::move(values);
  axes.push_back(std::move(axis));
  return *this;
}

SweepSpec SweepSpec::paper_grid(int replications) {
  SweepSpec spec;
  spec.base = paper_scenario();
  spec.policy_axis({"facs-p"});
  std::vector<int> ns;
  for (int n = 10; n <= 100; n += 10) ns.push_back(n);
  spec.n_axis(std::move(ns));
  spec.replications = replications;
  return spec;
}

std::size_t SweepSpec::grid_size() const noexcept {
  std::size_t total = 1;
  for (const SweepAxis& axis : axes) total *= axis.size();
  return total;
}

std::size_t SweepSpec::cell_count() const noexcept {
  return grid_size() * static_cast<std::size_t>(replications > 0 ? replications
                                                                 : 0);
}

void SweepSpec::validate() const {
  if (replications < 1)
    throw ConfigError("sweep: replications must be >= 1");
  if (threads < 0) throw ConfigError("sweep: threads must be >= 0");
  if (fallback_n < 1) throw ConfigError("sweep: fallback_n must be >= 1");
  std::set<std::string> names;
  int policy_axes = 0, scenario_axes = 0, n_axes = 0;
  bool saw_param = false;
  for (const SweepAxis& axis : axes) {
    if (axis.name.empty()) throw ConfigError("sweep: axis with empty name");
    if (!names.insert(axis.name).second)
      throw ConfigError("sweep: duplicate axis '" + axis.name + "'");
    if (axis.size() == 0)
      throw ConfigError("sweep: axis '" + axis.name + "' has no values");
    switch (axis.kind) {
      case SweepAxis::Kind::kPolicy:
        ++policy_axes;
        break;
      case SweepAxis::Kind::kScenario:
        if (saw_param)
          throw ConfigError(
              "sweep: scenario axis listed after a param axis — the scenario "
              "choice would overwrite the param; list the scenario axis "
              "first");
        ++scenario_axes;
        break;
      case SweepAxis::Kind::kParam:
        saw_param = true;
        break;
      case SweepAxis::Kind::kN:
        ++n_axes;
        for (const int n : axis.n_values)
          if (n < 1)
            throw ConfigError("sweep: n axis value " + std::to_string(n) +
                              " (must be >= 1)");
        break;
    }
  }
  if (policy_axes > 1) throw ConfigError("sweep: more than one policy axis");
  if (scenario_axes > 1)
    throw ConfigError("sweep: more than one scenario axis");
  if (n_axes > 1) throw ConfigError("sweep: more than one n axis");
}

SweepRunner::SweepRunner(SweepSpec spec) : spec_(std::move(spec)) {
  spec_.validate();

  // Normalise: an absent policy / N axis becomes an explicit single-value
  // axis (fallback_policy first, fallback_n last), so every ResultTable is
  // self-describing — each row's coordinates always name the policy and N
  // that produced it, even when the caller swept neither.  Size-1 axes do
  // not change the grid enumeration, only add a coordinate column.
  bool has_policy = false, has_n = false;
  for (const SweepAxis& axis : spec_.axes) {
    has_policy = has_policy || axis.kind == SweepAxis::Kind::kPolicy;
    has_n = has_n || axis.kind == SweepAxis::Kind::kN;
  }
  if (!has_policy) {
    SweepSpec implicit;
    implicit.policy_axis(std::vector<std::string>{spec_.fallback_policy});
    spec_.axes.insert(spec_.axes.begin(), std::move(implicit.axes.front()));
  }
  if (!has_n) spec_.n_axis({spec_.fallback_n});

  const std::size_t grid = spec_.grid_size();
  rows_.reserve(grid);
  for (std::size_t i = 0; i < grid; ++i) {
    // Mixed-radix digits of i over the axis sizes, last axis fastest
    // (row-major).
    std::vector<std::size_t> digit(spec_.axes.size(), 0);
    std::size_t rem = i;
    for (std::size_t a = spec_.axes.size(); a-- > 0;) {
      digit[a] = rem % spec_.axes[a].size();
      rem /= spec_.axes[a].size();
    }

    ScenarioConfig scenario = spec_.base;
    const PolicyChoice* policy = nullptr;  // always set: normalised above
    int n = spec_.fallback_n;
    std::vector<std::string> coords;
    coords.reserve(spec_.axes.size());
    for (std::size_t a = 0; a < spec_.axes.size(); ++a) {
      const SweepAxis& axis = spec_.axes[a];
      const std::size_t v = digit[a];
      switch (axis.kind) {
        case SweepAxis::Kind::kPolicy:
          policy = &axis.policies[v];
          break;
        case SweepAxis::Kind::kScenario:
          scenario = axis.scenarios[v].config;
          break;
        case SweepAxis::Kind::kParam:
          apply_scenario_key(scenario, axis.name, axis.values[v]);
          break;
        case SweepAxis::Kind::kN:
          n = axis.n_values[v];
          break;
      }
      coords.push_back(axis.label(v));
    }
    // Experiment's constructor validates the resolved scenario, so a bad
    // param combination fails here — before any cell simulates.
    rows_.push_back(ResolvedCell{std::move(coords), n,
                                 Experiment(scenario, policy->factory,
                                            policy->name)});
  }
}

ResultTable SweepRunner::run(std::vector<CellMetrics>* cells) const {
  const std::size_t reps = static_cast<std::size_t>(spec_.replications);
  const std::size_t total = rows_.size() * reps;

  // Phase 1 — simulate: every (row, replication) cell writes its own
  // pre-sized slot; worker scheduling can only change when a slot is
  // produced, never its value.
  std::vector<CellMetrics> grid(total);
  sim::ThreadPool pool(sim::ThreadPool::resolve_threads(spec_.threads));
  // Resolved once, outside the fan-out, so cells never touch the registry
  // mutex; progress/duration recording is a few relaxed atomics per cell.
  obs::Counter* cells_done = nullptr;
  obs::Histogram* cell_ns = nullptr;
  if (obs::metrics_enabled()) {
    cells_done = &obs::Registry::instance().counter("sweep.cells_done");
    cell_ns = &obs::Registry::instance().histogram("sweep.cell_ns");
  }
  pool.parallel_for(total, [&](std::size_t cell) {
    obs::ScopedSpan span("sweep", "cell", static_cast<std::int64_t>(cell),
                         cell_ns);
    const ResolvedCell& row = rows_[cell / reps];
    const std::uint64_t r = static_cast<std::uint64_t>(cell % reps);
    grid[cell] =
        CellMetrics::from_run(row.n, r, row.experiment.run_single(row.n, r));
    if (cells_done != nullptr) cells_done->add(1);
  });

  // Phase 2 — reduce serially in (row-major, replication) order: the exact
  // SummaryStats::add sequence a nested serial loop performs (Welford
  // accumulation is order-sensitive, so the fixed order is what buys
  // bit-identical aggregates for every thread count).
  ResultTable table;
  table.axes.reserve(spec_.axes.size());
  for (const SweepAxis& axis : spec_.axes) table.axes.push_back(axis.name);
  table.replications = spec_.replications;
  table.ci_level = spec_.ci_level;
  table.rows.reserve(rows_.size());
  std::size_t cell = 0;
  for (const ResolvedCell& rc : rows_) {
    ResultRow out;
    out.coords = rc.coords;
    out.n = rc.n;
    for (std::size_t r = 0; r < reps; ++r, ++cell) {
      const CellMetrics& m = grid[cell];
      out.acceptance_percent.add(m.acceptance_percent);
      out.blocking_percent.add(100.0 - m.acceptance_percent);
      out.dropping_percent.add(m.dropping_percent);
      out.utilization_percent.add(m.utilization_percent);
      out.completion_percent.add(m.completion_percent);
    }
    table.rows.push_back(std::move(out));
  }
  if (cells != nullptr) *cells = std::move(grid);
  return table;
}

SweepResult run_legacy_sweep(const ScenarioConfig& scenario,
                             const PolicyFactory& factory,
                             const std::string& label,
                             const SweepConfig& sweep, int threads,
                             std::vector<CellMetrics>* cells) {
  SweepSpec spec;
  spec.base = scenario;
  spec.policy_axis({PolicyChoice{label, factory}});
  spec.n_axis(sweep.n_values);
  spec.replications = sweep.replications;
  spec.ci_level = sweep.ci_level;
  spec.threads = threads;
  const ResultTable table = SweepRunner(std::move(spec)).run(cells);

  SweepResult out;
  out.policy_name = label;
  out.points.reserve(table.rows.size());
  for (const ResultRow& row : table.rows) {
    SweepPoint point;
    point.n = row.n;
    point.acceptance_percent = row.acceptance_percent;
    point.dropping_percent = row.dropping_percent;
    point.utilization_percent = row.utilization_percent;
    point.completion_percent = row.completion_percent;
    out.points.push_back(point);
  }
  return out;
}

}  // namespace facsp::core
