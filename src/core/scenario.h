// Scenario configuration: everything one simulation run depends on.
// Defaults reproduce the paper's Sec. 4 setup.
#pragma once

#include <cstdint>

#include "cellular/mobility.h"
#include "cellular/service.h"
#include "cellular/traffic.h"
#include "workload/spatial.h"

namespace facsp::core {

/// Full description of the simulated world and workload.
struct ScenarioConfig {
  // --- topology -----------------------------------------------------------
  /// Rings of cells around the centre cell (1 -> 7 cells).  The paper's
  /// figures are measured on the centre cell; neighbours exist so handoffs
  /// and SCC shadows have somewhere to go.
  int rings = 1;
  double cell_radius_m = 2000.0;
  /// Paper: "the bandwidth of the BS was considered 40 BU".
  cellular::Bandwidth capacity_bu = 40.0;

  // --- workload ------------------------------------------------------------
  cellular::TrafficConfig traffic{};
  /// Where requests are generated over the grid.  Each cell's request count
  /// is `weight * N` with the weight from this map; the headline metrics are
  /// always measured on centre-cell requests.  Default (center): only the
  /// centre generates — the paper's single-BS measurement.  `uniform`
  /// reproduces the old background_traffic=true behaviour; `hotspot` and
  /// `highway` shape the surrounding load (see docs/workloads.md).
  workload::SpatialSpec spatial{};

  // --- mobility ------------------------------------------------------------
  bool enable_mobility = true;
  cellular::MobilityConfig mobility{};
  cellular::DirectionPredictor::Config predictor{};
  /// Mobility update / cell-boundary check period (seconds).
  double mobility_update_s = 5.0;

  // --- control -------------------------------------------------------------
  /// Hard stop; runs normally end earlier (when every call finished).
  double horizon_s = 24.0 * 3600.0;
  std::uint64_t seed = 42;

  /// Throws facsp::ConfigError on invalid values.
  void validate() const;
};

}  // namespace facsp::core
