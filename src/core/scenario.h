// Scenario configuration: everything one simulation run depends on.
// Defaults reproduce the paper's Sec. 4 setup.
#pragma once

#include <cstdint>

#include "cellular/mobility.h"
#include "cellular/service.h"
#include "cellular/traffic.h"

namespace facsp::core {

/// Full description of the simulated world and workload.
struct ScenarioConfig {
  // --- topology -----------------------------------------------------------
  /// Rings of cells around the centre cell (1 -> 7 cells).  The paper's
  /// figures are measured on the centre cell; neighbours exist so handoffs
  /// and SCC shadows have somewhere to go.
  int rings = 1;
  double cell_radius_m = 2000.0;
  /// Paper: "the bandwidth of the BS was considered 40 BU".
  cellular::Bandwidth capacity_bu = 40.0;

  // --- workload ------------------------------------------------------------
  cellular::TrafficConfig traffic{};
  /// When true, every cell (not just the centre) generates the same number
  /// of requesting connections toward its own base station; the headline
  /// metrics are still measured on centre-cell requests.  Off by default:
  /// the paper's figures are single-BS measurements; turning it on gives a
  /// uniformly loaded network (see the handoff_storm example).
  bool background_traffic = false;

  // --- mobility ------------------------------------------------------------
  bool enable_mobility = true;
  cellular::MobilityConfig mobility{};
  cellular::DirectionPredictor::Config predictor{};
  /// Mobility update / cell-boundary check period (seconds).
  double mobility_update_s = 5.0;

  // --- control -------------------------------------------------------------
  /// Hard stop; runs normally end earlier (when every call finished).
  double horizon_s = 24.0 * 3600.0;
  std::uint64_t seed = 42;

  /// Throws facsp::ConfigError on invalid values.
  void validate() const;
};

}  // namespace facsp::core
