// Scenario configuration: everything one simulation run depends on.
// Defaults reproduce the paper's Sec. 4 setup.
#pragma once

#include <cstdint>

#include "cellular/mobility.h"
#include "cellular/service.h"
#include "cellular/traffic.h"
#include "workload/spatial.h"

namespace facsp::core {

/// Multi-cell sharding (core/multicell.h): the scenario's world is
/// replicated into `cells` shards laid out on a super hex grid, each shard
/// owning its own SessionDriver / policy / RNG streams, with explicit
/// inter-cell handovers routed between neighbouring shards at epoch
/// boundaries.  `cells = 1` is exactly the single-world simulation the
/// paper measures (bit-for-bit: the engine degenerates to one SessionDriver
/// with the legacy seed roots).
struct MultiCellConfig {
  /// Number of shards.  Shards occupy the first `cells` coordinates of the
  /// hex-disc spiral; 1 + 3r(r+1) fills r super-rings (7 = ring 1, 19 = ring 2).
  int cells = 1;
  /// Drain quantum: every shard advances its event queue `epoch_s` seconds,
  /// then inter-cell handovers are exchanged at the barrier.  Also the upper
  /// bound on handover delivery latency (departures collected during an
  /// epoch are delivered at its end).
  double epoch_s = 5.0;
  /// Adaptive epoch length (off by default): the engine adjusts the drain
  /// quantum to the observed per-epoch handover count — halving it when
  /// barriers carry dense handover batches (tighter delivery latency),
  /// doubling it when they run near-empty (fewer barriers) — clamped to
  /// [epoch_min_s, epoch_max_s].  With this off the epoch length is exactly
  /// `epoch_s` and results are bit-identical to the bulk-synchronous
  /// engine; with it on, per-epoch conservation invariants still hold but
  /// byte-level goldens do not apply (delivery times shift).
  bool epoch_adaptive = false;
  double epoch_min_s = 1.0;
  double epoch_max_s = 30.0;
  /// Sparse traffic: number of spiral cells (centre-out) that generate
  /// their own new-call workload.  0 means every cell generates (the
  /// historical behaviour); k > 0 restricts generation to cells 0..k-1 —
  /// the remaining shards only ever serve inbound handovers, which is what
  /// makes city-scale grids mostly idle and the event-driven scheduler
  /// worthwhile.
  int workload_cells = 0;
  /// Where an inbound handover re-materialises in the destination shard: at
  /// `entry_fraction * cell_radius` behind the centre BS along the travel
  /// direction.  Must stay below the hex inradius ratio (sqrt(3)/2 ~ 0.866)
  /// so the entry point is always inside the centre cell.
  double entry_fraction = 0.8;
  /// Worker threads draining shards in parallel (0 = hardware concurrency).
  /// A pure throughput knob: results are bit-identical for every value.
  int threads = 1;

  /// Throws facsp::ConfigError on invalid values.
  void validate() const;
};

/// Full description of the simulated world and workload.
struct ScenarioConfig {
  // --- topology -----------------------------------------------------------
  /// Rings of cells around the centre cell (1 -> 7 cells).  The paper's
  /// figures are measured on the centre cell; neighbours exist so handoffs
  /// and SCC shadows have somewhere to go.
  int rings = 1;
  double cell_radius_m = 2000.0;
  /// Paper: "the bandwidth of the BS was considered 40 BU".
  cellular::Bandwidth capacity_bu = 40.0;

  // --- workload ------------------------------------------------------------
  cellular::TrafficConfig traffic{};
  /// Where requests are generated over the grid.  Each cell's request count
  /// is `weight * N` with the weight from this map; the headline metrics are
  /// always measured on centre-cell requests.  Default (center): only the
  /// centre generates — the paper's single-BS measurement.  `uniform`
  /// reproduces the old background_traffic=true behaviour; `hotspot` and
  /// `highway` shape the surrounding load (see docs/workloads.md).
  workload::SpatialSpec spatial{};

  // --- mobility ------------------------------------------------------------
  bool enable_mobility = true;
  cellular::MobilityConfig mobility{};
  cellular::DirectionPredictor::Config predictor{};
  /// Mobility update / cell-boundary check period (seconds).
  double mobility_update_s = 5.0;

  // --- multi-cell sharding -------------------------------------------------
  /// Config keys `sim.*`.  With the default (1 cell) the multi-cell engine
  /// reproduces this scenario's single-world run bit-for-bit.
  MultiCellConfig multicell{};

  // --- control -------------------------------------------------------------
  /// Hard stop; runs normally end earlier (when every call finished).
  double horizon_s = 24.0 * 3600.0;
  std::uint64_t seed = 42;

  /// Throws facsp::ConfigError on invalid values.
  void validate() const;
};

}  // namespace facsp::core
