// Deterministic parallel sweep runner over the legacy (N, replication)
// grid.  Since the declarative sweep layer landed (core/sweep.h), this class
// is a thin compatibility wrapper: run() forwards to run_legacy_sweep(),
// which expresses the grid as a single-policy SweepSpec and executes it on
// SweepRunner.  The guarantee is unchanged — the aggregated SweepResult is
// bit-identical to the serial Experiment::run for every thread count
// (ctest-enforced).  New code should build a SweepSpec directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace facsp::core {

/// Runs an Experiment's sweep cells in parallel.  (CellMetrics — the shared
/// cell-extraction/reduction unit — lives in core/experiment.h next to the
/// serial path that must stay bit-identical to this one.)
///
/// Thread-safety contract: the PolicyFactory is invoked once per cell, from
/// worker threads, possibly concurrently — it must be safe to call
/// concurrently (the canonical make_*_factory() factories are: they capture
/// configs by value and only construct fresh policy objects).  Policy
/// *instances* are never shared across threads.
class ParallelSweepRunner {
 public:
  ParallelSweepRunner(ScenarioConfig scenario, PolicyFactory factory,
                      std::string policy_label);

  /// Run the sweep on `sweep.threads` workers (0 = hardware concurrency).
  /// The returned SweepResult is bit-identical to
  /// Experiment(scenario, factory, label).run(sweep) regardless of the
  /// thread count.  When `cells` is non-null it receives the raw per-cell
  /// metrics in (n-major, replication) order.
  SweepResult run(const SweepConfig& sweep,
                  std::vector<CellMetrics>* cells = nullptr) const;

  const ScenarioConfig& scenario() const noexcept {
    return experiment_.scenario();
  }

 private:
  Experiment experiment_;
};

}  // namespace facsp::core
