#include "core/scenario.h"

#include "common/error.h"

namespace facsp::core {

void MultiCellConfig::validate() const {
  if (cells < 1) throw ConfigError("multicell: cells must be >= 1");
  if (epoch_s <= 0.0) throw ConfigError("multicell: epoch_s must be > 0");
  if (epoch_min_s <= 0.0)
    throw ConfigError("multicell: epoch_min_s must be > 0");
  if (epoch_max_s < epoch_min_s)
    throw ConfigError("multicell: epoch_max_s must be >= epoch_min_s");
  if (epoch_adaptive && (epoch_s < epoch_min_s || epoch_s > epoch_max_s))
    throw ConfigError(
        "multicell: adaptive epochs need epoch_s within "
        "[epoch_min_s, epoch_max_s]");
  if (workload_cells < 0)
    throw ConfigError("multicell: workload_cells must be >= 0");
  // sqrt(3)/2 ~ 0.866 is the hex inradius ratio; beyond 0.85 the entry
  // point could land outside the destination's centre cell.
  if (entry_fraction <= 0.0 || entry_fraction > 0.85)
    throw ConfigError("multicell: entry_fraction must be in (0, 0.85]");
  if (threads < 0) throw ConfigError("multicell: threads must be >= 0");
}

void ScenarioConfig::validate() const {
  if (rings < 0) throw ConfigError("scenario: rings must be >= 0");
  if (cell_radius_m <= 0.0)
    throw ConfigError("scenario: cell radius must be > 0");
  if (capacity_bu <= 0.0) throw ConfigError("scenario: capacity must be > 0");
  traffic.validate();
  spatial.validate();
  multicell.validate();
  if (mobility_update_s <= 0.0)
    throw ConfigError("scenario: mobility update period must be > 0");
  if (horizon_s <= 0.0) throw ConfigError("scenario: horizon must be > 0");
}

}  // namespace facsp::core
