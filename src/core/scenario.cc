#include "core/scenario.h"

#include "common/error.h"

namespace facsp::core {

void ScenarioConfig::validate() const {
  if (rings < 0) throw ConfigError("scenario: rings must be >= 0");
  if (cell_radius_m <= 0.0)
    throw ConfigError("scenario: cell radius must be > 0");
  if (capacity_bu <= 0.0) throw ConfigError("scenario: capacity must be > 0");
  traffic.validate();
  spatial.validate();
  if (mobility_update_s <= 0.0)
    throw ConfigError("scenario: mobility update period must be > 0");
  if (horizon_s <= 0.0) throw ConfigError("scenario: horizon must be > 0");
}

}  // namespace facsp::core
