#include "core/session.h"

#include <algorithm>

#include "common/expects.h"
#include "workload/spatial.h"

namespace facsp::core {

using cellular::Connection;
using cellular::ConnectionId;
using cellular::ConnectionState;
using cellular::RequestKind;

SessionDriver::SessionDriver(const ScenarioConfig& scenario,
                             cac::AdmissionPolicy& policy,
                             std::uint64_t replication,
                             cellular::ConnectionId id_offset)
    : scenario_(scenario),
      policy_(policy),
      // The driver's streams live under their own "driver" component, while
      // Experiment::run_single seeds the policy's RngFactory under "policy":
      // two distinct top-level components of the same (seed, replication)
      // pair, so a policy's draws can never alias the traffic/mobility
      // streams no matter what stream names either side picks.
      rng_(sim::hash_seed(scenario.seed, "driver", replication)) {
  scenario_.validate();
  network_ = std::make_unique<cellular::CellularNetwork>(
      scenario_.rings, scenario_.cell_radius_m, scenario_.capacity_bu);
  // Centre generator first, then one per remaining cell with positive
  // spatial weight.  Each generator gets a disjoint id range and its own
  // random stream (keyed by the station id, not the spawner index), so
  // reshaping the spatial map never perturbs another cell's workload.
  constexpr cellular::ConnectionId kIdStride = 1u << 24;
  const workload::SpatialLoadMap spatial(scenario_.spatial);
  traffic_.push_back({std::make_unique<cellular::TrafficGenerator>(
                          scenario_.traffic, network_->layout(),
                          cellular::HexCoord{0, 0},
                          network_->center().position(),
                          rng_.stream("traffic", 0), 1 + id_offset),
                      spatial.weight(cellular::HexCoord{0, 0},
                                     network_->center().position())});
  for (cellular::BaseStation* bs : network_->stations()) {
    if (bs->coord() == cellular::HexCoord{0, 0}) continue;
    const double w = spatial.weight(bs->coord(), bs->position());
    if (w <= 0.0) continue;
    traffic_.push_back({std::make_unique<cellular::TrafficGenerator>(
                            scenario_.traffic, network_->layout(),
                            bs->coord(), bs->position(),
                            rng_.stream("traffic", bs->id() + 1),
                            kIdStride * (bs->id() + 1) + id_offset),
                        w});
  }
  mobility_ = std::make_unique<cellular::MobilityModel>(
      scenario_.mobility, rng_.stream("mobility"));
  predictor_ = std::make_unique<cellular::DirectionPredictor>(
      scenario_.predictor, rng_.stream("predictor"));
}

cac::AdmissionRequest SessionDriver::make_request(
    const Connection& conn, const cellular::MobileState& state,
    RequestKind kind, const cellular::BaseStation& target) {
  cac::AdmissionRequest req;
  req.id = conn.id;
  req.service = conn.service;
  req.bandwidth = conn.bandwidth;
  req.kind = kind;
  req.priority = conn.priority;
  req.speed_kmh = state.speed_kmh;
  req.angle_deg = predictor_->predict_angle_deg(state, target.position());
  req.distance_m = cellular::distance(state.position, target.position());
  req.mobile = state;
  req.now = sim_.now();
  return req;
}

void SessionDriver::handle_arrival(const cellular::CallRequest& call,
                                   bool measured) {
  cellular::BaseStation* bs = network_->station_covering(call.mobile.position);
  FACSP_ENSURES(bs != nullptr);  // requests spawn inside their own cell

  Session s;
  s.conn.id = call.id;
  s.conn.service = call.service;
  s.conn.bandwidth = call.bandwidth;
  s.conn.priority = call.priority;
  s.conn.origin = RequestKind::kNew;
  s.conn.state = ConnectionState::kPending;
  s.conn.request_time = sim_.now();
  s.conn.holding_time = call.holding_time;
  s.state = call.mobile;
  s.serving = bs;
  s.measured = measured;

  const auto req = make_request(s.conn, s.state, RequestKind::kNew, *bs);
  const auto decision = policy_.decide(req, *bs);
  if (measured)
    metrics_.record_new_call(call.service, call.priority,
                             decision.admitted);
  if (!decision.admitted) {
    return;  // blocked; nothing was allocated
  }

  const bool ok = bs->allocate(s.conn, sim_.now(), /*via_handoff=*/false);
  FACSP_ENSURES(ok);  // decide() verified can_fit under the same event
  policy_.on_admitted(req, *bs);
  s.conn.state = ConnectionState::kActive;
  s.conn.start_time = sim_.now();

  const ConnectionId id = call.id;
  s.completion = sim_.schedule_in(call.holding_time,
                                  [this, id] { handle_completion(id); });
  if (scenario_.enable_mobility)
    s.next_move = sim_.schedule_in(scenario_.mobility_update_s,
                                   [this, id] { handle_mobility(id); });
  sessions_.emplace(id, std::move(s));
}

void SessionDriver::finish(Session& s, ConnectionState final_state) {
  if (s.conn.state == ConnectionState::kActive && s.serving != nullptr) {
    s.serving->release(s.conn.id, sim_.now());
    policy_.on_released(s.conn.id, s.conn.service, *s.serving);
  }
  sim_.cancel(s.completion);
  sim_.cancel(s.next_move);
  s.conn.state = final_state;
  s.conn.end_time = sim_.now();
  if (s.measured) {
    if (final_state == ConnectionState::kCompleted)
      metrics_.record_completion(s.conn.service);
    else if (final_state == ConnectionState::kDropped)
      metrics_.record_drop(s.conn.service);
  }
  sessions_.erase(s.conn.id);
}

SessionDriver::CellDeparture SessionDriver::depart(Session& s) {
  CellDeparture d;
  d.conn = s.conn;
  d.state = s.state;
  d.when = sim_.now();
  // The completion event would fire at start + holding; what is left of the
  // call continues in whichever cell admits it.
  d.remaining_holding_s = std::max(
      0.0, s.conn.start_time + s.conn.holding_time - sim_.now());
  d.measured = s.measured;
  if (s.conn.state == ConnectionState::kActive && s.serving != nullptr) {
    s.serving->release(s.conn.id, sim_.now());
    policy_.on_released(s.conn.id, s.conn.service, *s.serving);
  }
  sim_.cancel(s.completion);
  sim_.cancel(s.next_move);
  sessions_.erase(s.conn.id);
  return d;
}

void SessionDriver::handle_completion(ConnectionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;  // already finished
  finish(it->second, ConnectionState::kCompleted);
}

void SessionDriver::do_handoff(Session& s, cellular::BaseStation& target) {
  const auto req =
      make_request(s.conn, s.state, RequestKind::kHandoff, target);
  const auto decision = policy_.decide(req, target);
  if (s.measured) metrics_.record_handoff(s.conn.service, decision.admitted);
  if (!decision.admitted) {
    finish(s, ConnectionState::kDropped);
    return;
  }
  // Release on the source, then allocate on the target.
  s.serving->release(s.conn.id, sim_.now());
  policy_.on_released(s.conn.id, s.conn.service, *s.serving);
  const bool ok = target.allocate(s.conn, sim_.now(), /*via_handoff=*/true);
  FACSP_ENSURES(ok);
  policy_.on_admitted(req, target);
  s.serving = &target;
  ++s.conn.handoff_count;
}

void SessionDriver::handle_mobility(ConnectionId id) {
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  Session& s = it->second;

  mobility_->advance(s.state, scenario_.mobility_update_s);
  policy_.on_mobility(id, s.state, sim_.now());

  cellular::BaseStation* here =
      network_->station_covering(s.state.position);
  if (here == nullptr) {
    if (departure_sink_) {
      // Multi-cell mode: the session crosses into a neighbouring shard; the
      // inter-cell layer routes it (or completes it at the world edge).
      departure_sink_(depart(s));
      return;
    }
    // Left the modelled service area: the call leaves the system with its
    // resources freed (counted as a normal completion — the network did not
    // fail it).
    finish(s, ConnectionState::kCompleted);
    return;
  }
  if (here != s.serving) {
    do_handoff(s, *here);
    if (!sessions_.contains(id)) return;  // dropped during handoff
  }
  s.next_move = sim_.schedule_in(scenario_.mobility_update_s,
                                 [this, id] { handle_mobility(id); });
}

cac::AdmissionRequest SessionDriver::inbound_request(
    const CellArrival& arrival) {
  cellular::BaseStation* bs =
      network_->station_covering(arrival.state.position);
  FACSP_ENSURES(bs != nullptr);  // entry_fraction keeps entries in-cell
  auto req = make_request(arrival.conn, arrival.state, RequestKind::kHandoff,
                          *bs);
  req.now = arrival.when;
  return req;
}

bool SessionDriver::admit_inbound(const CellArrival& arrival,
                                  const cac::AdmissionRequest& req) {
  cellular::BaseStation* bs =
      network_->station_covering(arrival.state.position);
  FACSP_ENSURES(bs != nullptr);

  Session s;
  s.conn = arrival.conn;
  s.state = arrival.state;
  s.measured = arrival.measured;
  if (!bs->allocate(s.conn, arrival.when, /*via_handoff=*/true))
    return false;  // the batch over-admitted past physical capacity
  policy_.on_admitted(req, *bs);
  s.serving = bs;
  s.conn.state = ConnectionState::kActive;
  s.conn.start_time = arrival.when;
  s.conn.holding_time = arrival.remaining_holding_s;
  ++s.conn.handoff_count;

  const ConnectionId id = s.conn.id;
  s.completion =
      sim_.schedule_at(arrival.when + arrival.remaining_holding_s,
                       [this, id] { handle_completion(id); });
  if (scenario_.enable_mobility)
    s.next_move = sim_.schedule_at(arrival.when + scenario_.mobility_update_s,
                                   [this, id] { handle_mobility(id); });
  const bool inserted = sessions_.emplace(id, std::move(s)).second;
  FACSP_ENSURES(inserted);  // shard id namespaces are disjoint
  return true;
}

void SessionDriver::begin(int n_requests) {
  FACSP_EXPECTS(n_requests >= 0);
  policy_.reset();
  network_->start_metrics(0.0);

  for (std::size_t g = 0; g < traffic_.size(); ++g) {
    const bool measured = (g == 0);  // element 0 is the centre's generator
    const int count = workload::SpatialLoadMap::scaled_requests(
        traffic_[g].weight, n_requests);
    for (const auto& call : traffic_[g].gen->generate(count)) {
      sim_.schedule_at(call.arrival_time, [this, call, measured] {
        handle_arrival(call, measured);
      });
    }
  }
}

std::uint64_t SessionDriver::advance_until(sim::SimTime t) {
  return sim_.run_until(t);
}

sim::SimTime SessionDriver::next_event_time() const {
  return sim_.next_event_time();
}

RunResult SessionDriver::result() const {
  RunResult result;
  result.metrics = metrics_;
  // Average over the active period (first arrival batch to last event),
  // not to the safety horizon — run_until() parks the clock there even
  // when the system drained hours earlier.
  const sim::SimTime end = std::max(sim_.last_event_time(), 1e-9);
  result.duration_s = end;
  result.events = sim_.events_fired();
  result.center_utilization =
      network_->center().average_utilization(end);
  return result;
}

RunResult SessionDriver::run(int n_requests) {
  begin(n_requests);
  sim_.run_until(scenario_.horizon_s);
  return result();
}

}  // namespace facsp::core
