#include "core/experiment.h"

#include "cac/facs.h"
#include "cac/facs_p.h"
#include "cac/guard_channel.h"
#include "cac/scc.h"
#include "common/error.h"
#include "common/expects.h"
#include "core/multicell.h"
#include "core/sweep.h"

namespace facsp::core {

SweepConfig SweepConfig::paper_grid(int replications) {
  SweepConfig c;
  for (int n = 10; n <= 100; n += 10) c.n_values.push_back(n);
  c.replications = replications;
  return c;
}

namespace {

sim::Series stats_series(const std::string& name,
                         const std::vector<SweepPoint>& points,
                         const sim::SummaryStats SweepPoint::* member,
                         double ci_level) {
  sim::Series s(name);
  for (const auto& p : points) {
    const sim::SummaryStats& st = p.*member;
    s.add(p.n, st.mean(), st.ci_half_width(ci_level));
  }
  return s;
}

}  // namespace

CellMetrics CellMetrics::from_run(int n, std::uint64_t replication,
                                  const RunResult& run) {
  CellMetrics m;
  m.n = n;
  m.replication = replication;
  m.acceptance_percent = run.metrics.acceptance_percent();
  m.dropping_percent = 100.0 * run.metrics.dropping_probability();
  m.utilization_percent = 100.0 * run.center_utilization;
  m.completion_percent = 100.0 * run.metrics.completion_ratio();
  return m;
}

sim::Series SweepResult::acceptance_series(double ci_level) const {
  return stats_series(policy_name, points, &SweepPoint::acceptance_percent,
                      ci_level);
}

sim::Series SweepResult::dropping_series(double ci_level) const {
  return stats_series(policy_name, points, &SweepPoint::dropping_percent,
                      ci_level);
}

sim::Series SweepResult::completion_series(double ci_level) const {
  return stats_series(policy_name, points, &SweepPoint::completion_percent,
                      ci_level);
}

Experiment::Experiment(ScenarioConfig scenario, PolicyFactory factory,
                       std::string policy_label)
    : scenario_(scenario),
      factory_(std::move(factory)),
      label_(std::move(policy_label)) {
  scenario_.validate();
  FACSP_EXPECTS(static_cast<bool>(factory_));
}

RunResult Experiment::run_single(int n, std::uint64_t replication) const {
  // Every run — including the single-world paper run — goes through the
  // multi-cell engine.  With the default multicell.cells = 1 it builds
  // exactly one SessionDriver with the legacy seed roots ("driver" /
  // "policy" under (scenario.seed, replication)) and a no-op inter-cell
  // layer, so the result is bit-identical to the historical direct path —
  // the PR 3 golden-cell tests enforce that equivalence on every run.
  MultiCellEngine engine(scenario_, factory_, replication);
  return engine.run(n).aggregate;
}

SweepResult Experiment::run(const SweepConfig& sweep) const {
  FACSP_EXPECTS(!sweep.n_values.empty());
  FACSP_EXPECTS(sweep.replications >= 1);
  // Delegates to the declarative sweep layer on a single thread (the
  // SweepConfig::threads knob stays ignored here, as documented).  A
  // one-thread SweepRunner executes inline and reduces in the same
  // (n, replication) order as the old nested loop, so results are
  // bit-identical to the historical serial path.
  return run_legacy_sweep(scenario_, factory_, label_, sweep, /*threads=*/1);
}

PolicyFactory make_facs_p_factory(cac::FacsPConfig config) {
  return [config](const cellular::CellularNetwork&, sim::RngFactory&) {
    return std::make_unique<cac::FacsPPolicy>(config);
  };
}

PolicyFactory make_facs_pr_factory(cac::FacsPrConfig config) {
  return [config](const cellular::CellularNetwork&, sim::RngFactory&) {
    return std::make_unique<cac::FacsPrPolicy>(config);
  };
}

PolicyFactory make_facs_factory(cac::FacsConfig config) {
  return [config](const cellular::CellularNetwork& network,
                  sim::RngFactory&) {
    cac::FacsConfig cfg = config;
    if (cfg.flc1.cell_radius_m <= 0.0)
      cfg.flc1.cell_radius_m = network.layout().cell_radius();
    return std::make_unique<cac::FacsPolicy>(cfg);
  };
}

PolicyFactory make_scc_factory(cac::SccConfig config) {
  return [config](const cellular::CellularNetwork& network,
                  sim::RngFactory&) {
    return std::make_unique<cac::SccPolicy>(network, config);
  };
}

PolicyFactory make_guard_channel_factory(cellular::Bandwidth guard_bu) {
  return [guard_bu](const cellular::CellularNetwork&, sim::RngFactory&) {
    return std::make_unique<cac::GuardChannelPolicy>(guard_bu);
  };
}

PolicyFactory make_fractional_guard_factory(cellular::Bandwidth guard_bu) {
  return [guard_bu](const cellular::CellularNetwork&, sim::RngFactory& rng) {
    return std::make_unique<cac::FractionalGuardChannelPolicy>(
        guard_bu, rng.stream("fgc"));
  };
}

PolicyFactory make_complete_sharing_factory() {
  return [](const cellular::CellularNetwork&, sim::RngFactory&) {
    return std::make_unique<cac::CompleteSharingPolicy>();
  };
}

namespace {

// The single policy-name table: lookup, name listing and error messages all
// derive from it, so the three can never drift apart.
struct PolicyRegistryEntry {
  const char* name;
  PolicyFactory (*make)();
};

constexpr PolicyRegistryEntry kPolicyRegistry[] = {
    {"facs-p", [] { return make_facs_p_factory(); }},
    {"facs-pr", [] { return make_facs_pr_factory(); }},
    {"facs", [] { return make_facs_factory(); }},
    {"scc", [] { return make_scc_factory(); }},
    {"gc", [] { return make_guard_channel_factory(8.0); }},
    {"fgc", [] { return make_fractional_guard_factory(8.0); }},
    {"cs", [] { return make_complete_sharing_factory(); }},
};

}  // namespace

PolicyFactory policy_factory_by_name(std::string_view name) {
  for (const PolicyRegistryEntry& entry : kPolicyRegistry)
    if (name == entry.name) return entry.make();
  std::string valid;
  for (const PolicyRegistryEntry& entry : kPolicyRegistry) {
    if (!valid.empty()) valid += '|';
    valid += entry.name;
  }
  throw ConfigError("unknown policy '" + std::string(name) + "' (" + valid +
                    ")");
}

std::vector<std::string> policy_names() {
  std::vector<std::string> names;
  for (const PolicyRegistryEntry& entry : kPolicyRegistry)
    names.emplace_back(entry.name);
  return names;
}

}  // namespace facsp::core
