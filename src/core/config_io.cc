#include "core/config_io.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace facsp::core {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Field registry: one entry per serialisable scenario field, with a
/// printer and a parser, so save and load can never drift apart.
struct Field {
  std::function<std::string(const ScenarioConfig&)> print;
  std::function<void(ScenarioConfig&, const std::string&)> parse;
};

double parse_double(const std::string& v) {
  std::size_t used = 0;
  const double x = std::stod(v, &used);
  if (used != v.size()) throw std::invalid_argument("trailing characters");
  return x;
}

int parse_int(const std::string& v) {
  std::size_t used = 0;
  const int x = std::stoi(v, &used);
  if (used != v.size()) throw std::invalid_argument("trailing characters");
  return x;
}

std::uint64_t parse_u64(const std::string& v) {
  if (v.empty() || v[0] == '-') throw std::invalid_argument("negative");
  std::size_t used = 0;
  const std::uint64_t x = std::stoull(v, &used);
  if (used != v.size()) throw std::invalid_argument("trailing characters");
  return x;
}

bool parse_bool(const std::string& v) {
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  throw std::invalid_argument("expected true/false");
}

const std::map<std::string, Field>& registry() {
  static const std::map<std::string, Field> kFields = [] {
    std::map<std::string, Field> f;
    auto add_double = [&f](const std::string& key, auto getter, auto setter) {
      f[key] = Field{
          [getter](const ScenarioConfig& s) { return format_double(getter(s)); },
          [setter](ScenarioConfig& s, const std::string& v) {
            setter(s, parse_double(v));
          }};
    };

    f["seed"] = Field{
        [](const ScenarioConfig& s) { return std::to_string(s.seed); },
        [](ScenarioConfig& s, const std::string& v) {
          s.seed = parse_u64(v);
        }};
    f["rings"] = Field{
        [](const ScenarioConfig& s) { return std::to_string(s.rings); },
        [](ScenarioConfig& s, const std::string& v) { s.rings = parse_int(v); }};
    add_double(
        "cell_radius_m", [](const ScenarioConfig& s) { return s.cell_radius_m; },
        [](ScenarioConfig& s, double v) { s.cell_radius_m = v; });
    add_double(
        "capacity_bu", [](const ScenarioConfig& s) { return s.capacity_bu; },
        [](ScenarioConfig& s, double v) { s.capacity_bu = v; });
    // spatial.*  (polymorphic: the kind selects which knobs apply)
    f["spatial.kind"] = Field{
        [](const ScenarioConfig& s) {
          return std::string(workload::spatial_kind_name(s.spatial.kind));
        },
        [](ScenarioConfig& s, const std::string& v) {
          s.spatial.kind = workload::spatial_kind_from_name(v);
        }};
    add_double(
        "spatial.hotspot_decay",
        [](const ScenarioConfig& s) { return s.spatial.hotspot_decay; },
        [](ScenarioConfig& s, double v) { s.spatial.hotspot_decay = v; });
    add_double(
        "spatial.highway_halfwidth_m",
        [](const ScenarioConfig& s) { return s.spatial.highway_halfwidth_m; },
        [](ScenarioConfig& s, double v) { s.spatial.highway_halfwidth_m = v; });
    add_double(
        "spatial.highway_off_weight",
        [](const ScenarioConfig& s) { return s.spatial.highway_off_weight; },
        [](ScenarioConfig& s, double v) { s.spatial.highway_off_weight = v; });
    // sim.*  (multi-cell sharding; see core/multicell.h)
    f["sim.cells"] = Field{
        [](const ScenarioConfig& s) {
          return std::to_string(s.multicell.cells);
        },
        [](ScenarioConfig& s, const std::string& v) {
          s.multicell.cells = parse_int(v);
        }};
    add_double(
        "sim.epoch_s",
        [](const ScenarioConfig& s) { return s.multicell.epoch_s; },
        [](ScenarioConfig& s, double v) { s.multicell.epoch_s = v; });
    f["sim.epoch_adaptive"] = Field{
        [](const ScenarioConfig& s) {
          return std::string(s.multicell.epoch_adaptive ? "true" : "false");
        },
        [](ScenarioConfig& s, const std::string& v) {
          s.multicell.epoch_adaptive = parse_bool(v);
        }};
    add_double(
        "sim.epoch_min_s",
        [](const ScenarioConfig& s) { return s.multicell.epoch_min_s; },
        [](ScenarioConfig& s, double v) { s.multicell.epoch_min_s = v; });
    add_double(
        "sim.epoch_max_s",
        [](const ScenarioConfig& s) { return s.multicell.epoch_max_s; },
        [](ScenarioConfig& s, double v) { s.multicell.epoch_max_s = v; });
    f["sim.workload_cells"] = Field{
        [](const ScenarioConfig& s) {
          return std::to_string(s.multicell.workload_cells);
        },
        [](ScenarioConfig& s, const std::string& v) {
          s.multicell.workload_cells = parse_int(v);
        }};
    add_double(
        "sim.entry_fraction",
        [](const ScenarioConfig& s) { return s.multicell.entry_fraction; },
        [](ScenarioConfig& s, double v) { s.multicell.entry_fraction = v; });
    // Pure throughput knob (worker threads draining shards); results are
    // bit-identical for every value, so sharing configs across machines
    // with different values changes nothing but wall-clock.
    f["sim.threads"] = Field{
        [](const ScenarioConfig& s) {
          return std::to_string(s.multicell.threads);
        },
        [](ScenarioConfig& s, const std::string& v) {
          s.multicell.threads = parse_int(v);
        }};
    f["enable_mobility"] = Field{
        [](const ScenarioConfig& s) {
          return std::string(s.enable_mobility ? "true" : "false");
        },
        [](ScenarioConfig& s, const std::string& v) {
          s.enable_mobility = parse_bool(v);
        }};
    add_double(
        "mobility_update_s",
        [](const ScenarioConfig& s) { return s.mobility_update_s; },
        [](ScenarioConfig& s, double v) { s.mobility_update_s = v; });
    add_double(
        "horizon_s", [](const ScenarioConfig& s) { return s.horizon_s; },
        [](ScenarioConfig& s, double v) { s.horizon_s = v; });

    // traffic.*
    add_double(
        "traffic.arrival_window_s",
        [](const ScenarioConfig& s) { return s.traffic.arrival_window_s; },
        [](ScenarioConfig& s, double v) { s.traffic.arrival_window_s = v; });
    add_double(
        "traffic.mean_holding_s",
        [](const ScenarioConfig& s) { return s.traffic.mean_holding_s; },
        [](ScenarioConfig& s, double v) { s.traffic.mean_holding_s = v; });
    add_double(
        "traffic.mix.text",
        [](const ScenarioConfig& s) { return s.traffic.mix.text; },
        [](ScenarioConfig& s, double v) { s.traffic.mix.text = v; });
    add_double(
        "traffic.mix.voice",
        [](const ScenarioConfig& s) { return s.traffic.mix.voice; },
        [](ScenarioConfig& s, double v) { s.traffic.mix.voice = v; });
    add_double(
        "traffic.mix.video",
        [](const ScenarioConfig& s) { return s.traffic.mix.video; },
        [](ScenarioConfig& s, double v) { s.traffic.mix.video = v; });
    add_double(
        "traffic.min_speed_kmh",
        [](const ScenarioConfig& s) { return s.traffic.min_speed_kmh; },
        [](ScenarioConfig& s, double v) { s.traffic.min_speed_kmh = v; });
    add_double(
        "traffic.max_speed_kmh",
        [](const ScenarioConfig& s) { return s.traffic.max_speed_kmh; },
        [](ScenarioConfig& s, double v) { s.traffic.max_speed_kmh = v; });
    add_double(
        "traffic.priority_low",
        [](const ScenarioConfig& s) { return s.traffic.priority_low; },
        [](ScenarioConfig& s, double v) { s.traffic.priority_low = v; });
    add_double(
        "traffic.priority_normal",
        [](const ScenarioConfig& s) { return s.traffic.priority_normal; },
        [](ScenarioConfig& s, double v) { s.traffic.priority_normal = v; });
    add_double(
        "traffic.priority_high",
        [](const ScenarioConfig& s) { return s.traffic.priority_high; },
        [](ScenarioConfig& s, double v) { s.traffic.priority_high = v; });

    // traffic.arrival.*  (polymorphic: the kind selects which knobs apply)
    f["traffic.arrival.kind"] = Field{
        [](const ScenarioConfig& s) {
          return std::string(
              workload::arrival_kind_name(s.traffic.arrival.kind));
        },
        [](ScenarioConfig& s, const std::string& v) {
          s.traffic.arrival.kind = workload::arrival_kind_from_name(v);
        }};
    add_double(
        "traffic.arrival.on_rate",
        [](const ScenarioConfig& s) { return s.traffic.arrival.on_rate; },
        [](ScenarioConfig& s, double v) { s.traffic.arrival.on_rate = v; });
    add_double(
        "traffic.arrival.off_rate",
        [](const ScenarioConfig& s) { return s.traffic.arrival.off_rate; },
        [](ScenarioConfig& s, double v) { s.traffic.arrival.off_rate = v; });
    add_double(
        "traffic.arrival.mean_on_s",
        [](const ScenarioConfig& s) { return s.traffic.arrival.mean_on_s; },
        [](ScenarioConfig& s, double v) { s.traffic.arrival.mean_on_s = v; });
    add_double(
        "traffic.arrival.mean_off_s",
        [](const ScenarioConfig& s) { return s.traffic.arrival.mean_off_s; },
        [](ScenarioConfig& s, double v) { s.traffic.arrival.mean_off_s = v; });
    add_double(
        "traffic.arrival.diurnal_amplitude",
        [](const ScenarioConfig& s) {
          return s.traffic.arrival.diurnal_amplitude;
        },
        [](ScenarioConfig& s, double v) {
          s.traffic.arrival.diurnal_amplitude = v;
        });
    add_double(
        "traffic.arrival.diurnal_period_s",
        [](const ScenarioConfig& s) {
          return s.traffic.arrival.diurnal_period_s;
        },
        [](ScenarioConfig& s, double v) {
          s.traffic.arrival.diurnal_period_s = v;
        });
    add_double(
        "traffic.arrival.diurnal_phase_rad",
        [](const ScenarioConfig& s) {
          return s.traffic.arrival.diurnal_phase_rad;
        },
        [](ScenarioConfig& s, double v) {
          s.traffic.arrival.diurnal_phase_rad = v;
        });
    add_double(
        "traffic.arrival.flash_fraction",
        [](const ScenarioConfig& s) {
          return s.traffic.arrival.flash_fraction;
        },
        [](ScenarioConfig& s, double v) {
          s.traffic.arrival.flash_fraction = v;
        });
    add_double(
        "traffic.arrival.flash_start_s",
        [](const ScenarioConfig& s) { return s.traffic.arrival.flash_start_s; },
        [](ScenarioConfig& s, double v) {
          s.traffic.arrival.flash_start_s = v;
        });
    add_double(
        "traffic.arrival.flash_duration_s",
        [](const ScenarioConfig& s) {
          return s.traffic.arrival.flash_duration_s;
        },
        [](ScenarioConfig& s, double v) {
          s.traffic.arrival.flash_duration_s = v;
        });

    // Time-varying mix: "none" or "start:text/voice/video;start:..."
    f["traffic.mix_schedule"] = Field{
        [](const ScenarioConfig& s) {
          return s.traffic.mix_schedule.to_string();
        },
        [](ScenarioConfig& s, const std::string& v) {
          s.traffic.mix_schedule = workload::MixSchedule::from_string(v);
        }};

    // Optional fields: "none" disables them.
    f["traffic.fixed_speed_kmh"] = Field{
        [](const ScenarioConfig& s) {
          return s.traffic.fixed_speed_kmh
                     ? format_double(*s.traffic.fixed_speed_kmh)
                     : std::string("none");
        },
        [](ScenarioConfig& s, const std::string& v) {
          if (v == "none")
            s.traffic.fixed_speed_kmh.reset();
          else
            s.traffic.fixed_speed_kmh = parse_double(v);
        }};
    f["traffic.fixed_angle_deg"] = Field{
        [](const ScenarioConfig& s) {
          return s.traffic.fixed_angle_deg
                     ? format_double(*s.traffic.fixed_angle_deg)
                     : std::string("none");
        },
        [](ScenarioConfig& s, const std::string& v) {
          if (v == "none")
            s.traffic.fixed_angle_deg.reset();
          else
            s.traffic.fixed_angle_deg = parse_double(v);
        }};

    // mobility.* / predictor.*
    add_double(
        "mobility.base_sigma_deg",
        [](const ScenarioConfig& s) { return s.mobility.base_sigma_deg; },
        [](ScenarioConfig& s, double v) { s.mobility.base_sigma_deg = v; });
    add_double(
        "mobility.reference_kmh",
        [](const ScenarioConfig& s) { return s.mobility.reference_kmh; },
        [](ScenarioConfig& s, double v) { s.mobility.reference_kmh = v; });
    add_double(
        "mobility.update_interval_s",
        [](const ScenarioConfig& s) { return s.mobility.update_interval_s; },
        [](ScenarioConfig& s, double v) { s.mobility.update_interval_s = v; });
    add_double(
        "mobility.speed_sigma_kmh",
        [](const ScenarioConfig& s) { return s.mobility.speed_sigma_kmh; },
        [](ScenarioConfig& s, double v) { s.mobility.speed_sigma_kmh = v; });
    add_double(
        "predictor.base_sigma_deg",
        [](const ScenarioConfig& s) { return s.predictor.base_sigma_deg; },
        [](ScenarioConfig& s, double v) { s.predictor.base_sigma_deg = v; });
    add_double(
        "predictor.reference_kmh",
        [](const ScenarioConfig& s) { return s.predictor.reference_kmh; },
        [](ScenarioConfig& s, double v) { s.predictor.reference_kmh = v; });
    return f;
  }();
  return kFields;
}

}  // namespace

std::string format_double(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, end);
}

std::vector<std::string> split_fields(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t hit = s.find(delim, pos);
    out.push_back(s.substr(pos, hit == std::string::npos ? hit : hit - pos));
    if (hit == std::string::npos) break;
    pos = hit + 1;
  }
  return out;
}

void apply_scenario_key(ScenarioConfig& scenario, const std::string& key,
                        const std::string& value) {
  const auto it = registry().find(key);
  if (it == registry().end())
    throw ConfigError("unknown scenario key '" + key +
                      "' (see --dump-default for the full list)");
  try {
    it->second.parse(scenario, value);
  } catch (const std::exception& e) {
    throw ConfigError("bad value '" + value + "' for scenario key '" + key +
                      "' (" + e.what() + ")");
  }
}

std::vector<std::string> scenario_keys() {
  std::vector<std::string> keys;
  keys.reserve(registry().size());
  for (const auto& [key, field] : registry()) keys.push_back(key);
  return keys;
}

void save_scenario(const ScenarioConfig& scenario, std::ostream& os) {
  os << "# facsp scenario (key = value; 'none' clears optional fields)\n";
  for (const auto& [key, field] : registry())
    os << key << " = " << field.print(scenario) << '\n';
}

std::string scenario_to_string(const ScenarioConfig& scenario) {
  std::ostringstream os;
  save_scenario(scenario, os);
  return os.str();
}

ScenarioConfig load_scenario(std::istream& is) {
  ScenarioConfig scenario;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos)
      throw ParseError("scenario: expected 'key = value', got '" + trimmed +
                           "'",
                       lineno);
    const std::string key = trim(trimmed.substr(0, eq));
    const std::string value = trim(trimmed.substr(eq + 1));
    const auto it = registry().find(key);
    if (it == registry().end())
      throw ParseError("scenario: unknown key '" + key + "'", lineno);
    try {
      it->second.parse(scenario, value);
    } catch (const std::exception& e) {
      throw ParseError("scenario: bad value '" + value + "' for '" + key +
                           "' (" + e.what() + ")",
                       lineno);
    }
  }
  scenario.validate();
  return scenario;
}

ScenarioConfig scenario_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_scenario(is);
}

void save_scenario_file(const ScenarioConfig& scenario,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open '" + path + "' for writing");
  save_scenario(scenario, os);
  if (!os) throw Error("failed writing '" + path + "'");
}

ScenarioConfig load_scenario_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open '" + path + "'");
  return load_scenario(is);
}

}  // namespace facsp::core
