#include "core/multicell.h"

#include <algorithm>
#include <cmath>

#include "common/expects.h"
#include "common/math_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/thread_pool.h"

namespace facsp::core {

namespace {

/// Registered once, on the first epoch that runs with metrics enabled;
/// afterwards every epoch just dereferences cached references.
struct EngineMetrics {
  obs::Counter& epochs;
  obs::Counter& routed;
  obs::Counter& left_world;
  obs::Counter& admitted;
  obs::Counter& dropped;
  obs::Histogram& drain_ns;
  obs::Histogram& barrier_ns;
  obs::Gauge& sessions_resident;

  static EngineMetrics& get() {
    static EngineMetrics m{
        obs::Registry::instance().counter("engine.epochs"),
        obs::Registry::instance().counter("engine.handover.routed"),
        obs::Registry::instance().counter("engine.handover.left_world"),
        obs::Registry::instance().counter("engine.handover.admitted"),
        obs::Registry::instance().counter("engine.handover.dropped"),
        obs::Registry::instance().histogram("engine.drain_ns"),
        obs::Registry::instance().histogram("engine.barrier_ns"),
        obs::Registry::instance().gauge("engine.sessions_resident"),
    };
    return m;
  }
};

/// Disjoint per-shard connection-id namespaces: migrating sessions keep
/// their origin ids, so no two shards may ever mint the same one.  2^40
/// leaves every shard the full legacy id space (spawner strides are 2^24).
constexpr cellular::ConnectionId kCellIdOffset = 1ull << 40;

/// Super-grid coordinates: centre-out ring spiral (the first `cells`
/// coordinates of it), so cell 0 is always the centre and cells 1..6 its
/// ring-1 neighbours.
std::vector<cellular::HexCoord> spiral_coords(int cells) {
  std::vector<cellular::HexCoord> out;
  out.reserve(static_cast<std::size_t>(cells));
  for (int radius = 0; static_cast<int>(out.size()) < cells; ++radius)
    for (const cellular::HexCoord& c :
         cellular::hex_ring(cellular::HexCoord{0, 0}, radius)) {
      out.push_back(c);
      if (static_cast<int>(out.size()) == cells) break;
    }
  return out;
}

}  // namespace

MultiCellEngine::MultiCellEngine(const ScenarioConfig& scenario,
                                 const PolicyFactory& factory,
                                 std::uint64_t replication)
    : scenario_(scenario) {
  scenario_.validate();
  FACSP_EXPECTS(static_cast<bool>(factory));

  coords_ = spiral_coords(scenario_.multicell.cells);
  index_.reserve(coords_.size());
  for (std::size_t k = 0; k < coords_.size(); ++k)
    index_.emplace(coords_[k], static_cast<int>(k));

  // World angle of each hex neighbour direction (fixed E, NE, NW, W, SW, SE
  // order).  Computed from the layout geometry, not hardcoded, so a change
  // of hex orientation cannot desynchronise routing from the grid.
  const cellular::HexLayout unit(1.0);
  const auto dirs = cellular::hex_neighbors(cellular::HexCoord{0, 0});
  for (std::size_t d = 0; d < dirs.size(); ++d) {
    dir_[d] = dirs[d];
    dir_angle_[d] = cellular::heading_deg(unit.center(cellular::HexCoord{0, 0}),
                                          unit.center(dirs[d]));
  }

  shards_.reserve(coords_.size());
  for (std::size_t k = 0; k < coords_.size(); ++k) {
    // Cell 0 keeps the legacy seed roots so a 1-cell engine run *is* the
    // historical single-world run, bit for bit; every other shard gets its
    // own independent family under the "cell" component.
    const std::uint64_t cell_seed =
        k == 0 ? scenario_.seed
               : sim::hash_seed(scenario_.seed, "cell",
                                static_cast<std::uint64_t>(k));
    ScenarioConfig cell_scenario = scenario_;
    cell_scenario.seed = cell_seed;

    Shard sh;
    sh.policy = std::make_unique<cac::DeferredPolicy>();
    sh.driver = std::make_unique<SessionDriver>(
        cell_scenario, *sh.policy, replication,
        kCellIdOffset * static_cast<cellular::ConnectionId>(k));
    sim::RngFactory policy_rng(
        sim::hash_seed(cell_seed, "policy", replication));
    sh.policy->inner = factory(sh.driver->network(), policy_rng);
    shards_.push_back(std::move(sh));
  }
}

int MultiCellEngine::route_target(int cell, double heading_deg) const {
  std::size_t best = 0;
  double best_dist = angle_distance_deg(heading_deg, dir_angle_[0]);
  for (std::size_t d = 1; d < 6; ++d) {
    const double dist = angle_distance_deg(heading_deg, dir_angle_[d]);
    if (dist < best_dist) {
      best = d;
      best_dist = dist;
    }
  }
  const cellular::HexCoord& dir = dir_[best];
  const cellular::HexCoord& from = coords_[static_cast<std::size_t>(cell)];
  const auto it = index_.find(cellular::HexCoord{from.q + dir.q,
                                                 from.r + dir.r});
  return it == index_.end() ? -1 : it->second;
}

cellular::MobileState MultiCellEngine::entry_state(
    const SessionDriver::CellDeparture& dep) const {
  // Re-materialise in the destination frame: entering its centre cell from
  // the side the user came from — entry_fraction * cell_radius behind the
  // centre BS along the (unchanged) travel direction.  entry_fraction stays
  // below the hex inradius ratio, so the point is always inside the cell.
  cellular::MobileState s = dep.state;
  const double h = deg_to_rad(s.heading_deg);
  const double r = scenario_.cell_radius_m * scenario_.multicell.entry_fraction;
  s.position = cellular::Point{-r * std::cos(h), -r * std::sin(h)};
  return s;
}

void MultiCellEngine::route_epoch(sim::SimTime t_end) {
  EpochStats es;
  es.t_end = t_end;

  for (Shard& sh : shards_) sh.inbox.clear();

  // Phase 1 — route departures, in fixed (cell, drain-event) order.
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& src = shards_[k];
    for (SessionDriver::CellDeparture& dep : src.outbox) {
      ++es.departures;
      const int dst =
          route_target(static_cast<int>(k), dep.state.heading_deg);
      if (observer_) es.routes.emplace_back(static_cast<int>(k), dst);
      if (dst < 0) {
        // Off the super-grid edge: the call leaves the modelled area as a
        // completion, just like the single-world driver's semantics.
        ++es.left_world;
        ++src.left_world;
        if (dep.measured)
          src.driver->metrics().record_completion(dep.conn.service);
        continue;
      }
      ++es.delivered;
      ++src.handoffs_out;
      ++shards_[static_cast<std::size_t>(dst)].handoffs_in;
      SessionDriver::CellArrival a;
      a.conn = dep.conn;
      a.state = entry_state(dep);
      a.when = t_end;
      a.remaining_holding_s = dep.remaining_holding_s;
      a.measured = dep.measured;
      shards_[static_cast<std::size_t>(dst)].inbox.push_back(std::move(a));
    }
    src.outbox.clear();
  }

  // Phase 2 — batched admission: every destination cell's pending inbound
  // handovers of this drain become ONE decide_batch call against its centre
  // BS (one load snapshot per batch; allocation re-checks capacity, so an
  // over-admitting burst degrades into drops, never negative counters).
  for (Shard& sh : shards_) {
    if (sh.inbox.empty()) continue;
    sh.requests.clear();
    for (const SessionDriver::CellArrival& a : sh.inbox)
      sh.requests.push_back(sh.driver->inbound_request(a));
    sh.decisions.resize(sh.inbox.size());
    sh.policy->decide_batch(sh.requests, sh.driver->network().center(),
                            sh.decisions);
    for (std::size_t i = 0; i < sh.inbox.size(); ++i) {
      const SessionDriver::CellArrival& a = sh.inbox[i];
      const bool ok = sh.decisions[i].admitted &&
                      sh.driver->admit_inbound(a, sh.requests[i]);
      if (a.measured) sh.driver->metrics().record_handoff(a.conn.service, ok);
      if (ok) {
        ++es.admitted;
      } else {
        ++es.dropped;
        if (a.measured) sh.driver->metrics().record_drop(a.conn.service);
      }
    }
  }

  const bool metrics_on = obs::metrics_enabled();
  if (observer_ || metrics_on) {
    for (const Shard& sh : shards_) {
      es.active_sessions += sh.driver->session_count();
      for (const cellular::BaseStation* bs : sh.driver->network().stations())
        es.used_bu += bs->load().used;
    }
    if (metrics_on) {
      EngineMetrics& m = EngineMetrics::get();
      m.epochs.add(1);
      m.routed.add(es.delivered);
      m.left_world.add(es.left_world);
      m.admitted.add(es.admitted);
      m.dropped.add(es.dropped);
      m.sessions_resident.set(
          static_cast<std::int64_t>(es.active_sessions));
    }
    if (observer_) observer_(es);
  }
}

MultiCellResult MultiCellEngine::run(int n_requests_per_cell) {
  FACSP_EXPECTS(!started_);
  started_ = true;

  for (Shard& sh : shards_) {
    Shard* self = &sh;  // shards_ is stable from here on
    sh.driver->set_departure_sink(
        [self](SessionDriver::CellDeparture dep) {
          self->outbox.push_back(std::move(dep));
        });
    sh.driver->begin(n_requests_per_cell);
  }

  // Never spawn more workers than there are shards to drain: run_single
  // builds an engine per replication, so surplus threads would be pure
  // spawn/join overhead (results are thread-count-invariant either way).
  sim::ThreadPool pool(static_cast<unsigned>(std::min<std::size_t>(
      sim::ThreadPool::resolve_threads(scenario_.multicell.threads),
      shards_.size())));
  const sim::SimTime dt = scenario_.multicell.epoch_s;
  const sim::SimTime horizon = scenario_.horizon_s;
  sim::SimTime t = 0.0;
  while (t < horizon) {
    bool any = false;
    for (const Shard& sh : shards_) any = any || !sh.driver->idle();
    if (!any) break;
    const sim::SimTime t_end = std::min(t + dt, horizon);
    obs::Histogram* const drain_hist =
        obs::metrics_enabled() ? &EngineMetrics::get().drain_ns : nullptr;
    obs::Histogram* const barrier_hist =
        obs::metrics_enabled() ? &EngineMetrics::get().barrier_ns : nullptr;
    {
      FACSP_TRACE_SPAN("engine", "epoch");
      // Parallel drain: share-nothing — each shard touches only its own
      // driver/policy/outbox, so worker scheduling cannot affect results.
      pool.parallel_for(shards_.size(), [&](std::size_t i) {
        obs::ScopedSpan drain("engine", "shard_drain",
                              static_cast<std::int64_t>(i), drain_hist);
        shards_[i].driver->advance_until(t_end);
      });
      // Serial barrier: routing + batched admission in fixed order.
      obs::ScopedSpan barrier("engine", "barrier", obs::Tracer::kNoArg,
                              barrier_hist);
      route_epoch(t_end);
    }
    t = t_end;
  }

  MultiCellResult out;
  out.cells.reserve(shards_.size());
  RunResult agg;
  double util_sum = 0.0;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    MultiCellResult::Cell c;
    c.coord = coords_[k];
    c.run = shards_[k].driver->result();
    c.handoffs_out = shards_[k].handoffs_out;
    c.handoffs_in = shards_[k].handoffs_in;
    c.left_world = shards_[k].left_world;
    agg.metrics.merge(c.run.metrics);
    agg.duration_s = std::max(agg.duration_s, c.run.duration_s);
    agg.events += c.run.events;
    util_sum += c.run.center_utilization;
    out.cells.push_back(std::move(c));
  }
  agg.center_utilization = util_sum / static_cast<double>(shards_.size());
  out.aggregate = std::move(agg);
  return out;
}

}  // namespace facsp::core
