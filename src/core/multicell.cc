#include "core/multicell.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/expects.h"
#include "common/math_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/thread_pool.h"

namespace facsp::core {

namespace {

/// Registered once, on the first epoch that runs with metrics enabled;
/// afterwards every epoch just dereferences cached references.
struct EngineMetrics {
  obs::Counter& epochs;
  obs::Counter& epochs_skipped;
  obs::Counter& shards_drained;
  obs::Counter& routed;
  obs::Counter& left_world;
  obs::Counter& admitted;
  obs::Counter& dropped;
  obs::Histogram& drain_ns;
  obs::Histogram& barrier_ns;
  obs::Gauge& sessions_resident;

  static EngineMetrics& get() {
    static EngineMetrics m{
        obs::Registry::instance().counter("engine.epochs"),
        obs::Registry::instance().counter("engine.epochs_skipped"),
        obs::Registry::instance().counter("engine.shards_drained"),
        obs::Registry::instance().counter("engine.handover.routed"),
        obs::Registry::instance().counter("engine.handover.left_world"),
        obs::Registry::instance().counter("engine.handover.admitted"),
        obs::Registry::instance().counter("engine.handover.dropped"),
        obs::Registry::instance().histogram("engine.drain_ns"),
        obs::Registry::instance().histogram("engine.barrier_ns"),
        obs::Registry::instance().gauge("engine.sessions_resident"),
    };
    return m;
  }
};

/// Deterministic adaptive-epoch thresholds: a barrier delivering more than
/// kDense inter-cell handovers halves the epoch (tighter coupling deserves
/// finer windows); fewer than kSparse doubles it.  Pure functions of the
/// serial barrier's counters, so adaptation is thread-count-invariant.
constexpr std::uint64_t kDenseHandoversPerEpoch = 32;
constexpr std::uint64_t kSparseHandoversPerEpoch = 4;

/// Disjoint per-shard connection-id namespaces: migrating sessions keep
/// their origin ids, so no two shards may ever mint the same one.  2^40
/// leaves every shard the full legacy id space (spawner strides are 2^24).
constexpr cellular::ConnectionId kCellIdOffset = 1ull << 40;

/// Super-grid coordinates: centre-out ring spiral (the first `cells`
/// coordinates of it), so cell 0 is always the centre and cells 1..6 its
/// ring-1 neighbours.
std::vector<cellular::HexCoord> spiral_coords(int cells) {
  std::vector<cellular::HexCoord> out;
  out.reserve(static_cast<std::size_t>(cells));
  for (int radius = 0; static_cast<int>(out.size()) < cells; ++radius)
    for (const cellular::HexCoord& c :
         cellular::hex_ring(cellular::HexCoord{0, 0}, radius)) {
      out.push_back(c);
      if (static_cast<int>(out.size()) == cells) break;
    }
  return out;
}

}  // namespace

MultiCellEngine::MultiCellEngine(const ScenarioConfig& scenario,
                                 const PolicyFactory& factory,
                                 std::uint64_t replication)
    : scenario_(scenario) {
  scenario_.validate();
  FACSP_EXPECTS(static_cast<bool>(factory));

  coords_ = spiral_coords(scenario_.multicell.cells);
  index_.reserve(coords_.size());
  for (std::size_t k = 0; k < coords_.size(); ++k)
    index_.emplace(coords_[k], static_cast<int>(k));

  // World angle of each hex neighbour direction (fixed E, NE, NW, W, SW, SE
  // order).  Computed from the layout geometry, not hardcoded, so a change
  // of hex orientation cannot desynchronise routing from the grid.
  const cellular::HexLayout unit(1.0);
  const auto dirs = cellular::hex_neighbors(cellular::HexCoord{0, 0});
  for (std::size_t d = 0; d < dirs.size(); ++d) {
    dir_[d] = dirs[d];
    dir_angle_[d] = cellular::heading_deg(unit.center(cellular::HexCoord{0, 0}),
                                          unit.center(dirs[d]));
  }

  shards_.reserve(coords_.size());
  for (std::size_t k = 0; k < coords_.size(); ++k) {
    // Cell 0 keeps the legacy seed roots so a 1-cell engine run *is* the
    // historical single-world run, bit for bit; every other shard gets its
    // own independent family under the "cell" component.
    const std::uint64_t cell_seed =
        k == 0 ? scenario_.seed
               : sim::hash_seed(scenario_.seed, "cell",
                                static_cast<std::uint64_t>(k));
    ScenarioConfig cell_scenario = scenario_;
    cell_scenario.seed = cell_seed;

    Shard sh;
    sh.policy = std::make_unique<cac::DeferredPolicy>();
    sh.driver = std::make_unique<SessionDriver>(
        cell_scenario, *sh.policy, replication,
        kCellIdOffset * static_cast<cellular::ConnectionId>(k));
    sim::RngFactory policy_rng(
        sim::hash_seed(cell_seed, "policy", replication));
    sh.policy->inner = factory(sh.driver->network(), policy_rng);
    shards_.push_back(std::move(sh));
  }
}

int MultiCellEngine::route_target(int cell, double heading_deg) const {
  std::size_t best = 0;
  double best_dist = angle_distance_deg(heading_deg, dir_angle_[0]);
  for (std::size_t d = 1; d < 6; ++d) {
    const double dist = angle_distance_deg(heading_deg, dir_angle_[d]);
    if (dist < best_dist) {
      best = d;
      best_dist = dist;
    }
  }
  const cellular::HexCoord& dir = dir_[best];
  const cellular::HexCoord& from = coords_[static_cast<std::size_t>(cell)];
  const auto it = index_.find(cellular::HexCoord{from.q + dir.q,
                                                 from.r + dir.r});
  return it == index_.end() ? -1 : it->second;
}

cellular::MobileState MultiCellEngine::entry_state(
    const SessionDriver::CellDeparture& dep) const {
  // Re-materialise in the destination frame: entering its centre cell from
  // the side the user came from — entry_fraction * cell_radius behind the
  // centre BS along the (unchanged) travel direction.  entry_fraction stays
  // below the hex inradius ratio, so the point is always inside the cell.
  cellular::MobileState s = dep.state;
  const double h = deg_to_rad(s.heading_deg);
  const double r = scenario_.cell_radius_m * scenario_.multicell.entry_fraction;
  s.position = cellular::Point{-r * std::cos(h), -r * std::sin(h)};
  return s;
}

void MultiCellEngine::route_epoch(sim::SimTime t_end) {
  // stats_ is a member so the per-barrier buffers (routes in particular)
  // persist: clear() keeps capacity, and steady-state barriers allocate
  // nothing even with an observer attached (bench_multicell audits this).
  EpochStats& es = stats_;
  es.t_end = t_end;
  es.departures = es.delivered = es.left_world = 0;
  es.admitted = es.dropped = 0;
  es.routes.clear();
  es.active_sessions = 0;
  es.used_bu = 0.0;

  // Inbox invariant: every inbox is empty here — phase 2 clears each one it
  // fills, right after processing it.  Only drained shards can hold outbox
  // records, so iterating the (ascending) drain list visits exactly the
  // shards the historical all-cells sweep routed, in the same order.
  touched_.clear();

  // Phase 1 — route departures, in fixed (cell, drain-event) order.
  for (const int k : drain_) {
    Shard& src = shards_[static_cast<std::size_t>(k)];
    for (SessionDriver::CellDeparture& dep : src.outbox) {
      ++es.departures;
      const int dst = route_target(k, dep.state.heading_deg);
      if (observer_) es.routes.emplace_back(k, dst);
      if (dst < 0) {
        // Off the super-grid edge: the call leaves the modelled area as a
        // completion, just like the single-world driver's semantics.
        ++es.left_world;
        ++src.left_world;
        if (dep.measured)
          src.driver->metrics().record_completion(dep.conn.service);
        continue;
      }
      ++es.delivered;
      ++src.handoffs_out;
      Shard& dsh = shards_[static_cast<std::size_t>(dst)];
      ++dsh.handoffs_in;
      if (dsh.inbox.empty()) touched_.push_back(dst);  // first touch
      SessionDriver::CellArrival a;
      a.conn = dep.conn;
      a.state = entry_state(dep);
      a.when = t_end;
      a.remaining_holding_s = dep.remaining_holding_s;
      a.measured = dep.measured;
      dsh.inbox.push_back(std::move(a));
    }
    src.outbox.clear();
  }
  std::sort(touched_.begin(), touched_.end());

  // Phase 2 — batched admission: every destination cell's pending inbound
  // handovers of this drain become ONE decide_batch call against its centre
  // BS (one load snapshot per batch; allocation re-checks capacity, so an
  // over-admitting burst degrades into drops, never negative counters).
  // Ascending cell order — the same order the historical all-cells sweep
  // processed non-empty inboxes in.
  for (const int t : touched_) {
    Shard& sh = shards_[static_cast<std::size_t>(t)];
    sh.requests.clear();
    for (const SessionDriver::CellArrival& a : sh.inbox)
      sh.requests.push_back(sh.driver->inbound_request(a));
    sh.decisions.resize(sh.inbox.size());
    sh.policy->decide_batch(sh.requests, sh.driver->network().center(),
                            sh.decisions);
    for (std::size_t i = 0; i < sh.inbox.size(); ++i) {
      const SessionDriver::CellArrival& a = sh.inbox[i];
      const bool ok = sh.decisions[i].admitted &&
                      sh.driver->admit_inbound(a, sh.requests[i]);
      if (a.measured) sh.driver->metrics().record_handoff(a.conn.service, ok);
      if (ok) {
        ++es.admitted;
      } else {
        ++es.dropped;
        if (a.measured) sh.driver->metrics().record_drop(a.conn.service);
      }
    }
    sh.inbox.clear();  // restore the invariant for the next barrier
  }

  const bool metrics_on = obs::metrics_enabled();
  if (observer_ || metrics_on) {
    for (const Shard& sh : shards_) {
      es.active_sessions += sh.driver->session_count();
      const cellular::CellularNetwork& net = sh.driver->network();
      for (std::size_t b = 0; b < net.cell_count(); ++b)
        es.used_bu += net.station(b).load().used;
    }
    if (metrics_on) {
      EngineMetrics& m = EngineMetrics::get();
      m.epochs.add(1);
      m.routed.add(es.delivered);
      m.left_world.add(es.left_world);
      m.admitted.add(es.admitted);
      m.dropped.add(es.dropped);
      m.sessions_resident.set(
          static_cast<std::int64_t>(es.active_sessions));
    }
    if (observer_) observer_(es);
  }
}

void MultiCellEngine::activate(int cell) {
  if (active_pos_[static_cast<std::size_t>(cell)] >= 0) return;
  active_pos_[static_cast<std::size_t>(cell)] =
      static_cast<int>(active_.size());
  active_.push_back(cell);
}

void MultiCellEngine::deactivate(int cell) {
  const int pos = active_pos_[static_cast<std::size_t>(cell)];
  if (pos < 0) return;
  const int last = active_.back();
  active_[static_cast<std::size_t>(pos)] = last;
  active_pos_[static_cast<std::size_t>(last)] = pos;
  active_.pop_back();
  active_pos_[static_cast<std::size_t>(cell)] = -1;
}

MultiCellResult MultiCellEngine::run(int n_requests_per_cell) {
  FACSP_EXPECTS(!started_);
  started_ = true;

  const int wc = scenario_.multicell.workload_cells;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& sh = shards_[k];
    Shard* self = &sh;  // shards_ is stable from here on
    sh.driver->set_departure_sink(
        [self](SessionDriver::CellDeparture dep) {
          self->outbox.push_back(std::move(dep));
        });
    // workload_cells > 0 restricts fresh traffic to the first spiral cells;
    // the rest start empty (and idle) and only ever light up on inbound
    // handovers — the sparse-grid regime the event-driven scheduler exists
    // for.
    sh.driver->begin(wc > 0 && static_cast<int>(k) >= wc
                         ? 0
                         : n_requests_per_cell);
  }

  // Seed the active index: exactly the shards whose begin() scheduled work.
  active_.clear();
  active_.reserve(shards_.size());
  active_pos_.assign(shards_.size(), -1);
  drain_.reserve(shards_.size());
  touched_.reserve(shards_.size());
  for (std::size_t k = 0; k < shards_.size(); ++k)
    if (!shards_[k].driver->idle()) activate(static_cast<int>(k));

  // Never spawn more workers than there are shards to drain: run_single
  // builds an engine per replication, so surplus threads would be pure
  // spawn/join overhead (results are thread-count-invariant either way).
  // parallel_for additionally clamps each epoch's helper count to that
  // epoch's drain-list size, so a mostly-idle grid never wakes the full
  // pool.
  sim::ThreadPool pool(static_cast<unsigned>(std::min<std::size_t>(
      sim::ThreadPool::resolve_threads(scenario_.multicell.threads),
      shards_.size())));
  // Per-shard drain-time histograms, resolved lazily (registration takes the
  // registry mutex — engine thread only) the first time a shard drains with
  // metrics on.  Entries ride the name-sorted snapshot machinery as
  // "engine.shard_drain_ns{shard=k}".
  std::vector<obs::Histogram*> shard_hist(shards_.size(), nullptr);

  const bool adaptive = scenario_.multicell.epoch_adaptive;
  sim::SimTime dt = scenario_.multicell.epoch_s;
  const sim::SimTime horizon = scenario_.horizon_s;
  sim::SimTime t = 0.0;
  while (t < horizon && !active_.empty()) {
    const bool metrics_on = obs::metrics_enabled();
    sim::SimTime t_end = std::min(t + dt, horizon);
    if (!force_full_drains_) {
      sim::SimTime t_next = std::numeric_limits<sim::SimTime>::infinity();
      for (const int k : active_)
        t_next = std::min(
            t_next, shards_[static_cast<std::size_t>(k)].driver
                        ->next_event_time());
      // Fast-forward over provably empty epochs, boundary by boundary: the
      // repeated `t + dt` additions retrace exactly the float sequence the
      // bulk-synchronous engine would have produced, so later boundaries —
      // and every arrival timestamp derived from them — stay bit-identical.
      std::uint64_t skipped = 0;
      while (t_next > t_end && t_end < horizon) {
        t = t_end;
        t_end = std::min(t + dt, horizon);
        ++skipped;
      }
      if (metrics_on && skipped > 0)
        EngineMetrics::get().epochs_skipped.add(skipped);
      // Earliest pending event past the horizon: nothing left can fire
      // (the historical engine idled through these epochs to the same
      // result).
      if (t_next > t_end) break;
    }

    // Drain list: active shards with an event inside this window, ascending
    // so the serial barrier routes in the historical fixed order.  Shards
    // woken mid-epoch (activated at the previous barrier with an arrival at
    // its t_end) naturally qualify here.
    drain_.clear();
    if (force_full_drains_) {
      for (std::size_t k = 0; k < shards_.size(); ++k)
        drain_.push_back(static_cast<int>(k));
    } else {
      for (const int k : active_)
        if (shards_[static_cast<std::size_t>(k)].driver->next_event_time() <=
            t_end)
          drain_.push_back(k);
      std::sort(drain_.begin(), drain_.end());
    }

    obs::Histogram* drain_hist = nullptr;
    obs::Histogram* barrier_hist = nullptr;
    if (metrics_on) {
      EngineMetrics& m = EngineMetrics::get();
      drain_hist = &m.drain_ns;
      barrier_hist = &m.barrier_ns;
      m.shards_drained.add(drain_.size());
      for (const int k : drain_) {
        obs::Histogram*& h = shard_hist[static_cast<std::size_t>(k)];
        if (h == nullptr)
          h = &obs::Registry::instance().histogram(
              obs::labeled("engine.shard_drain_ns", "shard", k));
      }
    }
    {
      FACSP_TRACE_SPAN("engine", "epoch");
      // Parallel drain: share-nothing — each shard touches only its own
      // driver/policy/outbox, so worker scheduling cannot affect results.
      pool.parallel_for(drain_.size(), [&](std::size_t i) {
        const int k = drain_[i];
        obs::ScopedSpan drain(
            "engine", "shard_drain", static_cast<std::int64_t>(k),
            drain_hist,
            drain_hist != nullptr
                ? shard_hist[static_cast<std::size_t>(k)]
                : nullptr);
        shards_[static_cast<std::size_t>(k)].driver->advance_until(t_end);
      });
      // Serial barrier: routing + batched admission in fixed order.
      obs::ScopedSpan barrier("engine", "barrier", obs::Tracer::kNoArg,
                              barrier_hist);
      route_epoch(t_end);
    }

    // Membership maintenance, on the engine thread at the barrier: drained
    // shards that ran dry leave the index; destinations the barrier just
    // handed work to (re-)enter it.  Order matters — a drained shard whose
    // only future work is an inbound admission it just received is
    // deactivated then immediately re-activated via touched_.
    for (const int k : drain_)
      if (shards_[static_cast<std::size_t>(k)].driver->idle()) deactivate(k);
    for (const int k : touched_)
      if (!shards_[static_cast<std::size_t>(k)].driver->idle()) activate(k);

    if (adaptive) {
      // Deterministic controller on the serial barrier's handover count:
      // dense coupling tightens the window, near-empty barriers widen it.
      if (stats_.delivered > kDenseHandoversPerEpoch)
        dt = std::max(scenario_.multicell.epoch_min_s, dt * 0.5);
      else if (stats_.delivered < kSparseHandoversPerEpoch)
        dt = std::min(scenario_.multicell.epoch_max_s, dt * 2.0);
    }
    t = t_end;
  }

  MultiCellResult out;
  out.cells.reserve(shards_.size());
  RunResult agg;
  double util_sum = 0.0;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    MultiCellResult::Cell c;
    c.coord = coords_[k];
    c.run = shards_[k].driver->result();
    c.handoffs_out = shards_[k].handoffs_out;
    c.handoffs_in = shards_[k].handoffs_in;
    c.left_world = shards_[k].left_world;
    agg.metrics.merge(c.run.metrics);
    agg.duration_s = std::max(agg.duration_s, c.run.duration_s);
    agg.events += c.run.events;
    util_sum += c.run.center_utilization;
    out.cells.push_back(std::move(c));
  }
  agg.center_utilization = util_sum / static_cast<double>(shards_.size());
  out.aggregate = std::move(agg);
  return out;
}

}  // namespace facsp::core
