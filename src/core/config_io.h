// Scenario (de)serialization: a flat, commented key=value format so
// experiments are shareable as plain files.
//
//   # paper baseline, heavier video share
//   seed = 7
//   cell_radius_m = 2000
//   traffic.mix.video = 0.2
//   traffic.mix.text = 0.6
//
// Unknown keys are an error (typos must not silently revert to defaults).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/scenario.h"

namespace facsp::core {

/// Shortest decimal that parses back to exactly the same double
/// (std::to_chars: locale-independent, round-trip exact).  The one printer
/// every dumped config and result file goes through, so emitted numbers can
/// be compared byte-for-byte and re-parsed without precision loss.
std::string format_double(double v);

/// Split on a single-character delimiter, keeping empty tokens
/// ("a,,b" -> {"a", "", "b"}; "" -> {""}).  The one splitter behind CSV
/// parsing and every comma-list CLI flag.
std::vector<std::string> split_fields(const std::string& s, char delim);

/// Render the full scenario as key=value lines (every field, commented).
void save_scenario(const ScenarioConfig& scenario, std::ostream& os);
std::string scenario_to_string(const ScenarioConfig& scenario);

/// Apply a single `key = value` assignment to an existing scenario, using
/// the same field registry as load_scenario (so anything a config file can
/// set, a sweep axis can set too).  Does not re-validate; callers mutate
/// several keys and then validate once.  Throws facsp::ConfigError on an
/// unknown key or an unparsable value.
void apply_scenario_key(ScenarioConfig& scenario, const std::string& key,
                        const std::string& value);

/// Every key apply_scenario_key/load_scenario accepts, sorted.
std::vector<std::string> scenario_keys();

/// Parse key=value lines over a default-constructed scenario.  '#' starts
/// a comment; blank lines are skipped.  Throws facsp::ParseError with a
/// line number on syntax errors or unknown keys, facsp::ConfigError when
/// the resulting scenario fails validation.
ScenarioConfig load_scenario(std::istream& is);
ScenarioConfig scenario_from_string(const std::string& text);

/// File convenience wrappers (throw facsp::Error on I/O failure).
void save_scenario_file(const ScenarioConfig& scenario,
                        const std::string& path);
ScenarioConfig load_scenario_file(const std::string& path);

}  // namespace facsp::core
