// Scenario (de)serialization: a flat, commented key=value format so
// experiments are shareable as plain files.
//
//   # paper baseline, heavier video share
//   seed = 7
//   cell_radius_m = 2000
//   traffic.mix.video = 0.2
//   traffic.mix.text = 0.6
//
// Unknown keys are an error (typos must not silently revert to defaults).
#pragma once

#include <iosfwd>
#include <string>

#include "core/scenario.h"

namespace facsp::core {

/// Render the full scenario as key=value lines (every field, commented).
void save_scenario(const ScenarioConfig& scenario, std::ostream& os);
std::string scenario_to_string(const ScenarioConfig& scenario);

/// Parse key=value lines over a default-constructed scenario.  '#' starts
/// a comment; blank lines are skipped.  Throws facsp::ParseError with a
/// line number on syntax errors or unknown keys, facsp::ConfigError when
/// the resulting scenario fails validation.
ScenarioConfig load_scenario(std::istream& is);
ScenarioConfig scenario_from_string(const std::string& text);

/// File convenience wrappers (throw facsp::Error on I/O failure).
void save_scenario_file(const ScenarioConfig& scenario,
                        const std::string& path);
ScenarioConfig load_scenario_file(const std::string& path);

}  // namespace facsp::core
