// Declarative multi-axis sweeps: experiments over policies x scenarios x
// load, executed deterministically in parallel, collected into a structured
// ResultTable.
//
// A SweepSpec is an ordered list of SweepAxis values whose cross-product
// defines a grid of cells; every cell is further replicated `replications`
// times (the implicit innermost axis).  Axis kinds:
//
//   policy    — which admission policy decides (label + PolicyFactory)
//   scenario  — which world/workload the cell simulates (catalog name or an
//               inline ScenarioConfig)
//   param     — any config_io scenario key swept over raw values, e.g.
//               traffic.arrival.mean_on_s = 30,60,120 (MMPP burstiness) or
//               spatial.hotspot_decay = 0.3,0.6,0.9 (hotspot intensity)
//   n         — the number of requesting connections (the paper's x axis)
//
// Axis order is meaning, not decoration: it fixes the coordinate column
// order, the row order of the ResultTable (row-major, last axis fastest) and
// the resolution order (a param axis modifies the scenario the scenario
// axis picked, so it must be listed after it).
//
// Determinism: cells are seeded via hash_seed(scenario.seed, component,
// replication), so a cell's result depends only on (scenario, policy, n,
// replication) — never on which worker ran it or when.  SweepRunner::run is
// bit-identical for every thread count, and the paper grid expressed as a
// SweepSpec reproduces the serial Experiment::run bit for bit
// (ctest-enforced in tests/core/test_sweep.cc).
//
// See docs/experiments.md for worked examples.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"
#include "sim/stats.h"

namespace facsp::core {

/// One value of a policy axis: display label (the cell coordinate) +
/// factory.  Factories must honour the PolicyFactory thread-safety contract
/// (experiment.h): they are invoked concurrently from worker threads.
struct PolicyChoice {
  std::string name;
  PolicyFactory factory;
};

/// One value of a scenario axis: display label + full config.  Use
/// scenario_choices() for catalog names, or build inline configs directly.
struct ScenarioChoice {
  std::string name;
  ScenarioConfig config;
};

/// Resolve catalog names into scenario-axis values.  Throws
/// facsp::ConfigError on unknown names.
std::vector<ScenarioChoice> scenario_choices(
    const std::vector<std::string>& catalog_names);

/// Resolve registry names (policy_names()) into policy-axis values.
std::vector<PolicyChoice> policy_choices(
    const std::vector<std::string>& names);

/// One axis of the grid.  Exactly one of the value vectors is populated,
/// matching `kind`.
struct SweepAxis {
  enum class Kind { kPolicy, kScenario, kParam, kN };

  Kind kind = Kind::kParam;
  /// Coordinate column name: "policy", "scenario", "n", or the param key.
  std::string name;

  std::vector<PolicyChoice> policies;     ///< kPolicy
  std::vector<ScenarioChoice> scenarios;  ///< kScenario
  std::vector<std::string> values;        ///< kParam: raw config_io values
  std::vector<int> n_values;              ///< kN

  std::size_t size() const noexcept;
  /// The coordinate string of value `i` (policy/scenario label, raw param
  /// value, or the printed N).
  std::string label(std::size_t i) const;
};

/// Declarative description of a whole experiment campaign.
struct SweepSpec {
  /// Scenario every cell starts from (the paper Sec. 4 defaults).  A
  /// scenario axis replaces it per cell; param axes then modify the result.
  ScenarioConfig base{};
  /// Ordered axes; empty means a single cell (fallback policy/N on `base`).
  std::vector<SweepAxis> axes;

  /// Used when no policy / N axis is present.
  std::string fallback_policy = "facs-p";
  int fallback_n = 60;

  /// The implicit innermost axis: replications per grid cell.
  int replications = 8;
  double ci_level = 0.95;
  /// Worker threads (0 = hardware concurrency).  A pure throughput knob:
  /// the ResultTable is bit-identical for every value.
  int threads = 0;

  // Builder helpers: append one axis each, return *this for chaining.  The
  // initializer_list overloads make the natural spelling
  // `spec.policy_axis({"facs-p", "gc"})` unambiguous (PolicyChoice is an
  // aggregate, so a braced string list would otherwise match both vector
  // overloads).
  SweepSpec& policy_axis(std::initializer_list<const char*> names);
  SweepSpec& policy_axis(const std::vector<std::string>& names);
  SweepSpec& policy_axis(std::vector<PolicyChoice> choices);
  SweepSpec& scenario_axis(std::initializer_list<const char*> catalog_names);
  SweepSpec& scenario_axis(const std::vector<std::string>& catalog_names);
  SweepSpec& scenario_axis(std::vector<ScenarioChoice> choices);
  SweepSpec& param_axis(std::string key, std::vector<std::string> values);
  SweepSpec& n_axis(std::vector<int> values);

  /// The paper's figure sweep as a spec: FACS-P on the Sec. 4 scenario,
  /// N = 10, 20, ..., 100.
  static SweepSpec paper_grid(int replications = 20);

  /// Product of the axis sizes (1 when no axes).
  std::size_t grid_size() const noexcept;
  /// grid_size() * replications: the number of simulation runs.
  std::size_t cell_count() const noexcept;

  /// Structural checks: non-empty axes, unique axis names, at most one
  /// policy/scenario/N axis, no param axis listed before a scenario axis
  /// (the scenario choice would silently overwrite it).  Throws
  /// facsp::ConfigError.  Per-cell scenario validation happens at
  /// resolution time (SweepRunner construction).
  void validate() const;
};

// --- structured results ----------------------------------------------------

/// Aggregates of one grid cell over its replications.  Percentages
/// throughout; blocking (CBP) and dropping (CDP) are the paper's headline
/// metrics, derived per replication and aggregated like the rest.
struct ResultRow {
  /// One coordinate per axis, aligned with ResultTable::axes.
  std::vector<std::string> coords;
  /// The N this cell simulated (from the N axis or the fallback).
  int n = 0;

  sim::SummaryStats acceptance_percent;
  sim::SummaryStats blocking_percent;  ///< CBP: 100 - acceptance
  sim::SummaryStats dropping_percent;  ///< CDP: handoff drops
  sim::SummaryStats utilization_percent;
  sim::SummaryStats completion_percent;
};

/// The structured outcome of a sweep: coordinate columns + one aggregated
/// row per grid cell, in fixed row-major axis order.  Writers live in
/// core/report.h (write_result_csv / write_result_json).
struct ResultTable {
  std::vector<std::string> axes;  ///< coordinate column names, spec order
  int replications = 0;
  double ci_level = 0.95;
  std::vector<ResultRow> rows;
};

/// Executes a SweepSpec.  Construction validates the spec, normalises it
/// (an absent policy / N axis becomes an explicit single-value axis from
/// the fallbacks, so results always record which policy and N produced
/// them — spec() returns the normalised form) and resolves every grid cell
/// (scenario building, param application, policy lookup) up front, so
/// configuration errors surface before any simulation runs.
///
/// run() fans the (grid cell, replication) matrix across a sim::ThreadPool
/// and reduces serially in row-major order — the same SummaryStats::add
/// sequence a nested serial loop would perform, hence bit-identical results
/// for every thread count.  Subsumes Experiment::run and
/// core::ParallelSweepRunner, which are now thin wrappers over this.
class SweepRunner {
 public:
  explicit SweepRunner(SweepSpec spec);

  /// Run every cell.  When `cells` is non-null it receives the raw
  /// per-replication metrics in (row-major, replication-innermost) order.
  ResultTable run(std::vector<CellMetrics>* cells = nullptr) const;

  const SweepSpec& spec() const noexcept { return spec_; }
  std::size_t grid_size() const noexcept { return rows_.size(); }
  std::size_t cell_count() const noexcept {
    return rows_.size() * static_cast<std::size_t>(spec_.replications);
  }

 private:
  struct ResolvedCell {
    std::vector<std::string> coords;
    int n = 0;
    Experiment experiment;  ///< resolved scenario + policy; run_single is
                            ///< safe to call concurrently
  };

  SweepSpec spec_;
  std::vector<ResolvedCell> rows_;
};

/// Compatibility shim behind Experiment::run and ParallelSweepRunner::run:
/// runs the legacy (N, replication) grid through SweepRunner and repackages
/// the ResultTable as a SweepResult.  `threads` overrides the SweepConfig
/// knob (the serial Experiment::run passes 1).  When `cells` is non-null it
/// receives per-cell metrics in (n-major, replication) order.
SweepResult run_legacy_sweep(const ScenarioConfig& scenario,
                             const PolicyFactory& factory,
                             const std::string& label,
                             const SweepConfig& sweep, int threads,
                             std::vector<CellMetrics>* cells = nullptr);

}  // namespace facsp::core
