// Canonical paper scenarios: one place where every bench, test and example
// gets the Sec. 4 setup (40 BU cell, 70/20/10 mix at 1/5/10 BU, speeds
// 0..120 km/h, angles -180..180) and the per-figure variations.
#pragma once

#include <cstdint>

#include "core/experiment.h"
#include "core/scenario.h"

namespace facsp::core {

/// The baseline Sec. 4 scenario (random speed, random angle).
ScenarioConfig paper_scenario(std::uint64_t seed = 42);

/// Fig. 8 variant: every user moves at `speed_kmh`.
ScenarioConfig paper_scenario_fixed_speed(double speed_kmh,
                                          std::uint64_t seed = 42);

/// Fig. 9 variant: every user's |angle to BS| is `angle_deg` (random sign).
ScenarioConfig paper_scenario_fixed_angle(double angle_deg,
                                          std::uint64_t seed = 42);

}  // namespace facsp::core
