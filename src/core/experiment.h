// Experiment harness: replicated sweeps over "number of requesting
// connections" (the x-axis of every figure), aggregated with confidence
// intervals, for any admission policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cac/facs.h"
#include "cac/facs_p.h"
#include "cac/facs_pr.h"
#include "cac/policy.h"
#include "cac/scc.h"
#include "cellular/network.h"
#include "core/scenario.h"
#include "core/session.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/timeseries.h"

namespace facsp::core {

/// Builds a fresh policy for one replication.  The factory receives the
/// replication's network (SCC needs the geometry) and a per-replication
/// RNG factory (randomised policies draw their own streams).
///
/// Thread-safety contract: ParallelSweepRunner invokes the factory from
/// worker threads, once per (N, replication) cell, possibly concurrently.
/// Factories must therefore be safe to call concurrently: capture
/// configuration by value and only build fresh policy objects (as every
/// make_*_factory() below does); never close over mutable shared state.
/// The policy *instances* a factory returns are used by one worker only.
using PolicyFactory = std::function<std::unique_ptr<cac::AdmissionPolicy>(
    const cellular::CellularNetwork& network, sim::RngFactory& rng)>;

/// Sweep parameters shared by the figure benches.
struct SweepConfig {
  std::vector<int> n_values;  ///< x axis: number of requesting connections
  int replications = 20;
  double ci_level = 0.95;
  /// Worker threads for ParallelSweepRunner (0 = hardware concurrency).
  /// A pure throughput knob: results are bit-identical for every value.
  /// The serial Experiment::run ignores it.
  int threads = 0;

  /// The paper's x grid: 10, 20, ..., 100.
  static SweepConfig paper_grid(int replications = 20);
};

/// Aggregate of one (policy, N) cell of a sweep.
struct SweepPoint {
  int n = 0;
  sim::SummaryStats acceptance_percent;
  sim::SummaryStats dropping_percent;
  sim::SummaryStats utilization_percent;
  sim::SummaryStats completion_percent;
};

/// Scalar metrics of one (n, replication) run, in the units the sweep
/// aggregates (percentages).  The single definition of "which numbers a
/// sweep reduces": every path extracts cells with from_run() and
/// SweepRunner::run (core/sweep.h) — which Experiment::run and
/// ParallelSweepRunner delegate to — performs the one reduction, so the
/// paths cannot drift apart.
struct CellMetrics {
  int n = 0;
  std::uint64_t replication = 0;
  double acceptance_percent = 0.0;
  double dropping_percent = 0.0;
  double utilization_percent = 0.0;
  double completion_percent = 0.0;

  static CellMetrics from_run(int n, std::uint64_t replication,
                              const RunResult& run);
};

/// Result of a full sweep for one policy.
struct SweepResult {
  std::string policy_name;
  std::vector<SweepPoint> points;

  /// Acceptance-percentage series (mean +/- CI) for figure rendering.
  sim::Series acceptance_series(double ci_level = 0.95) const;
  /// Handoff-dropping series (extended metric).
  sim::Series dropping_series(double ci_level = 0.95) const;
  /// Completion-ratio series: % of admitted calls not dropped mid-call.
  sim::Series completion_series(double ci_level = 0.95) const;
};

/// Runs replicated sweeps.  Policies are compared under common random
/// numbers: replication r uses the same workload for every policy.
class Experiment {
 public:
  Experiment(ScenarioConfig scenario, PolicyFactory factory,
             std::string policy_label);

  /// Run the full sweep.
  SweepResult run(const SweepConfig& sweep) const;

  /// Run a single (N, replication) cell — used by tests, examples and the
  /// parallel sweep runner.  Every piece of per-run state (driver, network,
  /// RNG streams, policy, inference scratch) is built locally, so concurrent
  /// calls from different threads are safe given the PolicyFactory contract
  /// above.
  RunResult run_single(int n, std::uint64_t replication) const;

  const ScenarioConfig& scenario() const noexcept { return scenario_; }
  const PolicyFactory& factory() const noexcept { return factory_; }
  const std::string& policy_label() const noexcept { return label_; }

 private:
  ScenarioConfig scenario_;
  PolicyFactory factory_;
  std::string label_;
};

// --- canonical policy factories ------------------------------------------

PolicyFactory make_facs_p_factory(cac::FacsPConfig config = {});
PolicyFactory make_facs_pr_factory(cac::FacsPrConfig config = {});
PolicyFactory make_facs_factory(cac::FacsConfig config = {});
PolicyFactory make_scc_factory(cac::SccConfig config = {});
PolicyFactory make_guard_channel_factory(cellular::Bandwidth guard_bu);
PolicyFactory make_fractional_guard_factory(cellular::Bandwidth guard_bu);
PolicyFactory make_complete_sharing_factory();

/// Name-keyed policy registry, shared by the sweep layer and every CLI:
/// facs-p | facs-pr | facs | scc | gc | fgc | cs (guard policies use the
/// paper's 8 BU reservation).  Throws facsp::ConfigError on unknown names,
/// listing the valid ones.
PolicyFactory policy_factory_by_name(std::string_view name);
/// The registry's names, in canonical order.
std::vector<std::string> policy_names();

}  // namespace facsp::core
