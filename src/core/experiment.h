// Experiment harness: replicated sweeps over "number of requesting
// connections" (the x-axis of every figure), aggregated with confidence
// intervals, for any admission policy.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cac/facs.h"
#include "cac/facs_p.h"
#include "cac/facs_pr.h"
#include "cac/policy.h"
#include "cac/scc.h"
#include "cellular/network.h"
#include "core/scenario.h"
#include "core/session.h"
#include "sim/rng.h"
#include "sim/stats.h"
#include "sim/timeseries.h"

namespace facsp::core {

/// Builds a fresh policy for one replication.  The factory receives the
/// replication's network (SCC needs the geometry) and a per-replication
/// RNG factory (randomised policies draw their own streams).
using PolicyFactory = std::function<std::unique_ptr<cac::AdmissionPolicy>(
    const cellular::CellularNetwork& network, sim::RngFactory& rng)>;

/// Sweep parameters shared by the figure benches.
struct SweepConfig {
  std::vector<int> n_values;  ///< x axis: number of requesting connections
  int replications = 20;
  double ci_level = 0.95;

  /// The paper's x grid: 10, 20, ..., 100.
  static SweepConfig paper_grid(int replications = 20);
};

/// Aggregate of one (policy, N) cell of a sweep.
struct SweepPoint {
  int n = 0;
  sim::SummaryStats acceptance_percent;
  sim::SummaryStats dropping_percent;
  sim::SummaryStats utilization_percent;
  sim::SummaryStats completion_percent;
};

/// Result of a full sweep for one policy.
struct SweepResult {
  std::string policy_name;
  std::vector<SweepPoint> points;

  /// Acceptance-percentage series (mean +/- CI) for figure rendering.
  sim::Series acceptance_series(double ci_level = 0.95) const;
  /// Handoff-dropping series (extended metric).
  sim::Series dropping_series(double ci_level = 0.95) const;
  /// Completion-ratio series: % of admitted calls not dropped mid-call.
  sim::Series completion_series(double ci_level = 0.95) const;
};

/// Runs replicated sweeps.  Policies are compared under common random
/// numbers: replication r uses the same workload for every policy.
class Experiment {
 public:
  Experiment(ScenarioConfig scenario, PolicyFactory factory,
             std::string policy_label);

  /// Run the full sweep.
  SweepResult run(const SweepConfig& sweep) const;

  /// Run a single (N, replication) cell — used by tests and examples.
  RunResult run_single(int n, std::uint64_t replication) const;

  const ScenarioConfig& scenario() const noexcept { return scenario_; }

 private:
  ScenarioConfig scenario_;
  PolicyFactory factory_;
  std::string label_;
};

// --- canonical policy factories ------------------------------------------

PolicyFactory make_facs_p_factory(cac::FacsPConfig config = {});
PolicyFactory make_facs_pr_factory(cac::FacsPrConfig config = {});
PolicyFactory make_facs_factory(cac::FacsConfig config = {});
PolicyFactory make_scc_factory(cac::SccConfig config = {});
PolicyFactory make_guard_channel_factory(cellular::Bandwidth guard_bu);
PolicyFactory make_fractional_guard_factory(cellular::Bandwidth guard_bu);
PolicyFactory make_complete_sharing_factory();

}  // namespace facsp::core
