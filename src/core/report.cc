#include "core/report.h"

#include <fstream>
#include <ostream>

#include "common/error.h"
#include "common/expects.h"

namespace facsp::core {

std::optional<double> crossover_x(const sim::Series& a, const sim::Series& b) {
  FACSP_EXPECTS(b.size() > 0);
  bool was_above = false;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double x = b.x(i);
    const double ya = a.y_at(x);
    const double yb = b.y(i);
    if (ya >= yb) {
      was_above = true;
    } else if (was_above) {
      return x;
    }
  }
  return std::nullopt;
}

bool is_non_increasing(const sim::Series& s, double slack) {
  for (std::size_t i = 1; i < s.size(); ++i)
    if (s.y(i) > s.y(i - 1) + slack) return false;
  return true;
}

bool ordered_at(const std::vector<const sim::Series*>& series, double x_probe,
                double slack) {
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i]->y_at(x_probe) + slack < series[i - 1]->y_at(x_probe))
      return false;
  }
  return true;
}

double mean_y(const sim::Series& s) {
  FACSP_EXPECTS(s.size() > 0);
  double sum = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) sum += s.y(i);
  return sum / static_cast<double>(s.size());
}

void write_csv(const sim::Figure& figure, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open '" + path + "' for writing");
  figure.print_csv(os);
  if (!os) throw Error("failed writing '" + path + "'");
}

void print_shape_checks(std::ostream& os,
                        const std::vector<ShapeCheck>& checks) {
  os << "-- shape checks (paper-vs-measured) --\n";
  for (const auto& c : checks) {
    os << (c.passed ? "  [PASS] " : "  [FAIL] ") << c.description;
    if (!c.details.empty()) os << "  (" << c.details << ')';
    os << '\n';
  }
}

}  // namespace facsp::core
