#include "core/report.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/expects.h"
#include "core/config_io.h"

namespace facsp::core {

namespace {

/// The fixed metric block shared by the CSV and JSON writers: name +
/// accessor, in the documented column order.
struct MetricColumn {
  const char* name;
  const sim::SummaryStats ResultRow::* stats;
};

constexpr MetricColumn kMetricColumns[] = {
    {"acceptance_pct", &ResultRow::acceptance_percent},
    {"blocking_pct", &ResultRow::blocking_percent},
    {"dropping_pct", &ResultRow::dropping_percent},
    {"utilization_pct", &ResultRow::utilization_percent},
    {"completion_pct", &ResultRow::completion_percent},
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The CSV format is unquoted, so a separator inside a coordinate would
/// silently shift every following column.  Axis labels come from catalog /
/// registry names and config values, none of which contain commas — but an
/// API-built spec could, so fail loudly instead of writing a ragged file.
void expect_csv_safe(const std::string& value) {
  if (value.find_first_of(",\n\r") != std::string::npos)
    throw Error("result csv: value '" + value +
                "' contains a comma or line break; rename the axis value");
}

template <typename Fn>
void write_to_file(const std::string& path, Fn&& write) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open '" + path + "' for writing");
  write(os);
  if (!os) throw Error("failed writing '" + path + "'");
}

}  // namespace

std::optional<double> crossover_x(const sim::Series& a, const sim::Series& b) {
  FACSP_EXPECTS(a.size() > 0);
  FACSP_EXPECTS(b.size() > 0);
  bool was_above = false;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double x = b.x(i);
    if (x < a.min_x()) continue;  // a's step function is undefined here
    const double ya = a.y_at(x);
    const double yb = b.y(i);
    if (ya >= yb) {
      was_above = true;
    } else if (was_above) {
      return x;
    }
  }
  return std::nullopt;
}

bool is_non_increasing(const sim::Series& s, double slack) {
  for (std::size_t i = 1; i < s.size(); ++i)
    if (s.y(i) > s.y(i - 1) + slack) return false;
  return true;
}

bool ordered_at(const std::vector<const sim::Series*>& series, double x_probe,
                double slack) {
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i]->y_at(x_probe) + slack < series[i - 1]->y_at(x_probe))
      return false;
  }
  return true;
}

double mean_y(const sim::Series& s) {
  FACSP_EXPECTS(s.size() > 0);
  double sum = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) sum += s.y(i);
  return sum / static_cast<double>(s.size());
}

void write_csv(const sim::Figure& figure, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open '" + path + "' for writing");
  figure.print_csv(os);
  if (!os) throw Error("failed writing '" + path + "'");
}

void write_result_csv(const ResultTable& table, std::ostream& os) {
  for (const std::string& axis : table.axes) {
    expect_csv_safe(axis);
    os << axis << ',';
  }
  os << "replications";
  for (const MetricColumn& col : kMetricColumns)
    os << ',' << col.name << "_mean," << col.name << "_ci";
  os << '\n';
  for (const ResultRow& row : table.rows) {
    FACSP_EXPECTS(row.coords.size() == table.axes.size());
    for (const std::string& coord : row.coords) {
      expect_csv_safe(coord);
      os << coord << ',';
    }
    os << table.replications;
    for (const MetricColumn& col : kMetricColumns) {
      const sim::SummaryStats& st = row.*(col.stats);
      os << ',' << format_double(st.mean()) << ','
         << format_double(st.ci_half_width(table.ci_level));
    }
    os << '\n';
  }
}

void write_result_csv(const ResultTable& table, const std::string& path) {
  write_to_file(path, [&](std::ostream& os) { write_result_csv(table, os); });
}

std::string result_csv_string(const ResultTable& table) {
  std::ostringstream os;
  write_result_csv(table, os);
  return os.str();
}

void write_result_json(const ResultTable& table, std::ostream& os) {
  os << "{\n  \"replications\": " << table.replications
     << ",\n  \"ci_level\": " << format_double(table.ci_level)
     << ",\n  \"axes\": [";
  for (std::size_t i = 0; i < table.axes.size(); ++i)
    os << (i != 0 ? ", " : "") << '"' << json_escape(table.axes[i]) << '"';
  os << "],\n  \"rows\": [";
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    const ResultRow& row = table.rows[i];
    FACSP_EXPECTS(row.coords.size() == table.axes.size());
    os << (i != 0 ? "," : "") << "\n    {\"coords\": {";
    for (std::size_t a = 0; a < table.axes.size(); ++a)
      os << (a != 0 ? ", " : "") << '"' << json_escape(table.axes[a])
         << "\": \"" << json_escape(row.coords[a]) << '"';
    os << "}, \"n\": " << row.n << ", \"metrics\": {";
    bool first = true;
    for (const MetricColumn& col : kMetricColumns) {
      const sim::SummaryStats& st = row.*(col.stats);
      os << (first ? "" : ", ") << '"' << col.name << "\": {\"mean\": "
         << format_double(st.mean())
         << ", \"ci\": " << format_double(st.ci_half_width(table.ci_level))
         << ", \"stddev\": " << format_double(st.stddev())
         << ", \"min\": " << format_double(st.min())
         << ", \"max\": " << format_double(st.max()) << '}';
      first = false;
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
}

void write_result_json(const ResultTable& table, const std::string& path) {
  write_to_file(path,
                [&](std::ostream& os) { write_result_json(table, os); });
}

std::string result_json_string(const ResultTable& table) {
  std::ostringstream os;
  write_result_json(table, os);
  return os.str();
}

CsvTable read_csv(std::istream& is) {
  CsvTable table;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (table.columns.empty()) {
      table.columns = split_fields(line, ',');
      continue;
    }
    auto cells = split_fields(line, ',');
    if (cells.size() != table.columns.size())
      throw ParseError("csv: expected " + std::to_string(table.columns.size()) +
                           " cells, got " + std::to_string(cells.size()),
                       lineno);
    table.rows.push_back(std::move(cells));
  }
  return table;
}

void print_shape_checks(std::ostream& os,
                        const std::vector<ShapeCheck>& checks) {
  os << "-- shape checks (paper-vs-measured) --\n";
  for (const auto& c : checks) {
    os << (c.passed ? "  [PASS] " : "  [FAIL] ") << c.description;
    if (!c.details.empty()) os << "  (" << c.details << ')';
    os << '\n';
  }
}

}  // namespace facsp::core
