#include "core/paper.h"

namespace facsp::core {

ScenarioConfig paper_scenario(std::uint64_t seed) {
  ScenarioConfig s;
  s.seed = seed;
  // Paper Sec. 4 defaults are already the struct defaults; restated here so
  // the provenance is explicit in one place.
  s.capacity_bu = 40.0;
  s.traffic.mix = cellular::TrafficMix{0.70, 0.20, 0.10};
  s.traffic.min_speed_kmh = 0.0;
  s.traffic.max_speed_kmh = 120.0;
  s.traffic.arrival_window_s = 900.0;
  s.traffic.mean_holding_s = 300.0;
  return s;
}

ScenarioConfig paper_scenario_fixed_speed(double speed_kmh,
                                          std::uint64_t seed) {
  ScenarioConfig s = paper_scenario(seed);
  s.traffic.fixed_speed_kmh = speed_kmh;
  return s;
}

ScenarioConfig paper_scenario_fixed_angle(double angle_deg,
                                          std::uint64_t seed) {
  ScenarioConfig s = paper_scenario(seed);
  s.traffic.fixed_angle_deg = angle_deg;
  // The Fig. 9 series pins every user's angle for the whole experiment; a
  // wandering trajectory would not keep the configured angle, so mobility
  // is off here (users hold their bandwidth for the full call duration).
  s.enable_mobility = false;
  return s;
}

}  // namespace facsp::core
