// Session driver: executes one replication of the paper's experiment —
// N requesting connections arriving in the centre cell, admission control,
// call holding, mobility, handoff between cells, and metric collection.
#pragma once

#include <memory>
#include <unordered_map>

#include "cac/policy.h"
#include "cellular/metrics.h"
#include "cellular/network.h"
#include "cellular/traffic.h"
#include "core/scenario.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace facsp::core {

/// Outcome of one replication.
struct RunResult {
  cellular::MetricsCollector metrics;
  double center_utilization = 0.0;  ///< time-averaged, centre cell
  sim::SimTime duration_s = 0.0;    ///< simulated time until the run drained
  std::uint64_t events = 0;         ///< DES events fired
};

/// Drives one simulation run.  Owns the network, simulator and per-run
/// random streams; the admission policy is borrowed (reset() is called at
/// the start of the run).
class SessionDriver {
 public:
  /// `replication` seeds the run's random streams (common random numbers:
  /// the same (scenario.seed, replication) pair generates the same workload
  /// for every policy).
  SessionDriver(const ScenarioConfig& scenario, cac::AdmissionPolicy& policy,
                std::uint64_t replication);

  /// Simulate `n_requests` new-call requests and run until every admitted
  /// call completed, dropped, or left the network (or the horizon hit).
  RunResult run(int n_requests);

  const cellular::CellularNetwork& network() const noexcept { return *network_; }

 private:
  struct Session {
    cellular::Connection conn;
    cellular::MobileState state;
    cellular::BaseStation* serving = nullptr;
    bool measured = false;  ///< true when the call originated in the centre
    sim::EventHandle completion{};
    sim::EventHandle next_move{};
  };

  void handle_arrival(const cellular::CallRequest& req, bool measured);
  void handle_completion(cellular::ConnectionId id);
  void handle_mobility(cellular::ConnectionId id);
  void do_handoff(Session& s, cellular::BaseStation& target);
  void finish(Session& s, cellular::ConnectionState final_state);

  cac::AdmissionRequest make_request(const cellular::Connection& conn,
                                     const cellular::MobileState& state,
                                     cellular::RequestKind kind,
                                     const cellular::BaseStation& target);

  /// One request source per spawning cell: the cell's generator plus its
  /// spatial load weight (requests per run = round(weight * N)).
  struct Spawner {
    std::unique_ptr<cellular::TrafficGenerator> gen;
    double weight = 1.0;
  };

  ScenarioConfig scenario_;
  cac::AdmissionPolicy& policy_;
  std::unique_ptr<cellular::CellularNetwork> network_;
  sim::Simulator sim_;
  sim::RngFactory rng_;
  /// One spawner per cell with positive spatial weight (just the centre
  /// under the default center-only map).  Element 0 is always the centre's.
  std::vector<Spawner> traffic_;
  std::unique_ptr<cellular::MobilityModel> mobility_;
  std::unique_ptr<cellular::DirectionPredictor> predictor_;
  cellular::MetricsCollector metrics_;
  std::unordered_map<cellular::ConnectionId, Session> sessions_;
};

}  // namespace facsp::core
