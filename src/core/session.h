// Session driver: executes one replication of the paper's experiment —
// N requesting connections arriving in the centre cell, admission control,
// call holding, mobility, handoff between cells, and metric collection.
//
// The driver can run a whole replication in one call (run()) or be driven
// incrementally (begin() + advance_until()) by the multi-cell engine
// (core/multicell.h), which shards one driver per super-grid cell and
// exchanges inter-cell handovers between them at epoch boundaries.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "cac/policy.h"
#include "cellular/metrics.h"
#include "cellular/network.h"
#include "cellular/traffic.h"
#include "core/scenario.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace facsp::core {

/// Outcome of one replication.
struct RunResult {
  cellular::MetricsCollector metrics;
  double center_utilization = 0.0;  ///< time-averaged, centre cell
  sim::SimTime duration_s = 0.0;    ///< simulated time until the run drained
  std::uint64_t events = 0;         ///< DES events fired
};

/// Drives one simulation run.  Owns the network, simulator and per-run
/// random streams; the admission policy is borrowed (reset() is called at
/// the start of the run).
class SessionDriver {
 public:
  /// `replication` seeds the run's random streams (common random numbers:
  /// the same (scenario.seed, replication) pair generates the same workload
  /// for every policy).  `id_offset` shifts every generated connection id —
  /// the multi-cell engine gives each shard a disjoint id namespace so
  /// sessions migrating between shards can never collide (0 keeps the
  /// historical single-world ids).
  SessionDriver(const ScenarioConfig& scenario, cac::AdmissionPolicy& policy,
                std::uint64_t replication, cellular::ConnectionId id_offset = 0);

  /// Simulate `n_requests` new-call requests and run until every admitted
  /// call completed, dropped, or left the network (or the horizon hit).
  /// Equivalent to begin(n_requests) + advance_until(horizon) + result().
  RunResult run(int n_requests);

  // --- incremental interface (multi-cell engine) ---------------------------

  /// A session leaving this driver's service area.  When a departure sink is
  /// installed the session's resources are released here and the record is
  /// handed to the sink (the inter-cell layer decides its fate); without a
  /// sink the call simply leaves the modelled area as a completion.
  struct CellDeparture {
    cellular::Connection conn;
    cellular::MobileState state;          ///< position just outside the disc
    sim::SimTime when = 0.0;
    sim::SimTime remaining_holding_s = 0.0;
    bool measured = true;
  };
  using DepartureSink = std::function<void(CellDeparture)>;
  void set_departure_sink(DepartureSink sink) {
    departure_sink_ = std::move(sink);
  }

  /// An inter-cell handover arriving into this driver's world at `when`
  /// (state already mapped into this driver's coordinate frame).
  struct CellArrival {
    cellular::Connection conn;
    cellular::MobileState state;
    sim::SimTime when = 0.0;
    sim::SimTime remaining_holding_s = 0.0;
    bool measured = true;
  };

  /// Schedule the replication's arrivals and reset the policy/metrics.
  /// First half of run(); must be called exactly once before advance_until.
  void begin(int n_requests);

  /// Fire events with timestamp <= t.  Returns the number fired.
  std::uint64_t advance_until(sim::SimTime t);

  /// True when no events remain (the shard drained).
  bool idle() const noexcept { return !sim_.has_pending(); }

  /// Timestamp of the shard's earliest pending event, +infinity when
  /// idle().  The multi-cell engine's event-driven scheduler reads this to
  /// decide which shards need a drain this epoch — a shard whose next event
  /// lies beyond the epoch end can be skipped without touching it.
  sim::SimTime next_event_time() const;

  /// Snapshot of the run's metrics so far (final when idle()).
  RunResult result() const;

  /// The admission request an inbound handover presents to the base station
  /// covering its entry position.  Consumes one direction-predictor draw,
  /// exactly like any other handoff request.
  cac::AdmissionRequest inbound_request(const CellArrival& arrival);

  /// Complete an *admitted* inbound handover: allocate on the covering BS,
  /// create the session, schedule its completion/mobility events.  Returns
  /// false — and changes nothing — when the call no longer physically fits
  /// (batched decisions are taken against one load snapshot, so a burst can
  /// over-admit); the caller records the drop.  Does not record metrics:
  /// the engine attributes the handoff attempt to this cell's collector.
  bool admit_inbound(const CellArrival& arrival,
                     const cac::AdmissionRequest& req);

  /// Mutable metrics access for the inter-cell layer (handoff attempts,
  /// drops and left-world completions are attributed per cell).
  cellular::MetricsCollector& metrics() noexcept { return metrics_; }

  /// Currently active (admitted, not yet finished) sessions in this world.
  std::size_t session_count() const noexcept { return sessions_.size(); }

  const cellular::CellularNetwork& network() const noexcept { return *network_; }

 private:
  struct Session {
    cellular::Connection conn;
    cellular::MobileState state;
    cellular::BaseStation* serving = nullptr;
    bool measured = false;  ///< true when the call originated in the centre
    sim::EventHandle completion{};
    sim::EventHandle next_move{};
  };

  void handle_arrival(const cellular::CallRequest& req, bool measured);
  void handle_completion(cellular::ConnectionId id);
  void handle_mobility(cellular::ConnectionId id);
  void do_handoff(Session& s, cellular::BaseStation& target);
  void finish(Session& s, cellular::ConnectionState final_state);
  /// Release the session's resources and erase it *without* recording a
  /// completion or drop: its fate now belongs to the inter-cell layer.
  CellDeparture depart(Session& s);

  cac::AdmissionRequest make_request(const cellular::Connection& conn,
                                     const cellular::MobileState& state,
                                     cellular::RequestKind kind,
                                     const cellular::BaseStation& target);

  /// One request source per spawning cell: the cell's generator plus its
  /// spatial load weight (requests per run = round(weight * N)).
  struct Spawner {
    std::unique_ptr<cellular::TrafficGenerator> gen;
    double weight = 1.0;
  };

  ScenarioConfig scenario_;
  cac::AdmissionPolicy& policy_;
  std::unique_ptr<cellular::CellularNetwork> network_;
  sim::Simulator sim_;
  sim::RngFactory rng_;
  /// One spawner per cell with positive spatial weight (just the centre
  /// under the default center-only map).  Element 0 is always the centre's.
  std::vector<Spawner> traffic_;
  std::unique_ptr<cellular::MobilityModel> mobility_;
  std::unique_ptr<cellular::DirectionPredictor> predictor_;
  cellular::MetricsCollector metrics_;
  std::unordered_map<cellular::ConnectionId, Session> sessions_;
  DepartureSink departure_sink_;
};

}  // namespace facsp::core
