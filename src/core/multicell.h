// Multi-cell sharded simulation: the scenario's world replicated into C
// shards on a super hex grid, one SessionDriver + admission policy +
// RNG-stream family per shard, driven in bulk-synchronous epochs over a
// sim::ThreadPool with explicit inter-cell handovers exchanged at the
// epoch barriers.
//
// Execution model (event-driven since PR 10)
//
//   while any shard has pending events:
//     schedule:  the engine keeps an incrementally maintained index of
//                *active* shards (those with pending events).  Epochs whose
//                window provably contains no event anywhere are skipped —
//                the clock fast-forwards boundary by boundary to the one
//                holding the earliest event, without touching a shard;
//     parallel:  only shards with an event <= t_end drain their own event
//                queues, collecting sessions that crossed the service-area
//                boundary into shard-local outboxes (no shared state is
//                touched).  Shards woken mid-epoch by an inbound handover
//                join the *next* drain, preserving barrier semantics;
//     barrier:   departures are routed serially in fixed (cell, event)
//                order to the hex neighbour matching the exit heading —
//                or complete if they fall off the super-grid edge — and
//                each destination cell's pending arrivals are coalesced
//                into ONE cac::AdmissionPolicy::decide_batch call against
//                its centre base station (the zero-allocation batch path
//                carrying real traffic).  Admitted sessions re-materialise
//                in the destination at the epoch boundary; rejected or
//                over-admitted ones are dropped (handoff failure).
//
// Epoch cost is therefore proportional to ACTIVE shards, not grid size: a
// 1000-cell grid with one busy neighbourhood drains a handful of shards per
// epoch and fast-forwards through quiet stretches (ctest-enforced via the
// engine.shards_drained counter).  Skipping is provably a no-op: a drain of
// a shard with no event <= t_end fires nothing and records nothing, so with
// `sim.epoch_adaptive` off results are bit-identical to the bulk-synchronous
// engine — same epoch boundaries (the fast-forward replays the same
// repeated `t + epoch_s` additions), same delivery timestamps, same RNG
// draws.  With `sim.epoch_adaptive` on, the epoch length tracks the
// observed per-epoch handover count within [sim.epoch_min_s,
// sim.epoch_max_s]; conservation invariants hold but byte goldens don't.
//
// Determinism: the parallel phase is share-nothing (each shard owns its
// driver, policy, scratch and RNG streams, seeded from
// hash_seed(seed, "cell", cell_id) — cell 0 keeps the legacy roots), and
// the barrier phase is serial in a fixed order (ascending cell id over the
// drain list), so results are bit-identical for every thread count.  With
// cells = 1 the engine degenerates to exactly the historical single-world
// SessionDriver run, bit for bit (ctest-enforced against the PR 3 golden
// cells).
//
// See docs/experiments.md ("Multi-cell sharding") for the full argument.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cac/policy.h"
#include "cellular/hexgrid.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "core/session.h"

namespace facsp::core {

/// Outcome of one multi-cell replication: per-cell results plus the
/// network-wide aggregate (merged counters — CBP from the new-call counter,
/// CDP from the handoff counter, exactly the paper's split).
struct MultiCellResult {
  struct Cell {
    cellular::HexCoord coord;        ///< super-grid coordinate of the shard
    RunResult run;                   ///< the shard's metrics/utilization/events
    std::uint64_t handoffs_out = 0;  ///< departures routed to a neighbour shard
    std::uint64_t handoffs_in = 0;   ///< inter-cell attempts delivered here
    std::uint64_t left_world = 0;    ///< departures off the super-grid edge
  };
  std::vector<Cell> cells;
  /// Merged view in RunResult form: counters summed across cells,
  /// utilization averaged, duration = max, events summed.  For cells = 1
  /// this equals the single-world RunResult bit for bit.
  RunResult aggregate;
};

/// Executes one replication of a ScenarioConfig whose `multicell.cells`
/// shards form the super grid.  Constructed per (scenario, replication) —
/// exactly like SessionDriver, which it generalises.
class MultiCellEngine {
 public:
  MultiCellEngine(const ScenarioConfig& scenario, const PolicyFactory& factory,
                  std::uint64_t replication);

  /// One barrier's accounting, handed to the epoch observer (conservation
  /// property tests).  delivered + left_world == departures and
  /// admitted + dropped == delivered at every epoch.
  struct EpochStats {
    sim::SimTime t_end = 0.0;
    std::uint64_t departures = 0;  ///< outbox records collected this drain
    std::uint64_t delivered = 0;   ///< routed to an in-grid neighbour
    std::uint64_t left_world = 0;  ///< no neighbour: left the modelled area
    std::uint64_t admitted = 0;    ///< inbound handovers admitted
    std::uint64_t dropped = 0;     ///< inbound handovers rejected / over-admitted
    /// One (source cell, destination cell) record per departure, in routing
    /// order; destination -1 means the super-grid edge.
    std::vector<std::pair<int, int>> routes;
    std::uint64_t active_sessions = 0;  ///< network-wide, after the barrier
    double used_bu = 0.0;               ///< network-wide occupied bandwidth
  };
  using EpochObserver = std::function<void(const EpochStats&)>;
  void set_epoch_observer(EpochObserver obs) { observer_ = std::move(obs); }

  /// Test knob: drain EVERY shard every epoch and never fast-forward —
  /// the pre-PR-10 bulk-synchronous schedule.  The bit-identity suite runs
  /// each scenario both ways and compares results byte for byte.
  void set_force_full_drains(bool force) { force_full_drains_ = force; }

  /// Run the replication: every shard offers `n_requests_per_cell` new
  /// calls (shaped by its own spatial map), epochs proceed until every
  /// shard drained or the horizon hit.  Call at most once per engine.
  MultiCellResult run(int n_requests_per_cell);

  int cell_count() const noexcept { return static_cast<int>(shards_.size()); }
  const cellular::HexCoord& cell_coord(int cell) const {
    return coords_[static_cast<std::size_t>(cell)];
  }
  /// Destination shard for a departure leaving `cell` with the given
  /// heading: the hex neighbour whose direction is angularly closest, or
  /// -1 when that neighbour is off the super grid.  Exposed for tests.
  int route_target(int cell, double heading_deg) const;

  /// Shard introspection for the property tests (per-BS LoadState etc.).
  const SessionDriver& driver(int cell) const {
    return *shards_[static_cast<std::size_t>(cell)].driver;
  }

 private:
  struct Shard {
    std::unique_ptr<cac::DeferredPolicy> policy;
    std::unique_ptr<SessionDriver> driver;
    std::vector<SessionDriver::CellDeparture> outbox;  ///< filled during drain
    std::vector<SessionDriver::CellArrival> inbox;     ///< filled at barrier
    // Reused across epochs: steady-state barriers allocate nothing.
    std::vector<cac::AdmissionRequest> requests;
    std::vector<cac::AdmissionDecision> decisions;
    std::uint64_t handoffs_out = 0;
    std::uint64_t handoffs_in = 0;
    std::uint64_t left_world = 0;
  };

  cellular::MobileState entry_state(
      const SessionDriver::CellDeparture& dep) const;
  void route_epoch(sim::SimTime t_end);

  /// Active-shard index maintenance (swap-remove vector + position map —
  /// O(1) either way).  A shard is active while its event queue is
  /// non-empty; membership changes only at barriers, on the engine thread.
  void activate(int cell);
  void deactivate(int cell);

  ScenarioConfig scenario_;
  std::vector<cellular::HexCoord> coords_;
  std::unordered_map<cellular::HexCoord, int, cellular::HexCoordHash> index_;
  cellular::HexCoord dir_[6] = {};  ///< the six hex neighbour offsets
  double dir_angle_[6] = {};  ///< world angle of each hex neighbour direction
  std::vector<Shard> shards_;
  std::vector<int> active_;      ///< cells with pending events (unordered)
  std::vector<int> active_pos_;  ///< cell -> index in active_, or -1
  std::vector<int> drain_;       ///< this epoch's drain list (ascending)
  std::vector<int> touched_;     ///< cells that received inbound handovers
  EpochStats stats_;  ///< reused across barriers: steady state allocates
                      ///< nothing even with an observer attached
  EpochObserver observer_;
  bool force_full_drains_ = false;
  bool started_ = false;
};

}  // namespace facsp::core
