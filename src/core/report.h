// Reporting helpers: CSV emission, crossover detection and the qualitative
// "shape checks" that EXPERIMENTS.md records for each figure.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/timeseries.h"

namespace facsp::core {

/// One qualitative expectation derived from the paper (e.g. "FACS-P above
/// FACS for small N, below for large N").
struct ShapeCheck {
  std::string description;
  bool passed = false;
  std::string details;
};

/// First x at which series `a` stops being >= series `b` (comparing at b's
/// x grid, stepwise).  nullopt when no crossover happens.
std::optional<double> crossover_x(const sim::Series& a, const sim::Series& b);

/// True when the series is non-increasing in y along x within `slack`.
bool is_non_increasing(const sim::Series& s, double slack = 1e-9);

/// True when y values at `x_probe` are ordered s[0] <= s[1] <= ... within
/// `slack` (used for "higher speed => higher acceptance" checks).
bool ordered_at(const std::vector<const sim::Series*>& series, double x_probe,
                double slack = 0.0);

/// Mean of a series' y values.
double mean_y(const sim::Series& s);

/// Write a figure's CSV next to the bench output.  Throws facsp::Error on
/// I/O failure.
void write_csv(const sim::Figure& figure, const std::string& path);

/// Render shape checks as a PASS/FAIL block.
void print_shape_checks(std::ostream& os,
                        const std::vector<ShapeCheck>& checks);

}  // namespace facsp::core
