// Reporting helpers: figure CSV emission, structured sweep-result writers
// (CSV + JSON), crossover detection and the qualitative "shape checks" that
// EXPERIMENTS.md records for each figure.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "sim/timeseries.h"

namespace facsp::core {

/// One qualitative expectation derived from the paper (e.g. "FACS-P above
/// FACS for small N, below for large N").
struct ShapeCheck {
  std::string description;
  bool passed = false;
  std::string details;
};

/// First x at which series `a` stops being >= series `b` (comparing at b's
/// x grid, stepwise).  nullopt when no crossover happens.
std::optional<double> crossover_x(const sim::Series& a, const sim::Series& b);

/// True when the series is non-increasing in y along x within `slack`.
bool is_non_increasing(const sim::Series& s, double slack = 1e-9);

/// True when y values at `x_probe` are ordered s[0] <= s[1] <= ... within
/// `slack` (used for "higher speed => higher acceptance" checks).
bool ordered_at(const std::vector<const sim::Series*>& series, double x_probe,
                double slack = 0.0);

/// Mean of a series' y values.
double mean_y(const sim::Series& s);

/// Write a figure's CSV next to the bench output.  Throws facsp::Error on
/// I/O failure.
void write_csv(const sim::Figure& figure, const std::string& path);

// --- structured sweep results ----------------------------------------------
//
// ResultTable writers with a stable, machine-consumable schema (documented
// in docs/experiments.md).  CSV columns, in order:
//
//   <one column per axis, header = axis name> , replications ,
//   acceptance_pct_mean , acceptance_pct_ci ,
//   blocking_pct_mean   , blocking_pct_ci   ,
//   dropping_pct_mean   , dropping_pct_ci   ,
//   utilization_pct_mean, utilization_pct_ci,
//   completion_pct_mean , completion_pct_ci
//
// Rows keep the table's row-major axis order; the ci columns are the
// half-width at the table's ci_level.  Every double is printed with the
// shortest-round-trip formatter (config_io's format_double), so output is
// locale-independent, re-parses to exactly the same double, and two tables
// with bit-identical contents serialise to byte-identical files — which is
// what CI diffs across thread counts.

/// Serialise the table as CSV.  Throws facsp::Error on I/O failure.
void write_result_csv(const ResultTable& table, std::ostream& os);
void write_result_csv(const ResultTable& table, const std::string& path);
std::string result_csv_string(const ResultTable& table);

/// Serialise the table as JSON: {"replications", "ci_level", "axes": [...],
/// "rows": [{"coords": {axis: label, ...}, "n", "metrics": {name: {"mean",
/// "ci", "stddev", "min", "max"}, ...}}]}.  Same double formatting and
/// ordering guarantees as the CSV writer.
void write_result_json(const ResultTable& table, std::ostream& os);
void write_result_json(const ResultTable& table, const std::string& path);
std::string result_json_string(const ResultTable& table);

/// Minimal reader for the CSV files write_result_csv produces (one header
/// line, comma-separated, no quoting — the writer rejects values containing
/// commas or newlines, so files are never ragged).  Throws
/// facsp::ParseError on ragged rows.
struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;  ///< cells as raw strings
};
CsvTable read_csv(std::istream& is);

/// Render shape checks as a PASS/FAIL block.
void print_shape_checks(std::ostream& os,
                        const std::vector<ShapeCheck>& checks);

}  // namespace facsp::core
