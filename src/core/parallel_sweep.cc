#include "core/parallel_sweep.h"

#include "common/expects.h"
#include "core/sweep.h"

namespace facsp::core {

ParallelSweepRunner::ParallelSweepRunner(ScenarioConfig scenario,
                                         PolicyFactory factory,
                                         std::string policy_label)
    : experiment_(std::move(scenario), std::move(factory),
                  std::move(policy_label)) {}

SweepResult ParallelSweepRunner::run(const SweepConfig& sweep,
                                     std::vector<CellMetrics>* cells) const {
  FACSP_EXPECTS(!sweep.n_values.empty());
  FACSP_EXPECTS(sweep.replications >= 1);
  FACSP_EXPECTS(sweep.threads >= 0);
  return run_legacy_sweep(experiment_.scenario(), experiment_.factory(),
                          experiment_.policy_label(), sweep, sweep.threads,
                          cells);
}

}  // namespace facsp::core
