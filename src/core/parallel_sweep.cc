#include "core/parallel_sweep.h"

#include "common/expects.h"
#include "sim/thread_pool.h"

namespace facsp::core {

ParallelSweepRunner::ParallelSweepRunner(ScenarioConfig scenario,
                                         PolicyFactory factory,
                                         std::string policy_label)
    : experiment_(std::move(scenario), std::move(factory),
                  std::move(policy_label)) {}

SweepResult ParallelSweepRunner::run(const SweepConfig& sweep,
                                     std::vector<CellMetrics>* cells) const {
  FACSP_EXPECTS(!sweep.n_values.empty());
  FACSP_EXPECTS(sweep.replications >= 1);
  FACSP_EXPECTS(sweep.threads >= 0);

  const std::size_t reps = static_cast<std::size_t>(sweep.replications);
  const std::size_t total = sweep.n_values.size() * reps;

  // Phase 1 — simulate: every cell writes its own pre-sized slot, so worker
  // scheduling cannot affect the data, only when it is produced.
  std::vector<CellMetrics> grid(total);
  sim::ThreadPool pool(sim::ThreadPool::resolve_threads(sweep.threads));
  pool.parallel_for(total, [&](std::size_t cell) {
    const std::size_t point = cell / reps;
    const std::uint64_t r = static_cast<std::uint64_t>(cell % reps);
    const int n = sweep.n_values[point];
    grid[cell] = CellMetrics::from_run(n, r, experiment_.run_single(n, r));
  });

  // Phase 2 — reduce serially in (n, replication) order: the exact sequence
  // of SummaryStats::add calls the serial Experiment::run performs, hence
  // bit-identical means/CIs (Welford accumulation is order-sensitive, so the
  // fixed order is what buys exactness, not just the same multiset).
  SweepResult result;
  result.policy_name = experiment_.policy_label();
  result.points.reserve(sweep.n_values.size());
  std::size_t cell = 0;
  for (int n : sweep.n_values) {
    SweepPoint point;
    point.n = n;
    for (std::size_t r = 0; r < reps; ++r, ++cell) grid[cell].add_to(point);
    result.points.push_back(point);
  }
  if (cells != nullptr) *cells = std::move(grid);
  return result;
}

}  // namespace facsp::core
