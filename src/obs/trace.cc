#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/error.h"
#include "core/config_io.h"

namespace facsp::obs {

namespace {

/// One span as stored in a thread's ring.
struct Event {
  const char* cat;
  const char* name;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  std::int64_t arg;
};

/// Per-thread track: a fixed-capacity ring the owning thread writes without
/// synchronisation.  Lives in the global registry (stable address) so
/// write_json can read it after the thread finished.
struct Track {
  explicit Track(int tid_, std::size_t capacity) : tid(tid_) {
    ring.reserve(capacity);
  }
  int tid;
  std::string name;
  std::vector<Event> ring;  ///< grows to capacity once, then wraps
  std::size_t capacity() const noexcept { return ring.capacity(); }
  std::uint64_t total = 0;  ///< events ever recorded (wrap bookkeeping)

  void push(const Event& ev) {
    if (ring.size() < ring.capacity()) {
      ring.push_back(ev);
    } else if (!ring.empty()) {
      ring[static_cast<std::size_t>(total % ring.capacity())] = ev;
    }
    ++total;
  }
};

struct Global {
  std::atomic<bool> enabled{false};
  /// Bumped by start()/clear(): invalidates every thread's cached track.
  std::atomic<std::uint64_t> generation{1};
  Tracer::Clock::time_point origin = Tracer::Clock::now();
  std::mutex mu;  ///< guards tracks / ring_capacity / next_tid
  std::vector<std::unique_ptr<Track>> tracks;
  std::size_t ring_capacity = Tracer::kDefaultRingCapacity;
  int next_tid = 0;
};

Global& global() {
  static Global g;
  return g;
}

struct ThreadCache {
  Track* track = nullptr;
  std::uint64_t generation = 0;
};

thread_local ThreadCache t_cache;

/// The calling thread's track for the current generation, registering it
/// (one allocation, under the control-plane mutex) on first use.
Track& current_track() {
  Global& g = global();
  const std::uint64_t gen = g.generation.load(std::memory_order_acquire);
  if (t_cache.track == nullptr || t_cache.generation != gen) {
    std::lock_guard lock(g.mu);
    g.tracks.push_back(
        std::make_unique<Track>(g.next_tid++, g.ring_capacity));
    t_cache.track = g.tracks.back().get();
    t_cache.generation = gen;
  }
  return *t_cache.track;
}

/// Minimal JSON string escaping for thread names (categories and span names
/// are compile-time literals under our control, but escape uniformly).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
  return out;
}

/// Microseconds (the trace-event unit) with nanosecond resolution, through
/// the byte-stable double formatter.
std::string micros(std::uint64_t ns) {
  return core::format_double(static_cast<double>(ns) / 1000.0);
}

}  // namespace

bool Tracer::enabled() noexcept {
  return global().enabled.load(std::memory_order_relaxed);
}

void Tracer::start(std::size_t ring_capacity) {
  Global& g = global();
  g.enabled.store(false, std::memory_order_relaxed);
  {
    std::lock_guard lock(g.mu);
    g.tracks.clear();
    g.next_tid = 0;
    g.ring_capacity = ring_capacity == 0 ? 1 : ring_capacity;
  }
  g.origin = Clock::now();
  g.generation.fetch_add(1, std::memory_order_release);
  g.enabled.store(true, std::memory_order_relaxed);
}

void Tracer::stop() noexcept {
  global().enabled.store(false, std::memory_order_relaxed);
}

void Tracer::clear() {
  Global& g = global();
  g.enabled.store(false, std::memory_order_relaxed);
  {
    std::lock_guard lock(g.mu);
    g.tracks.clear();
    g.next_tid = 0;
  }
  g.generation.fetch_add(1, std::memory_order_release);
}

void Tracer::set_thread_name(std::string_view name) {
  if (!enabled()) return;
  current_track().name.assign(name.begin(), name.end());
}

std::uint64_t Tracer::to_trace_ns(Clock::time_point tp) noexcept {
  const Global& g = global();
  if (tp <= g.origin) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp - g.origin)
          .count());
}

void Tracer::record(const char* cat, const char* name, std::uint64_t ts_ns,
                    std::uint64_t dur_ns, std::int64_t arg) {
  if (!enabled()) return;
  current_track().push(Event{cat, name, ts_ns, dur_ns, arg});
}

void Tracer::write_json(std::ostream& os) {
  Global& g = global();
  std::lock_guard lock(g.mu);

  struct Flat {
    const Event* ev;
    int tid;
  };
  std::vector<Flat> events;
  for (const auto& track : g.tracks) {
    // Ring order: when wrapped, the oldest retained event sits at
    // total % capacity.
    const std::size_t n = track->ring.size();
    const std::size_t first =
        track->total > n
            ? static_cast<std::size_t>(track->total % track->capacity())
            : 0;
    for (std::size_t i = 0; i < n; ++i)
      events.push_back(Flat{&track->ring[(first + i) % n], track->tid});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Flat& a, const Flat& b) {
                     return a.ev->ts_ns != b.ev->ts_ns
                                ? a.ev->ts_ns < b.ev->ts_ns
                                : a.tid < b.tid;
                   });

  os << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [";
  bool first = true;
  for (const auto& track : g.tracks) {
    if (track->name.empty()) continue;
    os << (first ? "\n" : ",\n")
       << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << track->tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
       << json_escape(track->name) << "\"}}";
    first = false;
  }
  for (const Flat& f : events) {
    os << (first ? "\n" : ",\n")
       << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << f.tid << ", \"cat\": \""
       << json_escape(f.ev->cat) << "\", \"name\": \""
       << json_escape(f.ev->name) << "\", \"ts\": " << micros(f.ev->ts_ns)
       << ", \"dur\": " << micros(f.ev->dur_ns);
    if (f.ev->arg != kNoArg) os << ", \"args\": {\"v\": " << f.ev->arg << "}";
    os << "}";
    first = false;
  }
  os << (first ? "]" : "\n]") << "\n}\n";
}

void Tracer::write_json(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open '" + path + "' for writing");
  write_json(os);
  if (!os) throw Error("failed writing '" + path + "'");
}

std::uint64_t Tracer::recorded_events() {
  Global& g = global();
  std::lock_guard lock(g.mu);
  std::uint64_t total = 0;
  for (const auto& track : g.tracks) total += track->total;
  return total;
}

std::size_t Tracer::buffered_events() {
  Global& g = global();
  std::lock_guard lock(g.mu);
  std::size_t total = 0;
  for (const auto& track : g.tracks) total += track->ring.size();
  return total;
}

std::size_t Tracer::track_count() {
  Global& g = global();
  std::lock_guard lock(g.mu);
  return g.tracks.size();
}

}  // namespace facsp::obs
