#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <vector>

#include "common/error.h"
#include "core/config_io.h"

namespace facsp::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

const char* kind_name(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t Histogram::percentile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0 || !(q >= 0.0 && q <= 1.0)) return 0;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1,
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Same index -> upper-bound arithmetic as
      // serve::LatencyHistogram::percentile_ns (geometry reuse).
      constexpr std::uint64_t kSub = serve::LatencyHistogram::kSubBuckets;
      if (i < kSub * 2) return i;
      const std::size_t shift = i / kSub - 1;
      const std::uint64_t sub = i % kSub + kSub;
      return ((sub + 1) << shift) - 1;
    }
  }
  return max();  // concurrent recording moved the rank past the scan
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Registry::Entry& Registry::entry_for(std::string_view name, Kind kind) {
  if (name.empty()) throw ConfigError("obs: metric name must not be empty");
  std::lock_guard lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw ConfigError("obs: metric '" + std::string(name) +
                      "' already registered as a " +
                      kind_name(static_cast<int>(it->second.kind)) +
                      ", requested as a " + kind_name(static_cast<int>(kind)));
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name) {
  return *entry_for(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *entry_for(name, Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name) {
  return *entry_for(name, Kind::kHistogram).histogram;
}

std::size_t Registry::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

void Registry::reset_values() {
  std::lock_guard lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->reset();
        break;
      case Kind::kGauge:
        entry.gauge->reset();
        break;
      case Kind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

namespace {

void write_histogram_json(std::ostream& os, const Histogram& h) {
  os << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
     << ", \"mean\": " << core::format_double(h.mean())
     << ", \"p50\": " << h.percentile(0.50)
     << ", \"p95\": " << h.percentile(0.95)
     << ", \"p99\": " << h.percentile(0.99)
     << ", \"p999\": " << h.percentile(0.999) << ", \"max\": " << h.max()
     << "}";
}

template <typename Fn>
void write_metrics_file(const std::string& path, Fn&& write) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open '" + path + "' for writing");
  write(os);
  if (!os) throw Error("failed writing '" + path + "'");
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  os << "{\n";
  const char* section_names[3] = {"counters", "gauges", "histograms"};
  for (int kind = 0; kind < 3; ++kind) {
    os << "  \"" << section_names[kind] << "\": {";
    bool first = true;
    for (const auto& [name, entry] : entries_) {
      if (static_cast<int>(entry.kind) != kind) continue;
      os << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
      first = false;
      switch (entry.kind) {
        case Kind::kCounter:
          os << entry.counter->value();
          break;
        case Kind::kGauge:
          os << entry.gauge->value();
          break;
        case Kind::kHistogram:
          write_histogram_json(os, *entry.histogram);
          break;
      }
    }
    os << (first ? "" : "\n  ") << "}" << (kind < 2 ? "," : "") << "\n";
  }
  os << "}\n";
}

void Registry::write_json(const std::string& path) const {
  write_metrics_file(path, [&](std::ostream& os) { write_json(os); });
}

void Registry::write_csv(std::ostream& os) const {
  std::lock_guard lock(mu_);
  os << "kind,name,field,value\n";
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        os << "counter," << name << ",value," << entry.counter->value()
           << '\n';
        break;
      case Kind::kGauge:
        os << "gauge," << name << ",value," << entry.gauge->value() << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        os << "histogram," << name << ",count," << h.count() << '\n'
           << "histogram," << name << ",sum," << h.sum() << '\n'
           << "histogram," << name << ",mean,"
           << core::format_double(h.mean()) << '\n'
           << "histogram," << name << ",p50," << h.percentile(0.50) << '\n'
           << "histogram," << name << ",p95," << h.percentile(0.95) << '\n'
           << "histogram," << name << ",p99," << h.percentile(0.99) << '\n'
           << "histogram," << name << ",p999," << h.percentile(0.999) << '\n'
           << "histogram," << name << ",max," << h.max() << '\n';
        break;
      }
    }
  }
}

void Registry::write_csv(const std::string& path) const {
  write_metrics_file(path, [&](std::ostream& os) { write_csv(os); });
}

void write_snapshot(const std::string& path) {
  const Registry& reg = Registry::instance();
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
    reg.write_csv(path);
  else
    reg.write_json(path);
}

std::string labeled(std::string_view name, std::string_view key,
                    std::int64_t value) {
  std::string out;
  out.reserve(name.size() + key.size() + 24);
  out.append(name);
  out.push_back('{');
  out.append(key);
  out.push_back('=');
  out.append(std::to_string(value));
  out.push_back('}');
  return out;
}

}  // namespace facsp::obs
