// Periodic metrics snapshots for long-lived serves.
//
// The Registry (metrics.h) snapshots byte-stably but, left to the CLI
// flags, only at process exit — a multi-hour serve that crashes loses
// everything.  SnapshotWriter flushes the registry every N completed
// seconds: each flush rewrites the snapshot file (tmp + rename, so a
// crash mid-write never leaves a torn file) and retains the rendered
// bytes in memory, which is what the telemetry scrape endpoint
// (src/net/) serves without touching the filesystem.
//
// Driving it is the caller's job — it has no thread and no timer.  The
// decision server invokes on_second() from its per-second hook
// (simulated time); the socket front-end invokes it from the event loop
// (wall time).  Either way flushes happen on one thread at a time;
// latest() may be called concurrently (both take the same mutex).
//
// Values in the snapshot are cumulative since process start (registry
// semantics), not per-interval deltas: consumers diff consecutive
// snapshots if they want rates, and a partially-served run keeps at
// most `interval` seconds of unflushed tail.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

namespace facsp::obs {

class Registry;

class SnapshotWriter {
 public:
  /// Flush `registry` to `path` every `interval_s` completed seconds.
  /// `path` empty -> never writes a file (the in-memory buffer still
  /// updates; the scrape endpoint uses this mode).  interval_s must be
  /// >= 1 (throws facsp::ConfigError otherwise).
  SnapshotWriter(std::string path, std::int64_t interval_s,
                 Registry& registry);

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Notify that second `second` completed; flushes when a full interval
  /// has elapsed since the last flush.  Seconds must be nondecreasing.
  void on_second(std::int64_t second);

  /// Render + write unconditionally (run end, graceful drain).
  void flush();

  /// The last rendered snapshot (empty before the first flush).  Returns
  /// a copy; the scrape path appends it to a connection buffer anyway.
  std::string latest() const;

  std::uint64_t flush_count() const noexcept { return flushes_; }

 private:
  void flush_locked();

  std::string path_;
  std::int64_t interval_s_;
  Registry& registry_;
  mutable std::mutex mu_;
  std::string buffer_;            ///< last rendered snapshot (CSV bytes)
  std::int64_t last_flush_ = -1;  ///< second of the most recent flush
  std::uint64_t flushes_ = 0;
};

}  // namespace facsp::obs
