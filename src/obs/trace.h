// Scoped-span tracer emitting Chrome trace-event JSON — the format
// chrome://tracing and Perfetto load directly (one "X" complete event per
// span, per-thread tracks, "M" thread-name metadata).
//
// Design constraints, in priority order:
//
//   1. Disabled is free: Tracer::enabled() is one relaxed atomic load, and
//      a ScopedSpan on a disabled tracer is that load plus a branch — no
//      clock read, no store, no allocation.  bench_obs.cc measures both
//      paths and CI guards them.
//   2. Recording never allocates in steady state: each thread owns a
//      fixed-capacity ring buffer (allocated once, on the thread's first
//      recorded event), and events hold `const char*` category/name — call
//      sites must pass string literals (or pointers that outlive the
//      flush).  When a ring fills, new events overwrite the oldest —
//      tracing long runs is safe, you just keep the tail.
//   3. Observability never perturbs results: spans read the clock and
//      write to thread-local buffers, nothing else.  Telemetry CSVs and
//      ResultTables are byte-identical with tracing on or off (ctest + CI).
//
// Threading contract: record()/ScopedSpan/set_thread_name are safe from any
// thread concurrently (each thread writes only its own ring).
// start/stop/clear/write_json are control-plane calls — they must not run
// concurrently with recording threads.  Every call site in this repo calls
// them strictly before/after the parallel regions (thread pools are joined
// by then).
//
// See docs/observability.md for the span catalogue and a Perfetto how-to.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace facsp::obs {

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  /// Sentinel for "no argument" on a span.
  static constexpr std::int64_t kNoArg = INT64_MIN;
  /// Events retained per thread (~1.5 MiB/thread at 24 B/event).
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

  /// Is tracing on?  One relaxed load — THE hot-path check.
  static bool enabled() noexcept;

  /// Drop any previous events, rebase the clock origin to now and enable
  /// recording.  `ring_capacity` bounds the events each thread retains.
  static void start(std::size_t ring_capacity = kDefaultRingCapacity);

  /// Disable recording; buffered events stay available to write_json.
  static void stop() noexcept;

  /// Disable and drop all events and thread tracks.
  static void clear();

  /// Name the calling thread's track ("engine-worker-3", ...).  No-op when
  /// tracing is disabled.  Allocates (registration) — call at thread start,
  /// not in loops.
  static void set_thread_name(std::string_view name);

  /// Nanoseconds between the tracer's clock origin and `tp` (0 when `tp`
  /// precedes the origin).  Lets call sites that already read the clock —
  /// e.g. the decision server's latency timing — reuse those timestamps.
  static std::uint64_t to_trace_ns(Clock::time_point tp) noexcept;

  /// Append one complete event to the calling thread's ring.  Drops the
  /// event (cheaply) when disabled.  `cat`/`name` must outlive write_json —
  /// pass string literals.
  static void record(const char* cat, const char* name, std::uint64_t ts_ns,
                     std::uint64_t dur_ns, std::int64_t arg = kNoArg);

  /// Chrome trace-event JSON of everything currently buffered, all threads,
  /// events sorted by (ts, tid).  Requires recording quiescence (see the
  /// threading contract above).
  static void write_json(std::ostream& os);
  static void write_json(const std::string& path);

  // --- introspection (tests) -----------------------------------------------
  /// Events recorded since start(), including ones overwritten on wrap.
  static std::uint64_t recorded_events();
  /// Events currently buffered across all tracks (<= tracks * capacity).
  static std::size_t buffered_events();
  /// Tracks registered since start() (= threads that recorded or named
  /// themselves).
  static std::size_t track_count();
};

/// RAII span: construction stamps the start, destruction records
/// [start, now) as one trace event.  Optionally mirrors the duration into
/// one or two obs::Histograms (when metrics are enabled) — an aggregate and
/// a labelled per-entity family, say — so one clock pair feeds the trace
/// and the metrics registry.  With tracing and metrics both off,
/// constructor and destructor are each a load + branch.
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name,
             std::int64_t arg = Tracer::kNoArg,
             Histogram* duration_hist = nullptr,
             Histogram* duration_hist2 = nullptr) noexcept
      : cat_(cat), name_(name), arg_(arg) {
    traced_ = Tracer::enabled();
    const bool metered = metrics_enabled();
    hist_ = (duration_hist != nullptr && metered) ? duration_hist : nullptr;
    hist2_ = (duration_hist2 != nullptr && metered) ? duration_hist2
                                                    : nullptr;
    if (traced_ || hist_ != nullptr || hist2_ != nullptr)
      start_ = Tracer::Clock::now();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (!traced_ && hist_ == nullptr && hist2_ == nullptr) return;
    const Tracer::Clock::time_point end = Tracer::Clock::now();
    const std::uint64_t dur_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count());
    if (hist_ != nullptr) hist_->record(dur_ns);
    if (hist2_ != nullptr) hist2_->record(dur_ns);
    if (traced_)
      Tracer::record(cat_, name_, Tracer::to_trace_ns(start_), dur_ns, arg_);
  }

 private:
  const char* cat_;
  const char* name_;
  std::int64_t arg_;
  Histogram* hist_ = nullptr;
  Histogram* hist2_ = nullptr;
  bool traced_ = false;
  Tracer::Clock::time_point start_{};
};

// Convenience for plain block spans: FACSP_TRACE_SPAN("engine", "barrier");
#define FACSP_OBS_CONCAT2(a, b) a##b
#define FACSP_OBS_CONCAT(a, b) FACSP_OBS_CONCAT2(a, b)
#define FACSP_TRACE_SPAN(cat, name) \
  ::facsp::obs::ScopedSpan FACSP_OBS_CONCAT(facsp_obs_span_, __LINE__)(cat, \
                                                                       name)

}  // namespace facsp::obs
