// Process-wide metrics registry: named counters, gauges and log-linear
// histograms with lock-free recording on hot paths.
//
// Contract (the reason this layer may sit inside the zero-allocation
// serving/simulation loops):
//
//   * Registration (Registry::counter/gauge/histogram) takes a mutex and may
//     allocate — do it once, at setup, and keep the returned reference.
//     Entries are never removed, so references stay valid for the process
//     lifetime; reset_values() zeroes values without invalidating anything.
//   * Recording (Counter::add, Gauge::set, Histogram::record) is a handful
//     of relaxed atomics: lock-free, allocation-free, wait-free apart from
//     the histogram max update.  The counting-operator-new audits in
//     bench_server / bench_multicell run with metrics enabled to enforce the
//     zero-steady-state-allocation claim.
//   * Observability never feeds back into simulation state or RNG streams:
//     telemetry CSVs and ResultTables are byte-identical with metrics on or
//     off (ctest + CI enforced, see docs/observability.md).
//
// The global `metrics_enabled()` switch gates every instrumentation site in
// the library: disabled (the default), an instrumented hot path pays one
// relaxed atomic load and a branch.
//
// Snapshots (write_json / write_csv) are byte-stable: entries sort by name,
// doubles go through core::format_double, so two snapshots of bit-identical
// values serialise to identical bytes regardless of registration order.
// Snapshots taken while other threads record see each atomic individually
// (values may be mid-update relative to each other); take them at barriers
// or after joins when exactness matters.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "serve/latency_histogram.h"

namespace facsp::obs {

/// Global switch for metric recording at the library's instrumentation
/// sites.  Off by default; the disabled path is one relaxed load + branch.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (sessions resident, queue depth, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Concurrent log-linear histogram of non-negative integer samples
/// (durations in ns, batch sizes, ...).  Reuses serve::LatencyHistogram's
/// bucket geometry verbatim — bucket_index / bucket_upper_bound are the
/// same functions, so the <=1/16 relative quantisation error bound and the
/// exact-below-32 property carry over (tests/obs/test_metrics.cc pins the
/// two geometries against each other).  Buckets are atomics, making
/// record() safe from any number of threads.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount =
      serve::LatencyHistogram::kBucketCount;

  void record(std::uint64_t v) noexcept {
    buckets_[serve::LatencyHistogram::bucket_index(v)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Largest recorded sample, exact (not quantised).
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Upper bound of the bucket holding the ceil(q * count)-th smallest
  /// sample — same rank statistic and quantisation as
  /// serve::LatencyHistogram::percentile_ns.  Returns 0 when empty (a
  /// snapshot of an untouched histogram must not throw).
  std::uint64_t percentile(double q) const noexcept;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// The process-wide name -> metric map.  One instance per process
/// (Registry::instance()); separate instances exist only in tests.
class Registry {
 public:
  static Registry& instance();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name.  Throws facsp::ConfigError when `name` is
  /// empty or already registered as a different kind.  The returned
  /// reference is valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Number of registered metrics (all kinds).
  std::size_t size() const;

  /// Zero every value; names stay registered and references stay valid.
  void reset_values();

  /// Byte-stable snapshot: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, p50, p95, p99, p999, max}}},
  /// entries sorted by name, doubles via core::format_double.
  void write_json(std::ostream& os) const;
  void write_json(const std::string& path) const;

  /// Byte-stable flat CSV: kind,name,field,value — one row per scalar
  /// (counters/gauges: field "value"; histograms: one row per statistic).
  void write_csv(std::ostream& os) const;
  void write_csv(const std::string& path) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(std::string_view name, Kind kind);

  mutable std::mutex mu_;
  /// Ordered map: iteration is name-sorted, which is what makes snapshots
  /// independent of registration order.  Values are unique_ptrs so the
  /// metric objects never move.
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Write Registry::instance() to `path`: CSV when the path ends in ".csv",
/// JSON otherwise.  The `--metrics <file>` CLI flags funnel through this.
void write_snapshot(const std::string& path);

/// Label-suffixed metric name: `labeled("engine.shard_drain_ns", "shard", 3)`
/// -> "engine.shard_drain_ns{shard=3}".  The registry treats the result as
/// an ordinary name, so labelled families ride the existing name-sorted,
/// byte-stable snapshot machinery unchanged.  Building the string
/// allocates: resolve labelled metrics once at setup (like any other
/// registration) and keep the references.
std::string labeled(std::string_view name, std::string_view key,
                    std::int64_t value);

}  // namespace facsp::obs
