#include "obs/snapshot.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"

namespace facsp::obs {

SnapshotWriter::SnapshotWriter(std::string path, std::int64_t interval_s,
                               Registry& registry)
    : path_(std::move(path)), interval_s_(interval_s), registry_(registry) {
  if (interval_s_ < 1)
    throw ConfigError("snapshot: interval must be >= 1 second");
}

void SnapshotWriter::on_second(std::int64_t second) {
  std::lock_guard<std::mutex> lock(mu_);
  // First interval is anchored at second 0: with interval 5 the flushes
  // land after seconds 4, 9, 14, ... regardless of when the writer was
  // constructed.
  if ((second + 1) % interval_s_ != 0) return;
  if (second <= last_flush_) return;
  last_flush_ = second;
  flush_locked();
}

void SnapshotWriter::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

void SnapshotWriter::flush_locked() {
  std::ostringstream os;
  registry_.write_csv(os);
  buffer_ = os.str();
  ++flushes_;
  if (path_.empty()) return;
  // tmp + rename: a crash mid-write leaves the previous complete snapshot
  // in place, never a torn file.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) throw Error("snapshot: cannot open '" + tmp + "' for writing");
    f << buffer_;
    if (!f) throw Error("snapshot: failed writing '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    throw Error("snapshot: cannot rename '" + tmp + "' to '" + path_ + "'");
}

std::string SnapshotWriter::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffer_;
}

}  // namespace facsp::obs
