// Service classes and traffic mix (paper Sec. 4).
//
// The evaluation uses three services — text, voice, video — requesting
// 1 / 5 / 10 bandwidth units (BU) with arrival shares 70% / 20% / 10%.
// Voice and video are real-time (RT); text is non-real-time (NRT), the
// distinction driving the paper's RTC/NRTC differentiated-service counters.
#pragma once

#include <array>
#include <iosfwd>
#include <string_view>

namespace facsp::cellular {

/// Bandwidth in "bandwidth units" (BU), the paper's capacity currency.
using Bandwidth = double;

enum class ServiceClass { kText = 0, kVoice = 1, kVideo = 2 };

inline constexpr std::array<ServiceClass, 3> kAllServices = {
    ServiceClass::kText, ServiceClass::kVoice, ServiceClass::kVideo};

/// Requested bandwidth per service (paper: 1, 5, 10 BU).
Bandwidth service_bandwidth(ServiceClass s) noexcept;

/// Real-time services (voice, video) get on-going priority in FACS-P.
bool is_real_time(ServiceClass s) noexcept;

std::string_view service_name(ServiceClass s) noexcept;

std::ostream& operator<<(std::ostream& os, ServiceClass s);

/// Priority of a *requesting* connection — the paper's stated future work
/// ("in the future, we would like to consider also the priority of
/// requesting connections").  Orthogonal to the RT/NRT service split.
enum class UserPriority { kLow = 0, kNormal = 1, kHigh = 2 };

inline constexpr std::array<UserPriority, 3> kAllPriorities = {
    UserPriority::kLow, UserPriority::kNormal, UserPriority::kHigh};

std::string_view priority_name(UserPriority p) noexcept;
std::ostream& operator<<(std::ostream& os, UserPriority p);

/// Arrival mix over the three services; probabilities must be non-negative
/// and sum to ~1.  Paper default: 70% text, 20% voice, 10% video.
struct TrafficMix {
  double text = 0.70;
  double voice = 0.20;
  double video = 0.10;

  /// Throws facsp::ConfigError if probabilities are negative or do not sum
  /// to 1 within 1e-6.
  void validate() const;

  double probability(ServiceClass s) const noexcept;

  /// Expected bandwidth of one request under this mix (paper default:
  /// 0.7*1 + 0.2*5 + 0.1*10 = 2.7 BU).
  Bandwidth mean_bandwidth() const noexcept;
};

}  // namespace facsp::cellular
