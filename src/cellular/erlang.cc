#include "cellular/erlang.h"

#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/expects.h"

namespace facsp::cellular {

double erlang_b(double erlangs, int servers) {
  if (erlangs < 0.0) throw ConfigError("erlang_b: load must be >= 0");
  if (servers < 0) throw ConfigError("erlang_b: servers must be >= 0");
  if (servers == 0) return 1.0;
  if (erlangs == 0.0) return 0.0;
  // B(0) = 1; B(n) = a*B(n-1) / (n + a*B(n-1)).
  double b = 1.0;
  for (int n = 1; n <= servers; ++n) b = erlangs * b / (n + erlangs * b);
  return b;
}

KaufmanRoberts::KaufmanRoberts(int capacity_bu,
                               std::vector<TrafficClass> classes)
    : capacity_(capacity_bu), classes_(std::move(classes)) {
  if (capacity_ <= 0)
    throw ConfigError("kaufman-roberts: capacity must be > 0");
  if (classes_.empty())
    throw ConfigError("kaufman-roberts: at least one class required");
  for (const auto& c : classes_) {
    if (c.bandwidth_units <= 0)
      throw ConfigError("kaufman-roberts: class size must be > 0 BU");
    if (c.offered_erlangs < 0.0)
      throw ConfigError("kaufman-roberts: offered load must be >= 0");
  }

  // Unnormalised recursion: j*q(j) = sum_k a_k * b_k * q(j - b_k).
  q_.assign(static_cast<std::size_t>(capacity_) + 1, 0.0);
  q_[0] = 1.0;
  for (int j = 1; j <= capacity_; ++j) {
    double acc = 0.0;
    for (const auto& c : classes_) {
      if (j >= c.bandwidth_units)
        acc += c.offered_erlangs * c.bandwidth_units *
               q_[static_cast<std::size_t>(j - c.bandwidth_units)];
    }
    q_[static_cast<std::size_t>(j)] = acc / j;
  }
  const double total = std::accumulate(q_.begin(), q_.end(), 0.0);
  FACSP_ENSURES(total > 0.0);
  for (double& v : q_) v /= total;
}

double KaufmanRoberts::blocking(std::size_t k) const {
  FACSP_EXPECTS(k < classes_.size());
  const int b = classes_[k].bandwidth_units;
  double p = 0.0;
  for (int j = capacity_ - b + 1; j <= capacity_; ++j)
    if (j >= 0) p += q_[static_cast<std::size_t>(j)];
  return p;
}

double KaufmanRoberts::mean_blocking() const {
  // Weight by offered *call* rate.  offered_erlangs = lambda * T, and all
  // classes share T in the paper's scenario, so erlangs/b-independent
  // weighting by erlangs is proportional to lambda when holding times are
  // equal; expose exactness by weighting by erlangs / mean-holding-free
  // lambda proxy.
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < classes_.size(); ++k) {
    const double w = classes_[k].offered_erlangs;
    num += w * blocking(k);
    den += w;
  }
  return den > 0.0 ? num / den : 0.0;
}

double KaufmanRoberts::acceptance_percent() const {
  return 100.0 * (1.0 - mean_blocking());
}

double KaufmanRoberts::occupancy_probability(int j) const {
  FACSP_EXPECTS(j >= 0 && j <= capacity_);
  return q_[static_cast<std::size_t>(j)];
}

double KaufmanRoberts::mean_occupancy() const {
  double m = 0.0;
  for (int j = 0; j <= capacity_; ++j)
    m += j * q_[static_cast<std::size_t>(j)];
  return m;
}

KaufmanRoberts KaufmanRoberts::for_paper_mix(int capacity_bu,
                                             const TrafficMix& mix,
                                             double arrival_rate_per_s,
                                             double mean_holding_s) {
  mix.validate();
  if (arrival_rate_per_s < 0.0)
    throw ConfigError("kaufman-roberts: arrival rate must be >= 0");
  if (mean_holding_s <= 0.0)
    throw ConfigError("kaufman-roberts: holding time must be > 0");
  std::vector<TrafficClass> classes;
  for (ServiceClass s : kAllServices) {
    TrafficClass c;
    c.offered_erlangs =
        arrival_rate_per_s * mix.probability(s) * mean_holding_s;
    c.bandwidth_units = static_cast<int>(service_bandwidth(s));
    classes.push_back(c);
  }
  return KaufmanRoberts(capacity_bu, std::move(classes));
}

}  // namespace facsp::cellular
