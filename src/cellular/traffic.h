// Workload generation: call requests with the paper's traffic parameters.
//
// Paper Sec. 4: speeds 0..120 km/h, directions -180..+180 deg, service mix
// 70/20/10 (text/voice/video) at 1/5/10 BU.  The x-axis of every figure is
// "number of requesting connections" N: a batch of N requests whose arrival
// times spread over a finite window, contending for the cell's 40 BU.
//
// *When* the N requests land inside the window is delegated to a pluggable
// workload::ArrivalProcess (default: the paper's conditioned-uniform /
// Poisson behaviour); *what* they ask for can vary over the window through a
// workload::MixSchedule (default: the constant configured mix).
#pragma once

#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "cellular/connection.h"
#include "cellular/hexgrid.h"
#include "cellular/mobility.h"
#include "cellular/service.h"
#include "sim/rng.h"
#include "workload/arrival.h"
#include "workload/mix_schedule.h"

namespace facsp::cellular {

/// One generated call request: who, what, when and the mobile's kinematics.
struct CallRequest {
  ConnectionId id = 0;
  ServiceClass service = ServiceClass::kText;
  Bandwidth bandwidth = 1.0;
  UserPriority priority = UserPriority::kNormal;
  sim::SimTime arrival_time = 0.0;
  sim::SimTime holding_time = 0.0;
  MobileState mobile;
};

/// Workload knobs.  Defaults reproduce the paper's scenario.
struct TrafficConfig {
  TrafficMix mix{};

  /// How the batch's arrival times are placed inside the window.  The
  /// default (conditioned uniform) reproduces the paper: requests arrive
  /// uniformly at random over [t0, t0 + arrival_window_s] (the order
  /// statistics of a Poisson process conditioned on N arrivals).
  workload::ArrivalSpec arrival{};

  /// Time-varying service mix; empty = `mix` applies for the whole window.
  workload::MixSchedule mix_schedule{};

  /// Length of the arrival window (seconds).
  double arrival_window_s = 900.0;

  /// Mean exponential call holding time.  300 s against a 900 s window makes
  /// offered load accumulate with N, reproducing the declining acceptance
  /// curves.
  double mean_holding_s = 300.0;

  /// Speed: fixed (Fig. 8 series) or uniform in [min, max] (other figures).
  std::optional<double> fixed_speed_kmh;
  double min_speed_kmh = 0.0;
  double max_speed_kmh = 120.0;

  /// Angle w.r.t. the base station: fixed magnitude with random sign
  /// (Fig. 9 series) or uniform in (-180, 180] (other figures).
  std::optional<double> fixed_angle_deg;

  /// Requesting-connection priority shares (low/normal/high); must be
  /// non-negative and sum to 1.  Ignored by priority-blind policies.
  double priority_low = 0.2;
  double priority_normal = 0.6;
  double priority_high = 0.2;

  /// Throws facsp::ConfigError on inconsistent ranges / negative times.
  void validate() const;
};

/// Generates batches of call requests inside one spawn cell.
class TrafficGenerator {
 public:
  /// Requests spawn uniformly inside `spawn_cell` of `layout`; their heading
  /// is derived from the angle policy relative to `bs_position`.
  /// `first_id` seeds the connection-id sequence (several generators in one
  /// simulation must use disjoint ranges).
  TrafficGenerator(TrafficConfig config, const HexLayout& layout,
                   HexCoord spawn_cell, Point bs_position,
                   sim::RandomStream rng, ConnectionId first_id = 1);

  /// Generate `n` requests with arrival times in [t0, t0+window], sorted by
  /// arrival time.  Connection ids are sequential starting from the value
  /// passed at the previous call (fresh generator starts at 1).
  std::vector<CallRequest> generate(int n, sim::SimTime t0 = 0.0);

  /// Like generate(), but fills `out` (cleared first) reusing its capacity
  /// and the internal arrival-time scratch: with the default arrival process
  /// and a constant mix, steady-state calls perform no heap allocation.
  void generate_into(int n, sim::SimTime t0, std::vector<CallRequest>& out);

  const TrafficConfig& config() const noexcept { return config_; }
  const workload::ArrivalProcess& arrival_process() const noexcept {
    return *arrival_;
  }

 private:
  CallRequest make_request(sim::SimTime arrival, sim::SimTime t0);
  void rebuild_service_dist(const TrafficMix& mix);

  TrafficConfig config_;
  const HexLayout& layout_;
  HexCoord spawn_cell_;
  Point bs_position_;
  sim::RandomStream rng_;
  ConnectionId next_id_ = 1;
  std::unique_ptr<workload::ArrivalProcess> arrival_;
  std::vector<sim::SimTime> arrival_scratch_;
  /// Cached distributions (identical draws to constructing them per request,
  /// without the per-request heap allocation).  The service distribution is
  /// rebuilt only when a mix-schedule segment boundary is crossed.
  std::discrete_distribution<std::size_t> service_dist_;
  std::discrete_distribution<std::size_t> priority_dist_;
  int active_mix_segment_ = -1;
};

}  // namespace facsp::cellular
