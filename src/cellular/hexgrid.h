// Hexagonal cell geometry.
//
// Cells are pointy-top hexagons addressed by axial coordinates (q, r); the
// world plane is continuous 2D in metres.  This supplies the coordinate
// algebra the network layer and the SCC baseline need: centre positions,
// point->cell lookup (cube rounding), neighbourhoods, rings and distances.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

namespace facsp::cellular {

/// Axial hex coordinate.
struct HexCoord {
  int q = 0;
  int r = 0;

  friend bool operator==(const HexCoord&, const HexCoord&) = default;

  /// Third cube coordinate (s = -q - r).
  int s() const noexcept { return -q - r; }
};

/// Hash so HexCoord can key unordered containers.
struct HexCoordHash {
  std::size_t operator()(const HexCoord& h) const noexcept {
    // Szudzik-style pairing of two 32-bit ints.
    const auto a = static_cast<std::uint64_t>(static_cast<std::uint32_t>(h.q));
    const auto b = static_cast<std::uint64_t>(static_cast<std::uint32_t>(h.r));
    return static_cast<std::size_t>(a * 0x9e3779b97f4a7c15ull ^ (b + 0x7f4a7c15ull));
  }
};

/// A point in the continuous world plane (metres).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

double distance(const Point& a, const Point& b) noexcept;

/// Heading (degrees in (-180, 180]) of the vector from `from` to `to`.
double heading_deg(const Point& from, const Point& to) noexcept;

/// Grid-level hex distance (number of cell hops) between two coordinates.
int hex_distance(const HexCoord& a, const HexCoord& b) noexcept;

/// The 6 neighbours of a hex coordinate, in fixed order (E, NE, NW, W, SW, SE).
std::vector<HexCoord> hex_neighbors(const HexCoord& h);

/// All coordinates at exactly `radius` hops from center (radius >= 1), or
/// {center} for radius 0.
std::vector<HexCoord> hex_ring(const HexCoord& center, int radius);

/// All coordinates within `radius` hops of center (a filled disc; size
/// 1 + 3*radius*(radius+1)).
std::vector<HexCoord> hex_disc(const HexCoord& center, int radius);

/// Converts between axial coordinates and world positions for pointy-top
/// hexagons with a given circumradius (centre-to-vertex, metres).
class HexLayout {
 public:
  /// cell_radius: circumradius in metres, > 0.
  explicit HexLayout(double cell_radius);

  double cell_radius() const noexcept { return radius_; }

  /// Centre of a cell in world coordinates.
  Point center(const HexCoord& h) const noexcept;

  /// Cell containing a world point (cube rounding; boundary points resolve
  /// deterministically).
  HexCoord cell_at(const Point& p) const noexcept;

  /// Uniformly random point inside the given cell (rejection sampling over
  /// the bounding box using the supplied uniform(0,1) generator).
  Point random_point_in_cell(const HexCoord& h,
                             const std::function<double()>& uniform01) const;

 private:
  double radius_;
};

std::ostream& operator<<(std::ostream& os, const HexCoord& h);
std::ostream& operator<<(std::ostream& os, const Point& p);

}  // namespace facsp::cellular
