// Connection (call) lifecycle records.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "cellular/service.h"
#include "sim/event_queue.h"  // SimTime

namespace facsp::cellular {

using ConnectionId = std::uint64_t;

/// Why a connection is requesting resources from a base station.
enum class RequestKind {
  kNew,      ///< fresh call originating in this cell
  kHandoff,  ///< on-going call arriving from a neighbouring cell
};

/// Lifecycle of one connection.
enum class ConnectionState {
  kPending,    ///< created, admission not yet decided
  kActive,     ///< admitted and holding bandwidth
  kBlocked,    ///< rejected at admission (new call)
  kDropped,    ///< lost mid-call (handoff rejection)
  kCompleted,  ///< finished normally
};

std::ostream& operator<<(std::ostream& os, RequestKind k);
std::ostream& operator<<(std::ostream& os, ConnectionState s);

/// One call and its QoS-relevant history.  Owned by the session driver;
/// base stations reference connections by id only.
struct Connection {
  ConnectionId id = 0;
  ServiceClass service = ServiceClass::kText;
  Bandwidth bandwidth = 1.0;           ///< BU held while active
  UserPriority priority = UserPriority::kNormal;
  RequestKind origin = RequestKind::kNew;
  ConnectionState state = ConnectionState::kPending;

  sim::SimTime request_time = 0.0;     ///< when admission was requested
  sim::SimTime start_time = 0.0;       ///< when admitted (if ever)
  sim::SimTime end_time = 0.0;         ///< completion/drop time (if ever)
  sim::SimTime holding_time = 0.0;     ///< sampled total call duration

  int handoff_count = 0;               ///< successful handoffs so far

  bool real_time() const noexcept { return is_real_time(service); }

  /// Elapsed active time at `now` (0 unless active).
  sim::SimTime elapsed(sim::SimTime now) const noexcept {
    return state == ConnectionState::kActive ? now - start_time : 0.0;
  }
};

}  // namespace facsp::cellular
