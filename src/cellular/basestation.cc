#include "cellular/basestation.h"

#include "common/error.h"
#include "common/expects.h"

namespace facsp::cellular {

BaseStation::BaseStation(BaseStationId id, HexCoord coord, Point position,
                         Bandwidth capacity)
    : id_(id), coord_(coord), position_(position) {
  if (!(capacity > 0.0))
    throw ConfigError("base station " + std::to_string(id) +
                      ": capacity must be > 0");
  load_.capacity = capacity;
}

void BaseStation::touch(sim::SimTime now) {
  if (util_.started()) util_.update(now, load_.utilization());
}

bool BaseStation::allocate(const Connection& conn, sim::SimTime now,
                           bool via_handoff) {
  FACSP_EXPECTS_MSG(conn.bandwidth > 0.0,
                    "connection " << conn.id << " has non-positive bandwidth");
  FACSP_EXPECTS_MSG(!holds(conn.id),
                    "connection " << conn.id << " already allocated on BS "
                                  << id_);
  if (!can_fit(conn.bandwidth)) return false;
  held_.emplace(conn.id,
                Held{conn.bandwidth, conn.real_time(), via_handoff});
  load_.used += conn.bandwidth;
  if (conn.real_time()) {
    load_.rt_used += conn.bandwidth;
    ++load_.rt_count;
  } else {
    load_.nrt_used += conn.bandwidth;
    ++load_.nrt_count;
  }
  if (via_handoff) ++load_.handoff_count;
  touch(now);
  return true;
}

void BaseStation::release(ConnectionId id, sim::SimTime now) {
  const auto it = held_.find(id);
  FACSP_EXPECTS_MSG(it != held_.end(),
                    "connection " << id << " not allocated on BS " << id_);
  const Held h = it->second;
  held_.erase(it);
  load_.used -= h.bw;
  if (h.real_time) {
    load_.rt_used -= h.bw;
    --load_.rt_count;
  } else {
    load_.nrt_used -= h.bw;
    --load_.nrt_count;
  }
  if (h.via_handoff) --load_.handoff_count;
  // Guard against floating-point drift pushing counters below zero.
  if (load_.used < 1e-9) load_.used = 0.0;
  if (load_.rt_used < 1e-9) load_.rt_used = 0.0;
  if (load_.nrt_used < 1e-9) load_.nrt_used = 0.0;
  touch(now);
}

bool BaseStation::holds(ConnectionId id) const noexcept {
  return held_.contains(id);
}

void BaseStation::start_metrics(sim::SimTime t0) {
  util_.start(t0, load_.utilization());
}

double BaseStation::average_utilization(sim::SimTime now) const {
  FACSP_EXPECTS_MSG(util_.started(),
                    "start_metrics was not called on BS " << id_);
  return util_.average(now);
}

}  // namespace facsp::cellular
