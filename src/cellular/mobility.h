// User mobility: the Gauss-Markov style smooth-random-walk model and the
// direction predictor whose accuracy depends on speed.
//
// The paper's central mobility claim (Sec. 4, Fig. 8) is that direction is
// *stable* at high speed and *volatile* at low speed: "with the increase of
// the user speed, the user direction can not be changed easily, this results
// in a better prediction of the user direction".  Two components encode that:
//
//  * MobilityModel — advances a mobile's position; at each update the heading
//    receives a zero-mean Gaussian perturbation whose standard deviation
//    shrinks with speed (fast vehicles steer less per unit time).
//  * DirectionPredictor — what the base station *believes* the user's angle
//    is.  Prediction error has the same speed dependence, so a slow user
//    heading straight at the BS may still be *measured* as oblique, and vice
//    versa.  The CAC consumes predicted angles, never true ones.
#pragma once

#include "cellular/hexgrid.h"
#include "sim/event_queue.h"  // SimTime
#include "sim/rng.h"

namespace facsp::cellular {

/// Kinematic state of one mobile terminal.
struct MobileState {
  Point position;            ///< metres
  double speed_kmh = 0.0;    ///< magnitude of velocity
  double heading_deg = 0.0;  ///< direction of travel, (-180, 180]
};

/// Tuning of the speed-dependent direction volatility.
///
/// The per-update heading perturbation is
///     sigma(speed) = base_sigma_deg * reference_kmh / (speed + reference_kmh)
/// per sqrt(update_interval_s) second of travel — i.e. a slow pedestrian
/// (4 km/h) wanders with sigma ~= base_sigma, a 60 km/h vehicle with ~1/3 of
/// it.  Defaults give the paper's qualitative speed ordering.
struct MobilityConfig {
  double base_sigma_deg = 48.0;   ///< heading volatility scale
  double reference_kmh = 18.0;    ///< speed at which volatility halves
  double update_interval_s = 5.0; ///< mobility update period
  double min_speed_kmh = 0.0;     ///< clamp for speed jitter
  double max_speed_kmh = 120.0;   ///< paper: speeds up to 120 km/h
  double speed_sigma_kmh = 0.0;   ///< optional speed jitter per update

  /// Heading perturbation stddev for one update at the given speed.
  double heading_sigma(double speed_kmh) const noexcept;
};

/// Advances mobile terminals with the smooth random-walk model.
class MobilityModel {
 public:
  MobilityModel(MobilityConfig config, sim::RandomStream rng);

  const MobilityConfig& config() const noexcept { return config_; }

  /// Advance `state` by dt seconds: move along the current heading, then
  /// perturb heading (and optionally speed) for the next leg.
  void advance(MobileState& state, sim::SimTime dt);

  /// Convert km/h to m/s.
  static double kmh_to_ms(double kmh) noexcept { return kmh / 3.6; }

 private:
  MobilityConfig config_;
  sim::RandomStream rng_;
};

/// Angle of travel relative to the base station: 0 deg means heading
/// straight at the BS, ±180 means directly away.  This is the `An` input of
/// FLC1.
double angle_to_bs_deg(const MobileState& state, const Point& bs) noexcept;

/// Base-station-side estimate of a user's angle.  Error shrinks with speed
/// (the paper's "better prediction of the user direction" at high speed).
class DirectionPredictor {
 public:
  /// sigma(speed) = base_sigma_deg * reference_kmh / (speed + reference_kmh).
  /// With defaults: 4 km/h -> ~39 deg, 30 km/h -> ~18 deg, 60 km/h -> ~11 deg.
  struct Config {
    double base_sigma_deg = 48.0;
    double reference_kmh = 18.0;
  };

  DirectionPredictor(Config config, sim::RandomStream rng);

  /// Predicted (noisy) angle-to-BS for the given true state.
  double predict_angle_deg(const MobileState& state, const Point& bs);

  /// Error stddev at a given speed (deterministic; exposed for tests).
  double sigma_deg(double speed_kmh) const noexcept;

 private:
  Config config_;
  sim::RandomStream rng_;
};

}  // namespace facsp::cellular
