// Base station: one cell's radio resources and on-going-connection ledger.
//
// Capacity is counted in bandwidth units (paper: 40 BU per BS).  Besides the
// plain occupancy, the BS maintains the paper's differentiated-service
// counters — RTC (real-time: voice+video) and NRTC (non-real-time: text) —
// which FACS-P's priority mechanism reads.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cellular/connection.h"
#include "cellular/hexgrid.h"
#include "cellular/service.h"
#include "sim/stats.h"

namespace facsp::cellular {

using BaseStationId = std::uint32_t;

/// Snapshot of a base station's load, consumed by admission policies.
struct LoadState {
  Bandwidth capacity = 40.0;
  Bandwidth used = 0.0;           ///< total occupied BU
  Bandwidth rt_used = 0.0;        ///< BU held by real-time connections (RTC)
  Bandwidth nrt_used = 0.0;       ///< BU held by non-real-time (NRTC)
  std::uint32_t rt_count = 0;     ///< # active real-time connections
  std::uint32_t nrt_count = 0;    ///< # active non-real-time connections
  std::uint32_t handoff_count = 0;///< # active connections that arrived by handoff

  Bandwidth free() const noexcept { return capacity - used; }
  double utilization() const noexcept {
    return capacity > 0.0 ? used / capacity : 0.0;
  }
};

/// One cell's base station.  Pure resource ledger: admission *decisions*
/// live in the cac layer; the BS only enforces physical capacity.
class BaseStation {
 public:
  /// Throws facsp::ConfigError for non-positive capacity.
  BaseStation(BaseStationId id, HexCoord coord, Point position,
              Bandwidth capacity);

  BaseStationId id() const noexcept { return id_; }
  const HexCoord& coord() const noexcept { return coord_; }
  const Point& position() const noexcept { return position_; }
  Bandwidth capacity() const noexcept { return load_.capacity; }

  const LoadState& load() const noexcept { return load_; }
  Bandwidth used() const noexcept { return load_.used; }
  Bandwidth free() const noexcept { return load_.free(); }

  /// True when `bw` BU can physically fit right now.
  bool can_fit(Bandwidth bw) const noexcept { return bw <= load_.free() + 1e-9; }

  /// Allocate bandwidth for a connection.  Returns false (and changes
  /// nothing) when capacity would be exceeded; the caller decides whether
  /// that is a block or a drop.  `via_handoff` marks connections arriving
  /// from a neighbour cell.
  bool allocate(const Connection& conn, sim::SimTime now,
                bool via_handoff = false);

  /// Release a connection's bandwidth (normal completion or handoff-out).
  /// Precondition: the connection is currently allocated here.
  void release(ConnectionId id, sim::SimTime now);

  /// True when the connection currently holds bandwidth on this BS.
  bool holds(ConnectionId id) const noexcept;

  std::size_t active_connections() const noexcept { return held_.size(); }

  /// Time-weighted utilization over [t0, now]; start_metrics must have been
  /// called first.
  void start_metrics(sim::SimTime t0);
  double average_utilization(sim::SimTime now) const;

 private:
  struct Held {
    Bandwidth bw;
    bool real_time;
    bool via_handoff;
  };

  void touch(sim::SimTime now);

  BaseStationId id_;
  HexCoord coord_;
  Point position_;
  LoadState load_;
  std::unordered_map<ConnectionId, Held> held_;
  sim::TimeWeighted util_;
};

}  // namespace facsp::cellular
