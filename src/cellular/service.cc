#include "cellular/service.h"

#include <cmath>
#include <ostream>

#include "common/error.h"

namespace facsp::cellular {

Bandwidth service_bandwidth(ServiceClass s) noexcept {
  switch (s) {
    case ServiceClass::kText: return 1.0;
    case ServiceClass::kVoice: return 5.0;
    case ServiceClass::kVideo: return 10.0;
  }
  return 1.0;  // unreachable
}

bool is_real_time(ServiceClass s) noexcept {
  return s == ServiceClass::kVoice || s == ServiceClass::kVideo;
}

std::string_view service_name(ServiceClass s) noexcept {
  switch (s) {
    case ServiceClass::kText: return "text";
    case ServiceClass::kVoice: return "voice";
    case ServiceClass::kVideo: return "video";
  }
  return "text";  // unreachable
}

std::ostream& operator<<(std::ostream& os, ServiceClass s) {
  return os << service_name(s);
}

std::string_view priority_name(UserPriority p) noexcept {
  switch (p) {
    case UserPriority::kLow: return "low";
    case UserPriority::kNormal: return "normal";
    case UserPriority::kHigh: return "high";
  }
  return "normal";  // unreachable
}

std::ostream& operator<<(std::ostream& os, UserPriority p) {
  return os << priority_name(p);
}

void TrafficMix::validate() const {
  if (text < 0.0 || voice < 0.0 || video < 0.0)
    throw ConfigError("traffic mix: probabilities must be non-negative");
  const double sum = text + voice + video;
  if (std::fabs(sum - 1.0) > 1e-6)
    throw ConfigError("traffic mix: probabilities must sum to 1, got " +
                      std::to_string(sum));
}

double TrafficMix::probability(ServiceClass s) const noexcept {
  switch (s) {
    case ServiceClass::kText: return text;
    case ServiceClass::kVoice: return voice;
    case ServiceClass::kVideo: return video;
  }
  return 0.0;  // unreachable
}

Bandwidth TrafficMix::mean_bandwidth() const noexcept {
  return text * service_bandwidth(ServiceClass::kText) +
         voice * service_bandwidth(ServiceClass::kVoice) +
         video * service_bandwidth(ServiceClass::kVideo);
}

}  // namespace facsp::cellular
