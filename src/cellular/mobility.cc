#include "cellular/mobility.h"

#include <cmath>

#include "common/expects.h"
#include "common/math_util.h"

namespace facsp::cellular {

double MobilityConfig::heading_sigma(double speed_kmh) const noexcept {
  const double s = std::max(0.0, speed_kmh);
  return base_sigma_deg * reference_kmh / (s + reference_kmh);
}

MobilityModel::MobilityModel(MobilityConfig config, sim::RandomStream rng)
    : config_(config), rng_(rng) {}

void MobilityModel::advance(MobileState& state, sim::SimTime dt) {
  FACSP_EXPECTS(dt >= 0.0);
  const double v = kmh_to_ms(state.speed_kmh);
  const double h = deg_to_rad(state.heading_deg);
  state.position.x += v * dt * std::cos(h);
  state.position.y += v * dt * std::sin(h);

  // Scale the per-update volatility by sqrt(dt / update_interval) so that
  // using a finer event granularity does not change the diffusion rate.
  const double scale =
      config_.update_interval_s > 0.0
          ? std::sqrt(dt / config_.update_interval_s)
          : 1.0;
  const double sigma = config_.heading_sigma(state.speed_kmh) * scale;
  if (sigma > 0.0)
    state.heading_deg = wrap_angle_deg(
        state.heading_deg + rng_.normal(0.0, sigma));

  if (config_.speed_sigma_kmh > 0.0) {
    state.speed_kmh = clamp(
        state.speed_kmh + rng_.normal(0.0, config_.speed_sigma_kmh * scale),
        config_.min_speed_kmh, config_.max_speed_kmh);
  }
}

double angle_to_bs_deg(const MobileState& state, const Point& bs) noexcept {
  const double to_bs = heading_deg(state.position, bs);
  return wrap_angle_deg(state.heading_deg - to_bs);
}

DirectionPredictor::DirectionPredictor(Config config, sim::RandomStream rng)
    : config_(config), rng_(rng) {}

double DirectionPredictor::sigma_deg(double speed_kmh) const noexcept {
  const double s = std::max(0.0, speed_kmh);
  return config_.base_sigma_deg * config_.reference_kmh /
         (s + config_.reference_kmh);
}

double DirectionPredictor::predict_angle_deg(const MobileState& state,
                                             const Point& bs) {
  const double truth = angle_to_bs_deg(state, bs);
  const double sigma = sigma_deg(state.speed_kmh);
  if (sigma <= 0.0) return truth;
  return wrap_angle_deg(truth + rng_.normal(0.0, sigma));
}

}  // namespace facsp::cellular
