#include "cellular/network.h"

#include "common/error.h"

namespace facsp::cellular {

CellularNetwork::CellularNetwork(int rings, double cell_radius_m,
                                 Bandwidth capacity_bu)
    : layout_(cell_radius_m), rings_(rings) {
  if (rings < 0) throw ConfigError("network: rings must be >= 0");
  if (!(capacity_bu > 0.0))
    throw ConfigError("network: capacity must be > 0 BU");

  BaseStationId next_id = 0;
  for (const HexCoord& c : hex_disc(HexCoord{0, 0}, rings)) {
    auto bs = std::make_unique<BaseStation>(next_id++, c, layout_.center(c),
                                            capacity_bu);
    stations_map_.emplace(c, bs.get());
    stations_.push_back(std::move(bs));
  }
}

BaseStation* CellularNetwork::station_at(const HexCoord& coord) noexcept {
  const auto it = stations_map_.find(coord);
  return it == stations_map_.end() ? nullptr : it->second;
}

const BaseStation* CellularNetwork::station_at(
    const HexCoord& coord) const noexcept {
  const auto it = stations_map_.find(coord);
  return it == stations_map_.end() ? nullptr : it->second;
}

BaseStation* CellularNetwork::station_covering(const Point& p) noexcept {
  return station_at(layout_.cell_at(p));
}

const BaseStation* CellularNetwork::station_covering(
    const Point& p) const noexcept {
  return station_at(layout_.cell_at(p));
}

std::vector<BaseStation*> CellularNetwork::stations() {
  std::vector<BaseStation*> out;
  out.reserve(stations_.size());
  for (const auto& s : stations_) out.push_back(s.get());
  return out;
}

std::vector<const BaseStation*> CellularNetwork::stations() const {
  std::vector<const BaseStation*> out;
  out.reserve(stations_.size());
  for (const auto& s : stations_) out.push_back(s.get());
  return out;
}

std::vector<BaseStation*> CellularNetwork::neighbors_of(const HexCoord& coord) {
  std::vector<BaseStation*> out;
  for (const HexCoord& n : hex_neighbors(coord))
    if (BaseStation* bs = station_at(n)) out.push_back(bs);
  return out;
}

bool CellularNetwork::covers(const Point& p) const noexcept {
  return station_covering(p) != nullptr;
}

void CellularNetwork::start_metrics(sim::SimTime t0) {
  for (const auto& s : stations_) s->start_metrics(t0);
}

}  // namespace facsp::cellular
