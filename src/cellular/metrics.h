// Call-level QoS metrics: acceptance / blocking / dropping, per service
// class and overall.  One collector per simulation run.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>

#include "cellular/connection.h"
#include "cellular/service.h"
#include "sim/stats.h"

namespace facsp::cellular {

/// Aggregated counters of one simulation run.
class MetricsCollector {
 public:
  /// Record a new-call admission decision.
  void record_new_call(ServiceClass s, bool accepted);
  void record_new_call(ServiceClass s, UserPriority p, bool accepted);

  /// Record a handoff attempt for an on-going call.
  void record_handoff(ServiceClass s, bool accepted);

  /// Record the final fate of a connection that was active at some point.
  void record_completion(ServiceClass s);
  void record_drop(ServiceClass s);

  /// Accumulate another collector's counters (per-cell metrics -> network
  /// aggregate in the multi-cell engine).
  void merge(const MetricsCollector& other);

  // --- paper headline metric ---------------------------------------------
  /// Percentage of requesting (new) connections accepted; the y-axis of
  /// Figs. 7-10.  `if_empty` is returned when nothing was offered.
  double acceptance_percent(double if_empty = 100.0) const noexcept;

  // --- classic CAC metrics (extended reporting) --------------------------
  /// New-call blocking probability (CBP).
  double blocking_probability() const noexcept;
  /// Handoff dropping probability (CDP): dropped / handoff attempts.
  double dropping_probability() const noexcept;
  /// Fraction of once-active calls that completed without being dropped —
  /// the "QoS of on-going connections" the paper's priority mechanism
  /// protects.
  double completion_ratio() const noexcept;

  // --- raw counters -------------------------------------------------------
  std::uint64_t offered_new() const noexcept { return new_calls_.denominator; }
  std::uint64_t accepted_new() const noexcept { return new_calls_.numerator; }
  std::uint64_t blocked() const noexcept {
    return new_calls_.denominator - new_calls_.numerator;
  }
  std::uint64_t handoff_attempts() const noexcept {
    return handoffs_.denominator;
  }
  std::uint64_t handoff_successes() const noexcept {
    return handoffs_.numerator;
  }
  std::uint64_t dropped() const noexcept { return dropped_total_; }
  std::uint64_t completed() const noexcept { return completed_total_; }

  /// Per-service acceptance ratio of new calls.
  double acceptance_percent(ServiceClass s) const noexcept;
  /// Per-priority acceptance ratio of new calls (future-work extension).
  double acceptance_percent(UserPriority p) const noexcept;

  void print(std::ostream& os) const;

 private:
  static std::size_t idx(ServiceClass s) noexcept {
    return static_cast<std::size_t>(s);
  }

  sim::RatioCounter new_calls_;
  sim::RatioCounter handoffs_;
  std::array<sim::RatioCounter, 3> new_by_service_{};
  std::array<sim::RatioCounter, 3> new_by_priority_{};
  std::array<sim::RatioCounter, 3> handoff_by_service_{};
  std::array<std::uint64_t, 3> completed_{};
  std::array<std::uint64_t, 3> dropped_{};
  std::uint64_t completed_total_ = 0;
  std::uint64_t dropped_total_ = 0;
};

}  // namespace facsp::cellular
