#include "cellular/connection.h"

#include <ostream>

namespace facsp::cellular {

std::ostream& operator<<(std::ostream& os, RequestKind k) {
  switch (k) {
    case RequestKind::kNew: return os << "new";
    case RequestKind::kHandoff: return os << "handoff";
  }
  return os;
}

std::ostream& operator<<(std::ostream& os, ConnectionState s) {
  switch (s) {
    case ConnectionState::kPending: return os << "pending";
    case ConnectionState::kActive: return os << "active";
    case ConnectionState::kBlocked: return os << "blocked";
    case ConnectionState::kDropped: return os << "dropped";
    case ConnectionState::kCompleted: return os << "completed";
  }
  return os;
}

}  // namespace facsp::cellular
