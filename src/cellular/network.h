// Cellular network topology: a disc of hexagonal cells, each with one base
// station, plus point->cell lookup and neighbourhood queries.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cellular/basestation.h"
#include "cellular/hexgrid.h"

namespace facsp::cellular {

/// Immutable topology of base stations on a hex grid.
///
/// The canonical evaluation network is a filled disc of `rings` rings around
/// a centre cell (rings=0: single cell; rings=2: 19 cells).  All cells share
/// the same capacity (paper: 40 BU).
class CellularNetwork {
 public:
  /// Builds a disc network.  cell_radius_m is the hex circumradius (metres).
  /// Throws facsp::ConfigError on non-positive capacity/radius or rings < 0.
  CellularNetwork(int rings, double cell_radius_m, Bandwidth capacity_bu);

  const HexLayout& layout() const noexcept { return layout_; }
  int rings() const noexcept { return rings_; }
  std::size_t cell_count() const noexcept { return stations_.size(); }

  /// The central cell's base station.
  BaseStation& center() { return *stations_map_.at(HexCoord{0, 0}); }
  const BaseStation& center() const { return *stations_map_.at(HexCoord{0, 0}); }

  /// Station by hex coordinate; nullptr when outside the disc.
  BaseStation* station_at(const HexCoord& coord) noexcept;
  const BaseStation* station_at(const HexCoord& coord) const noexcept;

  /// Station whose cell contains the world point; nullptr outside the disc.
  BaseStation* station_covering(const Point& p) noexcept;
  const BaseStation* station_covering(const Point& p) const noexcept;

  /// All stations (stable order: disc enumeration).  Builds a fresh pointer
  /// vector — convenience for setup/teardown code, not for per-epoch loops.
  std::vector<BaseStation*> stations();
  std::vector<const BaseStation*> stations() const;

  /// Allocation-free indexed access (same disc-enumeration order as
  /// stations()) for loops that run every epoch — the multi-cell engine's
  /// barrier epilogue sums per-BS load across the whole grid.
  const BaseStation& station(std::size_t i) const noexcept {
    return *stations_[i];
  }

  /// In-disc neighbours of a cell (up to 6).
  std::vector<BaseStation*> neighbors_of(const HexCoord& coord);

  /// True when the point lies in some cell of the disc.
  bool covers(const Point& p) const noexcept;

  /// Start utilization metrics on every station.
  void start_metrics(sim::SimTime t0);

 private:
  HexLayout layout_;
  int rings_;
  std::vector<std::unique_ptr<BaseStation>> stations_;
  std::unordered_map<HexCoord, BaseStation*, HexCoordHash> stations_map_;
};

}  // namespace facsp::cellular
