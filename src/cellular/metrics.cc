#include "cellular/metrics.h"

#include <ostream>

namespace facsp::cellular {

void MetricsCollector::record_new_call(ServiceClass s, bool accepted) {
  record_new_call(s, UserPriority::kNormal, accepted);
}

void MetricsCollector::record_new_call(ServiceClass s, UserPriority p,
                                       bool accepted) {
  if (accepted) {
    new_calls_.hit();
    new_by_service_[idx(s)].hit();
    new_by_priority_[static_cast<std::size_t>(p)].hit();
  } else {
    new_calls_.miss();
    new_by_service_[idx(s)].miss();
    new_by_priority_[static_cast<std::size_t>(p)].miss();
  }
}

void MetricsCollector::record_handoff(ServiceClass s, bool accepted) {
  if (accepted) {
    handoffs_.hit();
    handoff_by_service_[idx(s)].hit();
  } else {
    handoffs_.miss();
    handoff_by_service_[idx(s)].miss();
  }
}

void MetricsCollector::record_completion(ServiceClass s) {
  ++completed_[idx(s)];
  ++completed_total_;
}

void MetricsCollector::record_drop(ServiceClass s) {
  ++dropped_[idx(s)];
  ++dropped_total_;
}

void MetricsCollector::merge(const MetricsCollector& other) {
  new_calls_.merge(other.new_calls_);
  handoffs_.merge(other.handoffs_);
  for (std::size_t i = 0; i < 3; ++i) {
    new_by_service_[i].merge(other.new_by_service_[i]);
    new_by_priority_[i].merge(other.new_by_priority_[i]);
    handoff_by_service_[i].merge(other.handoff_by_service_[i]);
    completed_[i] += other.completed_[i];
    dropped_[i] += other.dropped_[i];
  }
  completed_total_ += other.completed_total_;
  dropped_total_ += other.dropped_total_;
}

double MetricsCollector::acceptance_percent(double if_empty) const noexcept {
  return new_calls_.percent(if_empty);
}

double MetricsCollector::blocking_probability() const noexcept {
  return 1.0 - new_calls_.ratio(1.0);
}

double MetricsCollector::dropping_probability() const noexcept {
  return 1.0 - handoffs_.ratio(1.0);
}

double MetricsCollector::completion_ratio() const noexcept {
  const std::uint64_t finished = completed_total_ + dropped_total_;
  return finished == 0 ? 1.0
                       : static_cast<double>(completed_total_) /
                             static_cast<double>(finished);
}

double MetricsCollector::acceptance_percent(ServiceClass s) const noexcept {
  return new_by_service_[idx(s)].percent(100.0);
}

double MetricsCollector::acceptance_percent(UserPriority p) const noexcept {
  return new_by_priority_[static_cast<std::size_t>(p)].percent(100.0);
}

void MetricsCollector::print(std::ostream& os) const {
  os << "offered=" << offered_new() << " accepted=" << accepted_new()
     << " (" << acceptance_percent() << "%)"
     << " blocked=" << blocked() << " handoffs=" << handoff_attempts()
     << " dropped=" << dropped() << " completed=" << completed() << '\n';
  for (ServiceClass s : kAllServices) {
    os << "  " << service_name(s) << ": accept%="
       << acceptance_percent(s) << '\n';
  }
}

}  // namespace facsp::cellular
