#include "cellular/traffic.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/expects.h"
#include "common/math_util.h"

namespace facsp::cellular {

void TrafficConfig::validate() const {
  mix.validate();
  arrival.validate();
  mix_schedule.validate();
  if (arrival_window_s < 0.0)
    throw ConfigError("traffic: arrival window must be >= 0");
  if (mean_holding_s <= 0.0)
    throw ConfigError("traffic: mean holding time must be > 0");
  if (min_speed_kmh < 0.0 || max_speed_kmh < min_speed_kmh)
    throw ConfigError("traffic: speed range invalid");
  if (fixed_speed_kmh && *fixed_speed_kmh < 0.0)
    throw ConfigError("traffic: fixed speed must be >= 0");
  if (fixed_angle_deg &&
      (*fixed_angle_deg < -180.0 || *fixed_angle_deg > 180.0))
    throw ConfigError("traffic: fixed angle must be in [-180, 180]");
  if (priority_low < 0.0 || priority_normal < 0.0 || priority_high < 0.0 ||
      std::fabs(priority_low + priority_normal + priority_high - 1.0) > 1e-6)
    throw ConfigError(
        "traffic: priority shares must be non-negative and sum to 1");
}

TrafficGenerator::TrafficGenerator(TrafficConfig config,
                                   const HexLayout& layout,
                                   HexCoord spawn_cell, Point bs_position,
                                   sim::RandomStream rng,
                                   ConnectionId first_id)
    : config_(std::move(config)),
      layout_(layout),
      spawn_cell_(spawn_cell),
      bs_position_(bs_position),
      rng_(rng),
      next_id_(first_id) {
  // Validate before constructing the distributions: discrete_distribution
  // requires non-negative weights, which only validate() guarantees.
  config_.validate();
  arrival_ = workload::make_arrival_process(config_.arrival);
  priority_dist_ = std::discrete_distribution<std::size_t>(
      {config_.priority_low, config_.priority_normal, config_.priority_high});
  rebuild_service_dist(config_.mix);
}

void TrafficGenerator::rebuild_service_dist(const TrafficMix& mix) {
  service_dist_ = std::discrete_distribution<std::size_t>(
      {mix.text, mix.voice, mix.video});
}

CallRequest TrafficGenerator::make_request(sim::SimTime arrival,
                                           sim::SimTime t0) {
  CallRequest req;
  req.id = next_id_++;
  req.arrival_time = arrival;

  if (!config_.mix_schedule.empty()) {
    const int seg = config_.mix_schedule.segment_at(arrival - t0);
    if (seg != active_mix_segment_) {
      rebuild_service_dist(
          seg < 0 ? config_.mix
                  : config_.mix_schedule.segments()
                        [static_cast<std::size_t>(seg)].mix);
      active_mix_segment_ = seg;
    }
  }
  req.service = kAllServices[service_dist_(rng_.engine())];
  req.bandwidth = service_bandwidth(req.service);
  req.priority = kAllPriorities[priority_dist_(rng_.engine())];
  req.holding_time = rng_.exponential(config_.mean_holding_s);

  req.mobile.position = layout_.random_point_in_cell(
      spawn_cell_, [this] { return rng_.uniform(0.0, 1.0); });
  req.mobile.speed_kmh =
      config_.fixed_speed_kmh
          ? *config_.fixed_speed_kmh
          : rng_.uniform(config_.min_speed_kmh, config_.max_speed_kmh);

  if (config_.fixed_angle_deg) {
    // Heading such that the angle to the BS has the requested magnitude;
    // the sign (left/right of the BS bearing) is random, matching the
    // paper's symmetric L/R rule tables.
    const double bearing = heading_deg(req.mobile.position, bs_position_);
    const double sign = rng_.bernoulli(0.5) ? 1.0 : -1.0;
    req.mobile.heading_deg =
        wrap_angle_deg(bearing + sign * *config_.fixed_angle_deg);
  } else {
    req.mobile.heading_deg = rng_.uniform(-180.0, 180.0);
  }
  return req;
}

void TrafficGenerator::generate_into(int n, sim::SimTime t0,
                                     std::vector<CallRequest>& out) {
  FACSP_EXPECTS(n >= 0);
  arrival_->generate(n, t0, config_.arrival_window_s, rng_, arrival_scratch_);

  // Arrivals are sorted, so mix-schedule segments advance monotonically
  // within a batch; reset the cache so each batch starts from the base mix.
  if (!config_.mix_schedule.empty()) {
    rebuild_service_dist(config_.mix);
    active_mix_segment_ = -1;
  }

  out.clear();
  out.reserve(static_cast<std::size_t>(n));
  for (sim::SimTime arrival : arrival_scratch_)
    out.push_back(make_request(arrival, t0));
}

std::vector<CallRequest> TrafficGenerator::generate(int n, sim::SimTime t0) {
  std::vector<CallRequest> out;
  generate_into(n, t0, out);
  return out;
}

}  // namespace facsp::cellular
