#include "cellular/hexgrid.h"

#include <cmath>
#include <ostream>

#include "common/error.h"
#include "common/expects.h"
#include "common/math_util.h"

namespace facsp::cellular {

double distance(const Point& a, const Point& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double heading_deg(const Point& from, const Point& to) noexcept {
  return rad_to_deg(std::atan2(to.y - from.y, to.x - from.x));
}

int hex_distance(const HexCoord& a, const HexCoord& b) noexcept {
  const int dq = a.q - b.q;
  const int dr = a.r - b.r;
  const int ds = a.s() - b.s();
  return (std::abs(dq) + std::abs(dr) + std::abs(ds)) / 2;
}

namespace {
// Fixed direction order: E, NE, NW, W, SW, SE (axial deltas).
constexpr HexCoord kDirections[6] = {{1, 0}, {1, -1}, {0, -1},
                                     {-1, 0}, {-1, 1}, {0, 1}};
}  // namespace

std::vector<HexCoord> hex_neighbors(const HexCoord& h) {
  std::vector<HexCoord> out;
  out.reserve(6);
  for (const auto& d : kDirections)
    out.push_back(HexCoord{h.q + d.q, h.r + d.r});
  return out;
}

std::vector<HexCoord> hex_ring(const HexCoord& center, int radius) {
  FACSP_EXPECTS(radius >= 0);
  if (radius == 0) return {center};
  std::vector<HexCoord> out;
  out.reserve(static_cast<std::size_t>(6 * radius));
  // Start at the cell `radius` steps in direction SW (index 4), then walk
  // around the ring, `radius` steps per side.
  HexCoord cur{center.q + kDirections[4].q * radius,
               center.r + kDirections[4].r * radius};
  for (int side = 0; side < 6; ++side) {
    for (int step = 0; step < radius; ++step) {
      out.push_back(cur);
      cur = HexCoord{cur.q + kDirections[side].q, cur.r + kDirections[side].r};
    }
  }
  return out;
}

std::vector<HexCoord> hex_disc(const HexCoord& center, int radius) {
  FACSP_EXPECTS(radius >= 0);
  std::vector<HexCoord> out;
  out.reserve(static_cast<std::size_t>(1 + 3 * radius * (radius + 1)));
  for (int q = -radius; q <= radius; ++q) {
    const int r_lo = std::max(-radius, -q - radius);
    const int r_hi = std::min(radius, -q + radius);
    for (int r = r_lo; r <= r_hi; ++r)
      out.push_back(HexCoord{center.q + q, center.r + r});
  }
  return out;
}

HexLayout::HexLayout(double cell_radius) : radius_(cell_radius) {
  if (!(cell_radius > 0.0) || !std::isfinite(cell_radius))
    throw ConfigError("hex layout: cell radius must be finite and > 0");
}

Point HexLayout::center(const HexCoord& h) const noexcept {
  const double sqrt3 = std::sqrt(3.0);
  return Point{radius_ * sqrt3 * (h.q + h.r / 2.0), radius_ * 1.5 * h.r};
}

HexCoord HexLayout::cell_at(const Point& p) const noexcept {
  const double sqrt3 = std::sqrt(3.0);
  // Inverse of center(): fractional axial coordinates.
  const double qf = (sqrt3 / 3.0 * p.x - 1.0 / 3.0 * p.y) / radius_;
  const double rf = (2.0 / 3.0 * p.y) / radius_;
  // Cube rounding.
  const double sf = -qf - rf;
  double q = std::round(qf), r = std::round(rf), s = std::round(sf);
  const double dq = std::fabs(q - qf);
  const double dr = std::fabs(r - rf);
  const double ds = std::fabs(s - sf);
  if (dq > dr && dq > ds) {
    q = -r - s;
  } else if (dr > ds) {
    r = -q - s;
  }
  return HexCoord{static_cast<int>(q), static_cast<int>(r)};
}

Point HexLayout::random_point_in_cell(
    const HexCoord& h, const std::function<double()>& uniform01) const {
  FACSP_EXPECTS(static_cast<bool>(uniform01));
  const Point c = center(h);
  const double sqrt3 = std::sqrt(3.0);
  const double half_w = radius_ * sqrt3 / 2.0;  // inradius (horizontal half-extent)
  // Rejection sampling over the bounding box; hex fills ~75% of it, so the
  // expected number of iterations is < 1.4.
  for (int tries = 0; tries < 1000; ++tries) {
    const Point p{c.x + (2.0 * uniform01() - 1.0) * half_w,
                  c.y + (2.0 * uniform01() - 1.0) * radius_};
    if (cell_at(p) == h) return p;
  }
  return c;  // pathological RNG (e.g. constant); fall back to the centre
}

std::ostream& operator<<(std::ostream& os, const HexCoord& h) {
  return os << '(' << h.q << ',' << h.r << ')';
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ',' << p.y << ')';
}

}  // namespace facsp::cellular
