// Analytic multi-rate loss models: Erlang-B and the Kaufman-Roberts
// recursion.
//
// These give the *exact* stationary blocking probabilities of a
// complete-sharing link offered independent Poisson traffic classes —
// the textbook ground truth the simulator must approach when mobility is
// off and the arrival process is (quasi-)stationary.  Used by the
// validation test suite and bench_validation to cross-check the whole
// simulation pipeline against teletraffic theory.
#pragma once

#include <vector>

#include "cellular/service.h"

namespace facsp::cellular {

/// Erlang-B blocking probability: one class, `servers` identical servers,
/// offered load `erlangs` (= arrival rate x mean holding time).
/// Uses the numerically stable iterative form.
double erlang_b(double erlangs, int servers);

/// One traffic class of a multi-rate loss system.
struct TrafficClass {
  double offered_erlangs = 0.0;  ///< lambda * mean holding time
  int bandwidth_units = 1;       ///< integer BU per call (paper: 1/5/10)
};

/// Kaufman-Roberts solver for a complete-sharing link of `capacity_bu`
/// integer bandwidth units shared by independent Poisson classes.
class KaufmanRoberts {
 public:
  /// Throws facsp::ConfigError on non-positive capacity, non-positive
  /// class sizes, or negative loads.
  KaufmanRoberts(int capacity_bu, std::vector<TrafficClass> classes);

  /// Blocking probability of class k (probability an arriving class-k
  /// call finds fewer than b_k free units).
  double blocking(std::size_t k) const;

  /// Offered-call-weighted mean blocking across classes.
  double mean_blocking() const;

  /// Mean acceptance percentage (100 * (1 - mean_blocking())).
  double acceptance_percent() const;

  /// Stationary probability that exactly j units are busy.
  double occupancy_probability(int j) const;

  /// Expected number of busy units.
  double mean_occupancy() const;

  int capacity() const noexcept { return capacity_; }
  const std::vector<TrafficClass>& classes() const noexcept {
    return classes_;
  }

  /// Convenience: build the paper's scenario classes from a traffic mix,
  /// a per-cell arrival rate (calls/s) and a mean holding time.
  static KaufmanRoberts for_paper_mix(int capacity_bu, const TrafficMix& mix,
                                      double arrival_rate_per_s,
                                      double mean_holding_s);

 private:
  int capacity_;
  std::vector<TrafficClass> classes_;
  std::vector<double> q_;  ///< normalised occupancy distribution
};

}  // namespace facsp::cellular
