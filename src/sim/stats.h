// Output analysis: streaming summary statistics, confidence intervals,
// histograms and time-weighted averages for simulation metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.h"  // SimTime

namespace facsp::sim {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm —
/// numerically stable for long runs).
class SummaryStats {
 public:
  void add(double x);
  void merge(const SummaryStats& other);

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept;
  /// Unbiased sample variance; 0 for fewer than 2 observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than 2 observations.
  double std_error() const noexcept;
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return mean() * static_cast<double>(n_); }

  /// Half-width of the confidence interval around the mean using a
  /// Student-t quantile (two-sided; level in {0.90, 0.95, 0.99} supported,
  /// other levels fall back to the normal approximation).
  double ci_half_width(double level = 0.95) const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t quantile t_{(1+level)/2, dof} (normal approximation
/// above 120 dof; tabulated below).  Exposed for tests.
double student_t_quantile(double level, std::uint64_t dof);

/// Fixed-width histogram over [lo, hi); out-of-range samples land in
/// saturated edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bin_count() const noexcept { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_weight(std::size_t i) const;
  double total_weight() const noexcept { return total_; }

  /// Approximate quantile (q in [0,1]) by linear interpolation within the
  /// containing bin.  Returns lo for an empty histogram.
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal (e.g. occupied
/// bandwidth): integrates value*dt between updates.
class TimeWeighted {
 public:
  /// Begin observation at time t0 with the given initial value.
  void start(SimTime t0, double value);

  /// Record that the signal changed to `value` at time t (>= last update).
  void update(SimTime t, double value);

  /// Time-average over [t0, t_end]; requires t_end >= last update time.
  double average(SimTime t_end) const;

  double current() const noexcept { return value_; }
  bool started() const noexcept { return started_; }

 private:
  bool started_ = false;
  SimTime t0_ = 0.0;
  SimTime last_t_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
};

/// A ratio counter (accepted / offered, dropped / handoffs, ...).
struct RatioCounter {
  std::uint64_t numerator = 0;
  std::uint64_t denominator = 0;

  void hit() noexcept { ++numerator; ++denominator; }
  void miss() noexcept { ++denominator; }

  /// Accumulate another counter (per-shard metrics -> aggregate).
  void merge(const RatioCounter& other) noexcept {
    numerator += other.numerator;
    denominator += other.denominator;
  }

  /// numerator/denominator, or `if_empty` when nothing was counted.
  double ratio(double if_empty = 0.0) const noexcept {
    return denominator == 0
               ? if_empty
               : static_cast<double>(numerator) /
                     static_cast<double>(denominator);
  }
  double percent(double if_empty = 0.0) const noexcept {
    return 100.0 * ratio(if_empty / 100.0);
  }
};

}  // namespace facsp::sim
