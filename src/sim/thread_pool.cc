#include "sim/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>

#include "common/expects.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace facsp::sim {

namespace {

/// Busy time per executed task: count = tasks run, sum = total busy ns.
obs::Histogram* task_ns_histogram() {
  if (!obs::metrics_enabled()) return nullptr;
  static obs::Histogram& h =
      obs::Registry::instance().histogram("pool.task_ns");
  return &h;
}

}  // namespace

unsigned ThreadPool::resolve_threads(int requested) noexcept {
  if (requested > 0) return static_cast<unsigned>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
    : size_(threads == 0 ? resolve_threads(0) : threads) {
  if (size_ < 2) return;  // inline mode: no workers, no locking
  workers_.reserve(size_);
  for (unsigned i = 0; i < size_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) return;
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned index) {
  // Stack-formatted name: no allocation on this path (and the call is a
  // branch-only no-op while tracing is off).
  char name[32];
  std::snprintf(name, sizeof name, "pool-worker-%u", index);
  obs::Tracer::set_thread_name(name);

  std::unique_lock lock(mu_);
  for (;;) {
    task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and queue drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lock.unlock();
    {
      obs::ScopedSpan span("pool", "task", obs::Tracer::kNoArg,
                           task_ns_histogram());
      task();
    }
    lock.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_.notify_all();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  FACSP_EXPECTS(static_cast<bool>(task));
  if (workers_.empty()) {  // inline mode
    task();
    return;
  }
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t chunk) {
  FACSP_EXPECTS(static_cast<bool>(body));
  FACSP_EXPECTS(chunk >= 1);
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Per-call scheduling state, shared between the queued helper tasks and
  // this (participating) caller.  Chunks are handed out by fetch_add — a
  // one-counter work queue: whichever thread is free next grabs the next
  // chunk, so uneven cell costs balance automatically.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::atomic<int> pending{0};  ///< queued helper tasks still running
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();

  auto run_chunks = [state, count, chunk, &body] {
    for (;;) {
      if (state->failed.load(std::memory_order_relaxed)) return;
      const std::size_t begin =
          state->next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard lock(state->mu);
        if (!state->error) state->error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The caller is one of the `size_` executors, so at most size_ - 1 helper
  // tasks are queued — exactly `size_` threads run the body concurrently,
  // never size_ + 1.  Nor are more helpers woken than there are chunks
  // beyond the caller's first grab: a wide pool over a short loop (the
  // event-driven multi-cell engine draining 3 active shards of 1000 on 8
  // workers) stays a 3-thread affair instead of a spawn-and-find-nothing
  // stampede.  `body` stays alive because this call blocks below until
  // every helper reported completion.
  const std::size_t chunks = (count + chunk - 1) / chunk;
  const int helpers = static_cast<int>(
      std::min<std::size_t>(size_ - 1, chunks - 1));
  state->pending.store(helpers, std::memory_order_relaxed);
  for (int i = 0; i < helpers; ++i) {
    submit([state, run_chunks] {
      run_chunks();
      if (state->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(state->mu);
        state->done.notify_all();
      }
    });
  }
  run_chunks();  // the caller pitches in instead of just waiting

  std::unique_lock lock(state->mu);
  state->done.wait(lock, [&] {
    return state->pending.load(std::memory_order_acquire) == 0;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace facsp::sim
