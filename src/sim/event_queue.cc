#include "sim/event_queue.h"

#include <cmath>

#include "common/expects.h"

namespace facsp::sim {

EventHandle EventQueue::schedule(SimTime when, Action action) {
  FACSP_EXPECTS_MSG(std::isfinite(when), "event time must be finite, got "
                                             << when);
  FACSP_EXPECTS(static_cast<bool>(action));
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  actions_.emplace(id, std::move(action));
  ++live_;
  return EventHandle{id};
}

bool EventQueue::cancel(EventHandle h) {
  const auto it = actions_.find(h.id);
  if (it == actions_.end()) return false;
  actions_.erase(it);  // heap entry becomes a tombstone, skimmed lazily
  --live_;
  return true;
}

void EventQueue::skim() const {
  // heap_ is mutable: dropping tombstones does not change the observable
  // queue contents.
  while (!heap_.empty() && !actions_.contains(heap_.top().id)) heap_.pop();
}

SimTime EventQueue::next_time() const {
  FACSP_EXPECTS_MSG(!empty(), "next_time() on an empty event queue");
  skim();
  return heap_.top().when;
}

SimTime EventQueue::run_next() {
  FACSP_EXPECTS_MSG(!empty(), "run_next() on an empty event queue");
  skim();
  const Entry e = heap_.top();
  heap_.pop();
  auto it = actions_.find(e.id);
  FACSP_ENSURES(it != actions_.end());
  Action action = std::move(it->second);
  actions_.erase(it);
  --live_;
  action();
  return e.when;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  actions_.clear();
  live_ = 0;
}

}  // namespace facsp::sim
