#include "sim/rng.h"

#include <vector>

#include "common/expects.h"

namespace facsp::sim {

double RandomStream::uniform(double lo, double hi) {
  FACSP_EXPECTS(lo <= hi);
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t RandomStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  FACSP_EXPECTS(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double RandomStream::exponential(double mean) {
  FACSP_EXPECTS(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double RandomStream::normal(double mean, double stddev) {
  FACSP_EXPECTS(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool RandomStream::bernoulli(double p) {
  FACSP_EXPECTS(p >= 0.0 && p <= 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t RandomStream::discrete(const std::vector<double>& weights) {
  FACSP_EXPECTS(!weights.empty());
  std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
  return d(engine_);
}

int RandomStream::poisson(double mean) {
  FACSP_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  return std::poisson_distribution<int>(mean)(engine_);
}

std::uint64_t hash_seed(std::uint64_t seed, std::string_view name,
                        std::uint64_t index) noexcept {
  // FNV-1a over the seed bytes, the name, and the index bytes.
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(seed, 8);
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  mix(index, 8);
  // Avoid the degenerate all-zero seed for downstream engines.
  return h == 0 ? 0x9e3779b97f4a7c15ull : h;
}

RandomStream RngFactory::stream(std::string_view name) const {
  return RandomStream(hash_seed(master_seed_, name));
}

RandomStream RngFactory::stream(std::string_view name,
                                std::uint64_t index) const {
  return RandomStream(hash_seed(master_seed_, name, index + 1));
}

}  // namespace facsp::sim
