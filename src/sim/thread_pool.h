// Small fixed-size worker pool for embarrassingly parallel simulation work.
//
// The pool is a throughput device only: callers must not let scheduling
// order affect results.  The intended pattern (see core::ParallelSweepRunner)
// is "each index writes its own pre-allocated slot, reduce serially
// afterwards", which keeps results bit-identical for any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace facsp::sim {

/// Fixed pool of worker threads with a shared FIFO task queue and a chunked
/// dynamic parallel-for on top.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).  A pool of size 1 spawns no threads at all — every task
  /// runs inline on the calling thread, so single-threaded environments pay
  /// nothing and never touch synchronisation.
  explicit ThreadPool(unsigned threads = 0);

  /// Joins all workers; pending tasks are still executed before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count the pool resolved to (>= 1).
  unsigned size() const noexcept { return size_; }

  /// Resolve a user-facing thread knob: 0 -> hardware concurrency, else the
  /// requested count (clamped to >= 1).
  static unsigned resolve_threads(int requested) noexcept;

  /// Enqueue one task.  Tasks may not throw; wrap anything fallible and
  /// capture the error yourself (parallel_for does exactly that).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run body(i) for every i in [0, count).  Indices are handed out
  /// dynamically in chunks of `chunk` (grab-next scheduling — cheap work
  /// stealing from a shared counter), the calling thread participates, and
  /// the call blocks until all indices completed.  The first exception
  /// thrown by `body` is rethrown here after the loop drains; remaining
  /// chunks are abandoned.
  ///
  /// Not reentrant: do not call from inside a task running on this pool.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                    std::size_t chunk = 1);

 private:
  void worker_loop(unsigned index);

  unsigned size_ = 1;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;  ///< tasks currently executing
  bool stop_ = false;
};

}  // namespace facsp::sim
