#include "sim/simulator.h"

#include "common/expects.h"

namespace facsp::sim {

EventHandle Simulator::schedule_at(SimTime when, EventQueue::Action action) {
  FACSP_EXPECTS_MSG(when >= now_, "schedule_at(" << when
                                                 << ") is in the past (now="
                                                 << now_ << ")");
  return queue_.schedule(when, std::move(action));
}

EventHandle Simulator::schedule_in(SimTime delay, EventQueue::Action action) {
  FACSP_EXPECTS_MSG(delay >= 0.0, "negative delay " << delay);
  return queue_.schedule(now_ + delay, std::move(action));
}

std::uint64_t Simulator::run() {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stop_requested_) {
    now_ = queue_.next_time();  // clock advances before the action runs
    last_event_ = now_;
    queue_.run_next();
    ++fired_;
    ++n;
  }
  return n;
}

std::uint64_t Simulator::run_until(SimTime horizon) {
  FACSP_EXPECTS(horizon >= now_);
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stop_requested_ &&
         queue_.next_time() <= horizon) {
    now_ = queue_.next_time();
    last_event_ = now_;
    queue_.run_next();
    ++fired_;
    ++n;
  }
  if (!stop_requested_ && now_ < horizon) now_ = horizon;
  return n;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  last_event_ = now_;
  queue_.run_next();
  ++fired_;
  return true;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0.0;
  last_event_ = 0.0;
  stop_requested_ = false;
}

}  // namespace facsp::sim
