#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "common/expects.h"
#include "common/math_util.h"

namespace facsp::sim {

void SummaryStats::add(double x) {
  FACSP_EXPECTS(std::isfinite(x));
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void SummaryStats::merge(const SummaryStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double SummaryStats::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double SummaryStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double SummaryStats::stddev() const noexcept { return std::sqrt(variance()); }

double SummaryStats::std_error() const noexcept {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double SummaryStats::min() const noexcept { return n_ == 0 ? 0.0 : min_; }
double SummaryStats::max() const noexcept { return n_ == 0 ? 0.0 : max_; }

double SummaryStats::ci_half_width(double level) const {
  if (n_ < 2) return 0.0;
  return student_t_quantile(level, n_ - 1) * std_error();
}

double student_t_quantile(double level, std::uint64_t dof) {
  FACSP_EXPECTS(level > 0.0 && level < 1.0);
  FACSP_EXPECTS(dof >= 1);
  // Tables for the common two-sided levels; linear interpolation on 1/dof
  // between tabulated dof is accurate to ~1e-3, ample for CI reporting.
  struct Row {
    std::uint64_t dof;
    double t90, t95, t99;
  };
  static constexpr Row kTable[] = {
      {1, 6.3138, 12.7062, 63.6567}, {2, 2.9200, 4.3027, 9.9248},
      {3, 2.3534, 3.1824, 5.8409},   {4, 2.1318, 2.7764, 4.6041},
      {5, 2.0150, 2.5706, 4.0321},   {6, 1.9432, 2.4469, 3.7074},
      {7, 1.8946, 2.3646, 3.4995},   {8, 1.8595, 2.3060, 3.3554},
      {9, 1.8331, 2.2622, 3.2498},   {10, 1.8125, 2.2281, 3.1693},
      {12, 1.7823, 2.1788, 3.0545},  {15, 1.7531, 2.1314, 2.9467},
      {20, 1.7247, 2.0860, 2.8453},  {25, 1.7081, 2.0595, 2.7874},
      {30, 1.6973, 2.0423, 2.7500},  {40, 1.6839, 2.0211, 2.7045},
      {60, 1.6706, 2.0003, 2.6603},  {120, 1.6577, 1.9799, 2.6174},
  };
  static constexpr double kZ90 = 1.6449, kZ95 = 1.9600, kZ99 = 2.5758;

  auto pick = [&](const Row& r) {
    if (approx_equal(level, 0.90, 1e-6)) return r.t90;
    if (approx_equal(level, 0.95, 1e-6)) return r.t95;
    if (approx_equal(level, 0.99, 1e-6)) return r.t99;
    return -1.0;
  };
  auto pick_z = [&]() {
    if (approx_equal(level, 0.90, 1e-6)) return kZ90;
    if (approx_equal(level, 0.95, 1e-6)) return kZ95;
    if (approx_equal(level, 0.99, 1e-6)) return kZ99;
    // Unsupported level: normal approximation via Acklam-style inverse
    // would be overkill here; use the closest supported level.
    return kZ95;
  };

  if (dof > 120) return pick_z();
  const Row* lo = &kTable[0];
  const Row* hi = &kTable[0];
  for (const Row& r : kTable) {
    if (r.dof <= dof) lo = &r;
    if (r.dof >= dof) {
      hi = &r;
      break;
    }
    hi = &r;
  }
  const double tlo = pick(*lo), thi = pick(*hi);
  if (tlo < 0.0) return pick_z();  // unsupported level
  if (lo->dof == hi->dof) return tlo;
  // Interpolate on 1/dof (t varies nearly linearly in 1/dof).
  const double x = 1.0 / static_cast<double>(dof);
  const double xlo = 1.0 / static_cast<double>(lo->dof);
  const double xhi = 1.0 / static_cast<double>(hi->dof);
  const double t = (x - xhi) / (xlo - xhi);
  return lerp(thi, tlo, t);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  FACSP_EXPECTS(hi > lo);
  FACSP_EXPECTS(bins >= 1);
}

void Histogram::add(double x, double weight) {
  FACSP_EXPECTS(weight >= 0.0);
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  FACSP_EXPECTS(i < counts_.size());
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::bin_hi(std::size_t i) const {
  FACSP_EXPECTS(i < counts_.size());
  return lo_ + static_cast<double>(i + 1) * width_;
}

double Histogram::bin_weight(std::size_t i) const {
  FACSP_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::quantile(double q) const {
  FACSP_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ <= 0.0) return lo_;
  const double target = q * total_;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (acc + counts_[i] >= target) {
      const double within =
          counts_[i] > 0.0 ? (target - acc) / counts_[i] : 0.0;
      return bin_lo(i) + within * width_;
    }
    acc += counts_[i];
  }
  return hi_;
}

void TimeWeighted::start(SimTime t0, double value) {
  started_ = true;
  t0_ = last_t_ = t0;
  value_ = value;
  integral_ = 0.0;
}

void TimeWeighted::update(SimTime t, double value) {
  FACSP_EXPECTS_MSG(started_, "TimeWeighted::update before start");
  FACSP_EXPECTS_MSG(t >= last_t_, "time went backwards: " << t << " < "
                                                          << last_t_);
  integral_ += value_ * (t - last_t_);
  last_t_ = t;
  value_ = value;
}

double TimeWeighted::average(SimTime t_end) const {
  FACSP_EXPECTS(started_);
  FACSP_EXPECTS(t_end >= last_t_);
  const double span = t_end - t0_;
  if (span <= 0.0) return value_;
  const double total = integral_ + value_ * (t_end - last_t_);
  return total / span;
}

}  // namespace facsp::sim
