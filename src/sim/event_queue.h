// Pending-event set for the discrete-event simulator.
//
// A stable priority queue ordered by (time, sequence): events scheduled at
// the same instant fire in scheduling order, which keeps runs deterministic.
// Cancellation is supported via handles (lazy deletion).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace facsp::sim {

/// Simulation time in seconds.
using SimTime = double;

/// Opaque handle identifying a scheduled event; used to cancel it.
struct EventHandle {
  std::uint64_t id = 0;
  friend bool operator==(const EventHandle&, const EventHandle&) = default;
};

/// Min-heap of timestamped callbacks with stable FIFO order within a
/// timestamp and cancellation via lazy deletion.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `when`.  Returns a handle that can
  /// cancel the event as long as it has not fired.  Throws
  /// facsp::ContractViolation for non-finite times.
  EventHandle schedule(SimTime when, Action action);

  /// Cancel a scheduled event.  Returns false if the event already fired,
  /// was already cancelled, or the handle is unknown.
  bool cancel(EventHandle h);

  /// True when no live events remain.
  bool empty() const noexcept { return live_ == 0; }

  /// Number of live (non-cancelled, unfired) events.
  std::size_t size() const noexcept { return live_; }

  /// Time of the earliest live event.  Precondition: !empty().
  SimTime next_time() const;

  /// Pop and run the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  SimTime run_next();

  /// Drop all pending events.
  void clear();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Pop cancelled entries off the heap top.
  void skim() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, Action> actions_;  // live events only
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace facsp::sim
