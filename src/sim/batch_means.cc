#include "sim/batch_means.h"

#include "common/error.h"

namespace facsp::sim {

BatchMeans::BatchMeans(std::size_t batch_size) : batch_size_(batch_size) {
  if (batch_size == 0)
    throw ConfigError("batch means: batch size must be >= 1");
}

void BatchMeans::add(double x) {
  pending_sum_ += x;
  if (++pending_n_ == batch_size_) {
    batches_.add(pending_sum_ / static_cast<double>(batch_size_));
    pending_n_ = 0;
    pending_sum_ = 0.0;
  }
}

}  // namespace facsp::sim
