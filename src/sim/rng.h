// Deterministic random number generation for simulations.
//
// Every stochastic component draws from its own named stream derived from a
// master seed, so results are reproducible and adding a new consumer does not
// perturb the draws seen by existing ones (the classic "common random
// numbers" discipline for fair baseline comparisons).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

namespace facsp::sim {

/// A single random stream (thin wrapper over a 64-bit Mersenne engine with
/// the distribution helpers the cellular model needs).
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal with the given mean and standard deviation (>= 0).
  double normal(double mean, double stddev);

  /// Bernoulli: true with probability p in [0, 1].
  bool bernoulli(double p);

  /// Index drawn from a discrete distribution with the given (non-negative,
  /// not all zero) weights.
  std::size_t discrete(const std::vector<double>& weights);

  /// Poisson with the given mean (>= 0).
  int poisson(double mean);

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives independent named streams from one master seed.
///
/// stream("traffic") always returns a stream seeded by
/// hash(master_seed, "traffic"); identical names yield identically seeded
/// (but distinct) stream objects.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t master_seed) : master_seed_(master_seed) {}

  /// New independently seeded stream for the given component name.
  RandomStream stream(std::string_view name) const;

  /// New stream for a (name, index) pair, e.g. per-replication streams.
  RandomStream stream(std::string_view name, std::uint64_t index) const;

  std::uint64_t master_seed() const noexcept { return master_seed_; }

 private:
  std::uint64_t master_seed_;
};

/// Stable 64-bit FNV-1a hash used for stream derivation (exposed for tests).
std::uint64_t hash_seed(std::uint64_t seed, std::string_view name,
                        std::uint64_t index = 0) noexcept;

}  // namespace facsp::sim
