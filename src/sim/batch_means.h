// Batch-means output analysis for autocorrelated streams.
//
// Within one simulation run, successive observations (e.g. per-decision
// scores, per-interval occupancy) are correlated, so the plain SummaryStats
// CI is too narrow.  Batch means groups consecutive observations into
// fixed-size batches; the batch averages are approximately independent and
// their Student-t interval is honest.
#pragma once

#include <cstddef>

#include "sim/stats.h"

namespace facsp::sim {

/// Streaming batch-means accumulator.
class BatchMeans {
 public:
  /// batch_size: observations per batch (>= 1).  Throws
  /// facsp::ConfigError on 0.
  explicit BatchMeans(std::size_t batch_size);

  void add(double x);

  std::size_t batch_size() const noexcept { return batch_size_; }
  /// Number of *completed* batches.
  std::size_t batch_count() const noexcept { return batches_.count(); }
  /// Observations in the current (incomplete) batch.
  std::size_t pending() const noexcept { return pending_n_; }

  /// Mean over completed batches (unbiased for the stream mean).
  double mean() const noexcept { return batches_.mean(); }
  /// CI half-width over batch means; 0 with fewer than 2 batches.
  double ci_half_width(double level = 0.95) const {
    return batches_.ci_half_width(level);
  }

  /// The underlying per-batch statistics.
  const SummaryStats& batch_stats() const noexcept { return batches_; }

 private:
  std::size_t batch_size_;
  std::size_t pending_n_ = 0;
  double pending_sum_ = 0.0;
  SummaryStats batches_;
};

}  // namespace facsp::sim
