// Discrete-event simulator: a clock plus the pending-event set, with the
// run-loop controls every experiment in this repository uses.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.h"

namespace facsp::sim {

/// Sequential discrete-event simulator.
///
/// Usage:
///   Simulator sim;
///   sim.schedule_in(1.0, [&]{ ... sim.schedule_in(2.0, ...); });
///   sim.run();                     // until no events remain
///   sim.run_until(3600.0);         // or until a horizon
class Simulator {
 public:
  /// Current simulation time (seconds since run start).
  SimTime now() const noexcept { return now_; }

  /// Schedule at an absolute time >= now().  Scheduling in the past throws.
  EventHandle schedule_at(SimTime when, EventQueue::Action action);

  /// Schedule `delay` seconds from now (delay >= 0).
  EventHandle schedule_in(SimTime delay, EventQueue::Action action);

  /// Cancel a pending event; false if it already fired or was cancelled.
  bool cancel(EventHandle h) { return queue_.cancel(h); }

  /// Run until the event queue drains.  Returns the number of events fired.
  std::uint64_t run();

  /// Run events with timestamp <= horizon; the clock is left at
  /// min(horizon, last event time).  Returns the number of events fired.
  std::uint64_t run_until(SimTime horizon);

  /// Fire exactly one event if any remains.  Returns true if one fired.
  bool step();

  /// Request that the current run() stops after the in-flight event returns.
  void stop() noexcept { stop_requested_ = true; }

  bool has_pending() const noexcept { return !queue_.empty(); }
  std::size_t pending_count() const noexcept { return queue_.size(); }

  /// Timestamp of the earliest pending event, +infinity when none remain.
  /// Event-driven drivers (core/multicell.h) use this to skip quanta that
  /// provably contain no work.
  SimTime next_event_time() const {
    return queue_.empty() ? std::numeric_limits<SimTime>::infinity()
                          : queue_.next_time();
  }

  /// Total events fired since construction.
  std::uint64_t events_fired() const noexcept { return fired_; }

  /// Timestamp of the most recently fired event (0 if none fired yet).
  /// Unlike now(), this does not advance to the horizon when run_until()
  /// drains early — use it to time-average over the active period.
  SimTime last_event_time() const noexcept { return last_event_; }

  /// Reset clock and queue (statistics keep their owner's lifetime).
  void reset();

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  SimTime last_event_ = 0.0;
  std::uint64_t fired_ = 0;
  bool stop_requested_ = false;
};

}  // namespace facsp::sim
