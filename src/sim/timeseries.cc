#include "sim/timeseries.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>

#include "common/expects.h"

namespace facsp::sim {

void Series::add(double x, double y) {
  xs_.push_back(x);
  ys_.push_back(y);
  cis_.push_back(std::nullopt);
}

void Series::add(double x, double y, double ci_half_width) {
  xs_.push_back(x);
  ys_.push_back(y);
  cis_.push_back(ci_half_width);
}

double Series::x(std::size_t i) const {
  FACSP_EXPECTS(i < xs_.size());
  return xs_[i];
}

double Series::y(std::size_t i) const {
  FACSP_EXPECTS(i < ys_.size());
  return ys_[i];
}

std::optional<double> Series::ci(std::size_t i) const {
  FACSP_EXPECTS(i < cis_.size());
  return cis_[i];
}

double Series::y_at(double x_query) const {
  FACSP_EXPECTS(!xs_.empty());
  double best_x = -std::numeric_limits<double>::infinity();
  double best_y = 0.0;
  bool found = false;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (xs_[i] <= x_query && xs_[i] > best_x) {
      best_x = xs_[i];
      best_y = ys_[i];
      found = true;
    }
  }
  // The step function is undefined left of the first point; silently
  // returning ys_.front() there (the historical behaviour) hid off-grid
  // queries.
  FACSP_EXPECTS(found);
  return best_y;
}

double Series::min_x() const {
  FACSP_EXPECTS(!xs_.empty());
  return *std::min_element(xs_.begin(), xs_.end());
}

Figure::Figure(std::string title, std::string x_label, std::string y_label)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)) {}

Series& Figure::add_series(std::string name) {
  series_.emplace_back(std::move(name));
  return series_.back();
}

Series& Figure::series(std::size_t i) {
  FACSP_EXPECTS(i < series_.size());
  return series_[i];
}

const Series& Figure::series(std::size_t i) const {
  FACSP_EXPECTS(i < series_.size());
  return series_[i];
}

namespace {

std::string format_cell(double y, std::optional<double> ci) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << y;
  if (ci && *ci > 0.0) os << " ±" << std::setprecision(2) << *ci;
  return os.str();
}

}  // namespace

void Figure::print_table(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  os << "(y: " << y_label_ << ")\n";

  // Union of x values across series -> ordered row keys.
  std::map<double, std::vector<std::string>> rows;
  for (std::size_t s = 0; s < series_.size(); ++s) {
    for (std::size_t i = 0; i < series_[s].size(); ++i) {
      auto& cells = rows[series_[s].x(i)];
      cells.resize(series_.size());
      cells[s] = format_cell(series_[s].y(i), series_[s].ci(i));
    }
  }
  for (auto& [x, cells] : rows) cells.resize(series_.size());

  // Column widths.
  std::vector<std::size_t> widths(series_.size() + 1);
  widths[0] = x_label_.size();
  for (const auto& [x, cells] : rows) {
    std::ostringstream xs;
    xs << x;
    widths[0] = std::max(widths[0], xs.str().size());
  }
  for (std::size_t s = 0; s < series_.size(); ++s) {
    widths[s + 1] = series_[s].name().size();
    for (const auto& [x, cells] : rows)
      widths[s + 1] = std::max(widths[s + 1],
                               cells[s].empty() ? 1 : cells[s].size());
  }

  auto pad = [&os](const std::string& text, std::size_t w) {
    os << std::setw(static_cast<int>(w) + 2) << text;
  };
  pad(x_label_, widths[0]);
  for (std::size_t s = 0; s < series_.size(); ++s)
    pad(series_[s].name(), widths[s + 1]);
  os << '\n';
  for (const auto& [x, cells] : rows) {
    std::ostringstream xs;
    xs << x;
    pad(xs.str(), widths[0]);
    for (std::size_t s = 0; s < series_.size(); ++s)
      pad(cells[s].empty() ? "-" : cells[s], widths[s + 1]);
    os << '\n';
  }
}

void Figure::print_csv(std::ostream& os) const {
  os << x_label_;
  for (const auto& s : series_) os << ',' << s.name();
  os << '\n';
  std::map<double, std::vector<std::string>> rows;
  for (std::size_t s = 0; s < series_.size(); ++s) {
    for (std::size_t i = 0; i < series_[s].size(); ++i) {
      auto& cells = rows[series_[s].x(i)];
      cells.resize(series_.size());
      std::ostringstream v;
      v << series_[s].y(i);
      cells[s] = v.str();
    }
  }
  for (auto& [x, cells] : rows) {
    cells.resize(series_.size());
    os << x;
    for (const auto& c : cells) os << ',' << c;
    os << '\n';
  }
}

}  // namespace facsp::sim
