// A labelled numeric series (x, y[, ci]) with CSV / aligned-table rendering.
// Every bench uses this to print the paper's figures as rows.
#pragma once

#include <deque>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace facsp::sim {

/// One series of a figure: a name plus (x, y, optional ci-half-width) points.
class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void add(double x, double y);
  void add(double x, double y, double ci_half_width);

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return xs_.size(); }
  double x(std::size_t i) const;
  double y(std::size_t i) const;
  std::optional<double> ci(std::size_t i) const;

  /// y value at the largest x <= query (steps).  Throws (ContractViolation)
  /// when the series is empty OR when x_query precedes every x — the step
  /// function is undefined there; callers probing a shared grid should skip
  /// x values below min_x().
  double y_at(double x_query) const;

  /// Smallest x in the series; throws if empty.
  double min_x() const;

 private:
  std::string name_;
  std::vector<double> xs_, ys_;
  std::vector<std::optional<double>> cis_;
};

/// A figure: several series over a shared x axis, with titles, rendered as
/// an aligned text table (one row per x, one column per series) or CSV.
class Figure {
 public:
  Figure(std::string title, std::string x_label, std::string y_label);

  /// Adds a series and returns a reference that stays valid across later
  /// add_series calls (deque storage — no reallocation moves).
  Series& add_series(std::string name);
  const std::deque<Series>& series() const noexcept { return series_; }
  Series& series(std::size_t i);
  const Series& series(std::size_t i) const;
  const std::string& title() const noexcept { return title_; }

  /// Render as an aligned table.  Series need not share x grids; the union
  /// of all x values becomes the row set and missing cells print "-".
  void print_table(std::ostream& os) const;

  /// Render as CSV: x,<series1>,<series2>,...
  void print_csv(std::ostream& os) const;

 private:
  std::string title_, x_label_, y_label_;
  std::deque<Series> series_;
};

}  // namespace facsp::sim
